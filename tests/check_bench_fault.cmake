# ctest driver for the fault-resilience sweep benchmark. Expects:
#   BENCH     path to the fault_sweep binary
#   PYTHON    python3 interpreter
#   TOOLS_DIR repo tools/ directory (schema + checker)
#   WORK_DIR  scratch directory for the artifacts
#
# Three legs:
#   1. Straight run with the resilience gate: UR NRMSE at the lowest
#      nonzero rate must stay within epsilon of fault-free while BP
#      must not; the artifact must satisfy its schema.
#   2. Crash leg: the same sweep with --checkpoint and --die-after 2
#      must die (SIGKILL after two computed shards).
#   3. Resume leg: --resume must restore the checkpointed shards,
#      compute the rest, and produce an artifact byte-identical to the
#      straight run's.

set(straight ${WORK_DIR}/BENCH_fault.straight.json)
set(resumed ${WORK_DIR}/BENCH_fault.resumed.json)
set(ckpt ${WORK_DIR}/fault_sweep.ckpt)
set(eps 0.02)

execute_process(
    COMMAND ${BENCH} --trials 2 --out ${straight} --check-resilience ${eps}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fault_sweep straight run failed (${rc}) — "
                        "resilience gate or sweep failure")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/check_stats_schema.py
            --schema ${TOOLS_DIR}/bench_fault_schema.json ${straight}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "BENCH_fault.json schema validation failed")
endif()

file(REMOVE ${ckpt})
execute_process(
    COMMAND ${BENCH} --trials 2 --out ${resumed}
            --checkpoint ${ckpt} --die-after 2
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
    message(FATAL_ERROR "fault_sweep --die-after 2 exited cleanly — "
                        "the crash leg did not crash")
endif()
if(NOT EXISTS ${ckpt})
    message(FATAL_ERROR "fault_sweep died without leaving a checkpoint")
endif()

execute_process(
    COMMAND ${BENCH} --trials 2 --out ${resumed}
            --checkpoint ${ckpt} --resume
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fault_sweep --resume failed (${rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${straight} ${resumed}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resumed artifact differs from the straight run "
                        "(${straight} vs ${resumed}) — checkpoint "
                        "restore is not byte-exact")
endif()
