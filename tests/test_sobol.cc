/**
 * @file
 * Unit tests for the Sobol sequence generator.
 */

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "unary/sobol.h"

namespace usys {
namespace {

TEST(Sobol, VanDerCorputPrefix)
{
    // Dimension 0 with 3 bits: 0, 4, 6, 2, 3, 7, 5, 1.
    SobolSequence seq(0, 3);
    const std::vector<u32> expected{0, 4, 6, 2, 3, 7, 5, 1};
    for (u32 e : expected)
        EXPECT_EQ(seq.next(), e);
}

TEST(Sobol, AtMatchesNext)
{
    for (int dim : {0, 1, 2, 5}) {
        SobolSequence seq(dim, 8);
        for (u64 i = 0; i < 512; ++i) {
            EXPECT_EQ(seq.at(i), seq.next())
                << "dim " << dim << " index " << i;
        }
    }
}

TEST(Sobol, ResetRestartsStream)
{
    SobolSequence seq(3, 6);
    std::vector<u32> first;
    for (int i = 0; i < 20; ++i)
        first.push_back(seq.next());
    seq.reset();
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(seq.next(), first[i]);
}

/**
 * The batched word API must be state-identical to 64 scalar next()
 * calls — same comparison bits, same generator state afterwards — for
 * every embedded dimension, across a full period and past the wrap.
 */
TEST(Sobol, NextWordMatchesScalarOverFullPeriod)
{
    const int bits = 8;
    const u64 period = u64(1) << bits;
    for (int dim = 0; dim < sobolMaxDimensions(); ++dim) {
        SobolSequence word_seq(dim, bits);
        SobolSequence bit_seq(dim, bits);
        // Thresholds cover empty, sparse, half, dense, and full streams.
        const u32 thresholds[] = {0, 1, 77, 128, 255, 256};
        const u32 thr = thresholds[dim % 6];
        // One full period plus one extra word to cross the wrap.
        for (u64 w = 0; w < period / 64 + 1; ++w) {
            const u64 word = word_seq.nextWord(thr);
            for (int i = 0; i < 64; ++i) {
                EXPECT_EQ((word >> i) & 1, u64(bit_seq.next() < thr))
                    << "dim " << dim << " thr " << thr << " word " << w
                    << " bit " << i;
            }
        }
        // Generators stay interchangeable after mixing word/bit steps.
        EXPECT_EQ(word_seq.next(), bit_seq.next()) << "dim " << dim;
    }
}

TEST(Sobol, NextWordHandlesSubWordPeriods)
{
    // 4-bit sequence: period 16, so one word spans four full periods,
    // exercising the wrap inside a single nextWord() call.
    for (int dim = 0; dim < sobolMaxDimensions(); ++dim) {
        SobolSequence word_seq(dim, 4);
        SobolSequence bit_seq(dim, 4);
        const u64 word = word_seq.nextWord(9);
        for (int i = 0; i < 64; ++i)
            EXPECT_EQ((word >> i) & 1, u64(bit_seq.next() < 9u))
                << "dim " << dim << " bit " << i;
    }
}

class SobolPermutation : public ::testing::TestWithParam<std::tuple<int, int>>
{};

/**
 * Property: one full period of a k-bit Sobol dimension is a permutation of
 * [0, 2^k). This is what makes full-period unary coding exact.
 */
TEST_P(SobolPermutation, FullPeriodIsPermutation)
{
    const auto [dim, bits] = GetParam();
    auto values = sobolPermutation(dim, bits);
    ASSERT_EQ(values.size(), std::size_t(1) << bits);
    std::vector<u8> seen(values.size(), 0);
    for (u32 v : values) {
        ASSERT_LT(v, values.size());
        EXPECT_EQ(seen[v], 0) << "value repeated: " << v;
        seen[v] = 1;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDims, SobolPermutation,
    ::testing::Combine(::testing::Range(0, 15),
                       ::testing::Values(4, 7, 10)));

/**
 * Property: every power-of-two-aligned block of length 2^k contains each
 * k-bit value exactly once (elementary interval balance), which bounds the
 * early-termination error of rate coding.
 */
TEST(Sobol, BalancedBlocks)
{
    const int bits = 8;
    for (int dim : {0, 1, 2, 3}) {
        auto values = sobolPermutation(dim, bits);
        // Check 4 half-period blocks at 7-bit granularity.
        const u32 block = 128;
        for (u32 start = 0; start < values.size(); start += block) {
            std::vector<int> count(2, 0);
            for (u32 i = start; i < start + block; ++i)
                ++count[values[i] >> 7];
            EXPECT_EQ(count[0], 64) << "dim " << dim;
            EXPECT_EQ(count[1], 64) << "dim " << dim;
        }
    }
}

TEST(Sobol, DistinctDimensionsDiffer)
{
    auto a = sobolPermutation(0, 8);
    auto b = sobolPermutation(1, 8);
    EXPECT_NE(a, b);
}

TEST(Sobol, ReportsConfig)
{
    SobolSequence seq(2, 9);
    EXPECT_EQ(seq.bits(), 9);
    EXPECT_EQ(seq.dimension(), 2);
    EXPECT_EQ(seq.period(), 512u);
    EXPECT_GE(sobolMaxDimensions(), 16);
}

} // namespace
} // namespace usys
