/**
 * @file
 * Unit tests for the Sobol sequence generator.
 */

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "unary/sobol.h"

namespace usys {
namespace {

TEST(Sobol, VanDerCorputPrefix)
{
    // Dimension 0 with 3 bits: 0, 4, 6, 2, 3, 7, 5, 1.
    SobolSequence seq(0, 3);
    const std::vector<u32> expected{0, 4, 6, 2, 3, 7, 5, 1};
    for (u32 e : expected)
        EXPECT_EQ(seq.next(), e);
}

TEST(Sobol, AtMatchesNext)
{
    for (int dim : {0, 1, 2, 5}) {
        SobolSequence seq(dim, 8);
        for (u64 i = 0; i < 512; ++i) {
            EXPECT_EQ(seq.at(i), seq.next())
                << "dim " << dim << " index " << i;
        }
    }
}

TEST(Sobol, ResetRestartsStream)
{
    SobolSequence seq(3, 6);
    std::vector<u32> first;
    for (int i = 0; i < 20; ++i)
        first.push_back(seq.next());
    seq.reset();
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(seq.next(), first[i]);
}

class SobolPermutation : public ::testing::TestWithParam<std::tuple<int, int>>
{};

/**
 * Property: one full period of a k-bit Sobol dimension is a permutation of
 * [0, 2^k). This is what makes full-period unary coding exact.
 */
TEST_P(SobolPermutation, FullPeriodIsPermutation)
{
    const auto [dim, bits] = GetParam();
    auto values = sobolPermutation(dim, bits);
    ASSERT_EQ(values.size(), std::size_t(1) << bits);
    std::vector<u8> seen(values.size(), 0);
    for (u32 v : values) {
        ASSERT_LT(v, values.size());
        EXPECT_EQ(seen[v], 0) << "value repeated: " << v;
        seen[v] = 1;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDims, SobolPermutation,
    ::testing::Combine(::testing::Range(0, 15),
                       ::testing::Values(4, 7, 10)));

/**
 * Property: every power-of-two-aligned block of length 2^k contains each
 * k-bit value exactly once (elementary interval balance), which bounds the
 * early-termination error of rate coding.
 */
TEST(Sobol, BalancedBlocks)
{
    const int bits = 8;
    for (int dim : {0, 1, 2, 3}) {
        auto values = sobolPermutation(dim, bits);
        // Check 4 half-period blocks at 7-bit granularity.
        const u32 block = 128;
        for (u32 start = 0; start < values.size(); start += block) {
            std::vector<int> count(2, 0);
            for (u32 i = start; i < start + block; ++i)
                ++count[values[i] >> 7];
            EXPECT_EQ(count[0], 64) << "dim " << dim;
            EXPECT_EQ(count[1], 64) << "dim " << dim;
        }
    }
}

TEST(Sobol, DistinctDimensionsDiffer)
{
    auto a = sobolPermutation(0, 8);
    auto b = sobolPermutation(1, 8);
    EXPECT_NE(a, b);
}

TEST(Sobol, ReportsConfig)
{
    SobolSequence seq(2, 9);
    EXPECT_EQ(seq.bits(), 9);
    EXPECT_EQ(seq.dimension(), 2);
    EXPECT_EQ(seq.period(), 512u);
    EXPECT_GE(sobolMaxDimensions(), 16);
}

} // namespace
} // namespace usys
