/**
 * @file
 * Tests reproducing the paper's accumulation-domain claim: binary
 * accumulation of product bitstreams is exact, while unary-domain
 * (mux-based scaled) accumulation adds variance that grows with fan-in
 * and destroys temporal-coded signed accuracy (Sections II-B4 / III-A).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "common/stats.h"
#include "unary/bitstream.h"
#include "unary/uadd.h"

namespace usys {
namespace {

std::vector<std::vector<u8>>
makeRateStreams(const std::vector<u32> &values, int bits)
{
    std::vector<std::vector<u8>> streams;
    for (std::size_t i = 0; i < values.size(); ++i) {
        RateBsg gen(values[i], int(i % 4), bits);
        streams.push_back(generateBits(gen, u64(1) << bits));
    }
    return streams;
}

TEST(UnaryAdd, BinaryAccumulationIsExact)
{
    Prng prng(3);
    std::vector<u32> values;
    u64 expected = 0;
    for (int i = 0; i < 16; ++i) {
        values.push_back(u32(prng.below(128)));
        expected += values.back();
    }
    const auto streams = makeRateStreams(values, 7);
    EXPECT_EQ(binaryDomainSum(streams), expected);
}

TEST(UnaryAdd, ScaledAdderUnbiasedButNoisy)
{
    Prng prng(5);
    std::vector<u32> values;
    u64 exact = 0;
    for (int i = 0; i < 8; ++i) {
        values.push_back(u32(prng.below(128)));
        exact += values.back();
    }
    const auto streams = makeRateStreams(values, 7);
    const double estimate = unaryDomainSum(streams);
    // Unbiased to within a few percent...
    EXPECT_NEAR(estimate, double(exact), 0.15 * double(exact) + 16.0);
    // ...but not exact (the binary path is).
    EXPECT_NE(u64(std::llround(estimate)), exact);
}

TEST(UnaryAdd, AbsoluteErrorGrowsWithFanIn)
{
    // The scaled adder's output has stream resolution, so each output
    // LSB stands for fan_in units of the true sum: the absolute error
    // (what the accumulator hands downstream) grows with fan-in, which
    // is why large unary-domain reductions lose accuracy while binary
    // accumulation stays exact at any fan-in.
    auto mean_abs_error = [](int fan_in, u64 seed) {
        Prng prng(seed);
        OnlineStats err;
        for (int trial = 0; trial < 30; ++trial) {
            std::vector<u32> values;
            u64 exact = 0;
            for (int i = 0; i < fan_in; ++i) {
                values.push_back(u32(32 + prng.below(64)));
                exact += values.back();
            }
            const auto streams = makeRateStreams(values, 7);
            const double estimate =
                unaryDomainSum(streams, int(trial % 8));
            err.add(std::abs(estimate - double(exact)));
        }
        return err.mean();
    };
    const double small = mean_abs_error(4, 11);
    const double large = mean_abs_error(32, 13);
    EXPECT_GT(large, small);
}

TEST(UnaryAdd, TemporalSignedAccumulationIsInaccurate)
{
    // Signed data, temporal coding, accumulated in the unary domain
    // (bipolar streams through the scaled adder) vs uSystolic's binary
    // sign-magnitude accumulation, which is exact. This is the accuracy
    // failure that motivates HUB accumulation (Sections II-B4 / III-A).
    const int bits = 7;
    const u64 period = u64(1) << bits;
    const u32 half = u32(period / 2);

    Prng prng(17);
    OnlineStats unary_err;
    for (int trial = 0; trial < 25; ++trial) {
        std::vector<i32> values;
        i64 exact = 0;
        std::vector<std::vector<u8>> streams;
        for (int i = 0; i < 12; ++i) {
            const i32 v = i32(prng.below(period)) - i32(half);
            values.push_back(v);
            exact += v;
            // Bipolar temporal stream: ones count = v + period/2.
            TemporalBsg gen(u32(v + i32(half)), bits);
            streams.push_back(generateBits(gen, period));
        }
        // Binary accumulation recovers the exact signed sum.
        i64 binary = 0;
        for (const auto &s : streams)
            binary += i64(onesCount(s)) - i64(half);
        EXPECT_EQ(binary, exact);

        // Unary-domain accumulation: estimate = scaled ones - offset.
        const double est =
            unaryDomainSum(streams, trial % 8) -
            double(streams.size()) * half;
        unary_err.add(std::abs(est - double(exact)));
    }
    // The unary-domain estimate misses by several LSB on average.
    EXPECT_GT(unary_err.mean(), 2.0);
}

TEST(UnaryAdd, NonScaledAdderIsExactWithResidue)
{
    // The parallel-counter uADD recovers the exact total: ones(out)*K
    // plus the residue equals the true sum, at any fan-in — because it
    // is secretly binary accumulation with a unary output interface.
    Prng prng(7);
    for (int fan_in : {3, 8, 24}) {
        std::vector<u32> values;
        u64 exact = 0;
        for (int i = 0; i < fan_in; ++i) {
            values.push_back(u32(prng.below(128)));
            exact += values.back();
        }
        const auto streams = makeRateStreams(values, 7);
        EXPECT_EQ(nonScaledUnarySum(streams), exact) << fan_in;
    }
}

TEST(UnaryAdd, NonScaledOutputStreamTracksRunningMean)
{
    // Without the residue the output stream alone carries sum/K with
    // error bounded by one output bit — the bounded-error property that
    // separates uADD from the scaled mux adder.
    Prng prng(9);
    const int fan_in = 8;
    std::vector<u32> values;
    u64 exact = 0;
    for (int i = 0; i < fan_in; ++i) {
        values.push_back(u32(prng.below(128)));
        exact += values.back();
    }
    const auto streams = makeRateStreams(values, 7);
    const u64 est = nonScaledUnarySum(streams);
    const u64 stream_only = (est / fan_in) * fan_in; // drop residue
    EXPECT_LE(exact - stream_only, u64(fan_in));
}

TEST(UnaryAdd, RejectsEmptyInput)
{
    EXPECT_EXIT(unaryDomainSum({}), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(nonScaledUnarySum({}), ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace usys
