/**
 * @file
 * Executor contract tests: nesting-inline rule, work stealing under
 * skewed grain cost, exception propagation out of workers, the
 * USYS_THREADS / setThreads overrides, and determinism of serially
 * merged aggregates across thread counts.
 *
 * The CI container may expose a single hardware thread, so every test
 * pins the count it needs via setThreads() instead of relying on
 * auto-resolution.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/executor.h"

namespace usys {
namespace {

/** Restore the pre-test thread configuration on scope exit. */
struct ThreadGuard
{
    explicit ThreadGuard(unsigned n) { Executor::global().setThreads(n); }
    ~ThreadGuard() { Executor::global().setThreads(0); }
};

TEST(Executor, SerialFallbackRunsOnCaller)
{
    ThreadGuard guard(1);
    EXPECT_EQ(Executor::global().threads(), 1u);

    const std::thread::id self = std::this_thread::get_id();
    std::vector<int> visits(64, 0);
    bool off_thread = false;
    parallelFor(0, 64, [&](u64 i) {
        visits[i] += 1;
        if (std::this_thread::get_id() != self)
            off_thread = true;
    });
    EXPECT_FALSE(off_thread);
    for (int v : visits)
        EXPECT_EQ(v, 1);
}

TEST(Executor, VisitsEveryIndexOnceInParallel)
{
    ThreadGuard guard(4);
    EXPECT_EQ(Executor::global().threads(), 4u);

    std::vector<std::atomic<int>> visits(1000);
    parallelFor(0, visits.size(),
                [&](u64 i) { visits[i].fetch_add(1); }, 7);
    for (const auto &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(Executor, NestedParallelForRunsInline)
{
    ThreadGuard guard(4);

    std::mutex mu;
    std::vector<std::pair<std::thread::id, std::thread::id>> pairs;
    std::atomic<int> inner_visits{0};
    std::atomic<bool> nested_flag_wrong{false};

    ASSERT_FALSE(Executor::inParallelRegion());
    parallelFor(0, 4, [&](u64) {
        const std::thread::id outer = std::this_thread::get_id();
        if (!Executor::inParallelRegion())
            nested_flag_wrong = true;
        // Grain 1 over 8 indices means this inner region has plenty of
        // chunks — it runs inline purely because of the nesting rule.
        parallelFor(0, 8, [&](u64) {
            inner_visits.fetch_add(1);
            std::lock_guard<std::mutex> lock(mu);
            pairs.emplace_back(outer, std::this_thread::get_id());
        });
    });
    ASSERT_FALSE(Executor::inParallelRegion());

    EXPECT_FALSE(nested_flag_wrong);
    EXPECT_EQ(inner_visits.load(), 32);
    for (const auto &p : pairs)
        EXPECT_EQ(p.first, p.second)
            << "nested parallelFor escaped its calling worker";
}

TEST(Executor, StealsWorkUnderSkewedGrains)
{
    ThreadGuard guard(3);
    ASSERT_EQ(Executor::global().threads(), 3u);

    const u64 before = Executor::global().stealCount();
    std::vector<std::atomic<int>> visits(12);
    // The caller owns the first contiguous chunk run and stalls on its
    // very first index, so its remaining chunks can only complete by
    // being stolen by the two pool workers.
    parallelFor(0, visits.size(), [&](u64 i) {
        if (i == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
        visits[i].fetch_add(1);
    });
    for (const auto &v : visits)
        EXPECT_EQ(v.load(), 1);
    EXPECT_GT(Executor::global().stealCount(), before);
}

TEST(Executor, WorkerExceptionRethrownAtJoin)
{
    ThreadGuard guard(4);

    EXPECT_THROW(parallelFor(0, 1000,
                             [&](u64 i) {
                                 if (i == 577)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);

    // The pool must survive a failed region intact.
    std::atomic<int> visits{0};
    parallelFor(0, 100, [&](u64) { visits.fetch_add(1); });
    EXPECT_EQ(visits.load(), 100);
}

TEST(Executor, SerialExceptionRethrown)
{
    ThreadGuard guard(1);
    EXPECT_THROW(parallelFor(0, 10,
                             [](u64 i) {
                                 if (i == 3)
                                     throw std::invalid_argument("bad");
                             }),
                 std::invalid_argument);
}

TEST(Executor, NestedExceptionPropagatesThroughBothJoins)
{
    ThreadGuard guard(4);
    EXPECT_THROW(parallelFor(0, 4,
                             [](u64) {
                                 parallelFor(0, 8, [](u64 i) {
                                     if (i == 5)
                                         throw std::runtime_error("inner");
                                 });
                             }),
                 std::runtime_error);
}

TEST(Executor, ForkJoinBaselineStillCorrect)
{
    ThreadGuard guard(4);
    setForkJoinBaseline(true);
    std::vector<std::atomic<int>> visits(100);
    parallelFor(0, visits.size(), [&](u64 i) { visits[i].fetch_add(1); },
                3);
    EXPECT_THROW(parallelFor(0, 50,
                             [](u64 i) {
                                 if (i == 11)
                                     throw std::runtime_error("fj");
                             }),
                 std::runtime_error);
    setForkJoinBaseline(false);
    for (const auto &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(Executor, UsysThreadsEnvRespected)
{
    ASSERT_EQ(setenv("USYS_THREADS", "3", 1), 0);
    Executor::global().setThreads(0); // re-resolve from the environment
    EXPECT_EQ(Executor::global().threads(), 3u);

    ASSERT_EQ(unsetenv("USYS_THREADS"), 0);
    Executor::global().setThreads(0);
    const unsigned hw = std::thread::hardware_concurrency();
    EXPECT_EQ(Executor::global().threads(), hw ? hw : 1u);
}

/**
 * The determinism contract from DESIGN.md §9: parallel bodies write only
 * per-index state; aggregates are folded serially in index order. The
 * (order-sensitive) float fold below must then be bitwise identical at
 * every thread count.
 */
TEST(Executor, MergedAggregatesIdenticalAcrossThreadCounts)
{
    const u64 n = 4096;
    auto fold = [&](unsigned threads) {
        Executor::global().setThreads(threads);
        std::vector<double> per_index(n);
        parallelFor(0, n,
                    [&](u64 i) {
                        double v = 1.0;
                        for (int r = 0; r < 50; ++r)
                            v = v * 1.0000001 + double(i) * 1e-7;
                        per_index[i] = v;
                    },
                    5);
        double acc = 0.0;
        for (u64 i = 0; i < n; ++i)
            acc = acc * 0.999999 + per_index[i];
        return acc;
    };

    const double one = fold(1);
    const double two = fold(2);
    const double four = fold(4);
    Executor::global().setThreads(0);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, four);
}

} // namespace
} // namespace usys
