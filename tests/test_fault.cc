/**
 * @file
 * Fault-injection subsystem tests: corruption-operator semantics, the
 * determinism contract of counter-based site resolution, cross-engine
 * parity with injection enabled (scalar vs packed vs RTL vs functional,
 * at multiple thread counts), checkpoint round-trips, and resilience
 * shard reproducibility. The parity suites are the load-bearing ones —
 * the fault model is only usable because every engine resolves and
 * applies the same plan bit-exactly.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/checkpoint.h"
#include "common/cli.h"
#include "common/executor.h"
#include "common/fixed_point.h"
#include "common/json.h"
#include "common/prng.h"
#include "common/stats_registry.h"
#include "arch/array.h"
#include "arch/functional.h"
#include "arch/packed_array.h"
#include "arch/rtl_array.h"
#include "eval/resilience.h"
#include "fault/fault.h"
#include "mem/dram_faults.h"
#include "unary/bitstream.h"

namespace usys {
namespace {

constexpr FaultKind kKinds[] = {FaultKind::BitFlip, FaultKind::StuckAt0,
                               FaultKind::StuckAt1, FaultKind::Burst};

Matrix<i32>
randomMatrix(int rows, int cols, int bits, Prng &prng)
{
    const i32 max_mag = maxMagnitude(bits);
    Matrix<i32> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    return m;
}

FaultPlan
allSitePlan(u64 seed, FaultKind kind, double rate)
{
    FaultPlan plan;
    plan.seed = seed;
    plan.kind = kind;
    plan.burst_len = 3;
    plan.rates.weight_reg = rate;
    plan.rates.activation_stream = rate;
    plan.rates.weight_stream = rate;
    plan.rates.accumulator = rate;
    plan.rates.dram_word = rate;
    return plan;
}

// --- Corruption-operator semantics ----------------------------------

TEST(FaultOps, WordAndBitCorruptionAgree)
{
    Prng prng(0xFA17ull);
    for (FaultKind kind : kKinds) {
        for (int trial = 0; trial < 16; ++trial) {
            Fault f;
            f.kind = kind;
            f.first = u32(prng.below(90));
            f.len = kind == FaultKind::Burst ? 1 + u32(prng.below(8)) : 1;
            const u64 word = prng.next();
            for (u64 base : {u64(0), u64(64)}) {
                const u64 corrupted = f.applyToWord(word, base);
                for (u32 i = 0; i < 64; ++i) {
                    const bool in = (word >> i) & 1;
                    const bool out = (corrupted >> i) & 1;
                    const u32 k = u32(base) + i;
                    if (f.covers(k))
                        EXPECT_EQ(out, f.corruptBit(in, k))
                            << faultKindName(kind) << " bit " << k;
                    else
                        EXPECT_EQ(out, in)
                            << faultKindName(kind) << " bit " << k;
                }
            }
        }
    }
}

TEST(FaultOps, ApplyToWordOutsideWindowIsIdentity)
{
    Fault f;
    f.kind = FaultKind::BitFlip;
    f.first = 70;
    f.len = 1;
    EXPECT_EQ(f.applyToWord(0xDEADBEEFull, 0), 0xDEADBEEFull);
    EXPECT_NE(f.applyToWord(0xDEADBEEFull, 64), 0xDEADBEEFull);
}

TEST(FaultOps, ApplyToIntSignExtends)
{
    Fault msb;
    msb.kind = FaultKind::BitFlip;
    msb.first = 7;
    msb.len = 1;
    // Flipping the sign bit of an 8-bit value moves it by -+128.
    EXPECT_EQ(msb.applyToInt(3, 8), 3 - 128);
    EXPECT_EQ(msb.applyToInt(-5, 8), -5 + 128);

    Fault sa0;
    sa0.kind = FaultKind::StuckAt0;
    sa0.first = 7;
    sa0.len = 1;
    EXPECT_EQ(sa0.applyToInt(-1, 8), 127); // 0xFF -> 0x7F
    EXPECT_EQ(sa0.applyToInt(5, 8), 5);    // sign bit already 0
}

TEST(FaultOps, CorruptCodeStaysInQuantizerRange)
{
    const int bits = 6;
    const i32 mm = maxMagnitude(bits);
    Prng prng(0xC0DEull);
    for (FaultKind kind : kKinds) {
        for (int trial = 0; trial < 200; ++trial) {
            Fault f;
            f.kind = kind;
            f.first = u32(prng.below(u64(bits)));
            f.len = kind == FaultKind::Burst ? 1 + u32(prng.below(4)) : 1;
            const i32 code = i32(prng.below(2 * u64(mm) + 1)) - mm;
            const i32 out = corruptCode(f, code, bits);
            EXPECT_GE(out, -mm);
            EXPECT_LE(out, mm);
        }
    }
}

TEST(FaultOps, CorruptMagnitudePreservesSign)
{
    const int bits = 6;
    const i32 mm = maxMagnitude(bits);
    Prng prng(0x516ull);
    for (FaultKind kind : kKinds) {
        for (int trial = 0; trial < 200; ++trial) {
            Fault f;
            f.kind = kind;
            f.first = u32(prng.below(u64(bits - 1)));
            f.len = kind == FaultKind::Burst ? 1 + u32(prng.below(4)) : 1;
            const i32 code = i32(prng.below(2 * u64(mm) + 1)) - mm;
            const i32 out = corruptMagnitude(f, code, bits);
            EXPECT_GE(out, -mm);
            EXPECT_LE(out, mm);
            if (code > 0) {
                EXPECT_GE(out, 0) << "positive sign lost";
            }
            if (code < 0) {
                EXPECT_LE(out, 0) << "negative sign lost";
            }
        }
    }
}

TEST(FaultOps, KindNamesRoundTrip)
{
    for (FaultKind kind : kKinds)
        EXPECT_EQ(parseFaultKind(faultKindName(kind)), kind);
    EXPECT_EXIT(parseFaultKind("bogus"),
                ::testing::ExitedWithCode(1), "fault kind");
}

// --- Corrupted stream counting (packed vs scalar form) ---------------

TEST(FaultOps, OnesInWindowMatchesScalarCorruption)
{
    const int bits = 6;
    for (FaultKind kind : kKinds) {
        for (u32 src : {u32(0), u32(13), u32(40), u32(1) << bits}) {
            for (u32 window : {u32(1), u32(37), u32(64), u32(129)}) {
                Fault f;
                f.kind = kind;
                f.first = window > 3 ? window - 3 : 0;
                f.len = kind == FaultKind::Burst ? 5 : 1;

                RateBsg packed_gen(src, 2, bits);
                const u64 packed =
                    onesInWindow(packed_gen, window, &f);

                RateBsg scalar_gen(src, 2, bits);
                u64 scalar = 0;
                for (u32 t = 0; t < window; ++t) {
                    bool bit = scalar_gen.nextBit();
                    if (f.covers(t))
                        bit = f.corruptBit(bit, t);
                    scalar += u64(bit);
                }
                EXPECT_EQ(packed, scalar)
                    << faultKindName(kind) << " src " << src
                    << " window " << window;
            }
        }
    }
}

// --- Determinism of site resolution ----------------------------------

TEST(FaultPlanResolve, PureAndSeedSensitive)
{
    FaultPlan plan = allSitePlan(0xAB5EEDull, FaultKind::BitFlip, 0.3);
    FaultPlan other = plan;
    other.seed = 0xAB5EEEull;

    u64 events = 0, moved = 0;
    for (u64 tile = 0; tile < 4; ++tile) {
        for (int m = 0; m < 6; ++m) {
            for (int r = 0; r < 6; ++r) {
                const auto a = plan.activationStream(tile, m, r, 64);
                const auto b = plan.activationStream(tile, m, r, 64);
                ASSERT_EQ(a.has_value(), b.has_value());
                if (a) {
                    ++events;
                    EXPECT_EQ(a->first, b->first);
                    EXPECT_EQ(a->kind, b->kind);
                    EXPECT_LT(a->first, 64u);
                }
                const auto c = other.activationStream(tile, m, r, 64);
                if (a.has_value() != c.has_value() ||
                    (a && c && a->first != c->first))
                    ++moved;
            }
        }
    }
    // At rate 0.3 over 144 instances both counts are overwhelmingly
    // nonzero; zero would mean the hash ignores the rate or the seed.
    EXPECT_GT(events, 0u);
    EXPECT_GT(moved, 0u);
}

TEST(FaultPlanResolve, RateExtremes)
{
    FaultPlan never = allSitePlan(7, FaultKind::BitFlip, 0.0);
    FaultPlan always = allSitePlan(7, FaultKind::BitFlip, 1.0);
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) {
            EXPECT_FALSE(never.weightReg(0, r, c, 8).has_value());
            EXPECT_TRUE(always.weightReg(0, r, c, 8).has_value());
            EXPECT_FALSE(never.accumulator(0, 1, r, c, 12).has_value());
            EXPECT_TRUE(always.accumulator(0, 1, r, c, 12).has_value());
        }
    }
}

TEST(FaultPlanResolve, SitesAreIndependent)
{
    // Same coordinates, different site: the resolved positions must not
    // be systematically identical (the site id must enter the hash).
    FaultPlan plan = allSitePlan(99, FaultKind::BitFlip, 1.0);
    u64 differing = 0;
    for (int m = 0; m < 16; ++m) {
        const auto a = plan.weightStream(0, m, 1, 2, 64);
        const auto b = plan.accumulator(0, m, 1, 2, 64);
        ASSERT_TRUE(a && b);
        if (a->first != b->first)
            ++differing;
    }
    EXPECT_GT(differing, 0u);
}

TEST(FaultPlanResolve, CountFoldFaultsMatchesResolution)
{
    KernelConfig kern{Scheme::USystolicRate, 6, 0};
    FaultPlan plan = allSitePlan(0x77ull, FaultKind::BitFlip, 0.25);
    const int m_rows = 5, rows = 4, cols = 3;
    const FoldFaultCounts counts =
        countFoldFaults(plan, kern, 2, m_rows, rows, cols);

    u64 wr = 0, act = 0, ws = 0, acc = 0;
    const u32 awin = activationWindow(kern);
    const u32 mul = kern.mulCycles();
    const u32 accw = accumulatorWidth(kern);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            wr += plan.weightReg(2, r, c, u32(kern.bits)).has_value();
    for (int m = 0; m < m_rows; ++m)
        for (int r = 0; r < rows; ++r)
            act += plan.activationStream(2, m, r, awin).has_value();
    for (int m = 0; m < m_rows; ++m)
        for (int r = 0; r < rows; ++r)
            for (int c = 0; c < cols; ++c) {
                ws += plan.weightStream(2, m, r, c, mul).has_value();
                acc += plan.accumulator(2, m, r, c, accw).has_value();
            }
    EXPECT_EQ(counts.weight_reg, wr);
    EXPECT_EQ(counts.activation, act);
    EXPECT_EQ(counts.weight_stream, ws);
    EXPECT_EQ(counts.accumulator, acc);
    EXPECT_EQ(counts.total(), wr + act + ws + acc);
}

TEST(FaultPlanResolve, PlanCheckRejectsBadRates)
{
    FaultPlan plan;
    plan.rates.weight_reg = 1.5;
    EXPECT_EXIT(plan.check(), ::testing::ExitedWithCode(1),
                "rate outside");
    FaultPlan burst;
    burst.kind = FaultKind::Burst;
    burst.burst_len = 0;
    EXPECT_EXIT(burst.check(), ::testing::ExitedWithCode(1),
                "burst_len");
}

// --- Cross-engine parity with injection enabled ----------------------

using FaultCase = std::tuple<Scheme, FaultKind>;

class FaultedPackedVsScalar : public ::testing::TestWithParam<FaultCase>
{};

TEST_P(FaultedPackedVsScalar, FoldBitExactWithStats)
{
    const auto [scheme, kind] = GetParam();
    ArrayConfig cfg;
    cfg.rows = 6;
    cfg.cols = 5;
    cfg.kernel = {scheme, 6, scheme == Scheme::USystolicRate ? 4 : 0};
    // DRAM faults live above runFold (SystolicGemm entry), so the fold
    // parity suite drives the four per-fold sites only.
    cfg.faults = allSitePlan(0x1234ull + u64(int(kind)), kind, 0.2);
    cfg.faults.rates.dram_word = 0.0;

    for (u64 tile : {u64(0), u64(3)}) {
        Prng prng(u64(int(scheme)) * 31 + u64(int(kind)) * 7 + tile);
        const auto input = randomMatrix(4, cfg.rows, cfg.kernel.bits,
                                        prng);
        const auto weights = randomMatrix(cfg.rows, cfg.cols,
                                          cfg.kernel.bits, prng);

        FoldStatsDelta sd, pd;
        const auto scalar =
            SystolicArray(cfg).runFold(input, weights, &sd, tile);
        const auto packed =
            PackedArray(cfg).runFold(input, weights, &pd, tile);

        EXPECT_EQ(packed.output, scalar.output)
            << cfg.kernel.name() << " " << faultKindName(kind)
            << " tile " << tile;
        EXPECT_EQ(packed.cycles, scalar.cycles);
        EXPECT_EQ(pd.faults_weight_reg, sd.faults_weight_reg);
        EXPECT_EQ(pd.faults_activation, sd.faults_activation);
        EXPECT_EQ(pd.faults_weight_stream, sd.faults_weight_stream);
        EXPECT_EQ(pd.faults_accumulator, sd.faults_accumulator);
        EXPECT_GT(sd.faultTotal(), 0u)
            << "rate 0.2 plan injected nothing — vacuous parity";
    }
}

TEST_P(FaultedPackedVsScalar, RtlRefereeAgrees)
{
    const auto [scheme, kind] = GetParam();
    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.kernel = {scheme, 5, 0};
    cfg.faults = allSitePlan(0xBEEFull + u64(int(kind)), kind, 0.25);
    cfg.faults.rates.dram_word = 0.0;

    Prng prng(u64(int(scheme)) * 131 + u64(int(kind)));
    const auto input = randomMatrix(3, cfg.rows, cfg.kernel.bits, prng);
    const auto weights =
        randomMatrix(cfg.rows, cfg.cols, cfg.kernel.bits, prng);

    statsRegistry().reset();
    const auto scalar = SystolicArray(cfg).runFold(input, weights);
    statsRegistry().reset();
    const auto rtl = RtlArray(cfg).runFold(input, weights);
    statsRegistry().reset();

    EXPECT_EQ(rtl.output, scalar.output)
        << cfg.kernel.name() << " " << faultKindName(kind);
    EXPECT_EQ(rtl.cycles, scalar.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAllKinds, FaultedPackedVsScalar,
    ::testing::Combine(
        ::testing::Values(Scheme::BinaryParallel, Scheme::BinarySerial,
                          Scheme::USystolicRate, Scheme::USystolicTemporal,
                          Scheme::UgemmHybrid),
        ::testing::ValuesIn(kKinds)));

class EngineToggleGuard
{
  public:
    EngineToggleGuard() : was_(packedEngineEnabled()) {}
    ~EngineToggleGuard() { setPackedEngineEnabled(was_); }

  private:
    bool was_;
};

class ThreadGuard
{
  public:
    explicit ThreadGuard(unsigned n) { Executor::global().setThreads(n); }
    ~ThreadGuard() { Executor::global().setThreads(0); }
};

TEST(FaultedGemm, EngineAndThreadCountInvariant)
{
    EngineToggleGuard engine_guard;
    ArrayConfig cfg;
    cfg.rows = 5;
    cfg.cols = 4;
    cfg.kernel = {Scheme::USystolicRate, 6, 0};
    cfg.faults = allSitePlan(0xD15EA5Eull, FaultKind::BitFlip, 0.1);

    Prng prng(42);
    const auto a = randomMatrix(6, 14, cfg.kernel.bits, prng);
    const auto b = randomMatrix(14, 9, cfg.kernel.bits, prng);

    setPackedEngineEnabled(false);
    statsRegistry().reset();
    const auto scalar = SystolicGemm(cfg).run(a, b);
    const std::string scalar_dump = statsRegistry().dumpText();

    setPackedEngineEnabled(true);
    for (unsigned threads : {1u, 3u}) {
        ThreadGuard thread_guard(threads);
        statsRegistry().reset();
        const auto packed = SystolicGemm(cfg).run(a, b);
        const std::string packed_dump = statsRegistry().dumpText();
        EXPECT_EQ(packed.acc, scalar.acc) << threads << " threads";
        EXPECT_EQ(packed.cycles, scalar.cycles);
        EXPECT_EQ(packed_dump, scalar_dump) << threads << " threads";
    }
    statsRegistry().reset();
}

TEST(FaultedGemm, FaultFreeDumpHasNoFaultCounters)
{
    // Registered counters survive registry reset()s, so use a kernel
    // name no other test runs faulted (UR-7b) and scope the search.
    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.kernel = {Scheme::USystolicRate, 7, 0};
    Prng prng(7);
    const auto a = randomMatrix(3, 8, cfg.kernel.bits, prng);
    const auto b = randomMatrix(8, 4, cfg.kernel.bits, prng);
    const std::string tag =
        "arch." + sanitizeStatName(cfg.kernel.name()) + ".faults_";

    statsRegistry().reset();
    SystolicGemm(cfg).run(a, b);
    EXPECT_EQ(statsRegistry().dumpText().find(tag), std::string::npos)
        << "fault counters leaked into a fault-free dump";

    cfg.faults = allSitePlan(1, FaultKind::BitFlip, 0.5);
    statsRegistry().reset();
    SystolicGemm(cfg).run(a, b);
    EXPECT_NE(statsRegistry().dumpText().find(tag), std::string::npos);
    statsRegistry().reset();
}

TEST(FaultedGemm, FunctionalMatchesCycleEngineDramOnly)
{
    ArrayConfig cfg;
    cfg.rows = 5;
    cfg.cols = 5;
    cfg.kernel = {Scheme::USystolicRate, 6, 0};
    cfg.faults.seed = 0xD7A3ull;
    cfg.faults.rates.dram_word = 0.3;

    Prng prng(0xF00Dull);
    const auto a = randomMatrix(4, 10, cfg.kernel.bits, prng);
    const auto b = randomMatrix(10, 7, cfg.kernel.bits, prng);

    statsRegistry().reset();
    const auto cyc = SystolicGemm(cfg).run(a, b);
    statsRegistry().reset();
    const auto fun = GemmExecutor(cfg.kernel).run(a, b, cfg.faults);
    EXPECT_EQ(fun, cyc.acc);

    // Disabled plan must be a strict no-op overload.
    const FaultPlan none;
    EXPECT_EQ(GemmExecutor(cfg.kernel).run(a, b, none),
              GemmExecutor(cfg.kernel).run(a, b));
}

TEST(FaultedGemm, DramCorruptionIsDeterministicPerOperand)
{
    FaultPlan plan;
    plan.seed = 0x44ull;
    plan.rates.dram_word = 0.4;
    Prng prng(5);
    const auto orig = randomMatrix(6, 6, 6, prng);

    Matrix<i32> m1 = orig, m2 = orig;
    const u64 e1 = applyDramFaults(plan, m1, kDramOperandA, 6);
    const u64 e2 = applyDramFaults(plan, m2, kDramOperandA, 6);
    EXPECT_EQ(m1, m2);
    EXPECT_EQ(e1, e2);
    EXPECT_GT(e1, 0u);

    Matrix<i32> mb = orig;
    applyDramFaults(plan, mb, kDramOperandB, 6);
    EXPECT_FALSE(mb == m1) << "operand id ignored by the site hash";
}

// --- Checkpoint round-trips ------------------------------------------

std::string
tempPath(const std::string &stem)
{
    return ::testing::TempDir() + stem;
}

bool
fileExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f)
        std::fclose(f);
    return f != nullptr;
}

TEST(Checkpoint, PackedFieldsRoundTripExactly)
{
    const double doubles[] = {0.0, -0.0, 1.0, -1.5, 0.1, 1e300,
                              5e-324, 3.14159265358979};
    for (double v : doubles) {
        const std::string s = ShardCheckpoint::packDouble(v);
        EXPECT_EQ(s.size(), 16u);
        const double back = ShardCheckpoint::unpackDouble(s);
        EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0)
            << "bit pattern drifted for " << v;
    }
    for (u64 v : {u64(0), u64(1), ~u64(0), u64(0x0123456789ABCDEF)})
        EXPECT_EQ(ShardCheckpoint::unpackU64(ShardCheckpoint::packU64(v)),
                  v);
    EXPECT_EXIT(ShardCheckpoint::unpackU64("zz"),
                ::testing::ExitedWithCode(1), "");
}

TEST(Checkpoint, RecordLoadRoundTrip)
{
    const std::string path = tempPath("ckpt_roundtrip");
    std::remove(path.c_str());

    ShardCheckpoint writer(path);
    writer.load(); // missing file = fresh start
    EXPECT_EQ(writer.size(), 0u);
    writer.record("ur-r1", "payload one");
    writer.record("bp-r0", "payload two");
    writer.record("ur-r1", "payload one v2"); // overwrite

    ShardCheckpoint reader(path);
    reader.load();
    EXPECT_EQ(reader.size(), 2u);
    EXPECT_TRUE(reader.has("ur-r1"));
    EXPECT_TRUE(reader.has("bp-r0"));
    EXPECT_FALSE(reader.has("missing"));
    EXPECT_EQ(reader.find("ur-r1"), "payload one v2");
    EXPECT_EQ(reader.find("bp-r0"), "payload two");
    EXPECT_EQ(reader.find("missing"), "");
    std::remove(path.c_str());
}

TEST(Checkpoint, DisabledIsInert)
{
    ShardCheckpoint off("");
    EXPECT_FALSE(off.enabled());
    off.load();
    off.record("k", "v"); // full no-op: no store entry, no filesystem
    EXPECT_EQ(off.size(), 0u);
    EXPECT_FALSE(off.has("k"));
}

TEST(Checkpoint, InvalidKeysAreFatal)
{
    ShardCheckpoint c(tempPath("ckpt_key"));
    EXPECT_EXIT(c.record("bad\tkey", "v"),
                ::testing::ExitedWithCode(1), "");
}

/**
 * Corrupt `path` must quarantine, not kill: load() moves the file to
 * `<path>.corrupt`, starts cold, and the checkpoint stays usable.
 */
void
expectQuarantine(const std::string &path)
{
    const std::string corrupt = path + ".corrupt";
    std::remove(corrupt.c_str());

    ShardCheckpoint ckpt(path);
    ckpt.load();
    EXPECT_TRUE(ckpt.quarantined()) << path;
    EXPECT_EQ(ckpt.size(), 0u);
    EXPECT_FALSE(fileExists(path)) << "corrupt file left in place";
    EXPECT_TRUE(fileExists(corrupt)) << "no quarantine file";

    // Cold-start recovery: the same instance records and persists.
    ckpt.record("fresh", "after recovery");
    ShardCheckpoint reader(path);
    reader.load();
    EXPECT_FALSE(reader.quarantined());
    EXPECT_EQ(reader.find("fresh"), "after recovery");

    std::remove(path.c_str());
    std::remove(corrupt.c_str());
}

/** A valid v2 checkpoint file's raw bytes, for targeted corruption. */
std::string
validCheckpointBytes(const std::string &path)
{
    std::remove(path.c_str());
    ShardCheckpoint writer(path);
    writer.load();
    writer.record("ur-r1", "payload one");
    writer.record("bp-r0", "payload two");
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string bytes;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, got);
    std::fclose(f);
    EXPECT_GT(bytes.size(), 32u);
    return bytes;
}

TEST(Checkpoint, CorruptFilesAreQuarantinedNotFatal)
{
    const std::string path = tempPath("ckpt_corrupt");
    const std::string good = validCheckpointBytes(path);
    const std::size_t header_end = good.find('\n') + 1;
    ASSERT_GT(header_end, 1u);

    // Wrong magic.
    ASSERT_TRUE(writeTextFile(path, "not-a-checkpoint v2\n"));
    expectQuarantine(path);

    // Old (pre-CRC) version header.
    ASSERT_TRUE(writeTextFile(path,
                              "usys-checkpoint v1\nur-r1\tpayload\n"));
    expectQuarantine(path);

    // Malformed header: no crc/bytes fields.
    ASSERT_TRUE(writeTextFile(path, "usys-checkpoint v2\nk\tv\n"));
    expectQuarantine(path);

    // Truncation: body shorter than the header's byte count.
    ASSERT_TRUE(writeTextFile(
        path, good.substr(0, header_end + (good.size() - header_end) / 2)));
    expectQuarantine(path);

    // Single bit flip in the body: caught by the CRC.
    std::string flipped = good;
    flipped[header_end + (flipped.size() - header_end) / 2] ^= 0x01;
    ASSERT_TRUE(writeTextFile(path, flipped));
    expectQuarantine(path);

    // And the pristine bytes still load — the checks above were not
    // rejecting everything indiscriminately.
    ASSERT_TRUE(writeTextFile(path, good));
    ShardCheckpoint ok(path);
    ok.load();
    EXPECT_FALSE(ok.quarantined());
    EXPECT_EQ(ok.size(), 2u);
    EXPECT_EQ(ok.find("ur-r1"), "payload one");
    std::remove(path.c_str());
}

// --- Resilience shards -----------------------------------------------

TEST(Resilience, DeterministicAndZeroAtRateZero)
{
    ResilienceSpec spec;
    spec.kern = {Scheme::USystolicRate, 6, 0};
    spec.rows = 4;
    spec.cols = 4;
    spec.m = 4;
    spec.k = 12;
    spec.n = 4;
    spec.trials = 2;

    const ResilienceResult clean = runResilienceShard(spec);
    EXPECT_EQ(clean.fault_events, 0u);
    EXPECT_EQ(clean.sum_sq_err, 0.0);
    EXPECT_EQ(clean.nrmse(), 0.0);
    EXPECT_GT(clean.samples, 0u);
    EXPECT_GT(clean.sum_sq_ref, 0.0);

    spec.rates.activation_stream = 0.05;
    spec.rates.accumulator = 0.05;
    const ResilienceResult r1 = runResilienceShard(spec);
    const ResilienceResult r2 = runResilienceShard(spec);
    EXPECT_EQ(r1.samples, r2.samples);
    EXPECT_EQ(r1.fault_events, r2.fault_events);
    EXPECT_EQ(r1.sum_sq_err, r2.sum_sq_err);
    EXPECT_EQ(r1.sum_sq_ref, r2.sum_sq_ref);
    EXPECT_EQ(r1.sum_abs_err, r2.sum_abs_err);
    EXPECT_GT(r1.fault_events, 0u);
}

TEST(Resilience, EngineInvariant)
{
    EngineToggleGuard engine_guard;
    ResilienceSpec spec;
    spec.kern = {Scheme::UgemmHybrid, 6, 0};
    spec.rows = 4;
    spec.cols = 4;
    spec.m = 4;
    spec.k = 8;
    spec.n = 4;
    spec.trials = 1;
    spec.rates.weight_stream = 0.1;
    spec.rates.weight_reg = 0.1;

    setPackedEngineEnabled(true);
    const ResilienceResult packed = runResilienceShard(spec);
    setPackedEngineEnabled(false);
    const ResilienceResult scalar = runResilienceShard(spec);
    EXPECT_EQ(packed.sum_sq_err, scalar.sum_sq_err);
    EXPECT_EQ(packed.sum_sq_ref, scalar.sum_sq_ref);
    EXPECT_EQ(packed.fault_events, scalar.fault_events);
}

TEST(Resilience, SerializeRoundTripsBitExactly)
{
    ResilienceResult r;
    r.samples = 123;
    r.fault_events = 45;
    r.sum_sq_err = 0.1 + 0.2; // deliberately non-representable
    r.sum_sq_ref = 1e18;
    r.sum_abs_err = 5e-324;

    const ResilienceResult back =
        ResilienceResult::deserialize(r.serialize());
    EXPECT_EQ(back.samples, r.samples);
    EXPECT_EQ(back.fault_events, r.fault_events);
    EXPECT_EQ(std::memcmp(&back.sum_sq_err, &r.sum_sq_err, 8), 0);
    EXPECT_EQ(std::memcmp(&back.sum_sq_ref, &r.sum_sq_ref, 8), 0);
    EXPECT_EQ(std::memcmp(&back.sum_abs_err, &r.sum_abs_err, 8), 0);
    EXPECT_EXIT(ResilienceResult::deserialize("1 2 3"),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace usys
