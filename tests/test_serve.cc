/**
 * @file
 * Serve-layer unit tests: canonical key stability, result packing,
 * cache LRU/persistence, and byte-identity through a live daemon.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json_parse.h"
#include "common/socket.h"
#include "sched/simulator.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/request.h"
#include "serve/result_cache.h"

namespace usys {
namespace {

ServeRequest
decodeOrDie(const std::string &payload)
{
    ServeRequest req;
    std::string error;
    EXPECT_TRUE(decodeRequest(payload, req, error)) << error;
    return req;
}

// --- Canonical keys ---------------------------------------------------

TEST(ServeCanonicalKey, DefaultsVsExplicitProduceTheSameKey)
{
    // The daemon's documented defaults, spelled out field by field,
    // must hash exactly like a request that says nothing at all.
    const ServeRequest implicit = decodeOrDie(
        R"({"op":"gemm","id":1,"m":64,"k":128,"n":32})");
    const ServeRequest explicit_req = decodeOrDie(
        R"({"op":"gemm","id":2,"m":64,"k":128,"n":32,"system":{)"
        R"("preset":"edge","scheme":"UR","bits":8,"et_bits":0,)"
        R"("rows":12,"cols":14,"freq_ghz":0.4}})");
    ASSERT_EQ(implicit.jobs.size(), 1u);
    ASSERT_EQ(explicit_req.jobs.size(), 1u);
    EXPECT_EQ(implicit.jobs[0].key, explicit_req.jobs[0].key);
    EXPECT_EQ(implicit.jobs[0].hash, explicit_req.jobs[0].hash);
}

TEST(ServeCanonicalKey, JsonFieldOrderIsIrrelevant)
{
    const ServeRequest a = decodeOrDie(
        R"({"op":"gemm","id":1,"m":8,"k":16,"n":4,)"
        R"("system":{"scheme":"BP","bits":6,"preset":"cloud"}})");
    const ServeRequest b = decodeOrDie(
        R"({"system":{"preset":"cloud","bits":6,"scheme":"BP"},)"
        R"("n":4,"k":16,"m":8,"id":99,"op":"gemm"})");
    ASSERT_EQ(a.jobs.size(), 1u);
    ASSERT_EQ(b.jobs.size(), 1u);
    EXPECT_EQ(a.jobs[0].key, b.jobs[0].key);
    EXPECT_EQ(a.jobs[0].hash, b.jobs[0].hash);
}

TEST(ServeCanonicalKey, FullPeriodEtBitsFoldsToZero)
{
    // For UR, et_bits == bits means "no early termination" — the same
    // effective config as et_bits 0, so the keys must collide.
    const ServeRequest zero = decodeOrDie(
        R"({"op":"gemm","id":1,"m":8,"k":16,"n":4,)"
        R"("system":{"scheme":"UR","bits":8,"et_bits":0}})");
    const ServeRequest full = decodeOrDie(
        R"({"op":"gemm","id":1,"m":8,"k":16,"n":4,)"
        R"("system":{"scheme":"UR","bits":8,"et_bits":8}})");
    EXPECT_EQ(zero.jobs[0].key, full.jobs[0].key);

    const ServeRequest early = decodeOrDie(
        R"({"op":"gemm","id":1,"m":8,"k":16,"n":4,)"
        R"("system":{"scheme":"UR","bits":8,"et_bits":4}})");
    EXPECT_NE(zero.jobs[0].key, early.jobs[0].key);
}

TEST(ServeCanonicalKey, DistinctConfigsGetDistinctKeys)
{
    const char *variants[] = {
        R"({"op":"gemm","id":1,"m":8,"k":16,"n":4})",
        R"({"op":"gemm","id":1,"m":8,"k":16,"n":5})",
        R"({"op":"gemm","id":1,"m":8,"k":16,"n":4,)"
        R"("system":{"bits":7}})",
        R"({"op":"gemm","id":1,"m":8,"k":16,"n":4,)"
        R"("system":{"scheme":"BS"}})",
        R"({"op":"gemm","id":1,"m":8,"k":16,"n":4,)"
        R"("system":{"preset":"cloud"}})",
    };
    std::vector<std::string> keys;
    for (const char *payload : variants)
        keys.push_back(decodeOrDie(payload).jobs[0].key);
    for (std::size_t i = 0; i < keys.size(); ++i)
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
}

// --- Result packing ---------------------------------------------------

TEST(ServePacking, RoundTripIsBitExact)
{
    const ServeRequest req = decodeOrDie(
        R"({"op":"layer","id":1,"layers":"alexnet"})");
    ASSERT_FALSE(req.jobs.empty());
    for (const ServeJob &job : req.jobs) {
        const LayerStats stats =
            computeLayerStats(buildSystem(job.spec), job.layer);
        const std::string packed = packLayerStats(stats);
        LayerStats back;
        ASSERT_TRUE(unpackLayerStats(packed, back));
        // Bit-exactness via the packed form itself: double fields went
        // through packDouble (IEEE-754 bit patterns), so equal packs
        // imply equal bits everywhere.
        EXPECT_EQ(packed, packLayerStats(back));
        // And the served JSON derived from the unpacked copy matches.
        EXPECT_EQ(renderJobResult(job, stats), renderJobResult(job, back));
    }
}

TEST(ServePacking, MalformedPayloadsAreRejected)
{
    LayerStats out;
    EXPECT_FALSE(unpackLayerStats("", out));
    EXPECT_FALSE(unpackLayerStats("deadbeef", out));
    EXPECT_FALSE(unpackLayerStats("zz,zz", out));
    const ServeRequest req = decodeOrDie(
        R"({"op":"gemm","id":1,"m":8,"k":16,"n":4})");
    const LayerStats stats =
        computeLayerStats(buildSystem(req.jobs[0].spec),
                          req.jobs[0].layer);
    std::string packed = packLayerStats(stats);
    EXPECT_TRUE(unpackLayerStats(packed, out));
    packed.resize(packed.size() - 17); // drop one field
    EXPECT_FALSE(unpackLayerStats(packed, out));
}

// --- Result cache -----------------------------------------------------

std::vector<ServeJob>
distinctJobs(std::size_t count)
{
    std::vector<ServeJob> jobs;
    for (std::size_t i = 0; i < count; ++i) {
        const std::string payload =
            "{\"op\":\"gemm\",\"id\":1,\"m\":" + std::to_string(8 + i) +
            ",\"k\":16,\"n\":4}";
        ServeRequest req;
        std::string error;
        EXPECT_TRUE(decodeRequest(payload, req, error)) << error;
        jobs.push_back(req.jobs[0]);
    }
    return jobs;
}

TEST(ServeResultCache, LruEvictsUnderByteBudget)
{
    const std::vector<ServeJob> jobs = distinctJobs(16);
    std::vector<std::string> rendered;
    std::vector<LayerStats> stats;
    for (const ServeJob &job : jobs) {
        stats.push_back(computeLayerStats(buildSystem(job.spec),
                                          job.layer));
        rendered.push_back(renderJobResult(job, stats.back()));
    }
    // Size the budget for roughly four entries.
    const u64 per_entry =
        u64(jobs[0].key.size() + rendered[0].size() +
            packLayerStats(stats[0]).size());
    ResultCache cache(4 * per_entry + per_entry / 2, "");
    for (std::size_t i = 0; i < jobs.size(); ++i)
        cache.insert(jobs[i], stats[i], rendered[i]);

    const ResultCacheStats cs = cache.stats();
    EXPECT_GT(cs.evictions, 0u);
    EXPECT_LE(cs.entries, 5u);
    EXPECT_LE(cs.bytes, 4 * per_entry + per_entry / 2);

    // Most-recently-inserted survives; the very first was evicted.
    std::string hit;
    EXPECT_TRUE(cache.find(jobs.back(), &hit));
    EXPECT_EQ(hit, rendered.back());
    EXPECT_FALSE(cache.find(jobs.front(), &hit));
}

TEST(ServeResultCache, FindRefreshesLruPosition)
{
    const std::vector<ServeJob> jobs = distinctJobs(3);
    std::vector<std::string> rendered;
    std::vector<LayerStats> stats;
    u64 bytes = 0;
    for (const ServeJob &job : jobs) {
        stats.push_back(computeLayerStats(buildSystem(job.spec),
                                          job.layer));
        rendered.push_back(renderJobResult(job, stats.back()));
        bytes += u64(job.key.size() + rendered.back().size() +
                     packLayerStats(stats.back()).size());
    }
    // Budget for exactly two of the three entries.
    ResultCache cache(bytes * 2 / 3, "");
    cache.insert(jobs[0], stats[0], rendered[0]);
    cache.insert(jobs[1], stats[1], rendered[1]);
    std::string hit;
    ASSERT_TRUE(cache.find(jobs[0], &hit)); // 0 now most recent
    cache.insert(jobs[2], stats[2], rendered[2]);
    EXPECT_TRUE(cache.find(jobs[0], &hit));  // refreshed: survived
    EXPECT_FALSE(cache.find(jobs[1], &hit)); // LRU victim
}

TEST(ServeResultCache, ZeroBudgetDisablesCaching)
{
    const std::vector<ServeJob> jobs = distinctJobs(1);
    const LayerStats stats =
        computeLayerStats(buildSystem(jobs[0].spec), jobs[0].layer);
    ResultCache cache(0, "");
    EXPECT_FALSE(cache.enabled());
    cache.insert(jobs[0], stats, renderJobResult(jobs[0], stats));
    std::string hit;
    EXPECT_FALSE(cache.find(jobs[0], &hit));
}

TEST(ServeResultCache, PersistenceRoundTripServesIdenticalBytes)
{
    const std::string path =
        testing::TempDir() + "/test_serve_cache.ckpt";
    std::remove(path.c_str());
    const std::vector<ServeJob> jobs = distinctJobs(4);
    std::vector<std::string> rendered;
    {
        ResultCache cache(1 << 20, path);
        cache.load();
        for (const ServeJob &job : jobs) {
            const LayerStats stats =
                computeLayerStats(buildSystem(job.spec), job.layer);
            rendered.push_back(renderJobResult(job, stats));
            cache.insert(job, stats, rendered.back());
        }
        cache.flush();
    }
    {
        ResultCache cache(1 << 20, path);
        cache.load();
        EXPECT_EQ(cache.stats().restored, jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            std::string hit;
            ASSERT_TRUE(cache.find(jobs[i], &hit)) << i;
            // The restored entry re-renders from packed bits; the
            // bytes must match the original response exactly.
            EXPECT_EQ(hit, rendered[i]) << i;
        }
    }
    std::remove(path.c_str());
}

// --- Live daemon ------------------------------------------------------

class ServeDaemonTest : public testing::Test
{
  protected:
    void
    startDaemon(const DaemonOptions &opts)
    {
        daemon_ = std::make_unique<Daemon>(opts);
        std::string error;
        ASSERT_TRUE(daemon_->start(&error)) << error;
        runner_ = std::thread([this] { daemon_->run(); });
    }

    void
    stopDaemon()
    {
        if (!daemon_)
            return;
        daemon_->requestStop();
        runner_.join();
        daemon_.reset();
    }

    void
    TearDown() override
    {
        stopDaemon();
    }

    std::string
    call(const std::string &request)
    {
        ServeClient client;
        std::string error;
        EXPECT_TRUE(client.connect(daemon_->port(), &error)) << error;
        std::string response;
        EXPECT_TRUE(client.call(request, &response));
        return response;
    }

    std::unique_ptr<Daemon> daemon_;
    std::thread runner_;
};

TEST_F(ServeDaemonTest, ColdWarmAndRestartResponsesAreByteIdentical)
{
    const std::string path =
        testing::TempDir() + "/test_serve_daemon.ckpt";
    std::remove(path.c_str());
    const std::string request =
        R"({"op":"sweep","id":7,"layers":"alexnet",)"
        R"("schemes":["BP","UR"],"system":{"bits":8}})";

    DaemonOptions opts;
    opts.cache_file = path;
    opts.quiet = true;
    startDaemon(opts);
    const std::string cold = call(request);
    EXPECT_NE(cold.find("\"ok\":true"), std::string::npos);
    const std::string warm = call(request);
    EXPECT_EQ(cold, warm); // a cache hit must be invisible
    stopDaemon();          // flushes the checkpoint

    startDaemon(opts); // restores it
    EXPECT_GT(daemon_->cacheStats().restored, 0u);
    EXPECT_EQ(cold, call(request));
    std::remove(path.c_str());
}

TEST_F(ServeDaemonTest, BatchedAndInlinePathsAgreeByteForByte)
{
    const std::string request =
        R"({"op":"layer","id":3,"layers":"conv:15,15,64,3,3,1,64",)"
        R"("system":{"scheme":"UR","bits":8,"et_bits":6}})";
    DaemonOptions batched;
    batched.quiet = true;
    startDaemon(batched);
    const std::string via_batcher = call(request);
    stopDaemon();

    DaemonOptions inline_opts;
    inline_opts.quiet = true;
    inline_opts.batch = false;
    inline_opts.cache = false;
    startDaemon(inline_opts);
    EXPECT_EQ(via_batcher, call(request));
}

// --- Robustness: error frames, shedding, deadlines, timeouts ----------

TEST(ServeErrorFrames, CarryCodeAndRetriableFields)
{
    // The wire format is load-bearing: the client library detects
    // retriable responses by byte pattern, not by JSON parse.
    EXPECT_EQ(renderErrorCode(7, "overloaded", "queue full", true),
              R"({"id":7,"ok":false,"error":"queue full",)"
              R"("code":"overloaded","retriable":true})");
    EXPECT_EQ(renderErrorCode(9, "deadline_exceeded", "too slow", false),
              R"({"id":9,"ok":false,"error":"too slow",)"
              R"("code":"deadline_exceeded","retriable":false})");
    // Plain renderError is the bad_request shorthand.
    EXPECT_EQ(renderError(3, "nope"),
              renderErrorCode(3, "bad_request", "nope", false));
}

TEST(ServeRequestDecode, DeadlineMsIsBoundsChecked)
{
    ServeRequest req;
    std::string error;
    EXPECT_TRUE(decodeRequest(
        R"({"op":"ping","id":1,"deadline_ms":2500})", req, error));
    EXPECT_EQ(req.deadline_ms, 2500u);
    EXPECT_FALSE(decodeRequest(
        R"({"op":"ping","id":1,"deadline_ms":-1})", req, error));
    EXPECT_NE(error.find("deadline_ms"), std::string::npos);
    EXPECT_FALSE(decodeRequest(
        R"({"op":"ping","id":1,"deadline_ms":3600001})", req, error));
}

TEST(ServeJsonParse, NestingDepthIsBounded)
{
    const auto nested = [](std::size_t n) {
        std::string doc(n, '[');
        doc.append(n, ']');
        return doc;
    };
    EXPECT_TRUE(parseJson(nested(64)).ok);  // the documented limit
    EXPECT_TRUE(parseJson(nested(65)).ok);  // exact boundary
    const JsonParseResult deep = parseJson(nested(66));
    EXPECT_FALSE(deep.ok);
    EXPECT_NE(deep.error.find("nesting too deep"), std::string::npos);
}

TEST(ServeBatcher, BoundedQueueShedsWithOverloaded)
{
    Batcher::Options opts;
    opts.enabled = true;
    opts.window_us = 500000; // hold the first batch open half a second
    opts.max_batch = 1000;
    opts.max_queued_jobs = 1;
    Batcher batcher(opts, nullptr);
    batcher.start();

    // A background submitter parks one job in the admission queue,
    // where it sits for the full window. If a probe (below) happens to
    // park first, the submitter itself is shed — it retries until the
    // queue is free, so exactly one of the two always occupies it.
    const auto jobs = std::make_shared<const std::vector<ServeJob>>(
        distinctJobs(1));
    std::vector<std::string> first_out;
    std::thread submitter([&] {
        SubmitStatus status;
        do {
            first_out.clear();
            status = batcher.submit(jobs, 0, first_out);
            if (status == SubmitStatus::Overloaded)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
        } while (status == SubmitStatus::Overloaded);
        EXPECT_EQ(status, SubmitStatus::Ok);
    });

    // Probe until the parked job makes the queue non-empty: then our
    // one extra job exceeds the bound and must be shed. A probe that
    // races ahead of the submitter is admitted alone (empty queue
    // always admits) and exits via its 1ms deadline — just retry.
    const auto probe = std::make_shared<const std::vector<ServeJob>>(
        distinctJobs(1));
    bool shed = false;
    for (int attempt = 0; attempt < 2000 && !shed; ++attempt) {
        std::vector<std::string> out;
        shed = batcher.submit(probe, 1, out) == SubmitStatus::Overloaded;
    }
    EXPECT_TRUE(shed);
    EXPECT_GE(batcher.stats().shed, 1u);

    submitter.join();
    ASSERT_EQ(first_out.size(), 1u); // the parked request still completed
    EXPECT_NE(first_out[0].find("\"layer\""), std::string::npos)
        << first_out[0];
    batcher.stop();
}

TEST(ServeBatcher, InlineComputeHonorsDeadline)
{
    Batcher::Options opts;
    opts.enabled = false; // inline path: deadline gates each engine call
    Batcher batcher(opts, nullptr);

    ServeRequest req;
    std::string error;
    ASSERT_TRUE(decodeRequest(
        R"({"op":"sweep","id":1,"layers":"alexnet",)"
        R"("schemes":["BP","UR"]})", req, error)) << error;
    ASSERT_GT(req.jobs.size(), 10u);

    // One analytic job is microseconds; thousands guarantee the 1ms
    // deadline passes at some job boundary. The abort then makes the
    // request cheap again: compute stops at that boundary, so the test
    // costs ~1ms of engine time no matter how long the list is.
    std::vector<ServeJob> many;
    while (many.size() < 5000)
        many.insert(many.end(), req.jobs.begin(), req.jobs.end());

    std::vector<std::string> out;
    const SubmitStatus status = batcher.submit(
        std::make_shared<const std::vector<ServeJob>>(std::move(many)), 1,
        out);
    EXPECT_EQ(status, SubmitStatus::DeadlineExceeded);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(batcher.stats().deadline_misses, 1u);
}

TEST_F(ServeDaemonTest, RequestDeadlineProducesStructuredError)
{
    DaemonOptions opts;
    opts.quiet = true;
    opts.cache = false;
    // Hold the admission window open far past the 1ms request deadline
    // so the request deterministically expires while parked.
    opts.batch_window_us = 500000;
    opts.request_deadline_ms = 1;
    startDaemon(opts);
    const std::string response = call(
        R"({"op":"sweep","id":11,"layers":"alexnet",)"
        R"("schemes":["BP","UR"]})");
    EXPECT_NE(response.find("\"code\":\"deadline_exceeded\""),
              std::string::npos)
        << response;
    EXPECT_NE(response.find("\"retriable\":false"), std::string::npos);
    // The daemon survives and serves the next request normally.
    const std::string pong = call(R"({"op":"ping","id":12})");
    EXPECT_NE(pong.find("\"pong\":true"), std::string::npos);
    EXPECT_GE(daemon_->batcherStats().deadline_misses, 1u);
}

TEST_F(ServeDaemonTest, ConnectionCapShedsWithRetriableError)
{
    DaemonOptions opts;
    opts.quiet = true;
    opts.max_conns = 1;
    startDaemon(opts);

    ServeClient first;
    std::string error;
    ASSERT_TRUE(first.connect(daemon_->port(), &error)) << error;
    ASSERT_TRUE(first.ping(1)); // guarantees the fd is registered

    // Second connection is accepted only to be told to go away.
    Socket second = connectLoopback(daemon_->port(), &error);
    ASSERT_TRUE(second.valid()) << error;
    std::string frame;
    ASSERT_TRUE(second.recvFrame(frame));
    EXPECT_NE(frame.find("\"code\":\"overloaded\""), std::string::npos)
        << frame;
    EXPECT_NE(frame.find("\"retriable\":true"), std::string::npos);
    EXPECT_GE(daemon_->daemonStats().shed_conns, 1u);

    // The admitted client is unaffected.
    EXPECT_TRUE(first.ping(2));
}

TEST_F(ServeDaemonTest, SilentClientIsReapedByIoTimeout)
{
    DaemonOptions opts;
    opts.quiet = true;
    opts.io_timeout_ms = 100;
    startDaemon(opts);

    std::string error;
    Socket silent = connectLoopback(daemon_->port(), &error);
    ASSERT_TRUE(silent.valid()) << error;
    const char half_header[2] = {0x08, 0x00}; // promise, then silence
    ASSERT_TRUE(silent.sendAll(half_header, sizeof(half_header)));

    // The daemon's recv deadline fires and it closes the connection:
    // we observe the FIN (EOF), not our own much-longer timeout.
    silent.setIoTimeoutMs(5000);
    char byte;
    EXPECT_FALSE(silent.recvAll(&byte, 1));
    EXPECT_FALSE(silent.timedOut());
    for (int i = 0; i < 100 && daemon_->daemonStats().io_timeouts == 0;
         ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_GE(daemon_->daemonStats().io_timeouts, 1u);

    // A well-behaved client still gets service.
    ServeClient client;
    ASSERT_TRUE(client.connect(daemon_->port(), &error)) << error;
    EXPECT_TRUE(client.ping(5));
}

TEST_F(ServeDaemonTest, CallRetryClassifiesOutcomes)
{
    DaemonOptions opts;
    opts.quiet = true;
    startDaemon(opts);
    const u16 port = daemon_->port();

    RetryPolicy policy;
    policy.retries = 2;
    policy.backoff_ms = 1;

    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(port, &error)) << error;

    // Success on the first attempt.
    std::string response;
    u32 attempts = 0;
    EXPECT_EQ(client.callRetry(R"({"op":"ping","id":1})", &response,
                               policy, &error, &attempts),
              CallStatus::Ok);
    EXPECT_EQ(attempts, 1u);

    // A bad_request is terminal: no retry despite the budget.
    EXPECT_EQ(client.callRetry(R"({"op":"frobnicate","id":2})", &response,
                               policy, &error, &attempts),
              CallStatus::ServerError);
    EXPECT_EQ(attempts, 1u);
    EXPECT_NE(response.find("\"retriable\":false"), std::string::npos);

    // A dead daemon exhausts the transport-retry budget.
    stopDaemon();
    ServeClient orphan;
    orphan.connect(port); // may fail; callRetry reconnects regardless
    EXPECT_EQ(orphan.callRetry(R"({"op":"ping","id":3})", &response,
                               policy, &error, &attempts),
              CallStatus::Exhausted);
    EXPECT_EQ(attempts, policy.retries + 1);
    EXPECT_FALSE(error.empty());
}

TEST_F(ServeDaemonTest, MalformedRequestsGetErrorsAndTheDaemonSurvives)
{
    DaemonOptions opts;
    opts.quiet = true;
    startDaemon(opts);

    const std::string bad_json = call("{not json");
    EXPECT_NE(bad_json.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(bad_json.find("\"error\""), std::string::npos);

    const std::string bad_op = call(R"({"op":"frobnicate","id":1})");
    EXPECT_NE(bad_op.find("\"ok\":false"), std::string::npos);

    const std::string bad_dims =
        call(R"({"op":"gemm","id":1,"m":0,"k":4,"n":4})");
    EXPECT_NE(bad_dims.find("\"ok\":false"), std::string::npos);

    // Still serving after three rejected requests.
    ServeClient client;
    std::string error;
    ASSERT_TRUE(client.connect(daemon_->port(), &error)) << error;
    EXPECT_TRUE(client.ping(42));
}

} // namespace
} // namespace usys
