/**
 * @file
 * Tests for the cycle-level memory devices (DDR3 banks/row-buffers,
 * banked SRAM) and the trace-driven layer simulation, including its
 * agreement with the analytic roofline on the unary operating points.
 */

#include <gtest/gtest.h>

#include "mem/dram_timing.h"
#include "mem/sram_timing.h"
#include "common/prng.h"
#include "sched/trace.h"
#include "workloads/alexnet.h"
#include "workloads/systems.h"

namespace usys {
namespace {

TEST(DramDevice, SequentialRunOpensOnePagePerKiB)
{
    DramDevice dram(ddr3Chip(), 0.4);
    const u64 page = dram.pageBytes();
    ASSERT_EQ(page, 1024u); // 8192 bits
    Cycles t = 0;
    for (u64 addr = 0; addr < 4 * page; addr += 64)
        t = dram.access(addr, 64, t);
    EXPECT_EQ(dram.activations(), 4u);
    EXPECT_EQ(dram.bytesTransferred(), 4 * page);
}

TEST(DramDevice, RowMissCostsMoreThanRowHit)
{
    DramDevice dram(ddr3Chip(), 0.4);
    const Cycles first = dram.access(0, 64, 0);       // miss
    const Cycles second = dram.access(64, 64, first); // hit, same page
    const Cycles hit_cost = second - first;
    dram.reset();
    const Cycles miss_cost = dram.access(0, 64, 0);
    EXPECT_GT(miss_cost, hit_cost);
}

TEST(DramDevice, BankInterleavingOverlapsPrecharge)
{
    // Pages land on different banks, so back-to-back page misses only
    // serialize on the shared bus, not on the bank timing.
    DramDevice dram(ddr3Chip(), 0.4);
    Cycles t1 = dram.access(0, 64, 0);
    Cycles t2 = dram.access(dram.pageBytes(), 64, 0); // next bank
    EXPECT_EQ(dram.activations(), 2u);
    EXPECT_GT(t2, t1); // bus still serializes the bursts
}

TEST(DramDevice, EnergySplitsActivationAndColumn)
{
    DramDevice dram(ddr3Chip(), 0.4);
    dram.access(0, 256, 0);
    const double one = dram.energyPj();
    dram.access(64 * 1024 * 1024, 256, 1000); // different page
    EXPECT_GT(dram.energyPj(), one * 1.9);    // both terms doubled
    dram.reset();
    EXPECT_EQ(dram.energyPj(), 0.0);
    EXPECT_EQ(dram.activations(), 0u);
}

TEST(DramDevice, ThroughputBoundedByBus)
{
    DramDevice dram(ddr3Chip(), 0.4);
    // Stream 1 MiB sequentially; the completion time must not beat the
    // configured peak bandwidth.
    const u64 total = u64(1) << 20;
    Cycles t = 0;
    for (u64 addr = 0; addr < total; addr += 1024)
        t = dram.access(addr, 1024, 0);
    const double peak_bytes_per_cycle = ddr3Chip().peak_gbps / 0.4;
    EXPECT_GE(double(t), double(total) / peak_bytes_per_cycle * 0.99);
}

TEST(SramDevice, BankConflictSerializes)
{
    SramConfig cfg = edgeSram(); // 16 banks x 4 B ports
    SramDevice sram(cfg);
    // Two same-cycle accesses to the same bank: second waits a cycle.
    const Cycles a = sram.access(0, 10);
    const Cycles b = sram.access(u64(cfg.banks) * cfg.bank_port_bytes,
                                 10); // same bank, next way
    EXPECT_EQ(a, 11u);
    EXPECT_EQ(b, 12u);
    EXPECT_EQ(sram.conflictCycles(), 1u);
    // Different banks proceed in parallel.
    const Cycles c = sram.access(cfg.bank_port_bytes, 10);
    EXPECT_EQ(c, 11u);
}

TEST(SramDevice, AbsentBufferPassesThrough)
{
    SramDevice sram(noSram());
    EXPECT_EQ(sram.access(123, 7), 7u);
    EXPECT_EQ(sram.accesses(), 0u);
}

TEST(Trace, ComputeCyclesMatchRoofline)
{
    const auto layer = alexnetLayers()[2];
    for (bool edge : {true, false}) {
        const auto sys =
            edge ? edgeSystem({Scheme::USystolicRate, 8, 6}, false)
                 : cloudSystem({Scheme::USystolicRate, 8, 6}, false);
        const auto tr = traceLayer(sys, layer);
        const auto rf = simulateLayer(sys, layer);
        EXPECT_EQ(tr.compute_cycles, rf.compute_cycles);
    }
}

TEST(Trace, UnaryAgreesWithRoofline)
{
    // On the crawling-byte operating points, the per-request trace and
    // the analytic roofline must tell the same story.
    for (const auto &layer : alexnetLayers()) {
        const auto sys = edgeSystem({Scheme::USystolicRate, 8, 6}, false);
        const auto tr = traceLayer(sys, layer);
        const auto rf = simulateLayer(sys, layer);
        EXPECT_LT(tr.overhead_pct, 5.0) << layer.name;
        EXPECT_NEAR(tr.dram_bw_gbps, rf.dram_bw_gbps,
                    0.3 * rf.dram_bw_gbps + 0.05)
            << layer.name;
    }
}

TEST(Trace, BinaryWithoutSramThrashesRows)
{
    // The trace engine exposes what the roofline cannot: SRAM-less
    // binary parallel issues tiny strided bursts that thrash the DDR3
    // row buffers — further evidence that only uSystolic can afford
    // SRAM elimination.
    const auto layer = alexnetLayers()[1]; // Conv2
    const auto sys = edgeSystem({Scheme::BinaryParallel, 8, 0}, false);
    const auto tr = traceLayer(sys, layer);
    EXPECT_GT(tr.overhead_pct, 100.0);
    const auto unary = traceLayer(
        edgeSystem({Scheme::USystolicRate, 8, 6}, false), layer);
    EXPECT_LT(unary.overhead_pct, 5.0);
}

TEST(Trace, ActivationsScaleWithUniqueTraffic)
{
    const auto layer = alexnetLayers()[5]; // FC6 (weight dominated)
    const auto with = traceLayer(
        edgeSystem({Scheme::BinaryParallel, 8, 0}, true), layer);
    const auto without = traceLayer(
        edgeSystem({Scheme::BinaryParallel, 8, 0}, false), layer);
    EXPECT_GT(without.dram_activations, with.dram_activations);
    EXPECT_GT(with.dram_energy_pj, 0.0);
}

/** Randomized sweep: trace and roofline agree on unary design points. */
class TraceProperty : public ::testing::TestWithParam<int>
{};

TEST_P(TraceProperty, RandomLayersAgreeOnUnary)
{
    Prng prng(u64(GetParam()) * 7 + 1);
    const int ih = 8 + int(prng.below(24));
    const int kk = 1 + int(prng.below(3));
    const GemmLayer layer = GemmLayer::conv(
        "rand", ih + kk, ih + kk, 1 + int(prng.below(64)), kk, kk, 1,
        1 + int(prng.below(128)));
    const auto sys = edgeSystem({Scheme::USystolicRate, 8, 6}, false);
    const auto tr = traceLayer(sys, layer);
    const auto rf = simulateLayer(sys, layer);
    EXPECT_EQ(tr.compute_cycles, rf.compute_cycles);
    EXPECT_LE(tr.total_cycles + 0.0, double(rf.total_cycles) * 1.25);
    EXPECT_GE(tr.total_cycles + 0.0, double(rf.total_cycles) * 0.8);
    EXPECT_EQ(tr.dram_bytes > 0, true);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TraceProperty, ::testing::Range(0, 8));

} // namespace
} // namespace usys
