/**
 * @file
 * Tests for the ISA layer: encode/decode roundtrips, program lowering,
 * and the invariant that the interpreter's cycle accounting equals the
 * performance simulator's contention-free timing (Section III-D).
 */

#include <gtest/gtest.h>

#include "common/prng.h"
#include "isa/isa.h"
#include "sched/tiling.h"
#include "workloads/alexnet.h"

namespace usys {
namespace {

TEST(Isa, EncodeDecodeRoundtrip)
{
    Prng prng(31);
    for (int trial = 0; trial < 500; ++trial) {
        Instruction inst;
        const Opcode ops[] = {Opcode::LoadWeights, Opcode::StreamCompute,
                              Opcode::Barrier, Opcode::Halt};
        inst.op = ops[prng.below(4)];
        inst.rows = u16(1 + prng.below(512));
        inst.cols = u16(1 + prng.below(512));
        inst.m_rows = u32(prng.below(1u << 24));
        inst.mac_cycles = u32(1 + prng.below(1u << 17));
        inst.base = u32(prng.below(1u << 20));
        EXPECT_EQ(decodeInstruction(encodeInstruction(inst)), inst);
    }
}

TEST(Isa, OversizedTileRejected)
{
    Instruction inst;
    inst.rows = 600;
    EXPECT_EXIT(encodeInstruction(inst),
                ::testing::ExitedWithCode(1), "exceeds");
}

TEST(Isa, ProgramStructure)
{
    ArrayConfig array{12, 14, {Scheme::USystolicRate, 8, 6}, {}};
    const auto layer = GemmLayer::matmul("m", 10, 24, 28); // 2x2 folds
    const auto program = buildProgram(array, layer);
    // 4 folds x (load + stream) + barrier + halt.
    ASSERT_EQ(program.size(), 10u);
    EXPECT_EQ(program[0].op, Opcode::LoadWeights);
    EXPECT_EQ(program[1].op, Opcode::StreamCompute);
    EXPECT_EQ(program[1].mac_cycles, 33u); // EBT 6: 32 + 1
    EXPECT_EQ(program[8].op, Opcode::Barrier);
    EXPECT_EQ(program[9].op, Opcode::Halt);
}

/** Interpreter timing equals the simulator across schemes and layers. */
class IsaTiming
    : public ::testing::TestWithParam<std::tuple<Scheme, int>>
{};

TEST_P(IsaTiming, MatchesTiling)
{
    const auto [scheme, layer_idx] = GetParam();
    ArrayConfig array{12, 14, {scheme, 8, 0}, {}};
    const auto layer = alexnetLayers()[layer_idx];
    const auto program = buildProgram(array, layer);
    const auto stats = interpretProgram(program);
    const auto tiling = tileLayer(array, layer);
    EXPECT_EQ(stats.cycles, tiling.compute_cycles);
    EXPECT_EQ(stats.weight_tiles, u64(tiling.folds));
    EXPECT_EQ(stats.streamed_rows, u64(tiling.folds) * u64(tiling.m));
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndLayers, IsaTiming,
    ::testing::Combine(::testing::Values(Scheme::BinaryParallel,
                                         Scheme::BinarySerial,
                                         Scheme::USystolicRate,
                                         Scheme::UgemmHybrid),
                       ::testing::Values(0, 1, 5)));

TEST(Isa, HaltStopsExecution)
{
    std::vector<Instruction> program;
    program.push_back(Instruction{Opcode::Halt, 0, 0, 0, 1, 0});
    program.push_back(
        Instruction{Opcode::LoadWeights, 12, 14, 0, 1, 0});
    const auto stats = interpretProgram(program);
    EXPECT_EQ(stats.cycles, 0u);
    EXPECT_EQ(stats.weight_tiles, 0u);
    EXPECT_EQ(stats.instructions, 1u);
}

} // namespace
} // namespace usys
