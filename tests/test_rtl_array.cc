/**
 * @file
 * Referee cross-validation: the signal-level two-phase RtlArray must
 * reproduce the column-decomposed SystolicArray bit-for-bit and
 * cycle-for-cycle on every scheme, bitwidth, early-termination point,
 * and array shape — independently confirming the decomposition argument
 * and the closed-form fold latency.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "common/fixed_point.h"
#include "common/prng.h"
#include "arch/rtl_array.h"

namespace usys {
namespace {

Matrix<i32>
randomMatrix(int rows, int cols, int bits, Prng &prng)
{
    const i32 max_mag = maxMagnitude(bits);
    Matrix<i32> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    return m;
}

using RtlCase = std::tuple<Scheme, int, int, int, int>;
// scheme, bits, et_bits, rows, cols

class RtlVsDecomposed : public ::testing::TestWithParam<RtlCase>
{};

TEST_P(RtlVsDecomposed, BitAndCycleExactAgreement)
{
    const auto [scheme, bits, et_bits, rows, cols] = GetParam();
    ArrayConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.kernel = {scheme, bits, et_bits};

    Prng prng(u64(int(scheme)) * 7919 + u64(bits) * 131 +
              u64(rows) * 17 + u64(cols));
    const int m_rows = 5;
    const auto input = randomMatrix(m_rows, rows, bits, prng);
    const auto weights = randomMatrix(rows, cols, bits, prng);

    const auto rtl = RtlArray(cfg).runFold(input, weights);
    const auto decomposed = SystolicArray(cfg).runFold(input, weights);

    EXPECT_EQ(rtl.output, decomposed.output) << cfg.kernel.name();
    EXPECT_EQ(rtl.cycles, decomposed.cycles) << cfg.kernel.name();
    EXPECT_EQ(rtl.cycles, SystolicArray(cfg).foldLatency(m_rows));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, RtlVsDecomposed,
    ::testing::Values(
        RtlCase{Scheme::BinaryParallel, 8, 0, 4, 4},
        RtlCase{Scheme::BinaryParallel, 16, 0, 3, 6},
        RtlCase{Scheme::BinarySerial, 8, 0, 4, 4},
        RtlCase{Scheme::BinarySerial, 12, 0, 5, 3},
        RtlCase{Scheme::USystolicRate, 8, 0, 4, 4},
        RtlCase{Scheme::USystolicRate, 8, 6, 4, 5},
        RtlCase{Scheme::USystolicRate, 8, 7, 2, 7},
        RtlCase{Scheme::USystolicRate, 10, 8, 3, 3},
        RtlCase{Scheme::USystolicTemporal, 8, 0, 4, 4},
        RtlCase{Scheme::USystolicTemporal, 7, 0, 6, 2},
        RtlCase{Scheme::UgemmHybrid, 7, 0, 4, 4},
        RtlCase{Scheme::UgemmHybrid, 8, 0, 2, 3}));

TEST(RtlArray, SingleColumnAndSingleRowEdges)
{
    // Degenerate shapes exercise the wire plumbing corners.
    for (auto [rows, cols] : {std::pair{1, 5}, std::pair{5, 1},
                              std::pair{1, 1}}) {
        ArrayConfig cfg;
        cfg.rows = rows;
        cfg.cols = cols;
        cfg.kernel = {Scheme::USystolicRate, 8, 6};
        Prng prng(u64(rows) * 100 + u64(cols));
        const auto input = randomMatrix(4, rows, 8, prng);
        const auto weights = randomMatrix(rows, cols, 8, prng);
        const auto rtl = RtlArray(cfg).runFold(input, weights);
        const auto ref = SystolicArray(cfg).runFold(input, weights);
        EXPECT_EQ(rtl.output, ref.output) << rows << "x" << cols;
        EXPECT_EQ(rtl.cycles, ref.cycles) << rows << "x" << cols;
    }
}

} // namespace
} // namespace usys
