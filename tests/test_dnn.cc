/**
 * @file
 * Tests for the DNN substrate: layer forward correctness against naive
 * references, numerical gradient checks for every trainable layer,
 * backend quantization behavior, dataset determinism, training
 * convergence, and weight (de)serialization.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "dnn/backend.h"
#include "dnn/data.h"
#include "dnn/models.h"
#include "dnn/train.h"

namespace usys {
namespace {

const NumericConfig kFp32{NumericMode::Fp32, 8};

Tensor
randomTensor(int n, int c, int h, int w, Prng &prng)
{
    Tensor t(n, c, h, w);
    for (auto &v : t.raw())
        v = float(prng.gaussian());
    return t;
}

TEST(Backend, Fp32GemmMatchesNaive)
{
    Prng prng(5);
    MatF a(4, 6), b(6, 3);
    for (auto &v : a.data())
        v = float(prng.gaussian());
    for (auto &v : b.data())
        v = float(prng.gaussian());
    const auto c = gemmFp32(a, b);
    for (int m = 0; m < 4; ++m)
        for (int n = 0; n < 3; ++n) {
            float expect = 0;
            for (int k = 0; k < 6; ++k)
                expect += a(m, k) * b(k, n);
            EXPECT_NEAR(c(m, n), expect, 1e-4);
        }
}

TEST(Backend, QuantizedModesApproachFp32WithBits)
{
    Prng prng(6);
    MatF a(8, 32), b(32, 8);
    for (auto &v : a.data())
        v = float(prng.gaussian());
    for (auto &v : b.data())
        v = float(prng.gaussian());
    const auto ref = gemmFp32(a, b);

    for (NumericMode mode : {NumericMode::FxpIres, NumericMode::FxpOres,
                             NumericMode::UnaryRate,
                             NumericMode::UnaryTemporal,
                             NumericMode::UgemmH}) {
        double prev = 1e18;
        for (int ebt : {4, 8, 12}) {
            const auto out = gemmWithMode(a, b, {mode, ebt});
            double err = 0, norm = 0;
            for (int m = 0; m < 8; ++m)
                for (int n = 0; n < 8; ++n) {
                    err += std::pow(out(m, n) - ref(m, n), 2);
                    norm += std::pow(ref(m, n), 2);
                }
            const double nrmse = std::sqrt(err / norm);
            EXPECT_LT(nrmse, prev * 1.05) << int(mode) << " ebt " << ebt;
            prev = nrmse;
        }
        EXPECT_LT(prev, 0.05) << int(mode);
    }
}

TEST(Backend, UnaryBetweenOresAndIres)
{
    // The paper's central accuracy ordering at matched EBT.
    Prng prng(7);
    MatF a(8, 64), b(64, 8);
    for (auto &v : a.data())
        v = float(prng.gaussian());
    for (auto &v : b.data())
        v = float(prng.gaussian());
    const auto ref = gemmFp32(a, b);
    auto nrmse = [&](NumericMode mode, int ebt) {
        const auto out = gemmWithMode(a, b, {mode, ebt});
        double err = 0, norm = 0;
        for (int m = 0; m < 8; ++m)
            for (int n = 0; n < 8; ++n) {
                err += std::pow(out(m, n) - ref(m, n), 2);
                norm += std::pow(ref(m, n), 2);
            }
        return std::sqrt(err / norm);
    };
    for (int ebt : {6, 8}) {
        const double o_res = nrmse(NumericMode::FxpOres, ebt);
        const double unary = nrmse(NumericMode::UnaryRate, ebt);
        const double i_res = nrmse(NumericMode::FxpIres, ebt);
        EXPECT_LT(i_res, unary) << ebt;
        EXPECT_LT(unary, o_res) << ebt;
    }
}

TEST(Layers, ConvForwardMatchesNaive)
{
    Prng prng(8);
    Conv2d conv(2, 3, 3, 1, 1, prng);
    Tensor x = randomTensor(2, 2, 5, 5, prng);
    const Tensor y = conv.forward(x, kFp32);
    ASSERT_EQ(y.c(), 3);
    ASSERT_EQ(y.h(), 5);
    ASSERT_EQ(y.w(), 5);

    // Naive direct convolution for one output position.
    auto blobs = conv.paramBlobs();
    const auto &w = *blobs[0];
    const auto &bias = *blobs[1];
    for (int oc = 0; oc < 3; ++oc) {
        float expect = bias[oc];
        const int oh = 2, ow = 3, ni = 1;
        int col = 0;
        for (int ci = 0; ci < 2; ++ci)
            for (int kh = 0; kh < 3; ++kh)
                for (int kw = 0; kw < 3; ++kw, ++col) {
                    const int ih = oh + kh - 1, iw = ow + kw - 1;
                    if (ih >= 0 && ih < 5 && iw >= 0 && iw < 5)
                        expect += x.at(ni, ci, ih, iw) *
                                  w[std::size_t(col) * 3 + oc];
                }
        EXPECT_NEAR(y.at(1, oc, 2, 3), expect, 1e-4) << oc;
    }
}

/** Central-difference gradient check through a small network. */
TEST(Layers, NumericalGradientCheck)
{
    Prng prng(9);
    Sequential net;
    net.add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, prng));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<MaxPool2d>());
    net.add(std::make_unique<Linear>(2 * 3 * 3, 4, prng));

    Tensor x = randomTensor(2, 1, 6, 6, prng);
    const std::vector<int> labels{1, 3};

    auto loss_at = [&]() {
        Tensor logits = net.forward(x, kFp32);
        return softmaxCrossEntropy(logits, labels);
    };

    // Analytic gradients.
    Tensor logits = net.forward(x, kFp32);
    Tensor grad;
    softmaxCrossEntropy(logits, labels, &grad);
    Tensor grad_x = net.backward(grad);

    // Check input gradient entries by central differences.
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < x.raw().size(); i += 7) {
        const float orig = x.raw()[i];
        x.raw()[i] = orig + eps;
        const double up = loss_at();
        x.raw()[i] = orig - eps;
        const double down = loss_at();
        x.raw()[i] = orig;
        const double numeric = (up - down) / (2 * eps);
        EXPECT_NEAR(grad_x.raw()[i], numeric,
                    5e-3 * std::max(1.0, std::abs(numeric)))
            << "index " << i;
    }
}

TEST(Layers, ResidualBlockGradientCheck)
{
    Prng prng(10);
    ResidualBlock block(2, 4, 2, prng); // projection path exercised
    Tensor x = randomTensor(1, 2, 6, 6, prng);

    auto loss_at = [&]() {
        Tensor y = block.forward(x, kFp32);
        double s = 0;
        for (float v : y.raw())
            s += v * v;
        return 0.5 * s;
    };

    Tensor y = block.forward(x, kFp32);
    Tensor grad = y; // dLoss/dy = y
    Tensor grad_x = block.backward(grad);

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < x.raw().size(); i += 11) {
        const float orig = x.raw()[i];
        x.raw()[i] = orig + eps;
        const double up = loss_at();
        x.raw()[i] = orig - eps;
        const double down = loss_at();
        x.raw()[i] = orig;
        const double numeric = (up - down) / (2 * eps);
        EXPECT_NEAR(grad_x.raw()[i], numeric,
                    5e-3 * std::max(1.0, std::abs(numeric)));
    }
}

TEST(Layers, MaxPoolRoutesGradientToArgmax)
{
    Prng prng(11);
    MaxPool2d pool;
    Tensor x(1, 1, 4, 4);
    for (std::size_t i = 0; i < x.raw().size(); ++i)
        x.raw()[i] = float(i);
    const Tensor y = pool.forward(x, kFp32);
    EXPECT_EQ(y.at(0, 0, 0, 0), 5.0f); // max of {0,1,4,5}
    Tensor g(1, 1, 2, 2);
    g.raw().assign(4, 1.0f);
    const Tensor gx = pool.backward(g);
    EXPECT_EQ(gx.at(0, 0, 1, 1), 1.0f);
    EXPECT_EQ(gx.at(0, 0, 0, 0), 0.0f);
}

TEST(Loss, SoftmaxCrossEntropyGradientSumsToZero)
{
    Prng prng(12);
    Tensor logits = randomTensor(3, 5, 1, 1, prng);
    Tensor grad;
    const double loss = softmaxCrossEntropy(logits, {0, 2, 4}, &grad);
    EXPECT_GT(loss, 0.0);
    for (int ni = 0; ni < 3; ++ni) {
        double sum = 0;
        for (int c = 0; c < 5; ++c)
            sum += grad.at(ni, c, 0, 0);
        EXPECT_NEAR(sum, 0.0, 1e-6);
    }
}

TEST(Data, DeterministicInSeed)
{
    const auto a = makeDigits(20, 99);
    const auto b = makeDigits(20, 99);
    const auto c = makeDigits(20, 100);
    EXPECT_EQ(a.images, b.images);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_NE(a.images, c.images);
    EXPECT_EQ(a.classes, 10);
    EXPECT_EQ(a.size, 16);
}

TEST(Data, AllTiersCoverAllClasses)
{
    for (const auto &ds :
         {makeDigits(400, 1), makeGratings(400, 1),
          makeHardGlyphs(400, 1)}) {
        std::vector<int> seen(ds.classes, 0);
        for (int l : ds.labels) {
            ASSERT_GE(l, 0);
            ASSERT_LT(l, ds.classes);
            seen[l] = 1;
        }
        for (int s : seen)
            EXPECT_EQ(s, 1);
    }
}

TEST(Train, ConvergesOnEasyDigits)
{
    const auto train = makeDigits(600, 21, 0.15f);
    const auto test = makeDigits(150, 22, 0.15f);
    auto model = buildCnn4(train.classes, 3);
    TrainOpts opts;
    opts.epochs = 4;
    trainClassifier(*model, train, opts);
    const double acc = evaluateAccuracy(*model, test, kFp32);
    EXPECT_GT(acc, 0.85);
}

TEST(Train, SaveLoadRoundtrip)
{
    const auto test = makeDigits(50, 23);
    auto model = buildCnn4(10, 3);
    const auto train = makeDigits(300, 24);
    TrainOpts opts;
    opts.epochs = 2;
    trainClassifier(*model, train, opts);
    const double acc = evaluateAccuracy(*model, test, kFp32);

    const std::string path = "/tmp/usys_test_weights.bin";
    ASSERT_TRUE(saveWeights(*model, path));
    auto fresh = buildCnn4(10, 99); // different init
    ASSERT_TRUE(loadWeights(*fresh, path));
    EXPECT_DOUBLE_EQ(evaluateAccuracy(*fresh, test, kFp32), acc);

    auto wrong = buildResLite(10, 3); // mismatched blob sizes
    EXPECT_FALSE(loadWeights(*wrong, path));
}

TEST(Layers, ForwardMixedMatchesUniformWhenConfigsEqual)
{
    Prng prng(31);
    auto model = buildCnn4(10, 3);
    Tensor x = randomTensor(2, 1, 16, 16, prng);
    const NumericConfig cfg{NumericMode::UnaryRate, 7};
    const Tensor uniform = model->forward(x, cfg);
    const std::vector<NumericConfig> per_layer(model->layerCount(), cfg);
    const Tensor mixed = model->forwardMixed(x, per_layer);
    ASSERT_EQ(uniform.size(), mixed.size());
    for (std::size_t i = 0; i < uniform.size(); ++i)
        EXPECT_FLOAT_EQ(uniform.raw()[i], mixed.raw()[i]);
}

TEST(Layers, ForwardMixedRejectsWrongArity)
{
    Prng prng(33);
    auto model = buildCnn4(10, 3);
    Tensor x = randomTensor(1, 1, 16, 16, prng);
    const std::vector<NumericConfig> too_few(2);
    EXPECT_EXIT(model->forwardMixed(x, too_few),
                ::testing::ExitedWithCode(1), "one config per sublayer");
}

TEST(Models, ParameterCountsOrdered)
{
    auto count = [](Sequential &m) {
        std::size_t total = 0;
        for (auto *blob : m.paramBlobs())
            total += blob->size();
        return total;
    };
    auto cnn4 = buildCnn4(10, 1);
    auto res = buildResLite(10, 1);
    auto alex = buildAlexLite(10, 1);
    // Mirrors the paper's small < medium < large parameter ordering.
    EXPECT_LT(count(*cnn4), count(*res));
    EXPECT_GT(count(*alex), 10000u);
}

} // namespace
} // namespace usys
