/**
 * @file
 * Tests for the synchronizing FIFO and the jitter-tolerance analysis
 * that backs the paper's "long MAC cycles hide timing fluctuation"
 * argument (Section III-A).
 */

#include <gtest/gtest.h>

#include "arch/fifo.h"
#include "arch/scheme.h"

namespace usys {
namespace {

TEST(SyncFifo, OrderingAndCapacity)
{
    SyncFifo fifo(2);
    EXPECT_TRUE(fifo.push(5));
    EXPECT_TRUE(fifo.push(7));
    EXPECT_FALSE(fifo.canPush());
    EXPECT_FALSE(fifo.push(9)); // full

    EXPECT_FALSE(fifo.pop(4)); // head not ready yet
    EXPECT_TRUE(fifo.pop(5));
    EXPECT_EQ(fifo.occupancy(), 1u);
    EXPECT_TRUE(fifo.pop(10));
    EXPECT_FALSE(fifo.pop(10)); // empty
}

TEST(JitterTolerance, NoJitterNeedsDepthOne)
{
    const auto result = analyzeJitterTolerance(1, 0.0, 512);
    EXPECT_EQ(result.required_depth, 1);
    EXPECT_EQ(result.stall_rate_depth1, 0.0);
}

TEST(JitterTolerance, LongMacIntervalsAbsorbJitter)
{
    // The same 12-cycle memory jitter: a 1-cycle MAC (binary parallel)
    // needs a deep FIFO; the 33/129-cycle unary intervals do not.
    const double jitter = 12.0;
    const auto bp = analyzeJitterTolerance(1, jitter, 1024, 3);
    const auto u32c = analyzeJitterTolerance(33, jitter, 1024, 3);
    const auto u128c = analyzeJitterTolerance(129, jitter, 1024, 3);
    EXPECT_GT(bp.required_depth, 4);
    EXPECT_LE(u32c.required_depth, 2);
    EXPECT_EQ(u128c.required_depth, 1);
    EXPECT_GT(bp.stall_rate_depth1, u32c.stall_rate_depth1);
}

TEST(JitterTolerance, DepthGrowsWithJitter)
{
    const auto small = analyzeJitterTolerance(1, 4.0, 1024, 5);
    const auto large = analyzeJitterTolerance(1, 24.0, 1024, 5);
    EXPECT_LE(small.required_depth, large.required_depth);
}

} // namespace
} // namespace usys
