# ctest driver for the end-to-end sweep benchmark. Expects:
#   BENCH     path to the e2e_sweep binary
#   PYTHON    python3 interpreter
#   TOOLS_DIR repo tools/ directory (schema + checker)
#   WORK_DIR  scratch directory for the artifacts
#
# Runs the sweep at 1 and 3 executor threads and requires the
# stats-registry dumps byte-identical (the thread-count determinism
# contract), then validates BENCH_e2e.json against its schema. On hosts
# with at least 4 physical cores a third run at the auto thread count
# additionally enforces the >= 2x executor-vs-forkjoin speedup floor
# (pointless on smaller hosts, where the binary would skip it anyway).

set(stats1 ${WORK_DIR}/e2e.stats.t1.json)
set(stats3 ${WORK_DIR}/e2e.stats.t3.json)
set(artifact ${WORK_DIR}/BENCH_e2e.json)

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env USYS_THREADS=1
            ${BENCH} --reps 1 --out ${artifact} --stats-json ${stats1}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "e2e_sweep (1 thread) failed (${rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env USYS_THREADS=3
            ${BENCH} --reps 1 --out ${artifact} --stats-json ${stats3}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "e2e_sweep (3 threads) failed (${rc})")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${stats1} ${stats3}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "stats JSON differs between thread counts "
                        "(${stats1} vs ${stats3}) — the parallel sweep "
                        "leaked nondeterminism into the registry")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/check_stats_schema.py
            --schema ${TOOLS_DIR}/bench_e2e_schema.json ${artifact}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "BENCH_e2e.json schema validation failed")
endif()

# Crash-safety leg: kill the sweep after two computed jobs, resume from
# the checkpoint, and require the resumed stats dump byte-identical to
# the straight single-thread run above.
set(ckpt ${WORK_DIR}/e2e_sweep.ckpt)
set(stats_resumed ${WORK_DIR}/e2e.stats.resumed.json)
file(REMOVE ${ckpt})
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env USYS_THREADS=1
            ${BENCH} --reps 1 --out ${artifact}
            --checkpoint ${ckpt} --die-after 2
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
    message(FATAL_ERROR "e2e_sweep --die-after 2 exited cleanly — "
                        "the crash leg did not crash")
endif()
if(NOT EXISTS ${ckpt})
    message(FATAL_ERROR "e2e_sweep died without leaving a checkpoint")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env USYS_THREADS=1
            ${BENCH} --reps 1 --out ${artifact}
            --checkpoint ${ckpt} --resume --stats-json ${stats_resumed}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "e2e_sweep --resume failed (${rc})")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${stats1} ${stats_resumed}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "resumed stats JSON differs from the straight "
                        "run (${stats1} vs ${stats_resumed}) — "
                        "checkpoint restore is not byte-exact")
endif()

cmake_host_system_information(RESULT cores QUERY NUMBER_OF_PHYSICAL_CORES)
if(cores GREATER_EQUAL 4)
    execute_process(
        COMMAND ${BENCH} --reps 3 --min-speedup 2
                --out ${artifact} --stats-json ${WORK_DIR}/e2e.stats.perf.json
        RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "e2e_sweep perf gate failed (${rc}) — "
                            "executor below 2x over the fork-join baseline")
    endif()
endif()
