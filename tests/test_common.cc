/**
 * @file
 * Unit tests for the common utilities: fixed-point helpers, PRNG,
 * matrices, streaming statistics, parallel loops, and table formatting.
 */

#include <atomic>
#include <set>

#include <gtest/gtest.h>

#include "common/cli.h"
#include "common/fixed_point.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/matrix.h"
#include "common/executor.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/table.h"

namespace usys {
namespace {

TEST(FixedPoint, SignMagnitudeRoundtrip)
{
    for (i32 v : {-127, -1, 0, 1, 99, 127}) {
        const SignMag sm = toSignMag(v);
        EXPECT_EQ(sm.toSigned(), v);
        EXPECT_EQ(sm.negative, v < 0);
    }
    EXPECT_EQ(toSignMag(-5).magnitude, 5u);
}

TEST(FixedPoint, QuantizeClampsToMagnitudeRange)
{
    EXPECT_EQ(maxMagnitude(8), 127);
    EXPECT_EQ(quantize(1000.0, 1.0, 8), 127);
    EXPECT_EQ(quantize(-1000.0, 1.0, 8), -127);
    EXPECT_EQ(quantize(0.4, 1.0, 8), 0);
    EXPECT_EQ(quantize(0.6, 1.0, 8), 1);
    EXPECT_DOUBLE_EQ(dequantize(quantize(5.0, 0.5, 8), 0.5), 5.0);
}

TEST(FixedPoint, SymmetricAndPow2Scales)
{
    EXPECT_DOUBLE_EQ(symmetricScale(127.0, 8), 1.0);
    EXPECT_DOUBLE_EQ(symmetricScale(0.0, 8), 1.0);
    EXPECT_DOUBLE_EQ(pow2Scale(0.7), 1.0);
    EXPECT_DOUBLE_EQ(pow2Scale(1.1), 2.0);
    EXPECT_DOUBLE_EQ(pow2Scale(0.25), 0.25);
}

TEST(Prng, DeterministicAndReseedable)
{
    Prng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
    a.reseed(42);
    Prng fresh(42);
    EXPECT_EQ(a.next(), fresh.next());
}

TEST(Prng, UniformBoundsAndMoments)
{
    Prng prng(7);
    OnlineStats uni, gauss;
    for (int i = 0; i < 20000; ++i) {
        const double u = prng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        uni.add(u);
        gauss.add(prng.gaussian());
    }
    EXPECT_NEAR(uni.mean(), 0.5, 0.02);
    EXPECT_NEAR(gauss.mean(), 0.0, 0.05);
    EXPECT_NEAR(gauss.stddev(), 1.0, 0.05);
}

TEST(Prng, BelowCoversRange)
{
    Prng prng(9);
    std::set<u64> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(prng.below(7));
    EXPECT_EQ(seen.size(), 7u);
    EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Matrix, AccessAndEquality)
{
    Matrix<i32> m(2, 3, 5);
    EXPECT_EQ(m.at(1, 2), 5);
    m(0, 1) = 9;
    EXPECT_EQ(m.at(0, 1), 9);
    Matrix<i32> n(2, 3, 5);
    EXPECT_FALSE(m == n);
    n(0, 1) = 9;
    EXPECT_TRUE(m == n);
}

TEST(Matrix, BoundsCheckedAccessPanics)
{
    Matrix<i32> m(2, 2);
    EXPECT_EXIT(m.at(2, 0), ::testing::KilledBySignal(SIGABRT), "");
    EXPECT_EXIT(m.at(0, -1), ::testing::KilledBySignal(SIGABRT), "");
}

TEST(Matrix, ReferenceGemmKnownValues)
{
    Matrix<i32> a(2, 2), b(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    b(0, 0) = 5;
    b(0, 1) = 6;
    b(1, 0) = 7;
    b(1, 1) = 8;
    const auto c = referenceGemm(a, b);
    EXPECT_EQ(c(0, 0), 19);
    EXPECT_EQ(c(0, 1), 22);
    EXPECT_EQ(c(1, 0), 43);
    EXPECT_EQ(c(1, 1), 50);
}

TEST(Stats, OnlineMomentsMatchClosedForm)
{
    OnlineStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.variance(), 1.25);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(Stats, MergeMatchesSinglePass)
{
    // Chan-style parallel merge must reproduce the single-pass moments
    // exactly, the property parallel_for shards rely on.
    Prng prng(11);
    std::vector<double> values;
    for (int i = 0; i < 257; ++i)
        values.push_back(prng.gaussian() * 3.0 + 1.0);

    OnlineStats whole;
    for (double v : values)
        whole.add(v);

    OnlineStats a, b, c;
    for (std::size_t i = 0; i < values.size(); ++i)
        (i < 10 ? a : i % 2 ? b : c).add(values[i]);
    OnlineStats merged;
    merged.merge(a); // merge into empty
    merged.merge(b);
    merged.merge(c);
    merged.merge(OnlineStats{}); // merging empty is a no-op

    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9);
}

TEST(Logging, LevelParsingAndGate)
{
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("inform"), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::Inform);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("warning"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("quiet"), LogLevel::Quiet);
    EXPECT_EQ(parseLogLevel("none"), LogLevel::Quiet);
    EXPECT_EQ(parseLogLevel("bogus"), LogLevel::Inform);

    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    // Gated paths must be safe to call at any level.
    debug("dropped");
    inform("dropped");
    warn("dropped");
    setLogLevel(saved);
}

TEST(Stats, RmseTracker)
{
    RmseTracker t;
    t.add(10.0, 13.0);
    t.add(10.0, 7.0);
    EXPECT_DOUBLE_EQ(t.rmse(), 3.0);
    EXPECT_DOUBLE_EQ(t.meanError(), 0.0);
    EXPECT_DOUBLE_EQ(t.maxAbsError(), 3.0);
    EXPECT_DOUBLE_EQ(t.normalizedRmse(), 0.3);
    EXPECT_DOUBLE_EQ(pctReduction(10.0, 4.0), 60.0);
}

TEST(ParallelFor, VisitsEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(997);
    parallelFor(0, hits.size(), [&](u64 i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    // Empty and reversed ranges are no-ops.
    parallelFor(5, 5, [&](u64) { FAIL(); });
    parallelFor(7, 3, [&](u64) { FAIL(); });
}

TEST(ParallelFor, GrainChunkingVisitsEveryIndexOnce)
{
    // Coverage must be exact for grains that divide the range, leave a
    // ragged tail, exceed the range, or are coerced from 0.
    for (u64 grain : {u64(1), u64(7), u64(64), u64(10000), u64(0)}) {
        std::vector<std::atomic<int>> hits(1003);
        parallelFor(3, 3 + hits.size(),
                    [&](u64 i) { hits[i - 3].fetch_add(1); }, grain);
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "grain " << grain;
    }
}

TEST(ParallelFor, GrainEdgeRanges)
{
    // Single-element range: exactly one visit regardless of grain.
    std::atomic<int> calls{0};
    parallelFor(41, 42, [&](u64 i) {
        EXPECT_EQ(i, 41u);
        calls.fetch_add(1);
    }, 16);
    EXPECT_EQ(calls.load(), 1);
    // Empty and reversed ranges stay no-ops with a grain.
    parallelFor(5, 5, [&](u64) { FAIL(); }, 8);
    parallelFor(9, 2, [&](u64) { FAIL(); }, 8);
}

TEST(Stats, RmseTrackerMergeMatchesSinglePass)
{
    Prng prng(5);
    RmseTracker whole, a, b;
    for (int i = 0; i < 100; ++i) {
        const double ref = prng.gaussian();
        const double got = ref + 0.1 * prng.gaussian();
        whole.add(ref, got);
        (i < 37 ? a : b).add(ref, got);
    }
    RmseTracker merged;
    merged.merge(a);
    merged.merge(b);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.rmse(), whole.rmse(), 1e-12);
    EXPECT_NEAR(merged.normalizedRmse(), whole.normalizedRmse(), 1e-12);
    EXPECT_NEAR(merged.meanError(), whole.meanError(), 1e-12);
    EXPECT_DOUBLE_EQ(merged.maxAbsError(), whole.maxAbsError());
}

TEST(Hash, Crc32cMatchesCastagnoliVectors)
{
    // RFC 3720 appendix B test vector.
    EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
    EXPECT_EQ(crc32c(""), 0u);
    // All-zero runs are the classic "plain sum misses it" case.
    EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);

    // Chaining: feeding the running crc back in continues the stream.
    const std::string doc = "usystolic checkpoint body\n";
    for (std::size_t cut = 0; cut <= doc.size(); ++cut)
        EXPECT_EQ(crc32c(std::string_view(doc).substr(cut),
                         crc32c(std::string_view(doc).substr(0, cut))),
                  crc32c(doc))
            << "cut at " << cut;

    // A single flipped bit anywhere changes the checksum.
    std::string flipped = doc;
    flipped[doc.size() / 2] ^= 0x01;
    EXPECT_NE(crc32c(flipped), crc32c(doc));
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(-1.0, 0), "-1");
    EXPECT_EQ(TablePrinter::sci(12345.0, 2), "1.23e+04");
}

TEST(Cli, ParseIntFlagAcceptsStrictDecimals)
{
    EXPECT_EQ(parseIntFlag("--reps", "0", 0, 100), 0);
    EXPECT_EQ(parseIntFlag("--reps", "42", 0, 100), 42);
    EXPECT_EQ(parseIntFlag("--off", "-7", -10, 10), -7);
    EXPECT_EQ(parseIntFlag("--big", "9223372036854775807",
                           i64(0), i64(9223372036854775807ll)),
              9223372036854775807ll);
}

TEST(Cli, ParseIntFlagRejectsGarbage)
{
    // Truncation bugs this guards against: "1e3" parsed as 1 would
    // silently run 1 rep instead of 1000.
    EXPECT_EXIT(parseIntFlag("--reps", "12x", 0, 100),
                ::testing::ExitedWithCode(1), "--reps");
    EXPECT_EXIT(parseIntFlag("--reps", "1e3", 0, 10000),
                ::testing::ExitedWithCode(1), "--reps");
    EXPECT_EXIT(parseIntFlag("--reps", "", 0, 100),
                ::testing::ExitedWithCode(1), "--reps");
    EXPECT_EXIT(parseIntFlag("--reps", "abc", 0, 100),
                ::testing::ExitedWithCode(1), "--reps");
    EXPECT_EXIT(parseIntFlag("--reps", "101", 0, 100),
                ::testing::ExitedWithCode(1), "--reps");
    EXPECT_EXIT(parseIntFlag("--reps", "-1", 0, 100),
                ::testing::ExitedWithCode(1), "--reps");
    EXPECT_EXIT(parseIntFlag("--reps", "99999999999999999999", 0,
                             100),
                ::testing::ExitedWithCode(1), "--reps");
}

TEST(Cli, ParseDoubleFlagAcceptsFiniteNumbers)
{
    EXPECT_DOUBLE_EQ(parseDoubleFlag("--eps", "0.25", 0.0, 1.0), 0.25);
    EXPECT_DOUBLE_EQ(parseDoubleFlag("--eps", "1e-3", 0.0, 1.0), 1e-3);
    EXPECT_DOUBLE_EQ(parseDoubleFlag("--x", "-2.5", -10.0, 10.0), -2.5);
    EXPECT_DOUBLE_EQ(parseDoubleFlag("--x", "3", 0.0, 10.0), 3.0);
}

TEST(Cli, ParseDoubleFlagRejectsGarbage)
{
    EXPECT_EXIT(parseDoubleFlag("--eps", "1.5.2", 0.0, 10.0),
                ::testing::ExitedWithCode(1), "--eps");
    EXPECT_EXIT(parseDoubleFlag("--eps", "", 0.0, 10.0),
                ::testing::ExitedWithCode(1), "--eps");
    EXPECT_EXIT(parseDoubleFlag("--eps", "nan", 0.0, 10.0),
                ::testing::ExitedWithCode(1), "--eps");
    EXPECT_EXIT(parseDoubleFlag("--eps", "inf", 0.0, 10.0),
                ::testing::ExitedWithCode(1), "--eps");
    EXPECT_EXIT(parseDoubleFlag("--eps", "1e400", 0.0, 1e308),
                ::testing::ExitedWithCode(1), "--eps");
    EXPECT_EXIT(parseDoubleFlag("--eps", "2.0", 0.0, 1.0),
                ::testing::ExitedWithCode(1), "--eps");
    EXPECT_EXIT(parseDoubleFlag("--eps", "0.5x", 0.0, 1.0),
                ::testing::ExitedWithCode(1), "--eps");
}

} // namespace
} // namespace usys
