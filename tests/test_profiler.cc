/**
 * @file
 * Tests of the hierarchical scoped profiler: nesting and call counts,
 * the disabled fast path, serialization formats, and — the load-bearing
 * contract — that the merged tree's structure (names and call counts)
 * is identical whether a workload runs on 1 executor thread or 3,
 * thanks to the worker-anchor mechanism.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/profiler.h"
#include "common/stats_registry.h"

using namespace usys;

namespace {

/** Pin the executor thread count for one test, restoring the
 *  environment-resolved default afterwards. */
struct ThreadGuard
{
    explicit ThreadGuard(unsigned n) { Executor::global().setThreads(n); }
    ~ThreadGuard() { Executor::global().setThreads(0); }
};

/** Every test starts and ends with a clean, disabled profiler. */
class ProfilerTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        Profiler::global().setEnabled(false);
        Profiler::global().reset();
    }
    void TearDown() override
    {
        Profiler::global().setEnabled(false);
        Profiler::global().reset();
    }
};

const Profiler::MergedNode *
findChild(const Profiler::MergedNode &node, const std::string &name)
{
    for (const auto &child : node.children)
        if (child.name == name)
            return &child;
    return nullptr;
}

/** A two-level workload: one outer scope, a parallel region whose body
 *  opens an inner scope per index. */
void
runAnchoredWorkload()
{
    USYS_PROF_SCOPE("outer");
    std::atomic<u64> sink{0};
    parallelFor(0, 8, [&](u64 i) {
        USYS_PROF_SCOPE("inner");
        u64 acc = i;
        for (int k = 0; k < 2000; ++k)
            acc = acc * 6364136223846793005ull + 1442695040888963407ull;
        sink += acc;
    });
}

} // namespace

TEST_F(ProfilerTest, DisabledScopesRecordNothing)
{
    {
        USYS_PROF_SCOPE("ghost");
        USYS_PROF_SCOPE("ghost.child");
    }
    const auto root = Profiler::global().merged();
    EXPECT_EQ(root.children.size(), 0u);
}

TEST_F(ProfilerTest, NestingCountsAndExclusiveTimes)
{
    Profiler &prof = Profiler::global();
    prof.setEnabled(true);
    for (int rep = 0; rep < 3; ++rep) {
        USYS_PROF_SCOPE("a");
        for (int k = 0; k < 2; ++k) {
            USYS_PROF_SCOPE("b");
        }
        USYS_PROF_SCOPE("c");
    }
    prof.setEnabled(false);

    const auto root = prof.merged();
    EXPECT_EQ(root.name, "root");
    const auto *a = findChild(root, "a");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->calls, 3u);
    ASSERT_EQ(a->children.size(), 2u);
    // Children are sorted by name.
    EXPECT_EQ(a->children[0].name, "b");
    EXPECT_EQ(a->children[1].name, "c");
    EXPECT_EQ(a->children[0].calls, 6u);
    EXPECT_EQ(a->children[1].calls, 3u);
    // Inclusive covers the children; exclusive is the derived rest.
    const u64 child_incl =
        a->children[0].incl_ns + a->children[1].incl_ns;
    EXPECT_GE(a->incl_ns, child_incl);
    EXPECT_EQ(a->excl_ns, a->incl_ns - child_incl);
    // The synthetic root spans the whole enabled window.
    EXPECT_GE(root.incl_ns, a->incl_ns);
}

TEST_F(ProfilerTest, UnbalancedPopIsTolerated)
{
    Profiler &prof = Profiler::global();
    prof.setEnabled(true);
    prof.pop(); // no open frame: must not crash or underflow
    {
        USYS_PROF_SCOPE("alone");
    }
    prof.setEnabled(false);
    const auto root = prof.merged();
    const auto *alone = findChild(root, "alone");
    ASSERT_NE(alone, nullptr);
    EXPECT_EQ(alone->calls, 1u);
}

TEST_F(ProfilerTest, InternedNamesSurviveTheSourceString)
{
    Profiler &prof = Profiler::global();
    const char *name = nullptr;
    {
        std::string dynamic = "dyn.scope";
        name = prof.intern(dynamic);
        dynamic.assign(64, 'x'); // clobber the source
    }
    prof.setEnabled(true);
    {
        ProfScope scope(name);
    }
    prof.setEnabled(false);
    const auto root = prof.merged();
    EXPECT_NE(findChild(root, "dyn.scope"), nullptr);
}

TEST_F(ProfilerTest, MergedTreeIsThreadCountInvariant)
{
    Profiler &prof = Profiler::global();

    std::string sig_serial;
    {
        ThreadGuard guard(1);
        prof.setEnabled(true);
        runAnchoredWorkload();
        prof.setEnabled(false);
        sig_serial = prof.signature();
        prof.reset();
    }

    std::string sig_parallel;
    {
        ThreadGuard guard(3);
        prof.setEnabled(true);
        runAnchoredWorkload();
        prof.setEnabled(false);
        sig_parallel = prof.signature();
        prof.reset();
    }

    // Names and call counts must match exactly; only times may differ.
    EXPECT_EQ(sig_serial, sig_parallel);
    EXPECT_NE(sig_serial.find("outer 1"), std::string::npos);
    EXPECT_NE(sig_serial.find("inner 8"), std::string::npos);

    // And the structure is the serial nesting: inner under outer.
    ThreadGuard guard(3);
    prof.setEnabled(true);
    runAnchoredWorkload();
    prof.setEnabled(false);
    const auto root = prof.merged();
    const auto *outer = findChild(root, "outer");
    ASSERT_NE(outer, nullptr);
    const auto *inner = findChild(*outer, "inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->calls, 8u);
    // No stray top-level "inner": worker frames were re-rooted.
    EXPECT_EQ(findChild(root, "inner"), nullptr);
}

TEST_F(ProfilerTest, ForkJoinBaselineIsAlsoAnchored)
{
    Profiler &prof = Profiler::global();
    ThreadGuard guard(3);
    setForkJoinBaseline(true);
    prof.setEnabled(true);
    runAnchoredWorkload();
    prof.setEnabled(false);
    setForkJoinBaseline(false);

    const auto root = prof.merged();
    const auto *outer = findChild(root, "outer");
    ASSERT_NE(outer, nullptr);
    const auto *inner = findChild(*outer, "inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->calls, 8u);
    EXPECT_EQ(findChild(root, "inner"), nullptr);
}

TEST_F(ProfilerTest, JsonAndCollapsedSerialization)
{
    Profiler &prof = Profiler::global();
    prof.setEnabled(true);
    {
        USYS_PROF_SCOPE("ser.a");
        USYS_PROF_SCOPE("ser.b");
    }
    prof.setEnabled(false);

    const std::string json = prof.json("unit_test");
    EXPECT_NE(json.find("\"bench\": \"unit_test\""), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"wall_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"threads\""), std::string::npos);
    EXPECT_NE(json.find("\"root\""), std::string::npos);
    EXPECT_NE(json.find("\"ser.a\""), std::string::npos);
    EXPECT_NE(json.find("\"ser.b\""), std::string::npos);

    const std::string collapsed = prof.collapsed();
    // The leaf's exclusive time appears as "ser.a;ser.b <ns>".
    EXPECT_NE(collapsed.find("ser.a;ser.b "), std::string::npos);
    for (std::size_t pos = 0; pos < collapsed.size();) {
        const std::size_t eol = collapsed.find('\n', pos);
        ASSERT_NE(eol, std::string::npos); // every line terminated
        const std::string line = collapsed.substr(pos, eol - pos);
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        for (char c : line.substr(space + 1))
            EXPECT_TRUE(c >= '0' && c <= '9') << line;
        pos = eol + 1;
    }
}

TEST_F(ProfilerTest, WorkerAnchorIsIdempotentPerRegion)
{
    Profiler &prof = Profiler::global();
    prof.setEnabled(true);
    const char *anchor_name = prof.intern("anchor.site");
    const std::vector<const char *> path{anchor_name};
    prof.applyWorkerAnchor(path, 77);
    {
        USYS_PROF_SCOPE("work");
    }
    prof.applyWorkerAnchor(path, 77); // same region: must be a no-op
    {
        USYS_PROF_SCOPE("work");
    }
    prof.setEnabled(false);

    const auto root = prof.merged();
    const auto *site = findChild(root, "anchor.site");
    ASSERT_NE(site, nullptr);
    EXPECT_EQ(site->calls, 0u); // replica node, never entered
    const auto *work = findChild(*site, "work");
    ASSERT_NE(work, nullptr);
    EXPECT_EQ(work->calls, 2u);
}

TEST_F(ProfilerTest, ExecutorPublishesWorkerTelemetry)
{
    Executor &ex = Executor::global();
    ThreadGuard guard(3);
    std::atomic<u64> sink{0};
    parallelFor(0, 16, [&](u64 i) {
        u64 acc = i;
        for (int k = 0; k < 1000; ++k)
            acc = acc * 2862933555777941757ull + 3037000493ull;
        sink += acc;
    });

    const auto counters = ex.workerCounters();
    ASSERT_EQ(counters.size(), 3u);
    u64 tasks = 0, steals = 0;
    for (const auto &slot : counters) {
        tasks += slot.tasks;
        steals += slot.steals;
    }
    EXPECT_EQ(tasks, 16u); // every chunk executed exactly once
    EXPECT_EQ(steals, ex.stealCount());
    // Slot 0 is the region caller: it never blocks on the region cv.
    EXPECT_EQ(counters[0].idle_ns, 0u);

    Histogram latency("exec.task_latency_us", "latency",
                      Executor::kTaskLatencyLoUs,
                      Executor::kTaskLatencyHiUs,
                      Executor::kTaskLatencyBuckets);
    ex.mergeTaskLatency(latency);
    EXPECT_EQ(latency.count(), 16u);
}
