/**
 * @file
 * Packed-engine cross-validation: the word-packed PackedArray must
 * reproduce SystolicArray and RtlArray bit-for-bit and cycle-for-cycle
 * on every scheme, bitwidth, early-termination point, and array shape —
 * including the masked-final-word boundary (UR EBT windows shorter than
 * one 64-bit word) — and commit byte-identical stats-registry deltas,
 * so flipping the engine (or running tiles in parallel) can never
 * change a result or a dump.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "common/cli.h"
#include "common/executor.h"
#include "common/fixed_point.h"
#include "common/prng.h"
#include "common/stats_registry.h"
#include "arch/packed_array.h"
#include "arch/rtl_array.h"

namespace usys {
namespace {

Matrix<i32>
randomMatrix(int rows, int cols, int bits, Prng &prng)
{
    const i32 max_mag = maxMagnitude(bits);
    Matrix<i32> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    return m;
}

using PackedCase = std::tuple<Scheme, int, int, int, int>;
// scheme, bits, et_bits, rows, cols

class PackedVsScalar : public ::testing::TestWithParam<PackedCase>
{};

TEST_P(PackedVsScalar, BitCycleAndStatsExactAgreement)
{
    const auto [scheme, bits, et_bits, rows, cols] = GetParam();
    ArrayConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.kernel = {scheme, bits, et_bits};

    // Several random tiles per configuration, including one all-zeros
    // and one full-scale tile via the magnitude extremes of the PRNG.
    for (u64 trial = 0; trial < 4; ++trial) {
        Prng prng(u64(int(scheme)) * 7919 + u64(bits) * 131 +
                  u64(et_bits) * 13 + u64(rows) * 17 + u64(cols) +
                  trial * 104729);
        const int m_rows = 5;
        auto input = randomMatrix(m_rows, rows, bits, prng);
        auto weights = randomMatrix(rows, cols, bits, prng);
        if (trial == 1) {
            // Magnitude extremes: zeros and +/- full scale.
            const i32 mm = maxMagnitude(bits);
            input(0, 0) = 0;
            weights(0, 0) = 0;
            input(m_rows - 1, rows - 1) = mm;
            weights(rows - 1, cols - 1) = -mm;
        }

        statsRegistry().reset();
        const auto scalar = SystolicArray(cfg).runFold(input, weights);
        const std::string scalar_dump = statsRegistry().dumpText();

        statsRegistry().reset();
        const auto packed = PackedArray(cfg).runFold(input, weights);
        const std::string packed_dump = statsRegistry().dumpText();

        EXPECT_EQ(packed.output, scalar.output)
            << cfg.kernel.name() << " trial " << trial;
        EXPECT_EQ(packed.cycles, scalar.cycles) << cfg.kernel.name();
        EXPECT_EQ(packed_dump, scalar_dump) << cfg.kernel.name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAndEbt, PackedVsScalar,
    ::testing::Values(
        PackedCase{Scheme::BinaryParallel, 8, 0, 4, 4},
        PackedCase{Scheme::BinaryParallel, 16, 0, 3, 6},
        PackedCase{Scheme::BinarySerial, 8, 0, 4, 4},
        PackedCase{Scheme::BinarySerial, 12, 0, 5, 3},
        PackedCase{Scheme::USystolicRate, 8, 0, 4, 4},
        // EBT 6: a 32-cycle window — the masked-final-word boundary.
        PackedCase{Scheme::USystolicRate, 8, 6, 4, 5},
        PackedCase{Scheme::USystolicRate, 8, 7, 2, 7},
        PackedCase{Scheme::USystolicRate, 8, 8, 3, 3},
        PackedCase{Scheme::USystolicRate, 10, 6, 3, 3},
        PackedCase{Scheme::USystolicRate, 10, 8, 3, 3},
        // 4-bit: the whole 8-cycle period fits in a fraction of a word.
        PackedCase{Scheme::USystolicRate, 4, 0, 4, 4},
        PackedCase{Scheme::USystolicTemporal, 8, 0, 4, 4},
        PackedCase{Scheme::USystolicTemporal, 7, 0, 6, 2},
        PackedCase{Scheme::USystolicTemporal, 4, 0, 3, 5},
        PackedCase{Scheme::UgemmHybrid, 7, 0, 4, 4},
        PackedCase{Scheme::UgemmHybrid, 8, 0, 2, 3},
        PackedCase{Scheme::UgemmHybrid, 4, 0, 4, 4},
        PackedCase{Scheme::TubGemm, 8, 0, 4, 4},
        PackedCase{Scheme::TubGemm, 4, 0, 3, 5},
        // tuGEMM at small bits: the scalar referee walks the full
        // 2^(2(N-1))-cycle square period per MAC.
        PackedCase{Scheme::TuGemm, 4, 0, 4, 4},
        PackedCase{Scheme::TuGemm, 5, 0, 3, 3}));

TEST(PackedArray, MatchesRtlRefereeAcrossEbt)
{
    // Direct referee check against the two-phase clocked RtlArray for
    // every unary scheme and EBT point the paper evaluates.
    const PackedCase cases[] = {
        {Scheme::USystolicRate, 8, 6, 4, 4},
        {Scheme::USystolicRate, 8, 7, 4, 4},
        {Scheme::USystolicRate, 8, 8, 4, 4},
        {Scheme::USystolicTemporal, 8, 0, 4, 4},
        {Scheme::UgemmHybrid, 8, 0, 4, 4},
        {Scheme::BinarySerial, 8, 0, 4, 4},
        {Scheme::BinaryParallel, 8, 0, 4, 4},
        {Scheme::TubGemm, 8, 0, 4, 4},
        {Scheme::TuGemm, 4, 0, 4, 4},
    };
    for (const auto &[scheme, bits, et_bits, rows, cols] : cases) {
        ArrayConfig cfg;
        cfg.rows = rows;
        cfg.cols = cols;
        cfg.kernel = {scheme, bits, et_bits};
        Prng prng(u64(int(scheme)) * 31 + u64(et_bits));
        const auto input = randomMatrix(6, rows, bits, prng);
        const auto weights = randomMatrix(rows, cols, bits, prng);
        const auto rtl = RtlArray(cfg).runFold(input, weights);
        const auto packed = PackedArray(cfg).runFold(input, weights);
        EXPECT_EQ(packed.output, rtl.output) << cfg.kernel.name();
        EXPECT_EQ(packed.cycles, rtl.cycles) << cfg.kernel.name();
    }
}

TEST(PackedArray, DegenerateShapes)
{
    for (auto [rows, cols] : {std::pair{1, 5}, std::pair{5, 1},
                              std::pair{1, 1}}) {
        ArrayConfig cfg;
        cfg.rows = rows;
        cfg.cols = cols;
        cfg.kernel = {Scheme::USystolicRate, 8, 6};
        Prng prng(u64(rows) * 100 + u64(cols));
        const auto input = randomMatrix(4, rows, 8, prng);
        const auto weights = randomMatrix(rows, cols, 8, prng);
        const auto ref = SystolicArray(cfg).runFold(input, weights);
        const auto packed = PackedArray(cfg).runFold(input, weights);
        EXPECT_EQ(packed.output, ref.output) << rows << "x" << cols;
        EXPECT_EQ(packed.cycles, ref.cycles) << rows << "x" << cols;
    }
}

TEST(PackedArray, FoldStatsDeltaFlushEqualsInlineCommit)
{
    ArrayConfig cfg;
    cfg.rows = 3;
    cfg.cols = 4;
    cfg.kernel = {Scheme::USystolicRate, 8, 6};
    Prng prng(42);
    const auto input = randomMatrix(5, cfg.rows, 8, prng);
    const auto weights = randomMatrix(cfg.rows, cfg.cols, 8, prng);

    statsRegistry().reset();
    PackedArray(cfg).runFold(input, weights);
    PackedArray(cfg).runFold(input, weights);
    const std::string inline_dump = statsRegistry().dumpText();

    statsRegistry().reset();
    FoldStatsDelta delta;
    PackedArray(cfg).runFold(input, weights, &delta);
    PackedArray(cfg).runFold(input, weights, &delta);
    delta.flush(cfg.kernel);
    const std::string deferred_dump = statsRegistry().dumpText();

    EXPECT_EQ(deferred_dump, inline_dump);
}

class PackedFlagGuard
{
  public:
    PackedFlagGuard() : saved_(packedEngineEnabled()) {}
    ~PackedFlagGuard() { setPackedEngineEnabled(saved_); }

  private:
    bool saved_;
};

/** Saves and restores the panel-GEMM and sparsity knobs (DESIGN.md §13,
 * §16). The budget override is reset to 0 = auto, the process-start
 * state. */
class PanelFlagsGuard
{
  public:
    PanelFlagsGuard()
        : packed_(packedEngineEnabled()), panel_(panelGemmEnabled()),
          zskip_(zeroSkipEnabled()), sparse_(sparseEnabled())
    {}
    ~PanelFlagsGuard()
    {
        setPackedEngineEnabled(packed_);
        setPanelGemmEnabled(panel_);
        setZeroSkipEnabled(zskip_);
        setSparseEnabled(sparse_);
        setPanelBudgetKb(0);
    }

  private:
    bool packed_;
    bool panel_;
    bool zskip_;
    bool sparse_;
};

TEST(SystolicGemm, PackedAndScalarEnginesAgreeIncludingStats)
{
    PackedFlagGuard guard;
    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    // Ragged shapes: K and N not multiples of the array dims, so padded
    // edge tiles are exercised in both engines.
    for (const KernelConfig kern :
         {KernelConfig{Scheme::USystolicRate, 8, 6},
          KernelConfig{Scheme::USystolicTemporal, 8, 0},
          KernelConfig{Scheme::UgemmHybrid, 7, 0},
          KernelConfig{Scheme::BinarySerial, 8, 0}}) {
        cfg.kernel = kern;
        Prng prng(u64(int(kern.scheme)) + 1000);
        const auto a = randomMatrix(6, 10, kern.bits, prng);
        const auto b = randomMatrix(10, 9, kern.bits, prng);

        setPackedEngineEnabled(false);
        statsRegistry().reset();
        const auto scalar = SystolicGemm(cfg).run(a, b);
        const std::string scalar_dump = statsRegistry().dumpText();

        setPackedEngineEnabled(true);
        statsRegistry().reset();
        const auto packed = SystolicGemm(cfg).run(a, b);
        const std::string packed_dump = statsRegistry().dumpText();

        EXPECT_EQ(packed.acc, scalar.acc) << kern.name();
        EXPECT_EQ(packed.cycles, scalar.cycles) << kern.name();
        EXPECT_EQ(packed.folds, scalar.folds) << kern.name();
        EXPECT_EQ(packed_dump, scalar_dump) << kern.name();
    }
}

TEST(SystolicGemm, PanelBlockedMatchesUnblockedAcrossThreads)
{
    PanelFlagsGuard guard;
    setPackedEngineEnabled(true);
    // A 16 KiB budget (the floor) forces several column panels per
    // tile plus arena eviction between folds, the interesting regime.
    setPanelBudgetKb(16);
    Executor &ex = Executor::global();
    const unsigned saved_threads = ex.threads();

    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    for (const KernelConfig kern :
         {KernelConfig{Scheme::USystolicRate, 8, 6},
          KernelConfig{Scheme::USystolicTemporal, 8, 0},
          KernelConfig{Scheme::UgemmHybrid, 7, 0},
          KernelConfig{Scheme::BinarySerial, 8, 0},
          KernelConfig{Scheme::BinaryParallel, 8, 0}}) {
        cfg.kernel = kern;
        Prng prng(u64(int(kern.scheme)) + 2000);
        const auto a = randomMatrix(6, 10, kern.bits, prng);
        const auto b = randomMatrix(10, 18, kern.bits, prng);

        setPanelGemmEnabled(false);
        statsRegistry().reset();
        const auto unblocked = SystolicGemm(cfg).run(a, b);
        const std::string unblocked_dump = statsRegistry().dumpText();

        setPanelGemmEnabled(true);
        for (unsigned nthreads : {1u, 3u}) {
            ex.setThreads(nthreads);
            statsRegistry().reset();
            const auto blocked = SystolicGemm(cfg).run(a, b);
            const std::string blocked_dump = statsRegistry().dumpText();
            EXPECT_EQ(blocked.acc, unblocked.acc)
                << kern.name() << " t" << nthreads;
            EXPECT_EQ(blocked.cycles, unblocked.cycles)
                << kern.name() << " t" << nthreads;
            EXPECT_EQ(blocked_dump, unblocked_dump)
                << kern.name() << " t" << nthreads;
        }
    }
    ex.setThreads(saved_threads);
}

TEST(SystolicGemm, ZeroSkipOnOffIdenticalWithZeroHeavyOperands)
{
    PanelFlagsGuard guard;
    setPackedEngineEnabled(true);
    setPanelGemmEnabled(true);
    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    for (const KernelConfig kern :
         {KernelConfig{Scheme::USystolicRate, 8, 0},
          KernelConfig{Scheme::USystolicTemporal, 8, 0},
          KernelConfig{Scheme::BinaryParallel, 8, 0},
          KernelConfig{Scheme::UgemmHybrid, 7, 0}}) {
        cfg.kernel = kern;
        Prng prng(u64(int(kern.scheme)) + 3000);
        auto a = randomMatrix(6, 10, kern.bits, prng);
        auto b = randomMatrix(10, 9, kern.bits, prng);
        // Zero half of each operand so the skip path actually fires.
        for (int r = 0; r < a.rows(); ++r)
            for (int c = 0; c < a.cols(); c += 2)
                a(r, c) = 0;
        for (int r = 0; r < b.rows(); r += 2)
            for (int c = 0; c < b.cols(); ++c)
                b(r, c) = 0;

        setZeroSkipEnabled(false);
        statsRegistry().reset();
        const auto full = SystolicGemm(cfg).run(a, b);
        const std::string full_dump = statsRegistry().dumpText();

        setZeroSkipEnabled(true);
        statsRegistry().reset();
        const auto skipped = SystolicGemm(cfg).run(a, b);
        const std::string skipped_dump = statsRegistry().dumpText();

        EXPECT_EQ(skipped.acc, full.acc) << kern.name();
        EXPECT_EQ(skipped.cycles, full.cycles) << kern.name();
        EXPECT_EQ(skipped_dump, full_dump) << kern.name();
    }
}

TEST(SystolicGemm, SparseVsDenseBitExactAllSchemesAcrossThreads)
{
    // The sparsity subsystem (DESIGN.md §16) is a pure perf lever:
    // with zero-heavy operands every scheme must produce identical
    // outputs, cycle counts, and stats dumps — census counters
    // included — whether the plans are built or not, at any thread
    // count. The census is recorded unconditionally, so the dumps are
    // comparable across the toggle.
    PanelFlagsGuard guard;
    setPackedEngineEnabled(true);
    setPanelGemmEnabled(true);
    setZeroSkipEnabled(true);
    Executor &ex = Executor::global();
    const unsigned saved_threads = ex.threads();

    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    for (const KernelConfig kern :
         {KernelConfig{Scheme::BinaryParallel, 8, 0},
          KernelConfig{Scheme::BinarySerial, 8, 0},
          KernelConfig{Scheme::USystolicRate, 8, 6},
          KernelConfig{Scheme::USystolicTemporal, 8, 0},
          KernelConfig{Scheme::UgemmHybrid, 7, 0},
          KernelConfig{Scheme::TubGemm, 8, 0},
          KernelConfig{Scheme::TuGemm, 4, 0}}) {
        cfg.kernel = kern;
        Prng prng(u64(int(kern.scheme)) + 5000);
        auto a = randomMatrix(6, 10, kern.bits, prng);
        auto b = randomMatrix(10, 9, kern.bits, prng);
        // ~60% activation zeros plus a few weight zeros: both census
        // sides and the plan compaction fire.
        for (int r = 0; r < a.rows(); ++r)
            for (int c = 0; c < a.cols(); ++c)
                if (prng.below(100) < 60)
                    a(r, c) = 0;
        for (int c = 0; c < b.cols(); c += 3)
            b(1, c) = 0;

        setSparseEnabled(false);
        statsRegistry().reset();
        const auto dense = SystolicGemm(cfg).run(a, b);
        const std::string dense_dump = statsRegistry().dumpText();

        setSparseEnabled(true);
        for (unsigned nthreads : {1u, 3u}) {
            ex.setThreads(nthreads);
            statsRegistry().reset();
            const auto sparse = SystolicGemm(cfg).run(a, b);
            const std::string sparse_dump = statsRegistry().dumpText();
            EXPECT_EQ(sparse.acc, dense.acc)
                << kern.name() << " t" << nthreads;
            EXPECT_EQ(sparse.cycles, dense.cycles)
                << kern.name() << " t" << nthreads;
            EXPECT_EQ(sparse_dump, dense_dump)
                << kern.name() << " t" << nthreads;
        }
    }
    ex.setThreads(saved_threads);
}

TEST(SystolicGemm, SparseAndZeroSkipOptOutsAllAgree)
{
    // All four {sparse, zero-skip} combinations — the --no-sparse /
    // --no-zero-skip CLI opt-outs — must agree bit for bit, including
    // the stats dumps, on every scheme.
    PanelFlagsGuard guard;
    setPackedEngineEnabled(true);
    setPanelGemmEnabled(true);
    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    for (const KernelConfig kern :
         {KernelConfig{Scheme::USystolicRate, 8, 0},
          KernelConfig{Scheme::UgemmHybrid, 7, 0},
          KernelConfig{Scheme::TubGemm, 8, 0},
          KernelConfig{Scheme::TuGemm, 4, 0}}) {
        cfg.kernel = kern;
        Prng prng(u64(int(kern.scheme)) + 6000);
        auto a = randomMatrix(5, 12, kern.bits, prng);
        auto b = randomMatrix(12, 9, kern.bits, prng);
        for (int r = 0; r < a.rows(); ++r)
            for (int c = 0; c < a.cols(); c += 2)
                a(r, c) = 0;

        std::string ref_dump;
        SystolicGemm::RunResult ref{};
        bool have_ref = false;
        for (const bool sparse : {false, true}) {
            for (const bool zskip : {false, true}) {
                setSparseEnabled(sparse);
                setZeroSkipEnabled(zskip);
                statsRegistry().reset();
                const auto out = SystolicGemm(cfg).run(a, b);
                const std::string dump = statsRegistry().dumpText();
                if (!have_ref) {
                    ref = out;
                    ref_dump = dump;
                    have_ref = true;
                    continue;
                }
                EXPECT_EQ(out.acc, ref.acc)
                    << kern.name() << " sparse=" << sparse
                    << " zskip=" << zskip;
                EXPECT_EQ(out.cycles, ref.cycles)
                    << kern.name() << " sparse=" << sparse
                    << " zskip=" << zskip;
                EXPECT_EQ(dump, ref_dump)
                    << kern.name() << " sparse=" << sparse
                    << " zskip=" << zskip;
            }
        }
    }
}

TEST(PackedArray, SparsePlansPreserveFaultCensus)
{
    // Same contract as PanelAndZeroSkipPreserveFaultCensus, but across
    // the sparsity toggle: plan-compacted folds must report the exact
    // same fault census as dense folds for the schemes that consume
    // plans and for UG (which must never consume them — its bipolar
    // encoding gives zero-valued operands half-density streams).
    PanelFlagsGuard guard;
    setPanelGemmEnabled(true);
    setZeroSkipEnabled(true);
    for (const Scheme scheme :
         {Scheme::USystolicRate, Scheme::UgemmHybrid, Scheme::TubGemm}) {
        ArrayConfig cfg;
        cfg.rows = 4;
        cfg.cols = 4;
        cfg.kernel = {scheme, scheme == Scheme::UgemmHybrid ? 7 : 8, 0};
        cfg.faults.seed = 77;
        cfg.faults.rates.weight_reg = 0.3;
        cfg.faults.rates.dram_word = 0.2;
        Prng prng(u64(int(scheme)) + 7000);
        auto input = randomMatrix(6, cfg.rows, cfg.kernel.bits, prng);
        auto weights =
            randomMatrix(cfg.rows, cfg.cols, cfg.kernel.bits, prng);
        for (int r = 0; r < input.rows(); ++r)
            input(r, r % cfg.rows) = 0;

        SystolicArray::FoldResult ref;
        FoldStatsDelta ref_delta;
        bool have_ref = false;
        for (const bool sparse : {false, true}) {
            setSparseEnabled(sparse);
            FoldStatsDelta delta;
            const auto out =
                PackedArray(cfg).runFold(input, weights, &delta);
            ASSERT_GT(delta.faultTotal(), 0u);
            if (!have_ref) {
                ref = out;
                ref_delta = delta;
                have_ref = true;
                continue;
            }
            EXPECT_EQ(out.output, ref.output) << schemeTag(scheme);
            EXPECT_EQ(out.cycles, ref.cycles) << schemeTag(scheme);
            EXPECT_EQ(delta.faults_weight_reg,
                      ref_delta.faults_weight_reg) << schemeTag(scheme);
            EXPECT_EQ(delta.faults_dram, ref_delta.faults_dram)
                << schemeTag(scheme);
            EXPECT_EQ(delta.faultTotal(), ref_delta.faultTotal())
                << schemeTag(scheme);
        }
    }
}

TEST(PackedArray, PanelAndZeroSkipPreserveFaultCensus)
{
    // Weight-register and DRAM faults pre-corrupt the staged codes, so
    // the panel fast path stays eligible; the census and outputs must
    // not depend on panel blocking or zero-stream skipping.
    PanelFlagsGuard guard;
    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.kernel = {Scheme::USystolicRate, 8, 6};
    cfg.faults.seed = 99;
    cfg.faults.rates.weight_reg = 0.3;
    cfg.faults.rates.dram_word = 0.2;
    Prng prng(4000);
    auto input = randomMatrix(5, cfg.rows, 8, prng);
    auto weights = randomMatrix(cfg.rows, cfg.cols, 8, prng);
    input(0, 1) = 0;
    weights(1, 2) = 0;

    struct Variant
    {
        bool panel;
        bool zskip;
    };
    SystolicArray::FoldResult ref;
    FoldStatsDelta ref_delta;
    bool have_ref = false;
    for (const Variant v : {Variant{false, false}, Variant{false, true},
                            Variant{true, false}, Variant{true, true}}) {
        setPanelGemmEnabled(v.panel);
        setZeroSkipEnabled(v.zskip);
        FoldStatsDelta delta;
        const auto out = PackedArray(cfg).runFold(input, weights, &delta);
        ASSERT_GT(delta.faultTotal(), 0u);
        if (!have_ref) {
            ref = out;
            ref_delta = delta;
            have_ref = true;
            continue;
        }
        EXPECT_EQ(out.output, ref.output) << v.panel << v.zskip;
        EXPECT_EQ(out.cycles, ref.cycles) << v.panel << v.zskip;
        EXPECT_EQ(delta.faults_weight_reg, ref_delta.faults_weight_reg);
        EXPECT_EQ(delta.faults_dram, ref_delta.faults_dram);
        EXPECT_EQ(delta.faultTotal(), ref_delta.faultTotal());
    }
}

TEST(SystolicGemm, ParallelRunsAreDeterministic)
{
    PackedFlagGuard guard;
    setPackedEngineEnabled(true);
    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.kernel = {Scheme::USystolicRate, 8, 7};
    Prng prng(7);
    const auto a = randomMatrix(5, 12, 8, prng);
    const auto b = randomMatrix(12, 20, 8, prng); // 5 column tiles

    statsRegistry().reset();
    const auto first = SystolicGemm(cfg).run(a, b);
    const std::string first_dump = statsRegistry().dumpText();

    statsRegistry().reset();
    const auto second = SystolicGemm(cfg).run(a, b);
    const std::string second_dump = statsRegistry().dumpText();

    EXPECT_EQ(first.acc, second.acc);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first_dump, second_dump);
}

} // namespace
} // namespace usys
