/**
 * @file
 * Tests for the memory cost models (CACTI-lite, SRAM/DRAM configs) and
 * the hardware cost models (PE/array area, leakage, dynamic energy),
 * including the paper-shape invariants of Figure 11.
 */

#include <gtest/gtest.h>

#include "hw/energy.h"
#include "hw/pe_cost.h"
#include "mem/cacti_lite.h"
#include "mem/dram.h"
#include "mem/sram.h"
#include "sched/simulator.h"
#include "workloads/systems.h"

namespace usys {
namespace {

TEST(CactiLite, MonotoneInCapacity)
{
    double prev_area = 0.0, prev_leak = 0.0, prev_pj = 0.0;
    for (u64 bytes : {u64(16) << 10, u64(64) << 10, u64(1) << 20,
                      u64(8) << 20}) {
        const auto cost = cactiLiteSram(bytes);
        EXPECT_GT(cost.area_mm2, prev_area);
        EXPECT_GT(cost.leakage_mw, prev_leak);
        EXPECT_GT(cost.pj_per_byte, prev_pj);
        prev_area = cost.area_mm2;
        prev_leak = cost.leakage_mw;
        prev_pj = cost.pj_per_byte;
    }
    EXPECT_EQ(cactiLiteSram(0).area_mm2, 0.0);
}

TEST(CactiLite, DensityDegradesWithCapacity)
{
    // Bank/H-tree overhead: big buffers are less dense per byte.
    const auto small = cactiLiteSram(u64(64) << 10);
    const auto big = cactiLiteSram(u64(8) << 20);
    const double small_per_b = small.area_mm2 / double(64 << 10);
    const double big_per_b = big.area_mm2 / double(8 << 20);
    EXPECT_GT(big_per_b, small_per_b);
}

TEST(Sram, PresetsAndBandwidth)
{
    EXPECT_EQ(edgeSram().bytes, u64(64) * 1024);
    EXPECT_EQ(cloudSram().bytes, u64(8) * 1024 * 1024);
    EXPECT_FALSE(noSram().present);
    EXPECT_EQ(noSram().bytesPerCycle(), 0.0);
    EXPECT_GT(cloudSram().bytesPerCycle(), edgeSram().bytesPerCycle());
}

TEST(Dram, SustainedBelowPeak)
{
    const auto dram = ddr3Chip();
    EXPECT_LT(dram.sustainedGbps(), dram.peak_gbps);
    EXPECT_NEAR(dram.bytesPerCycle(0.4), dram.sustainedGbps() / 0.4,
                1e-12);
}

TEST(PeCost, LeftmostCarriesTheGenerators)
{
    const KernelConfig ur{Scheme::USystolicRate, 8, 0};
    const auto left = peCost(ur, true);
    const auto rest = peCost(ur, false);
    EXPECT_GT(left.area_um2.mul, rest.area_um2.mul);
    EXPECT_GT(left.e_mul_cycle_pj, rest.e_mul_cycle_pj);
    // Binary PEs are identical in every column.
    const KernelConfig bp{Scheme::BinaryParallel, 8, 0};
    EXPECT_EQ(peCost(bp, true).area_um2.total(),
              peCost(bp, false).area_um2.total());
}

TEST(ArrayCost, Figure11Ordering)
{
    auto area = [](Scheme s, int bits) {
        return arrayCost(ArrayConfig{12, 14, {s, bits, 0}, {}})
            .area_mm2.total();
    };
    for (int bits : {8, 16}) {
        const double bp = area(Scheme::BinaryParallel, bits);
        const double bs = area(Scheme::BinarySerial, bits);
        const double ug = area(Scheme::UgemmHybrid, bits);
        const double ur = area(Scheme::USystolicRate, bits);
        const double ut = area(Scheme::USystolicTemporal, bits);
        EXPECT_GT(bp, bs) << bits;
        EXPECT_GT(bs, ug) << bits;
        EXPECT_GT(ug, ur) << bits;
        EXPECT_GE(ur, ut) << bits;
    }
}

TEST(ArrayCost, EdgeReductionsNearPaper)
{
    auto area = [](Scheme s) {
        return arrayCost(ArrayConfig{12, 14, {s, 8, 0}, {}})
            .area_mm2.total();
    };
    const double bp = area(Scheme::BinaryParallel);
    // Paper: BS 30.9, UG 50.9, UR 59.0, UT 62.5 (% reduction vs BP).
    EXPECT_NEAR(100 * (1 - area(Scheme::BinarySerial) / bp), 30.9, 8.0);
    EXPECT_NEAR(100 * (1 - area(Scheme::UgemmHybrid) / bp), 50.9, 8.0);
    EXPECT_NEAR(100 * (1 - area(Scheme::USystolicRate) / bp), 59.0, 8.0);
    EXPECT_NEAR(100 * (1 - area(Scheme::USystolicTemporal) / bp), 62.5,
                8.0);
}

TEST(ArrayCost, UnaryMulHalvesUgemmMul)
{
    const auto ug =
        arrayCost(ArrayConfig{12, 14, {Scheme::UgemmHybrid, 8, 0}, {}});
    const auto ur =
        arrayCost(ArrayConfig{12, 14, {Scheme::USystolicRate, 8, 0}, {}});
    // Paper: 58.2% smaller MUL via sign-magnitude unipolar uMUL.
    const double red = 1.0 - ur.area_mm2.mul / ug.area_mm2.mul;
    EXPECT_NEAR(red, 0.582, 0.12);
}

TEST(ArrayCost, CongestionGrowsWithArrayAndHitsBinaryHarder)
{
    auto per_pe = [](Scheme s, int rows, int cols) {
        return arrayCost(ArrayConfig{rows, cols, {s, 8, 0}, {}})
                   .area_mm2.total() /
               (rows * cols);
    };
    const double bp_edge = per_pe(Scheme::BinaryParallel, 12, 14);
    const double bp_cloud = per_pe(Scheme::BinaryParallel, 256, 256);
    const double ur_edge = per_pe(Scheme::USystolicRate, 12, 14);
    const double ur_cloud = per_pe(Scheme::USystolicRate, 256, 256);
    EXPECT_GT(bp_cloud, bp_edge);
    EXPECT_GT(ur_cloud, ur_edge);
    EXPECT_GT(bp_cloud / bp_edge, ur_cloud / ur_edge);
}

TEST(ArrayCost, BlockAreasSumToTotal)
{
    for (Scheme s : {Scheme::BinaryParallel, Scheme::BinarySerial,
                     Scheme::USystolicRate, Scheme::UgemmHybrid}) {
        const auto cost = arrayCost(ArrayConfig{12, 14, {s, 8, 0}, {}});
        const auto &b = cost.area_mm2;
        EXPECT_NEAR(b.ireg + b.wreg + b.mul + b.acc, b.total(), 1e-12);
        EXPECT_GT(cost.leak_mw, 0.0);
        EXPECT_GT(cost.e_per_mac_slot_pj, 0.0);
    }
}

TEST(Energy, SramLeakageDominatesBinaryOnChip)
{
    // Section V-E: SRAM leakage >> everything else on-chip for binary.
    const auto sys = edgeSystem({Scheme::BinaryParallel, 8, 0}, true);
    const auto layer = GemmLayer::conv("c", 31, 31, 96, 5, 5, 1, 256);
    const auto e = layerEnergy(sys, simulateLayer(sys, layer));
    EXPECT_GT(e.sram_leak_uj, e.sram_dyn_uj);
    EXPECT_GT(e.sram_uj(), e.array_uj());
}

TEST(Energy, DramDominatesUnaryTotal)
{
    // Section V-E: total energy is DRAM-dominated for SRAM-less unary.
    const auto sys = edgeSystem({Scheme::USystolicRate, 8, 6}, false);
    const auto layer = GemmLayer::conv("c", 31, 31, 96, 5, 5, 1, 256);
    const auto e = layerEnergy(sys, simulateLayer(sys, layer));
    EXPECT_GT(e.dram_uj, e.onchip_uj());
}

TEST(Energy, PowerConsistentWithEnergyAndRuntime)
{
    const auto sys = edgeSystem({Scheme::USystolicRate, 8, 7}, false);
    const auto layer = GemmLayer::matmul("m", 1, 4096, 1000);
    const auto stats = simulateLayer(sys, layer);
    const auto e = layerEnergy(sys, stats);
    EXPECT_NEAR(e.onchip_power_mw(),
                e.onchip_uj() * 1e-3 / stats.runtime_s, 1e-9);
    EXPECT_NEAR(e.edp_onchip(), e.onchip_uj() * stats.runtime_s, 1e-12);
}

TEST(Energy, OnchipAreaAddsSramOnlyWhenPresent)
{
    const auto with = edgeSystem({Scheme::BinaryParallel, 8, 0}, true);
    const auto without = edgeSystem({Scheme::BinaryParallel, 8, 0}, false);
    const double array =
        arrayCost(without.array).area_mm2.total();
    EXPECT_NEAR(onchipAreaMm2(without), array, 1e-12);
    EXPECT_GT(onchipAreaMm2(with), array + 1.0);
}

} // namespace
} // namespace usys
