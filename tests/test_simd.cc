/**
 * @file
 * SIMD-vs-generic parity fuzz tests (DESIGN.md §11).
 *
 * Every dispatched kernel must be bit-exact against the portable
 * fallback — including tail/EBT masked final words, zero magnitudes,
 * threshold extremes, and fault-injected streams. The suite compares
 * three ways: a naive per-bit/per-element reference, the generic
 * table, and (when the host supports it) the AVX2 table directly —
 * so the cross-implementation checks run even when the dispatched
 * level is forced to generic via USYS_SIMD. The `simd_generic_*` /
 * `simd_auto_*` ctest variants rerun the whole binary under both env
 * settings at 1 and 3 executor threads.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/matrix.h"
#include "common/prng.h"
#include "common/simd.h"
#include "arch/packed_array.h"
#include "dnn/backend.h"
#include "fault/fault.h"
#include "unary/bitstream.h"
#include "unary/lfsr.h"

namespace usys {
namespace {

/**
 * Tables to cross-check: always generic, plus AVX2 / AVX-512 / NEON
 * when available on the host — so every higher tier is fuzzed against
 * the reference regardless of which tier USYS_SIMD dispatched.
 */
std::vector<const SimdKernels *>
tablesUnderTest()
{
    std::vector<const SimdKernels *> tables = {&genericKernels()};
    if (const SimdKernels *avx2 = avx2Kernels())
        tables.push_back(avx2);
    if (const SimdKernels *avx512 = avx512Kernels())
        tables.push_back(avx512);
    if (const SimdKernels *neon = neonKernels())
        tables.push_back(neon);
    return tables;
}

TEST(SimdDispatch, TablesConsistent)
{
    EXPECT_EQ(genericKernels().level, SimdLevel::Generic);
    if (cpuSupportsAvx2() && avx2Kernels() != nullptr) {
        EXPECT_EQ(avx2Kernels()->level, SimdLevel::Avx2);
    }
    if (cpuSupportsAvx512() && avx512Kernels() != nullptr) {
        EXPECT_EQ(avx512Kernels()->level, SimdLevel::Avx512);
    }
    if (neonKernels() != nullptr) {
        EXPECT_EQ(neonKernels()->level, SimdLevel::Neon);
    }
    // The active table is one of the known tiers, and every slot is
    // populated.
    const SimdKernels &active = simdKernels();
    EXPECT_NE(active.popcountWords, nullptr);
    EXPECT_NE(active.thresholdPackWords, nullptr);
    EXPECT_NE(active.prefixPopcount, nullptr);
    EXPECT_NE(active.axpyF32, nullptr);
    EXPECT_NE(active.gemmRowI32, nullptr);
}

TEST(SimdDispatch, SetSimdModeSwitchesAndRestores)
{
    const SimdLevel before = simdLevel();
    setSimdMode("generic");
    EXPECT_EQ(simdLevel(), SimdLevel::Generic);
    if (avx2Kernels()) {
        setSimdMode("avx2");
        EXPECT_EQ(simdLevel(), SimdLevel::Avx2);
    }
    if (avx512Kernels()) {
        setSimdMode("avx512");
        EXPECT_EQ(simdLevel(), SimdLevel::Avx512);
    }
    if (neonKernels()) {
        setSimdMode("neon");
        EXPECT_EQ(simdLevel(), SimdLevel::Neon);
    }
    setSimdMode("auto");
    if (avx512Kernels())
        EXPECT_EQ(simdLevel(), SimdLevel::Avx512);
    else if (avx2Kernels())
        EXPECT_EQ(simdLevel(), SimdLevel::Avx2);
    else if (neonKernels())
        EXPECT_EQ(simdLevel(), SimdLevel::Neon);
    else
        EXPECT_EQ(simdLevel(), SimdLevel::Generic);
    // Put the env-resolved level back so later tests see the mode the
    // ctest variant requested.
    setSimdMode(simdLevelName(before));
}

TEST(SimdPopcount, ParityFuzz)
{
    Prng prng(101);
    for (std::size_t n :
         {std::size_t(0), std::size_t(1), std::size_t(2), std::size_t(3),
          std::size_t(4), std::size_t(7), std::size_t(15),
          std::size_t(16), std::size_t(63), std::size_t(64),
          std::size_t(65), std::size_t(513), std::size_t(4096)}) {
        std::vector<u64> words(n);
        for (auto &w : words)
            w = prng.next();
        if (n > 2) {
            words[0] = 0;
            words[1] = ~u64(0);
        }
        u64 naive = 0;
        for (u64 w : words)
            naive += u64(std::popcount(w));
        for (const SimdKernels *k : tablesUnderTest())
            EXPECT_EQ(k->popcountWords(words.data(), n), naive)
                << simdLevelName(k->level) << " n=" << n;
    }
}

TEST(SimdThresholdPack, ParityFuzzWithTails)
{
    Prng prng(202);
    for (int bits : {1, 5, 8, 12, 30}) {
        const u32 range = u32(1) << bits;
        for (u32 n : {1u, 37u, 63u, 64u, 65u, 128u, 130u, 1001u}) {
            std::vector<u32> values(n);
            for (auto &v : values)
                v = u32(prng.below(range));
            // Threshold extremes 0 and 2^bits alongside interior ones.
            for (u32 thr : {u32(0), u32(1), range / 2, range}) {
                const u32 nwords = (n + 63) / 64;
                std::vector<u64> naive(nwords, 0);
                for (u32 j = 0; j < n; ++j)
                    naive[j >> 6] |= u64(values[j] < thr) << (j & 63);
                for (const SimdKernels *k : tablesUnderTest()) {
                    // Poison the output so stale tail bits would show.
                    std::vector<u64> got(nwords, ~u64(0));
                    k->thresholdPackWords(values.data(), n, thr,
                                          got.data());
                    EXPECT_EQ(got, naive)
                        << simdLevelName(k->level) << " bits=" << bits
                        << " n=" << n << " thr=" << thr;
                }
            }
        }
    }
}

TEST(SimdPrefixPopcount, Parity)
{
    // Sizes straddle the vector-group widths (8 AVX2 / 16 AVX-512
    // words per store in the two-pass scheme) and the 4096-word block
    // boundary where the running offset hands over between blocks.
    Prng prng(303);
    for (u32 nwords : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u,
                       17u, 33u, 257u, 4095u, 4096u, 4097u, 8200u}) {
        std::vector<u64> words(nwords);
        for (auto &w : words)
            w = prng.next();
        std::vector<u32> naive(nwords + 1, 0);
        for (u32 w = 0; w < nwords; ++w)
            naive[w + 1] = naive[w] + u32(std::popcount(words[w]));
        for (const SimdKernels *k : tablesUnderTest()) {
            std::vector<u32> got(nwords + 1, 0xdeadbeefu);
            k->prefixPopcount(words.data(), nwords, got.data());
            EXPECT_EQ(got, naive)
                << simdLevelName(k->level) << " nwords=" << nwords;
        }
    }
}

TEST(SimdAxpyF32, BitExactParity)
{
    Prng prng(404);
    for (int n : {0, 1, 7, 8, 9, 16, 31, 100, 1023}) {
        std::vector<float> b(n), c0(n);
        for (int j = 0; j < n; ++j) {
            b[j] = float(prng.uniform(-4.0, 4.0));
            c0[j] = float(prng.uniform(-4.0, 4.0));
        }
        for (float a : {0.0f, 1.0f, -2.5f, 0.3333333f}) {
            std::vector<float> naive = c0;
            for (int j = 0; j < n; ++j)
                naive[j] += a * b[j];
            for (const SimdKernels *k : tablesUnderTest()) {
                std::vector<float> got = c0;
                k->axpyF32(got.data(), b.data(), a, n);
                // Bitwise, not approximate: the contract is one
                // multiply + one add per element on every tier.
                ASSERT_EQ(std::memcmp(got.data(), naive.data(),
                                      std::size_t(n) * sizeof(float)),
                          0)
                    << simdLevelName(k->level) << " n=" << n
                    << " a=" << a;
            }
        }
    }
}

TEST(SimdGemmRowI32, ParityIncludingExtremes)
{
    Prng prng(505);
    for (int n : {0, 1, 3, 4, 5, 8, 100, 255}) {
        std::vector<i32> b(n);
        std::vector<i64> c0(n);
        for (int j = 0; j < n; ++j) {
            b[j] = i32(prng.next());
            c0[j] = i64(prng.next() >> 8);
        }
        if (n >= 4) {
            b[0] = i32(0x80000000);        // INT32_MIN
            b[1] = 0x7fffffff;             // INT32_MAX
            b[2] = 0;
            b[3] = -1;
        }
        for (i32 a : {i32(0x80000000), i32(-1), i32(0), i32(1),
                      i32(0x7fffffff), i32(-12345)}) {
            std::vector<i64> naive = c0;
            for (int j = 0; j < n; ++j)
                naive[j] += i64(a) * i64(b[j]);
            for (const SimdKernels *k : tablesUnderTest()) {
                std::vector<i64> got = c0;
                k->gemmRowI32(got.data(), b.data(), a, n);
                EXPECT_EQ(got, naive)
                    << simdLevelName(k->level) << " n=" << n
                    << " a=" << a;
            }
        }
    }
}

/** Scalar reference: count via nextBit(), corrupting covered bits. */
u64
onesByBitLoop(BitstreamGen &gen, u32 window, const Fault *fault)
{
    u64 ones = 0;
    for (u32 t = 0; t < window; ++t) {
        bool bit = gen.nextBit();
        if (fault && fault->covers(t))
            bit = fault->corruptBit(bit, t);
        ones += u64(bit);
    }
    return ones;
}

TEST(SimdOnesInWindow, MatchesBitLoopUnderMasksAndFaults)
{
    const int bits = 7; // 128-cycle full window
    const u32 full = u32(1) << bits;
    const Fault faults[] = {
        {FaultKind::BitFlip, 0, 1},
        {FaultKind::BitFlip, 63, 1},
        {FaultKind::StuckAt1, 64, 1},
        {FaultKind::StuckAt0, 17, 1},
        {FaultKind::Burst, 60, 9}, // straddles a word boundary
    };
    // Windows: full period, EBT truncations, sub-word, non-multiples
    // of 64 (masked final word), and 0.
    for (u32 window : {full, full / 2, u32(96), u32(64), u32(63),
                       u32(17), u32(1), u32(0)}) {
        // Zero magnitude, small, half, and max magnitudes.
        for (u32 mag : {u32(0), u32(1), full / 2, full}) {
            for (const Fault *f :
                 {static_cast<const Fault *>(nullptr), &faults[0],
                  &faults[1], &faults[2], &faults[3], &faults[4]}) {
                {
                    RateBsg a(mag, 1, bits);
                    RateBsg b(mag, 1, bits);
                    EXPECT_EQ(onesInWindow(a, window, f),
                              onesByBitLoop(b, window, f))
                        << "rate mag=" << mag << " win=" << window;
                }
                {
                    TemporalBsg a(mag, bits);
                    TemporalBsg b(mag, bits);
                    EXPECT_EQ(onesInWindow(a, window, f),
                              onesByBitLoop(b, window, f))
                        << "temporal mag=" << mag << " win=" << window;
                }
            }
        }
        for (i32 v : {-(i32(full) / 2), -3, 0, 5, i32(full) / 2 - 1}) {
            BipolarRateBsg a(v, 2, bits + 1);
            BipolarRateBsg b(v, 2, bits + 1);
            EXPECT_EQ(onesInWindow(a, window, &faults[4]),
                      onesByBitLoop(b, window, &faults[4]))
                << "bipolar v=" << v << " win=" << window;
        }
    }
}

TEST(SimdSobol, NextWordsMatchesScalarSteppingAndWraps)
{
    // bits=5 has a 32-value period: every word wraps twice, exercising
    // the batched path's period handling.
    for (int bits : {5, 8, 11}) {
        for (u32 thr : {u32(0), u32(7), u32(1) << (bits - 1),
                        u32(1) << bits}) {
            SobolSequence batched(3, bits);
            SobolSequence scalar(3, bits);
            u64 words[5];
            batched.nextWords(thr, words, 5);
            for (int w = 0; w < 5; ++w)
                EXPECT_EQ(words[w], scalar.nextWord(thr))
                    << "bits=" << bits << " thr=" << thr << " w=" << w;
            // State-identical afterwards: scalar stepping continues in
            // lockstep.
            for (int k = 0; k < 70; ++k)
                EXPECT_EQ(batched.next(), scalar.next());
            // And mixed word/batch stepping keeps agreeing.
            batched.nextWords(thr, words, 2);
            EXPECT_EQ(words[0], scalar.nextWord(thr));
            EXPECT_EQ(words[1], scalar.nextWord(thr));
        }
    }
}

TEST(SimdLfsr, NextWordsMatchesScalarStepping)
{
    for (int bits : {3, 8, 12}) {
        for (u32 thr : {u32(0), u32(5), u32(1) << (bits - 1),
                        u32(1) << bits}) {
            Lfsr batched(bits, 0xACEu);
            Lfsr scalar(bits, 0xACEu);
            u64 words[4];
            batched.nextWords(thr, words, 4);
            for (int w = 0; w < 4; ++w)
                EXPECT_EQ(words[w], scalar.nextWord(thr))
                    << "bits=" << bits << " thr=" << thr << " w=" << w;
            for (int k = 0; k < 10; ++k)
                EXPECT_EQ(batched.next(), scalar.next());
        }
    }
}

Matrix<i32>
randomCodes(int rows, int cols, Prng &prng)
{
    Matrix<i32> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(255)) - 127;
    return m;
}

TEST(SimdGemm, ReferenceGemmMatchesNaive)
{
    Prng prng(606);
    const auto a = randomCodes(9, 33, prng);
    const auto b = randomCodes(33, 21, prng);
    const auto got = referenceGemm(a, b);
    for (int m = 0; m < a.rows(); ++m)
        for (int n = 0; n < b.cols(); ++n) {
            i64 acc = 0;
            for (int k = 0; k < a.cols(); ++k)
                acc += i64(a(m, k)) * i64(b(k, n));
            ASSERT_EQ(got(m, n), acc) << m << "," << n;
        }
}

TEST(SimdGemm, GemmFp32MatchesNaiveBitwise)
{
    Prng prng(707);
    MatF a(7, 19), b(19, 13);
    for (int r = 0; r < a.rows(); ++r)
        for (int c = 0; c < a.cols(); ++c)
            a(r, c) = float(prng.uniform(-1.0, 1.0));
    for (int r = 0; r < b.rows(); ++r)
        for (int c = 0; c < b.cols(); ++c)
            b(r, c) = float(prng.uniform(-1.0, 1.0));
    a(0, 0) = 0.0f; // exercise the zero-skip path
    const MatF got = gemmFp32(a, b);
    // Naive loop in the same k-then-n order with one multiply + one
    // add per element — the bit-exactness contract.
    MatF naive(a.rows(), b.cols(), 0.0f);
    for (int m = 0; m < a.rows(); ++m)
        for (int k = 0; k < a.cols(); ++k) {
            const float av = a(m, k);
            if (av == 0.0f)
                continue;
            for (int n = 0; n < b.cols(); ++n)
                naive(m, n) += av * b(k, n);
        }
    for (int m = 0; m < a.rows(); ++m)
        for (int n = 0; n < b.cols(); ++n)
            ASSERT_EQ(got(m, n), naive(m, n)) << m << "," << n;
}

TEST(SimdPackedArray, FoldIdenticalAcrossTiers)
{
    // The packed engine's outputs must not depend on the dispatched
    // tier — run the same fold under generic and auto and compare.
    const SimdLevel before = simdLevel();
    Prng prng(808);
    ArrayConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    const auto input = randomCodes(8, 8, prng);
    const auto weights = randomCodes(8, 8, prng);
    for (Scheme scheme :
         {Scheme::USystolicRate, Scheme::USystolicTemporal,
          Scheme::UgemmHybrid}) {
        cfg.kernel = {scheme, 8, scheme == Scheme::USystolicRate ? 6 : 0};
        const PackedArray array(cfg);
        setSimdMode("generic");
        const auto ref = array.runFold(input, weights);
        setSimdMode("auto");
        const auto got = array.runFold(input, weights);
        EXPECT_TRUE(ref.output == got.output) << cfg.kernel.name();
        EXPECT_EQ(ref.cycles, got.cycles) << cfg.kernel.name();
    }
    setSimdMode(simdLevelName(before));
}

} // namespace
} // namespace usys
