# ctest driver for the perf-regression comparator. Expects:
#   BENCH     path to the perf_smoke binary
#   PYTHON    python3 interpreter
#   TOOLS_DIR repo tools/ directory (bench_compare.py)
#   WORK_DIR  scratch directory for the artifacts
#
# Three contracts:
#  1. A file compared against itself passes at the default threshold
#     (the self-comparison every CI baseline update starts from).
#  2. Two independent perf_smoke runs pass at a generous threshold —
#     the comparator tolerates ordinary run-to-run timing noise.
#  3. A synthetically degraded copy (packed_us x10, speedup_x /10)
#     fails with a nonzero exit: the gate actually gates.

set(dir ${WORK_DIR}/bench_compare)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

foreach(run a b)
    execute_process(
        COMMAND ${BENCH} --stats-json ${dir}/run_${run}.json
        WORKING_DIRECTORY ${dir}
        RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "perf_smoke run ${run} failed (${rc})")
    endif()
endforeach()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/bench_compare.py
            ${dir}/run_a.json ${dir}/run_a.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "self-comparison reported a regression (${rc})")
endif()

# A vs B: real timing noise. The 1.5 (150%) threshold is deliberately
# loose — this asserts the tool's plumbing on independent runs, not the
# host's scheduler; the tight default-threshold gate is contract 1.
execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/bench_compare.py --threshold 1.5
            ${dir}/run_a.json ${dir}/run_b.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "A/B comparison of two fresh perf_smoke runs "
                        "regressed even at 150% (${rc})")
endif()

execute_process(
    COMMAND ${PYTHON} -c "
import json, sys
d = json.load(open(sys.argv[1]))
d['stats']['kernel']['ur']['packed_us'] *= 10
d['stats']['kernel']['ur']['speedup_x'] /= 10
json.dump(d, open(sys.argv[2], 'w'))
" ${dir}/run_a.json ${dir}/degraded.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "could not synthesize degraded artifact")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/bench_compare.py
            ${dir}/run_a.json ${dir}/degraded.json
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR "degraded artifact passed — the regression "
                        "gate is not gating")
endif()
