/**
 * @file
 * Tests for the network-level simulation, the GEMM error-statistics
 * driver (Section V-A's mean/std ordering), the multi-instance scaling
 * model (Section V-H), and the early-termination-equals-quantization
 * equivalence of rate coding (Section V-A).
 */

#include <gtest/gtest.h>

#include "common/prng.h"
#include "common/stats.h"
#include "arch/functional.h"
#include "eval/error_stats.h"
#include "eval/network.h"
#include "eval/scaling.h"
#include "workloads/alexnet.h"
#include "workloads/systems.h"

namespace usys {
namespace {

TEST(Network, RollupMatchesLayerSums)
{
    const auto sys = edgeSystem({Scheme::USystolicRate, 8, 6}, false);
    const auto layers = alexnetLayers();
    const auto net = simulateNetwork(sys, layers);
    ASSERT_EQ(net.layers.size(), layers.size());

    double runtime = 0.0, onchip = 0.0;
    for (const auto &layer : net.layers) {
        runtime += layer.stats.runtime_s;
        onchip += layer.energy.onchip_uj();
    }
    EXPECT_NEAR(net.runtime_s, runtime, 1e-12);
    EXPECT_NEAR(net.onchip_uj, onchip, 1e-6);
    // No SRAM -> no inter-layer savings possible.
    EXPECT_EQ(net.interlayer_saved_bytes, 0u);
}

TEST(Network, SramKeepsActivationsOnChip)
{
    const auto with = simulateNetwork(
        edgeSystem({Scheme::BinaryParallel, 8, 0}, true),
        alexnetLayers());
    // Small conv outputs fit the 64 KB buffers, so later conv layers
    // consume their IFM from SRAM.
    EXPECT_GT(with.interlayer_saved_bytes, 0u);
    int from_sram = 0;
    for (const auto &layer : with.layers)
        from_sram += layer.ifm_from_sram ? 1 : 0;
    EXPECT_GE(from_sram, 2);

    const auto without = simulateNetwork(
        edgeSystem({Scheme::BinaryParallel, 8, 0}, false),
        alexnetLayers());
    EXPECT_GT(without.dram_bytes, with.dram_bytes);
}

TEST(ErrorStats, PaperOrderingOfMeanAndStd)
{
    // Section V-A: error mean and std rank FXP-o-res > uSystolic >
    // FXP-i-res (i-res most accurate) at matched EBT.
    for (int ebt : {6, 8}) {
        const auto stats = gemmErrorStats(ebt, 96);
        ASSERT_EQ(stats.size(), 5u);
        const auto &o_res = stats[0];
        const auto &rate = stats[1];
        const auto &temporal = stats[2];
        const auto &i_res = stats[4];
        EXPECT_GT(o_res.mean_abs_error, rate.mean_abs_error) << ebt;
        EXPECT_GT(rate.mean_abs_error, i_res.mean_abs_error) << ebt;
        EXPECT_GT(o_res.std_error, rate.std_error) << ebt;
        EXPECT_GT(rate.std_error, i_res.std_error) << ebt;
        // Rate and temporal coding are numerically identical.
        EXPECT_DOUBLE_EQ(rate.nrmse, temporal.nrmse) << ebt;
    }
}

TEST(Scaling, UnaryScalesToFarMoreInstances)
{
    const auto layer = alexnetLayers()[2];
    const auto bp = edgeSystem({Scheme::BinaryParallel, 8, 0}, false);
    const auto ur = edgeSystem({Scheme::USystolicRate, 8, 6}, false);
    const int bp_max = maxInstancesBeforeSaturation(bp, layer);
    const int ur_max = maxInstancesBeforeSaturation(ur, layer);
    EXPECT_GT(ur_max, 10 * bp_max);
}

TEST(Scaling, ThroughputSaturatesAtSupply)
{
    const auto layer = alexnetLayers()[2];
    const auto sys = edgeSystem({Scheme::BinaryParallel, 8, 0}, false);
    const auto points = scaleInstances(sys, layer, {1, 2, 8, 64, 512});
    // Aggregate throughput is non-decreasing but saturates.
    for (std::size_t i = 1; i < points.size(); ++i)
        EXPECT_GE(points[i].aggregate_gmacs,
                  points[i - 1].aggregate_gmacs * 0.999);
    const double ratio = points.back().aggregate_gmacs /
                         points.front().aggregate_gmacs;
    EXPECT_LT(ratio, 512.0 * 0.5); // far from linear scaling
}

TEST(Scaling, SlowdownFormula)
{
    const auto layer = alexnetLayers()[0];
    const auto sys = edgeSystem({Scheme::USystolicRate, 8, 8}, false);
    const auto points = scaleInstances(sys, layer, {1});
    EXPECT_DOUBLE_EQ(points[0].slowdown, 1.0); // one crawler never saturates
}

TEST(EarlyTermination, EquivalentToQuantizationForRateCoding)
{
    // Section V-A: "for rate coding, smaller EBT can be obtained by
    // early terminating larger EBT" with almost the same accuracy.
    // Compare 10-bit data early-terminated to EBT 7 against native
    // 7-bit quantization at full period, on the same real-valued GEMM.
    Prng prng(41);
    const int m = 8, k = 64, n = 8;
    Matrix<i32> a10(m, k), b10(k, n), a7(m, k), b7(k, n);
    for (int r = 0; r < m; ++r) {
        for (int c = 0; c < k; ++c) {
            const double v = prng.uniform(-1.0, 1.0);
            a10(r, c) = i32(std::lround(v * 511));
            a7(r, c) = i32(std::lround(v * 63));
        }
    }
    for (int r = 0; r < k; ++r) {
        for (int c = 0; c < n; ++c) {
            const double v = prng.uniform(-1.0, 1.0);
            b10(r, c) = i32(std::lround(v * 511));
            b7(r, c) = i32(std::lround(v * 63));
        }
    }

    GemmExecutor et({Scheme::USystolicRate, 10, 7});
    GemmExecutor native({Scheme::USystolicRate, 7, 0});
    const auto acc_et = et.run(a10, b10);
    const auto acc_native = native.run(a7, b7);

    RmseTracker err_et, err_native;
    for (int r = 0; r < m; ++r) {
        for (int c = 0; c < n; ++c) {
            double exact = 0.0;
            for (int kk = 0; kk < k; ++kk)
                exact += double(a10(r, kk)) / 511.0 *
                         double(b10(kk, c)) / 511.0;
            err_et.add(exact, double(acc_et(r, c)) * et.resultScale() /
                                  (511.0 * 511.0));
            err_native.add(exact,
                           double(acc_native(r, c)) *
                               native.resultScale() / (63.0 * 63.0));
        }
    }
    // Early termination of a wider stream tracks native quantization.
    EXPECT_LT(err_et.normalizedRmse(),
              err_native.normalizedRmse() * 2.0 + 0.01);
    EXPECT_LT(err_et.normalizedRmse(), 0.1);
}

} // namespace
} // namespace usys
