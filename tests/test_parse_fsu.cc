/**
 * @file
 * Tests for the textual layer-spec parser (CLI front end) and the FSU
 * baseline cost model (footnote 2).
 */

#include <gtest/gtest.h>

#include "hw/fsu_cost.h"
#include "workloads/alexnet.h"
#include "workloads/layer_parse.h"

namespace usys {
namespace {

TEST(LayerParse, ConvSpec)
{
    const auto layer = parseLayerSpec("conv:31,31,96,5,5,1,256");
    ASSERT_TRUE(layer.has_value());
    EXPECT_EQ(layer->m(), 729);
    EXPECT_EQ(layer->k(), 2400);
    EXPECT_EQ(layer->n(), 256);
    EXPECT_EQ(layer->type, GemmType::Convolution);
}

TEST(LayerParse, MatmulSpec)
{
    const auto layer = parseLayerSpec("matmul:4,9216,4096");
    ASSERT_TRUE(layer.has_value());
    EXPECT_EQ(layer->m(), 4);
    EXPECT_EQ(layer->k(), 9216);
    EXPECT_EQ(layer->n(), 4096);
}

TEST(LayerParse, MalformedSpecsRejected)
{
    EXPECT_FALSE(parseLayerSpec("conv:1,2,3").has_value());
    EXPECT_FALSE(parseLayerSpec("matmul:1,2").has_value());
    EXPECT_FALSE(parseLayerSpec("matmul:1,2,3,4").has_value());
    EXPECT_FALSE(parseLayerSpec("gemm:1,2,3").has_value());
    EXPECT_FALSE(parseLayerSpec("matmul:a,b,c").has_value());
    EXPECT_FALSE(parseLayerSpec("matmul:0,2,3").has_value());
    EXPECT_FALSE(parseLayerSpec("matmul:-1,2,3").has_value());
    EXPECT_FALSE(parseLayerSpec("alexnet").has_value()); // list-only
    // Window larger than input.
    EXPECT_FALSE(parseLayerSpec("conv:3,3,1,5,5,1,8").has_value());
}

TEST(LayerParse, ListExpandsNamedWorkloads)
{
    const auto layers =
        parseLayerList("alexnet;matmul:1,256,10");
    EXPECT_EQ(layers.size(), 9u);
    EXPECT_EQ(layers[0].name, "Conv1");
    EXPECT_EQ(layers[8].n(), 10);
}

TEST(LayerParse, BadListFatals)
{
    EXPECT_EXIT(parseLayerList("nonsense"),
                ::testing::ExitedWithCode(1), "unparseable");
}

TEST(FsuCost, AlexnetNeedsMoreStorageThanCloudSram)
{
    const auto cost = fsuInstanceCost(alexnetLayers(), 8);
    // Paper footnote 2: 61.1 MB (our ungrouped convs give ~59.5 MB).
    EXPECT_NEAR(cost.storage_mb, 61.1, 5.0);
    EXPECT_GT(cost.storage_mb, 24.0); // beyond the cloud TPU's SRAM
    EXPECT_GT(cost.total_area_mm2, 1000.0);
    EXPECT_GT(cost.mul_area_mm2, 0.0);
    EXPECT_GT(cost.leak_w, 1.0);
}

TEST(FsuCost, ScalesWithBitwidth)
{
    const auto b8 = fsuInstanceCost(alexnetLayers(), 8);
    const auto b16 = fsuInstanceCost(alexnetLayers(), 16);
    EXPECT_NEAR(b16.storage_mb, 2.0 * b8.storage_mb, 1e-9);
    EXPECT_GT(b16.total_area_mm2, b8.total_area_mm2);
}

} // namespace
} // namespace usys
