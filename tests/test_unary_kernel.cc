/**
 * @file
 * Tests for bitstream generators, LFSR, SCC, cycle-level uMULs, and the
 * exact product-table functional models. The central invariant: the O(1)
 * table model reproduces the bit-level C-BSG multiplier exactly, for all
 * operand values, codings, and early-termination points.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "unary/bitstream.h"
#include "unary/lfsr.h"
#include "unary/product_table.h"
#include "unary/scc.h"
#include "unary/sobol.h"
#include "unary/umul.h"

namespace usys {
namespace {

TEST(Bitstream, RateFullPeriodOnesEqualsValue)
{
    const int bits = 7;
    const u64 period = u64(1) << bits;
    for (u32 src : {0u, 1u, 13u, 64u, 127u}) {
        RateBsg gen(src, 0, bits);
        auto stream = generateBits(gen, period);
        EXPECT_EQ(onesCount(stream), src) << "src " << src;
    }
}

TEST(Bitstream, TemporalTailPlacement)
{
    const int bits = 4;
    TemporalBsg gen(5, bits);
    auto stream = generateBits(gen, 16);
    // 1s must occupy the last 5 positions.
    for (int i = 0; i < 11; ++i)
        EXPECT_EQ(stream[i], 0);
    for (int i = 11; i < 16; ++i)
        EXPECT_EQ(stream[i], 1);
}

TEST(Bitstream, RateAllOnesAtFullScale)
{
    // src == 2^bits is the documented upper bound: every RNG value
    // compares below it, so the stream is all 1s.
    const int bits = 6;
    const u64 period = u64(1) << bits;
    RateBsg gen(u32(period), 0, bits);
    auto stream = generateBits(gen, period);
    EXPECT_EQ(onesCount(stream), period);
    gen.reset();
    EXPECT_EQ(gen.nextWord(), ~u64(0));
}

TEST(Bitstream, RateAllZerosAtZeroSource)
{
    // src == 0 is the other threshold extreme: no RNG value compares
    // below it, so both stepping paths emit all 0s forever.
    const int bits = 6;
    const u64 period = u64(1) << bits;
    RateBsg gen(0, 0, bits);
    auto stream = generateBits(gen, 2 * period);
    EXPECT_EQ(onesCount(stream), 0u);
    gen.reset();
    EXPECT_EQ(gen.nextWord(), u64(0));
    EXPECT_EQ(gen.nextWord(), u64(0));
}

TEST(Bitstream, RateMixedBitAndWordSteppingIsStateIdentical)
{
    // nextWord() must advance the Sobol state exactly 64 nextBit()
    // steps, so arbitrary interleavings of the two stay on the same
    // stream — including at both threshold extremes.
    const int bits = 6;
    for (u32 src : {0u, 1u, 29u, 63u, 64u}) {
        RateBsg mixed(src, 3, bits);
        RateBsg scalar(src, 3, bits);
        std::vector<u8> got, want;
        for (int round = 0; round < 3; ++round) {
            for (int i = 0; i < 7; ++i)
                got.push_back(mixed.nextBit() ? 1 : 0);
            const u64 w = mixed.nextWord();
            for (int i = 0; i < 64; ++i)
                got.push_back(u8((w >> i) & 1));
        }
        for (std::size_t i = 0; i < got.size(); ++i)
            want.push_back(scalar.nextBit() ? 1 : 0);
        EXPECT_EQ(got, want) << "src " << src;
    }
}

TEST(Bitstream, RateSrcAboveFullScaleIsFatal)
{
    // fatal() exits with status 1 (user error, not an abort).
    EXPECT_EXIT(RateBsg(65, 0, 6), ::testing::ExitedWithCode(1),
                "exceeds");
}

TEST(Bitstream, NextWordMatchesNextBitForAllGenerators)
{
    const int bits = 7;
    // Rate, temporal (incl. the all-ones tail past the period), and
    // bipolar generators must produce identical packed words to the
    // scalar reference path.
    for (u32 src : {0u, 1u, 55u, 128u}) {
        RateBsg word_gen(src, 1, bits);
        RateBsg bit_gen(src, 1, bits);
        for (int w = 0; w < 4; ++w) {
            u64 expect = 0;
            for (int i = 0; i < 64; ++i)
                expect |= u64(bit_gen.nextBit()) << i;
            EXPECT_EQ(word_gen.nextWord(), expect)
                << "rate src " << src << " word " << w;
        }
    }
    for (u32 src : {0u, 3u, 64u, 128u}) {
        TemporalBsg word_gen(src, bits);
        TemporalBsg bit_gen(src, bits);
        for (int w = 0; w < 4; ++w) {
            u64 expect = 0;
            for (int i = 0; i < 64; ++i)
                expect |= u64(bit_gen.nextBit()) << i;
            EXPECT_EQ(word_gen.nextWord(), expect)
                << "temporal src " << src << " word " << w;
        }
    }
    for (i32 src : {-64, -5, 0, 17, 63}) {
        BipolarRateBsg word_gen(src, 1, bits);
        BipolarRateBsg bit_gen(src, 1, bits);
        for (int w = 0; w < 4; ++w) {
            u64 expect = 0;
            for (int i = 0; i < 64; ++i)
                expect |= u64(bit_gen.nextBit()) << i;
            EXPECT_EQ(word_gen.nextWord(), expect)
                << "bipolar src " << src << " word " << w;
        }
    }
}

TEST(Bitstream, BipolarFullPeriodValue)
{
    const int bits = 6;
    const u64 period = u64(1) << bits;
    for (i32 src : {-32, -7, 0, 5, 31}) {
        BipolarRateBsg gen(src, 0, bits);
        auto stream = generateBits(gen, period);
        const double value =
            2.0 * double(onesCount(stream)) / double(period) - 1.0;
        EXPECT_NEAR(value, double(src) / 32.0, 1e-12);
    }
}

TEST(Lfsr, MaximalPeriodCoversNonZero)
{
    for (int bits : {3, 5, 8, 11, 16}) {
        Lfsr lfsr(bits);
        std::vector<u8> seen(std::size_t(1) << bits, 0);
        for (u64 i = 0; i < lfsr.period(); ++i) {
            const u32 v = lfsr.next();
            ASSERT_NE(v, 0u) << "bits " << bits;
            EXPECT_EQ(seen[v], 0) << "bits " << bits << " value " << v;
            seen[v] = 1;
        }
        // After a full period the state recurs.
        EXPECT_EQ(lfsr.next(), 1u);
    }
}

TEST(Lfsr, ZeroSeedCoerced)
{
    Lfsr lfsr(4, 0);
    EXPECT_EQ(lfsr.next(), 1u);
}

/**
 * Batched word advance vs 64 scalar next() calls, over a full period
 * (plus the wrap into the next one), for every supported polynomial.
 */
TEST(Lfsr, NextWordMatchesScalarOverFullPeriod)
{
    for (int bits = 3; bits <= 16; ++bits) {
        Lfsr word_gen(bits);
        Lfsr bit_gen(bits);
        const u32 thr = (u32(1) << bits) / 2 + 1;
        const u64 words = word_gen.period() / 64 + 1;
        for (u64 w = 0; w < words; ++w) {
            const u64 word = word_gen.nextWord(thr);
            for (int i = 0; i < 64; ++i) {
                EXPECT_EQ((word >> i) & 1, u64(bit_gen.next() < thr))
                    << "bits " << bits << " word " << w << " bit " << i;
            }
        }
        // States stay in lockstep after mixing word and scalar steps.
        EXPECT_EQ(word_gen.next(), bit_gen.next()) << "bits " << bits;
    }
}

TEST(Scc, IdenticalStreamsFullyCorrelated)
{
    std::vector<u8> x{1, 0, 1, 1, 0, 0, 1, 0};
    EXPECT_NEAR(stochasticCrossCorrelation(x, x), 1.0, 1e-12);
}

TEST(Scc, ComplementStreamsAntiCorrelated)
{
    std::vector<u8> x{1, 0, 1, 1, 0, 0, 1, 0};
    std::vector<u8> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] = u8(1 - x[i]);
    EXPECT_NEAR(stochasticCrossCorrelation(x, y), -1.0, 1e-12);
}

TEST(Scc, CbsgStreamsNearZero)
{
    // C-BSG pairs (input stream, weight stream) should have SCC near 0.
    const int bits = 8;
    const u64 period = u64(1) << bits;
    for (u32 iabs : {64u, 128u, 200u}) {
        for (u32 wabs : {32u, 100u, 180u}) {
            RateBsg input(iabs, 1, bits);
            CbsgUmul mul(wabs, bits, 0);
            std::vector<u8> in_bits, w_bits;
            SobolSequence wrng(0, bits);
            u64 consumed = 0;
            for (u64 t = 0; t < period; ++t) {
                const bool in = input.nextBit();
                in_bits.push_back(in ? 1 : 0);
                // Reconstruct the weight-side bit stream the way C-BSG
                // exposes it: hold the last value while disabled.
                if (in)
                    ++consumed;
                const u32 r = wrng.at(consumed ? consumed - 1 : 0);
                w_bits.push_back(r < wabs ? 1 : 0);
            }
            const double scc = stochasticCrossCorrelation(in_bits, w_bits);
            EXPECT_LT(std::abs(scc), 0.15)
                << "iabs " << iabs << " wabs " << wabs;
        }
    }
}

TEST(CbsgUmul, FullPeriodProductLowError)
{
    const int mag_bits = 7;
    const u64 period = u64(1) << mag_bits;
    RmseTracker rmse;
    for (u32 iabs = 0; iabs < period; iabs += 9) {
        for (u32 wabs = 0; wabs < period; wabs += 11) {
            RateBsg input(iabs, 1, mag_bits);
            CbsgUmul mul(wabs, mag_bits, 0);
            u64 ones = 0;
            for (u64 t = 0; t < period; ++t)
                ones += mul.step(input.nextBit());
            const double expected = double(iabs) * double(wabs) /
                                    double(period);
            rmse.add(expected, double(ones));
        }
    }
    // C-BSG with Sobol should land within one LSB on average.
    EXPECT_LT(rmse.rmse(), 1.0);
    EXPECT_LT(rmse.maxAbsError(), 4.0);
}

TEST(ProductTable, MatchesCycleLevelUnipolar)
{
    const int signed_bits = 8; // magnitude 7 bits, period 128
    UnaryProductModel model(signed_bits, 0, 1);
    const u32 period = model.period();
    ASSERT_EQ(period, 128u);

    for (u32 iabs = 0; iabs < period; iabs += 7) {
        for (u32 wabs = 0; wabs < period; wabs += 13) {
            RateBsg input(iabs, 1, model.magBits());
            CbsgUmul mul(wabs, model.magBits(), 0);
            u32 ones = 0;
            std::vector<u32> prefix{0};
            for (u32 t = 0; t < period; ++t) {
                ones += mul.step(input.nextBit());
                prefix.push_back(ones);
            }
            EXPECT_EQ(model.fullProduct(iabs, wabs), ones);
            // Early termination at several points must also agree.
            for (u32 cut : {1u, 32u, 64u, 100u, period}) {
                EXPECT_EQ(model.rateProduct(iabs, wabs, cut), prefix[cut])
                    << "iabs " << iabs << " wabs " << wabs
                    << " cut " << cut;
            }
        }
    }
}

TEST(ProductTable, MatchesCycleLevelTemporal)
{
    const int signed_bits = 7; // magnitude 6 bits, period 64
    UnaryProductModel model(signed_bits, 0, 1);
    const u32 period = model.period();

    for (u32 iabs = 0; iabs < period; iabs += 5) {
        for (u32 wabs = 0; wabs < period; wabs += 9) {
            TemporalBsg input(iabs, model.magBits());
            CbsgUmul mul(wabs, model.magBits(), 0);
            u32 ones = 0;
            std::vector<u32> prefix{0};
            for (u32 t = 0; t < period; ++t) {
                ones += mul.step(input.nextBit());
                prefix.push_back(ones);
            }
            EXPECT_EQ(model.fullProduct(iabs, wabs), ones);
            for (u32 cut : {8u, 32u, period}) {
                EXPECT_EQ(model.temporalProduct(iabs, wabs, cut),
                          prefix[cut]);
            }
        }
    }
}

TEST(ProductTable, RateAndTemporalAgreeAtFullPeriod)
{
    UnaryProductModel model(9);
    const u32 period = model.period();
    for (u32 i = 0; i < period; i += 17) {
        for (u32 w = 0; w < period; w += 23) {
            EXPECT_EQ(model.rateProduct(i, w, period),
                      model.temporalProduct(i, w, period));
        }
    }
}

TEST(ProductTable, TemporalEarlyTerminationIsCatastrophic)
{
    // Small values lose all their 1s under temporal truncation while the
    // rate-coded path degrades gracefully.
    UnaryProductModel model(8);
    const u32 period = model.period();
    const u32 half = period / 2;
    const u32 iabs = period / 4; // a small-ish input value
    const u32 wabs = period - 1;
    EXPECT_EQ(model.temporalProduct(iabs, wabs, half), 0u);
    const double ideal_half = double(iabs) * wabs / period / 2.0;
    EXPECT_NEAR(double(model.rateProduct(iabs, wabs, half)), ideal_half,
                ideal_half * 0.25 + 2.0);
}

TEST(BipolarModel, MatchesCycleLevel)
{
    const int bits = 7;
    BipolarProductModel model(bits, 0, 1);
    const u32 period = model.period();
    ASSERT_EQ(period, 128u);

    for (i32 x : {-64, -31, -1, 0, 7, 45, 63}) {
        for (i32 w : {-64, -20, 0, 33, 63}) {
            BipolarRateBsg input(x, 2, bits);
            BipolarUmul mul(w, bits, 0, 1);
            u32 ones = 0;
            for (u32 t = 0; t < period; ++t)
                ones += mul.step(input.nextBit());
            EXPECT_EQ(model.onesCount(x, w), ones)
                << "x " << x << " w " << w;
        }
    }
}

TEST(BipolarModel, ScaledProductAccuracy)
{
    const int bits = 8;
    BipolarProductModel model(bits);
    RmseTracker rmse;
    for (i32 x = -128; x < 128; x += 5) {
        for (i32 w = -128; w < 128; w += 7) {
            const double expected = double(x) * double(w) / 128.0;
            rmse.add(expected, double(model.scaledProduct(x, w)));
        }
    }
    EXPECT_LT(rmse.rmse(), 2.5);
}

/**
 * Property sweep: the unipolar full-period product is within a small bound
 * of the true scaled product for every bitwidth used in the paper.
 */
class ProductAccuracy : public ::testing::TestWithParam<int>
{};

TEST_P(ProductAccuracy, FullPeriodWithinOneLsbRms)
{
    const int signed_bits = GetParam();
    UnaryProductModel model(signed_bits);
    const u32 period = model.period();
    const u32 step = std::max(1u, period / 64);
    RmseTracker rmse;
    for (u32 i = 0; i < period; i += step) {
        for (u32 w = 0; w < period; w += step) {
            const double expected = double(i) * double(w) / double(period);
            rmse.add(expected, double(model.fullProduct(i, w)));
        }
    }
    EXPECT_LT(rmse.rmse(), 1.2) << "bits " << signed_bits;
}

INSTANTIATE_TEST_SUITE_P(Bitwidths, ProductAccuracy,
                         ::testing::Values(6, 7, 8, 9, 10, 11, 12));

} // namespace
} // namespace usys
