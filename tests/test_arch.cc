/**
 * @file
 * Tests for the PE models, the cycle-level systolic array, and the fast
 * functional GEMM engines. The load-bearing invariant: for every scheme,
 * bitwidth, and early-termination point, the cycle-level array produces
 * exactly the same accumulations as the O(1) functional executor, and
 * exact results for the binary schemes.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/prng.h"
#include "common/stats.h"
#include "arch/array.h"
#include "arch/functional.h"
#include "arch/pe.h"

namespace usys {
namespace {

Matrix<i32>
randomMatrix(int rows, int cols, int bits, Prng &prng)
{
    const i32 max_mag = maxMagnitude(bits);
    Matrix<i32> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    return m;
}

TEST(KernelConfig, MacCycles)
{
    KernelConfig bp{Scheme::BinaryParallel, 8, 0};
    EXPECT_EQ(bp.macCycles(), 1u);

    KernelConfig bs{Scheme::BinarySerial, 8, 0};
    EXPECT_EQ(bs.macCycles(), 9u);

    KernelConfig ur{Scheme::USystolicRate, 8, 0};
    EXPECT_EQ(ur.mulCycles(), 128u);
    EXPECT_EQ(ur.macCycles(), 129u);

    KernelConfig ur6{Scheme::USystolicRate, 8, 6};
    EXPECT_EQ(ur6.mulCycles(), 32u);
    EXPECT_EQ(ur6.macCycles(), 33u);

    KernelConfig ut{Scheme::USystolicTemporal, 8, 0};
    EXPECT_EQ(ut.macCycles(), 129u);

    KernelConfig ug{Scheme::UgemmHybrid, 8, 0};
    EXPECT_EQ(ug.mulCycles(), 256u);
    EXPECT_EQ(ug.macCycles(), 257u);
}

TEST(KernelConfig, Names)
{
    KernelConfig ur6{Scheme::USystolicRate, 8, 6};
    EXPECT_EQ(ur6.name(), "UR-8b(ebt6)");
    KernelConfig bp{Scheme::BinaryParallel, 16, 0};
    EXPECT_EQ(bp.name(), "BP-16b");
}

/** Single PE (front end + core) must reproduce the product tables. */
TEST(Pe, SingleMacMatchesProductTable)
{
    KernelConfig cfg{Scheme::USystolicRate, 8, 0};
    GemmExecutor exec(cfg);
    RowFrontEnd fe(cfg);
    PeCore core(cfg);

    Prng prng(7);
    for (int trial = 0; trial < 200; ++trial) {
        const i32 a = i32(prng.below(255)) - 127;
        const i32 b = i32(prng.below(255)) - 127;
        fe.loadInput(a);
        core.loadWeight(b);
        for (u32 p = 0; p < cfg.mulCycles(); ++p)
            core.stepMul(fe.step(p), p);
        fe.endMac();
        EXPECT_EQ(core.finishMac(0, a < 0), exec.singleProduct(a, b))
            << "a " << a << " b " << b;
    }
}

TEST(Pe, BinarySerialExact)
{
    KernelConfig cfg{Scheme::BinarySerial, 8, 0};
    RowFrontEnd fe(cfg);
    PeCore core(cfg);
    Prng prng(11);
    for (int trial = 0; trial < 200; ++trial) {
        const i32 a = i32(prng.below(255)) - 127;
        const i32 b = i32(prng.below(255)) - 127;
        fe.loadInput(a);
        core.loadWeight(b);
        for (u32 p = 0; p < cfg.mulCycles(); ++p)
            core.stepMul(fe.step(p), p);
        fe.endMac();
        EXPECT_EQ(core.finishMac(0, a < 0), i64(a) * b);
    }
}

TEST(Array, FoldLatencyBinaryParallelMatchesScaleSim)
{
    // SCALE-Sim weight-stationary fold latency: 2R + C + M - 2.
    ArrayConfig cfg;
    cfg.rows = 12;
    cfg.cols = 14;
    cfg.kernel = {Scheme::BinaryParallel, 8, 0};
    SystolicArray array(cfg);
    EXPECT_EQ(array.foldLatency(20), u64(2 * 12 + 14 + 20 - 2));
}

TEST(Array, FoldLatencyScalesWithMacCycles)
{
    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.kernel = {Scheme::USystolicRate, 8, 6}; // 33-cycle MAC
    SystolicArray array(cfg);
    EXPECT_EQ(array.foldLatency(10), u64(4 + (10 + 3) * 33 + 3));
}

using SchemeCase = std::tuple<Scheme, int, int>; // scheme, bits, et_bits

class ArrayVsFunctional : public ::testing::TestWithParam<SchemeCase>
{};

/**
 * Property: the cycle-level array and the functional executor agree
 * exactly, fold latency matches the closed form, and binary schemes are
 * exact against the reference GEMM.
 */
TEST_P(ArrayVsFunctional, ExactAgreement)
{
    const auto [scheme, bits, et_bits] = GetParam();
    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 5;
    cfg.kernel = {scheme, bits, et_bits};

    Prng prng(u64(int(scheme)) * 1000 + u64(bits) * 10 + u64(et_bits));
    const int m_rows = 6;
    auto input = randomMatrix(m_rows, cfg.rows, bits, prng);
    auto weights = randomMatrix(cfg.rows, cfg.cols, bits, prng);

    SystolicArray array(cfg);
    auto fold = array.runFold(input, weights);
    EXPECT_EQ(fold.cycles, array.foldLatency(m_rows));

    GemmExecutor exec(cfg.kernel);
    auto expected = exec.run(input, weights);
    EXPECT_EQ(fold.output, expected) << cfg.kernel.name();

    if (scheme == Scheme::BinaryParallel ||
        scheme == Scheme::BinarySerial) {
        EXPECT_EQ(fold.output, referenceGemm(input, weights));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ArrayVsFunctional,
    ::testing::Values(
        SchemeCase{Scheme::BinaryParallel, 8, 0},
        SchemeCase{Scheme::BinaryParallel, 16, 0},
        SchemeCase{Scheme::BinarySerial, 8, 0},
        SchemeCase{Scheme::BinarySerial, 16, 0},
        SchemeCase{Scheme::USystolicRate, 8, 0},
        SchemeCase{Scheme::USystolicRate, 8, 6},
        SchemeCase{Scheme::USystolicRate, 8, 7},
        SchemeCase{Scheme::USystolicRate, 10, 8},
        SchemeCase{Scheme::USystolicTemporal, 8, 0},
        SchemeCase{Scheme::USystolicTemporal, 6, 0},
        SchemeCase{Scheme::UgemmHybrid, 8, 0},
        SchemeCase{Scheme::UgemmHybrid, 6, 0}));

/** Randomized shape sweep: decomposed array == functional everywhere. */
class RandomShapes : public ::testing::TestWithParam<int>
{};

TEST_P(RandomShapes, ArrayMatchesFunctional)
{
    Prng prng(u64(GetParam()) * 101 + 13);
    ArrayConfig cfg;
    cfg.rows = 1 + int(prng.below(7));
    cfg.cols = 1 + int(prng.below(7));
    const Scheme schemes[] = {Scheme::BinaryParallel,
                              Scheme::BinarySerial,
                              Scheme::USystolicRate,
                              Scheme::USystolicTemporal,
                              Scheme::UgemmHybrid};
    const Scheme scheme = schemes[prng.below(5)];
    const int bits = 6 + int(prng.below(3));
    int et = 0;
    if (scheme == Scheme::USystolicRate && prng.below(2))
        et = 4 + int(prng.below(u64(bits - 4) + 1));
    cfg.kernel = {scheme, bits, et};

    const int m_rows = 1 + int(prng.below(6));
    auto input = randomMatrix(m_rows, cfg.rows, bits, prng);
    auto weights = randomMatrix(cfg.rows, cfg.cols, bits, prng);
    const auto fold = SystolicArray(cfg).runFold(input, weights);
    const auto expected = GemmExecutor(cfg.kernel).run(input, weights);
    EXPECT_EQ(fold.output, expected) << cfg.kernel.name() << " "
                                     << cfg.rows << "x" << cfg.cols;
    EXPECT_EQ(fold.cycles, SystolicArray(cfg).foldLatency(m_rows));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomShapes, ::testing::Range(0, 20));

TEST(SystolicGemm, TiledBinaryExactAcrossRaggedShapes)
{
    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.kernel = {Scheme::BinaryParallel, 8, 0};
    SystolicGemm gemm(cfg);
    Prng prng(3);
    // Deliberately ragged K and N to exercise zero padding.
    auto a = randomMatrix(5, 10, 8, prng);
    auto b = randomMatrix(10, 7, 8, prng);
    auto result = gemm.run(a, b);
    EXPECT_EQ(result.acc, referenceGemm(a, b));
    EXPECT_EQ(result.folds, u64(3 * 2)); // ceil(10/4) * ceil(7/4)
    EXPECT_GT(result.cycles, 0u);
}

TEST(SystolicGemm, TiledUnaryMatchesFunctionalTiled)
{
    ArrayConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    cfg.kernel = {Scheme::USystolicRate, 8, 0};
    SystolicGemm gemm(cfg);
    Prng prng(5);
    auto a = randomMatrix(3, 9, 8, prng);
    auto b = randomMatrix(9, 6, 8, prng);
    auto result = gemm.run(a, b);

    // Functional equivalent with identical zero padding: padding with
    // zero codes adds exactly zero in the unipolar scheme.
    GemmExecutor exec(cfg.kernel);
    auto expected = exec.run(a, b);
    EXPECT_EQ(result.acc, expected);
}

TEST(Functional, UnaryAccuracyImprovesWithBits)
{
    Prng prng(17);
    double prev_rmse = 1e18;
    for (int bits : {6, 8, 10}) {
        KernelConfig cfg{Scheme::USystolicRate, bits, 0};
        GemmExecutor exec(cfg);
        auto a = randomMatrix(8, 16, bits, prng);
        auto b = randomMatrix(16, 8, bits, prng);
        auto acc = exec.run(a, b);
        auto exact = referenceGemm(a, b);
        RmseTracker rmse;
        for (int m = 0; m < 8; ++m) {
            for (int n = 0; n < 8; ++n) {
                rmse.add(double(exact(m, n)),
                         double(acc(m, n)) * exec.resultScale());
            }
        }
        EXPECT_LT(rmse.normalizedRmse(), prev_rmse) << "bits " << bits;
        prev_rmse = rmse.normalizedRmse();
    }
}

TEST(Functional, EarlyTerminationDegradesGracefullyForRate)
{
    Prng prng(23);
    const int bits = 8;
    auto a = randomMatrix(8, 16, bits, prng);
    auto b = randomMatrix(16, 8, bits, prng);
    auto exact = referenceGemm(a, b);

    double prev = 1e18;
    for (int ebt : {8, 7, 6, 5}) {
        KernelConfig cfg{Scheme::USystolicRate, bits, ebt};
        GemmExecutor exec(cfg);
        auto acc = exec.run(a, b);
        RmseTracker rmse;
        for (int m = 0; m < 8; ++m)
            for (int n = 0; n < 8; ++n)
                rmse.add(double(exact(m, n)),
                         double(acc(m, n)) * exec.resultScale());
        // Error grows as EBT shrinks but stays bounded (graceful).
        if (ebt < 8) {
            EXPECT_GE(prev * 1.5 + 0.01, 0.0);
        }
        EXPECT_LT(rmse.normalizedRmse(), 0.2) << "ebt " << ebt;
        prev = rmse.normalizedRmse();
    }
}

TEST(Functional, ResultScale)
{
    EXPECT_EQ(GemmExecutor({Scheme::BinaryParallel, 8, 0}).resultScale(),
              1.0);
    EXPECT_EQ(GemmExecutor({Scheme::USystolicRate, 8, 0}).resultScale(),
              128.0);
    EXPECT_EQ(GemmExecutor({Scheme::UgemmHybrid, 8, 0}).resultScale(),
              128.0);
}

// --- EBT boundaries ---------------------------------------------------

TEST(Ebt, DegenerateAndFullPointsValidate)
{
    // EBT=1 would leave a single unary cycle and no shift-back headroom;
    // the config layer rejects it (0 or [2, bits] only).
    KernelConfig ebt1{Scheme::USystolicRate, 8, 1};
    EXPECT_EXIT(ebt1.check(), ::testing::ExitedWithCode(1), "et_bits");
    KernelConfig ebt_over{Scheme::USystolicRate, 8, 9};
    EXPECT_EXIT(ebt_over.check(), ::testing::ExitedWithCode(1),
                "et_bits");
    KernelConfig ebt_bs{Scheme::BinarySerial, 8, 4};
    EXPECT_EXIT(ebt_bs.check(), ::testing::ExitedWithCode(1),
                "rate coding");

    // EBT=2 is the shortest legal window (2 unary cycles).
    KernelConfig ebt2{Scheme::USystolicRate, 8, 2};
    ebt2.check();
    EXPECT_EQ(ebt2.mulCycles(), 2u);
}

TEST(Ebt, FullWidthPointEqualsNoTermination)
{
    // EBT=N runs the full 2^(N-1) period: bit-exact against EBT=0 on
    // every output, and the same fold latency.
    const int bits = 6;
    ArrayConfig full, ebt;
    full.rows = ebt.rows = 4;
    full.cols = ebt.cols = 4;
    full.kernel = {Scheme::USystolicRate, bits, 0};
    ebt.kernel = {Scheme::USystolicRate, bits, bits};
    EXPECT_EQ(ebt.kernel.mulCycles(), full.kernel.mulCycles());

    Prng prng(0xEB7ull);
    const auto input = randomMatrix(5, 4, bits, prng);
    const auto weights = randomMatrix(4, 4, bits, prng);
    const auto a = SystolicArray(full).runFold(input, weights);
    const auto b = SystolicArray(ebt).runFold(input, weights);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Ebt, ZeroMagnitudeOperandsSurviveEveryScheme)
{
    // All-zero tiles exercise the zero-magnitude BSG paths (no 1-bits
    // ever emitted, bipolar bias-only lanes) at full and minimum EBT.
    const int bits = 6;
    const std::tuple<Scheme, int> cases[] = {
        {Scheme::BinaryParallel, 0}, {Scheme::BinarySerial, 0},
        {Scheme::USystolicRate, 0},  {Scheme::USystolicRate, 2},
        {Scheme::USystolicTemporal, 0}, {Scheme::UgemmHybrid, 0}};
    for (const auto &[scheme, et] : cases) {
        ArrayConfig cfg;
        cfg.rows = 3;
        cfg.cols = 3;
        cfg.kernel = {scheme, bits, et};
        Matrix<i32> zeros_in(4, 3), zeros_w(3, 3);
        Prng prng(u64(int(scheme)) + 1);
        const auto rand_w = randomMatrix(3, 3, bits, prng);

        const auto zz = SystolicArray(cfg).runFold(zeros_in, zeros_w);
        const auto zw = SystolicArray(cfg).runFold(zeros_in, rand_w);
        const auto fz = GemmExecutor(cfg.kernel).run(zeros_in, zeros_w);
        const auto fw = GemmExecutor(cfg.kernel).run(zeros_in, rand_w);
        EXPECT_EQ(zz.output, fz) << cfg.kernel.name();
        EXPECT_EQ(zw.output, fw) << cfg.kernel.name();
        // Zero x zero must accumulate to exactly zero for the exact
        // schemes (unary bipolar has a bias term, so only check BP/BS).
        if (!isUnary(scheme)) {
            for (int m = 0; m < 4; ++m)
                for (int c = 0; c < 3; ++c)
                    EXPECT_EQ(zz.output(m, c), 0);
        }
    }
}

TEST(Functional, UgemmAccuracyComparableToUSystolic)
{
    // uGEMM-H merely changes the hardware cost, not the resolution
    // (Section V-A): its GEMM error should be in the same ballpark.
    Prng prng(29);
    const int bits = 8;
    auto a = randomMatrix(8, 12, bits, prng);
    auto b = randomMatrix(12, 8, bits, prng);
    auto exact = referenceGemm(a, b);

    auto nrmse = [&](Scheme s) {
        KernelConfig cfg{s, bits, 0};
        GemmExecutor exec(cfg);
        auto acc = exec.run(a, b);
        RmseTracker rmse;
        for (int m = 0; m < 8; ++m)
            for (int n = 0; n < 8; ++n)
                rmse.add(double(exact(m, n)),
                         double(acc(m, n)) * exec.resultScale());
        return rmse.normalizedRmse();
    };

    const double ur = nrmse(Scheme::USystolicRate);
    const double ug = nrmse(Scheme::UgemmHybrid);
    EXPECT_LT(ur, 0.1);
    EXPECT_LT(ug, 0.15);
    EXPECT_LT(ug, ur * 6 + 0.02);
}

} // namespace
} // namespace usys
