# ctest driver for the perf-regression comparator against the
# checked-in benchmark record. Expects:
#   BENCH     path to the perf_smoke binary
#   PYTHON    python3 interpreter
#   TOOLS_DIR repo tools/ directory (bench_compare.py)
#   WORK_DIR  scratch directory for the candidate artifact
#   REPO_ROOT repo source directory (committed BENCH_kernels.json)
#   SANITIZED USYS_SANITIZE value of the tree ("" for a plain build)

# The committed baseline is a release-tree artifact; sanitized timings
# are incommensurable with it (and under TSan the no_sanitize AVX-512
# kernels inflate the SIMD ratios by an order of magnitude), so the
# comparison only runs in plain builds.
if(SANITIZED)
    message(STATUS "sanitized tree (${SANITIZED}): skipping the "
                   "perf-regression comparison against the committed "
                   "baseline")
    return()
endif()

set(baseline ${REPO_ROOT}/BENCH_kernels.json)
set(candidate ${WORK_DIR}/BENCH_kernels_regress.json)

if(NOT EXISTS ${baseline})
    message(FATAL_ERROR "committed baseline ${baseline} is missing — "
                        "run the bench_kernels test once to publish it")
endif()

# Fresh candidate run with no perf gates: the gates live in
# bench_kernels; this test only asks whether the numbers moved.
execute_process(
    COMMAND ${BENCH} --stats-json ${candidate}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "perf_smoke failed (${rc}) while producing the "
                        "regression candidate artifact")
endif()

# Loose 50% gate on the speedup ratios only. Absolute microsecond
# timings swing by integer factors under background load on small
# hosts, and the availability/level counters are ungated by suffix;
# the packed/SIMD/panel speedups are the portable signal. A tier
# present in the baseline but unavailable on this host is exempted by
# the same skip rules (bench_compare treats skip-ruled keys missing
# from the candidate as notes, not regressions).
# sparsity.s0.speedup_x is dense-input A/A (~1.0x by construction) —
# skip it; the s50/s90 sparse speedups stay under the 50% gate.
execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/bench_compare.py ${baseline}
            ${candidate} --threshold 0.5 --skip "*_us"
            --skip "sparsity.s0.speedup_x"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_compare reported a >50% speedup "
                        "regression against the committed "
                        "BENCH_kernels.json")
endif()
