/**
 * @file
 * Tests for the workloads and experiment drivers: AlexNet/MLPerf layer
 * inventories, Figure 11/14 invariants, the early-termination policy,
 * and the headline summary staying in the paper's neighborhood.
 */

#include <gtest/gtest.h>

#include "arch/early_termination.h"
#include "eval/experiments.h"
#include "workloads/alexnet.h"
#include "workloads/mlperf.h"

namespace usys {
namespace {

TEST(Workloads, AlexnetInventory)
{
    const auto layers = alexnetLayers();
    ASSERT_EQ(layers.size(), 8u);
    EXPECT_EQ(layers[0].name, "Conv1");
    EXPECT_EQ(layers[0].m(), 55LL * 55);
    EXPECT_EQ(layers[5].name, "FC6");
    EXPECT_EQ(layers[5].k(), 9216);
    EXPECT_EQ(layers[5].n(), 4096);

    // Parameter count near the published 61.1M (ours: ungrouped convs).
    i64 params = 0;
    for (const auto &l : layers)
        params += l.weightElems();
    EXPECT_GT(params, 55LL * 1000 * 1000);
    EXPECT_LT(params, 70LL * 1000 * 1000);
}

TEST(Workloads, MlperfSuiteDiversity)
{
    const auto suite = mlperfSuite();
    ASSERT_EQ(suite.size(), 8u);
    const auto layers = mlperfLayers();
    EXPECT_GT(layers.size(), 250u);
    // Both operation types (Table II) must be present.
    bool has_conv = false, has_matmul = false;
    for (const auto &l : layers) {
        has_conv |= l.type == GemmType::Convolution;
        has_matmul |= l.type == GemmType::MatMul;
        l.check(); // every layer must be well-formed
    }
    EXPECT_TRUE(has_conv);
    EXPECT_TRUE(has_matmul);
}

TEST(Eval, CandidateListMatchesPaper)
{
    const auto cands = paperCandidates(8);
    ASSERT_EQ(cands.size(), 8u);
    EXPECT_EQ(cands[0].label, "Binary Parallel");
    EXPECT_TRUE(cands[0].with_sram);
    EXPECT_EQ(cands[2].kern.macCycles(), 33u);  // Unary-32c
    EXPECT_EQ(cands[4].kern.macCycles(), 129u); // Unary-128c
    EXPECT_FALSE(cands[4].with_sram);
    EXPECT_EQ(cands[5].kern.macCycles(), 257u); // uGEMM-H
    EXPECT_EQ(cands[6].label, "tubGEMM");
    EXPECT_EQ(cands[6].kern.macCycles(), 129u); // 2^(N-1) + 1
    EXPECT_FALSE(cands[6].with_sram);
    EXPECT_EQ(cands[7].label, "tuGEMM");
    EXPECT_EQ(cands[7].kern.macCycles(), 16385u); // 2^(2(N-1)) + 1
    EXPECT_EQ(bandwidthCandidates(8).size(), 10u);
}

TEST(Eval, MeasuredSparsityAlignsWithAlexnet)
{
    const auto frac = measuredAlexnetSparsity();
    ASSERT_EQ(frac.size(), alexnetLayers().size());
    // Conv1 sees the raw input (uniform positives: dense); every later
    // layer sits behind a ReLU and must show real zeros (the pools
    // after Conv1/Conv2 keep per-window maxima, thinning the density).
    EXPECT_LT(frac[0], 0.05);
    for (std::size_t i = 1; i < frac.size(); ++i)
        EXPECT_GT(frac[i], 0.1) << "layer " << i;
    // Determinism: a second measurement reproduces bit-identically.
    EXPECT_EQ(measuredAlexnetSparsity(), frac);

    const auto layers = alexnetLayersMeasuredSparsity();
    for (std::size_t i = 0; i < layers.size(); ++i)
        EXPECT_EQ(layers[i].act_sparsity, frac[i]);
}

TEST(Eval, Fig11SramDominatesEdgeTotals)
{
    const auto rows = fig11Area(true, 8);
    const auto &bp = rows.front();
    EXPECT_GT(bp.sram_mm2, 2.0 * bp.array_mm2);
    // Unary rows have no SRAM.
    for (const auto &row : rows) {
        if (row.label.rfind("U", 0) == 0) {
            EXPECT_EQ(row.sram_mm2, 0.0);
        }
    }
}

TEST(Eval, Fig14EarlyTerminationMonotone)
{
    const auto rows = fig14Efficiency(true, 8, alexnetLayers());
    // Against Binary Parallel: 32c > 64c > 128c in energy efficiency.
    double e32 = 0, e64 = 0, e128 = 0;
    for (const auto &row : rows) {
        if (row.baseline != "Binary Parallel")
            continue;
        if (row.candidate == "Unary-32c")
            e32 = row.energy_eff_x;
        if (row.candidate == "Unary-64c")
            e64 = row.energy_eff_x;
        if (row.candidate == "Unary-128c")
            e128 = row.energy_eff_x;
    }
    EXPECT_GT(e32, e64);
    EXPECT_GT(e64, e128);
    EXPECT_GT(e128, 1.0); // all beat the binary baseline on-chip
}

TEST(Eval, UtilizationDropsFromAlexnetToMlperfAndEdgeToCloud)
{
    const auto alex = alexnetLayers();
    const auto mlperf = mlperfLayers();
    const double alex_edge = meanUtilization(true, 8, alex);
    const double alex_cloud = meanUtilization(false, 8, alex);
    const double ml_edge = meanUtilization(true, 8, mlperf);
    const double ml_cloud = meanUtilization(false, 8, mlperf);
    EXPECT_GT(alex_edge, alex_cloud);
    EXPECT_GT(alex_edge, ml_edge);
    EXPECT_GT(ml_edge, ml_cloud);
    // Paper values: 97.1 / 81.6 / 69.6 / 37.2 %.
    EXPECT_NEAR(alex_cloud, 0.816, 0.10);
}

TEST(Eval, HeadlineNearPaper)
{
    const Headline h = headlineSummary();
    EXPECT_NEAR(h.array_area_reduction_pct, 59.0, 8.0);
    EXPECT_NEAR(h.onchip_area_reduction_pct, 91.3, 4.0);
    EXPECT_NEAR(h.mean_onchip_energy_red_pct, 83.5, 10.0);
    EXPECT_NEAR(h.mean_onchip_power_red_pct, 98.4, 2.0);
    EXPECT_GT(h.max_energy_eff_x, 10.0);
    EXPECT_GT(h.max_power_eff_x, 30.0);
}

TEST(EarlyTermination, ProfileErrorShrinksWithEbt)
{
    const auto points = profileEarlyTermination(8, 128);
    ASSERT_GE(points.size(), 6u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_LT(points[i].nrmse, points[i - 1].nrmse)
            << "ebt " << points[i].ebt;
        EXPECT_EQ(points[i].mul_cycles, u32(1) << (points[i].ebt - 1));
    }
}

TEST(EarlyTermination, PolicyMonotoneInTolerance)
{
    const int tight = chooseEbt(8, 256, 0.01);
    const int loose = chooseEbt(8, 256, 0.2);
    EXPECT_GE(tight, loose);
    EXPECT_EQ(chooseEbt(8, 256, 0.0), 8); // nothing meets zero error
}

} // namespace
} // namespace usys
