# ctest driver for the packed-vs-scalar kernel benchmark. Expects:
#   BENCH     path to the perf_smoke binary
#   PYTHON    python3 interpreter
#   TOOLS_DIR repo tools/ directory (schema + checker)
#   WORK_DIR  scratch directory for the artifact

set(stats ${WORK_DIR}/BENCH_kernels.json)

# perf_smoke itself asserts packed/scalar equivalence per kernel and
# exits nonzero when the full-period UR speedup misses the 10x floor.
execute_process(
    COMMAND ${BENCH} --stats-json ${stats} --min-speedup 10
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "perf_smoke failed (${rc}) — packed/scalar "
                        "mismatch or UR speedup below 10x")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/check_stats_schema.py
            --schema ${TOOLS_DIR}/bench_kernels_schema.json ${stats}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "BENCH_kernels.json schema validation failed")
endif()
