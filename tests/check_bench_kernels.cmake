# ctest driver for the packed-vs-scalar kernel benchmark. Expects:
#   BENCH     path to the perf_smoke binary
#   PYTHON    python3 interpreter
#   TOOLS_DIR repo tools/ directory (schema + checker)
#   WORK_DIR  scratch directory for the artifact
#   REPO_ROOT repo source directory (receives the artifact copy)
#   SANITIZED USYS_SANITIZE value of the tree ("" for a plain build)

set(stats ${WORK_DIR}/BENCH_kernels.json)

# Sanitized trees still run the full equivalence checks, but the
# sparse-speedup floor is release-only: instrumentation skews the
# plan-build-vs-MAC cost ratio (ASan redzones land on the census/plan
# allocations), and under TSan the no_sanitize AVX-512 kernels make
# every generic-vs-SIMD ratio incommensurable with a release run.
set(sparse_gate --min-sparse-speedup 2)
if(SANITIZED)
    set(sparse_gate)
endif()

# perf_smoke itself asserts packed/scalar, SIMD/generic, and panel
# blocked/unblocked equivalence per kernel and exits nonzero when a
# perf gate misses:
#   --min-speedup 10             full-period UR packed-vs-scalar
#   --min-simd-speedup 2         SIMD bulk popcount (self-skips when
#                                no AVX2/AVX-512 tier is available)
#   --min-gemm-row-speedup 2.5   SIMD gemm row vs generic (self-skips
#                                likewise). The DESIGN §13 target is
#                                4x; the ctest gate is set at 2.5x
#                                because the generic baseline already
#                                sustains ~1 imul/cycle and on
#                                single-vCPU hosts the measured
#                                AVX-512 wall-clock ratio tops out
#                                near its ~3.5x port ceiling.
#   --min-panel-speedup 1.5      cache-blocked vs unblocked packed
#                                GEMM on a 64x64 8-bit tile
#   --min-sparse-speedup 2       sparsity-plan path vs all zero
#                                exploitation disabled, 90%-sparse
#                                256x64x64 UR fold (self-skips on
#                                hosts too slow to time the fold)
#   --max-profile-overhead-pct 2 compiled-in-but-disabled profiler
#                                cost on the packed UR fold (A/A gated)
execute_process(
    COMMAND ${BENCH} --stats-json ${stats} --min-speedup 10
            --min-simd-speedup 2 --min-gemm-row-speedup 2.5
            --min-panel-speedup 1.5 ${sparse_gate}
            --max-profile-overhead-pct 2
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "perf_smoke failed (${rc}) — equivalence "
                        "mismatch or a perf gate missed (UR 10x, SIMD "
                        "popcount 2x, gemm row 2.5x, panel 1.5x, sparse "
                        "2x, or profiling-disabled overhead above 2%)")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/check_stats_schema.py
            --schema ${TOOLS_DIR}/bench_kernels_schema.json ${stats}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "BENCH_kernels.json schema validation failed")
endif()

# Publish the validated artifact at the repo root so the checked-in
# benchmark record tracks the tested binary — but never from a
# sanitized tree: instrumented timings (worse, with TSan's exempted
# AVX-512 kernels, wildly inflated ratios) must not become the
# committed baseline bench_kernels_regress compares against.
if(DEFINED REPO_ROOT AND NOT SANITIZED)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E copy_if_different ${stats}
                ${REPO_ROOT}/BENCH_kernels.json
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "could not copy BENCH_kernels.json to "
                            "${REPO_ROOT}")
    endif()
endif()
