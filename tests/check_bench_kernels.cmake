# ctest driver for the packed-vs-scalar kernel benchmark. Expects:
#   BENCH     path to the perf_smoke binary
#   PYTHON    python3 interpreter
#   TOOLS_DIR repo tools/ directory (schema + checker)
#   WORK_DIR  scratch directory for the artifact
#   REPO_ROOT repo source directory (receives the artifact copy)

set(stats ${WORK_DIR}/BENCH_kernels.json)

# perf_smoke itself asserts packed/scalar and SIMD/generic equivalence
# per kernel and exits nonzero when the full-period UR speedup misses
# the 10x floor or (on AVX2 hosts — the gate self-skips elsewhere) the
# SIMD bulk-popcount speedup misses 2x. --max-profile-overhead-pct
# additionally gates the compiled-in-but-disabled profiler cost on the
# packed UR fold: the A/A delta of two profiling-off measurements must
# stay within 2%.
execute_process(
    COMMAND ${BENCH} --stats-json ${stats} --min-speedup 10
            --min-simd-speedup 2 --max-profile-overhead-pct 2
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "perf_smoke failed (${rc}) — packed/scalar "
                        "mismatch, UR speedup below 10x, SIMD popcount "
                        "speedup below 2x, or profiling-disabled "
                        "overhead above 2%")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/check_stats_schema.py
            --schema ${TOOLS_DIR}/bench_kernels_schema.json ${stats}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "BENCH_kernels.json schema validation failed")
endif()

# Publish the validated artifact at the repo root so the checked-in
# benchmark record tracks the tested binary.
if(DEFINED REPO_ROOT)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E copy_if_different ${stats}
                ${REPO_ROOT}/BENCH_kernels.json
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "could not copy BENCH_kernels.json to "
                            "${REPO_ROOT}")
    endif()
endif()
