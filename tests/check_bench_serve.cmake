# ctest driver for the daemon load benchmark. Expects:
#   BENCH     path to the serve_load binary
#   PYTHON    python3 interpreter
#   TOOLS_DIR repo tools/ directory (schema + checker)
#   WORK_DIR  scratch directory for the artifact
#   REPO_ROOT repo source directory (receives the artifact copy)

set(stats ${WORK_DIR}/BENCH_serve.json)

# serve_load runs the identical duplicate-heavy closed loop against two
# in-process daemons — full (batching + result cache) and baseline
# (--no-batch --no-cache) — and exits nonzero when a gate misses:
#   --min-speedup 2     full must deliver >= 2x baseline throughput at
#                       64 concurrent clients on the dup mix
#   --min-hit-rate 0.5  the result cache must actually be absorbing the
#                       duplicate load, not idling
# Closed-loop throughput on a busy single-core host is noisy, so the
# bench re-measures up to --attempts times and reports the best pair;
# a real regression fails every attempt.
#
# --overload then drives a third phase: clients well past the admission
# bound plus a deliberately stalled connection. --require-shed turns it
# into a gate — the daemon must actually shed (nonzero shed count) and
# reap the stalled peer (nonzero io timeout count), with every logical
# request still completing through client retry.
execute_process(
    COMMAND ${BENCH} --stats-json ${stats} --clients 64 --requests 8
            --batch-max 512 --attempts 3 --min-speedup 2
            --min-hit-rate 0.5 --overload --require-shed
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve_load failed (${rc}) — client error, "
                        "speedup below 2x, cache hit rate below 0.5, "
                        "or overload phase did not shed/reap")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/check_stats_schema.py
            --schema ${TOOLS_DIR}/bench_serve_schema.json ${stats}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "BENCH_serve.json schema validation failed")
endif()

# Publish the validated artifact at the repo root so the checked-in
# benchmark record tracks the tested binary — release trees only;
# sanitized timings must not become the committed record.
if(DEFINED REPO_ROOT AND NOT SANITIZED)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E copy_if_different ${stats}
                ${REPO_ROOT}/BENCH_serve.json
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "could not copy BENCH_serve.json to "
                            "${REPO_ROOT}")
    endif()
endif()
