# ctest driver for the self-profiling runtime. Expects:
#   BENCH     path to the e2e_sweep binary
#   PYTHON    python3 interpreter
#   TOOLS_DIR repo tools/ directory (checkers)
#   WORK_DIR  scratch directory for the artifacts
#
# One instrumented multi-threaded run must produce, at once:
#  - a schema-valid call-tree whose root inclusive time covers >= 90%
#    of the measured wall time (the hot paths really are bracketed);
#  - a well-formed collapsed-stack file;
#  - a metrics timeseries with >= 2 samples (at 50 ms the ~1 s sweep
#    yields far more; 2 is the immediate-first + final-on-stop floor);
#  - per-worker executor counters in the stats JSON — which a default
#    (un-instrumented) run must NOT contain, or the byte-determinism
#    contract on default stats dumps would break.

set(dir ${WORK_DIR}/profile_e2e)
file(REMOVE_RECURSE ${dir})
file(MAKE_DIRECTORY ${dir})

execute_process(
    COMMAND ${BENCH} --threads 3 --reps 1
            --profile-json ${dir}/p.json
            --profile-collapsed ${dir}/p.collapsed
            --metrics-interval-ms 50 --metrics-out ${dir}/m.jsonl
            --stats-json ${dir}/s.json
    WORKING_DIRECTORY ${dir}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "instrumented e2e_sweep failed (${rc})")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/check_profile_schema.py
            --min-coverage 0.9 ${dir}/p.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "profile JSON failed schema/coverage check")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/check_profile_schema.py
            --collapsed ${dir}/p.collapsed
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "collapsed profile failed format check")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/check_profile_schema.py
            --metrics --min-samples 2 ${dir}/m.jsonl
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "metrics timeseries failed sample check")
endif()

# Per-worker counters present under instrumentation (slots 0..2 at
# --threads 3), and the task-latency histogram alongside them.
file(READ ${dir}/s.json stats_doc)
foreach(slot 0 1 2)
    foreach(field tasks steals steal_fails busy_ns idle_ns)
        if(NOT stats_doc MATCHES "\"worker${slot}\"")
            message(FATAL_ERROR "stats JSON lacks exec.worker${slot}")
        endif()
    endforeach()
endforeach()
if(NOT stats_doc MATCHES "task_latency_us")
    message(FATAL_ERROR "stats JSON lacks exec.task_latency_us")
endif()

# The counter-check above is only meaningful if a *default* run stays
# clean: wall-clock executor telemetry must never leak into the dumps
# the determinism harness byte-compares.
execute_process(
    COMMAND ${BENCH} --threads 3 --reps 1
            --stats-json ${dir}/s_default.json
    WORKING_DIRECTORY ${dir}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "default e2e_sweep failed (${rc})")
endif()
file(READ ${dir}/s_default.json default_doc)
if(default_doc MATCHES "\"exec\"")
    message(FATAL_ERROR "default stats JSON contains exec telemetry — "
                        "this breaks byte-determinism of default dumps")
endif()
