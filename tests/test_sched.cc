/**
 * @file
 * Tests for the GEMM layer parameterization (Table II), weight-stationary
 * tiling, and the performance simulator. The key cross-validation: the
 * analytic tiling timing equals the bit-level SystolicArray's measured
 * fold latency, and a full tiled GEMM on the cycle-level array takes
 * exactly the simulator's contention-free cycle count.
 */

#include <gtest/gtest.h>

#include "common/prng.h"
#include "arch/array.h"
#include "sched/simulator.h"
#include "sched/tiling.h"
#include "workloads/systems.h"

namespace usys {
namespace {

TEST(GemmLayer, ConvolutionShapes)
{
    const auto l = GemmLayer::conv("c", 31, 31, 96, 5, 5, 1, 256);
    EXPECT_EQ(l.oh(), 27);
    EXPECT_EQ(l.ow(), 27);
    EXPECT_EQ(l.m(), 729);
    EXPECT_EQ(l.k(), 2400);
    EXPECT_EQ(l.n(), 256);
    EXPECT_EQ(l.macs(), 729LL * 2400 * 256);
    EXPECT_EQ(l.ifmElems(), 31LL * 31 * 96);
    EXPECT_EQ(l.weightElems(), 2400LL * 256);
    EXPECT_EQ(l.ofmElems(), 729LL * 256);
}

TEST(GemmLayer, StridedConvolution)
{
    const auto l = GemmLayer::conv("c", 227, 227, 3, 11, 11, 4, 96);
    EXPECT_EQ(l.oh(), 55);
    EXPECT_EQ(l.ow(), 55);
}

TEST(GemmLayer, MatmulEncoding)
{
    const auto l = GemmLayer::matmul("m", 256, 512, 1024);
    EXPECT_EQ(l.m(), 256);
    EXPECT_EQ(l.k(), 512);
    EXPECT_EQ(l.n(), 1024);
    EXPECT_EQ(l.type, GemmType::MatMul);
    // Single-sample FC: M = 1.
    const auto fc = GemmLayer::matmul("fc", 1, 9216, 4096);
    EXPECT_EQ(fc.m(), 1);
    EXPECT_EQ(fc.k(), 9216);
}

TEST(Tiling, FoldCountsAndUtilization)
{
    ArrayConfig array{12, 14, {Scheme::BinaryParallel, 8, 0}, {}};
    const auto l = GemmLayer::matmul("m", 10, 24, 28);
    const auto t = tileLayer(array, l);
    EXPECT_EQ(t.folds_k, 2);
    EXPECT_EQ(t.folds_n, 2);
    EXPECT_EQ(t.folds, 4);
    EXPECT_DOUBLE_EQ(t.utilization, 1.0); // 24 = 2*12, 28 = 2*14

    const auto ragged = GemmLayer::matmul("r", 10, 13, 15);
    const auto tr = tileLayer(array, ragged);
    EXPECT_EQ(tr.folds, 4);
    EXPECT_LT(tr.utilization, 0.5);
}

TEST(Tiling, MatchesCycleLevelArray)
{
    // The tiling's per-fold latency must equal the bit-level simulator's
    // measured fold cycles for every scheme.
    for (Scheme scheme : {Scheme::BinaryParallel, Scheme::BinarySerial,
                          Scheme::USystolicRate, Scheme::UgemmHybrid}) {
        ArrayConfig array{4, 5, {scheme, 8, 0}, {}};
        const auto layer = GemmLayer::matmul("m", 6, 4, 5);
        const auto t = tileLayer(array, layer);

        Prng prng(9);
        Matrix<i32> a(6, 4), b(4, 5);
        for (auto &v : a.data())
            v = i32(prng.below(200)) - 100;
        for (auto &v : b.data())
            v = i32(prng.below(200)) - 100;
        const auto run = SystolicGemm(array).run(a, b);
        EXPECT_EQ(run.cycles, t.compute_cycles) << schemeTag(scheme);
        EXPECT_EQ(u64(t.folds), run.folds);
    }
}

TEST(Tiling, TiledGemmMatchesSimulatorCycles)
{
    ArrayConfig array{4, 4, {Scheme::USystolicRate, 8, 6}, {}};
    const auto layer = GemmLayer::matmul("m", 5, 9, 7); // ragged tiles
    const auto t = tileLayer(array, layer);

    Prng prng(11);
    Matrix<i32> a(5, 9), b(9, 7);
    for (auto &v : a.data())
        v = i32(prng.below(200)) - 100;
    for (auto &v : b.data())
        v = i32(prng.below(200)) - 100;
    const auto run = SystolicGemm(array).run(a, b);
    EXPECT_EQ(run.cycles, t.compute_cycles);
}

TEST(Tiling, PipelinedPreloadSavesAtMostFoldsTimesRows)
{
    ArrayConfig array{12, 14, {Scheme::BinaryParallel, 8, 0}, {}};
    const auto layer = GemmLayer::conv("c", 31, 31, 96, 5, 5, 1, 256);
    const auto t = tileLayer(array, layer);
    EXPECT_EQ(t.compute_cycles - t.pipelined_compute_cycles,
              u64(t.folds - 1) * 12);
    EXPECT_LT(t.pipelined_compute_cycles, t.compute_cycles);
    // The relative saving shrinks as MAC cycles grow.
    ArrayConfig unary{12, 14, {Scheme::USystolicRate, 8, 6}, {}};
    const auto tu = tileLayer(unary, layer);
    const double bin_save = 1.0 - double(t.pipelined_compute_cycles) /
                                      double(t.compute_cycles);
    const double una_save = 1.0 -
                            double(tu.pipelined_compute_cycles) /
                                double(tu.compute_cycles);
    EXPECT_GT(bin_save, 5.0 * una_save);
}

TEST(Simulator, UnaryCrawlsDramBandwidth)
{
    const auto layer = GemmLayer::conv("c", 31, 31, 96, 5, 5, 1, 256);
    const auto bp = simulateLayer(
        edgeSystem({Scheme::BinaryParallel, 8, 0}, false), layer);
    const auto ur = simulateLayer(
        edgeSystem({Scheme::USystolicRate, 8, 8}, false), layer);
    // Byte-crawling: two orders of magnitude lower DRAM bandwidth.
    EXPECT_LT(ur.dram_bw_gbps * 50.0, bp.dram_bw_gbps);
    EXPECT_LT(ur.dram_bw_gbps, 0.5);
}

TEST(Simulator, EarlyTerminationScalesRuntime)
{
    const auto layer = GemmLayer::conv("c", 15, 15, 256, 3, 3, 1, 384);
    double prev = 0.0;
    for (int ebt : {6, 7, 8}) {
        const auto stats = simulateLayer(
            edgeSystem({Scheme::USystolicRate, 8, ebt}, false), layer);
        EXPECT_GT(stats.runtime_s, prev * 1.8) << "ebt " << ebt;
        prev = stats.runtime_s;
    }
}

TEST(Simulator, SramRemovalShiftsTrafficToDram)
{
    const auto layer = GemmLayer::conv("c", 31, 31, 96, 5, 5, 1, 256);
    const KernelConfig kern{Scheme::BinaryParallel, 8, 0};
    const auto with = simulateLayer(edgeSystem(kern, true), layer);
    const auto without = simulateLayer(edgeSystem(kern, false), layer);
    EXPECT_GT(with.sram_total_bytes, 0u);
    EXPECT_EQ(without.sram_total_bytes, 0u);
    EXPECT_GT(without.dram_total_bytes, 4 * with.dram_total_bytes);
}

TEST(Simulator, OverheadNonNegativeAndBounded)
{
    for (bool edge : {true, false}) {
        for (const auto &scheme :
             {Scheme::BinaryParallel, Scheme::USystolicRate}) {
            const auto layer =
                GemmLayer::conv("c", 15, 15, 256, 3, 3, 1, 384);
            const auto stats = simulateLayer(
                edge ? edgeSystem({scheme, 8, 0}, true)
                     : cloudSystem({scheme, 8, 0}, true),
                layer);
            EXPECT_GE(stats.overhead_pct, -1e-9);
            EXPECT_EQ(stats.total_cycles >= stats.compute_cycles, true);
        }
    }
}

TEST(Simulator, CloudContentionHitsBinaryHardest)
{
    const auto layer = GemmLayer::conv("c", 15, 15, 256, 3, 3, 1, 384);
    const auto bp = simulateLayer(
        cloudSystem({Scheme::BinaryParallel, 8, 0}, true), layer);
    const auto ur = simulateLayer(
        cloudSystem({Scheme::USystolicRate, 8, 6}, false), layer);
    EXPECT_GT(bp.overhead_pct, 50.0);
    EXPECT_LT(ur.overhead_pct, bp.overhead_pct / 2.0);
}

TEST(Simulator, OutputBytesReflectReducedResolution)
{
    SystemConfig bin = edgeSystem({Scheme::BinaryParallel, 8, 0}, true);
    SystemConfig una = edgeSystem({Scheme::USystolicRate, 8, 0}, false);
    EXPECT_EQ(bin.outBytes(), 2);
    EXPECT_EQ(una.outBytes(), 1); // Section III-A
    SystemConfig b16 = edgeSystem({Scheme::BinaryParallel, 16, 0}, true);
    EXPECT_EQ(b16.elemBytes(), 2);
    EXPECT_EQ(b16.outBytes(), 4);
}

TEST(Simulator, SixteenBitDoublesSram)
{
    const auto s8 = edgeSystem({Scheme::BinaryParallel, 8, 0}, true);
    const auto s16 = edgeSystem({Scheme::BinaryParallel, 16, 0}, true);
    EXPECT_EQ(s16.sram.bytes, 2 * s8.sram.bytes);
}

/** Property sweep: runtime ordering by MAC cycles holds on all layers. */
class RuntimeOrdering : public ::testing::TestWithParam<int>
{};

TEST_P(RuntimeOrdering, MoreMacCyclesNeverFaster)
{
    const int idx = GetParam();
    const std::vector<GemmLayer> layers = {
        GemmLayer::conv("a", 227, 227, 3, 11, 11, 4, 96),
        GemmLayer::conv("b", 15, 15, 384, 3, 3, 1, 384),
        GemmLayer::matmul("c", 1, 4096, 4096),
        GemmLayer::matmul("d", 256, 512, 512),
    };
    const auto &layer = layers[idx];
    Cycles prev = 0;
    for (int ebt : {6, 7, 8}) {
        const auto stats = simulateLayer(
            edgeSystem({Scheme::USystolicRate, 8, ebt}, false), layer);
        EXPECT_GT(stats.compute_cycles, prev);
        prev = stats.compute_cycles;
    }
}

INSTANTIATE_TEST_SUITE_P(Layers, RuntimeOrdering, ::testing::Range(0, 4));

} // namespace
} // namespace usys
