/**
 * @file
 * Tests of the observability stack: the stats registry (registration,
 * deterministic dumps, histogram bucketing), the JSON writer, and the
 * Chrome-trace event emitter.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <csignal>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/event_trace.h"
#include "common/json.h"
#include "common/stats_registry.h"

using namespace usys;

namespace {

/**
 * Tiny recursive-descent JSON syntax checker — enough to assert that
 * the emitted artifacts are well-formed without a JSON library.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    const std::string &s_;
    std::size_t pos_ = 0;

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
    bool eat(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }
    void skipWs()
    {
        while (pos_ < s_.size() && std::isspace(u8(s_[pos_])))
            ++pos_;
    }
    static unsigned char u8(char c) { return (unsigned char)(c); }

    bool value()
    {
        skipWs();
        switch (peek()) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    bool literal(const char *word)
    {
        for (const char *p = word; *p; ++p)
            if (!eat(*p))
                return false;
        return true;
    }

    bool number()
    {
        const std::size_t start = pos_;
        eat('-');
        while (std::isdigit(u8(peek())))
            ++pos_;
        if (eat('.'))
            while (std::isdigit(u8(peek())))
                ++pos_;
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(u8(peek())))
                ++pos_;
        }
        return pos_ > start && std::isdigit(u8(s_[pos_ - 1]));
    }

    bool string()
    {
        if (!eat('"'))
            return false;
        while (peek() != '"') {
            if (pos_ >= s_.size())
                return false;
            if (eat('\\')) {
                if (pos_ >= s_.size())
                    return false;
                ++pos_;
            } else {
                ++pos_;
            }
        }
        return eat('"');
    }

    bool object()
    {
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return true;
        do {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            if (!value())
                return false;
            skipWs();
        } while (eat(','));
        return eat('}');
    }

    bool array()
    {
        if (!eat('['))
            return false;
        skipWs();
        if (eat(']'))
            return true;
        do {
            if (!value())
                return false;
            skipWs();
        } while (eat(','));
        return eat(']');
    }
};

} // namespace

TEST(JsonWriter, EscapesAndNumbers)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    EXPECT_EQ(jsonNumber(3.0), "3");
    EXPECT_EQ(jsonNumber(-17.0), "-17");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(jsonNumber(0.0 / 0.0), "null"); // NaN is not valid JSON

    JsonWriter w;
    w.beginObject();
    w.field("name", "u\"sys");
    w.beginArray("xs");
    w.value(1.0);
    w.value(true);
    w.endArray();
    w.endObject();
    const std::string out = w.str();
    EXPECT_TRUE(JsonChecker(out).valid()) << out;
    EXPECT_NE(out.find("\"u\\\"sys\""), std::string::npos);
}

TEST(StatsRegistry, RegistrationIsIdempotent)
{
    StatsRegistry reg;
    Counter &a = reg.counter("sim.x.count", "events");
    a += 3;
    Counter &b = reg.counter("sim.x.count");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(reg.size(), 1u);

    reg.scalar("sim.x.rate").set(2.5);
    EXPECT_EQ(reg.size(), 2u);
    ASSERT_NE(reg.find("sim.x.rate"), nullptr);
    EXPECT_EQ(reg.find("sim.x.rate")->kind(), Stat::Kind::Scalar);
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(StatsRegistryDeathTest, KindMismatchAndHierarchyConflictFatal)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    StatsRegistry reg;
    reg.counter("a.b");
    // Same name, different kind.
    EXPECT_EXIT(reg.scalar("a.b"), testing::ExitedWithCode(1), "kind");
    // Leaf "a.b" forbids the group "a.b.*"...
    EXPECT_EXIT(reg.counter("a.b.c"), testing::ExitedWithCode(1), "");
    // ...and the group "a" forbids a leaf "a".
    EXPECT_EXIT(reg.counter("a"), testing::ExitedWithCode(1), "");
}

TEST(StatsRegistry, ResetKeepsRegistrations)
{
    StatsRegistry reg;
    reg.counter("c") += 7;
    reg.scalar("s").set(1.5);
    reg.reset();
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_EQ(reg.scalar("s").value(), 0.0);
    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
}

TEST(StatsRegistry, DumpsAreDeterministic)
{
    StatsRegistry reg;
    // Register in non-sorted order; dumps must sort.
    reg.counter("z.last", "z") += 1;
    reg.scalar("a.first", "a").set(0.25);
    reg.counter("m.mid.deep", "m") += 2;
    reg.formula("m.mid.twice", [&reg] {
        return 2.0 * double(reg.counter("m.mid.deep").value());
    });

    const std::string t1 = reg.dumpText();
    const std::string t2 = reg.dumpText();
    EXPECT_EQ(t1, t2);
    EXPECT_LT(t1.find("a.first"), t1.find("m.mid.deep"));
    EXPECT_LT(t1.find("m.mid.deep"), t1.find("z.last"));

    const std::string j1 = reg.json();
    const std::string j2 = reg.json();
    EXPECT_EQ(j1, j2);
    EXPECT_TRUE(JsonChecker(j1).valid()) << j1;
    // The nested structure follows the dots.
    EXPECT_NE(j1.find("\"mid\""), std::string::npos);
    EXPECT_NE(j1.find("\"twice\": 4"), std::string::npos);
}

TEST(StatsRegistry, HistogramBucketing)
{
    StatsRegistry reg;
    Histogram &h =
        reg.histogram("h", 0.0, 10.0, 5, "test histogram"); // width 2
    h.add(-1.0);      // underflow
    h.add(0.0);       // bucket 0
    h.add(1.999);     // bucket 0
    h.add(2.0);       // bucket 1
    h.add(9.999);     // bucket 4
    h.add(10.0);      // hi is exclusive -> overflow
    h.add(42.0, 2);   // overflow, weighted

    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.overflow(), 3u);
    EXPECT_EQ(h.count(), 8u);
    EXPECT_DOUBLE_EQ(h.bucketLo(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(1), 4.0);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), 42.0);

    // The JSON rendering of a histogram is an object, still valid JSON.
    const std::string j = reg.json();
    EXPECT_TRUE(JsonChecker(j).valid()) << j;
    EXPECT_NE(j.find("\"buckets\""), std::string::npos);
}

TEST(StatsRegistry, HistogramMergeIsOrderInvariant)
{
    // Three shards with disjoint value ranges, as parallel sections
    // produce. Folding them in any order must yield the same histogram
    // (bucket counts exactly; moments up to the fp rounding the merge
    // documents, far below these tolerances).
    auto make_shard = [](double base) {
        Histogram h("shard", "merge shard", 0.0, 30.0, 6);
        for (int k = 0; k < 5; ++k)
            h.add(base + k);
        h.add(-1.0);  // underflow
        h.add(100.0); // overflow
        return h;
    };
    const Histogram s1 = make_shard(0.0);
    const Histogram s2 = make_shard(10.0);
    const Histogram s3 = make_shard(20.0);

    Histogram fwd("fwd", "1-2-3", 0.0, 30.0, 6);
    fwd.merge(s1);
    fwd.merge(s2);
    fwd.merge(s3);
    Histogram rev("rev", "3-1-2", 0.0, 30.0, 6);
    rev.merge(s3);
    rev.merge(s1);
    rev.merge(s2);

    EXPECT_EQ(fwd.count(), 21u);
    EXPECT_EQ(fwd.count(), rev.count());
    EXPECT_EQ(fwd.underflow(), rev.underflow());
    EXPECT_EQ(fwd.overflow(), rev.overflow());
    for (int b = 0; b < 6; ++b)
        EXPECT_EQ(fwd.bucketCount(b), rev.bucketCount(b)) << b;
    EXPECT_DOUBLE_EQ(fwd.min(), rev.min());
    EXPECT_DOUBLE_EQ(fwd.max(), rev.max());
    EXPECT_NEAR(fwd.sum(), rev.sum(), 1e-9);
    EXPECT_NEAR(fwd.mean(), rev.mean(), 1e-9);

    // And merging equals having added every sample directly.
    Histogram direct("direct", "all samples", 0.0, 30.0, 6);
    for (double base : {0.0, 10.0, 20.0}) {
        for (int k = 0; k < 5; ++k)
            direct.add(base + k);
        direct.add(-1.0);
        direct.add(100.0);
    }
    EXPECT_EQ(direct.count(), fwd.count());
    for (int b = 0; b < 6; ++b)
        EXPECT_EQ(direct.bucketCount(b), fwd.bucketCount(b)) << b;
    EXPECT_NEAR(direct.mean(), fwd.mean(), 1e-9);
}

TEST(StatsRegistryDeathTest, HistogramMergeShapeMismatchFatal)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    Histogram dst("dst", "target", 0.0, 10.0, 5);
    const Histogram bounds("b", "other bounds", 0.0, 20.0, 5);
    const Histogram buckets("b", "other buckets", 0.0, 10.0, 10);
    EXPECT_EXIT(dst.merge(bounds), testing::KilledBySignal(SIGABRT),
                "shape mismatch");
    EXPECT_EXIT(dst.merge(buckets), testing::KilledBySignal(SIGABRT),
                "shape mismatch");
}

TEST(StatsRegistry, SampleNumericFlattensLiveValues)
{
    StatsRegistry reg;
    reg.counter("s.events") += 5;
    reg.scalar("s.rate").set(2.5);
    Histogram &h = reg.histogram("s.lat", 0.0, 10.0, 5, "latency");
    h.add(1.0);
    h.add(3.0);
    reg.formula("s.twice",
                [] { return 4.0; }); // formulas are skipped (see impl)

    std::vector<std::pair<std::string, double>> seen;
    reg.sampleNumeric([&](const std::string &name, double value) {
        seen.emplace_back(name, value);
    });

    auto value_of = [&](const std::string &name) -> const double * {
        for (const auto &kv : seen)
            if (kv.first == name)
                return &kv.second;
        return nullptr;
    };
    ASSERT_NE(value_of("s.events"), nullptr);
    EXPECT_EQ(*value_of("s.events"), 5.0);
    ASSERT_NE(value_of("s.rate"), nullptr);
    EXPECT_EQ(*value_of("s.rate"), 2.5);
    ASSERT_NE(value_of("s.lat.count"), nullptr);
    EXPECT_EQ(*value_of("s.lat.count"), 2.0);
    ASSERT_NE(value_of("s.lat.sum"), nullptr);
    EXPECT_EQ(*value_of("s.lat.sum"), 4.0);
    EXPECT_EQ(value_of("s.twice"), nullptr);
}

TEST(StatsRegistry, SanitizeStatName)
{
    EXPECT_EQ(sanitizeStatName("UR-8b(ebt6)"), "ur-8b_ebt6");
    EXPECT_EQ(sanitizeStatName("Binary Parallel"), "binary_parallel");
    EXPECT_EQ(sanitizeStatName("a..b"), "a_b");
}

TEST(StatsRegistry, WriteJsonFileRoundTrip)
{
    StatsRegistry reg;
    reg.counter("sim.layer0.compute_cycles") += 123;
    reg.scalar("sim.layer0.dram_energy_pj").set(4.5e6);

    const std::string path =
        testing::TempDir() + "/usys_stats_roundtrip.json";
    ASSERT_TRUE(reg.writeJsonFile(path, "unit_test"));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find("\"bench\": \"unit_test\""), std::string::npos);
    EXPECT_NE(text.find("\"schema_version\": 1"), std::string::npos);
    EXPECT_NE(text.find("\"compute_cycles\": 123"), std::string::npos);
}

TEST(EventTrace, GoldenChromeTraceJson)
{
    EventTrace trace;
    trace.setEnabled(true);
    const int tid = trace.track("sim bp");
    EXPECT_EQ(trace.cursor(tid), 0.0);
    EXPECT_EQ(trace.advance(tid, 5.0), 0.0);
    trace.complete(tid, "layer0", "layer", 0.0, 5.0,
                   {{"cycles", 2000.0}});
    trace.instant(tid, "marker", "layer", 5.0);
    trace.counter(tid, "dram_bw", 2.5, 1.25);
    EXPECT_EQ(trace.cursor(tid), 5.0);

    const std::string json = trace.json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    // Chrome Trace Event Format essentials.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    // thread_name metadata labels the track in Perfetto.
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("sim bp"), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 5"), std::string::npos);
    // args bodies are pre-encoded compactly (no space after the colon).
    EXPECT_NE(json.find("\"cycles\":2000"), std::string::npos);

    // Serialization is deterministic.
    EXPECT_EQ(json, trace.json());
    // Metadata is synthesized at json() time, not buffered.
    EXPECT_EQ(trace.eventCount(), 3u); // X + i + C

    trace.clear();
    EXPECT_EQ(trace.eventCount(), 0u);
    EXPECT_EQ(trace.cursor(trace.track("sim bp")), 0.0);
}

TEST(EventTrace, DisabledTraceIsANoOp)
{
    EventTrace trace;
    const int tid = trace.track("t");
    trace.complete(tid, "x", "c", 0.0, 1.0);
    trace.instant(tid, "y", "c", 1.0);
    EXPECT_EQ(trace.eventCount(), 0u);
    EXPECT_EQ(trace.dropped(), 0u);
}
