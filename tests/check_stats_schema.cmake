# ctest driver for the observability artifacts. Expects:
#   BENCH     path to the headline_summary binary
#   PYTHON    python3 interpreter
#   TOOLS_DIR repo tools/ directory (schema + checker)
#   WORK_DIR  scratch directory for the artifacts

set(stats1 ${WORK_DIR}/headline.stats.json)
set(stats2 ${WORK_DIR}/headline.stats2.json)
set(trace ${WORK_DIR}/headline.trace.json)

execute_process(
    COMMAND ${BENCH} --stats-json ${stats1} --trace-out ${trace}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "headline_summary run 1 failed (${rc})")
endif()

execute_process(
    COMMAND ${BENCH} --stats-json ${stats2}
    RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "headline_summary run 2 failed (${rc})")
endif()

# Stats dumps must be byte-identical across runs (no wall-clock leaks).
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${stats1} ${stats2}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "stats JSON differs between runs (${stats1} vs "
                        "${stats2}) — non-deterministic stats")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/check_stats_schema.py
            --schema ${TOOLS_DIR}/stats_schema.json ${stats1}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "stats schema validation failed")
endif()

execute_process(
    COMMAND ${PYTHON} ${TOOLS_DIR}/check_stats_schema.py --trace ${trace}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace validation failed")
endif()
