/**
 * @file
 * Tests for the fully-streaming unary GEMM model: unbiasedness, the
 * fan-in-driven accuracy loss of unary-domain accumulation relative to
 * uSystolic's binary accumulation (Table I accuracy column), and input
 * validation.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/fixed_point.h"
#include "common/prng.h"
#include "common/stats.h"
#include "arch/fsu_gemm.h"
#include "arch/functional.h"

namespace usys {
namespace {

Matrix<i32>
randomMatrix(int rows, int cols, int bits, Prng &prng)
{
    const i32 max_mag = maxMagnitude(bits);
    Matrix<i32> m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    return m;
}

double
nrmseOf(const Matrix<double> &got, const Matrix<i64> &exact,
        double scale)
{
    RmseTracker rmse;
    for (int m = 0; m < exact.rows(); ++m)
        for (int n = 0; n < exact.cols(); ++n)
            rmse.add(double(exact(m, n)), got(m, n) * scale);
    return rmse.normalizedRmse();
}

TEST(FsuGemm, RoughlyUnbiasedAtSmallFanIn)
{
    Prng prng(19);
    const int bits = 7;
    auto a = randomMatrix(6, 4, bits, prng);
    auto b = randomMatrix(4, 6, bits, prng);
    const auto exact = referenceGemm(a, b);
    FsuGemmExecutor fsu(bits);
    const auto got = fsu.run(a, b);

    OnlineStats err;
    for (int m = 0; m < 6; ++m)
        for (int n = 0; n < 6; ++n)
            err.add(got(m, n) * fsu.resultScale() - double(exact(m, n)));
    // The estimator is noisy but centered: mean error well below the
    // error spread.
    EXPECT_LT(std::abs(err.mean()), err.stddev() + 200.0);
}

TEST(FsuGemm, BinaryAccumulationBeatsUnaryDomain)
{
    // uSystolic (binary accumulation) vs FSU (scaled-adder accumulation)
    // on identical operands: the HUB design must be far more accurate.
    Prng prng(23);
    const int bits = 8;
    auto a = randomMatrix(8, 24, bits, prng);
    auto b = randomMatrix(24, 8, bits, prng);
    const auto exact = referenceGemm(a, b);

    FsuGemmExecutor fsu(bits);
    const double fsu_err =
        nrmseOf(fsu.run(a, b), exact, fsu.resultScale());

    GemmExecutor hub({Scheme::USystolicRate, bits, 0});
    const auto acc = hub.run(a, b);
    RmseTracker hub_rmse;
    for (int m = 0; m < 8; ++m)
        for (int n = 0; n < 8; ++n)
            hub_rmse.add(double(exact(m, n)),
                         double(acc(m, n)) * hub.resultScale());

    EXPECT_GT(fsu_err, 5.0 * hub_rmse.normalizedRmse());
}

TEST(FsuGemm, ErrorGrowsWithReductionDim)
{
    Prng prng(29);
    const int bits = 7;
    auto err_at = [&](int k) {
        auto a = randomMatrix(6, k, bits, prng);
        auto b = randomMatrix(k, 6, bits, prng);
        const auto exact = referenceGemm(a, b);
        FsuGemmExecutor fsu(bits);
        return nrmseOf(fsu.run(a, b), exact, fsu.resultScale());
    };
    // Averaged over a few draws to damp noise.
    double small = 0, large = 0;
    for (int t = 0; t < 3; ++t) {
        small += err_at(4);
        large += err_at(32);
    }
    EXPECT_GT(large, small);
}

TEST(FsuGemm, RejectsUnsupportedWidths)
{
    EXPECT_EXIT(FsuGemmExecutor(16), ::testing::ExitedWithCode(1),
                "bits out of range");
}

} // namespace
} // namespace usys
