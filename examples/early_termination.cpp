/**
 * @file
 * Dynamic accuracy-energy trade-off via early termination (Sections
 * II-B3, III-C, V-H): profile the GEMM error of every termination point,
 * let the policy pick the cheapest EBT meeting an error budget, and show
 * the resulting energy/runtime on an AlexNet layer — the "battery is
 * running out" scenario of the system-level discussion.
 */

#include <cstdio>

#include "common/table.h"
#include "arch/early_termination.h"
#include "dnn/data.h"
#include "dnn/models.h"
#include "dnn/train.h"
#include "hw/energy.h"
#include "workloads/alexnet.h"
#include "workloads/systems.h"

using namespace usys;

int
main()
{
    const int bits = 8;
    const GemmLayer layer = alexnetLayers()[2]; // Conv3

    std::printf("early-termination profile (8-bit data, K = %lld):\n",
                (long long)layer.k());
    TablePrinter profile({"EBT", "mul cycles", "normalized RMSE",
                          "runtime ms", "on-chip uJ"});
    for (const auto &point :
         profileEarlyTermination(bits, int(layer.k()))) {
        const KernelConfig kern{Scheme::USystolicRate, bits, point.ebt};
        const SystemConfig sys = edgeSystem(kern, false);
        const auto stats = simulateLayer(sys, layer);
        const auto energy = layerEnergy(sys, stats);
        profile.addRow({std::to_string(point.ebt),
                        std::to_string(point.mul_cycles),
                        TablePrinter::num(point.nrmse, 4),
                        TablePrinter::num(stats.runtime_s * 1e3, 2),
                        TablePrinter::num(energy.onchip_uj(), 1)});
    }
    profile.print();

    for (double tol : {0.02, 0.05, 0.10}) {
        const int ebt = chooseEbt(bits, int(layer.k()), tol);
        std::printf("error budget %.2f -> EBT %d (%u MAC cycles)\n", tol,
                    ebt, KernelConfig{Scheme::USystolicRate, bits, ebt}
                             .macCycles());
    }

    // Mixed-precision schedule: the ISA's per-layer MAC-cycle field lets
    // every GEMM run at its own EBT. Pick each layer's EBT from the
    // policy (K-dependent) and compare against uniform schedules on a
    // trained CNN.
    std::printf("\nmixed per-layer EBT schedule on the 4-layer CNN:\n");
    auto train = makeDigits(1500, 42);
    auto test = makeDigits(300, 43);
    auto model = buildCnn4(train.classes, 7);
    TrainOpts opts;
    opts.epochs = 6;
    trainClassifier(*model, train, opts);

    // GEMM sublayers of buildCnn4: conv(K=9), conv(K=72), fc(K=256),
    // fc(K=48); all other sublayers ignore the numeric mode.
    const int gemm_k[] = {9, 72, 256, 48};
    std::vector<NumericConfig> mixed(model->layerCount(),
                                     {NumericMode::UnaryRate, 8});
    int gemm_idx = 0;
    const std::size_t gemm_slots[] = {0, 3, 6, 8};
    for (std::size_t slot : gemm_slots) {
        const int ebt = chooseEbt(bits, gemm_k[gemm_idx], 0.035);
        mixed[slot] = {NumericMode::UnaryRate, ebt};
        std::printf("  sublayer %zu (K=%d): EBT %d\n", slot,
                    gemm_k[gemm_idx], ebt);
        ++gemm_idx;
    }

    auto accuracy_under = [&](const std::vector<NumericConfig> &cfgs) {
        std::size_t correct = 0;
        for (std::size_t start = 0; start < test.count(); start += 64) {
            const std::size_t n = std::min<std::size_t>(
                64, test.count() - start);
            Tensor x = test.batch(start, n);
            const auto preds =
                argmaxLogits(model->forwardMixed(x, cfgs));
            for (std::size_t i = 0; i < n; ++i)
                if (preds[i] == test.labels[start + i])
                    ++correct;
        }
        return double(correct) / double(test.count());
    };

    const std::vector<NumericConfig> uniform6(
        model->layerCount(), {NumericMode::UnaryRate, 6});
    const std::vector<NumericConfig> uniform8(
        model->layerCount(), {NumericMode::UnaryRate, 8});
    std::printf("  uniform EBT 6: %.1f%%   uniform EBT 8: %.1f%%   "
                "mixed: %.1f%%\n",
                100 * accuracy_under(uniform6),
                100 * accuracy_under(uniform8),
                100 * accuracy_under(mixed));

    std::printf("\ntemporal coding cannot early-terminate: truncating the "
                "tail-coded stream zeroes small values (Section II-B3).\n");
    return 0;
}
