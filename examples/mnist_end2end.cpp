/**
 * @file
 * End-to-end DNN example: train the 4-layer CNN on the procedural digit
 * set in FP32, then deploy it on the uSystolic datapath at several
 * effective bitwidths, reporting the accuracy-vs-cycles trade-off the
 * paper's Figure 9 curves are built from.
 */

#include <cstdio>

#include "common/table.h"
#include "dnn/data.h"
#include "dnn/models.h"
#include "dnn/train.h"

using namespace usys;

int
main()
{
    auto train = makeDigits(2000, 42);
    auto test = makeDigits(300, 43);

    std::printf("training 4-layer CNN on %zu synthetic digit images...\n",
                train.count());
    auto model = buildCnn4(train.classes, 7);
    TrainOpts opts;
    opts.epochs = 6;
    opts.verbose = true;
    trainClassifier(*model, train, opts);

    const double fp32 =
        evaluateAccuracy(*model, test, {NumericMode::Fp32, 8});
    std::printf("FP32 top-1 accuracy: %.1f%%\n\n", 100 * fp32);

    TablePrinter table({"deployment", "mul cycles", "top-1 %"});
    for (int ebt : {6, 7, 8, 10}) {
        const double acc = evaluateAccuracy(
            *model, test, {NumericMode::UnaryRate, ebt});
        table.addRow({"uSystolic rate EBT " + std::to_string(ebt),
                      std::to_string(1 << (ebt - 1)),
                      TablePrinter::num(100 * acc, 1)});
    }
    const double temporal = evaluateAccuracy(
        *model, test, {NumericMode::UnaryTemporal, 8});
    table.addRow({"uSystolic temporal (8b)", "128",
                  TablePrinter::num(100 * temporal, 1)});
    table.print();
    return 0;
}
