/**
 * @file
 * End-to-end edge-deployment study: 8-bit AlexNet on the Eyeriss-shaped
 * 12x14 array, comparing binary-parallel-with-SRAM against rate-coded
 * uSystolic without SRAM — the paper's headline scenario — including the
 * ISA program each layer lowers to.
 */

#include <cstdio>

#include "common/table.h"
#include "eval/network.h"
#include "hw/energy.h"
#include "isa/isa.h"
#include "workloads/alexnet.h"
#include "workloads/systems.h"

using namespace usys;

int
main()
{
    const KernelConfig binary{Scheme::BinaryParallel, 8, 0};
    const KernelConfig unary{Scheme::USystolicRate, 8, 6}; // Unary-32c
    const SystemConfig bp = edgeSystem(binary, true);
    const SystemConfig ur = edgeSystem(unary, false);

    std::printf("AlexNet on the edge: %s+SRAM vs %s (no SRAM)\n",
                binary.name().c_str(), unary.name().c_str());
    std::printf("on-chip area: %.3f mm2 vs %.3f mm2 (%.1f%% smaller)\n\n",
                onchipAreaMm2(bp), onchipAreaMm2(ur),
                100.0 * (1.0 - onchipAreaMm2(ur) / onchipAreaMm2(bp)));

    TablePrinter table({"layer", "BP ms", "UR ms", "BP dram GB/s",
                        "UR dram GB/s", "BP on-chip uJ", "UR on-chip uJ",
                        "energy red %", "insns"});
    double bp_e = 0, ur_e = 0, bp_t = 0, ur_t = 0;
    for (const auto &layer : alexnetLayers()) {
        const auto bp_stats = simulateLayer(bp, layer);
        const auto ur_stats = simulateLayer(ur, layer);
        const auto bp_energy = layerEnergy(bp, bp_stats);
        const auto ur_energy = layerEnergy(ur, ur_stats);
        const auto program = buildProgram(ur.array, layer);
        const auto isa_stats = interpretProgram(program);
        panicIf(isa_stats.cycles != ur_stats.compute_cycles,
                "ISA interpreter disagrees with the simulator");

        bp_e += bp_energy.onchip_uj();
        ur_e += ur_energy.onchip_uj();
        bp_t += bp_stats.runtime_s;
        ur_t += ur_stats.runtime_s;
        table.addRow(
            {layer.name, TablePrinter::num(bp_stats.runtime_s * 1e3, 2),
             TablePrinter::num(ur_stats.runtime_s * 1e3, 2),
             TablePrinter::num(bp_stats.dram_bw_gbps, 3),
             TablePrinter::num(ur_stats.dram_bw_gbps, 3),
             TablePrinter::num(bp_energy.onchip_uj(), 1),
             TablePrinter::num(ur_energy.onchip_uj(), 1),
             TablePrinter::num(100.0 * (1.0 - ur_energy.onchip_uj() /
                                                  bp_energy.onchip_uj()),
                               1),
             std::to_string(program.size())});
    }
    table.print();

    std::printf("\nnetwork totals: runtime %.1f ms -> %.1f ms (%.0fx "
                "slower); on-chip energy %.0f uJ -> %.0f uJ (%.1f%% "
                "less); on-chip power %.1f mW -> %.2f mW\n",
                bp_t * 1e3, ur_t * 1e3, ur_t / bp_t, bp_e, ur_e,
                100.0 * (1.0 - ur_e / bp_e), bp_e * 1e-3 / bp_t,
                ur_e * 1e-3 / ur_t);

    // Chained network simulation: inter-layer activations stay in the
    // binary design's SRAM but round-trip DRAM once it is eliminated.
    const auto bp_net = simulateNetwork(bp, alexnetLayers());
    const auto ur_net = simulateNetwork(ur, alexnetLayers());
    std::printf("chained inference (inter-layer traffic accounted): "
                "BP keeps %.2f MB of activations on-chip; uSystolic "
                "total energy %.1f mJ vs BP %.1f mJ (DRAM dominates: "
                "%.0f%% of uSystolic total)\n",
                double(bp_net.interlayer_saved_bytes) / 1e6,
                ur_net.total_uj() * 1e-3, bp_net.total_uj() * 1e-3,
                100.0 * ur_net.dram_uj / ur_net.total_uj());
    return 0;
}
