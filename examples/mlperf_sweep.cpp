/**
 * @file
 * Generalizability sweep (the Table I claim): run the MLPerf-like suite's
 * diverse GEMM shapes through one fixed uSystolic instance and report
 * per-model utilization, runtime, and on-chip energy versus the binary
 * parallel baseline. One hardware instance serves every model — the
 * property FSU architectures lack.
 */

#include <cstdio>

#include "common/table.h"
#include "hw/energy.h"
#include "workloads/mlperf.h"
#include "workloads/systems.h"

using namespace usys;

int
main()
{
    const SystemConfig bp =
        edgeSystem({Scheme::BinaryParallel, 8, 0}, true);
    const SystemConfig ur =
        edgeSystem({Scheme::USystolicRate, 8, 6}, false);

    TablePrinter table({"model", "GEMM layers", "util %", "BP ms",
                        "UR ms", "BP on-chip mJ", "UR on-chip mJ",
                        "energy red %"});
    std::size_t total_layers = 0;
    for (const auto &model : mlperfSuite()) {
        double util = 0, bp_t = 0, ur_t = 0, bp_e = 0, ur_e = 0;
        for (const auto &layer : model.layers) {
            const auto bp_stats = simulateLayer(bp, layer);
            const auto ur_stats = simulateLayer(ur, layer);
            util += ur_stats.tiling.utilization;
            bp_t += bp_stats.runtime_s;
            ur_t += ur_stats.runtime_s;
            bp_e += layerEnergy(bp, bp_stats).onchip_uj();
            ur_e += layerEnergy(ur, ur_stats).onchip_uj();
        }
        total_layers += model.layers.size();
        table.addRow({model.name, std::to_string(model.layers.size()),
                      TablePrinter::num(100 * util /
                                            double(model.layers.size()),
                                        1),
                      TablePrinter::num(bp_t * 1e3, 1),
                      TablePrinter::num(ur_t * 1e3, 1),
                      TablePrinter::num(bp_e * 1e-3, 2),
                      TablePrinter::num(ur_e * 1e-3, 2),
                      TablePrinter::num(100 * (1 - ur_e / bp_e), 1)});
    }
    table.print();
    std::printf("\n%zu GEMM layers, all mapped on ONE uSystolic instance "
                "with the legacy-binary schedule (paper suite: 1094 "
                "layers).\n", total_layers);
    return 0;
}
