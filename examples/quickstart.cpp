/**
 * @file
 * Quickstart: run one GEMM through the bit-level uSystolic array and
 * compare the five computing schemes against the exact result.
 *
 * Demonstrates the core public API: KernelConfig / ArrayConfig describe a
 * design point, SystolicGemm executes a tiled GEMM cycle-accurately, and
 * GemmExecutor is the fast functional equivalent.
 */

#include <cstdio>

#include "common/fixed_point.h"
#include "common/matrix.h"
#include "common/prng.h"
#include "common/stats.h"
#include "arch/array.h"
#include "arch/functional.h"

using namespace usys;

int
main()
{
    // A small 8-bit GEMM: C (12x10) = A (12x20) x B (20x10).
    Prng prng(2024);
    const int bits = 8;
    const i32 max_mag = maxMagnitude(bits);
    Matrix<i32> a(12, 20), b(20, 10);
    for (int m = 0; m < a.rows(); ++m)
        for (int k = 0; k < a.cols(); ++k)
            a(m, k) = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    for (int k = 0; k < b.rows(); ++k)
        for (int n = 0; n < b.cols(); ++n)
            b(k, n) = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    const auto exact = referenceGemm(a, b);

    std::printf("scheme        MAC cycles  fold cycles  total cycles  "
                "normalized RMSE\n");
    for (Scheme scheme :
         {Scheme::BinaryParallel, Scheme::BinarySerial,
          Scheme::USystolicRate, Scheme::USystolicTemporal,
          Scheme::UgemmHybrid}) {
        ArrayConfig cfg;
        cfg.rows = 8;
        cfg.cols = 8;
        cfg.kernel = {scheme, bits, 0};

        SystolicGemm gemm(cfg);
        const auto result = gemm.run(a, b);

        GemmExecutor exec(cfg.kernel);
        RmseTracker rmse;
        for (int m = 0; m < exact.rows(); ++m)
            for (int n = 0; n < exact.cols(); ++n)
                rmse.add(double(exact(m, n)),
                         double(result.acc(m, n)) * exec.resultScale());

        SystolicArray array(cfg);
        std::printf("%-12s  %10u  %11llu  %12llu  %15.4f\n",
                    cfg.kernel.name().c_str(), cfg.kernel.macCycles(),
                    (unsigned long long)array.foldLatency(a.rows()),
                    (unsigned long long)result.cycles,
                    rmse.normalizedRmse());
    }

    // Early termination: the same unary GEMM at EBT 6 (32 cycles).
    ArrayConfig et_cfg;
    et_cfg.rows = 8;
    et_cfg.cols = 8;
    et_cfg.kernel = {Scheme::USystolicRate, bits, 6};
    SystolicGemm et_gemm(et_cfg);
    const auto et = et_gemm.run(a, b);
    GemmExecutor et_exec(et_cfg.kernel);
    RmseTracker et_rmse;
    for (int m = 0; m < exact.rows(); ++m)
        for (int n = 0; n < exact.cols(); ++n)
            et_rmse.add(double(exact(m, n)),
                        double(et.acc(m, n)) * et_exec.resultScale());
    std::printf("\nearly termination to EBT 6: %llu cycles (vs full), "
                "normalized RMSE %.4f\n",
                (unsigned long long)et.cycles, et_rmse.normalizedRmse());
    return 0;
}
