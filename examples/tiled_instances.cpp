/**
 * @file
 * System-level scalability study (Section V-H): multiple tiled uSystolic
 * instances sharing one DDR3 channel.
 *
 * Each instance's demand bandwidth is its DRAM bytes over its
 * contention-free runtime; the shared channel saturates when the
 * aggregate demand reaches the sustained supply. uSystolic's crawling
 * bytes let tens of instances share the channel where binary parallel
 * saturates immediately — "low bandwidth empowers better scalability".
 */

#include <algorithm>
#include <cstdio>

#include "common/table.h"
#include "sched/simulator.h"
#include "workloads/alexnet.h"
#include "workloads/systems.h"

using namespace usys;

int
main()
{
    // Demand of one instance, averaged over the AlexNet conv layers.
    struct Point
    {
        const char *label;
        KernelConfig kern;
        bool sram;
    };
    const Point points[] = {
        {"Binary Parallel (no SRAM)", {Scheme::BinaryParallel, 8, 0},
         false},
        {"Binary Parallel (+SRAM)", {Scheme::BinaryParallel, 8, 0},
         true},
        {"Unary-32c", {Scheme::USystolicRate, 8, 6}, false},
        {"Unary-64c", {Scheme::USystolicRate, 8, 7}, false},
        {"Unary-128c", {Scheme::USystolicRate, 8, 8}, false},
    };

    const double supply = ddr3Chip().sustainedGbps();
    std::printf("shared DDR3 channel: %.1f GB/s sustained\n\n", supply);

    TablePrinter table({"instance design", "demand GB/s", "max instances",
                        "aggregate GMAC/s at saturation"});
    for (const auto &point : points) {
        const auto sys = edgeSystem(point.kern, point.sram);
        double demand = 0.0, gmacs = 0.0;
        int conv_layers = 0;
        for (const auto &layer : alexnetLayers()) {
            if (layer.type != GemmType::Convolution)
                continue;
            const auto stats = simulateLayer(sys, layer);
            // Demand at full speed: bytes over contention-free time.
            const double t =
                double(stats.compute_cycles) / (sys.freq_ghz * 1e9);
            demand += double(stats.dram_total_bytes) / t * 1e-9;
            gmacs += double(layer.macs()) / t * 1e-9;
            ++conv_layers;
        }
        demand /= conv_layers;
        gmacs /= conv_layers;
        const int instances = std::max(1, int(supply / demand));
        table.addRow({point.label, TablePrinter::num(demand, 2),
                      std::to_string(instances),
                      TablePrinter::num(
                          gmacs * std::min<double>(instances,
                                                   supply / demand),
                          1)});
    }
    table.print();

    std::printf("\nthe slow per-instance data movement also hides "
                "interconnect latency: a MAC interval of 33-129 cycles "
                "tolerates that much packet-routing variation before any "
                "instance stalls (Section V-H).\n");
    return 0;
}
