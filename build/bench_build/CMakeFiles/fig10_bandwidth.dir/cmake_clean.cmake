file(REMOVE_RECURSE
  "../bench/fig10_bandwidth"
  "../bench/fig10_bandwidth.pdb"
  "CMakeFiles/fig10_bandwidth.dir/fig10_bandwidth.cc.o"
  "CMakeFiles/fig10_bandwidth.dir/fig10_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
