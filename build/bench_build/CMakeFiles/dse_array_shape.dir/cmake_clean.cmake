file(REMOVE_RECURSE
  "../bench/dse_array_shape"
  "../bench/dse_array_shape.pdb"
  "CMakeFiles/dse_array_shape.dir/dse_array_shape.cc.o"
  "CMakeFiles/dse_array_shape.dir/dse_array_shape.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_array_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
