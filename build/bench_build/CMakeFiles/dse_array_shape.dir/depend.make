# Empty dependencies file for dse_array_shape.
# This may be replaced when dependencies are built.
