file(REMOVE_RECURSE
  "../bench/fig14_efficiency"
  "../bench/fig14_efficiency.pdb"
  "CMakeFiles/fig14_efficiency.dir/fig14_efficiency.cc.o"
  "CMakeFiles/fig14_efficiency.dir/fig14_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
