# Empty dependencies file for fig14_efficiency.
# This may be replaced when dependencies are built.
