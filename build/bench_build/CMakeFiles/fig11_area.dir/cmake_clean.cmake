file(REMOVE_RECURSE
  "../bench/fig11_area"
  "../bench/fig11_area.pdb"
  "CMakeFiles/fig11_area.dir/fig11_area.cc.o"
  "CMakeFiles/fig11_area.dir/fig11_area.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
