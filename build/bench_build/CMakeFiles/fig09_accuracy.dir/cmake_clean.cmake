file(REMOVE_RECURSE
  "../bench/fig09_accuracy"
  "../bench/fig09_accuracy.pdb"
  "CMakeFiles/fig09_accuracy.dir/fig09_accuracy.cc.o"
  "CMakeFiles/fig09_accuracy.dir/fig09_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
