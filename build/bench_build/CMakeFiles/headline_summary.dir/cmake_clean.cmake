file(REMOVE_RECURSE
  "../bench/headline_summary"
  "../bench/headline_summary.pdb"
  "CMakeFiles/headline_summary.dir/headline_summary.cc.o"
  "CMakeFiles/headline_summary.dir/headline_summary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
