# Empty dependencies file for ablation_reuse_sram.
# This may be replaced when dependencies are built.
