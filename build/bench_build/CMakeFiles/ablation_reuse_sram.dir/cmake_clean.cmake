file(REMOVE_RECURSE
  "../bench/ablation_reuse_sram"
  "../bench/ablation_reuse_sram.pdb"
  "CMakeFiles/ablation_reuse_sram.dir/ablation_reuse_sram.cc.o"
  "CMakeFiles/ablation_reuse_sram.dir/ablation_reuse_sram.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reuse_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
