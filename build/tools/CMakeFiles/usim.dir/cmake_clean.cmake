file(REMOVE_RECURSE
  "CMakeFiles/usim.dir/usim.cc.o"
  "CMakeFiles/usim.dir/usim.cc.o.d"
  "usim"
  "usim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
