# Empty compiler generated dependencies file for usim.
# This may be replaced when dependencies are built.
