# Empty dependencies file for usys_eval.
# This may be replaced when dependencies are built.
