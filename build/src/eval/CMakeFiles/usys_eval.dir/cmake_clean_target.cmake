file(REMOVE_RECURSE
  "libusys_eval.a"
)
