file(REMOVE_RECURSE
  "CMakeFiles/usys_eval.dir/error_stats.cc.o"
  "CMakeFiles/usys_eval.dir/error_stats.cc.o.d"
  "CMakeFiles/usys_eval.dir/experiments.cc.o"
  "CMakeFiles/usys_eval.dir/experiments.cc.o.d"
  "CMakeFiles/usys_eval.dir/network.cc.o"
  "CMakeFiles/usys_eval.dir/network.cc.o.d"
  "CMakeFiles/usys_eval.dir/scaling.cc.o"
  "CMakeFiles/usys_eval.dir/scaling.cc.o.d"
  "libusys_eval.a"
  "libusys_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usys_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
