file(REMOVE_RECURSE
  "CMakeFiles/usys_common.dir/logging.cc.o"
  "CMakeFiles/usys_common.dir/logging.cc.o.d"
  "libusys_common.a"
  "libusys_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usys_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
