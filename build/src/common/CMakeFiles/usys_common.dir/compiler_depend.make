# Empty compiler generated dependencies file for usys_common.
# This may be replaced when dependencies are built.
