file(REMOVE_RECURSE
  "libusys_common.a"
)
