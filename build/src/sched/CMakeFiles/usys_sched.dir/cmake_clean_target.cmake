file(REMOVE_RECURSE
  "libusys_sched.a"
)
