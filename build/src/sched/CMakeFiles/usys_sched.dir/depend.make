# Empty dependencies file for usys_sched.
# This may be replaced when dependencies are built.
