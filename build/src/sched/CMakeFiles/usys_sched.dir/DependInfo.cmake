
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/simulator.cc" "src/sched/CMakeFiles/usys_sched.dir/simulator.cc.o" "gcc" "src/sched/CMakeFiles/usys_sched.dir/simulator.cc.o.d"
  "/root/repo/src/sched/trace.cc" "src/sched/CMakeFiles/usys_sched.dir/trace.cc.o" "gcc" "src/sched/CMakeFiles/usys_sched.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/usys_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/usys_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/usys_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/unary/CMakeFiles/usys_unary.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
