file(REMOVE_RECURSE
  "CMakeFiles/usys_sched.dir/simulator.cc.o"
  "CMakeFiles/usys_sched.dir/simulator.cc.o.d"
  "CMakeFiles/usys_sched.dir/trace.cc.o"
  "CMakeFiles/usys_sched.dir/trace.cc.o.d"
  "libusys_sched.a"
  "libusys_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usys_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
