
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/backend.cc" "src/dnn/CMakeFiles/usys_dnn.dir/backend.cc.o" "gcc" "src/dnn/CMakeFiles/usys_dnn.dir/backend.cc.o.d"
  "/root/repo/src/dnn/data.cc" "src/dnn/CMakeFiles/usys_dnn.dir/data.cc.o" "gcc" "src/dnn/CMakeFiles/usys_dnn.dir/data.cc.o.d"
  "/root/repo/src/dnn/layers.cc" "src/dnn/CMakeFiles/usys_dnn.dir/layers.cc.o" "gcc" "src/dnn/CMakeFiles/usys_dnn.dir/layers.cc.o.d"
  "/root/repo/src/dnn/models.cc" "src/dnn/CMakeFiles/usys_dnn.dir/models.cc.o" "gcc" "src/dnn/CMakeFiles/usys_dnn.dir/models.cc.o.d"
  "/root/repo/src/dnn/train.cc" "src/dnn/CMakeFiles/usys_dnn.dir/train.cc.o" "gcc" "src/dnn/CMakeFiles/usys_dnn.dir/train.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/usys_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/usys_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/unary/CMakeFiles/usys_unary.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
