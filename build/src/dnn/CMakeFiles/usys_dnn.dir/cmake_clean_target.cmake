file(REMOVE_RECURSE
  "libusys_dnn.a"
)
