# Empty dependencies file for usys_dnn.
# This may be replaced when dependencies are built.
