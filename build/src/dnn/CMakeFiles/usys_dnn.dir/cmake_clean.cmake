file(REMOVE_RECURSE
  "CMakeFiles/usys_dnn.dir/backend.cc.o"
  "CMakeFiles/usys_dnn.dir/backend.cc.o.d"
  "CMakeFiles/usys_dnn.dir/data.cc.o"
  "CMakeFiles/usys_dnn.dir/data.cc.o.d"
  "CMakeFiles/usys_dnn.dir/layers.cc.o"
  "CMakeFiles/usys_dnn.dir/layers.cc.o.d"
  "CMakeFiles/usys_dnn.dir/models.cc.o"
  "CMakeFiles/usys_dnn.dir/models.cc.o.d"
  "CMakeFiles/usys_dnn.dir/train.cc.o"
  "CMakeFiles/usys_dnn.dir/train.cc.o.d"
  "libusys_dnn.a"
  "libusys_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usys_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
