file(REMOVE_RECURSE
  "CMakeFiles/usys_arch.dir/array.cc.o"
  "CMakeFiles/usys_arch.dir/array.cc.o.d"
  "CMakeFiles/usys_arch.dir/early_termination.cc.o"
  "CMakeFiles/usys_arch.dir/early_termination.cc.o.d"
  "CMakeFiles/usys_arch.dir/fifo.cc.o"
  "CMakeFiles/usys_arch.dir/fifo.cc.o.d"
  "CMakeFiles/usys_arch.dir/fsu_gemm.cc.o"
  "CMakeFiles/usys_arch.dir/fsu_gemm.cc.o.d"
  "CMakeFiles/usys_arch.dir/functional.cc.o"
  "CMakeFiles/usys_arch.dir/functional.cc.o.d"
  "CMakeFiles/usys_arch.dir/rtl_array.cc.o"
  "CMakeFiles/usys_arch.dir/rtl_array.cc.o.d"
  "libusys_arch.a"
  "libusys_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usys_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
