
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/array.cc" "src/arch/CMakeFiles/usys_arch.dir/array.cc.o" "gcc" "src/arch/CMakeFiles/usys_arch.dir/array.cc.o.d"
  "/root/repo/src/arch/early_termination.cc" "src/arch/CMakeFiles/usys_arch.dir/early_termination.cc.o" "gcc" "src/arch/CMakeFiles/usys_arch.dir/early_termination.cc.o.d"
  "/root/repo/src/arch/fifo.cc" "src/arch/CMakeFiles/usys_arch.dir/fifo.cc.o" "gcc" "src/arch/CMakeFiles/usys_arch.dir/fifo.cc.o.d"
  "/root/repo/src/arch/fsu_gemm.cc" "src/arch/CMakeFiles/usys_arch.dir/fsu_gemm.cc.o" "gcc" "src/arch/CMakeFiles/usys_arch.dir/fsu_gemm.cc.o.d"
  "/root/repo/src/arch/functional.cc" "src/arch/CMakeFiles/usys_arch.dir/functional.cc.o" "gcc" "src/arch/CMakeFiles/usys_arch.dir/functional.cc.o.d"
  "/root/repo/src/arch/rtl_array.cc" "src/arch/CMakeFiles/usys_arch.dir/rtl_array.cc.o" "gcc" "src/arch/CMakeFiles/usys_arch.dir/rtl_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/usys_common.dir/DependInfo.cmake"
  "/root/repo/build/src/unary/CMakeFiles/usys_unary.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
