# Empty dependencies file for usys_arch.
# This may be replaced when dependencies are built.
