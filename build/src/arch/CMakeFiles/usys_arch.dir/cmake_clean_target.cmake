file(REMOVE_RECURSE
  "libusys_arch.a"
)
