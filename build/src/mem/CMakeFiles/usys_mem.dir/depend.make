# Empty dependencies file for usys_mem.
# This may be replaced when dependencies are built.
