file(REMOVE_RECURSE
  "libusys_mem.a"
)
