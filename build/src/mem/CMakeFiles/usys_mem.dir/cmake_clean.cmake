file(REMOVE_RECURSE
  "CMakeFiles/usys_mem.dir/dram_timing.cc.o"
  "CMakeFiles/usys_mem.dir/dram_timing.cc.o.d"
  "libusys_mem.a"
  "libusys_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usys_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
