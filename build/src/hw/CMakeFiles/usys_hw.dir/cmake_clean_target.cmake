file(REMOVE_RECURSE
  "libusys_hw.a"
)
