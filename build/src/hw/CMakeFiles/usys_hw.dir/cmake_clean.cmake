file(REMOVE_RECURSE
  "CMakeFiles/usys_hw.dir/energy.cc.o"
  "CMakeFiles/usys_hw.dir/energy.cc.o.d"
  "CMakeFiles/usys_hw.dir/fsu_cost.cc.o"
  "CMakeFiles/usys_hw.dir/fsu_cost.cc.o.d"
  "CMakeFiles/usys_hw.dir/pe_cost.cc.o"
  "CMakeFiles/usys_hw.dir/pe_cost.cc.o.d"
  "libusys_hw.a"
  "libusys_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usys_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
