# Empty dependencies file for usys_hw.
# This may be replaced when dependencies are built.
