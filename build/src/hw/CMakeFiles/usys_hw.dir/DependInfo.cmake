
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/energy.cc" "src/hw/CMakeFiles/usys_hw.dir/energy.cc.o" "gcc" "src/hw/CMakeFiles/usys_hw.dir/energy.cc.o.d"
  "/root/repo/src/hw/fsu_cost.cc" "src/hw/CMakeFiles/usys_hw.dir/fsu_cost.cc.o" "gcc" "src/hw/CMakeFiles/usys_hw.dir/fsu_cost.cc.o.d"
  "/root/repo/src/hw/pe_cost.cc" "src/hw/CMakeFiles/usys_hw.dir/pe_cost.cc.o" "gcc" "src/hw/CMakeFiles/usys_hw.dir/pe_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/usys_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/usys_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/usys_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/unary/CMakeFiles/usys_unary.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/usys_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
