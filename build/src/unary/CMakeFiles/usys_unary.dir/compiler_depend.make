# Empty compiler generated dependencies file for usys_unary.
# This may be replaced when dependencies are built.
