
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unary/lfsr.cc" "src/unary/CMakeFiles/usys_unary.dir/lfsr.cc.o" "gcc" "src/unary/CMakeFiles/usys_unary.dir/lfsr.cc.o.d"
  "/root/repo/src/unary/product_table.cc" "src/unary/CMakeFiles/usys_unary.dir/product_table.cc.o" "gcc" "src/unary/CMakeFiles/usys_unary.dir/product_table.cc.o.d"
  "/root/repo/src/unary/sobol.cc" "src/unary/CMakeFiles/usys_unary.dir/sobol.cc.o" "gcc" "src/unary/CMakeFiles/usys_unary.dir/sobol.cc.o.d"
  "/root/repo/src/unary/uadd.cc" "src/unary/CMakeFiles/usys_unary.dir/uadd.cc.o" "gcc" "src/unary/CMakeFiles/usys_unary.dir/uadd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/usys_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
