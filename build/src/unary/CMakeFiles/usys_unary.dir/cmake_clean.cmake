file(REMOVE_RECURSE
  "CMakeFiles/usys_unary.dir/lfsr.cc.o"
  "CMakeFiles/usys_unary.dir/lfsr.cc.o.d"
  "CMakeFiles/usys_unary.dir/product_table.cc.o"
  "CMakeFiles/usys_unary.dir/product_table.cc.o.d"
  "CMakeFiles/usys_unary.dir/sobol.cc.o"
  "CMakeFiles/usys_unary.dir/sobol.cc.o.d"
  "CMakeFiles/usys_unary.dir/uadd.cc.o"
  "CMakeFiles/usys_unary.dir/uadd.cc.o.d"
  "libusys_unary.a"
  "libusys_unary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usys_unary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
