file(REMOVE_RECURSE
  "libusys_unary.a"
)
