file(REMOVE_RECURSE
  "libusys_workloads.a"
)
