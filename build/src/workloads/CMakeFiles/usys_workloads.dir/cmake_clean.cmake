file(REMOVE_RECURSE
  "CMakeFiles/usys_workloads.dir/alexnet.cc.o"
  "CMakeFiles/usys_workloads.dir/alexnet.cc.o.d"
  "CMakeFiles/usys_workloads.dir/layer_parse.cc.o"
  "CMakeFiles/usys_workloads.dir/layer_parse.cc.o.d"
  "CMakeFiles/usys_workloads.dir/mlperf.cc.o"
  "CMakeFiles/usys_workloads.dir/mlperf.cc.o.d"
  "libusys_workloads.a"
  "libusys_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usys_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
