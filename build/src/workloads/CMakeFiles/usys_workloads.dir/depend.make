# Empty dependencies file for usys_workloads.
# This may be replaced when dependencies are built.
