# Empty dependencies file for usys_isa.
# This may be replaced when dependencies are built.
