file(REMOVE_RECURSE
  "libusys_isa.a"
)
