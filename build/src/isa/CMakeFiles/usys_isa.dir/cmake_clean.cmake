file(REMOVE_RECURSE
  "CMakeFiles/usys_isa.dir/isa.cc.o"
  "CMakeFiles/usys_isa.dir/isa.cc.o.d"
  "libusys_isa.a"
  "libusys_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usys_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
