file(REMOVE_RECURSE
  "CMakeFiles/test_fifo.dir/test_fifo.cc.o"
  "CMakeFiles/test_fifo.dir/test_fifo.cc.o.d"
  "test_fifo"
  "test_fifo.pdb"
  "test_fifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
