# Empty compiler generated dependencies file for test_rtl_array.
# This may be replaced when dependencies are built.
