file(REMOVE_RECURSE
  "CMakeFiles/test_rtl_array.dir/test_rtl_array.cc.o"
  "CMakeFiles/test_rtl_array.dir/test_rtl_array.cc.o.d"
  "test_rtl_array"
  "test_rtl_array.pdb"
  "test_rtl_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
