file(REMOVE_RECURSE
  "CMakeFiles/test_network_scaling.dir/test_network_scaling.cc.o"
  "CMakeFiles/test_network_scaling.dir/test_network_scaling.cc.o.d"
  "test_network_scaling"
  "test_network_scaling.pdb"
  "test_network_scaling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
