# Empty dependencies file for test_network_scaling.
# This may be replaced when dependencies are built.
