file(REMOVE_RECURSE
  "CMakeFiles/test_parse_fsu.dir/test_parse_fsu.cc.o"
  "CMakeFiles/test_parse_fsu.dir/test_parse_fsu.cc.o.d"
  "test_parse_fsu"
  "test_parse_fsu.pdb"
  "test_parse_fsu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parse_fsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
