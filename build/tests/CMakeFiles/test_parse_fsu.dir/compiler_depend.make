# Empty compiler generated dependencies file for test_parse_fsu.
# This may be replaced when dependencies are built.
