file(REMOVE_RECURSE
  "CMakeFiles/test_mem_hw.dir/test_mem_hw.cc.o"
  "CMakeFiles/test_mem_hw.dir/test_mem_hw.cc.o.d"
  "test_mem_hw"
  "test_mem_hw.pdb"
  "test_mem_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
