# Empty compiler generated dependencies file for test_fsu_gemm.
# This may be replaced when dependencies are built.
