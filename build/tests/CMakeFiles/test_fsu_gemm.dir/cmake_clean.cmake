file(REMOVE_RECURSE
  "CMakeFiles/test_fsu_gemm.dir/test_fsu_gemm.cc.o"
  "CMakeFiles/test_fsu_gemm.dir/test_fsu_gemm.cc.o.d"
  "test_fsu_gemm"
  "test_fsu_gemm.pdb"
  "test_fsu_gemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsu_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
