file(REMOVE_RECURSE
  "CMakeFiles/test_uadd.dir/test_uadd.cc.o"
  "CMakeFiles/test_uadd.dir/test_uadd.cc.o.d"
  "test_uadd"
  "test_uadd.pdb"
  "test_uadd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uadd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
