# Empty compiler generated dependencies file for test_uadd.
# This may be replaced when dependencies are built.
