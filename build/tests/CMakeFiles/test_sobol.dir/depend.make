# Empty dependencies file for test_sobol.
# This may be replaced when dependencies are built.
