file(REMOVE_RECURSE
  "CMakeFiles/test_sobol.dir/test_sobol.cc.o"
  "CMakeFiles/test_sobol.dir/test_sobol.cc.o.d"
  "test_sobol"
  "test_sobol.pdb"
  "test_sobol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sobol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
