file(REMOVE_RECURSE
  "CMakeFiles/test_unary_kernel.dir/test_unary_kernel.cc.o"
  "CMakeFiles/test_unary_kernel.dir/test_unary_kernel.cc.o.d"
  "test_unary_kernel"
  "test_unary_kernel.pdb"
  "test_unary_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unary_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
