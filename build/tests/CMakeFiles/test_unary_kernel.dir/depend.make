# Empty dependencies file for test_unary_kernel.
# This may be replaced when dependencies are built.
