file(REMOVE_RECURSE
  "CMakeFiles/early_termination.dir/early_termination.cpp.o"
  "CMakeFiles/early_termination.dir/early_termination.cpp.o.d"
  "early_termination"
  "early_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
