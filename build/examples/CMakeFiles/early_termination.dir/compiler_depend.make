# Empty compiler generated dependencies file for early_termination.
# This may be replaced when dependencies are built.
