
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/alexnet_edge.cpp" "examples/CMakeFiles/alexnet_edge.dir/alexnet_edge.cpp.o" "gcc" "examples/CMakeFiles/alexnet_edge.dir/alexnet_edge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/usys_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/usys_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/usys_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/usys_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dnn/CMakeFiles/usys_dnn.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/usys_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/usys_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/unary/CMakeFiles/usys_unary.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/usys_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/usys_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
