# Empty dependencies file for alexnet_edge.
# This may be replaced when dependencies are built.
