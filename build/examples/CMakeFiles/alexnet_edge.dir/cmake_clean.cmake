file(REMOVE_RECURSE
  "CMakeFiles/alexnet_edge.dir/alexnet_edge.cpp.o"
  "CMakeFiles/alexnet_edge.dir/alexnet_edge.cpp.o.d"
  "alexnet_edge"
  "alexnet_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alexnet_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
