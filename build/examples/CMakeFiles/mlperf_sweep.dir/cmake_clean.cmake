file(REMOVE_RECURSE
  "CMakeFiles/mlperf_sweep.dir/mlperf_sweep.cpp.o"
  "CMakeFiles/mlperf_sweep.dir/mlperf_sweep.cpp.o.d"
  "mlperf_sweep"
  "mlperf_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlperf_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
