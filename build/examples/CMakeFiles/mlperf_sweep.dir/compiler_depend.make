# Empty compiler generated dependencies file for mlperf_sweep.
# This may be replaced when dependencies are built.
