# Empty compiler generated dependencies file for tiled_instances.
# This may be replaced when dependencies are built.
