file(REMOVE_RECURSE
  "CMakeFiles/tiled_instances.dir/tiled_instances.cpp.o"
  "CMakeFiles/tiled_instances.dir/tiled_instances.cpp.o.d"
  "tiled_instances"
  "tiled_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiled_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
