file(REMOVE_RECURSE
  "CMakeFiles/mnist_end2end.dir/mnist_end2end.cpp.o"
  "CMakeFiles/mnist_end2end.dir/mnist_end2end.cpp.o.d"
  "mnist_end2end"
  "mnist_end2end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_end2end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
