# Empty compiler generated dependencies file for mnist_end2end.
# This may be replaced when dependencies are built.
