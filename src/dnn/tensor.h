/**
 * @file
 * Minimal NCHW float tensor for the DNN inference/training substrate.
 */

#ifndef USYS_DNN_TENSOR_H
#define USYS_DNN_TENSOR_H

#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace usys {

/** Dense float tensor with (N, C, H, W) layout; FC activations use H=W=1. */
class Tensor
{
  public:
    Tensor() = default;

    Tensor(int n, int c, int h, int w)
        : n_(n), c_(c), h_(h), w_(w),
          data_(std::size_t(n) * c * h * w, 0.0f)
    {}

    int n() const { return n_; }
    int c() const { return c_; }
    int h() const { return h_; }
    int w() const { return w_; }
    std::size_t size() const { return data_.size(); }

    float &
    at(int n, int c, int h, int w)
    {
        return data_[idx(n, c, h, w)];
    }

    float
    at(int n, int c, int h, int w) const
    {
        return data_[idx(n, c, h, w)];
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    std::vector<float> &raw() { return data_; }
    const std::vector<float> &raw() const { return data_; }

    /** Reinterpret with a new shape of identical element count. */
    Tensor
    reshaped(int n, int c, int h, int w) const
    {
        panicIf(std::size_t(n) * c * h * w != data_.size(),
                "Tensor::reshaped: element count mismatch");
        Tensor t = *this;
        t.n_ = n;
        t.c_ = c;
        t.h_ = h;
        t.w_ = w;
        return t;
    }

    /** Zero all elements. */
    void
    zero()
    {
        std::fill(data_.begin(), data_.end(), 0.0f);
    }

    /**
     * Fraction of elements that are exactly zero. Post-ReLU this is the
     * activation sparsity the zero-stream-skipping schemes exploit
     * (GemmLayer::act_sparsity).
     */
    double
    zeroFraction() const
    {
        if (data_.empty())
            return 0.0;
        std::size_t zeros = 0;
        for (const float v : data_)
            zeros += (v == 0.0f);
        return double(zeros) / double(data_.size());
    }

  private:
    std::size_t
    idx(int n, int c, int h, int w) const
    {
        return ((std::size_t(n) * c_ + c) * h_ + h) * w_ + w;
    }

    int n_ = 0, c_ = 0, h_ = 0, w_ = 0;
    std::vector<float> data_;
};

} // namespace usys

#endif // USYS_DNN_TENSOR_H
