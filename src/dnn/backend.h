/**
 * @file
 * GEMM backend executing float matrix products under a NumericConfig.
 *
 * Every convolution/linear layer lowers to gemmWithMode(activations,
 * weights): the float operands are symmetrically quantized per tensor,
 * pushed through the mode's integer datapath (exact binary or bit-exact
 * unary via the product tables), and dequantized. This makes the Figure 9
 * accuracy study exercise the same arithmetic as the cycle-level PE.
 */

#ifndef USYS_DNN_BACKEND_H
#define USYS_DNN_BACKEND_H

#include "common/matrix.h"
#include "dnn/numeric.h"

namespace usys {

using MatF = Matrix<float>;

/** C (MxN) = A (MxK) x B (KxN) in float (reference path). */
MatF gemmFp32(const MatF &a, const MatF &b);

/**
 * C = A x B under the given numeric mode. B is treated as the weight
 * operand (receives the extra bit in FXP-o-res, stays stationary in the
 * unary schemes).
 */
MatF gemmWithMode(const MatF &a, const MatF &b, const NumericConfig &cfg);

} // namespace usys

#endif // USYS_DNN_BACKEND_H
