/**
 * @file
 * Model builders (DESIGN.md substitution #3): scaled-down versions of the
 * paper's three CNNs with the same topological families.
 *
 *  - buildCnn4: 4 weighted layers (conv-conv-fc-fc), the "4-layer CNN for
 *    MNIST";
 *  - buildResLite: residual network (stem + 3 residual stages + fc), the
 *    "ResNet18 for CIFAR10";
 *  - buildAlexLite: 5 convolutions + 3 fully-connected layers, the
 *    "AlexNet for ImageNet".
 */

#ifndef USYS_DNN_MODELS_H
#define USYS_DNN_MODELS_H

#include <memory>

#include "dnn/layers.h"

namespace usys {

/** 4-layer CNN for 16x16x1 inputs. */
std::unique_ptr<Sequential> buildCnn4(int classes, u64 seed);

/** Residual CNN (ResNet18-style topology, scaled down). */
std::unique_ptr<Sequential> buildResLite(int classes, u64 seed);

/** AlexNet-style CNN (5 conv + 3 fc, scaled down). */
std::unique_ptr<Sequential> buildAlexLite(int classes, u64 seed);

} // namespace usys

#endif // USYS_DNN_MODELS_H
