/**
 * @file
 * Minimal DNN layer zoo with float training and mode-switchable
 * quantized/unary inference.
 *
 * forward() takes a NumericConfig so the same trained model can be
 * evaluated under FP32, fixed-point, or any unary scheme (Figure 9).
 * backward()/step() implement plain SGD-with-momentum training in float.
 */

#ifndef USYS_DNN_LAYERS_H
#define USYS_DNN_LAYERS_H

#include <memory>
#include <string>
#include <vector>

#include "common/prng.h"
#include "dnn/backend.h"
#include "dnn/numeric.h"
#include "dnn/tensor.h"

namespace usys {

/** Base layer: forward under a numeric mode, float backward, SGD step. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Forward pass; caches activations needed by backward. */
    virtual Tensor forward(const Tensor &x, const NumericConfig &cfg) = 0;

    /** Backward pass (float); returns gradient w.r.t. the input. */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** SGD-with-momentum parameter update. */
    virtual void step(float, float) {}

    /** Trainable parameter blobs (for (de)serialization). */
    virtual std::vector<std::vector<float> *> paramBlobs() { return {}; }

    virtual std::string name() const = 0;
};

/** 2-D convolution via im2col + gemmWithMode. */
class Conv2d : public Layer
{
  public:
    Conv2d(int in_ch, int out_ch, int kernel, int stride, int pad,
           Prng &init);

    Tensor forward(const Tensor &x, const NumericConfig &cfg) override;
    Tensor backward(const Tensor &grad_out) override;
    void step(float lr, float momentum) override;
    std::vector<std::vector<float> *> paramBlobs() override;
    std::string name() const override { return "conv"; }

    i64 macsPerSample(int in_h, int in_w) const;

  private:
    int in_ch_, out_ch_, kernel_, stride_, pad_;
    std::vector<float> weight_; // (K = in_ch*k*k) x out_ch, row-major
    std::vector<float> bias_;
    std::vector<float> grad_w_, grad_b_, vel_w_, vel_b_;
    // Cached forward state.
    Tensor input_;
    MatF cols_;
    int out_h_ = 0, out_w_ = 0;
};

/** Fully-connected layer (flattens its input). */
class Linear : public Layer
{
  public:
    Linear(int in_features, int out_features, Prng &init);

    Tensor forward(const Tensor &x, const NumericConfig &cfg) override;
    Tensor backward(const Tensor &grad_out) override;
    void step(float lr, float momentum) override;
    std::vector<std::vector<float> *> paramBlobs() override;
    std::string name() const override { return "linear"; }

  private:
    int in_f_, out_f_;
    std::vector<float> weight_; // in_f x out_f
    std::vector<float> bias_;
    std::vector<float> grad_w_, grad_b_, vel_w_, vel_b_;
    Tensor input_;
    int in_n_ = 0, in_c_ = 0, in_h_ = 0, in_w_ = 0;
};

/** Rectified linear unit. */
class ReLU : public Layer
{
  public:
    Tensor forward(const Tensor &x, const NumericConfig &cfg) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "relu"; }

  private:
    Tensor input_;
};

/** 2x2 stride-2 max pooling. */
class MaxPool2d : public Layer
{
  public:
    Tensor forward(const Tensor &x, const NumericConfig &cfg) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "maxpool"; }

  private:
    Tensor input_;
    std::vector<u32> argmax_;
    int out_h_ = 0, out_w_ = 0;
};

/** Layer pipeline. */
class Sequential : public Layer
{
  public:
    Sequential() = default;

    void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

    Tensor forward(const Tensor &x, const NumericConfig &cfg) override;
    Tensor backward(const Tensor &grad_out) override;
    void step(float lr, float momentum) override;
    std::vector<std::vector<float> *> paramBlobs() override;
    std::string name() const override { return "sequential"; }

    std::size_t layerCount() const { return layers_.size(); }

    /**
     * Mixed-precision forward: sublayer i runs under configs[i]. This
     * is how a per-layer early-termination schedule (the ISA's
     * MAC-cycle-count field programmed differently per layer) is
     * evaluated for accuracy.
     *
     * @param configs one NumericConfig per sublayer (size layerCount())
     */
    Tensor forwardMixed(const Tensor &x,
                        const std::vector<NumericConfig> &configs);

    /**
     * Forward pass that also measures the input zero fraction of every
     * GEMM sublayer (conv/linear), in network order — the real
     * ReLU-induced activation sparsity a zero-stream-skipping array
     * would see on this batch. Residual blocks report one entry per
     * block (the block input's zero fraction, covering its inner
     * convolutions). Appends to `gemm_input_zero_frac`.
     */
    Tensor forwardMeasuringSparsity(const Tensor &x,
                                    const NumericConfig &cfg,
                                    std::vector<double> *gemm_input_zero_frac);

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/** Residual block: out = relu(body(x) + shortcut(x)). */
class ResidualBlock : public Layer
{
  public:
    /**
     * Two 3x3 convolutions; a 1x1 projection shortcut is inserted when
     * the shape changes (stride > 1 or channel growth).
     */
    ResidualBlock(int in_ch, int out_ch, int stride, Prng &init);

    Tensor forward(const Tensor &x, const NumericConfig &cfg) override;
    Tensor backward(const Tensor &grad_out) override;
    void step(float lr, float momentum) override;
    std::vector<std::vector<float> *> paramBlobs() override;
    std::string name() const override { return "residual"; }

  private:
    Sequential body_;
    std::unique_ptr<Conv2d> projection_; // null for identity shortcut
    Tensor input_;
    Tensor sum_; // pre-ReLU sum for the backward mask
};

/**
 * Softmax cross-entropy over logits (N x classes).
 *
 * @param logits network output, H=W=1
 * @param labels per-sample class indices
 * @param grad optional out-param receiving dLoss/dLogits
 * @return mean loss
 */
double softmaxCrossEntropy(const Tensor &logits,
                           const std::vector<int> &labels,
                           Tensor *grad = nullptr);

/** Index of the max logit per sample. */
std::vector<int> argmaxLogits(const Tensor &logits);

} // namespace usys

#endif // USYS_DNN_LAYERS_H
