#include "dnn/backend.h"

#include <cmath>

#include "common/executor.h"
#include "common/fixed_point.h"
#include "common/simd.h"
#include "arch/functional.h"

namespace usys {

namespace {

float
maxAbs(const MatF &m)
{
    float mx = 0.0f;
    for (float v : m.data())
        mx = std::max(mx, std::fabs(v));
    return mx;
}

Matrix<i32>
quantizeMat(const MatF &m, double scale, int bits)
{
    Matrix<i32> q(m.rows(), m.cols());
    for (int r = 0; r < m.rows(); ++r)
        for (int c = 0; c < m.cols(); ++c)
            q(r, c) = quantize(m(r, c), scale, bits);
    return q;
}

MatF
dequantizeAcc(const Matrix<i64> &acc, double factor)
{
    MatF out(acc.rows(), acc.cols());
    for (int r = 0; r < acc.rows(); ++r)
        for (int c = 0; c < acc.cols(); ++c)
            out(r, c) = float(double(acc(r, c)) * factor);
    return out;
}

} // namespace

MatF
gemmFp32(const MatF &a, const MatF &b)
{
    fatalIf(a.cols() != b.rows(), "gemmFp32: shape mismatch");
    MatF c(a.rows(), b.cols(), 0.0f);
    // Row-parallel: the dnn inference batch loop funnels every image of
    // a batch through one GEMM, so rows == batch here. Each row writes
    // only its own output slice and fp32 adds stay in row order, so the
    // result is bitwise-identical at any thread count.
    const u64 grain = std::max<u64>(
        1, 4096 / u64(std::max(1, a.cols() * b.cols())));
    const SimdKernels &simd = simdKernels();
    parallelFor(
        0, u64(a.rows()),
        [&](u64 mi) {
            const int m = int(mi);
            for (int k = 0; k < a.cols(); ++k) {
                const float av = a(m, k);
                if (av == 0.0f)
                    continue;
                simd.axpyF32(&c(m, 0), &b(k, 0), av, b.cols());
            }
        },
        grain);
    return c;
}

MatF
gemmWithMode(const MatF &a, const MatF &b, const NumericConfig &cfg)
{
    cfg.check();
    if (cfg.mode == NumericMode::Fp32)
        return gemmFp32(a, b);

    // Bit allocation per mode. B is the weight operand.
    int a_bits = cfg.ebt, b_bits = cfg.ebt;
    if (cfg.mode == NumericMode::FxpOres) {
        // n-bit output resolution: the inputs share n bits; the weight
        // gets the extra bit when n is odd (Section V-A).
        a_bits = cfg.ebt / 2;
        b_bits = cfg.ebt - a_bits;
        a_bits = std::max(a_bits, 2);
        b_bits = std::max(b_bits, 2);
    }

    const double sa = symmetricScale(maxAbs(a), a_bits);
    const double sb = symmetricScale(maxAbs(b), b_bits);
    const auto qa = quantizeMat(a, sa, a_bits);
    const auto qb = quantizeMat(b, sb, b_bits);

    switch (cfg.mode) {
      case NumericMode::FxpIres:
      case NumericMode::FxpOres:
        return dequantizeAcc(referenceGemm(qa, qb), sa * sb);
      case NumericMode::UnaryRate:
      case NumericMode::UnaryTemporal:
      case NumericMode::UgemmH:
      case NumericMode::TubGemm:
      case NumericMode::TuGemm: {
        Scheme scheme = Scheme::USystolicRate;
        if (cfg.mode == NumericMode::UnaryTemporal)
            scheme = Scheme::USystolicTemporal;
        if (cfg.mode == NumericMode::UgemmH)
            scheme = Scheme::UgemmHybrid;
        if (cfg.mode == NumericMode::TubGemm)
            scheme = Scheme::TubGemm;
        if (cfg.mode == NumericMode::TuGemm)
            scheme = Scheme::TuGemm;
        GemmExecutor exec({scheme, cfg.ebt, 0});
        const auto acc = exec.run(qa, qb);
        return dequantizeAcc(acc, sa * sb * exec.resultScale());
      }
      default:
        break;
    }
    panic("gemmWithMode: unhandled mode");
}

} // namespace usys
