#include "dnn/layers.h"

#include <algorithm>
#include <cmath>

namespace usys {

namespace {

/** He-style normal initialization. */
void
initWeights(std::vector<float> &w, int fan_in, Prng &prng)
{
    const float stddev = std::sqrt(2.0f / float(fan_in));
    for (auto &v : w)
        v = float(prng.gaussian()) * stddev;
}

/** SGD with momentum over one parameter blob. */
void
sgdStep(std::vector<float> &param, std::vector<float> &grad,
        std::vector<float> &vel, float lr, float momentum)
{
    for (std::size_t i = 0; i < param.size(); ++i) {
        vel[i] = momentum * vel[i] - lr * grad[i];
        param[i] += vel[i];
        grad[i] = 0.0f;
    }
}

/** im2col: (N,C,H,W) -> (N*OH*OW) x (C*k*k). */
MatF
im2col(const Tensor &x, int kernel, int stride, int pad, int out_h,
       int out_w)
{
    const int n = x.n(), c = x.c(), h = x.h(), w = x.w();
    MatF cols(n * out_h * out_w, c * kernel * kernel, 0.0f);
    for (int ni = 0; ni < n; ++ni) {
        for (int oh = 0; oh < out_h; ++oh) {
            for (int ow = 0; ow < out_w; ++ow) {
                const int row = (ni * out_h + oh) * out_w + ow;
                int col = 0;
                for (int ci = 0; ci < c; ++ci) {
                    for (int kh = 0; kh < kernel; ++kh) {
                        const int ih = oh * stride + kh - pad;
                        for (int kw = 0; kw < kernel; ++kw, ++col) {
                            const int iw = ow * stride + kw - pad;
                            if (ih >= 0 && ih < h && iw >= 0 && iw < w)
                                cols(row, col) = x.at(ni, ci, ih, iw);
                        }
                    }
                }
            }
        }
    }
    return cols;
}

/** col2im: scatter-add the gradient of im2col. */
void
col2im(const MatF &cols, Tensor &grad_x, int kernel, int stride, int pad,
       int out_h, int out_w)
{
    const int n = grad_x.n(), c = grad_x.c(), h = grad_x.h(),
              w = grad_x.w();
    for (int ni = 0; ni < n; ++ni) {
        for (int oh = 0; oh < out_h; ++oh) {
            for (int ow = 0; ow < out_w; ++ow) {
                const int row = (ni * out_h + oh) * out_w + ow;
                int col = 0;
                for (int ci = 0; ci < c; ++ci) {
                    for (int kh = 0; kh < kernel; ++kh) {
                        const int ih = oh * stride + kh - pad;
                        for (int kw = 0; kw < kernel; ++kw, ++col) {
                            const int iw = ow * stride + kw - pad;
                            if (ih >= 0 && ih < h && iw >= 0 && iw < w)
                                grad_x.at(ni, ci, ih, iw) += cols(row, col);
                        }
                    }
                }
            }
        }
    }
}

} // namespace

// --- Conv2d ----------------------------------------------------------------

Conv2d::Conv2d(int in_ch, int out_ch, int kernel, int stride, int pad,
               Prng &init)
    : in_ch_(in_ch), out_ch_(out_ch), kernel_(kernel), stride_(stride),
      pad_(pad)
{
    const std::size_t k = std::size_t(in_ch) * kernel * kernel;
    weight_.assign(k * out_ch, 0.0f);
    bias_.assign(out_ch, 0.0f);
    grad_w_.assign(weight_.size(), 0.0f);
    grad_b_.assign(bias_.size(), 0.0f);
    vel_w_.assign(weight_.size(), 0.0f);
    vel_b_.assign(bias_.size(), 0.0f);
    initWeights(weight_, int(k), init);
}

i64
Conv2d::macsPerSample(int in_h, int in_w) const
{
    const i64 oh = (in_h + 2 * pad_ - kernel_) / stride_ + 1;
    const i64 ow = (in_w + 2 * pad_ - kernel_) / stride_ + 1;
    return oh * ow * i64(in_ch_) * kernel_ * kernel_ * out_ch_;
}

Tensor
Conv2d::forward(const Tensor &x, const NumericConfig &cfg)
{
    input_ = x;
    out_h_ = (x.h() + 2 * pad_ - kernel_) / stride_ + 1;
    out_w_ = (x.w() + 2 * pad_ - kernel_) / stride_ + 1;
    cols_ = im2col(x, kernel_, stride_, pad_, out_h_, out_w_);

    const int k = in_ch_ * kernel_ * kernel_;
    MatF wmat(k, out_ch_);
    for (int r = 0; r < k; ++r)
        for (int c = 0; c < out_ch_; ++c)
            wmat(r, c) = weight_[std::size_t(r) * out_ch_ + c];

    const MatF out = gemmWithMode(cols_, wmat, cfg);

    Tensor y(x.n(), out_ch_, out_h_, out_w_);
    for (int ni = 0; ni < x.n(); ++ni)
        for (int oh = 0; oh < out_h_; ++oh)
            for (int ow = 0; ow < out_w_; ++ow) {
                const int row = (ni * out_h_ + oh) * out_w_ + ow;
                for (int oc = 0; oc < out_ch_; ++oc)
                    y.at(ni, oc, oh, ow) = out(row, oc) + bias_[oc];
            }
    return y;
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    const int k = in_ch_ * kernel_ * kernel_;
    const int rows = grad_out.n() * out_h_ * out_w_;

    // Flatten grad_out to (rows x out_ch).
    MatF g(rows, out_ch_);
    for (int ni = 0; ni < grad_out.n(); ++ni)
        for (int oh = 0; oh < out_h_; ++oh)
            for (int ow = 0; ow < out_w_; ++ow) {
                const int row = (ni * out_h_ + oh) * out_w_ + ow;
                for (int oc = 0; oc < out_ch_; ++oc)
                    g(row, oc) = grad_out.at(ni, oc, oh, ow);
            }

    // grad_w (k x out_ch) = cols^T x g; grad_b = column sums of g.
    for (int r = 0; r < rows; ++r) {
        for (int kk = 0; kk < k; ++kk) {
            const float cv = cols_(r, kk);
            if (cv == 0.0f)
                continue;
            float *gw = &grad_w_[std::size_t(kk) * out_ch_];
            const float *gr = &g(r, 0);
            for (int oc = 0; oc < out_ch_; ++oc)
                gw[oc] += cv * gr[oc];
        }
        for (int oc = 0; oc < out_ch_; ++oc)
            grad_b_[oc] += g(r, oc);
    }

    // grad_cols (rows x k) = g x W^T, then scatter back with col2im.
    MatF grad_cols(rows, k, 0.0f);
    for (int r = 0; r < rows; ++r) {
        for (int oc = 0; oc < out_ch_; ++oc) {
            const float gv = g(r, oc);
            if (gv == 0.0f)
                continue;
            for (int kk = 0; kk < k; ++kk)
                grad_cols(r, kk) +=
                    gv * weight_[std::size_t(kk) * out_ch_ + oc];
        }
    }
    Tensor grad_x(input_.n(), input_.c(), input_.h(), input_.w());
    col2im(grad_cols, grad_x, kernel_, stride_, pad_, out_h_, out_w_);
    return grad_x;
}

void
Conv2d::step(float lr, float momentum)
{
    sgdStep(weight_, grad_w_, vel_w_, lr, momentum);
    sgdStep(bias_, grad_b_, vel_b_, lr, momentum);
}

std::vector<std::vector<float> *>
Conv2d::paramBlobs()
{
    return {&weight_, &bias_};
}

// --- Linear ------------------------------------------------------------------

Linear::Linear(int in_features, int out_features, Prng &init)
    : in_f_(in_features), out_f_(out_features)
{
    weight_.assign(std::size_t(in_f_) * out_f_, 0.0f);
    bias_.assign(out_f_, 0.0f);
    grad_w_.assign(weight_.size(), 0.0f);
    grad_b_.assign(bias_.size(), 0.0f);
    vel_w_.assign(weight_.size(), 0.0f);
    vel_b_.assign(bias_.size(), 0.0f);
    initWeights(weight_, in_f_, init);
}

Tensor
Linear::forward(const Tensor &x, const NumericConfig &cfg)
{
    input_ = x;
    in_n_ = x.n();
    in_c_ = x.c();
    in_h_ = x.h();
    in_w_ = x.w();
    const int per_sample = in_c_ * in_h_ * in_w_;
    fatalIf(per_sample != in_f_, "Linear: input feature mismatch");

    MatF a(in_n_, in_f_);
    for (int ni = 0; ni < in_n_; ++ni)
        for (int f = 0; f < in_f_; ++f)
            a(ni, f) = x.raw()[std::size_t(ni) * in_f_ + f];

    MatF wmat(in_f_, out_f_);
    for (int r = 0; r < in_f_; ++r)
        for (int c = 0; c < out_f_; ++c)
            wmat(r, c) = weight_[std::size_t(r) * out_f_ + c];

    const MatF out = gemmWithMode(a, wmat, cfg);
    Tensor y(in_n_, out_f_, 1, 1);
    for (int ni = 0; ni < in_n_; ++ni)
        for (int f = 0; f < out_f_; ++f)
            y.at(ni, f, 0, 0) = out(ni, f) + bias_[f];
    return y;
}

Tensor
Linear::backward(const Tensor &grad_out)
{
    Tensor grad_x(in_n_, in_c_, in_h_, in_w_);
    for (int ni = 0; ni < in_n_; ++ni) {
        const float *xin = &input_.raw()[std::size_t(ni) * in_f_];
        float *gx = &grad_x.raw()[std::size_t(ni) * in_f_];
        for (int o = 0; o < out_f_; ++o) {
            const float gv = grad_out.at(ni, o, 0, 0);
            grad_b_[o] += gv;
            if (gv == 0.0f)
                continue;
            for (int f = 0; f < in_f_; ++f) {
                grad_w_[std::size_t(f) * out_f_ + o] += gv * xin[f];
                gx[f] += gv * weight_[std::size_t(f) * out_f_ + o];
            }
        }
    }
    return grad_x;
}

void
Linear::step(float lr, float momentum)
{
    sgdStep(weight_, grad_w_, vel_w_, lr, momentum);
    sgdStep(bias_, grad_b_, vel_b_, lr, momentum);
}

std::vector<std::vector<float> *>
Linear::paramBlobs()
{
    return {&weight_, &bias_};
}

// --- ReLU / MaxPool ---------------------------------------------------------

Tensor
ReLU::forward(const Tensor &x, const NumericConfig &)
{
    input_ = x;
    Tensor y = x;
    for (auto &v : y.raw())
        v = std::max(v, 0.0f);
    return y;
}

Tensor
ReLU::backward(const Tensor &grad_out)
{
    Tensor g = grad_out;
    for (std::size_t i = 0; i < g.raw().size(); ++i)
        if (input_.raw()[i] <= 0.0f)
            g.raw()[i] = 0.0f;
    return g;
}

Tensor
MaxPool2d::forward(const Tensor &x, const NumericConfig &)
{
    input_ = x;
    out_h_ = x.h() / 2;
    out_w_ = x.w() / 2;
    Tensor y(x.n(), x.c(), out_h_, out_w_);
    argmax_.assign(y.size(), 0);
    std::size_t oi = 0;
    for (int ni = 0; ni < x.n(); ++ni)
        for (int ci = 0; ci < x.c(); ++ci)
            for (int oh = 0; oh < out_h_; ++oh)
                for (int ow = 0; ow < out_w_; ++ow, ++oi) {
                    float best = -1e30f;
                    u32 best_idx = 0;
                    for (int dh = 0; dh < 2; ++dh)
                        for (int dw = 0; dw < 2; ++dw) {
                            const int ih = oh * 2 + dh, iw = ow * 2 + dw;
                            const float v = x.at(ni, ci, ih, iw);
                            if (v > best) {
                                best = v;
                                best_idx = u32(
                                    ((std::size_t(ni) * x.c() + ci) *
                                         x.h() + ih) * x.w() + iw);
                            }
                        }
                    y.at(ni, ci, oh, ow) = best;
                    argmax_[oi] = best_idx;
                }
    return y;
}

Tensor
MaxPool2d::backward(const Tensor &grad_out)
{
    Tensor g(input_.n(), input_.c(), input_.h(), input_.w());
    for (std::size_t i = 0; i < grad_out.size(); ++i)
        g.raw()[argmax_[i]] += grad_out.raw()[i];
    return g;
}

// --- Sequential ---------------------------------------------------------------

Tensor
Sequential::forward(const Tensor &x, const NumericConfig &cfg)
{
    Tensor cur = x;
    for (auto &layer : layers_)
        cur = layer->forward(cur, cfg);
    return cur;
}

Tensor
Sequential::forwardMixed(const Tensor &x,
                         const std::vector<NumericConfig> &configs)
{
    fatalIf(configs.size() != layers_.size(),
            "forwardMixed: one config per sublayer required");
    Tensor cur = x;
    for (std::size_t i = 0; i < layers_.size(); ++i)
        cur = layers_[i]->forward(cur, configs[i]);
    return cur;
}

Tensor
Sequential::forwardMeasuringSparsity(const Tensor &x,
                                     const NumericConfig &cfg,
                                     std::vector<double> *gemm_input_zero_frac)
{
    Tensor cur = x;
    for (auto &layer : layers_) {
        const std::string kind = layer->name();
        if (kind == "conv" || kind == "linear" || kind == "residual")
            gemm_input_zero_frac->push_back(cur.zeroFraction());
        cur = layer->forward(cur, cfg);
    }
    return cur;
}

Tensor
Sequential::backward(const Tensor &grad_out)
{
    Tensor g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

void
Sequential::step(float lr, float momentum)
{
    for (auto &layer : layers_)
        layer->step(lr, momentum);
}

std::vector<std::vector<float> *>
Sequential::paramBlobs()
{
    std::vector<std::vector<float> *> blobs;
    for (auto &layer : layers_)
        for (auto *blob : layer->paramBlobs())
            blobs.push_back(blob);
    return blobs;
}

// --- ResidualBlock -----------------------------------------------------------

ResidualBlock::ResidualBlock(int in_ch, int out_ch, int stride, Prng &init)
{
    body_.add(std::make_unique<Conv2d>(in_ch, out_ch, 3, stride, 1, init));
    body_.add(std::make_unique<ReLU>());
    body_.add(std::make_unique<Conv2d>(out_ch, out_ch, 3, 1, 1, init));
    if (stride != 1 || in_ch != out_ch) {
        projection_ =
            std::make_unique<Conv2d>(in_ch, out_ch, 1, stride, 0, init);
    }
}

Tensor
ResidualBlock::forward(const Tensor &x, const NumericConfig &cfg)
{
    input_ = x;
    Tensor main = body_.forward(x, cfg);
    Tensor shortcut = projection_ ? projection_->forward(x, cfg) : x;
    sum_ = main;
    for (std::size_t i = 0; i < sum_.raw().size(); ++i)
        sum_.raw()[i] += shortcut.raw()[i];
    Tensor y = sum_;
    for (auto &v : y.raw())
        v = std::max(v, 0.0f);
    return y;
}

Tensor
ResidualBlock::backward(const Tensor &grad_out)
{
    Tensor g = grad_out;
    for (std::size_t i = 0; i < g.raw().size(); ++i)
        if (sum_.raw()[i] <= 0.0f)
            g.raw()[i] = 0.0f;

    Tensor grad_main = body_.backward(g);
    if (projection_) {
        Tensor grad_short = projection_->backward(g);
        for (std::size_t i = 0; i < grad_main.raw().size(); ++i)
            grad_main.raw()[i] += grad_short.raw()[i];
    } else {
        for (std::size_t i = 0; i < grad_main.raw().size(); ++i)
            grad_main.raw()[i] += g.raw()[i];
    }
    return grad_main;
}

void
ResidualBlock::step(float lr, float momentum)
{
    body_.step(lr, momentum);
    if (projection_)
        projection_->step(lr, momentum);
}

std::vector<std::vector<float> *>
ResidualBlock::paramBlobs()
{
    auto blobs = body_.paramBlobs();
    if (projection_)
        for (auto *blob : projection_->paramBlobs())
            blobs.push_back(blob);
    return blobs;
}

// --- Loss ----------------------------------------------------------------------

double
softmaxCrossEntropy(const Tensor &logits, const std::vector<int> &labels,
                    Tensor *grad)
{
    const int n = logits.n();
    const int classes = logits.c();
    fatalIf(int(labels.size()) != n, "softmaxCrossEntropy: label count");
    if (grad)
        *grad = Tensor(n, classes, 1, 1);

    double loss = 0.0;
    for (int ni = 0; ni < n; ++ni) {
        float mx = -1e30f;
        for (int c = 0; c < classes; ++c)
            mx = std::max(mx, logits.at(ni, c, 0, 0));
        double denom = 0.0;
        for (int c = 0; c < classes; ++c)
            denom += std::exp(double(logits.at(ni, c, 0, 0)) - mx);
        const double log_denom = std::log(denom);
        const double logit_y = logits.at(ni, labels[ni], 0, 0) - mx;
        loss += log_denom - logit_y;
        if (grad) {
            for (int c = 0; c < classes; ++c) {
                const double p =
                    std::exp(double(logits.at(ni, c, 0, 0)) - mx) / denom;
                grad->at(ni, c, 0, 0) =
                    float((p - (c == labels[ni] ? 1.0 : 0.0)) / n);
            }
        }
    }
    return loss / n;
}

std::vector<int>
argmaxLogits(const Tensor &logits)
{
    std::vector<int> out(logits.n());
    for (int ni = 0; ni < logits.n(); ++ni) {
        int best = 0;
        for (int c = 1; c < logits.c(); ++c)
            if (logits.at(ni, c, 0, 0) > logits.at(ni, best, 0, 0))
                best = c;
        out[ni] = best;
    }
    return out;
}

} // namespace usys
