/**
 * @file
 * SGD training, evaluation under any numeric mode, and weight caching.
 */

#ifndef USYS_DNN_TRAIN_H
#define USYS_DNN_TRAIN_H

#include <string>

#include "dnn/data.h"
#include "dnn/layers.h"

namespace usys {

/** Training hyperparameters. */
struct TrainOpts
{
    int epochs = 8;
    int batch = 32;
    float lr = 0.05f;
    float momentum = 0.9f;
    u64 shuffle_seed = 1;
    bool verbose = false;
};

/** Train a classifier in FP32 with SGD + momentum and cross-entropy. */
void trainClassifier(Layer &model, const Dataset &data,
                     const TrainOpts &opts);

/**
 * Top-1 accuracy of the model on a dataset under a numeric mode.
 *
 * @param max_samples cap on evaluated samples (0 = all)
 */
double evaluateAccuracy(Layer &model, const Dataset &data,
                        const NumericConfig &cfg,
                        std::size_t max_samples = 0);

/** Serialize all parameter blobs to a flat binary file. */
bool saveWeights(Layer &model, const std::string &path);

/** Load parameters saved by saveWeights; false on size mismatch. */
bool loadWeights(Layer &model, const std::string &path);

} // namespace usys

#endif // USYS_DNN_TRAIN_H
