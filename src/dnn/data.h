/**
 * @file
 * Procedural image-classification datasets (DESIGN.md substitution #3).
 *
 * Three difficulty tiers stand in for MNIST / CIFAR10 / ImageNet:
 *  - seven-segment digit glyphs (easy, 10 classes),
 *  - oriented gratings (medium, 10 classes, heavy noise),
 *  - low-contrast composite glyphs (hard, 20 classes, very heavy noise).
 *
 * All generation is deterministic in the seed, so trained models and the
 * Figure 9 accuracy numbers are reproducible.
 */

#ifndef USYS_DNN_DATA_H
#define USYS_DNN_DATA_H

#include <vector>

#include "common/types.h"
#include "dnn/tensor.h"

namespace usys {

/** In-memory labeled image set (single channel, size x size). */
struct Dataset
{
    int classes = 0;
    int size = 0; // square image side
    std::vector<std::vector<float>> images;
    std::vector<int> labels;

    std::size_t count() const { return images.size(); }

    /** Assemble samples [start, start+n) into an (n,1,size,size) batch. */
    Tensor
    batch(std::size_t start, std::size_t n) const
    {
        Tensor t(int(n), 1, size, size);
        for (std::size_t i = 0; i < n; ++i) {
            const auto &img = images[start + i];
            std::copy(img.begin(), img.end(),
                      t.raw().begin() + i * img.size());
        }
        return t;
    }

    /** Labels of samples [start, start+n). */
    std::vector<int>
    batchLabels(std::size_t start, std::size_t n) const
    {
        return {labels.begin() + start, labels.begin() + start + n};
    }
};

/** Easy tier: noisy seven-segment digits, 10 classes (MNIST stand-in). */
Dataset makeDigits(std::size_t count, u64 seed, float noise = 0.25f);

/** Medium tier: noisy oriented gratings, 10 classes (CIFAR stand-in). */
Dataset makeGratings(std::size_t count, u64 seed, float noise = 0.55f);

/**
 * Hard tier: contrast-jittered glyphs at near-glyph-amplitude noise
 * (ImageNet stand-in — FP32 tops out near the paper's ~56% AlexNet tier).
 */
Dataset makeHardGlyphs(std::size_t count, u64 seed, float noise = 0.6f);

} // namespace usys

#endif // USYS_DNN_DATA_H
