#include "dnn/models.h"

namespace usys {

std::unique_ptr<Sequential>
buildCnn4(int classes, u64 seed)
{
    Prng init(seed);
    auto model = std::make_unique<Sequential>();
    model->add(std::make_unique<Conv2d>(1, 8, 3, 1, 1, init));
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<MaxPool2d>());
    model->add(std::make_unique<Conv2d>(8, 16, 3, 1, 1, init));
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<MaxPool2d>());
    model->add(std::make_unique<Linear>(16 * 4 * 4, 48, init));
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<Linear>(48, classes, init));
    return model;
}

std::unique_ptr<Sequential>
buildResLite(int classes, u64 seed)
{
    Prng init(seed);
    auto model = std::make_unique<Sequential>();
    model->add(std::make_unique<Conv2d>(1, 8, 3, 1, 1, init)); // stem
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<ResidualBlock>(8, 8, 1, init));
    model->add(std::make_unique<ResidualBlock>(8, 16, 2, init));
    model->add(std::make_unique<ResidualBlock>(16, 32, 2, init));
    model->add(std::make_unique<Linear>(32 * 4 * 4, classes, init));
    return model;
}

std::unique_ptr<Sequential>
buildAlexLite(int classes, u64 seed)
{
    Prng init(seed);
    auto model = std::make_unique<Sequential>();
    model->add(std::make_unique<Conv2d>(1, 8, 5, 1, 2, init)); // conv1
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<MaxPool2d>());                 // 8x8
    model->add(std::make_unique<Conv2d>(8, 16, 3, 1, 1, init)); // conv2
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<MaxPool2d>());                 // 4x4
    model->add(std::make_unique<Conv2d>(16, 24, 3, 1, 1, init)); // conv3
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<Conv2d>(24, 24, 3, 1, 1, init)); // conv4
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<Conv2d>(24, 16, 3, 1, 1, init)); // conv5
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<MaxPool2d>());                 // 2x2
    model->add(std::make_unique<Linear>(16 * 2 * 2, 64, init)); // fc6
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<Linear>(64, 48, init));        // fc7
    model->add(std::make_unique<ReLU>());
    model->add(std::make_unique<Linear>(48, classes, init));   // fc8
    return model;
}

} // namespace usys
