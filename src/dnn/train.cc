#include "dnn/train.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>

#include "common/prng.h"
#include "common/profiler.h"

namespace usys {

void
trainClassifier(Layer &model, const Dataset &data, const TrainOpts &opts)
{
    USYS_PROF_SCOPE("train.classifier");
    const NumericConfig fp32{NumericMode::Fp32, 8};
    Prng prng(opts.shuffle_seed);
    std::vector<std::size_t> order(data.count());
    std::iota(order.begin(), order.end(), 0);

    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        USYS_PROF_SCOPE("train.epoch");
        // Fisher-Yates shuffle.
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[prng.below(i)]);

        double loss_sum = 0.0;
        std::size_t batches = 0;
        for (std::size_t start = 0; start + opts.batch <= data.count();
             start += opts.batch) {
            Tensor x(opts.batch, 1, data.size, data.size);
            std::vector<int> labels(opts.batch);
            for (int i = 0; i < opts.batch; ++i) {
                const auto &img = data.images[order[start + i]];
                std::copy(img.begin(), img.end(),
                          x.raw().begin() + std::size_t(i) * img.size());
                labels[i] = data.labels[order[start + i]];
            }
            Tensor logits = model.forward(x, fp32);
            Tensor grad;
            loss_sum += softmaxCrossEntropy(logits, labels, &grad);
            model.backward(grad);
            model.step(opts.lr, opts.momentum);
            ++batches;
        }
        if (opts.verbose) {
            std::fprintf(stderr, "epoch %d: loss %.4f\n", epoch,
                         loss_sum / double(batches));
        }
    }
}

double
evaluateAccuracy(Layer &model, const Dataset &data,
                 const NumericConfig &cfg, std::size_t max_samples)
{
    USYS_PROF_SCOPE("train.evaluate");
    const std::size_t total =
        max_samples ? std::min(max_samples, data.count()) : data.count();
    const std::size_t chunk = 64;
    std::size_t correct = 0;
    for (std::size_t start = 0; start < total; start += chunk) {
        const std::size_t n = std::min(chunk, total - start);
        Tensor x = data.batch(start, n);
        const Tensor logits = model.forward(x, cfg);
        const auto preds = argmaxLogits(logits);
        for (std::size_t i = 0; i < n; ++i)
            if (preds[i] == data.labels[start + i])
                ++correct;
    }
    return double(correct) / double(total);
}

bool
saveWeights(Layer &model, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    for (auto *blob : model.paramBlobs()) {
        const u64 n = blob->size();
        out.write(reinterpret_cast<const char *>(&n), sizeof(n));
        out.write(reinterpret_cast<const char *>(blob->data()),
                  std::streamsize(n * sizeof(float)));
    }
    return bool(out);
}

bool
loadWeights(Layer &model, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    for (auto *blob : model.paramBlobs()) {
        u64 n = 0;
        in.read(reinterpret_cast<char *>(&n), sizeof(n));
        if (!in || n != blob->size())
            return false;
        in.read(reinterpret_cast<char *>(blob->data()),
                std::streamsize(n * sizeof(float)));
        if (!in)
            return false;
    }
    return true;
}

} // namespace usys
