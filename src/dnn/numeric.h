/**
 * @file
 * Numeric execution modes for DNN inference (Figure 9 candidates).
 *
 * FP32       reference floating-point model.
 * FxpIres    "FXP-i-res": inputs quantized to n bits, exact binary GEMM
 *            (output resolution 2n).
 * FxpOres    "FXP-o-res": output resolution n bits, i.e. the two GEMM
 *            inputs share n bits between them ((n+1)/2 and n/2).
 * UnaryRate  uSystolic rate-coded unary GEMM at effective bitwidth n
 *            (2^(n-1) multiplication cycles, binary accumulation).
 * UnaryTemporal  same with temporal-coded inputs (no early termination).
 * UgemmH     uGEMM-H bipolar unary GEMM (2^n cycles) — identical
 *            resolution to UnaryRate, double the hardware/latency.
 * TubGemm    tubGEMM: temporal-unary activation x binary weight, exact
 *            n-bit products (2^(n-1) cycles).
 * TuGemm     tuGEMM: fully temporal unary, exact n-bit products
 *            (2^(2(n-1)) cycles).
 */

#ifndef USYS_DNN_NUMERIC_H
#define USYS_DNN_NUMERIC_H

#include <string>

#include "common/logging.h"

namespace usys {

/** Arithmetic used for every GEMM in the network. */
enum class NumericMode
{
    Fp32,
    FxpIres,
    FxpOres,
    UnaryRate,
    UnaryTemporal,
    UgemmH,
    TubGemm,
    TuGemm,
};

/** Mode plus effective bitwidth (EBT) n. */
struct NumericConfig
{
    NumericMode mode = NumericMode::Fp32;
    int ebt = 8;

    void
    check() const
    {
        if (mode != NumericMode::Fp32)
            fatalIf(ebt < 2 || ebt > 12, "NumericConfig: EBT out of range");
    }

    std::string
    name() const
    {
        switch (mode) {
          case NumericMode::Fp32: return "FP32";
          case NumericMode::FxpIres:
            return "FXP-i-res-" + std::to_string(ebt);
          case NumericMode::FxpOres:
            return "FXP-o-res-" + std::to_string(ebt);
          case NumericMode::UnaryRate:
            return "uSystolic-rate-" + std::to_string(ebt);
          case NumericMode::UnaryTemporal:
            return "uSystolic-temporal-" + std::to_string(ebt);
          case NumericMode::UgemmH:
            return "uGEMM-H-" + std::to_string(ebt);
          case NumericMode::TubGemm:
            return "tubGEMM-" + std::to_string(ebt);
          case NumericMode::TuGemm:
            return "tuGEMM-" + std::to_string(ebt);
        }
        return "?";
    }
};

} // namespace usys

#endif // USYS_DNN_NUMERIC_H
