#include "dnn/data.h"

#include <cmath>

#include "common/prng.h"

namespace usys {

namespace {

constexpr int kImageSize = 16;

/** Seven-segment encodings for digits 0-9 (bit order: a b c d e f g). */
const u8 kSegments[10] = {
    0b1111110, // 0: a b c d e f
    0b0110000, // 1: b c
    0b1101101, // 2: a b d e g
    0b1111001, // 3: a b c d g
    0b0110011, // 4: b c f g
    0b1011011, // 5: a c d f g
    0b1011111, // 6: a c d e f g
    0b1110000, // 7: a b c
    0b1111111, // 8
    0b1111011, // 9: a b c d f g
};

/** Draw one segment of a 7-segment digit into a size x size canvas. */
void
drawSegment(std::vector<float> &img, int seg, int ox, int oy, int scale)
{
    // Geometry on a (2*scale+3) tall x (scale+2) wide box.
    auto put = [&](int x, int y) {
        if (x >= 0 && x < kImageSize && y >= 0 && y < kImageSize)
            img[std::size_t(y) * kImageSize + x] = 1.0f;
    };
    const int w = scale + 2, h = scale + 1;
    switch (seg) {
      case 0: // a: top horizontal
        for (int x = 1; x < w; ++x)
            put(ox + x, oy);
        break;
      case 1: // b: top-right vertical
        for (int y = 0; y <= h; ++y)
            put(ox + w, oy + y);
        break;
      case 2: // c: bottom-right vertical
        for (int y = h; y <= 2 * h; ++y)
            put(ox + w, oy + y);
        break;
      case 3: // d: bottom horizontal
        for (int x = 1; x < w; ++x)
            put(ox + x, oy + 2 * h);
        break;
      case 4: // e: bottom-left vertical
        for (int y = h; y <= 2 * h; ++y)
            put(ox, oy + y);
        break;
      case 5: // f: top-left vertical
        for (int y = 0; y <= h; ++y)
            put(ox, oy + y);
        break;
      case 6: // g: middle horizontal
        for (int x = 1; x < w; ++x)
            put(ox + x, oy + h);
        break;
    }
}

std::vector<float>
renderDigit(int digit, int ox, int oy, int scale)
{
    std::vector<float> img(kImageSize * kImageSize, 0.0f);
    for (int seg = 0; seg < 7; ++seg)
        if ((kSegments[digit] >> (6 - seg)) & 1)
            drawSegment(img, seg, ox, oy, scale);
    return img;
}

void
addNoise(std::vector<float> &img, Prng &prng, float noise)
{
    for (auto &v : img)
        v += float(prng.gaussian()) * noise;
}

} // namespace

Dataset
makeDigits(std::size_t count, u64 seed, float noise)
{
    Prng prng(seed);
    Dataset ds;
    ds.classes = 10;
    ds.size = kImageSize;
    for (std::size_t i = 0; i < count; ++i) {
        const int digit = int(prng.below(10));
        const int scale = 3 + int(prng.below(3));
        const int ox = 2 + int(prng.below(u64(kImageSize - scale - 6)));
        const int oy = 1 + int(prng.below(u64(kImageSize - 2 * scale - 5)));
        auto img = renderDigit(digit, ox, oy, scale);
        addNoise(img, prng, noise);
        ds.images.push_back(std::move(img));
        ds.labels.push_back(digit);
    }
    return ds;
}

Dataset
makeGratings(std::size_t count, u64 seed, float noise)
{
    Prng prng(seed);
    Dataset ds;
    ds.classes = 10;
    ds.size = kImageSize;
    for (std::size_t i = 0; i < count; ++i) {
        // 5 orientations x 2 spatial frequencies.
        const int label = int(prng.below(10));
        const double theta = (label % 5) * M_PI / 5.0;
        const double freq = (label / 5 == 0) ? 0.35 : 0.8;
        const double phase = prng.uniform(0.0, 2.0 * M_PI);
        std::vector<float> img(kImageSize * kImageSize);
        for (int y = 0; y < kImageSize; ++y)
            for (int x = 0; x < kImageSize; ++x) {
                const double u =
                    x * std::cos(theta) + y * std::sin(theta);
                img[std::size_t(y) * kImageSize + x] =
                    float(std::sin(freq * u * 2.0 + phase));
            }
        addNoise(img, prng, noise);
        ds.images.push_back(std::move(img));
        ds.labels.push_back(label);
    }
    return ds;
}

Dataset
makeHardGlyphs(std::size_t count, u64 seed, float noise)
{
    Prng prng(seed);
    Dataset ds;
    ds.classes = 10;
    ds.size = kImageSize;
    for (std::size_t i = 0; i < count; ++i) {
        // Digit glyphs under contrast jitter and near-glyph-amplitude
        // noise: the SNR is tuned so an FP32 AlexLite tops out near the
        // paper's AlexNet-on-ImageNet accuracy tier (~56%).
        const int digit = int(prng.below(10));
        const int scale = 3 + int(prng.below(3));
        const int ox = 2 + int(prng.below(u64(kImageSize - scale - 6)));
        const int oy = 1 + int(prng.below(u64(kImageSize - 2 * scale - 5)));
        auto img = renderDigit(digit, ox, oy, scale);
        const float contrast = 0.7f + 0.3f * float(prng.uniform());
        for (auto &v : img)
            v *= contrast;
        addNoise(img, prng, noise);
        ds.images.push_back(std::move(img));
        ds.labels.push_back(digit);
    }
    return ds;
}

} // namespace usys
