/**
 * @file
 * Fixed-point quantization and sign-magnitude helpers.
 *
 * uSystolic operates on signed fixed-point data in sign-magnitude format:
 * an N-bit signed datum carries a sign bit and an (N-1)-bit magnitude, so
 * the unary bitstream length for the magnitude is 2^(N-1).
 */

#ifndef USYS_COMMON_FIXED_POINT_H
#define USYS_COMMON_FIXED_POINT_H

#include <algorithm>
#include <cmath>

#include "common/types.h"

namespace usys {

/** A signed value decomposed into sign and magnitude. */
struct SignMag
{
    bool negative = false;
    u32 magnitude = 0;

    /** Reassemble the signed value. */
    i32 toSigned() const { return negative ? -i32(magnitude) : i32(magnitude); }
};

/** Decompose a signed integer into sign-magnitude form. */
inline SignMag
toSignMag(i32 value)
{
    SignMag sm;
    sm.negative = value < 0;
    sm.magnitude = u32(sm.negative ? -i64(value) : i64(value));
    return sm;
}

/** Largest magnitude representable by an n-bit signed sign-magnitude datum. */
inline i32
maxMagnitude(int bits)
{
    return (1 << (bits - 1)) - 1;
}

/**
 * Quantize a real value to an n-bit signed integer under the given scale.
 *
 * @param value real input
 * @param scale real value represented by one LSB
 * @param bits total signed bitwidth (sign + magnitude)
 * @return integer code clamped to [-maxMagnitude, +maxMagnitude]
 */
inline i32
quantize(double value, double scale, int bits)
{
    const i32 max_mag = maxMagnitude(bits);
    i32 q = i32(std::lround(value / scale));
    return std::clamp(q, -max_mag, max_mag);
}

/** Reconstruct the real value of an integer code under the given scale. */
inline double
dequantize(i32 code, double scale)
{
    return code * scale;
}

/**
 * Choose a symmetric quantization scale so that max_abs maps near full
 * scale of an n-bit signed code.
 */
inline double
symmetricScale(double max_abs, int bits)
{
    const i32 max_mag = maxMagnitude(bits);
    if (max_abs <= 0.0)
        return 1.0;
    return max_abs / max_mag;
}

/**
 * Round a scale up to the nearest power of two. uSystolic's early
 * termination rescales by shifting (Section III-C), so power-of-two scales
 * model the hardware exactly.
 */
inline double
pow2Scale(double scale)
{
    if (scale <= 0.0)
        return 1.0;
    return std::exp2(std::ceil(std::log2(scale)));
}

} // namespace usys

#endif // USYS_COMMON_FIXED_POINT_H
