/**
 * @file
 * Crash-safe shard checkpointing for long-running sweeps.
 *
 * A ShardCheckpoint is a tiny key -> payload store persisted after every
 * completed shard via the atomic writeTextFile() (write-temp-then-rename),
 * so a sweep killed at any instant leaves either the previous complete
 * checkpoint or the new complete checkpoint on disk — never a torn file.
 * On --resume the driver loads the store, restores the recorded shard
 * results verbatim, and recomputes only the missing shards; because
 * payloads round-trip doubles by their exact u64 bit pattern, a resumed
 * sweep's merged artifact is byte-identical to an uninterrupted run.
 *
 * File format (line-oriented, no JSON parser needed):
 *
 *     usys-checkpoint v2 crc32c=xxxxxxxx bytes=NNN
 *     <key>\t<payload>
 *     ...
 *
 * The header carries a CRC32C and byte count of everything after the
 * header line, so truncation, bit flips, wrong-magic and old-version
 * files are all detected at load. A corrupt checkpoint is never
 * restored: it is quarantined to `<path>.corrupt` (preserving the
 * evidence for inspection), a warning is logged, and the run proceeds
 * as a cold start. Keys and payloads must not contain tabs or newlines
 * (enforced).
 */

#ifndef USYS_COMMON_CHECKPOINT_H
#define USYS_COMMON_CHECKPOINT_H

#include <map>
#include <string>

#include "common/types.h"

namespace usys {

class ShardCheckpoint
{
  public:
    /** @param path checkpoint file; empty = checkpointing disabled. */
    explicit ShardCheckpoint(std::string path);

    bool enabled() const { return !path_.empty(); }

    /**
     * Load an existing checkpoint file. Missing file is fine (fresh
     * start). A corrupt file (truncated, bit-flipped, wrong magic,
     * old version) must not silently restore garbage shard results:
     * it is moved aside to `<path>.corrupt`, a warning is logged, and
     * the store stays empty — the caller recomputes from scratch.
     */
    void load();

    /** True iff the last load() quarantined a corrupt file. */
    bool quarantined() const { return quarantined_; }

    bool has(const std::string &key) const;

    /** Payload for `key`, or the empty string when absent. */
    const std::string &find(const std::string &key) const;

    /**
     * Record a completed shard and persist the whole store atomically.
     * No-op when disabled. Re-recording a key overwrites it.
     */
    void record(const std::string &key, const std::string &payload);

    std::size_t size() const { return entries_.size(); }
    const std::string &path() const { return path_; }

    /** All entries (key -> payload), for consumers that restore in bulk. */
    const std::map<std::string, std::string> &entries() const
    {
        return entries_;
    }

    /**
     * Replace the whole store and persist it once. The batch form of
     * record() for callers (the serve result cache) that accumulate
     * entries in memory and flush on shutdown — per-entry record()
     * would rewrite the file once per entry.
     */
    void replaceAll(std::map<std::string, std::string> entries);

    // --- Payload field packing --------------------------------------
    // Doubles travel as their 16-hex-digit IEEE-754 bit pattern, so
    // restore-then-merge reproduces the uninterrupted run bit for bit
    // (decimal round-tripping would not).
    static std::string packDouble(double v);
    static double unpackDouble(const std::string &s);
    static std::string packU64(u64 v);
    static u64 unpackU64(const std::string &s);

  private:
    void persist() const;
    void quarantine(const std::string &why);

    std::string path_;
    std::map<std::string, std::string> entries_;
    bool quarantined_ = false;
};

} // namespace usys

#endif // USYS_COMMON_CHECKPOINT_H
