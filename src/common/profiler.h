/**
 * @file
 * Hierarchical scoped wall-time profiler.
 *
 * `USYS_PROF_SCOPE("name")` drops an RAII frame onto the calling
 * thread's call-tree: every distinct (parent path, name) pair becomes
 * one node accumulating call count and inclusive steady_clock
 * nanoseconds. Trees are thread-local (no synchronization on the hot
 * path); at dump time every thread's tree is merged by name into one
 * deterministic tree with exclusive times derived as
 * `incl - sum(children incl)`.
 *
 * Executor integration keeps the merged tree shape independent of the
 * thread count: when a worker executes chunks of a parallel region, its
 * frames attach under an *anchor* — a replica of the calling thread's
 * scope path at region entry (created with zero calls / zero time).
 * Merging by name then lands worker frames exactly where the serial run
 * would have put them, so names and call counts are identical at
 * `--threads 1` and `--threads N`; only the times differ.
 *
 * Profiling is off by default: a disabled scope costs one relaxed
 * atomic load and a branch. It is enabled by the bench CLI when
 * `--profile-json` / `--profile-collapsed` is given, and force-on/off
 * via the `USYS_PROFILE` environment variable (see common/cli.h).
 * Results serialize as a nested JSON tree and as Brendan-Gregg
 * collapsed-stack lines (`a;b;c <exclusive_ns>`) that standard
 * flamegraph tools consume directly.
 *
 * Scope discipline (DESIGN.md §12): instrument phases worth >= ~10 us
 * (folds, tiles, layers, epochs), not per-MAC inner loops — an enabled
 * scope costs ~100 ns (two clock reads plus a child lookup).
 *
 * Thread-safety contract: push/pop are wait-free on thread-local state;
 * registration of a new thread's tree takes a mutex once per thread.
 * merged()/json()/collapsed()/reset() must run while the profiled
 * threads are quiescent (after parallel regions have joined) — the
 * executor's join provides the happens-before edge for worker frames.
 */

#ifndef USYS_COMMON_PROFILER_H
#define USYS_COMMON_PROFILER_H

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/types.h"

namespace usys {

class Profiler
{
  public:
    /** Process-wide profiler used by USYS_PROF_SCOPE. */
    static Profiler &global();

    /** Turn scope recording on/off; enabling (re)starts the wall clock
     *  that wallNs() and the dump coverage ratio are measured against. */
    void setEnabled(bool on);
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Open a frame named `name` under the calling thread's current
     *  frame. The pointed-to string must outlive the profiler (string
     *  literals; intern() for dynamic names). */
    void push(const char *name);
    /** Close the calling thread's innermost frame. */
    void pop();

    /** Copy a dynamic name into profiler-lifetime storage. */
    const char *intern(const std::string &name);

    // --- Executor integration -----------------------------------------
    /** Scope path (root -> current) of the calling thread. */
    std::vector<const char *> currentPath() const;
    /**
     * Re-root the calling worker thread's frames under a replica of
     * `path` (the region caller's path). Idempotent per `region_id`:
     * repeated calls with the same id are no-ops, so the executor can
     * apply it per chunk without rebuilding.
     */
    void applyWorkerAnchor(const std::vector<const char *> &path,
                           u64 region_id);

    /** Width of the profiled window: enable to now while enabled,
     *  enable to the last disable afterwards; 0 before any enable. */
    u64 wallNs() const;

    /** Merged call-tree, children sorted by name (deterministic). */
    struct MergedNode
    {
        std::string name;
        u64 calls = 0;
        u64 incl_ns = 0;
        u64 excl_ns = 0; // incl - sum(children incl), clamped at 0
        std::vector<MergedNode> children;
    };
    /** Synthetic root ("root", incl = wallNs()) over the merged trees.
     *  Quiescence required (see file comment). */
    MergedNode merged() const;

    /** Nested-tree JSON document ({bench, schema_version, wall_ns,
     *  threads, root}). */
    std::string json(const std::string &bench) const;
    /** Collapsed-stack lines ("a;b;c <exclusive_ns>"), sorted. */
    std::string collapsed() const;
    bool writeJsonFile(const std::string &path,
                       const std::string &bench) const;
    bool writeCollapsedFile(const std::string &path) const;

    /**
     * Structure-only rendering ("name calls" per line, indented,
     * children sorted by name): the thread-count-invariant part of the
     * tree, used by determinism tests.
     */
    std::string signature() const;

    /** Drop all recorded frames and anchors (quiescence required). */
    void reset();

    /** Number of thread trees registered (diagnostics/tests). */
    std::size_t threadCount() const;

  private:
    Profiler() = default;

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point enable_time_{};
    std::chrono::steady_clock::time_point disable_time_{};
};

/** RAII frame for USYS_PROF_SCOPE; records only if profiling was
 *  enabled at construction (so toggles mid-scope stay balanced). */
class ProfScope
{
  public:
    explicit ProfScope(const char *name)
        : active_(Profiler::global().enabled())
    {
        if (active_)
            Profiler::global().push(name);
    }
    ~ProfScope()
    {
        if (active_)
            Profiler::global().pop();
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    const bool active_;
};

#define USYS_PROF_CONCAT2(a, b) a##b
#define USYS_PROF_CONCAT(a, b) USYS_PROF_CONCAT2(a, b)
/** Time this scope under `name` in the process-wide profiler. */
#define USYS_PROF_SCOPE(name) \
    ::usys::ProfScope USYS_PROF_CONCAT(usys_prof_scope_, __LINE__)(name)

} // namespace usys

#endif // USYS_COMMON_PROFILER_H
