/**
 * @file
 * Fixed-width integer aliases used throughout the library.
 */

#ifndef USYS_COMMON_TYPES_H
#define USYS_COMMON_TYPES_H

#include <cstdint>
#include <cstddef>

namespace usys {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulation cycle count. */
using Cycles = std::uint64_t;

} // namespace usys

#endif // USYS_COMMON_TYPES_H
