#include "common/socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace usys {

namespace {

void
setError(std::string *error, const char *what)
{
    if (error)
        *error = std::string(what) + ": " + std::strerror(errno);
}

sockaddr_in
loopbackAddr(u16 port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return addr;
}

} // namespace

void
Socket::close()
{
    const int fd = release();
    if (fd >= 0)
        ::close(fd);
}

bool
Socket::setIoTimeoutMs(u64 ms)
{
    timeval tv{};
    tv.tv_sec = time_t(ms / 1000);
    tv.tv_usec = suseconds_t((ms % 1000) * 1000);
    if (::setsockopt(fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
        return false;
    return ::setsockopt(fd(), SOL_SOCKET, SO_SNDTIMEO, &tv,
                        sizeof(tv)) == 0;
}

bool
Socket::sendAll(const void *data, std::size_t n)
{
    timed_out_ = false;
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as
        // an error on this connection, not SIGPIPE the whole daemon.
        const ssize_t sent = ::send(fd(), p, n, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            // SO_SNDTIMEO expiry: the peer stopped draining its side.
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                timed_out_ = true;
            return false;
        }
        p += sent;
        n -= std::size_t(sent);
    }
    return true;
}

bool
Socket::recvAll(void *data, std::size_t n)
{
    timed_out_ = false;
    char *p = static_cast<char *>(data);
    while (n > 0) {
        const ssize_t got = ::recv(fd(), p, n, 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            // SO_RCVTIMEO expiry: the peer went silent mid-message.
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                timed_out_ = true;
            return false;
        }
        if (got == 0)
            return false; // EOF mid-buffer
        p += got;
        n -= std::size_t(got);
    }
    return true;
}

bool
Socket::sendFrame(const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    // Header and payload go out in ONE send: a separate 4-byte segment
    // followed by the body triggers the Nagle / delayed-ACK interaction
    // (~40 ms per round trip) whenever the peer missed TCP_NODELAY.
    const u32 len = u32(payload.size());
    std::string frame;
    frame.reserve(4 + payload.size());
    frame.push_back(char(len & 0xFF));
    frame.push_back(char((len >> 8) & 0xFF));
    frame.push_back(char((len >> 16) & 0xFF));
    frame.push_back(char((len >> 24) & 0xFF));
    frame.append(payload);
    return sendAll(frame.data(), frame.size());
}

bool
Socket::recvFrame(std::string &payload, bool *eof)
{
    if (eof)
        *eof = false;
    timed_out_ = false;
    u8 header[4];
    // Peer closing cleanly between frames shows up as EOF on the very
    // first header byte; report it distinctly so connection loops can
    // exit without logging an error.
    char *p = reinterpret_cast<char *>(header);
    std::size_t need = 4;
    while (need > 0) {
        const ssize_t got = ::recv(fd(), p, need, 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                timed_out_ = true;
            return false;
        }
        if (got == 0) {
            if (eof && need == 4)
                *eof = true;
            return false;
        }
        p += got;
        need -= std::size_t(got);
    }
    const u32 len = u32(header[0]) | (u32(header[1]) << 8) |
                    (u32(header[2]) << 16) | (u32(header[3]) << 24);
    if (len > kMaxFrameBytes)
        return false;
    payload.resize(len);
    return len == 0 || recvAll(payload.data(), len);
}

bool
Listener::open(u16 port, std::string *error)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) {
        setError(error, "socket");
        return false;
    }
    const int one = 1;
    if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one)) != 0) {
        setError(error, "setsockopt(SO_REUSEADDR)");
        return false;
    }
    sockaddr_in addr = loopbackAddr(port);
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setError(error, "bind");
        return false;
    }
    if (::listen(sock.fd(), 512) != 0) {
        setError(error, "listen");
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0) {
        setError(error, "getsockname");
        return false;
    }
    sock_ = std::move(sock);
    port_ = ntohs(bound.sin_port);
    return true;
}

Socket
Listener::accept(int *err_out)
{
    if (err_out)
        *err_out = 0;
    for (;;) {
        const int fd = ::accept(sock_.fd(), nullptr, nullptr);
        if (fd >= 0) {
            const int one = 1;
            // Mirror connectLoopback(): responses must not sit in the
            // Nagle buffer waiting for the client's delayed ACK.
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            return Socket(fd);
        }
        if (errno == EINTR)
            continue;
        if (err_out)
            *err_out = errno;
        return Socket();
    }
}

void
Listener::close()
{
    // shutdown() first: it reliably unblocks a thread parked in
    // accept() on Linux, where a bare close() can leave it sleeping.
    if (sock_.valid())
        ::shutdown(sock_.fd(), SHUT_RDWR);
    sock_.close();
}

Socket
connectLoopback(u16 port, std::string *error)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) {
        setError(error, "socket");
        return Socket();
    }
    sockaddr_in addr = loopbackAddr(port);
    for (;;) {
        if (::connect(sock.fd(),
                      reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            break;
        if (errno == EINTR)
            continue;
        setError(error, "connect");
        return Socket();
    }
    const int one = 1;
    // Latency-sensitive request/response pairs; never batch under Nagle.
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
}

} // namespace usys
