#include "common/event_trace.h"

#include "common/json.h"
#include "common/logging.h"

namespace usys {

EventTrace &
EventTrace::global()
{
    static EventTrace trace;
    return trace;
}

int
EventTrace::track(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = track_ids_.find(name);
    if (it != track_ids_.end())
        return it->second;
    const int tid = int(track_names_.size());
    track_ids_.emplace(name, tid);
    track_names_.push_back(name);
    cursors_.push_back(0.0);
    return tid;
}

bool
EventTrace::push(Event &&e)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= kMaxEvents) {
        ++dropped_;
        return false;
    }
    events_.push_back(std::move(e));
    return true;
}

namespace {

std::string
encodeArgs(const std::vector<TraceArg> &args)
{
    if (args.empty())
        return "";
    std::string out;
    for (const auto &[key, val] : args) {
        if (!out.empty())
            out += ',';
        out += "\"" + jsonEscape(key) + "\":" + jsonNumber(val);
    }
    return out;
}

} // namespace

void
EventTrace::complete(int tid, const std::string &name,
                     const std::string &cat, double ts_us, double dur_us,
                     const std::vector<TraceArg> &args)
{
    if (!enabled_)
        return;
    push({'X', tid, name, cat, ts_us, dur_us, encodeArgs(args)});
}

void
EventTrace::instant(int tid, const std::string &name,
                    const std::string &cat, double ts_us)
{
    if (!enabled_)
        return;
    push({'i', tid, name, cat, ts_us, 0.0, ""});
}

void
EventTrace::counter(int tid, const std::string &name, double ts_us,
                    double value)
{
    if (!enabled_)
        return;
    push({'C', tid, name, "counter", ts_us, 0.0,
          "\"value\":" + jsonNumber(value)});
}

double
EventTrace::advance(int tid, double dur_us)
{
    std::lock_guard<std::mutex> lock(mu_);
    panicIf(tid < 0 || std::size_t(tid) >= cursors_.size(),
            "EventTrace: unknown track id");
    const double start = cursors_[std::size_t(tid)];
    cursors_[std::size_t(tid)] = start + dur_us;
    return start;
}

double
EventTrace::cursor(int tid) const
{
    std::lock_guard<std::mutex> lock(mu_);
    panicIf(tid < 0 || std::size_t(tid) >= cursors_.size(),
            "EventTrace: unknown track id");
    return cursors_[std::size_t(tid)];
}

std::string
EventTrace::json() const
{
    std::lock_guard<std::mutex> lock(mu_);
    JsonWriter w;
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.beginArray("traceEvents");

    // Track-name metadata first so viewers label the rows.
    for (std::size_t tid = 0; tid < track_names_.size(); ++tid) {
        w.beginObject();
        w.field("ph", "M");
        w.field("pid", 0);
        w.field("tid", u64(tid));
        w.field("name", "thread_name");
        w.fieldRaw("args", "{\"name\": \"" +
                               jsonEscape(track_names_[tid]) + "\"}");
        w.endObject();
    }

    for (const Event &e : events_) {
        w.beginObject();
        w.field("ph", std::string(1, e.ph));
        w.field("pid", 0);
        w.field("tid", e.tid);
        w.field("name", e.name);
        if (!e.cat.empty())
            w.field("cat", e.cat);
        w.field("ts", e.ts_us);
        if (e.ph == 'X')
            w.field("dur", e.dur_us);
        if (e.ph == 'i')
            w.field("s", "t"); // instant scope: thread
        if (!e.args_json.empty())
            w.fieldRaw("args", "{" + e.args_json + "}");
        w.endObject();
    }

    w.endArray();
    w.endObject();
    return w.str();
}

bool
EventTrace::writeFile(const std::string &path) const
{
    if (dropped_ > 0) {
        warn("event trace: " + std::to_string(dropped_) +
             " events dropped (buffer cap " +
             std::to_string(kMaxEvents) + ")");
    }
    return writeTextFile(path, json() + "\n");
}

void
EventTrace::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    track_ids_.clear();
    track_names_.clear();
    cursors_.clear();
    dropped_ = 0;
}

std::size_t
EventTrace::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

double
hostTimeUs()
{
    static const auto start = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

ScopedTimer::ScopedTimer(const std::string &name, const std::string &cat,
                         EventTrace &trace)
    : trace_(trace), name_(name), cat_(cat),
      active_(trace.enabled())
{
    if (active_)
        start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer()
{
    if (!active_)
        return;
    const double dur =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start_)
            .count();
    const double end = hostTimeUs();
    trace_.complete(trace_.track("host"), name_, cat_, end - dur, dur);
}

} // namespace usys
