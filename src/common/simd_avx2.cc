/**
 * @file
 * AVX2 implementations of the SimdKernels table.
 *
 * This translation unit — and only this one — is compiled with -mavx2
 * (see src/common/CMakeLists.txt); nothing here is reachable unless
 * runtime CPUID dispatch selected the table, so the default binary
 * still runs on baseline x86-64. Without compiler AVX2 support the
 * file degrades to a stub returning nullptr.
 *
 * Bit-exactness notes:
 *  - popcounts / comparisons / widening multiplies are exact integer
 *    operations; only the summation order differs, and integer sums
 *    are order-free.
 *  - the fp32 kernel issues exactly one vmulps and one vaddps per
 *    element (never an FMA; -ffp-contract=off on this TU), matching
 *    the generic loop's rounding per element.
 */

#include "common/simd.h"

#if defined(USYS_HAVE_AVX2)

#include <bit>
#include <immintrin.h>

namespace usys {
namespace {

/** Per-64-bit-lane popcount of a 256-bit vector (vpshufb nibble LUT). */
inline __m256i
popcount256(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    // Horizontal byte sums per 64-bit lane.
    return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/** Carry-save adder step: (h, l) = a + b + c in bit-sliced form. */
inline void
csa(__m256i &h, __m256i &l, __m256i a, __m256i b, __m256i c)
{
    const __m256i u = _mm256_xor_si256(a, b);
    h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
    l = _mm256_xor_si256(u, c);
}

inline u64
hsum256(__m256i v)
{
    alignas(32) u64 lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), v);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

/**
 * Harley-Seal bulk popcount: a carry-save adder tree folds 16 vectors
 * (64 words) per round into one vector counted at 1/16 weight, cutting
 * the shuffle/sad work 16x for the bulk of the data.
 */
u64
popcountWordsAvx2(const u64 *words, std::size_t n)
{
    const __m256i *v = reinterpret_cast<const __m256i *>(words);
    const std::size_t nvec = n / 4;

    __m256i total = _mm256_setzero_si256();
    __m256i ones = _mm256_setzero_si256();
    __m256i twos = _mm256_setzero_si256();
    __m256i fours = _mm256_setzero_si256();
    __m256i eights = _mm256_setzero_si256();

    std::size_t i = 0;
    for (; i + 16 <= nvec; i += 16) {
        __m256i twosA, twosB, foursA, foursB, eightsA, eightsB, sixteens;
        csa(twosA, ones, ones, _mm256_loadu_si256(v + i + 0),
            _mm256_loadu_si256(v + i + 1));
        csa(twosB, ones, ones, _mm256_loadu_si256(v + i + 2),
            _mm256_loadu_si256(v + i + 3));
        csa(foursA, twos, twos, twosA, twosB);
        csa(twosA, ones, ones, _mm256_loadu_si256(v + i + 4),
            _mm256_loadu_si256(v + i + 5));
        csa(twosB, ones, ones, _mm256_loadu_si256(v + i + 6),
            _mm256_loadu_si256(v + i + 7));
        csa(foursB, twos, twos, twosA, twosB);
        csa(eightsA, fours, fours, foursA, foursB);
        csa(twosA, ones, ones, _mm256_loadu_si256(v + i + 8),
            _mm256_loadu_si256(v + i + 9));
        csa(twosB, ones, ones, _mm256_loadu_si256(v + i + 10),
            _mm256_loadu_si256(v + i + 11));
        csa(foursA, twos, twos, twosA, twosB);
        csa(twosA, ones, ones, _mm256_loadu_si256(v + i + 12),
            _mm256_loadu_si256(v + i + 13));
        csa(twosB, ones, ones, _mm256_loadu_si256(v + i + 14),
            _mm256_loadu_si256(v + i + 15));
        csa(foursB, twos, twos, twosA, twosB);
        csa(eightsB, fours, fours, foursA, foursB);
        csa(sixteens, eights, eights, eightsA, eightsB);
        total = _mm256_add_epi64(total, popcount256(sixteens));
    }

    total = _mm256_slli_epi64(total, 4);
    total = _mm256_add_epi64(total,
                             _mm256_slli_epi64(popcount256(eights), 3));
    total = _mm256_add_epi64(total,
                             _mm256_slli_epi64(popcount256(fours), 2));
    total = _mm256_add_epi64(total,
                             _mm256_slli_epi64(popcount256(twos), 1));
    total = _mm256_add_epi64(total, popcount256(ones));

    for (; i < nvec; ++i)
        total = _mm256_add_epi64(total,
                                 popcount256(_mm256_loadu_si256(v + i)));
    u64 sum = hsum256(total);
    for (std::size_t w = nvec * 4; w < n; ++w)
        sum += u64(std::popcount(words[w]));
    return sum;
}

void
thresholdPackWordsAvx2(const u32 *values, u32 n, u32 threshold, u64 *out)
{
    // Unsigned compare via the sign-flip trick; vmovmskps yields one
    // bit per 32-bit lane in lane order, matching the little-endian
    // stream packing.
    const __m256i flip = _mm256_set1_epi32(i32(0x80000000u));
    const __m256i thr =
        _mm256_xor_si256(_mm256_set1_epi32(i32(threshold)), flip);
    u32 k = 0;
    u32 w = 0;
    for (; k + 64 <= n; k += 64, ++w) {
        u64 word = 0;
        for (u32 j = 0; j < 64; j += 8) {
            __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(values + k + j));
            v = _mm256_xor_si256(v, flip);
            const __m256i lt = _mm256_cmpgt_epi32(thr, v);
            const u32 mask =
                u32(_mm256_movemask_ps(_mm256_castsi256_ps(lt)));
            word |= u64(mask) << j;
        }
        out[w] = word;
    }
    if (k < n) {
        u64 word = 0;
        for (u32 j = 0; k + j < n; ++j)
            word |= u64(values[k + j] < threshold) << j;
        out[w] = word;
    }
}

void
prefixPopcountAvx2(const u64 *words, u32 nwords, u32 *prefix)
{
    // Two-pass block-offset scheme. Pass 1 stores the independent
    // per-word counts (nibble-LUT popcounts, narrowed to u32) into the
    // prefix slots with no serial dependency at all; pass 2 turns them
    // into the running prefix with an 8-lane in-register scan (three
    // log-step shifted adds + a cross-half fixup) instead of the old
    // one-word-at-a-time scalar carry. Blocks keep the count slab
    // L1-resident between the passes.
    constexpr u32 kBlock = 4096;
    const __m256i even =
        _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6); // u64 -> u32 lanes
    const __m256i bcast3 = _mm256_set1_epi32(3);
    prefix[0] = 0;
    u32 run = 0;
    for (u32 base = 0; base < nwords; base += kBlock) {
        const u32 hi = std::min(nwords, base + kBlock);
        u32 w = base;
        for (; w + 8 <= hi; w += 8) {
            // Counts of words w..w+7 as eight u32 lanes: two 4-word
            // popcounts, each narrowed via an even-lane permute.
            const __m256i c0 = popcount256(_mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(words + w)));
            const __m256i c1 = popcount256(_mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(words + w + 4)));
            const __m128i n0 = _mm256_castsi256_si128(
                _mm256_permutevar8x32_epi32(c0, even));
            const __m128i n1 = _mm256_castsi256_si128(
                _mm256_permutevar8x32_epi32(c1, even));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(prefix + w + 1),
                _mm256_set_m128i(n1, n0));
        }
        for (; w < hi; ++w)
            prefix[w + 1] = u32(std::popcount(words[w]));

        w = base;
        for (; w + 8 <= hi; w += 8) {
            __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(prefix + w + 1));
            // In-lane inclusive scan (each 128-bit half independently).
            x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
            x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
            // Add the low half's total (lane 3) into the upper half.
            const __m256i low_total =
                _mm256_permutevar8x32_epi32(x, bcast3);
            x = _mm256_add_epi32(
                x, _mm256_blend_epi32(_mm256_setzero_si256(), low_total,
                                      0xF0));
            x = _mm256_add_epi32(x, _mm256_set1_epi32(i32(run)));
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(prefix + w + 1), x);
            run = u32(_mm256_extract_epi32(x, 7));
        }
        for (; w < hi; ++w) {
            run += prefix[w + 1];
            prefix[w + 1] = run;
        }
    }
}

void
axpyF32Avx2(float *c, const float *b, float a, int n)
{
    const __m256 va = _mm256_set1_ps(a);
    int j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 vb = _mm256_loadu_ps(b + j);
        const __m256 vc = _mm256_loadu_ps(c + j);
        _mm256_storeu_ps(c + j,
                         _mm256_add_ps(vc, _mm256_mul_ps(va, vb)));
    }
    for (; j < n; ++j)
        c[j] += a * b[j];
}

void
gemmRowI32Avx2(i64 *c, const i32 *b, i32 a, int n)
{
    // vpmuldq multiplies the low signed 32 bits of each 64-bit lane:
    // exact i64 products for the full i32 range of both operands.
    const __m256i va = _mm256_set1_epi64x(i64(u32(a)));
    int j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i vb = _mm256_cvtepi32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + j)));
        const __m256i prod = _mm256_mul_epi32(vb, va);
        __m256i *cp = reinterpret_cast<__m256i *>(c + j);
        _mm256_storeu_si256(
            cp, _mm256_add_epi64(_mm256_loadu_si256(cp), prod));
    }
    for (; j < n; ++j)
        c[j] += i64(a) * i64(b[j]);
}

const SimdKernels kAvx2 = {
    SimdLevel::Avx2,        popcountWordsAvx2, thresholdPackWordsAvx2,
    prefixPopcountAvx2,     axpyF32Avx2,       gemmRowI32Avx2,
};

} // namespace

namespace detail {

const SimdKernels *
avx2KernelsImpl()
{
    return &kAvx2;
}

} // namespace detail
} // namespace usys

#else // !USYS_HAVE_AVX2

namespace usys {
namespace detail {

const SimdKernels *
avx2KernelsImpl()
{
    return nullptr;
}

} // namespace detail
} // namespace usys

#endif // USYS_HAVE_AVX2
