/**
 * @file
 * Process-wide persistent work-stealing executor.
 *
 * One lazily-started pool of worker threads serves every parallelFor in
 * the process, replacing the old fork-join loop that spawned and joined
 * threads per call. Each parallel region splits its index range into
 * grain-sized chunks, deals contiguous runs of chunks to per-thread
 * deques, and lets idle threads steal from the back of a victim's deque
 * (owners pop from the front), so skewed per-chunk costs rebalance
 * without a central cursor fight.
 *
 * Guarantees, relied on throughout the simulator:
 *
 *  - No oversubscription, ever. A parallelFor issued from inside a
 *    parallel region runs inline on the calling worker — nested
 *    tile-/layer-/mode-level parallelism composes without spawning
 *    hardware_concurrency()^2 threads.
 *  - Exceptions propagate. The first exception thrown by any worker is
 *    captured and rethrown at the join point on the calling thread
 *    (remaining chunks are skipped); the old loop called
 *    std::terminate.
 *  - Thread count is controllable: `USYS_THREADS` in the environment,
 *    `--threads N` on every bench binary and tools/usim, or
 *    Executor::setThreads(). A count of 1 is a true serial fallback —
 *    no pool threads are ever started and fn runs on the caller.
 *  - Worker threads are persistent, so thread_local scratch (the
 *    packed-array fold arena, the product-model memos) survives across
 *    parallel regions instead of being rebuilt per call.
 *
 * Determinism is the same contract as before: indices are visited
 * exactly once with nondeterministic assignment to threads, so parallel
 * bodies only touch per-index state and aggregates merge serially in
 * index order afterwards (see DESIGN.md §9).
 */

#ifndef USYS_COMMON_EXECUTOR_H
#define USYS_COMMON_EXECUTOR_H

#include <algorithm>
#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/profiler.h"
#include "common/types.h"

namespace usys {

class Histogram;

class Executor
{
  public:
    /** The process-wide pool used by parallelFor. */
    static Executor &global();

    /**
     * Threads participating in a parallel region (pool workers plus the
     * calling thread). Resolved lazily: an explicit setThreads() value,
     * else USYS_THREADS, else hardware_concurrency().
     */
    unsigned threads();

    /**
     * Override the thread count; 0 re-resolves from the environment.
     * Joins and restarts an already-running pool, so it must not be
     * called concurrently with parallelFor (bench/test setup only).
     */
    void setThreads(unsigned n);

    /** True while the current thread executes inside a parallel region
     *  (the nesting signal that makes inner regions run inline). */
    static bool inParallelRegion();

    /** Chunks executed by a thread other than their initial owner
     *  (monotonic; for tests and diagnostics). */
    u64 stealCount() const;

    /**
     * Per-slot telemetry (slot 0 = the region caller, 1..n-1 = pool
     * workers). Counters are relaxed atomics written only by the owning
     * thread; tasks counts chunks executed, busy_ns the wall time spent
     * inside chunk bodies, idle_ns a worker's time blocked waiting for a
     * region (always 0 for slot 0), steal_fails full sweeps of the other
     * deques that found nothing. Like stealCount(), a setThreads() pool
     * restart resets everything.
     */
    struct WorkerCounters
    {
        u64 tasks = 0;
        u64 steals = 0;
        u64 steal_fails = 0;
        u64 busy_ns = 0;
        u64 idle_ns = 0;
    };
    /** Snapshot of every slot's counters; empty before the first region.
     *  Safe to call concurrently with a running region (relaxed reads). */
    std::vector<WorkerCounters> workerCounters() const;

    /** Shape of the per-slot task-latency histograms (microseconds);
     *  pass the same bounds when registering the merge target. */
    static constexpr double kTaskLatencyLoUs = 0.0;
    static constexpr double kTaskLatencyHiUs = 10000.0;
    static constexpr int kTaskLatencyBuckets = 50;
    /** Merge every slot's chunk-latency histogram into `dst` (which must
     *  have the kTaskLatency* shape). Quiescent-only: call after regions
     *  have joined, not concurrently with parallelFor. */
    void mergeTaskLatency(Histogram &dst) const;

    /**
     * Run body(lo, hi) over [begin, end) split into grain-sized chunks
     * on the pool. Blocks until every chunk ran (or was skipped after an
     * exception); rethrows the first exception. Callers normally use
     * parallelFor below, which adds the serial/nested fast paths.
     */
    void run(u64 begin, u64 end, u64 grain,
             const std::function<void(u64, u64)> &body);

    ~Executor();

  private:
    Executor() = default;
    struct Pool;
    Pool *pool(); // started lazily under mu_

    // mutable: the const telemetry peeks (stealCount, workerCounters,
    // mergeTaskLatency) must hold it too, or a concurrent setThreads()
    // pool teardown turns their reads into use-after-free.
    mutable std::mutex mu_;
    Pool *pool_ = nullptr;
    unsigned explicit_threads_ = 0;
};

/**
 * Bench/test hook: when enabled, parallelFor reverts to the pre-executor
 * fork-join behaviour (spawn threads per call, join, no nesting rule) so
 * end-to-end benchmarks can time the old regime against the pool.
 */
void setForkJoinBaseline(bool on);
bool forkJoinBaseline();

namespace detail {

/** The legacy fork-join loop, kept verbatim as the benchmark baseline
 *  (plus exception capture so a bench failure cannot terminate). */
template <typename Fn>
void
forkJoinParallelFor(u64 begin, u64 end, Fn &&fn, u64 grain,
                    unsigned max_workers)
{
    const u64 n = end - begin;
    const u64 chunks = (n + grain - 1) / grain;
    unsigned workers =
        unsigned(std::max<u64>(1, std::min<u64>(max_workers, chunks)));
    if (workers == 1) {
        for (u64 i = begin; i < end; ++i)
            fn(i);
        return;
    }

    std::atomic<u64> next_chunk{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    auto body = [&]() {
        for (;;) {
            const u64 c = next_chunk.fetch_add(1);
            if (c >= chunks)
                return;
            if (failed.load(std::memory_order_relaxed))
                continue;
            const u64 lo = begin + c * grain;
            const u64 hi = std::min(end, lo + grain);
            try {
                for (u64 i = lo; i < hi; ++i)
                    fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!failed.exchange(true))
                    error = std::current_exception();
            }
        }
    };

    // Re-root the spawned threads' profiler frames under the caller's
    // scope path, like the executor pool does, so the merged call-tree
    // keeps the serial nesting. The threads are freshly created (anchor
    // id 1 always applies); the caller itself already sits on the path.
    const bool prof_active = Profiler::global().enabled();
    std::vector<const char *> prof_path;
    if (prof_active)
        prof_path = Profiler::global().currentPath();
    auto worker_body = [&]() {
        if (prof_active)
            Profiler::global().applyWorkerAnchor(prof_path, 1);
        body();
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (unsigned t = 0; t + 1 < workers; ++t)
        threads.emplace_back(worker_body);
    body();
    for (auto &th : threads)
        th.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace detail

/**
 * Apply fn(i) for all i in [begin, end) across the executor's threads.
 *
 * Indices are handed out in chunks of `grain` consecutive indices; each
 * index is visited exactly once (unless an exception aborts the region)
 * with nondeterministic index-to-thread assignment, so fn must only
 * touch per-index state and aggregates must be reduced serially in
 * index order afterwards. Runs serially inline when the range fits one
 * chunk, when the executor resolves to one thread, or when called from
 * inside another parallel region (the no-oversubscription rule).
 *
 * @param begin first index
 * @param end one past the last index
 * @param fn callable taking a single index
 * @param grain indices handed to a thread per chunk (0 is coerced to 1)
 */
template <typename Fn>
void
parallelFor(u64 begin, u64 end, Fn &&fn, u64 grain = 1)
{
    const u64 n = end > begin ? end - begin : 0;
    if (n == 0)
        return;
    if (grain == 0)
        grain = 1;

    Executor &ex = Executor::global();
    if (forkJoinBaseline() && !Executor::inParallelRegion()) {
        detail::forkJoinParallelFor(begin, end, fn, grain, ex.threads());
        return;
    }

    const u64 chunks = (n + grain - 1) / grain;
    if (chunks == 1 || Executor::inParallelRegion() || ex.threads() == 1) {
        for (u64 i = begin; i < end; ++i)
            fn(i);
        return;
    }

    ex.run(begin, end, grain, [&fn](u64 lo, u64 hi) {
        for (u64 i = lo; i < hi; ++i)
            fn(i);
    });
}

} // namespace usys

#endif // USYS_COMMON_EXECUTOR_H
