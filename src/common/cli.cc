#include "common/cli.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/event_trace.h"
#include "common/executor.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/simd.h"
#include "common/stats_registry.h"

namespace usys {

namespace {

bool g_packed_engine = true;
bool g_panel_gemm = true;
bool g_zero_skip = true;
bool g_sparse = true;
u32 g_panel_kb_override = 0;

/**
 * Probe cpu0's L2 size from sysfs ("512K" / "1M" style). Returns 0
 * when the node is missing or unparsable (containers, non-Linux).
 */
u32
sysfsL2Kb()
{
    std::FILE *f =
        std::fopen("/sys/devices/system/cpu/cpu0/cache/index2/size", "r");
    if (!f)
        return 0;
    char buf[32] = {0};
    const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    if (got == 0)
        return 0;
    char *tail = nullptr;
    const unsigned long v = std::strtoul(buf, &tail, 10);
    if (tail == buf || v == 0 || v > (1u << 20))
        return 0;
    if (*tail == 'M')
        return u32(v) * 1024;
    if (*tail == 'K' || *tail == '\n' || *tail == '\0')
        return u32(v);
    return 0;
}

/** USYS_L2_KB env > sysfs probe > 512 KiB fallback. */
u32
resolvePanelKb()
{
    if (const char *env = std::getenv("USYS_L2_KB")) {
        char *tail = nullptr;
        const unsigned long v = std::strtoul(env, &tail, 10);
        if (tail != env && *tail == '\0' && v >= 16 && v <= (1u << 20))
            return u32(v);
        warn(std::string("ignoring invalid USYS_L2_KB='") + env +
             "' (want KiB in [16, 1048576])");
    }
    if (const u32 kb = sysfsL2Kb())
        return kb;
    return 512;
}

/**
 * Resolve whether scopes should record: USYS_PROFILE=0/1 overrides,
 * otherwise profiling follows the presence of a --profile-* artifact
 * request.
 */
bool
resolveProfiling(bool artifact_requested)
{
    if (const char *env = std::getenv("USYS_PROFILE")) {
        if (std::strcmp(env, "0") == 0)
            return false;
        if (std::strcmp(env, "1") == 0)
            return true;
        warn(std::string("ignoring invalid USYS_PROFILE='") + env +
             "' (want 0 or 1)");
    }
    return artifact_requested;
}

/**
 * Publish executor telemetry into the stats registry. Deliberately NOT
 * done on default runs: busy/idle/latency are wall-clock values that
 * vary run-to-run and with the thread count, and the determinism
 * harness byte-compares default stats dumps across both.
 */
void
publishExecTelemetry()
{
    StatsRegistry &reg = statsRegistry();
    Executor &ex = Executor::global();
    const auto counters = ex.workerCounters();
    for (std::size_t s = 0; s < counters.size(); ++s) {
        const std::string p = "exec.worker" + std::to_string(s) + ".";
        reg.counter(p + "tasks", "chunks executed by this slot")
            .set(counters[s].tasks);
        reg.counter(p + "steals", "chunks stolen by this slot")
            .set(counters[s].steals);
        reg.counter(p + "steal_fails", "empty steal sweeps by this slot")
            .set(counters[s].steal_fails);
        reg.counter(p + "busy_ns", "wall ns inside chunk bodies")
            .set(counters[s].busy_ns);
        reg.counter(p + "idle_ns", "wall ns blocked awaiting a region")
            .set(counters[s].idle_ns);
    }
    Histogram &lat = reg.histogram(
        "exec.task_latency_us", Executor::kTaskLatencyLoUs,
        Executor::kTaskLatencyHiUs, Executor::kTaskLatencyBuckets,
        "per-chunk wall latency across all slots (us)");
    ex.mergeTaskLatency(lat);
}

} // namespace

bool
packedEngineEnabled()
{
    return g_packed_engine;
}

void
setPackedEngineEnabled(bool on)
{
    g_packed_engine = on;
}

bool
panelGemmEnabled()
{
    return g_panel_gemm;
}

void
setPanelGemmEnabled(bool on)
{
    g_panel_gemm = on;
}

bool
zeroSkipEnabled()
{
    return g_zero_skip;
}

void
setZeroSkipEnabled(bool on)
{
    g_zero_skip = on;
}

bool
sparseEnabled()
{
    return g_sparse;
}

void
setSparseEnabled(bool on)
{
    g_sparse = on;
}

u32
panelBudgetKb()
{
    if (g_panel_kb_override)
        return g_panel_kb_override;
    static const u32 resolved = resolvePanelKb();
    return resolved;
}

void
setPanelBudgetKb(u32 kb)
{
    g_panel_kb_override = kb;
}

i64
parseIntFlag(const char *flag, const char *text, i64 lo, i64 hi)
{
    fatalIf(text == nullptr || *text == '\0',
            std::string(flag) + ": empty numeric value");
    errno = 0;
    char *tail = nullptr;
    const long long v = std::strtoll(text, &tail, 10);
    fatalIf(tail == text || *tail != '\0',
            std::string(flag) + ": not an integer: '" + text + "'");
    fatalIf(errno == ERANGE || v < lo || v > hi,
            std::string(flag) + ": value " + text + " outside [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "]");
    return i64(v);
}

double
parseDoubleFlag(const char *flag, const char *text, double lo, double hi)
{
    fatalIf(text == nullptr || *text == '\0',
            std::string(flag) + ": empty numeric value");
    errno = 0;
    char *tail = nullptr;
    const double v = std::strtod(text, &tail);
    fatalIf(tail == text || *tail != '\0',
            std::string(flag) + ": not a number: '" + text + "'");
    fatalIf(errno == ERANGE || !std::isfinite(v),
            std::string(flag) + ": value not finite: '" + text + "'");
    fatalIf(v < lo || v > hi,
            std::string(flag) + ": value " + text + " outside [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "]");
    return v;
}

BenchOptions
parseBenchArgs(int *argc, char **argv, const std::string &bench)
{
    BenchOptions opts;
    opts.bench = bench;

    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            fatalIf(i + 1 >= *argc,
                    std::string(flag) + " requires a path argument");
            return argv[++i];
        };
        if (std::strcmp(arg, "--stats-json") == 0) {
            opts.stats_json = value("--stats-json");
        } else if (std::strcmp(arg, "--trace-out") == 0) {
            opts.trace_out = value("--trace-out");
        } else if (std::strcmp(arg, "--stats-dump") == 0) {
            opts.stats_dump = true;
        } else if (std::strcmp(arg, "--profile-json") == 0) {
            opts.profile_json = value("--profile-json");
        } else if (std::strcmp(arg, "--profile-collapsed") == 0) {
            opts.profile_collapsed = value("--profile-collapsed");
        } else if (std::strcmp(arg, "--metrics-out") == 0) {
            opts.metrics_out = value("--metrics-out");
        } else if (std::strcmp(arg, "--metrics-interval-ms") == 0) {
            opts.metrics_interval_ms = u64(
                parseIntFlag("--metrics-interval-ms",
                             value("--metrics-interval-ms"), 1, 3600000));
        } else if (std::strcmp(arg, "--progress") == 0) {
            opts.progress = true;
        } else if (std::strcmp(arg, "--no-packed") == 0) {
            setPackedEngineEnabled(false);
        } else if (std::strcmp(arg, "--packed") == 0) {
            setPackedEngineEnabled(true);
        } else if (std::strcmp(arg, "--no-panel") == 0) {
            setPanelGemmEnabled(false);
        } else if (std::strcmp(arg, "--panel") == 0) {
            setPanelGemmEnabled(true);
        } else if (std::strcmp(arg, "--no-zero-skip") == 0) {
            setZeroSkipEnabled(false);
        } else if (std::strcmp(arg, "--zero-skip") == 0) {
            setZeroSkipEnabled(true);
        } else if (std::strcmp(arg, "--no-sparse") == 0) {
            setSparseEnabled(false);
        } else if (std::strcmp(arg, "--sparse") == 0) {
            setSparseEnabled(true);
        } else if (std::strcmp(arg, "--panel-kb") == 0) {
            setPanelBudgetKb(u32(parseIntFlag(
                "--panel-kb", value("--panel-kb"), 16, 1048576)));
        } else if (std::strcmp(arg, "--threads") == 0) {
            const i64 n =
                parseIntFlag("--threads", value("--threads"), 0, 4096);
            Executor::global().setThreads(unsigned(n));
        } else if (std::strcmp(arg, "--simd") == 0) {
            setSimdMode(value("--simd"));
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
    argv[out] = nullptr;

    if (!opts.trace_out.empty())
        EventTrace::global().setEnabled(true);

    fatalIf(opts.metrics_interval_ms != 0 && opts.metrics_out.empty(),
            "--metrics-interval-ms requires --metrics-out");
    if (!opts.metrics_out.empty() && opts.metrics_interval_ms == 0)
        opts.metrics_interval_ms = 1000;

    opts.profiling = resolveProfiling(!opts.profile_json.empty() ||
                                      !opts.profile_collapsed.empty());
    if (opts.profiling) {
        Profiler &prof = Profiler::global();
        prof.setEnabled(true);
        // Root frame named after the bench; finalizeBench() closes it,
        // so the dump's top-level frame covers the whole run and
        // check_profile_schema.py can assert wall-time coverage.
        prof.push(prof.intern(bench));
    }
    if (!opts.metrics_out.empty())
        MetricsSampler::global().start(opts.metrics_out,
                                       opts.metrics_interval_ms);

    // One-line engine summary (tagged logger, stderr only — never part
    // of a stats artifact) so every bench run is self-describing.
    inform("engine: simd=" +
           std::string(simdLevelName(simdLevel())) + " packed=" +
           (packedEngineEnabled() ? "on" : "off") + " panel=" +
           (panelGemmEnabled() ? std::to_string(panelBudgetKb()) + "KB"
                               : "off") +
           " zero-skip=" + (zeroSkipEnabled() ? "on" : "off") +
           " sparse=" + (sparseEnabled() ? "on" : "off"));
    return opts;
}

void
finalizeBench(const BenchOptions &opts)
{
    Profiler &prof = Profiler::global();
    if (opts.profiling)
        prof.pop(); // close the root bench frame opened at parse
    if (MetricsSampler::global().running())
        MetricsSampler::global().stop();
    if (opts.profiling || !opts.metrics_out.empty())
        publishExecTelemetry();

    if (opts.stats_dump)
        statsRegistry().dump(stderr);
    // A requested artifact that cannot be written is a hard error:
    // callers script against these files and check the exit code.
    if (!opts.stats_json.empty()) {
        fatalIf(!statsRegistry().writeJsonFile(opts.stats_json,
                                               opts.bench),
                "cannot write stats JSON: " + opts.stats_json);
        inform("wrote stats JSON: " + opts.stats_json + " (" +
               std::to_string(statsRegistry().size()) + " stats)");
    }
    if (!opts.trace_out.empty()) {
        fatalIf(!EventTrace::global().writeFile(opts.trace_out),
                "cannot write trace: " + opts.trace_out);
        inform("wrote trace: " + opts.trace_out + " (" +
               std::to_string(EventTrace::global().eventCount()) +
               " events)");
    }
    if (!opts.profile_json.empty()) {
        fatalIf(!prof.writeJsonFile(opts.profile_json, opts.bench),
                "cannot write profile JSON: " + opts.profile_json);
        inform("wrote profile JSON: " + opts.profile_json);
    }
    if (!opts.profile_collapsed.empty()) {
        fatalIf(!prof.writeCollapsedFile(opts.profile_collapsed),
                "cannot write collapsed profile: " +
                    opts.profile_collapsed);
        inform("wrote collapsed profile: " + opts.profile_collapsed);
    }
}

ProgressMeter::ProgressMeter(std::string label, u64 total, bool enabled)
    : label_(std::move(label)), total_(total), enabled_(enabled),
      start_(std::chrono::steady_clock::now()), last_print_(start_)
{
}

void
ProgressMeter::update(u64 done)
{
    if (!enabled_ || total_ == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    const double since_print =
        std::chrono::duration<double>(now - last_print_).count();
    // Throttle to >= 1 s between lines, but always report completion.
    if (done < total_ && printed_any_ && since_print < 1.0)
        return;
    last_print_ = now;
    printed_any_ = true;
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double eta =
        done > 0 ? elapsed * double(total_ - done) / double(done) : 0.0;
    std::fprintf(stderr,
                 "progress: %s %llu/%llu (%.0f%%) elapsed %.1fs eta "
                 "%.1fs\n",
                 label_.c_str(), (unsigned long long)done,
                 (unsigned long long)total_,
                 100.0 * double(done) / double(total_), elapsed, eta);
}

} // namespace usys
