#include "common/cli.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/event_trace.h"
#include "common/executor.h"
#include "common/logging.h"
#include "common/simd.h"
#include "common/stats_registry.h"

namespace usys {

namespace {
bool g_packed_engine = true;
} // namespace

bool
packedEngineEnabled()
{
    return g_packed_engine;
}

void
setPackedEngineEnabled(bool on)
{
    g_packed_engine = on;
}

i64
parseIntFlag(const char *flag, const char *text, i64 lo, i64 hi)
{
    fatalIf(text == nullptr || *text == '\0',
            std::string(flag) + ": empty numeric value");
    errno = 0;
    char *tail = nullptr;
    const long long v = std::strtoll(text, &tail, 10);
    fatalIf(tail == text || *tail != '\0',
            std::string(flag) + ": not an integer: '" + text + "'");
    fatalIf(errno == ERANGE || v < lo || v > hi,
            std::string(flag) + ": value " + text + " outside [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "]");
    return i64(v);
}

double
parseDoubleFlag(const char *flag, const char *text, double lo, double hi)
{
    fatalIf(text == nullptr || *text == '\0',
            std::string(flag) + ": empty numeric value");
    errno = 0;
    char *tail = nullptr;
    const double v = std::strtod(text, &tail);
    fatalIf(tail == text || *tail != '\0',
            std::string(flag) + ": not a number: '" + text + "'");
    fatalIf(errno == ERANGE || !std::isfinite(v),
            std::string(flag) + ": value not finite: '" + text + "'");
    fatalIf(v < lo || v > hi,
            std::string(flag) + ": value " + text + " outside [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "]");
    return v;
}

BenchOptions
parseBenchArgs(int *argc, char **argv, const std::string &bench)
{
    BenchOptions opts;
    opts.bench = bench;

    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char *arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            fatalIf(i + 1 >= *argc,
                    std::string(flag) + " requires a path argument");
            return argv[++i];
        };
        if (std::strcmp(arg, "--stats-json") == 0) {
            opts.stats_json = value("--stats-json");
        } else if (std::strcmp(arg, "--trace-out") == 0) {
            opts.trace_out = value("--trace-out");
        } else if (std::strcmp(arg, "--stats-dump") == 0) {
            opts.stats_dump = true;
        } else if (std::strcmp(arg, "--no-packed") == 0) {
            setPackedEngineEnabled(false);
        } else if (std::strcmp(arg, "--packed") == 0) {
            setPackedEngineEnabled(true);
        } else if (std::strcmp(arg, "--threads") == 0) {
            const i64 n =
                parseIntFlag("--threads", value("--threads"), 0, 4096);
            Executor::global().setThreads(unsigned(n));
        } else if (std::strcmp(arg, "--simd") == 0) {
            setSimdMode(value("--simd"));
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
    argv[out] = nullptr;

    if (!opts.trace_out.empty())
        EventTrace::global().setEnabled(true);
    return opts;
}

void
finalizeBench(const BenchOptions &opts)
{
    if (opts.stats_dump)
        statsRegistry().dump(stderr);
    // A requested artifact that cannot be written is a hard error:
    // callers script against these files and check the exit code.
    if (!opts.stats_json.empty()) {
        fatalIf(!statsRegistry().writeJsonFile(opts.stats_json,
                                               opts.bench),
                "cannot write stats JSON: " + opts.stats_json);
        inform("wrote stats JSON: " + opts.stats_json + " (" +
               std::to_string(statsRegistry().size()) + " stats)");
    }
    if (!opts.trace_out.empty()) {
        fatalIf(!EventTrace::global().writeFile(opts.trace_out),
                "cannot write trace: " + opts.trace_out);
        inform("wrote trace: " + opts.trace_out + " (" +
               std::to_string(EventTrace::global().eventCount()) +
               " events)");
    }
}

} // namespace usys
