#include "common/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace usys {

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = members_.find(key);
    if (it == members_.end())
        return nullptr;
    return &arr_[it->second];
}

double
JsonValue::getNumber(const std::string &key, double dflt) const
{
    const JsonValue *v = find(key);
    return (v && v->isNumber()) ? v->number() : dflt;
}

i64
JsonValue::getInt(const std::string &key, i64 dflt) const
{
    const JsonValue *v = find(key);
    return (v && v->isNumber()) ? i64(v->number()) : dflt;
}

bool
JsonValue::getBool(const std::string &key, bool dflt) const
{
    const JsonValue *v = find(key);
    return (v && v->isBool()) ? v->boolean() : dflt;
}

std::string
JsonValue::getString(const std::string &key, const std::string &dflt) const
{
    const JsonValue *v = find(key);
    return (v && v->isString()) ? v->string() : dflt;
}

/** Recursive-descent parser state: a cursor over the input text. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    parseDocument(JsonValue &out, std::string &error)
    {
        // Depth guard: the protocol nests requests two or three deep;
        // 64 is far beyond legitimate use but small enough that a
        // hostile deeply-nested frame cannot exhaust the stack.
        if (!parseValue(out, 0)) {
            error = error_;
            return false;
        }
        skipSpace();
        if (pos_ != text_.size()) {
            error = at("trailing characters after document");
            return false;
        }
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    std::string at(const std::string &msg)
    {
        return "offset " + std::to_string(pos_) + ": " + msg;
    }

    bool fail(const std::string &msg)
    {
        if (error_.empty())
            error_ = at(msg);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char expect)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == expect) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.str_);
          case 't':
            return parseLiteral("true", out, JsonValue::Kind::Bool, true);
          case 'f':
            return parseLiteral("false", out, JsonValue::Kind::Bool,
                                false);
          case 'n':
            return parseLiteral("null", out, JsonValue::Kind::Null,
                                false);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseLiteral(const char *word, JsonValue &out, JsonValue::Kind kind,
                 bool bvalue)
    {
        for (const char *p = word; *p; ++p, ++pos_) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                return fail(std::string("expected '") + word + "'");
        }
        out.kind_ = kind;
        out.bool_ = bvalue;
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(u8(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number '" + token + "'");
        out.kind_ = JsonValue::Kind::Number;
        out.num_ = v;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (u8(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                return fail("dangling escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                u32 cp = 0;
                if (!parseHex4(cp))
                    return false;
                // Surrogate pair: a high surrogate must be followed by
                // an escaped low surrogate; combine into one code point.
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    if (pos_ + 1 >= text_.size() ||
                        text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
                        return fail("unpaired high surrogate");
                    pos_ += 2;
                    u32 lo = 0;
                    if (!parseHex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail("invalid low surrogate");
                    cp = 0x10000 +
                         ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return fail("unpaired low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseHex4(u32 &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= u32(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= u32(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= u32(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    static void
    appendUtf8(std::string &out, u32 cp)
    {
        if (cp < 0x80) {
            out.push_back(char(cp));
        } else if (cp < 0x800) {
            out.push_back(char(0xC0 | (cp >> 6)));
            out.push_back(char(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(char(0xE0 | (cp >> 12)));
            out.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(char(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(char(0xF0 | (cp >> 18)));
            out.push_back(char(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(char(0x80 | (cp & 0x3F)));
        }
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        out.kind_ = JsonValue::Kind::Array;
        skipSpace();
        if (consume(']'))
            return true;
        for (;;) {
            JsonValue elem;
            if (!parseValue(elem, depth + 1))
                return false;
            out.arr_.push_back(std::move(elem));
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        out.kind_ = JsonValue::Kind::Object;
        skipSpace();
        if (consume('}'))
            return true;
        for (;;) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected a string key");
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return fail("expected ':' after key");
            JsonValue member;
            if (!parseValue(member, depth + 1))
                return false;
            // Duplicate keys: last one wins (the common lenient rule);
            // the member list keeps only the surviving value.
            auto it = out.members_.find(key);
            if (it != out.members_.end()) {
                out.arr_[it->second] = std::move(member);
            } else {
                out.members_[key] = out.arr_.size();
                out.keys_.push_back(key);
                out.arr_.push_back(std::move(member));
            }
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}' in object");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

JsonParseResult
parseJson(const std::string &text)
{
    JsonParseResult result;
    JsonParser parser(text);
    result.ok = parser.parseDocument(result.root, result.error);
    if (!result.ok)
        result.root = JsonValue::makeNull();
    return result;
}

} // namespace usys
