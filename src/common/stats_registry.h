/**
 * @file
 * gem5-style hierarchical named-statistics registry.
 *
 * Every simulation layer registers counters/scalars/histograms/formulas
 * under dotted hierarchical names (`sim.ur.layer3.dram_bytes`). A dump
 * renders either the flat gem5 text format (name, value, description,
 * sorted by name) or a nested JSON object whose structure follows the
 * dots, giving every bench binary a machine-readable artifact.
 *
 * Registration is idempotent: asking for an existing name returns the
 * existing stat (and fatals on a kind mismatch), so hot paths can look
 * stats up by name without separate init code. Registration is
 * mutex-protected; *updates* are not — single-threaded simulation loops
 * update directly, and parallel sections should accumulate into local
 * OnlineStats/counters and merge() once at the end.
 */

#ifndef USYS_COMMON_STATS_REGISTRY_H
#define USYS_COMMON_STATS_REGISTRY_H

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace usys {

class JsonWriter;

/** Base class of all registered statistics. */
class Stat
{
  public:
    enum class Kind
    {
        Counter,
        Scalar,
        Histogram,
        Formula,
    };

    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {
    }
    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }
    /** Update the description (first registration may omit it). */
    void setDesc(const std::string &d) { desc_ = d; }

    virtual Kind kind() const = 0;
    /** Zero the value, keeping the registration. */
    virtual void reset() = 0;
    /** gem5-style value rendering for the text dump. */
    virtual std::string valueText() const = 0;
    /** Emit this stat as one keyed field of an open JSON object. */
    virtual void writeJsonField(JsonWriter &w,
                                const std::string &key) const = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic unsigned event count. */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator+=(u64 d) { v_ += d; return *this; }
    Counter &operator++() { ++v_; return *this; }
    void set(u64 v) { v_ = v; }
    u64 value() const { return v_; }

    Kind kind() const override { return Kind::Counter; }
    void reset() override { v_ = 0; }
    std::string valueText() const override;
    void writeJsonField(JsonWriter &w,
                        const std::string &key) const override;

  private:
    u64 v_ = 0;
};

/** Floating-point accumulator / gauge. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    void add(double d) { v_ += d; }
    void set(double v) { v_ = v; }
    double value() const { return v_; }

    Kind kind() const override { return Kind::Scalar; }
    void reset() override { v_ = 0.0; }
    std::string valueText() const override;
    void writeJsonField(JsonWriter &w,
                        const std::string &key) const override;

  private:
    double v_ = 0.0;
};

/** Fixed linear-bucket histogram with under/overflow bins. */
class Histogram : public Stat
{
  public:
    Histogram(std::string name, std::string desc, double lo, double hi,
              int buckets);

    void add(double x, u64 count = 1);

    /**
     * Fold another histogram's samples into this one. The merge is
     * order-invariant (bucket counts and Chan-et-al moment merges are
     * commutative up to fp rounding of the moments), so parallel
     * sections can accumulate into local histograms and merge serially
     * in any fixed order. A bucket-shape mismatch is a panic — merging
     * incompatible bucketings silently would corrupt both.
     */
    void merge(const Histogram &other);

    u64 count() const { return moments_.count(); }
    double mean() const { return moments_.mean(); }
    double min() const { return moments_.min(); }
    double max() const { return moments_.max(); }
    double sum() const { return moments_.sum(); }
    u64 bucketCount(int i) const { return buckets_[std::size_t(i)]; }
    int numBuckets() const { return int(buckets_.size()); }
    u64 underflow() const { return underflow_; }
    u64 overflow() const { return overflow_; }
    double bucketLo(int i) const;
    double bucketHi(int i) const { return bucketLo(i + 1); }

    Kind kind() const override { return Kind::Histogram; }
    void reset() override;
    std::string valueText() const override;
    void writeJsonField(JsonWriter &w,
                        const std::string &key) const override;

  private:
    double lo_, hi_, width_;
    std::vector<u64> buckets_;
    u64 underflow_ = 0;
    u64 overflow_ = 0;
    OnlineStats moments_;
};

/** Derived value, evaluated lazily at dump time (gem5 Formula). */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), fn_(std::move(fn))
    {
    }

    double value() const { return fn_ ? fn_() : 0.0; }

    Kind kind() const override { return Kind::Formula; }
    void reset() override {}
    std::string valueText() const override;
    void writeJsonField(JsonWriter &w,
                        const std::string &key) const override;

  private:
    std::function<double()> fn_;
};

/** Hierarchical stats container. */
class StatsRegistry
{
  public:
    /**
     * Register (or look up) a stat. Idempotent per name; a kind mismatch
     * or a leaf/group name conflict (`a.b` vs stat `a`) is fatal — this
     * is what catches silent stat renames.
     */
    Counter &counter(const std::string &name,
                     const std::string &desc = "");
    Scalar &scalar(const std::string &name, const std::string &desc = "");
    Histogram &histogram(const std::string &name, double lo, double hi,
                         int buckets, const std::string &desc = "");
    Formula &formula(const std::string &name, std::function<double()> fn,
                     const std::string &desc = "");

    /** nullptr when absent. */
    const Stat *find(const std::string &name) const;
    std::size_t size() const;

    /** Zero every stat, keeping registrations. */
    void reset();
    /** Drop every registration. */
    void clear();

    /**
     * Visit every numeric leaf as (dotted name, value): counters and
     * scalars by value, histograms as `<name>.count` and `<name>.sum`.
     * Formulas are skipped — their lambdas may read state that is not
     * safe to touch from another thread. Values are read without
     * synchronization (plain u64/double loads), so a concurrent sample
     * taken mid-update may be stale; callers that need exact values
     * must sample at quiescence. Registration order is the iteration
     * order surrogate: names come out sorted.
     */
    void
    sampleNumeric(const std::function<void(const std::string &, double)>
                      &fn) const;

    /** Flat gem5-style text dump, sorted by name. */
    std::string dumpText() const;
    void dump(std::FILE *out) const;

    /** Nested JSON object following the dotted hierarchy. */
    std::string json() const;
    /** Emit the nested stats object into an open writer position. */
    void writeJson(JsonWriter &w) const;

    /**
     * Write the standard artifact: {"bench", "schema_version", "stats"}.
     */
    bool writeJsonFile(const std::string &path,
                       const std::string &bench) const;

  private:
    template <typename T, typename... Args>
    T &getOrCreate(const std::string &name, const std::string &desc,
                   Stat::Kind kind, Args &&...args);
    void checkHierarchy(const std::string &name) const;
    /** Name-sorted stat pointers, taken under the lock so dumps can
     *  render (and evaluate formulas) without holding it. */
    std::vector<const Stat *> snapshot() const;

    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Stat>> stats_;
};

/** Process-wide default registry used by the instrumented layers. */
StatsRegistry &statsRegistry();

/**
 * Make an arbitrary label safe as one dotted-name component: [A-Za-z0-9_-]
 * kept (lowercased), runs of anything else collapse to '_'.
 */
std::string sanitizeStatName(const std::string &label);

} // namespace usys

#endif // USYS_COMMON_STATS_REGISTRY_H
