#include "common/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/json.h"
#include "common/logging.h"

namespace usys {

namespace {

constexpr const char *kHeader = "usys-checkpoint v1";

void
checkToken(const std::string &what, const std::string &s)
{
    fatalIf(s.find('\t') != std::string::npos ||
                s.find('\n') != std::string::npos ||
                s.find('\r') != std::string::npos,
            "checkpoint " + what + " contains tab/newline: '" + s + "'");
}

} // namespace

ShardCheckpoint::ShardCheckpoint(std::string path)
    : path_(std::move(path))
{}

void
ShardCheckpoint::load()
{
    if (!enabled())
        return;
    std::ifstream in(path_);
    if (!in.is_open())
        return; // fresh start
    std::string line;
    fatalIf(!std::getline(in, line) || line != kHeader,
            "checkpoint " + path_ + ": bad header (expected '" +
                kHeader + "')");
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const std::size_t tab = line.find('\t');
        fatalIf(tab == std::string::npos,
                "checkpoint " + path_ + ": malformed line: '" + line +
                    "'");
        entries_[line.substr(0, tab)] = line.substr(tab + 1);
    }
    inform("checkpoint " + path_ + ": restored " +
           std::to_string(entries_.size()) + " shard(s)");
}

bool
ShardCheckpoint::has(const std::string &key) const
{
    return entries_.count(key) != 0;
}

const std::string &
ShardCheckpoint::find(const std::string &key) const
{
    static const std::string empty;
    const auto it = entries_.find(key);
    return it == entries_.end() ? empty : it->second;
}

void
ShardCheckpoint::record(const std::string &key, const std::string &payload)
{
    if (!enabled())
        return;
    checkToken("key", key);
    checkToken("payload", payload);
    entries_[key] = payload;
    persist();
}

void
ShardCheckpoint::replaceAll(std::map<std::string, std::string> entries)
{
    if (!enabled())
        return;
    for (const auto &e : entries) {
        checkToken("key", e.first);
        checkToken("payload", e.second);
    }
    entries_ = std::move(entries);
    persist();
}

void
ShardCheckpoint::persist() const
{
    std::string text(kHeader);
    text += '\n';
    for (const auto &e : entries_) {
        text += e.first;
        text += '\t';
        text += e.second;
        text += '\n';
    }
    fatalIf(!writeTextFile(path_, text),
            "cannot write checkpoint: " + path_);
}

std::string
ShardCheckpoint::packDouble(double v)
{
    u64 bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return packU64(bits);
}

double
ShardCheckpoint::unpackDouble(const std::string &s)
{
    const u64 bits = unpackU64(s);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ShardCheckpoint::packU64(u64 v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

u64
ShardCheckpoint::unpackU64(const std::string &s)
{
    fatalIf(s.size() != 16, "checkpoint: bad u64 field: '" + s + "'");
    u64 v = 0;
    for (const char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            fatal("checkpoint: bad hex digit in '" + s + "'");
        v = (v << 4) | u64(digit);
    }
    return v;
}

} // namespace usys
