#include "common/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "common/json.h"
#include "common/logging.h"

namespace usys {

namespace {

constexpr const char *kMagic = "usys-checkpoint";
constexpr const char *kVersion = "v2";

void
checkToken(const std::string &what, const std::string &s)
{
    fatalIf(s.find('\t') != std::string::npos ||
                s.find('\n') != std::string::npos ||
                s.find('\r') != std::string::npos,
            "checkpoint " + what + " contains tab/newline: '" + s + "'");
}

} // namespace

ShardCheckpoint::ShardCheckpoint(std::string path)
    : path_(std::move(path))
{}

void
ShardCheckpoint::load()
{
    if (!enabled())
        return;
    quarantined_ = false;
    std::ifstream in(path_, std::ios::binary);
    if (!in.is_open())
        return; // fresh start
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    in.close();

    // Header line: "usys-checkpoint v2 crc32c=xxxxxxxx bytes=NNN".
    const std::size_t nl = text.find('\n');
    if (nl == std::string::npos) {
        quarantine("missing header line");
        return;
    }
    const std::string header = text.substr(0, nl);
    std::istringstream hs(header);
    std::string magic, version, crc_field, bytes_field;
    hs >> magic >> version >> crc_field >> bytes_field;
    if (magic != kMagic) {
        quarantine("bad magic '" + magic + "'");
        return;
    }
    if (version != kVersion) {
        quarantine("unsupported version '" + version + "' (expected " +
                   kVersion + ")");
        return;
    }
    u32 want_crc = 0;
    unsigned long long want_bytes = 0;
    if (std::sscanf(crc_field.c_str(), "crc32c=%8x", &want_crc) != 1 ||
        std::sscanf(bytes_field.c_str(), "bytes=%llu", &want_bytes) != 1) {
        quarantine("malformed header '" + header + "'");
        return;
    }
    // Body = everything after the header's newline. The byte count
    // catches truncation with a precise message; the CRC catches it
    // too, plus any in-place corruption.
    const std::string body = text.substr(nl + 1);
    if (body.size() != want_bytes) {
        quarantine("body is " + std::to_string(body.size()) +
                   " bytes, header says " + std::to_string(want_bytes) +
                   " (truncated?)");
        return;
    }
    const u32 got_crc = crc32c(body);
    if (got_crc != want_crc) {
        char msg[96];
        std::snprintf(msg, sizeof(msg),
                      "crc32c mismatch (file %08x, computed %08x)",
                      want_crc, got_crc);
        quarantine(msg);
        return;
    }

    std::map<std::string, std::string> entries;
    std::istringstream bs(body);
    std::string line;
    while (std::getline(bs, line)) {
        if (line.empty())
            continue;
        const std::size_t tab = line.find('\t');
        if (tab == std::string::npos) {
            // CRC passed, so this is a writer bug, not disk rot — but
            // the recovery contract is the same: never restore it.
            quarantine("malformed line: '" + line + "'");
            return;
        }
        entries[line.substr(0, tab)] = line.substr(tab + 1);
    }
    entries_ = std::move(entries);
    inform("checkpoint " + path_ + ": restored " +
           std::to_string(entries_.size()) + " shard(s)");
}

void
ShardCheckpoint::quarantine(const std::string &why)
{
    entries_.clear();
    quarantined_ = true;
    const std::string dest = path_ + ".corrupt";
    if (std::rename(path_.c_str(), dest.c_str()) == 0) {
        warn("checkpoint " + path_ + ": " + why + " — quarantined to " +
             dest + ", starting cold");
    } else {
        warn("checkpoint " + path_ + ": " + why +
             " — quarantine rename failed (" +
             std::string(std::strerror(errno)) + "), starting cold");
    }
}

bool
ShardCheckpoint::has(const std::string &key) const
{
    return entries_.count(key) != 0;
}

const std::string &
ShardCheckpoint::find(const std::string &key) const
{
    static const std::string empty;
    const auto it = entries_.find(key);
    return it == entries_.end() ? empty : it->second;
}

void
ShardCheckpoint::record(const std::string &key, const std::string &payload)
{
    if (!enabled())
        return;
    checkToken("key", key);
    checkToken("payload", payload);
    entries_[key] = payload;
    persist();
}

void
ShardCheckpoint::replaceAll(std::map<std::string, std::string> entries)
{
    if (!enabled())
        return;
    for (const auto &e : entries) {
        checkToken("key", e.first);
        checkToken("payload", e.second);
    }
    entries_ = std::move(entries);
    persist();
}

void
ShardCheckpoint::persist() const
{
    std::string body;
    for (const auto &e : entries_) {
        body += e.first;
        body += '\t';
        body += e.second;
        body += '\n';
    }
    char header[96];
    std::snprintf(header, sizeof(header), "%s %s crc32c=%08x bytes=%zu\n",
                  kMagic, kVersion, crc32c(body), body.size());
    fatalIf(!writeTextFile(path_, header + body),
            "cannot write checkpoint: " + path_);
}

std::string
ShardCheckpoint::packDouble(double v)
{
    u64 bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return packU64(bits);
}

double
ShardCheckpoint::unpackDouble(const std::string &s)
{
    const u64 bits = unpackU64(s);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ShardCheckpoint::packU64(u64 v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

u64
ShardCheckpoint::unpackU64(const std::string &s)
{
    fatalIf(s.size() != 16, "checkpoint: bad u64 field: '" + s + "'");
    u64 v = 0;
    for (const char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            fatal("checkpoint: bad hex digit in '" + s + "'");
        v = (v << 4) | u64(digit);
    }
    return v;
}

} // namespace usys
