/**
 * @file
 * NEON (AArch64 ASIMD) implementations of the SimdKernels table.
 *
 * This translation unit is the only one that touches <arm_neon.h>
 * (see src/common/CMakeLists.txt). ASIMD is architecturally mandatory
 * on AArch64, so unlike the x86 tiers no runtime feature probe is
 * needed — the table is available whenever the build targeted arm64.
 * Without NEON support the file degrades to a stub returning nullptr,
 * mirroring simd_avx2.cc.
 *
 * Bit-exactness notes:
 *  - cnt/addv popcounts, compares, and the vmull_s32 widening multiply
 *    are exact integer operations; only summation order differs, and
 *    integer sums are order-free.
 *  - the fp32 kernel issues exactly one fmul and one fadd per element
 *    (explicit vmulq/vaddq, never vfmaq; -ffp-contract=off on this TU),
 *    matching the generic loop's rounding per element.
 */

#include "common/simd.h"

#if defined(USYS_HAVE_NEON)

#include <arm_neon.h>
#include <bit>

namespace usys {
namespace {

/**
 * Bulk popcount: vcnt gives per-byte counts; the pairwise-widening
 * ladder (vpaddlq u8->u16->u32->u64) folds a 16-byte vector into two
 * u64 lanes without ever overflowing, and the ladder results
 * accumulate across iterations so the horizontal vaddvq runs once.
 */
u64
popcountWordsNeon(const u64 *words, std::size_t n)
{
    const u8 *bytes = reinterpret_cast<const u8 *>(words);
    uint64x2_t acc = vdupq_n_u64(0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint8x16_t v = vld1q_u8(bytes + i * 8);
        acc = vpadalq_u32(acc, vpaddlq_u16(vpaddlq_u8(vcntq_u8(v))));
    }
    u64 sum = vaddvq_u64(acc);
    for (; i < n; ++i)
        sum += u64(std::popcount(words[i]));
    return sum;
}

/** Low byte of an 8-lane unsigned compare: bit j set iff v[j] < thr. */
inline u64
packByteLt(const u32 *values, uint32x4_t thr)
{
    // vcltq yields all-ones lanes; masking with the lane's bit weight
    // and adding across lanes assembles the byte in stream bit order.
    static const u32 kWeightLo[4] = {1u, 2u, 4u, 8u};
    static const u32 kWeightHi[4] = {16u, 32u, 64u, 128u};
    const uint32x4_t w_lo = vld1q_u32(kWeightLo);
    const uint32x4_t w_hi = vld1q_u32(kWeightHi);
    const uint32x4_t lt_lo = vcltq_u32(vld1q_u32(values), thr);
    const uint32x4_t lt_hi = vcltq_u32(vld1q_u32(values + 4), thr);
    return u64(vaddvq_u32(vandq_u32(lt_lo, w_lo)) +
               vaddvq_u32(vandq_u32(lt_hi, w_hi)));
}

void
thresholdPackWordsNeon(const u32 *values, u32 n, u32 threshold, u64 *out)
{
    const uint32x4_t thr = vdupq_n_u32(threshold);
    u32 k = 0;
    u32 w = 0;
    for (; k + 64 <= n; k += 64, ++w) {
        u64 word = 0;
        for (u32 j = 0; j < 64; j += 8)
            word |= packByteLt(values + k + j, thr) << j;
        out[w] = word;
    }
    if (k < n) {
        u64 word = 0;
        for (u32 j = 0; k + j < n; ++j)
            word |= u64(values[k + j] < threshold) << j;
        out[w] = word;
    }
}

void
prefixPopcountNeon(const u64 *words, u32 nwords, u32 *prefix)
{
    // Two-pass block-offset scheme (DESIGN.md §11): pass 1 stores the
    // independent per-word counts — vcnt popcounts of word pairs,
    // narrowed to u32 lanes — with no serial dependency; pass 2 folds
    // the running offset with one-cycle scalar adds. Blocks keep the
    // count slab L1-resident between the passes.
    constexpr u32 kBlock = 4096;
    const u8 *bytes = reinterpret_cast<const u8 *>(words);
    prefix[0] = 0;
    u32 run = 0;
    for (u32 base = 0; base < nwords; base += kBlock) {
        const u32 hi = std::min(nwords, base + kBlock);
        u32 w = base;
        for (; w + 2 <= hi; w += 2) {
            const uint8x16_t v = vld1q_u8(bytes + w * 8);
            const uint64x2_t cnt =
                vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v))));
            prefix[w + 1] = u32(vgetq_lane_u64(cnt, 0));
            prefix[w + 2] = u32(vgetq_lane_u64(cnt, 1));
        }
        for (; w < hi; ++w)
            prefix[w + 1] = u32(std::popcount(words[w]));
        for (w = base; w < hi; ++w) {
            run += prefix[w + 1];
            prefix[w + 1] = run;
        }
    }
}

void
axpyF32Neon(float *c, const float *b, float a, int n)
{
    const float32x4_t va = vdupq_n_f32(a);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
        const float32x4_t vb = vld1q_f32(b + j);
        const float32x4_t vc = vld1q_f32(c + j);
        // Explicit mul + add (not vfmaq): one rounding per operation,
        // matching the generic tier exactly.
        vst1q_f32(c + j, vaddq_f32(vc, vmulq_f32(va, vb)));
    }
    for (; j < n; ++j)
        c[j] += a * b[j];
}

void
gemmRowI32Neon(i64 *c, const i32 *b, i32 a, int n)
{
    // vmull_s32 is an exact 32x32->64 widening multiply for the full
    // i32 range of both operands.
    const int32x2_t va = vdup_n_s32(a);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
        const int32x4_t vb = vld1q_s32(b + j);
        const int64x2_t p0 = vmull_s32(vget_low_s32(vb), va);
        const int64x2_t p1 = vmull_s32(vget_high_s32(vb), va);
        vst1q_s64(c + j, vaddq_s64(vld1q_s64(c + j), p0));
        vst1q_s64(c + j + 2, vaddq_s64(vld1q_s64(c + j + 2), p1));
    }
    for (; j < n; ++j)
        c[j] += i64(a) * i64(b[j]);
}

const SimdKernels kNeon = {
    SimdLevel::Neon,    popcountWordsNeon, thresholdPackWordsNeon,
    prefixPopcountNeon, axpyF32Neon,       gemmRowI32Neon,
};

} // namespace

namespace detail {

const SimdKernels *
neonKernelsImpl()
{
    return &kNeon;
}

} // namespace detail
} // namespace usys

#else // !USYS_HAVE_NEON

namespace usys {
namespace detail {

const SimdKernels *
neonKernelsImpl()
{
    return nullptr;
}

} // namespace detail
} // namespace usys

#endif // USYS_HAVE_NEON
