#include "common/logging.h"

#include <atomic>

#include "common/event_trace.h"

namespace usys {

namespace {

LogLevel
initialLogLevel()
{
    const char *env = std::getenv("USYS_LOG_LEVEL");
    return env ? parseLogLevel(env) : LogLevel::Inform;
}

LogLevel &
levelRef()
{
    static LogLevel level = initialLogLevel();
    return level;
}

std::string &
threadTagRef()
{
    thread_local std::string tag;
    if (tag.empty()) {
        static std::atomic<u32> next{0};
        tag = "t" + std::to_string(next.fetch_add(1));
    }
    return tag;
}

/** `[+<elapsed-ms> <tag>] ` — who logged, and when on the shared
 *  host clock, so interleaved multi-threaded output stays attributable. */
std::string
linePrefix()
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "[+%.3fms %s] ",
                  hostTimeUs() / 1000.0, threadTagRef().c_str());
    return buf;
}

void
emit(const char *level, const std::string &msg)
{
    const std::string line =
        std::string(level) + ": " + linePrefix() + msg + "\n";
    // One fwrite per line: stderr is unbuffered, but a single write
    // keeps concurrent threads' lines from interleaving mid-line.
    std::fwrite(line.data(), 1, line.size(), stderr);
}

} // namespace

LogLevel
logLevel()
{
    return levelRef();
}

void
setLogLevel(LogLevel level)
{
    levelRef() = level;
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "debug")
        return LogLevel::Debug;
    if (name == "inform" || name == "info")
        return LogLevel::Inform;
    if (name == "warn" || name == "warning")
        return LogLevel::Warn;
    if (name == "quiet" || name == "none")
        return LogLevel::Quiet;
    std::fprintf(stderr,
                 "warn: unknown USYS_LOG_LEVEL '%s', using 'inform'\n",
                 name.c_str());
    return LogLevel::Inform;
}

const std::string &
logThreadTag()
{
    return threadTagRef();
}

void
setLogThreadTag(const std::string &tag)
{
    threadTagRef() = tag;
}

void
debug(const std::string &msg)
{
    if (logLevel() <= LogLevel::Debug)
        emit("debug", msg);
}

void
inform(const std::string &msg)
{
    if (logLevel() <= LogLevel::Inform)
        emit("info", msg);
}

void
warn(const std::string &msg)
{
    if (logLevel() <= LogLevel::Warn)
        emit("warn", msg);
}

void
fatal(const std::string &msg)
{
    emit("fatal", msg);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    emit("panic", msg);
    std::abort();
}

} // namespace usys
