#include "common/logging.h"

namespace usys {

namespace {

LogLevel
initialLogLevel()
{
    const char *env = std::getenv("USYS_LOG_LEVEL");
    return env ? parseLogLevel(env) : LogLevel::Inform;
}

LogLevel &
levelRef()
{
    static LogLevel level = initialLogLevel();
    return level;
}

} // namespace

LogLevel
logLevel()
{
    return levelRef();
}

void
setLogLevel(LogLevel level)
{
    levelRef() = level;
}

LogLevel
parseLogLevel(const std::string &name)
{
    if (name == "debug")
        return LogLevel::Debug;
    if (name == "inform" || name == "info")
        return LogLevel::Inform;
    if (name == "warn" || name == "warning")
        return LogLevel::Warn;
    if (name == "quiet" || name == "none")
        return LogLevel::Quiet;
    std::fprintf(stderr,
                 "warn: unknown USYS_LOG_LEVEL '%s', using 'inform'\n",
                 name.c_str());
    return LogLevel::Inform;
}

void
debug(const std::string &msg)
{
    if (logLevel() <= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (logLevel() <= LogLevel::Inform)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
warn(const std::string &msg)
{
    if (logLevel() <= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace usys
