#include "common/executor.h"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "common/profiler.h"
#include "common/stats_registry.h"

namespace usys {

namespace {

using SteadyClock = std::chrono::steady_clock;

u64
elapsedNs(SteadyClock::time_point from, SteadyClock::time_point to)
{
    return u64(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   to - from)
                   .count());
}

/** Set while a thread executes chunks of a parallel region; the signal
 *  that makes nested parallelFor calls run inline. */
thread_local bool tl_in_region = false;

bool g_forkjoin_baseline = false;

unsigned
resolveAutoThreads()
{
    if (const char *env = std::getenv("USYS_THREADS")) {
        char *tail = nullptr;
        const long v = std::strtol(env, &tail, 10);
        if (tail != env && *tail == '\0' && v >= 1 && v <= 4096)
            return unsigned(v);
        warn(std::string("ignoring invalid USYS_THREADS='") + env + "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace

void
setForkJoinBaseline(bool on)
{
    g_forkjoin_baseline = on;
}

bool
forkJoinBaseline()
{
    return g_forkjoin_baseline;
}

/**
 * The worker pool plus the (single) active region's shared state.
 * Top-level regions are serialized by region_mu_: parallelFor blocks
 * until its region completes, inner regions run inline, so at most one
 * region is ever active per process and the per-slot deques can be
 * reused without versioning.
 */
struct Executor::Pool
{
    struct Deque
    {
        std::mutex mu;
        std::vector<std::pair<u64, u64>> chunks; // [lo, hi) runs
        std::size_t head = 0;                    // owner pops here
    };

    /** Per-slot telemetry; counters are written only by the owning
     *  thread (relaxed), the latency histogram is merged quiescently.
     *  Padded so adjacent slots do not share a cache line. */
    struct alignas(64) SlotStats
    {
        std::atomic<u64> tasks{0};
        std::atomic<u64> steals{0};
        std::atomic<u64> steal_fails{0};
        std::atomic<u64> busy_ns{0};
        std::atomic<u64> idle_ns{0};
        Histogram latency{"", "chunk latency (us)",
                          Executor::kTaskLatencyLoUs,
                          Executor::kTaskLatencyHiUs,
                          Executor::kTaskLatencyBuckets};
    };

    explicit Pool(unsigned threads)
        : nthreads(threads), deques(threads), slot_stats(threads)
    {
        workers.reserve(threads - 1);
        for (unsigned t = 1; t < threads; ++t)
            workers.emplace_back([this, t] { workerLoop(t); });
    }

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lock(gen_mu);
            stop = true;
        }
        gen_cv.notify_all();
        for (auto &w : workers)
            w.join();
    }

    /** Owner end: next undealt chunk of this slot's deque. */
    bool
    popOwn(unsigned slot, std::pair<u64, u64> &out)
    {
        Deque &dq = deques[slot];
        std::lock_guard<std::mutex> lock(dq.mu);
        if (dq.head >= dq.chunks.size())
            return false;
        out = dq.chunks[dq.head++];
        return true;
    }

    /** Thief end: take the last chunk of some other slot's deque. */
    bool
    steal(unsigned self, std::pair<u64, u64> &out)
    {
        for (unsigned off = 1; off < nthreads; ++off) {
            Deque &dq = deques[(self + off) % nthreads];
            std::lock_guard<std::mutex> lock(dq.mu);
            if (dq.head < dq.chunks.size()) {
                out = dq.chunks.back();
                dq.chunks.pop_back();
                steals.fetch_add(1, std::memory_order_relaxed);
                slot_stats[self].steals.fetch_add(
                    1, std::memory_order_relaxed);
                return true;
            }
        }
        slot_stats[self].steal_fails.fetch_add(1,
                                               std::memory_order_relaxed);
        return false;
    }

    /** Drain the region from slot `self`: own deque first, then steal. */
    void
    participate(unsigned self)
    {
        tl_in_region = true;
        SlotStats &st = slot_stats[self];
        std::pair<u64, u64> chunk;
        while (popOwn(self, chunk) || steal(self, chunk)) {
            // Re-anchor per chunk, not per participate() call: a
            // straggler draining the previous region can pop chunks of
            // the next one, whose anchor path differs. The deque mutex
            // gave us the happens-before edge to run()'s prof_* writes,
            // and applyWorkerAnchor is idempotent per region id. The
            // caller (slot 0) already sits at the anchor path.
            if (self != 0 && prof_active)
                Profiler::global().applyWorkerAnchor(prof_path,
                                                     prof_region_id);
            if (!failed.load(std::memory_order_acquire)) {
                const auto t0 = SteadyClock::now();
                try {
                    (*body)(chunk.first, chunk.second);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mu);
                    if (!failed.exchange(true, std::memory_order_acq_rel))
                        error = std::current_exception();
                }
                const u64 ns = elapsedNs(t0, SteadyClock::now());
                st.tasks.fetch_add(1, std::memory_order_relaxed);
                st.busy_ns.fetch_add(ns, std::memory_order_relaxed);
                st.latency.add(double(ns) * 1e-3);
            }
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(done_mu);
                done_cv.notify_all();
            }
        }
        tl_in_region = false;
    }

    void
    workerLoop(unsigned slot)
    {
        setLogThreadTag("w" + std::to_string(slot));
        u64 seen = 0;
        std::unique_lock<std::mutex> lock(gen_mu);
        for (;;) {
            const auto w0 = SteadyClock::now();
            gen_cv.wait(lock, [&] { return stop || generation != seen; });
            slot_stats[slot].idle_ns.fetch_add(
                elapsedNs(w0, SteadyClock::now()),
                std::memory_order_relaxed);
            if (stop)
                return;
            seen = generation;
            lock.unlock();
            participate(slot);
            lock.lock();
        }
    }

    const unsigned nthreads;
    std::vector<Deque> deques;
    std::vector<SlotStats> slot_stats;
    std::atomic<u64> steals{0};

    // Active-region state; written by the caller before the generation
    // bump publishes it, cleared only by the next region.
    const std::function<void(u64, u64)> *body = nullptr;
    // Profiler anchor for this region: the caller's scope path at region
    // entry, plus a monotonically increasing id that makes per-chunk
    // anchor application idempotent. Plain fields — published to the
    // workers through the same deque mutexes as `body`.
    std::vector<const char *> prof_path;
    u64 prof_region_id = 0;
    bool prof_active = false;
    std::atomic<u64> remaining{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;

    std::mutex region_mu; // one top-level region at a time

    std::mutex gen_mu;
    std::condition_variable gen_cv;
    u64 generation = 0;
    bool stop = false;

    std::mutex done_mu;
    std::condition_variable done_cv;

    std::vector<std::thread> workers;
};

Executor &
Executor::global()
{
    // Intentionally leaked: a static destructor would join the worker
    // threads at exit, which is unsafe in processes that fork (a gtest
    // death-test child inherits the pool pointer but none of the worker
    // threads — joining them segfaults). Workers blocked on gen_cv are
    // simply reaped by process exit.
    static Executor *ex = new Executor;
    return *ex;
}

Executor::~Executor()
{
    delete pool_;
}

Executor::Pool *
Executor::pool()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!pool_) {
        const unsigned n =
            explicit_threads_ ? explicit_threads_ : resolveAutoThreads();
        pool_ = new Pool(std::max(1u, n));
    }
    return pool_;
}

unsigned
Executor::threads()
{
    return pool()->nthreads;
}

void
Executor::setThreads(unsigned n)
{
    std::lock_guard<std::mutex> lock(mu_);
    explicit_threads_ = n;
    if (pool_ && pool_->nthreads !=
                     (n ? n : resolveAutoThreads())) {
        delete pool_; // joins the workers
        pool_ = nullptr;
    }
}

bool
Executor::inParallelRegion()
{
    return tl_in_region;
}

u64
Executor::stealCount() const
{
    // Read-only peek; a pool restart resets the count. The lock only
    // fences against setThreads() deleting the pool mid-read — the
    // counter loads themselves stay relaxed.
    std::lock_guard<std::mutex> lock(mu_);
    return pool_ ? pool_->steals.load(std::memory_order_relaxed) : 0;
}

std::vector<Executor::WorkerCounters>
Executor::workerCounters() const
{
    // Same read-only peek contract as stealCount(): relaxed loads of
    // owner-written counters, tolerating concurrent updates.
    std::vector<WorkerCounters> out;
    std::lock_guard<std::mutex> lock(mu_);
    if (!pool_)
        return out;
    out.reserve(pool_->nthreads);
    for (const auto &st : pool_->slot_stats) {
        WorkerCounters c;
        c.tasks = st.tasks.load(std::memory_order_relaxed);
        c.steals = st.steals.load(std::memory_order_relaxed);
        c.steal_fails = st.steal_fails.load(std::memory_order_relaxed);
        c.busy_ns = st.busy_ns.load(std::memory_order_relaxed);
        c.idle_ns = st.idle_ns.load(std::memory_order_relaxed);
        out.push_back(c);
    }
    return out;
}

void
Executor::mergeTaskLatency(Histogram &dst) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!pool_)
        return;
    for (const auto &st : pool_->slot_stats)
        dst.merge(st.latency);
}

void
Executor::run(u64 begin, u64 end, u64 grain,
              const std::function<void(u64, u64)> &body)
{
    Pool &p = *pool();
    const u64 n = end - begin;
    const u64 chunks = (n + grain - 1) / grain;

    std::lock_guard<std::mutex> region(p.region_mu);

    // Publish the region state BEFORE any chunk becomes visible: a
    // straggler worker still draining the previous region may pop a new
    // chunk the moment it lands in a deque (the deque mutexes provide
    // the happens-before edge to these writes).
    p.body = &body;
    p.failed.store(false, std::memory_order_relaxed);
    p.error = nullptr;
    Profiler &prof = Profiler::global();
    p.prof_active = prof.enabled();
    if (p.prof_active) {
        p.prof_path = prof.currentPath();
        ++p.prof_region_id;
    }
    p.remaining.store(chunks, std::memory_order_release);

    // Deal contiguous runs of chunks to the slots (slot 0 = caller):
    // contiguous initial ownership keeps per-thread index locality, and
    // stealing from the back hands a thief the run farthest from the
    // owner's cursor.
    const u64 per = (chunks + p.nthreads - 1) / p.nthreads;
    for (unsigned s = 0; s < p.nthreads; ++s) {
        Pool::Deque &dq = p.deques[s];
        std::lock_guard<std::mutex> lock(dq.mu);
        dq.chunks.clear();
        dq.head = 0;
        const u64 first = u64(s) * per;
        const u64 last = std::min(chunks, first + per);
        for (u64 c = first; c < last; ++c) {
            const u64 lo = begin + c * grain;
            dq.chunks.emplace_back(lo, std::min(end, lo + grain));
        }
    }

    {
        std::lock_guard<std::mutex> lock(p.gen_mu);
        ++p.generation;
    }
    p.gen_cv.notify_all();

    p.participate(0);

    if (p.remaining.load(std::memory_order_acquire) != 0) {
        std::unique_lock<std::mutex> lock(p.done_mu);
        p.done_cv.wait(lock, [&] {
            return p.remaining.load(std::memory_order_acquire) == 0;
        });
    }

    if (p.failed.load(std::memory_order_acquire)) {
        std::exception_ptr e;
        {
            std::lock_guard<std::mutex> lock(p.error_mu);
            e = p.error;
            p.error = nullptr;
        }
        std::rethrow_exception(e);
    }
}

} // namespace usys
