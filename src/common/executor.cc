#include "common/executor.h"

#include <condition_variable>
#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace usys {

namespace {

/** Set while a thread executes chunks of a parallel region; the signal
 *  that makes nested parallelFor calls run inline. */
thread_local bool tl_in_region = false;

bool g_forkjoin_baseline = false;

unsigned
resolveAutoThreads()
{
    if (const char *env = std::getenv("USYS_THREADS")) {
        char *tail = nullptr;
        const long v = std::strtol(env, &tail, 10);
        if (tail != env && *tail == '\0' && v >= 1 && v <= 4096)
            return unsigned(v);
        warn(std::string("ignoring invalid USYS_THREADS='") + env + "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace

void
setForkJoinBaseline(bool on)
{
    g_forkjoin_baseline = on;
}

bool
forkJoinBaseline()
{
    return g_forkjoin_baseline;
}

/**
 * The worker pool plus the (single) active region's shared state.
 * Top-level regions are serialized by region_mu_: parallelFor blocks
 * until its region completes, inner regions run inline, so at most one
 * region is ever active per process and the per-slot deques can be
 * reused without versioning.
 */
struct Executor::Pool
{
    struct Deque
    {
        std::mutex mu;
        std::vector<std::pair<u64, u64>> chunks; // [lo, hi) runs
        std::size_t head = 0;                    // owner pops here
    };

    explicit Pool(unsigned threads) : nthreads(threads), deques(threads)
    {
        workers.reserve(threads - 1);
        for (unsigned t = 1; t < threads; ++t)
            workers.emplace_back([this, t] { workerLoop(t); });
    }

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lock(gen_mu);
            stop = true;
        }
        gen_cv.notify_all();
        for (auto &w : workers)
            w.join();
    }

    /** Owner end: next undealt chunk of this slot's deque. */
    bool
    popOwn(unsigned slot, std::pair<u64, u64> &out)
    {
        Deque &dq = deques[slot];
        std::lock_guard<std::mutex> lock(dq.mu);
        if (dq.head >= dq.chunks.size())
            return false;
        out = dq.chunks[dq.head++];
        return true;
    }

    /** Thief end: take the last chunk of some other slot's deque. */
    bool
    steal(unsigned self, std::pair<u64, u64> &out)
    {
        for (unsigned off = 1; off < nthreads; ++off) {
            Deque &dq = deques[(self + off) % nthreads];
            std::lock_guard<std::mutex> lock(dq.mu);
            if (dq.head < dq.chunks.size()) {
                out = dq.chunks.back();
                dq.chunks.pop_back();
                steals.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
        }
        return false;
    }

    /** Drain the region from slot `self`: own deque first, then steal. */
    void
    participate(unsigned self)
    {
        tl_in_region = true;
        std::pair<u64, u64> chunk;
        while (popOwn(self, chunk) || steal(self, chunk)) {
            if (!failed.load(std::memory_order_acquire)) {
                try {
                    (*body)(chunk.first, chunk.second);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mu);
                    if (!failed.exchange(true, std::memory_order_acq_rel))
                        error = std::current_exception();
                }
            }
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(done_mu);
                done_cv.notify_all();
            }
        }
        tl_in_region = false;
    }

    void
    workerLoop(unsigned slot)
    {
        u64 seen = 0;
        std::unique_lock<std::mutex> lock(gen_mu);
        for (;;) {
            gen_cv.wait(lock, [&] { return stop || generation != seen; });
            if (stop)
                return;
            seen = generation;
            lock.unlock();
            participate(slot);
            lock.lock();
        }
    }

    const unsigned nthreads;
    std::vector<Deque> deques;
    std::atomic<u64> steals{0};

    // Active-region state; written by the caller before the generation
    // bump publishes it, cleared only by the next region.
    const std::function<void(u64, u64)> *body = nullptr;
    std::atomic<u64> remaining{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;

    std::mutex region_mu; // one top-level region at a time

    std::mutex gen_mu;
    std::condition_variable gen_cv;
    u64 generation = 0;
    bool stop = false;

    std::mutex done_mu;
    std::condition_variable done_cv;

    std::vector<std::thread> workers;
};

Executor &
Executor::global()
{
    // Intentionally leaked: a static destructor would join the worker
    // threads at exit, which is unsafe in processes that fork (a gtest
    // death-test child inherits the pool pointer but none of the worker
    // threads — joining them segfaults). Workers blocked on gen_cv are
    // simply reaped by process exit.
    static Executor *ex = new Executor;
    return *ex;
}

Executor::~Executor()
{
    delete pool_;
}

Executor::Pool *
Executor::pool()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!pool_) {
        const unsigned n =
            explicit_threads_ ? explicit_threads_ : resolveAutoThreads();
        pool_ = new Pool(std::max(1u, n));
    }
    return pool_;
}

unsigned
Executor::threads()
{
    return pool()->nthreads;
}

void
Executor::setThreads(unsigned n)
{
    std::lock_guard<std::mutex> lock(mu_);
    explicit_threads_ = n;
    if (pool_ && pool_->nthreads !=
                     (n ? n : resolveAutoThreads())) {
        delete pool_; // joins the workers
        pool_ = nullptr;
    }
}

bool
Executor::inParallelRegion()
{
    return tl_in_region;
}

u64
Executor::stealCount() const
{
    // Read-only peek; a pool restart resets the count.
    return pool_ ? pool_->steals.load(std::memory_order_relaxed) : 0;
}

void
Executor::run(u64 begin, u64 end, u64 grain,
              const std::function<void(u64, u64)> &body)
{
    Pool &p = *pool();
    const u64 n = end - begin;
    const u64 chunks = (n + grain - 1) / grain;

    std::lock_guard<std::mutex> region(p.region_mu);

    // Publish the region state BEFORE any chunk becomes visible: a
    // straggler worker still draining the previous region may pop a new
    // chunk the moment it lands in a deque (the deque mutexes provide
    // the happens-before edge to these writes).
    p.body = &body;
    p.failed.store(false, std::memory_order_relaxed);
    p.error = nullptr;
    p.remaining.store(chunks, std::memory_order_release);

    // Deal contiguous runs of chunks to the slots (slot 0 = caller):
    // contiguous initial ownership keeps per-thread index locality, and
    // stealing from the back hands a thief the run farthest from the
    // owner's cursor.
    const u64 per = (chunks + p.nthreads - 1) / p.nthreads;
    for (unsigned s = 0; s < p.nthreads; ++s) {
        Pool::Deque &dq = p.deques[s];
        std::lock_guard<std::mutex> lock(dq.mu);
        dq.chunks.clear();
        dq.head = 0;
        const u64 first = u64(s) * per;
        const u64 last = std::min(chunks, first + per);
        for (u64 c = first; c < last; ++c) {
            const u64 lo = begin + c * grain;
            dq.chunks.emplace_back(lo, std::min(end, lo + grain));
        }
    }

    {
        std::lock_guard<std::mutex> lock(p.gen_mu);
        ++p.generation;
    }
    p.gen_cv.notify_all();

    p.participate(0);

    if (p.remaining.load(std::memory_order_acquire) != 0) {
        std::unique_lock<std::mutex> lock(p.done_mu);
        p.done_cv.wait(lock, [&] {
            return p.remaining.load(std::memory_order_acquire) == 0;
        });
    }

    if (p.failed.load(std::memory_order_acquire)) {
        std::exception_ptr e;
        {
            std::lock_guard<std::mutex> lock(p.error_mu);
            e = p.error;
            p.error = nullptr;
        }
        std::rethrow_exception(e);
    }
}

} // namespace usys
