/**
 * @file
 * Deterministic PRNG for synthetic data generation and tests.
 *
 * This is a software utility generator (xoshiro256**), distinct from the
 * hardware Sobol/LFSR RNGs modeled in src/unary.
 */

#ifndef USYS_COMMON_PRNG_H
#define USYS_COMMON_PRNG_H

#include <cmath>

#include "common/types.h"

namespace usys {

/** xoshiro256** with splitmix64 seeding; reproducible across platforms. */
class Prng
{
  public:
    explicit Prng(u64 seed = 0x5EEDu) { reseed(seed); }

    /** Reset the generator state from a 64-bit seed. */
    void
    reseed(u64 seed)
    {
        u64 x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9E3779B97F4A7C15ull;
            u64 z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 uniform random bits. */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    u64
    below(u64 bound)
    {
        return next() % bound;
    }

    /** Uniform real in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Standard normal via Box-Muller. */
    double
    gaussian()
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    }

  private:
    static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

    u64 state_[4] = {};
};

} // namespace usys

#endif // USYS_COMMON_PRNG_H
