/**
 * @file
 * Chrome-trace / Perfetto-compatible event emitter.
 *
 * Simulation layers emit complete ("ph":"X"), instant ("i") and counter
 * ("C") events onto named tracks; the collected buffer serializes to the
 * Trace Event Format JSON that chrome://tracing and ui.perfetto.dev load
 * directly. Timestamps are microseconds: simulated tracks map cycles to
 * us through the accelerator clock so the timeline reads in real device
 * time, while ScopedTimer emits host wall-clock profiling events onto a
 * dedicated "host" track.
 *
 * Tracing is off by default (the emitter is a cheap no-op); bench
 * drivers enable it when --trace-out is given. The buffer is capped so a
 * fold-level instrumentation of a huge sweep cannot exhaust memory —
 * drops are counted and reported.
 */

#ifndef USYS_COMMON_EVENT_TRACE_H
#define USYS_COMMON_EVENT_TRACE_H

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace usys {

/** One key/number pair attached to an event's "args". */
using TraceArg = std::pair<std::string, double>;

/** Buffered Chrome-trace event collector. */
class EventTrace
{
  public:
    /** Process-wide trace written by the instrumented layers. */
    static EventTrace &global();

    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /**
     * Id of the named track (Chrome "tid"); registered on first use and
     * emitted as thread_name metadata so Perfetto labels the row.
     */
    int track(const std::string &name);

    /** Duration event: [ts_us, ts_us + dur_us) on the given track. */
    void complete(int tid, const std::string &name,
                  const std::string &cat, double ts_us, double dur_us,
                  const std::vector<TraceArg> &args = {});

    /** Zero-duration marker. */
    void instant(int tid, const std::string &name,
                 const std::string &cat, double ts_us);

    /** Counter-track sample (renders as a stacked area in Perfetto). */
    void counter(int tid, const std::string &name, double ts_us,
                 double value);

    /**
     * Per-track simulated-time cursor: returns the current position and
     * advances it by dur_us. Lets independent layers append events
     * back-to-back on a shared track without coordinating timestamps.
     */
    double advance(int tid, double dur_us);
    double cursor(int tid) const;

    /** Full Trace Event Format document. */
    std::string json() const;
    bool writeFile(const std::string &path) const;

    void clear();
    std::size_t eventCount() const;
    u64 dropped() const { return dropped_; }

  private:
    struct Event
    {
        char ph;
        int tid;
        std::string name;
        std::string cat;
        double ts_us;
        double dur_us;
        std::string args_json; // pre-encoded object body, may be empty
    };

    static constexpr std::size_t kMaxEvents = 1u << 20;

    bool enabled_ = false;
    mutable std::mutex mu_;
    std::vector<Event> events_;
    std::map<std::string, int> track_ids_;
    std::vector<std::string> track_names_;
    std::vector<double> cursors_;
    u64 dropped_ = 0;

    bool push(Event &&e);
};

/**
 * RAII wall-clock profiler: emits one complete event on the trace's
 * "host" track covering this scope. No-op when tracing is disabled.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const std::string &name,
                         const std::string &cat = "host",
                         EventTrace &trace = EventTrace::global());
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    EventTrace &trace_;
    std::string name_;
    std::string cat_;
    bool active_;
    std::chrono::steady_clock::time_point start_;
};

/** Microseconds elapsed since process start (host profiling clock). */
double hostTimeUs();

} // namespace usys

#endif // USYS_COMMON_EVENT_TRACE_H
