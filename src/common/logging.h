/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * fatal() is for user-recoverable configuration errors (exit(1));
 * panic() is for internal invariant violations (abort()).
 *
 * debug()/inform()/warn() are gated by a verbosity level, initialized
 * from the USYS_LOG_LEVEL environment variable ("debug", "inform",
 * "warn", or "quiet"; default "inform") so instrumented hot paths can
 * log without flooding stderr. fatal()/panic() always print.
 */

#ifndef USYS_COMMON_LOGGING_H
#define USYS_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace usys {

/** Message severities, ordered from chattiest to most severe. */
enum class LogLevel
{
    Debug = 0,
    Inform = 1,
    Warn = 2,
    Quiet = 3, // suppress everything below fatal/panic
};

/** Current verbosity threshold (messages below it are dropped). */
LogLevel logLevel();

/** Override the threshold (tests; normally set via USYS_LOG_LEVEL). */
void setLogLevel(LogLevel level);

/**
 * Parse a USYS_LOG_LEVEL value; falls back to Inform (with a warning)
 * on an unrecognized string.
 */
LogLevel parseLogLevel(const std::string &name);

/**
 * Short tag naming the calling thread in log prefixes. Every line is
 * prefixed `[+<elapsed-ms> <tag>]` (elapsed on the shared hostTimeUs()
 * clock, so log lines and Chrome-trace events line up); executor
 * workers tag themselves "w<slot>", other threads default to "t<n>" in
 * first-log order (the main thread is almost always "t0").
 */
const std::string &logThreadTag();

/** Override the calling thread's log tag. */
void setLogThreadTag(const std::string &tag);

/** Print a debug message to stderr (dropped unless level is Debug). */
void debug(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Print a warning message to stderr. */
void warn(const std::string &msg);

/** Report a user error (bad configuration / arguments) and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal invariant violation and abort(). */
[[noreturn]] void panic(const std::string &msg);

/** panic() unless the condition holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** fatal() unless the condition holds. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace usys

#endif // USYS_COMMON_LOGGING_H
