/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * fatal() is for user-recoverable configuration errors (exit(1));
 * panic() is for internal invariant violations (abort()).
 */

#ifndef USYS_COMMON_LOGGING_H
#define USYS_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace usys {

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Print a warning message to stderr. */
void warn(const std::string &msg);

/** Report a user error (bad configuration / arguments) and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report an internal invariant violation and abort(). */
[[noreturn]] void panic(const std::string &msg);

/** panic() unless the condition holds. */
inline void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

/** fatal() unless the condition holds. */
inline void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

} // namespace usys

#endif // USYS_COMMON_LOGGING_H
