/**
 * @file
 * Deterministic 64-bit content hashing for cache keys.
 *
 * A splitmix64-chained byte hash: each input chunk perturbs the state,
 * then the full splitmix64 finalizer whitens it. The constants match
 * the splitmix64 steps already used for PRNG seeding (prng.h) and
 * fault-site derivation (fault.cc), so the repo has exactly one mixing
 * function family. The hash is stable across platforms and runs —
 * it keys the serve result cache, whose entries persist to disk via
 * ShardCheckpoint and must rehash identically after a restart.
 */

#ifndef USYS_COMMON_HASH_H
#define USYS_COMMON_HASH_H

#include <cstddef>
#include <string>
#include <string_view>

#include "common/types.h"

namespace usys {

/** One splitmix64 mixing step: advance the state and whiten it. */
inline u64
hashMix(u64 x)
{
    x += 0x9E3779B97F4A7C15ull;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Fold a 64-bit value into a running hash chain. */
inline u64
hashChain(u64 state, u64 value)
{
    return hashMix(state ^ value);
}

/**
 * Hash a byte string by chaining full 64-bit little-endian words, then
 * the (length-tagged) tail, through splitmix64. Length tagging keeps
 * "ab" + "c" distinct from "a" + "bc" when callers chain fields.
 */
inline u64
hashBytes(std::string_view bytes, u64 seed = 0x5EEDu)
{
    u64 h = hashMix(seed ^ u64(bytes.size()));
    std::size_t i = 0;
    for (; i + 8 <= bytes.size(); i += 8) {
        u64 w = 0;
        for (int b = 0; b < 8; ++b)
            w |= u64(u8(bytes[i + b])) << (8 * b);
        h = hashChain(h, w);
    }
    if (i < bytes.size()) {
        u64 w = 0;
        for (int b = 0; i + b < bytes.size(); ++b)
            w |= u64(u8(bytes[i + b])) << (8 * b);
        h = hashChain(h, w);
    }
    return h;
}

/** Render a hash as 16 lowercase hex digits (cache key / filename safe). */
inline std::string
hashHex(u64 h)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[std::size_t(i)] = digits[h & 0xF];
        h >>= 4;
    }
    return s;
}

/**
 * CRC32C (Castagnoli, reflected polynomial 0x82F63B78) over a byte
 * range. Table-driven software implementation — integrity checking of
 * checkpoint files is far off any hot path, so no SSE4.2 dispatch.
 * Matches the RFC 3720 test vector: crc32c("123456789") == 0xE3069283.
 * Chainable: pass the previous return value as `crc` to continue.
 */
inline u32
crc32c(std::string_view bytes, u32 crc = 0)
{
    static const u32 *table = [] {
        static u32 t[256];
        for (u32 i = 0; i < 256; ++i) {
            u32 c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
            t[i] = c;
        }
        return t;
    }();
    u32 c = ~crc;
    for (const char ch : bytes)
        c = table[(c ^ u8(ch)) & 0xFF] ^ (c >> 8);
    return ~c;
}

} // namespace usys

#endif // USYS_COMMON_HASH_H
