#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace usys {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        const unsigned char c = (unsigned char)ch;
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    // Integral values inside the exactly-representable range print as
    // integers so counters stay readable and byte-stable.
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", (long long)v);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

JsonWriter::JsonWriter(int indent)
    : indent_(indent)
{
}

void
JsonWriter::newline()
{
    if (indent_ <= 0)
        return;
    out_ += '\n';
    out_.append(std::size_t(indent_) * stack_.size(), ' ');
}

void
JsonWriter::comma()
{
    if (stack_.empty())
        return;
    if (!first_.back())
        out_ += ',';
    first_.back() = false;
    newline();
}

void
JsonWriter::key(const std::string &k)
{
    panicIf(stack_.empty() || !stack_.back(),
            "JsonWriter: key outside an object");
    comma();
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\":";
    if (indent_ > 0)
        out_ += ' ';
}

JsonWriter &
JsonWriter::beginObject()
{
    if (!stack_.empty()) {
        panicIf(stack_.back(), "JsonWriter: keyless object in an object");
        comma();
    }
    out_ += '{';
    stack_.push_back(true);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::beginObject(const std::string &k)
{
    key(k);
    out_ += '{';
    stack_.push_back(true);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    panicIf(stack_.empty() || !stack_.back(),
            "JsonWriter: endObject without beginObject");
    const bool empty = first_.back();
    stack_.pop_back();
    first_.pop_back();
    if (!empty)
        newline();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    if (!stack_.empty()) {
        panicIf(stack_.back(), "JsonWriter: keyless array in an object");
        comma();
    }
    out_ += '[';
    stack_.push_back(false);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::beginArray(const std::string &k)
{
    key(k);
    out_ += '[';
    stack_.push_back(false);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    panicIf(stack_.empty() || stack_.back(),
            "JsonWriter: endArray without beginArray");
    const bool empty = first_.back();
    stack_.pop_back();
    first_.pop_back();
    if (!empty)
        newline();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::fieldRaw(const std::string &k, const std::string &json)
{
    key(k);
    out_ += json;
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, const std::string &v)
{
    return fieldRaw(k, "\"" + jsonEscape(v) + "\"");
}

JsonWriter &
JsonWriter::field(const std::string &k, const char *v)
{
    return field(k, std::string(v));
}

JsonWriter &
JsonWriter::field(const std::string &k, double v)
{
    return fieldRaw(k, jsonNumber(v));
}

JsonWriter &
JsonWriter::field(const std::string &k, u64 v)
{
    return fieldRaw(k, std::to_string(v));
}

JsonWriter &
JsonWriter::field(const std::string &k, i64 v)
{
    return fieldRaw(k, std::to_string(v));
}

JsonWriter &
JsonWriter::field(const std::string &k, int v)
{
    return fieldRaw(k, std::to_string(v));
}

JsonWriter &
JsonWriter::field(const std::string &k, bool v)
{
    return fieldRaw(k, v ? "true" : "false");
}

JsonWriter &
JsonWriter::valueRaw(const std::string &json)
{
    panicIf(!stack_.empty() && stack_.back(),
            "JsonWriter: bare value inside an object");
    comma();
    out_ += json;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    return valueRaw("\"" + jsonEscape(v) + "\"");
}

JsonWriter &
JsonWriter::value(double v)
{
    return valueRaw(jsonNumber(v));
}

JsonWriter &
JsonWriter::value(u64 v)
{
    return valueRaw(std::to_string(v));
}

JsonWriter &
JsonWriter::value(i64 v)
{
    return valueRaw(std::to_string(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    return valueRaw(v ? "true" : "false");
}

std::string
JsonWriter::str() const
{
    panicIf(!stack_.empty(), "JsonWriter: unclosed containers");
    return out_;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    // Write-temp-then-rename so a reader (or a crash mid-write) never
    // observes a truncated artifact: rename() within a directory is
    // atomic, so `path` either holds its previous content or the full
    // new text. Checkpoint resume and the byte-identical artifact
    // guarantees both lean on this.
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        warn("cannot open " + tmp + " for writing");
        return false;
    }
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        warn("short write to " + tmp);
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("cannot rename " + tmp + " to " + path);
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace usys
