#include "common/metrics.h"

#include <chrono>
#include <cstdio>

#include "common/event_trace.h"
#include "common/executor.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/stats_registry.h"

namespace usys {

MetricsSampler &
MetricsSampler::global()
{
    static MetricsSampler sampler;
    return sampler;
}

void
MetricsSampler::start(const std::string &path, u64 interval_ms)
{
    fatalIf(running(), "metrics sampler already running");
    fatalIf(interval_ms == 0, "metrics interval must be >= 1 ms");
    out_ = std::fopen(path.c_str(), "w");
    fatalIf(out_ == nullptr, "cannot open metrics output: " + path);
    interval_ms_ = interval_ms;
    samples_ = 0;
    stop_requested_ = false;
    setvbuf(out_, nullptr, _IOLBF, 0); // line-buffered: tail -f works
    writeSample();
    thread_ = std::thread([this] {
        setLogThreadTag("metrics");
        loop();
    });
}

void
MetricsSampler::stop()
{
    if (!running())
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_requested_ = true;
    }
    cv_.notify_all();
    thread_.join();
    writeSample(); // closing data point, after the loop has quiesced
    std::fclose(out_);
    out_ = nullptr;
}

void
MetricsSampler::loop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        const bool stopping = cv_.wait_for(
            lock, std::chrono::milliseconds(interval_ms_),
            [this] { return stop_requested_; });
        if (stopping)
            return;
        lock.unlock();
        writeSample();
        lock.lock();
    }
}

void
MetricsSampler::writeSample()
{
    JsonWriter w(0);
    w.beginObject();
    w.field("ts_ms", hostTimeUs() / 1000.0);
    w.field("sample", samples_);
    w.beginObject("stats");
    statsRegistry().sampleNumeric([&w](const std::string &name, double v) {
        w.fieldRaw(name, jsonNumber(v));
    });
    w.endObject();
    w.beginObject("exec");
    const auto counters = Executor::global().workerCounters();
    for (std::size_t s = 0; s < counters.size(); ++s) {
        w.beginObject("worker" + std::to_string(s));
        w.field("tasks", counters[s].tasks);
        w.field("steals", counters[s].steals);
        w.field("steal_fails", counters[s].steal_fails);
        w.field("busy_ns", counters[s].busy_ns);
        w.field("idle_ns", counters[s].idle_ns);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    const std::string line = w.str() + "\n";
    std::fwrite(line.data(), 1, line.size(), out_);
    ++samples_;
}

} // namespace usys
