/**
 * @file
 * Runtime-dispatched SIMD kernels behind the packed unary engines.
 *
 * The word-packed simulation path (DESIGN.md §8) retires one scalar
 * popcount / comparison per 64-bit word; on AVX2 hosts the same work
 * runs 4-16 words per instruction. This layer exposes the handful of
 * data-parallel inner loops as a function-pointer table with two
 * implementations:
 *
 *   generic  portable C++, compiled for baseline x86-64 (or any other
 *            target) — the continuously-tested fallback
 *   avx2     Harley-Seal / vpshufb-nibble-LUT popcounts, vectorized
 *            threshold packing and GEMM rows; compiled in its own
 *            translation unit with -mavx2 so the rest of the binary
 *            stays runnable on machines without AVX2
 *   avx512   VPOPCNTDQ bulk/prefix popcounts, mask-register threshold
 *            packing, 16-lane fp32 and 8-lane widening integer GEMM
 *            rows; own translation unit with -mavx512{f,bw,vpopcntdq},
 *            runtime CPUID-gated like the AVX2 tier
 *   neon     AArch64 ASIMD: cnt/addv popcounts, compare+mask threshold
 *            packing, vmull_s32 widening integer GEMM rows; own
 *            translation unit, available whenever the build targeted
 *            arm64 (ASIMD is architecturally mandatory there)
 *
 * Every kernel is BIT-EXACT against its generic counterpart — integer
 * kernels trivially, the fp32 kernel because both sides perform exactly
 * one multiply and one add per element in element order (the kernel
 * translation units are built with -ffp-contract=off so no path is
 * ever contracted into an FMA). Selection happens once at startup:
 * CPUID picks the best table, overridable with USYS_SIMD=auto|avx2|
 * generic or the --simd flag (see DESIGN.md §11).
 */

#ifndef USYS_COMMON_SIMD_H
#define USYS_COMMON_SIMD_H

#include <cstddef>
#include <string>

#include "common/types.h"

namespace usys {

/**
 * Dispatch tiers, ordered worst to best within an ISA family; the x86
 * and arm tiers never coexist on one host, so cross-family order is
 * immaterial.
 */
enum class SimdLevel
{
    Generic = 0,
    Avx2 = 1,
    Avx512 = 2,
    Neon = 3,
};

/** Human-readable tier name ("generic", "avx2", "avx512", "neon"). */
const char *simdLevelName(SimdLevel level);

/**
 * The dispatched kernel inventory. Each entry is a complete loop (tail
 * handling included), so callers never mix scalar and vector code.
 */
struct SimdKernels
{
    /** Tier this table implements (for logging / stats). */
    SimdLevel level;

    /** Total 1-bits across `n` packed stream words. */
    u64 (*popcountWords)(const u64 *words, std::size_t n);

    /**
     * Pack threshold comparisons into little-endian stream words:
     * bit k of out[] is (values[k] < threshold), unsigned. Writes
     * (n + 63) / 64 words; bits at positions >= n in the final word
     * are zero (the early-termination boundary mask falls out for
     * free).
     */
    void (*thresholdPackWords)(const u32 *values, u32 n, u32 threshold,
                               u64 *out);

    /**
     * Per-word prefix popcount table over a packed stream:
     * prefix[0] = 0, prefix[w + 1] = prefix[w] + popcount(words[w]).
     * Writes nwords + 1 entries (u32 is ample: streams are < 2^32
     * bits).
     */
    void (*prefixPopcount)(const u64 *words, u32 nwords, u32 *prefix);

    /**
     * Row-major fp32 GEMM inner loop: c[j] += a * b[j] for j in
     * [0, n), exactly one multiply and one add per element (never an
     * FMA), so results are bitwise identical across tiers.
     */
    void (*axpyF32)(float *c, const float *b, float a, int n);

    /**
     * Row-major integer GEMM inner loop with widening multiply:
     * c[j] += i64(a) * i64(b[j]) for j in [0, n). Exact for the full
     * i32 range of both operands.
     */
    void (*gemmRowI32)(i64 *c, const i32 *b, i32 a, int n);
};

/** The portable fallback table (always available). */
const SimdKernels &genericKernels();

/**
 * The AVX2 table, or nullptr when unavailable — either the build
 * lacked -mavx2 support or the running CPU lacks the feature.
 */
const SimdKernels *avx2Kernels();

/**
 * The AVX-512 table, or nullptr when unavailable — the build lacked
 * -mavx512{f,bw,vpopcntdq} support or the running CPU lacks any of
 * those features.
 */
const SimdKernels *avx512Kernels();

/**
 * The NEON table, or nullptr when the build did not target AArch64.
 * No runtime probe: ASIMD is mandatory on every arm64 CPU.
 */
const SimdKernels *neonKernels();

/** Runtime CPU feature probe (independent of build support). */
bool cpuSupportsAvx2();

/** Runtime probe for AVX-512F + AVX-512BW + VPOPCNTDQ together. */
bool cpuSupportsAvx512();

/**
 * The active kernel table. Resolved once on first use: USYS_SIMD env
 * ("auto" picks the best available tier; an unavailable or unknown
 * value warns and falls back) unless setSimdMode() overrode it.
 * Hot paths cache nothing — this is one atomic load.
 */
const SimdKernels &simdKernels();

/** Tier of the active table. */
SimdLevel simdLevel();

/**
 * Force a dispatch tier: "auto", "generic", "avx2", "avx512", or
 * "neon". Unlike the env path this is an explicit request (--simd flag,
 * tests), so an unknown mode or an unavailable tier is fatal(). Safe
 * to call at any time — every tier is bit-exact, so switching mid-run
 * cannot change results.
 */
void setSimdMode(const std::string &mode);

namespace detail {
/** Defined in simd_avx2.cc; null when built without AVX2 support. */
const SimdKernels *avx2KernelsImpl();
/** Defined in simd_avx512.cc; null when built without AVX-512. */
const SimdKernels *avx512KernelsImpl();
/** Defined in simd_neon.cc; null when not built for AArch64. */
const SimdKernels *neonKernelsImpl();
} // namespace detail

} // namespace usys

#endif // USYS_COMMON_SIMD_H
