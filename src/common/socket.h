/**
 * @file
 * Thin TCP socket layer for the serve daemon and its clients.
 *
 * Wraps the handful of POSIX calls the service needs — listen on
 * loopback (port 0 picks an ephemeral port, reported back via
 * getsockname so tests never collide), accept, connect, and robust
 * full-buffer send/recv loops — behind RAII fds. On top sits the wire
 * framing: every protocol message is a 4-byte little-endian length
 * followed by that many bytes of UTF-8 JSON. The length prefix is
 * capped (kMaxFrameBytes) so a garbage or hostile peer cannot make the
 * daemon allocate unbounded memory.
 *
 * All calls are blocking; concurrency comes from the daemon's
 * thread-per-connection model, not from nonblocking IO.
 */

#ifndef USYS_COMMON_SOCKET_H
#define USYS_COMMON_SOCKET_H

#include <atomic>
#include <string>

#include "common/types.h"

namespace usys {

/** Largest frame either side will accept: 64 MiB of JSON. */
constexpr u32 kMaxFrameBytes = 64u * 1024 * 1024;

/**
 * RAII owner of a socket fd; movable, closes on destruction.
 *
 * The fd cell is atomic because shutdown crosses threads: the daemon's
 * stop path closes the listener while the accept thread is still
 * reading the fd to pass to accept(2). Relaxed ordering suffices — the
 * kernel serialises the actual syscalls; the atomic only keeps the
 * int itself tear- and race-free.
 */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept
        : fd_(other.release()), timed_out_(other.timed_out_)
    {
        other.timed_out_ = false;
    }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_.store(other.release(), std::memory_order_relaxed);
            timed_out_ = other.timed_out_;
            other.timed_out_ = false;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd() >= 0; }
    int fd() const { return fd_.load(std::memory_order_relaxed); }

    /** Release ownership without closing; returns the raw fd. */
    int
    release()
    {
        return fd_.exchange(-1, std::memory_order_relaxed);
    }

    void close();

    /**
     * Arm SO_RCVTIMEO/SO_SNDTIMEO so a stalled peer surfaces as a
     * failed send/recv with timedOut() set instead of blocking the
     * handler thread forever. 0 disables (fully blocking, default).
     */
    bool setIoTimeoutMs(u64 ms);

    /** True iff the last failed send/recv hit the io timeout. */
    bool timedOut() const { return timed_out_; }

    /** Send the whole buffer, looping over partial writes. */
    bool sendAll(const void *data, std::size_t n);
    /** Receive exactly n bytes; false on EOF or error. */
    bool recvAll(void *data, std::size_t n);

    /** Write one length-prefixed frame (false if too large / io error). */
    bool sendFrame(const std::string &payload);
    /**
     * Read one length-prefixed frame. Returns false on clean EOF
     * before the header, oversized length, or io error; distinguishes
     * clean shutdown via eof when the peer closed between frames.
     */
    bool recvFrame(std::string &payload, bool *eof = nullptr);

  private:
    std::atomic<int> fd_{-1};
    bool timed_out_ = false;
};

/**
 * Loopback TCP listener. port 0 binds an ephemeral port; port() then
 * reports the kernel's choice. SO_REUSEADDR is always set so rapid
 * test restarts never trip TIME_WAIT.
 */
class Listener
{
  public:
    /** Bind + listen on 127.0.0.1:port. valid() is false on failure. */
    bool open(u16 port, std::string *error = nullptr);

    bool valid() const { return sock_.valid(); }
    u16 port() const { return port_; }
    int fd() const { return sock_.fd(); }

    /**
     * Block until a client connects; invalid Socket on error, with the
     * failing errno stored in *err_out (0 on success) so callers can
     * tell transient exhaustion (EMFILE/ENFILE) from a closed listener.
     */
    Socket accept(int *err_out = nullptr);

    /**
     * Close the listening fd (async-signal-safe enough for a SIGTERM
     * handler via shutdown(2); unblocks a pending accept).
     */
    void close();

  private:
    Socket sock_;
    u16 port_ = 0;
};

/** Connect to 127.0.0.1:port; invalid Socket on failure. */
Socket connectLoopback(u16 port, std::string *error = nullptr);

} // namespace usys

#endif // USYS_COMMON_SOCKET_H
