/**
 * @file
 * Minimal JSON parser for the serve wire protocol.
 *
 * The repo's artifacts are *written* with the deterministic JsonWriter
 * (json.h); the daemon additionally needs to *read* requests sent by
 * clients. This is a small recursive-descent parser over the JSON
 * subset the protocol uses: objects, arrays, strings (with the
 * standard escapes incl. \uXXXX as UTF-8), numbers, booleans, null.
 * Numbers are held as double — protocol integers fit 2^53 with room
 * to spare (shapes, bit widths, byte budgets).
 *
 * Design goals, in order: predictable failure (parse() never throws;
 * malformed input yields a null value and an error string with an
 * offset), zero dependencies, and convenient typed lookups for the
 * request-decoding code (`obj.getInt("m", 64)`).
 */

#ifndef USYS_COMMON_JSON_PARSE_H
#define USYS_COMMON_JSON_PARSE_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace usys {

/** One parsed JSON value; a tree of these backs a parsed document. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return bool_; }
    double number() const { return num_; }
    const std::string &string() const { return str_; }
    const std::vector<JsonValue> &array() const { return arr_; }

    /** Object member by key, or nullptr when absent (or not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Member keys in document order (objects only). */
    const std::vector<std::string> &keys() const { return keys_; }

    // Typed lookups with defaults: the convenience layer request
    // decoding leans on. A present-but-wrong-type member returns the
    // default, matching "absent"; decoders that must distinguish use
    // find() directly.
    double getNumber(const std::string &key, double dflt) const;
    i64 getInt(const std::string &key, i64 dflt) const;
    bool getBool(const std::string &key, bool dflt) const;
    std::string getString(const std::string &key,
                          const std::string &dflt) const;

    static JsonValue makeNull() { return JsonValue(); }

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::string> keys_;     // object member order
    std::map<std::string, std::size_t> members_; // key -> arr_ index
};

/** Result of a parse: document root plus error state. */
struct JsonParseResult {
    JsonValue root;    // Null kind when ok == false
    bool ok = false;
    std::string error; // "offset 12: expected ':'" when !ok
};

/** Parse a complete JSON document (trailing garbage is an error). */
JsonParseResult parseJson(const std::string &text);

} // namespace usys

#endif // USYS_COMMON_JSON_PARSE_H
