/**
 * @file
 * Fixed-width text table printer for experiment outputs.
 */

#ifndef USYS_COMMON_TABLE_H
#define USYS_COMMON_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace usys {

/** Accumulates rows of strings and prints an aligned ASCII table. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Append one data row; must match the header arity. */
    void addRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

    /** Format a double with the given precision. */
    static std::string
    num(double v, int precision = 3)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
        return buf;
    }

    /** Format a double in scientific notation. */
    static std::string
    sci(double v, int precision = 3)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
        return buf;
    }

    /** Print the table to the given stream. */
    void
    print(std::FILE *out = stdout) const
    {
        std::vector<std::size_t> width(header_.size(), 0);
        for (std::size_t c = 0; c < header_.size(); ++c)
            width[c] = header_[c].size();
        for (const auto &row : rows_)
            for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], row[c].size());

        auto print_row = [&](const std::vector<std::string> &row) {
            for (std::size_t c = 0; c < width.size(); ++c) {
                const std::string &cell = c < row.size() ? row[c] : empty_;
                std::fprintf(out, "%s%-*s", c ? "  " : "",
                             int(width[c]), cell.c_str());
            }
            std::fprintf(out, "\n");
        };

        print_row(header_);
        std::size_t total = 0;
        for (auto w : width)
            total += w + 2;
        std::string rule(total > 2 ? total - 2 : 0, '-');
        std::fprintf(out, "%s\n", rule.c_str());
        for (const auto &row : rows_)
            print_row(row);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::string empty_;
};

} // namespace usys

#endif // USYS_COMMON_TABLE_H
