/**
 * @file
 * Dense row-major matrix used by the GEMM engines.
 */

#ifndef USYS_COMMON_MATRIX_H
#define USYS_COMMON_MATRIX_H

#include <vector>

#include "common/executor.h"
#include "common/logging.h"
#include "common/simd.h"
#include "common/types.h"

namespace usys {

/** Row-major 2-D array with bounds-checked element access. */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    Matrix(int rows, int cols, T fill = T())
        : rows_(rows), cols_(cols), data_(std::size_t(rows) * cols, fill)
    {}

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    T &
    at(int r, int c)
    {
        panicIf(r < 0 || r >= rows_ || c < 0 || c >= cols_,
                "Matrix index out of range");
        return data_[std::size_t(r) * cols_ + c];
    }

    const T &
    at(int r, int c) const
    {
        panicIf(r < 0 || r >= rows_ || c < 0 || c >= cols_,
                "Matrix index out of range");
        return data_[std::size_t(r) * cols_ + c];
    }

    /** Unchecked access for hot loops. */
    T &operator()(int r, int c) { return data_[std::size_t(r) * cols_ + c]; }
    const T &
    operator()(int r, int c) const
    {
        return data_[std::size_t(r) * cols_ + c];
    }

    const std::vector<T> &data() const { return data_; }
    std::vector<T> &data() { return data_; }

    bool
    operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<T> data_;
};

/** Reference integer GEMM: C (MxN) = A (MxK) * B (KxN), exact in i64. */
inline Matrix<i64>
referenceGemm(const Matrix<i32> &a, const Matrix<i32> &b)
{
    fatalIf(a.cols() != b.rows(), "referenceGemm: shape mismatch");
    Matrix<i64> c(a.rows(), b.cols(), 0);
    // Row-parallel; each row owns its output slice and the i64
    // accumulation is exact, so the result is independent of the thread
    // count. Small products stay serial via the grain.
    const u64 grain = std::max<u64>(
        1, 4096 / u64(std::max(1, a.cols() * b.cols())));
    const SimdKernels &simd = simdKernels();
    parallelFor(
        0, u64(a.rows()),
        [&](u64 mi) {
            const int m = int(mi);
            for (int k = 0; k < a.cols(); ++k) {
                const i32 av = a(m, k);
                if (av == 0)
                    continue;
                simd.gemmRowI32(&c(m, 0), &b(k, 0), av, b.cols());
            }
        },
        grain);
    return c;
}

} // namespace usys

#endif // USYS_COMMON_MATRIX_H
