#include "common/profiler.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "common/json.h"
#include "common/logging.h"

namespace usys {

namespace {

using Clock = std::chrono::steady_clock;

/** One node of a thread-local call-tree. */
struct Node
{
    const char *name = "";
    Node *parent = nullptr;
    std::vector<Node *> children; // insertion order; merged sorts by name
    u64 calls = 0;
    u64 incl_ns = 0;
};

/**
 * Per-thread profile. Owned by the global registry (not the
 * thread_local pointer) so trees survive thread exit and merging never
 * races thread teardown.
 */
struct ThreadProfile
{
    Node root;
    Node *current = &root;           // innermost frame (or anchor base)
    Node *region_base = &root;       // where an empty stack returns to
    std::deque<Node> arena;          // stable node storage
    std::vector<std::pair<Node *, Clock::time_point>> stack;
    u64 anchor_region = 0;           // last applied worker-anchor id

    void
    clear()
    {
        arena.clear();
        root = Node{};
        current = &root;
        region_base = &root;
        stack.clear();
        anchor_region = 0;
    }
};

struct Registry
{
    std::mutex mu;
    std::vector<std::unique_ptr<ThreadProfile>> threads;
    std::deque<std::string> interned;
};

Registry &
registry()
{
    // Leaked for the same reason as the executor pool: thread_local
    // pointers into it may be read during late process teardown.
    static Registry *r = new Registry;
    return *r;
}

ThreadProfile &
threadProfile()
{
    thread_local ThreadProfile *tp = nullptr;
    if (!tp) {
        auto owned = std::make_unique<ThreadProfile>();
        tp = owned.get();
        std::lock_guard<std::mutex> lock(registry().mu);
        registry().threads.push_back(std::move(owned));
    }
    return *tp;
}

Node *
findOrAddChild(ThreadProfile &tp, Node *parent, const char *name)
{
    for (Node *c : parent->children) {
        if (c->name == name || std::strcmp(c->name, name) == 0)
            return c;
    }
    tp.arena.emplace_back();
    Node *n = &tp.arena.back();
    n->name = name;
    n->parent = parent;
    parent->children.push_back(n);
    return n;
}

void
mergeInto(Profiler::MergedNode &dst, const Node &src)
{
    dst.calls += src.calls;
    dst.incl_ns += src.incl_ns;
    std::map<std::string, const Node *> seen; // dedupe within one tree
    for (const Node *c : src.children) {
        Profiler::MergedNode *slot = nullptr;
        for (auto &mc : dst.children) {
            if (mc.name == c->name) {
                slot = &mc;
                break;
            }
        }
        if (!slot) {
            dst.children.emplace_back();
            slot = &dst.children.back();
            slot->name = c->name;
        }
        mergeInto(*slot, *c);
    }
    (void)seen;
}

void
finalizeMerged(Profiler::MergedNode &n)
{
    std::sort(n.children.begin(), n.children.end(),
              [](const Profiler::MergedNode &a,
                 const Profiler::MergedNode &b) { return a.name < b.name; });
    u64 child_incl = 0;
    for (auto &c : n.children) {
        finalizeMerged(c);
        child_incl += c.incl_ns;
    }
    n.excl_ns = n.incl_ns > child_incl ? n.incl_ns - child_incl : 0;
}

void
writeNodeJson(JsonWriter &w, const Profiler::MergedNode &n)
{
    w.beginObject()
        .field("name", n.name)
        .field("calls", n.calls)
        .field("incl_ns", n.incl_ns)
        .field("excl_ns", n.excl_ns);
    w.beginArray("children");
    for (const auto &c : n.children)
        writeNodeJson(w, c);
    w.endArray();
    w.endObject();
}

void
collapseNode(const Profiler::MergedNode &n, const std::string &prefix,
             std::vector<std::string> &lines)
{
    const std::string path =
        prefix.empty() ? n.name : prefix + ";" + n.name;
    if (n.excl_ns > 0)
        lines.push_back(path + " " + std::to_string(n.excl_ns));
    for (const auto &c : n.children)
        collapseNode(c, path, lines);
}

void
signatureNode(const Profiler::MergedNode &n, int depth, std::string &out)
{
    out.append(std::size_t(depth) * 2, ' ');
    out += n.name;
    out += ' ';
    out += std::to_string(n.calls);
    out += '\n';
    for (const auto &c : n.children)
        signatureNode(c, depth + 1, out);
}

} // namespace

Profiler &
Profiler::global()
{
    static Profiler *p = new Profiler;
    return *p;
}

void
Profiler::setEnabled(bool on)
{
    const bool was = enabled_.load(std::memory_order_relaxed);
    if (on && !was)
        enable_time_ = Clock::now();
    else if (!on && was)
        disable_time_ = Clock::now();
    enabled_.store(on, std::memory_order_relaxed);
}

void
Profiler::push(const char *name)
{
    ThreadProfile &tp = threadProfile();
    Node *n = findOrAddChild(tp, tp.current, name);
    ++n->calls;
    tp.stack.emplace_back(n, Clock::now());
    tp.current = n;
}

void
Profiler::pop()
{
    ThreadProfile &tp = threadProfile();
    // A scope that outlived a reset() (or saw profiling enabled after
    // its push was skipped) has nothing to close; tolerate it.
    if (tp.stack.empty())
        return;
    auto [n, start] = tp.stack.back();
    tp.stack.pop_back();
    n->incl_ns += u64(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - start)
                          .count());
    tp.current = tp.stack.empty() ? tp.region_base : tp.stack.back().first;
}

const char *
Profiler::intern(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.interned.push_back(name);
    return r.interned.back().c_str();
}

std::vector<const char *>
Profiler::currentPath() const
{
    ThreadProfile &tp = threadProfile();
    std::vector<const char *> path;
    for (const Node *n = tp.current; n && n->parent; n = n->parent)
        path.push_back(n->name);
    std::reverse(path.begin(), path.end());
    return path;
}

void
Profiler::applyWorkerAnchor(const std::vector<const char *> &path,
                            u64 region_id)
{
    ThreadProfile &tp = threadProfile();
    if (tp.anchor_region == region_id)
        return;
    tp.anchor_region = region_id;
    // Recreate the caller's path as zero-call, zero-time nodes so the
    // worker's frames merge into the same position the serial run puts
    // them. The worker's stack is empty between chunks of distinct
    // regions, so re-rooting is safe here.
    Node *n = &tp.root;
    for (const char *name : path)
        n = findOrAddChild(tp, n, name);
    tp.region_base = n;
    tp.current = n;
}

u64
Profiler::wallNs() const
{
    // While enabled the window is still open; after a disable it is
    // frozen at the disable instant so post-hoc dumps keep a coverage
    // denominator. Zero only before the first enable.
    if (enable_time_ == Clock::time_point{})
        return 0;
    const auto end = enabled_.load(std::memory_order_relaxed)
                         ? Clock::now()
                         : disable_time_;
    if (end <= enable_time_)
        return 0;
    return u64(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   end - enable_time_)
                   .count());
}

Profiler::MergedNode
Profiler::merged() const
{
    MergedNode root;
    root.name = "root";
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto &tp : r.threads)
        mergeInto(root, tp->root);
    // The synthetic root spans the whole profiled interval; per-thread
    // roots carry no timing of their own.
    root.calls = 0;
    root.incl_ns = wallNs();
    finalizeMerged(root);
    return root;
}

std::string
Profiler::json(const std::string &bench) const
{
    const MergedNode root = merged();
    JsonWriter w;
    w.beginObject()
        .field("bench", bench)
        .field("schema_version", 1)
        .field("wall_ns", wallNs())
        .field("threads", u64(threadCount()));
    w.beginObject("root")
        .field("name", root.name)
        .field("calls", root.calls)
        .field("incl_ns", root.incl_ns)
        .field("excl_ns", root.excl_ns);
    w.beginArray("children");
    for (const auto &c : root.children)
        writeNodeJson(w, c);
    w.endArray();
    w.endObject();
    w.endObject();
    return w.str();
}

std::string
Profiler::collapsed() const
{
    const MergedNode root = merged();
    std::vector<std::string> lines;
    // Top-level frames are the base of each stack (no "root" prefix).
    for (const auto &c : root.children)
        collapseNode(c, "", lines);
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const auto &line : lines) {
        out += line;
        out += '\n';
    }
    return out;
}

bool
Profiler::writeJsonFile(const std::string &path,
                        const std::string &bench) const
{
    return writeTextFile(path, json(bench));
}

bool
Profiler::writeCollapsedFile(const std::string &path) const
{
    return writeTextFile(path, collapsed());
}

std::string
Profiler::signature() const
{
    const MergedNode root = merged();
    std::string out;
    for (const auto &c : root.children)
        signatureNode(c, 0, out);
    return out;
}

void
Profiler::reset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &tp : r.threads)
        tp->clear();
    if (enabled_.load(std::memory_order_relaxed))
        enable_time_ = Clock::now();
}

std::size_t
Profiler::threadCount() const
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.threads.size();
}

} // namespace usys
