/**
 * @file
 * Minimal streaming JSON writer for experiment artifacts.
 *
 * Produces deterministic output (fixed key order as emitted by the
 * caller, fixed number formatting) so stats dumps are byte-identical
 * across runs and diffable in version control. No external dependencies;
 * the writer is a thin state machine over a std::string.
 */

#ifndef USYS_COMMON_JSON_H
#define USYS_COMMON_JSON_H

#include <string>
#include <vector>

#include "common/types.h"

namespace usys {

/** Escape a string body per RFC 8259 (without surrounding quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Deterministic number rendering: integral values print as integers,
 * everything else as shortest-ish %.12g; NaN/Inf degrade to null
 * (JSON has no encoding for them).
 */
std::string jsonNumber(double v);

/** Stack-based JSON writer. */
class JsonWriter
{
  public:
    /** @param indent spaces per nesting level; 0 = compact one-line */
    explicit JsonWriter(int indent = 2);

    // --- containers --------------------------------------------------
    JsonWriter &beginObject();                       // value position
    JsonWriter &beginObject(const std::string &key); // inside an object
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &beginArray(const std::string &key);
    JsonWriter &endArray();

    // --- object fields ------------------------------------------------
    JsonWriter &field(const std::string &key, const std::string &v);
    JsonWriter &field(const std::string &key, const char *v);
    JsonWriter &field(const std::string &key, double v);
    JsonWriter &field(const std::string &key, u64 v);
    JsonWriter &field(const std::string &key, i64 v);
    JsonWriter &field(const std::string &key, int v);
    JsonWriter &field(const std::string &key, bool v);
    /** Emit a pre-encoded JSON fragment as the value. */
    JsonWriter &fieldRaw(const std::string &key, const std::string &json);

    // --- array elements (or a lone top-level value) -------------------
    JsonWriter &value(const std::string &v);
    JsonWriter &value(double v);
    JsonWriter &value(u64 v);
    JsonWriter &value(i64 v);
    JsonWriter &value(bool v);
    JsonWriter &valueRaw(const std::string &json);

    /** Finished document; panics if containers remain open. */
    std::string str() const;

    /** Nesting depth (0 when the document is complete). */
    int depth() const { return int(stack_.size()); }

  private:
    void comma();
    void key(const std::string &k);
    void newline();

    std::string out_;
    std::vector<bool> stack_; // true = object, false = array
    std::vector<bool> first_; // no element written yet at this level
    int indent_;
};

/**
 * Write a string to a file atomically (write `path`.tmp, then rename):
 * the destination either keeps its old content or holds the complete
 * new text, never a truncation. Returns false (and warns) on I/O error.
 */
bool writeTextFile(const std::string &path, const std::string &text);

} // namespace usys

#endif // USYS_COMMON_JSON_H
