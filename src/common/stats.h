/**
 * @file
 * Lightweight streaming statistics used by tests and experiment drivers.
 */

#ifndef USYS_COMMON_STATS_H
#define USYS_COMMON_STATS_H

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/types.h"

namespace usys {

/** Welford-style online mean/variance with min/max tracking. */
class OnlineStats
{
  public:
    /** Fold one sample into the running statistics. */
    void
    add(double x)
    {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / double(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    u64 count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        return count_ ? m2_ / double(count_) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    /**
     * Fold another instance into this one (Chan et al. parallel
     * moments), preserving count/mean/variance/min/max/sum exactly as
     * if every sample had been add()ed here. This is the aggregation
     * hook for per-thread instances under parallel_for: each worker
     * accumulates privately, then the shards merge serially.
     */
    void
    merge(const OnlineStats &other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        const u64 n = count_ + other.count_;
        const double delta = other.mean_ - mean_;
        m2_ += other.m2_ + delta * delta * double(count_) *
                               double(other.count_) / double(n);
        mean_ += delta * double(other.count_) / double(n);
        count_ = n;
        sum_ += other.sum_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

  private:
    u64 count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Streaming root-mean-square error between paired observations. */
class RmseTracker
{
  public:
    /** Record one (reference, measured) pair. */
    void
    add(double reference, double measured)
    {
        const double e = measured - reference;
        err_.add(e);
        sq_sum_ += e * e;
        ref_sq_sum_ += reference * reference;
    }

    u64 count() const { return err_.count(); }
    double meanError() const { return err_.mean(); }
    double maxAbsError() const
    {
        return std::max(std::abs(err_.min()), std::abs(err_.max()));
    }

    double
    rmse() const
    {
        return err_.count() ? std::sqrt(sq_sum_ / double(err_.count())) : 0.0;
    }

    /** RMSE normalized by the reference RMS value. */
    double
    normalizedRmse() const
    {
        const double ref_rms =
            err_.count() ? std::sqrt(ref_sq_sum_ / double(err_.count())) : 0.0;
        return ref_rms > 0.0 ? rmse() / ref_rms : rmse();
    }

    /**
     * Fold another tracker into this one (same per-thread sharding
     * contract as OnlineStats::merge; the squared sums are plain
     * additions).
     */
    void
    merge(const RmseTracker &other)
    {
        err_.merge(other.err_);
        sq_sum_ += other.sq_sum_;
        ref_sq_sum_ += other.ref_sq_sum_;
    }

  private:
    OnlineStats err_;
    double sq_sum_ = 0.0;
    double ref_sq_sum_ = 0.0;
};

/** Percentage reduction of b relative to a: (a - b) / a * 100. */
inline double
pctReduction(double a, double b)
{
    return a > 0.0 ? (a - b) / a * 100.0 : 0.0;
}

} // namespace usys

#endif // USYS_COMMON_STATS_H
