/**
 * @file
 * Minimal thread-pool-free parallel loop.
 *
 * Spawns up to hardware_concurrency() threads over a contiguous index
 * range, handing out fixed-size chunks ("grains") from an atomic cursor.
 * On single-core hosts, or when the range fits in one grain, this
 * degrades gracefully to a serial loop with no threads spawned.
 */

#ifndef USYS_COMMON_PARALLEL_FOR_H
#define USYS_COMMON_PARALLEL_FOR_H

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/types.h"

namespace usys {

/**
 * Apply fn(i) for all i in [begin, end) across worker threads.
 *
 * Indices are distributed in chunks of `grain` consecutive indices, so
 * a range of n indices spawns at most ceil(n / grain) workers — tiny
 * ranges no longer pay for hardware_concurrency() thread launches, and
 * callers with cheap per-index bodies can amortize the atomic cursor
 * over a whole chunk.
 *
 * Each index is visited exactly once; the assignment of indices to
 * threads is nondeterministic, so fn must only touch per-index state
 * (determinism of aggregates is the caller's job: accumulate into
 * per-index slots and reduce serially afterwards).
 *
 * @param begin first index
 * @param end one past the last index
 * @param fn callable taking a single index
 * @param grain indices handed to a worker per chunk (0 is coerced to 1)
 */
template <typename Fn>
void
parallelFor(u64 begin, u64 end, Fn &&fn, u64 grain = 1)
{
    const u64 n = end > begin ? end - begin : 0;
    if (n == 0)
        return;
    if (grain == 0)
        grain = 1;

    const u64 chunks = (n + grain - 1) / grain;
    unsigned workers = std::thread::hardware_concurrency();
    workers = unsigned(std::max<u64>(1, std::min<u64>(workers, chunks)));
    if (workers == 1) {
        for (u64 i = begin; i < end; ++i)
            fn(i);
        return;
    }

    std::atomic<u64> next_chunk{0};
    auto body = [&]() {
        for (;;) {
            const u64 c = next_chunk.fetch_add(1);
            if (c >= chunks)
                return;
            const u64 lo = begin + c * grain;
            const u64 hi = std::min(end, lo + grain);
            for (u64 i = lo; i < hi; ++i)
                fn(i);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (unsigned t = 0; t + 1 < workers; ++t)
        threads.emplace_back(body);
    body();
    for (auto &th : threads)
        th.join();
}

} // namespace usys

#endif // USYS_COMMON_PARALLEL_FOR_H
