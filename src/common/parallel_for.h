/**
 * @file
 * Minimal thread-pool-free parallel loop.
 *
 * Spawns hardware_concurrency() threads over a contiguous index range.
 * On single-core hosts this degrades gracefully to a serial loop.
 */

#ifndef USYS_COMMON_PARALLEL_FOR_H
#define USYS_COMMON_PARALLEL_FOR_H

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/types.h"

namespace usys {

/**
 * Apply fn(i) for all i in [begin, end) across worker threads.
 *
 * @param begin first index
 * @param end one past the last index
 * @param fn callable taking a single index
 */
template <typename Fn>
void
parallelFor(u64 begin, u64 end, Fn &&fn)
{
    const u64 n = end > begin ? end - begin : 0;
    if (n == 0)
        return;

    unsigned workers = std::thread::hardware_concurrency();
    workers = std::max(1u, std::min<unsigned>(workers, unsigned(n)));
    if (workers == 1) {
        for (u64 i = begin; i < end; ++i)
            fn(i);
        return;
    }

    std::atomic<u64> next{begin};
    auto body = [&]() {
        for (;;) {
            const u64 i = next.fetch_add(1);
            if (i >= end)
                return;
            fn(i);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (unsigned t = 0; t + 1 < workers; ++t)
        threads.emplace_back(body);
    body();
    for (auto &th : threads)
        th.join();
}

} // namespace usys

#endif // USYS_COMMON_PARALLEL_FOR_H
