/**
 * @file
 * AVX-512 implementations of the SimdKernels table.
 *
 * This translation unit — and only this one — is compiled with
 * -mavx512f -mavx512bw -mavx512vpopcntdq (see src/common/CMakeLists.txt);
 * nothing here is reachable unless runtime CPUID dispatch selected the
 * table, so the default binary still runs on baseline x86-64. Without
 * compiler AVX-512 support the file degrades to a stub returning
 * nullptr.
 *
 * Bit-exactness notes:
 *  - VPOPCNTDQ popcounts, mask-register compares, and vpmuldq widening
 *    multiplies are exact integer operations; only summation order
 *    differs from the generic loops, and integer sums are order-free.
 *  - the fp32 kernel issues exactly one vmulps and one vaddps per
 *    element (never an FMA; -ffp-contract=off on this TU), matching
 *    the generic loop's rounding per element.
 */

#include "common/simd.h"

#if defined(USYS_HAVE_AVX512)

#include <bit>
#include <cstdint>
#include <immintrin.h>

namespace usys {
namespace {

// GCC 12's TSan pass miscompiles these kernels at -O2: the inserted
// __tsan_read/__tsan_write calls force ZMM/mask-register spills, and
// reloaded __mmask16 values come back holding stack-address fragments
// (observed directly in thresholdPackWords: with threshold 0 the packed
// word's bits 16..47 contained half a stack pointer — DESIGN.md §16).
// The kernels are synchronization-free leaf code over caller-owned
// buffers, so skipping instrumentation inside them costs no real race
// coverage: every buffer they touch is also read/written by
// instrumented caller code.
#if defined(__SANITIZE_THREAD__)
#define USYS_AVX512_NO_TSAN __attribute__((no_sanitize("thread")))
#else
#define USYS_AVX512_NO_TSAN
#endif

/**
 * Bulk popcount via VPOPCNTDQ: one instruction per 8 words replaces
 * the whole AVX2 Harley-Seal adder tree. Two accumulators cover the
 * instruction latency; per-lane u64 counters cannot overflow for any
 * realizable buffer size.
 */
USYS_AVX512_NO_TSAN u64
popcountWordsAvx512(const u64 *words, std::size_t n)
{
    const __m512i *v = reinterpret_cast<const __m512i *>(words);
    const std::size_t nvec = n / 8;

    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 2 <= nvec; i += 2) {
        acc0 = _mm512_add_epi64(
            acc0, _mm512_popcnt_epi64(_mm512_loadu_si512(v + i)));
        acc1 = _mm512_add_epi64(
            acc1, _mm512_popcnt_epi64(_mm512_loadu_si512(v + i + 1)));
    }
    for (; i < nvec; ++i)
        acc0 = _mm512_add_epi64(
            acc0, _mm512_popcnt_epi64(_mm512_loadu_si512(v + i)));
    u64 sum = u64(_mm512_reduce_add_epi64(_mm512_add_epi64(acc0, acc1)));
    for (std::size_t w = nvec * 8; w < n; ++w)
        sum += u64(std::popcount(words[w]));
    return sum;
}

USYS_AVX512_NO_TSAN void
thresholdPackWordsAvx512(const u32 *values, u32 n, u32 threshold, u64 *out)
{
    // Native unsigned compare into a mask register: each vector yields
    // 16 bits in lane order, four vectors assemble one little-endian
    // stream word. No sign-flip trick needed.
    const __m512i thr = _mm512_set1_epi32(i32(threshold));
    u32 k = 0;
    u32 w = 0;
    for (; k + 64 <= n; k += 64, ++w) {
        const u64 m0 = _mm512_cmplt_epu32_mask(
            _mm512_loadu_si512(
                reinterpret_cast<const __m512i *>(values + k)),
            thr);
        const u64 m1 = _mm512_cmplt_epu32_mask(
            _mm512_loadu_si512(
                reinterpret_cast<const __m512i *>(values + k + 16)),
            thr);
        const u64 m2 = _mm512_cmplt_epu32_mask(
            _mm512_loadu_si512(
                reinterpret_cast<const __m512i *>(values + k + 32)),
            thr);
        const u64 m3 = _mm512_cmplt_epu32_mask(
            _mm512_loadu_si512(
                reinterpret_cast<const __m512i *>(values + k + 48)),
            thr);
        out[w] = m0 | (m1 << 16) | (m2 << 32) | (m3 << 48);
    }
    if (k < n) {
        u64 word = 0;
        for (u32 j = 0; k + j < n; ++j)
            word |= u64(values[k + j] < threshold) << j;
        out[w] = word;
    }
}

USYS_AVX512_NO_TSAN void
prefixPopcountAvx512(const u64 *words, u32 nwords, u32 *prefix)
{
    // Two-pass block-offset scheme. Pass 1 stores the independent
    // per-word counts — two VPOPCNTDQ vectors narrowed to sixteen u32
    // lanes per store, no serial dependency — into the prefix slots;
    // pass 2 scans them with a 16-lane in-register prefix sum (four
    // log-step shifted adds via valignd) instead of the old scalar
    // carry ripple. Blocks keep the count slab L1-resident between
    // the passes.
    constexpr u32 kBlock = 4096;
    const __m512i zero = _mm512_setzero_si512();
    prefix[0] = 0;
    u32 run = 0;
    for (u32 base = 0; base < nwords; base += kBlock) {
        const u32 hi = std::min(nwords, base + kBlock);
        u32 w = base;
        for (; w + 16 <= hi; w += 16) {
            const __m256i n0 =
                _mm512_cvtepi64_epi32(_mm512_popcnt_epi64(
                    _mm512_loadu_si512(reinterpret_cast<const __m512i *>(
                        words + w))));
            const __m256i n1 =
                _mm512_cvtepi64_epi32(_mm512_popcnt_epi64(
                    _mm512_loadu_si512(reinterpret_cast<const __m512i *>(
                        words + w + 8))));
            _mm512_storeu_si512(
                reinterpret_cast<__m512i *>(prefix + w + 1),
                _mm512_inserti64x4(_mm512_castsi256_si512(n0), n1, 1));
        }
        for (; w < hi; ++w)
            prefix[w + 1] = u32(std::popcount(words[w]));

        w = base;
        for (; w + 16 <= hi; w += 16) {
            __m512i x = _mm512_loadu_si512(
                reinterpret_cast<const __m512i *>(prefix + w + 1));
            // Inclusive 16-lane scan: valignd(x, zero, 16-k) shifts x
            // up by k lanes with zero fill.
            x = _mm512_add_epi32(x, _mm512_alignr_epi32(x, zero, 15));
            x = _mm512_add_epi32(x, _mm512_alignr_epi32(x, zero, 14));
            x = _mm512_add_epi32(x, _mm512_alignr_epi32(x, zero, 12));
            x = _mm512_add_epi32(x, _mm512_alignr_epi32(x, zero, 8));
            x = _mm512_add_epi32(x, _mm512_set1_epi32(i32(run)));
            _mm512_storeu_si512(
                reinterpret_cast<__m512i *>(prefix + w + 1), x);
            run = u32(_mm_extract_epi32(_mm512_extracti32x4_epi32(x, 3),
                                        3));
        }
        for (; w < hi; ++w) {
            run += prefix[w + 1];
            prefix[w + 1] = run;
        }
    }
}

USYS_AVX512_NO_TSAN void
axpyF32Avx512(float *c, const float *b, float a, int n)
{
    const __m512 va = _mm512_set1_ps(a);
    int j = 0;
    for (; j + 16 <= n; j += 16) {
        const __m512 vb = _mm512_loadu_ps(b + j);
        const __m512 vc = _mm512_loadu_ps(c + j);
        _mm512_storeu_ps(c + j,
                         _mm512_add_ps(vc, _mm512_mul_ps(va, vb)));
    }
    for (; j < n; ++j)
        c[j] += a * b[j];
}

USYS_AVX512_NO_TSAN void
gemmRowI32Avx512(i64 *c, const i32 *b, i32 a, int n)
{
    // vpmuldq multiplies the low signed 32 bits of each 64-bit lane:
    // exact i64 products for the full i32 range of both operands,
    // 8 lanes per instruction.
    const __m512i va = _mm512_set1_epi64(i64(u32(a)));
    int j = 0;
    // Peel until the accumulator row is 64-byte aligned: c is both
    // loaded and stored every iteration, and cache-line-split 64-byte
    // accesses double the load/store-port cost of the whole loop.
    while (j < n && (reinterpret_cast<std::uintptr_t>(c + j) & 63) != 0) {
        c[j] += i64(a) * i64(b[j]);
        ++j;
    }
    // Unrolled by 4 (32 lanes in flight): the cvt+mul chain has enough
    // latency that a single stream leaves the multiplier idle.
    for (; j + 32 <= n; j += 32) {
        __m512i *cp = reinterpret_cast<__m512i *>(c + j);
        const __m256i *bp = reinterpret_cast<const __m256i *>(b + j);
        const __m512i p0 = _mm512_mul_epi32(
            _mm512_cvtepi32_epi64(_mm256_loadu_si256(bp + 0)), va);
        const __m512i p1 = _mm512_mul_epi32(
            _mm512_cvtepi32_epi64(_mm256_loadu_si256(bp + 1)), va);
        const __m512i p2 = _mm512_mul_epi32(
            _mm512_cvtepi32_epi64(_mm256_loadu_si256(bp + 2)), va);
        const __m512i p3 = _mm512_mul_epi32(
            _mm512_cvtepi32_epi64(_mm256_loadu_si256(bp + 3)), va);
        _mm512_store_si512(
            cp + 0, _mm512_add_epi64(_mm512_load_si512(cp + 0), p0));
        _mm512_store_si512(
            cp + 1, _mm512_add_epi64(_mm512_load_si512(cp + 1), p1));
        _mm512_store_si512(
            cp + 2, _mm512_add_epi64(_mm512_load_si512(cp + 2), p2));
        _mm512_store_si512(
            cp + 3, _mm512_add_epi64(_mm512_load_si512(cp + 3), p3));
    }
    for (; j + 8 <= n; j += 8) {
        const __m512i vb = _mm512_cvtepi32_epi64(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + j)));
        const __m512i prod = _mm512_mul_epi32(vb, va);
        __m512i *cp = reinterpret_cast<__m512i *>(c + j);
        _mm512_storeu_si512(
            cp, _mm512_add_epi64(_mm512_loadu_si512(cp), prod));
    }
    for (; j < n; ++j)
        c[j] += i64(a) * i64(b[j]);
}

const SimdKernels kAvx512 = {
    SimdLevel::Avx512,      popcountWordsAvx512, thresholdPackWordsAvx512,
    prefixPopcountAvx512,   axpyF32Avx512,       gemmRowI32Avx512,
};

} // namespace

namespace detail {

const SimdKernels *
avx512KernelsImpl()
{
    return &kAvx512;
}

} // namespace detail
} // namespace usys

#else // !USYS_HAVE_AVX512

namespace usys {
namespace detail {

const SimdKernels *
avx512KernelsImpl()
{
    return nullptr;
}

} // namespace detail
} // namespace usys

#endif // USYS_HAVE_AVX512
