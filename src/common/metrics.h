/**
 * @file
 * Background metrics sampler: a JSON-lines timeseries of the stats
 * registry.
 *
 * When enabled (`--metrics-interval-ms` + `--metrics-out` on any bench
 * binary), a daemon thread wakes every interval and appends one JSON
 * object per line to the output file:
 *
 *   {"ts_ms": 12.345, "sample": 3, "stats": {"sim.ur.folds": 42, ...},
 *    "exec": {"worker0": {"tasks": 10, ...}, ...}}
 *
 * `stats` holds every numeric registry leaf (counters, scalars,
 * histogram count/sum — see StatsRegistry::sampleNumeric) flattened to
 * dotted keys; `exec` holds the live per-slot executor counters.
 * Timestamps are on the shared hostTimeUs() clock so samples line up
 * with log lines and Chrome-trace events.
 *
 * Samples are racy by design: values are plain loads concurrent with
 * the simulation's updates, good enough to watch a long sweep's
 * counters move in-flight. Anything that must be exact belongs in the
 * end-of-run artifacts, which are written at quiescence. stop() takes
 * one final sample so short runs still produce a closing data point,
 * and is called by finalizeBench() before the stats artifacts are
 * written.
 *
 * Off by default: zero threads, zero cost. Not for use concurrently
 * with registry clear() (the sampler holds no references, but
 * sampleNumeric snapshots under the registry lock — clear() between
 * samples is safe, concurrent stat *registration* is too).
 */

#ifndef USYS_COMMON_METRICS_H
#define USYS_COMMON_METRICS_H

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/types.h"

namespace usys {

class MetricsSampler
{
  public:
    /** Process-wide sampler driven by the bench CLI. */
    static MetricsSampler &global();

    /**
     * Start sampling every `interval_ms` into `path` (truncating it).
     * Fatal if already running or the file cannot be opened. Writes an
     * immediate first sample, so even a sub-interval run yields
     * (with the stop() sample) at least two lines.
     */
    void start(const std::string &path, u64 interval_ms);

    /** Take a final sample, join the thread, close the file. No-op when
     *  not running. */
    void stop();

    bool running() const { return thread_.joinable(); }
    /** Samples written since start() (tests; racy while running). */
    u64 sampleCount() const { return samples_; }

  private:
    MetricsSampler() = default;

    void loop();
    void writeSample();

    std::FILE *out_ = nullptr;
    u64 interval_ms_ = 0;
    u64 samples_ = 0;

    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_requested_ = false;
    std::thread thread_;
};

} // namespace usys

#endif // USYS_COMMON_METRICS_H
