#include "common/simd.h"

#include <atomic>
#include <bit>
#include <cstdlib>

#include "common/logging.h"

namespace usys {

namespace {

// --- Generic (portable) kernels -------------------------------------
//
// These are the reference semantics every other tier must reproduce
// bit for bit. Kept branch-light so the compiler can vectorize them
// for whatever baseline ISA the build targets.

u64
popcountWordsGeneric(const u64 *words, std::size_t n)
{
    // Four independent accumulators give the scalar path some ILP
    // without changing the (exact, order-free) integer sum.
    u64 s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        s0 += u64(std::popcount(words[i + 0]));
        s1 += u64(std::popcount(words[i + 1]));
        s2 += u64(std::popcount(words[i + 2]));
        s3 += u64(std::popcount(words[i + 3]));
    }
    for (; i < n; ++i)
        s0 += u64(std::popcount(words[i]));
    return s0 + s1 + s2 + s3;
}

void
thresholdPackWordsGeneric(const u32 *values, u32 n, u32 threshold,
                          u64 *out)
{
    const u32 nwords = (n + 63) / 64;
    for (u32 w = 0; w < nwords; ++w)
        out[w] = 0;
    for (u32 k = 0; k < n; ++k)
        out[k >> 6] |= u64(values[k] < threshold) << (k & 63);
}

void
prefixPopcountGeneric(const u64 *words, u32 nwords, u32 *prefix)
{
    // Two-pass block-offset scheme (DESIGN.md §11): pass 1 writes the
    // independent per-word counts into the prefix slots — a pure
    // store loop with no serial dependency, so the popcounts pipeline
    // (and auto-vectorize where the baseline ISA allows) — and pass 2
    // folds the running offset through the block with simple one-cycle
    // adds. Blocks keep both passes L1-resident on large streams.
    constexpr u32 kBlock = 4096;
    prefix[0] = 0;
    u32 run = 0;
    for (u32 base = 0; base < nwords; base += kBlock) {
        const u32 hi = std::min(nwords, base + kBlock);
        for (u32 w = base; w < hi; ++w)
            prefix[w + 1] = u32(std::popcount(words[w]));
        for (u32 w = base; w < hi; ++w) {
            run += prefix[w + 1];
            prefix[w + 1] = run;
        }
    }
}

void
axpyF32Generic(float *c, const float *b, float a, int n)
{
    // One multiply + one add per element, element order; this TU is
    // compiled with -ffp-contract=off so it can never become an FMA.
    for (int j = 0; j < n; ++j)
        c[j] += a * b[j];
}

void
gemmRowI32Generic(i64 *c, const i32 *b, i32 a, int n)
{
    // Unroll by 4: the widening multiplies are independent, so the
    // scalar pipeline can overlap them even when the baseline ISA has
    // no packed 32x32->64 multiply to vectorize with.
    const i64 aa = i64(a);
    int j = 0;
    for (; j + 4 <= n; j += 4) {
        c[j + 0] += aa * i64(b[j + 0]);
        c[j + 1] += aa * i64(b[j + 1]);
        c[j + 2] += aa * i64(b[j + 2]);
        c[j + 3] += aa * i64(b[j + 3]);
    }
    for (; j < n; ++j)
        c[j] += aa * i64(b[j]);
}

const SimdKernels kGeneric = {
    SimdLevel::Generic,       popcountWordsGeneric,
    thresholdPackWordsGeneric, prefixPopcountGeneric,
    axpyF32Generic,           gemmRowI32Generic,
};

// --- Dispatch -------------------------------------------------------

/**
 * Active table pointer. Resolution is deterministic (env + CPUID), so
 * the lazy-init race is benign: every thread stores the same value.
 */
std::atomic<const SimdKernels *> g_active{nullptr};

const SimdKernels *
bestAvailable()
{
    if (const SimdKernels *avx512 = avx512Kernels())
        return avx512;
    if (const SimdKernels *avx2 = avx2Kernels())
        return avx2;
    if (const SimdKernels *neon = neonKernels())
        return neon;
    return &kGeneric;
}

/** Resolve the startup default from USYS_SIMD (warn-and-fall-back). */
const SimdKernels *
resolveFromEnv()
{
    const char *env = std::getenv("USYS_SIMD");
    if (!env || !*env)
        return bestAvailable();
    const std::string mode(env);
    if (mode == "auto")
        return bestAvailable();
    if (mode == "generic")
        return &kGeneric;
    if (mode == "avx2") {
        if (const SimdKernels *avx2 = avx2Kernels())
            return avx2;
        warn("USYS_SIMD=avx2 but AVX2 is unavailable "
             "(cpu or build); using generic");
        return &kGeneric;
    }
    if (mode == "avx512") {
        if (const SimdKernels *avx512 = avx512Kernels())
            return avx512;
        warn("USYS_SIMD=avx512 but AVX-512 is unavailable "
             "(cpu or build); using best available");
        return bestAvailable();
    }
    if (mode == "neon") {
        if (const SimdKernels *neon = neonKernels())
            return neon;
        warn("USYS_SIMD=neon but NEON is unavailable "
             "(not an arm64 build); using best available");
        return bestAvailable();
    }
    warn("USYS_SIMD='" + mode + "' not recognized "
         "(auto|avx512|avx2|neon|generic); using auto");
    return bestAvailable();
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Generic:
        return "generic";
      case SimdLevel::Avx2:
        return "avx2";
      case SimdLevel::Avx512:
        return "avx512";
      case SimdLevel::Neon:
        return "neon";
    }
    return "unknown";
}

const SimdKernels &
genericKernels()
{
    return kGeneric;
}

bool
cpuSupportsAvx2()
{
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
cpuSupportsAvx512()
{
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vpopcntdq");
#else
    return false;
#endif
}

const SimdKernels *
avx2Kernels()
{
    if (!cpuSupportsAvx2())
        return nullptr;
    return detail::avx2KernelsImpl();
}

const SimdKernels *
avx512Kernels()
{
    if (!cpuSupportsAvx512())
        return nullptr;
    return detail::avx512KernelsImpl();
}

const SimdKernels *
neonKernels()
{
    // ASIMD is architecturally mandatory on AArch64, so build support
    // implies runtime support — no probe needed.
    return detail::neonKernelsImpl();
}

const SimdKernels &
simdKernels()
{
    const SimdKernels *k = g_active.load(std::memory_order_acquire);
    if (!k) {
        k = resolveFromEnv();
        g_active.store(k, std::memory_order_release);
    }
    return *k;
}

SimdLevel
simdLevel()
{
    return simdKernels().level;
}

void
setSimdMode(const std::string &mode)
{
    const SimdKernels *k = nullptr;
    if (mode == "auto") {
        k = bestAvailable();
    } else if (mode == "generic") {
        k = &kGeneric;
    } else if (mode == "avx2") {
        k = avx2Kernels();
        fatalIf(k == nullptr,
                "--simd avx2 requested but AVX2 is unavailable "
                "(cpu or build)");
    } else if (mode == "avx512") {
        k = avx512Kernels();
        fatalIf(k == nullptr,
                "--simd avx512 requested but AVX-512 is unavailable "
                "(cpu or build)");
    } else if (mode == "neon") {
        k = neonKernels();
        fatalIf(k == nullptr,
                "--simd neon requested but this is not an arm64 build");
    } else {
        fatal("unknown SIMD mode '" + mode +
              "' (expected auto, avx512, avx2, neon, or generic)");
    }
    g_active.store(k, std::memory_order_release);
}

} // namespace usys
