#include "common/stats_registry.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/json.h"
#include "common/logging.h"

namespace usys {

// --- stat value rendering ------------------------------------------------

std::string
Counter::valueText() const
{
    return std::to_string(v_);
}

void
Counter::writeJsonField(JsonWriter &w, const std::string &key) const
{
    w.fieldRaw(key, std::to_string(v_));
}

std::string
Scalar::valueText() const
{
    return jsonNumber(v_);
}

void
Scalar::writeJsonField(JsonWriter &w, const std::string &key) const
{
    w.fieldRaw(key, jsonNumber(v_));
}

Histogram::Histogram(std::string name, std::string desc, double lo,
                     double hi, int buckets)
    : Stat(std::move(name), std::move(desc)), lo_(lo), hi_(hi)
{
    fatalIf(buckets < 1, "Histogram: needs at least one bucket");
    fatalIf(!(hi > lo), "Histogram: empty value range");
    width_ = (hi_ - lo_) / double(buckets);
    buckets_.assign(std::size_t(buckets), 0);
}

void
Histogram::add(double x, u64 count)
{
    for (u64 i = 0; i < count; ++i)
        moments_.add(x);
    if (x < lo_) {
        underflow_ += count;
    } else if (x >= hi_) {
        overflow_ += count;
    } else {
        const auto b = std::size_t((x - lo_) / width_);
        buckets_[std::min(b, buckets_.size() - 1)] += count;
    }
}

double
Histogram::bucketLo(int i) const
{
    return lo_ + width_ * double(i);
}

void
Histogram::merge(const Histogram &other)
{
    panicIf(lo_ != other.lo_ || hi_ != other.hi_ ||
                buckets_.size() != other.buckets_.size(),
            "Histogram::merge: bucket shape mismatch ('" + name() +
                "' vs '" + other.name() + "')");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    moments_.merge(other.moments_);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = 0;
    moments_ = OnlineStats();
}

std::string
Histogram::valueText() const
{
    std::string out = "count=" + std::to_string(count()) +
                      " mean=" + jsonNumber(mean()) +
                      " min=" + jsonNumber(min()) +
                      " max=" + jsonNumber(max()) + " |";
    for (const u64 b : buckets_)
        out += " " + std::to_string(b);
    out += " | under=" + std::to_string(underflow_) +
           " over=" + std::to_string(overflow_);
    return out;
}

void
Histogram::writeJsonField(JsonWriter &w, const std::string &key) const
{
    w.beginObject(key);
    w.field("count", count());
    w.field("sum", sum());
    w.field("mean", mean());
    w.field("min", min());
    w.field("max", max());
    w.field("bucket_lo", lo_);
    w.field("bucket_hi", hi_);
    w.field("underflow", underflow_);
    w.field("overflow", overflow_);
    w.beginArray("buckets");
    for (const u64 b : buckets_)
        w.value(b);
    w.endArray();
    w.endObject();
}

std::string
Formula::valueText() const
{
    return jsonNumber(value());
}

void
Formula::writeJsonField(JsonWriter &w, const std::string &key) const
{
    w.fieldRaw(key, jsonNumber(value()));
}

// --- registry ------------------------------------------------------------

void
StatsRegistry::checkHierarchy(const std::string &name) const
{
    // `a.b` conflicts with a registered leaf `a` (a JSON key cannot be
    // both a number and a group) and with any registered `a.b.c`.
    fatalIf(name.empty(), "StatsRegistry: empty stat name");
    std::size_t dot = 0;
    while ((dot = name.find('.', dot)) != std::string::npos) {
        fatalIf(stats_.count(name.substr(0, dot)) != 0,
                "StatsRegistry: '" + name +
                    "' conflicts with leaf stat '" + name.substr(0, dot) +
                    "'");
        ++dot;
    }
    const std::string prefix = name + ".";
    const auto next = stats_.lower_bound(prefix);
    if (next != stats_.end() &&
        next->first.compare(0, prefix.size(), prefix) == 0) {
        fatal("StatsRegistry: '" + name + "' conflicts with group '" +
              next->first + "'");
    }
}

template <typename T, typename... Args>
T &
StatsRegistry::getOrCreate(const std::string &name,
                           const std::string &desc, Stat::Kind kind,
                           Args &&...args)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = stats_.find(name);
    if (it != stats_.end()) {
        fatalIf(it->second->kind() != kind,
                "StatsRegistry: '" + name +
                    "' re-registered as a different kind");
        if (!desc.empty() && it->second->desc().empty())
            it->second->setDesc(desc);
        return static_cast<T &>(*it->second);
    }
    checkHierarchy(name);
    auto stat =
        std::make_unique<T>(name, desc, std::forward<Args>(args)...);
    T &ref = *stat;
    stats_.emplace(name, std::move(stat));
    return ref;
}

Counter &
StatsRegistry::counter(const std::string &name, const std::string &desc)
{
    return getOrCreate<Counter>(name, desc, Stat::Kind::Counter);
}

Scalar &
StatsRegistry::scalar(const std::string &name, const std::string &desc)
{
    return getOrCreate<Scalar>(name, desc, Stat::Kind::Scalar);
}

Histogram &
StatsRegistry::histogram(const std::string &name, double lo, double hi,
                         int buckets, const std::string &desc)
{
    return getOrCreate<Histogram>(name, desc, Stat::Kind::Histogram, lo,
                                  hi, buckets);
}

Formula &
StatsRegistry::formula(const std::string &name,
                       std::function<double()> fn,
                       const std::string &desc)
{
    return getOrCreate<Formula>(name, desc, Stat::Kind::Formula,
                                std::move(fn));
}

const Stat *
StatsRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : it->second.get();
}

std::size_t
StatsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.size();
}

void
StatsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &entry : stats_)
        entry.second->reset();
}

void
StatsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_.clear();
}

std::vector<const Stat *>
StatsRegistry::snapshot() const
{
    // Rendering happens outside the lock so Formula bodies may call back
    // into the registry (name lookups) without deadlocking; map nodes
    // are pointer-stable, and dumps race with registration only if the
    // caller is already misusing the (update-unlocked) registry.
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<const Stat *> stats;
    stats.reserve(stats_.size());
    for (const auto &entry : stats_)
        stats.push_back(entry.second.get());
    return stats;
}

void
StatsRegistry::sampleNumeric(
    const std::function<void(const std::string &, double)> &fn) const
{
    for (const Stat *s : snapshot()) {
        switch (s->kind()) {
          case Stat::Kind::Counter:
            fn(s->name(), double(static_cast<const Counter *>(s)->value()));
            break;
          case Stat::Kind::Scalar:
            fn(s->name(), static_cast<const Scalar *>(s)->value());
            break;
          case Stat::Kind::Histogram: {
            const auto *h = static_cast<const Histogram *>(s);
            fn(s->name() + ".count", double(h->count()));
            fn(s->name() + ".sum", h->sum());
            break;
          }
          case Stat::Kind::Formula:
            break; // lambdas may not be thread-safe to evaluate here
        }
    }
}

std::string
StatsRegistry::dumpText() const
{
    const std::vector<const Stat *> stats = snapshot();
    // gem5 layout: name, value, "# description"; the map iterated by
    // snapshot() is name-sorted, so the dump is deterministic.
    std::size_t name_w = 0;
    for (const Stat *s : stats)
        name_w = std::max(name_w, s->name().size());

    std::string out = "---------- Begin Simulation Statistics ----------\n";
    for (const Stat *s : stats) {
        out += s->name();
        out.append(name_w + 2 - s->name().size(), ' ');
        out += s->valueText();
        if (!s->desc().empty())
            out += "  # " + s->desc();
        out += '\n';
    }
    out += "---------- End Simulation Statistics   ----------\n";
    return out;
}

void
StatsRegistry::dump(std::FILE *out) const
{
    const std::string text = dumpText();
    std::fwrite(text.data(), 1, text.size(), out);
}

void
StatsRegistry::writeJson(JsonWriter &w) const
{
    const std::vector<const Stat *> stats = snapshot();
    w.beginObject();
    // Walk the sorted flat names, opening/closing nested objects as the
    // dotted prefixes change.
    std::vector<std::string> open; // current group path
    for (const Stat *stat : stats) {
        const std::string &name = stat->name();
        std::vector<std::string> parts;
        std::size_t start = 0, dot;
        while ((dot = name.find('.', start)) != std::string::npos) {
            parts.push_back(name.substr(start, dot - start));
            start = dot + 1;
        }
        const std::string leaf = name.substr(start);

        std::size_t common = 0;
        while (common < open.size() && common < parts.size() &&
               open[common] == parts[common]) {
            ++common;
        }
        while (open.size() > common) {
            w.endObject();
            open.pop_back();
        }
        while (open.size() < parts.size()) {
            w.beginObject(parts[open.size()]);
            open.push_back(parts[open.size()]);
        }
        stat->writeJsonField(w, leaf);
    }
    while (!open.empty()) {
        w.endObject();
        open.pop_back();
    }
    w.endObject();
}

std::string
StatsRegistry::json() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

bool
StatsRegistry::writeJsonFile(const std::string &path,
                             const std::string &bench) const
{
    JsonWriter w;
    w.beginObject();
    w.field("bench", bench);
    w.field("schema_version", 1);
    w.fieldRaw("stats", json());
    w.endObject();
    return writeTextFile(path, w.str() + "\n");
}

StatsRegistry &
statsRegistry()
{
    static StatsRegistry registry;
    return registry;
}

std::string
sanitizeStatName(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    bool pending_sep = false;
    for (const char c : label) {
        if (std::isalnum((unsigned char)c) || c == '_' || c == '-') {
            if (pending_sep && !out.empty())
                out += '_';
            pending_sep = false;
            out += char(std::tolower((unsigned char)c));
        } else {
            pending_sep = true;
        }
    }
    return out.empty() ? "_" : out;
}

} // namespace usys
