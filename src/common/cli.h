/**
 * @file
 * Shared command-line handling for the bench drivers.
 *
 * Every bench binary understands
 *   --stats-json <path>   write the stats-registry dump as JSON
 *   --stats-dump          print the gem5-style text dump to stderr
 *   --trace-out <path>    write a chrome://tracing / Perfetto JSON trace
 *   --no-packed           force the scalar reference simulation engine
 *   --packed              re-enable the packed engine (the default)
 *   --no-panel            disable cache-blocked panel GEMM (legacy
 *                         per-MAC stream queries; for A/B comparison)
 *   --panel               re-enable panel blocking (the default)
 *   --panel-kb <n>        per-worker panel arena budget in KiB;
 *                         overrides USYS_L2_KB and the sysfs L2 probe
 *   --no-zero-skip        disable the zero-magnitude stream fast path
 *   --zero-skip           re-enable zero-stream skipping (the default)
 *   --no-sparse           disable the sparsity plans (compacted
 *                         nonzero-index iteration); per-element
 *                         zero-skip checks remain
 *   --sparse              re-enable sparsity plans (the default)
 *   --threads <n>         executor thread count (0 = auto: USYS_THREADS
 *                         env, else hardware_concurrency())
 *   --simd <mode>         SIMD kernel tier: auto (default; best the CPU
 *                         supports), avx2, or generic — overrides the
 *                         USYS_SIMD env; requesting an unavailable
 *                         tier is fatal
 *   --profile-json <path>       write the merged profiler call-tree
 *   --profile-collapsed <path>  write collapsed-stack flamegraph lines
 *   --metrics-out <path>        JSON-lines registry timeseries
 *   --metrics-interval-ms <n>   sampling period (default 1000 when only
 *                               --metrics-out is given)
 *   --progress                  stderr heartbeat in the sweep drivers
 *
 * Profiling activates when either --profile-* flag is given; the
 * USYS_PROFILE environment variable overrides ("1" forces scopes on
 * even without an artifact, "0" forces them off — the overhead-guard
 * configuration). While profiling or metrics sampling is active,
 * finalizeBench() additionally publishes the executor telemetry
 * (`exec.worker<N>.*` counters and the `exec.task_latency_us`
 * histogram) into the stats registry. Those values are wall-clock
 * nondeterministic, which is why they are NOT published by default:
 * the byte-determinism harness (check_bench_e2e / check_stats_schema)
 * compares default-mode stats dumps across runs and thread counts.
 *
 * parseBenchArgs() strips the flags it consumed from argv (so wrapped
 * argument parsers like google-benchmark's see only their own flags),
 * enables the global event trace when a trace path is requested, opens
 * a profiler root frame named after the bench, and starts the metrics
 * sampler; finalizeBench() closes the frame, stops the sampler, and
 * writes the artifacts after the run.
 */

#ifndef USYS_COMMON_CLI_H
#define USYS_COMMON_CLI_H

#include <chrono>
#include <mutex>
#include <string>

#include "common/types.h"

namespace usys {

/** Observability options shared by every bench driver. */
struct BenchOptions
{
    std::string bench;      // binary name (recorded in the artifact)
    std::string stats_json; // empty = no JSON dump
    std::string trace_out;  // empty = tracing disabled
    bool stats_dump = false;

    std::string profile_json;      // empty = no call-tree dump
    std::string profile_collapsed; // empty = no flamegraph dump
    std::string metrics_out;       // empty = sampler disabled
    u64 metrics_interval_ms = 0;   // 0 = default (1000) if metrics_out
    bool progress = false;         // sweep heartbeat (sweep drivers)
    bool profiling = false;        // scopes active (set by parse)
};

/**
 * Consume the shared flags from argv (compacting it in place and
 * updating *argc); unrecognized arguments are left for the caller.
 */
BenchOptions parseBenchArgs(int *argc, char **argv,
                            const std::string &bench);

/**
 * Parse an integer flag value strictly: the whole token must be a
 * decimal integer within [lo, hi]. Empty strings, non-numeric input,
 * trailing garbage ("12x"), and out-of-range values are fatal() with a
 * message naming the flag — a silently truncated `--reps 1e3` has
 * burned enough CPU hours.
 */
i64 parseIntFlag(const char *flag, const char *text, i64 lo, i64 hi);

/**
 * Parse a floating-point flag value strictly: the whole token must be
 * a finite decimal/scientific number within [lo, hi]. Same fatal()
 * contract as parseIntFlag (rejects "", "1.5.2", "nan", overflow).
 */
double parseDoubleFlag(const char *flag, const char *text, double lo,
                       double hi);

/** Write the requested artifacts and report where they went. */
void finalizeBench(const BenchOptions &opts);

/**
 * Throttled stderr heartbeat for long sweeps (`--progress`): shard
 * counter, elapsed wall time, and a linear-extrapolation ETA, printed at
 * most once per second (plus always the final shard) so a watched run
 * shows life without flooding the terminal. Thread-safe; when
 * constructed disabled every call is a cheap no-op. Writes only to
 * stderr, keeping JSON artifacts on stdout/file clean.
 */
class ProgressMeter
{
  public:
    ProgressMeter(std::string label, u64 total, bool enabled);

    /** Report that `done` of the total units are now complete. */
    void update(u64 done);

  private:
    const std::string label_;
    const u64 total_;
    const bool enabled_;
    std::mutex mu_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point last_print_;
    bool printed_any_ = false;
};

/**
 * Global gate for the fast simulation path: word-packed (SWAR) unary
 * kernels plus tile-/layer-parallel scheduling. Defaults to on; the
 * scalar reference engine stays available behind --no-packed for
 * cross-checking and debugging. Both engines are bit-exact, produce the
 * same cycle counts, and commit identical stats-registry deltas.
 */
bool packedEngineEnabled();

/** Override the packed-engine gate (tests and CLI flag handling). */
void setPackedEngineEnabled(bool on);

/**
 * Gate for the cache-blocked panel GEMM inside the packed engine
 * (DESIGN.md §13): column panels sized to the panel arena budget, with
 * per-worker prefix-count tables staged once per panel. Defaults to
 * on; --no-panel falls back to the per-MAC stream-query loop. Both
 * paths are bit-exact (outputs, cycles, stats, fault census).
 */
bool panelGemmEnabled();

/** Override the panel-GEMM gate (tests and CLI flag handling). */
void setPanelGemmEnabled(bool on);

/**
 * Gate for the zero-magnitude stream fast path: operands whose packed
 * unary stream is all-zero contribute exactly zero, so the panel MAC
 * loop skips them. Defaults to on; --no-zero-skip disables. Skipping
 * never changes results, stats, or the fault census (the skip is only
 * taken where no fault site is active).
 */
bool zeroSkipEnabled();

/** Override the zero-skip gate (tests and CLI flag handling). */
void setZeroSkipEnabled(bool on);

/**
 * Gate for the sparsity-plan layer above zero skipping (DESIGN.md §16):
 * per staged activation tile, a compacted nonzero-index plan that the
 * packed fold iterates instead of testing every element for zero. Only
 * consulted while zero skipping itself is enabled. Defaults to on;
 * --no-sparse falls back to the per-element checks. Plans never change
 * results, stats, or the fault census — they only reorder skipped work
 * out of the loops.
 */
bool sparseEnabled();

/** Override the sparsity-plan gate (tests and CLI flag handling). */
void setSparseEnabled(bool on);

/**
 * Per-worker panel arena budget in KiB. Resolution order: --panel-kb
 * flag (via setPanelBudgetKb), USYS_L2_KB environment variable, the
 * sysfs L2 cache size of cpu0, then a 512 KiB fallback. The packed
 * engine sizes its column panels so the staged prefix-count tables fit
 * this budget, keeping panel working sets L2-resident.
 */
u32 panelBudgetKb();

/** Override the panel budget (0 restores automatic resolution). */
void setPanelBudgetKb(u32 kb);

} // namespace usys

#endif // USYS_COMMON_CLI_H
