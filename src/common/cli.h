/**
 * @file
 * Shared command-line handling for the bench drivers.
 *
 * Every bench binary understands
 *   --stats-json <path>   write the stats-registry dump as JSON
 *   --stats-dump          print the gem5-style text dump to stderr
 *   --trace-out <path>    write a chrome://tracing / Perfetto JSON trace
 *   --no-packed           force the scalar reference simulation engine
 *   --packed              re-enable the packed engine (the default)
 *   --threads <n>         executor thread count (0 = auto: USYS_THREADS
 *                         env, else hardware_concurrency())
 *   --simd <mode>         SIMD kernel tier: auto (default; best the CPU
 *                         supports), avx2, or generic — overrides the
 *                         USYS_SIMD env; requesting an unavailable
 *                         tier is fatal
 *
 * parseBenchArgs() strips the flags it consumed from argv (so wrapped
 * argument parsers like google-benchmark's see only their own flags) and
 * enables the global event trace when a trace path is requested;
 * finalizeBench() writes the artifacts after the run.
 */

#ifndef USYS_COMMON_CLI_H
#define USYS_COMMON_CLI_H

#include <string>

#include "common/types.h"

namespace usys {

/** Observability options shared by every bench driver. */
struct BenchOptions
{
    std::string bench;      // binary name (recorded in the artifact)
    std::string stats_json; // empty = no JSON dump
    std::string trace_out;  // empty = tracing disabled
    bool stats_dump = false;
};

/**
 * Consume the shared flags from argv (compacting it in place and
 * updating *argc); unrecognized arguments are left for the caller.
 */
BenchOptions parseBenchArgs(int *argc, char **argv,
                            const std::string &bench);

/**
 * Parse an integer flag value strictly: the whole token must be a
 * decimal integer within [lo, hi]. Empty strings, non-numeric input,
 * trailing garbage ("12x"), and out-of-range values are fatal() with a
 * message naming the flag — a silently truncated `--reps 1e3` has
 * burned enough CPU hours.
 */
i64 parseIntFlag(const char *flag, const char *text, i64 lo, i64 hi);

/**
 * Parse a floating-point flag value strictly: the whole token must be
 * a finite decimal/scientific number within [lo, hi]. Same fatal()
 * contract as parseIntFlag (rejects "", "1.5.2", "nan", overflow).
 */
double parseDoubleFlag(const char *flag, const char *text, double lo,
                       double hi);

/** Write the requested artifacts and report where they went. */
void finalizeBench(const BenchOptions &opts);

/**
 * Global gate for the fast simulation path: word-packed (SWAR) unary
 * kernels plus tile-/layer-parallel scheduling. Defaults to on; the
 * scalar reference engine stays available behind --no-packed for
 * cross-checking and debugging. Both engines are bit-exact, produce the
 * same cycle counts, and commit identical stats-registry deltas.
 */
bool packedEngineEnabled();

/** Override the packed-engine gate (tests and CLI flag handling). */
void setPackedEngineEnabled(bool on);

} // namespace usys

#endif // USYS_COMMON_CLI_H
