/**
 * @file
 * uSystolic ISA support (Section III-D).
 *
 * The ISA mirrors a TPU-style CISC stream — weight preload and input
 * streaming instructions with deterministic timing — augmented with a
 * MAC-cycle-count field so the sequencer knows when each multi-cycle
 * unary MAC terminates (the early-termination knob is programmed here).
 * Instructions encode to two 64-bit words; the interpreter's cycle
 * accounting matches the performance simulator exactly (tested).
 */

#ifndef USYS_ISA_ISA_H
#define USYS_ISA_ISA_H

#include <vector>

#include "common/types.h"
#include "arch/array.h"
#include "sched/layer.h"

namespace usys {

/** Instruction opcodes. */
enum class Opcode : u8
{
    LoadWeights = 0x1,   // preload an R x C weight tile
    StreamCompute = 0x2, // stream M input rows, accumulate, drain
    Barrier = 0x3,       // wait for outstanding drains
    Halt = 0xF,
};

/** Decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Halt;
    u16 rows = 0;       // tile rows (<= 512)
    u16 cols = 0;       // tile cols (<= 512)
    u32 m_rows = 0;     // streamed input rows (StreamCompute)
    u32 mac_cycles = 1; // Section III-D: MAC termination cycle count
    u32 base = 0;       // operand base address (tile id)

    bool operator==(const Instruction &o) const = default;
};

/** Packed 128-bit instruction word. */
struct EncodedInstruction
{
    u64 lo = 0;
    u64 hi = 0;

    bool operator==(const EncodedInstruction &o) const = default;
};

/** Pack an instruction into its binary encoding. */
EncodedInstruction encodeInstruction(const Instruction &inst);

/** Unpack a binary instruction word. */
Instruction decodeInstruction(const EncodedInstruction &word);

/**
 * Lower one GEMM layer onto the array as an instruction stream:
 * alternating LoadWeights / StreamCompute per fold, then Barrier + Halt.
 */
std::vector<Instruction> buildProgram(const ArrayConfig &array,
                                      const GemmLayer &layer);

/** Result of interpreting a program. */
struct ProgramStats
{
    Cycles cycles = 0;
    u64 weight_tiles = 0;
    u64 streamed_rows = 0;
    u64 instructions = 0;
};

/**
 * Execute a program's timing on an idealized (contention-free) array.
 * The cycle count equals the performance simulator's compute_cycles.
 */
ProgramStats interpretProgram(const std::vector<Instruction> &program);

} // namespace usys

#endif // USYS_ISA_ISA_H
