#include "isa/isa.h"

#include "sched/tiling.h"

namespace usys {

namespace {

// lo word: op[3:0] rows[13:4] cols[23:14] mac[55:24] base[63:56] (low 8)
// hi word: m_rows[31:0] base[63:32] (high 24, stored <<8 internally)
constexpr int kOpShift = 0;
constexpr int kRowsShift = 4;
constexpr int kColsShift = 14;
constexpr int kMacShift = 24;
constexpr u64 kTenBits = 0x3FF;

} // namespace

EncodedInstruction
encodeInstruction(const Instruction &inst)
{
    fatalIf(inst.rows > 512 || inst.cols > 512,
            "encodeInstruction: tile exceeds 512x512");
    EncodedInstruction word;
    word.lo = (u64(inst.op) & 0xF) << kOpShift |
              (u64(inst.rows) & kTenBits) << kRowsShift |
              (u64(inst.cols) & kTenBits) << kColsShift |
              (u64(inst.mac_cycles) & 0xFFFFFFFF) << kMacShift;
    word.hi = u64(inst.m_rows) | (u64(inst.base) << 32);
    return word;
}

Instruction
decodeInstruction(const EncodedInstruction &word)
{
    Instruction inst;
    inst.op = Opcode((word.lo >> kOpShift) & 0xF);
    inst.rows = u16((word.lo >> kRowsShift) & kTenBits);
    inst.cols = u16((word.lo >> kColsShift) & kTenBits);
    inst.mac_cycles = u32((word.lo >> kMacShift) & 0xFFFFFFFF);
    inst.m_rows = u32(word.hi & 0xFFFFFFFF);
    inst.base = u32(word.hi >> 32);
    return inst;
}

std::vector<Instruction>
buildProgram(const ArrayConfig &array, const GemmLayer &layer)
{
    layer.check();
    const Tiling tiling = tileLayer(array, layer);
    const u32 mac = array.kernel.macCycles();

    std::vector<Instruction> program;
    u32 tile = 0;
    for (i64 f = 0; f < tiling.folds; ++f, ++tile) {
        Instruction load;
        load.op = Opcode::LoadWeights;
        load.rows = u16(array.rows);
        load.cols = u16(array.cols);
        load.mac_cycles = mac;
        load.base = tile;
        program.push_back(load);

        Instruction stream;
        stream.op = Opcode::StreamCompute;
        stream.rows = u16(array.rows);
        stream.cols = u16(array.cols);
        stream.m_rows = u32(tiling.m);
        stream.mac_cycles = mac;
        stream.base = tile;
        program.push_back(stream);
    }
    program.push_back(Instruction{Opcode::Barrier, 0, 0, 0, mac, 0});
    program.push_back(Instruction{Opcode::Halt, 0, 0, 0, mac, 0});
    return program;
}

ProgramStats
interpretProgram(const std::vector<Instruction> &program)
{
    ProgramStats stats;
    for (const auto &inst : program) {
        ++stats.instructions;
        switch (inst.op) {
          case Opcode::LoadWeights:
            // Weights pipeline down one array row per cycle.
            stats.cycles += inst.rows;
            ++stats.weight_tiles;
            break;
          case Opcode::StreamCompute:
            // Skewed streaming plus the column drain; the MAC-cycle
            // field sets the interval length (Section III-D).
            stats.cycles += (u64(inst.m_rows) + inst.rows - 1) *
                                inst.mac_cycles +
                            u64(inst.cols - 1);
            stats.streamed_rows += inst.m_rows;
            break;
          case Opcode::Barrier:
            break; // drains are already accounted per stream
          case Opcode::Halt:
            return stats;
        }
    }
    return stats;
}

} // namespace usys
