/**
 * @file
 * GEMM error statistics driver for the Section V-A claim: "both the mean
 * and standard deviation of the error for GEMMs rank as FXP-o-res <
 * uSystolic < FXP-i-res" (smaller error for i-res; the paper lists the
 * rank in increasing accuracy).
 */

#ifndef USYS_EVAL_ERROR_STATS_H
#define USYS_EVAL_ERROR_STATS_H

#include <string>
#include <vector>

#include "common/types.h"

namespace usys {

/** Error statistics of one numeric scheme on random GEMMs. */
struct GemmErrorStats
{
    std::string scheme;
    double mean_abs_error = 0.0; // |error| averaged over outputs
    double std_error = 0.0;      // standard deviation of the error
    double nrmse = 0.0;          // normalized RMSE
};

/**
 * Measure FXP-o-res / uSystolic-rate / uSystolic-temporal / uGEMM-H /
 * FXP-i-res GEMM error against FP32 on random operands.
 *
 * @param ebt effective bitwidth n
 * @param k_dim reduction dimension of the probed GEMMs
 */
std::vector<GemmErrorStats> gemmErrorStats(int ebt, int k_dim,
                                           u64 seed = 0x5CA1E);

} // namespace usys

#endif // USYS_EVAL_ERROR_STATS_H
