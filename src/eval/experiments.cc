#include "eval/experiments.h"

#include <algorithm>
#include <iterator>

#include "common/event_trace.h"
#include "common/stats_registry.h"
#include "dnn/models.h"
#include "workloads/alexnet.h"
#include "workloads/systems.h"

namespace usys {

namespace {

SystemConfig
systemFor(const Candidate &cand, bool edge)
{
    return edge ? edgeSystem(cand.kern, cand.with_sram)
                : cloudSystem(cand.kern, cand.with_sram);
}

} // namespace

std::vector<Candidate>
paperCandidates(int bits)
{
    std::vector<Candidate> cands;
    cands.push_back({"Binary Parallel",
                     {Scheme::BinaryParallel, bits, 0}, true});
    cands.push_back({"Binary Serial",
                     {Scheme::BinarySerial, bits, 0}, true});
    // Unary-32c/64c/128c: 2^(n-1)-cycle rate-coded multiplication, 32 and
    // 64 early-terminated from the 128-cycle full period (8-bit naming is
    // kept for 16-bit sweeps as in the paper's figures).
    cands.push_back({"Unary-32c", {Scheme::USystolicRate, bits, 6}, false});
    cands.push_back({"Unary-64c", {Scheme::USystolicRate, bits, 7}, false});
    cands.push_back({"Unary-128c", {Scheme::USystolicRate, bits, 8},
                     false});
    cands.push_back({"uGEMM-H", {Scheme::UgemmHybrid, bits, 0}, false});
    // Exact-product temporal schemes: tubGEMM (unary activation x binary
    // weight) and tuGEMM (fully temporal). Labels deliberately do not
    // start with "Unary" — headlineSummary()'s uSystolic filter keys on
    // that prefix.
    cands.push_back({"tubGEMM", {Scheme::TubGemm, bits, 0}, false});
    cands.push_back({"tuGEMM", {Scheme::TuGemm, bits, 0}, false});
    return cands;
}

std::vector<double>
measuredAlexnetSparsity()
{
    // Deterministic synthetic batch through the scaled AlexLite model:
    // random weights already yield the ~half-negative pre-activations
    // whose ReLU zeros the unary arrays skip. Fixed seeds keep every
    // caller (benches, tests, usim) byte-reproducible.
    auto model = buildAlexLite(10, 0x5eedu);
    Prng rng(0xa1e7u);
    Tensor x(8, 1, 16, 16);
    for (auto &v : x.raw())
        v = float(rng.uniform());
    std::vector<double> frac;
    model->forwardMeasuringSparsity(x, NumericConfig{}, &frac);
    return frac;
}

std::vector<GemmLayer>
alexnetLayersMeasuredSparsity()
{
    auto layers = alexnetLayers();
    const auto frac = measuredAlexnetSparsity();
    fatalIf(frac.size() != layers.size(),
            "measured sparsity does not align with the AlexNet layers");
    for (std::size_t i = 0; i < layers.size(); ++i) {
        layers[i].act_sparsity = frac[i];
        layers[i].check();
    }
    return layers;
}

std::vector<Candidate>
bandwidthCandidates(int bits)
{
    auto cands = paperCandidates(bits);
    // Figure 10 additionally shows the binary designs without SRAM, to
    // demonstrate that only uSystolic can afford the elimination.
    cands.push_back({"Binary Parallel (no SRAM)",
                     {Scheme::BinaryParallel, bits, 0}, false});
    cands.push_back({"Binary Serial (no SRAM)",
                     {Scheme::BinarySerial, bits, 0}, false});
    return cands;
}

std::vector<LayerRow>
sweepAlexnet(bool edge, const std::vector<Candidate> &cands)
{
    // Every (layer, candidate) point is independent, so the roofline
    // math runs as one batch (parallel under the packed engine).
    std::vector<LayerJob> jobs;
    std::vector<LayerRow> rows;
    for (const auto &layer : alexnetLayers()) {
        for (const auto &cand : cands) {
            jobs.push_back({systemFor(cand, edge), layer});
            LayerRow row;
            row.layer = layer.name;
            row.candidate = cand.label;
            rows.push_back(std::move(row));
        }
    }
    const auto stats = simulateLayerBatch(jobs);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        rows[i].stats = stats[i];
        rows[i].energy = layerEnergy(jobs[i].sys, stats[i]);
    }
    return rows;
}

std::vector<AreaRow>
fig11Area(bool edge, int bits)
{
    const struct
    {
        const char *label;
        Scheme scheme;
        bool sram;
    } entries[] = {
        {"BP", Scheme::BinaryParallel, true},
        {"BS", Scheme::BinarySerial, true},
        {"UG", Scheme::UgemmHybrid, false},
        {"UR", Scheme::USystolicRate, false},
        {"UT", Scheme::USystolicTemporal, false},
        {"TUB", Scheme::TubGemm, false},
        {"TU", Scheme::TuGemm, false},
    };

    std::vector<AreaRow> rows;
    for (const auto &e : entries) {
        const KernelConfig kern{e.scheme, bits, 0};
        const SystemConfig sys =
            edge ? edgeSystem(kern, e.sram) : cloudSystem(kern, e.sram);
        const ArrayCost cost = arrayCost(sys.array);
        AreaRow row;
        row.label = std::string(e.label) + "-" + std::to_string(bits) + "b";
        row.blocks_mm2 = cost.area_mm2;
        row.array_mm2 = cost.area_mm2.total();
        row.sram_mm2 = sys.sram.present ? 3.0 * sys.sram.cost().area_mm2
                                        : 0.0;
        row.total_mm2 = row.array_mm2 + row.sram_mm2;
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<EfficiencyRow>
fig14Efficiency(bool edge, int bits, const std::vector<GemmLayer> &layers)
{
    const auto cands = paperCandidates(bits);
    const Candidate *baselines[2] = {&cands[0], &cands[1]};

    // Per-layer on-chip energy/power for every candidate, batched so
    // the roofline math can fan out (order of records is unchanged).
    std::vector<LayerJob> jobs;
    for (std::size_t c = 0; c < cands.size(); ++c) {
        const SystemConfig sys = systemFor(cands[c], edge);
        for (const auto &layer : layers)
            jobs.push_back({sys, layer});
    }
    const auto stats = simulateLayerBatch(jobs);
    std::vector<std::vector<EnergyReport>> reports(cands.size());
    for (std::size_t c = 0; c < cands.size(); ++c) {
        for (std::size_t l = 0; l < layers.size(); ++l) {
            const std::size_t i = c * layers.size() + l;
            reports[c].push_back(layerEnergy(jobs[i].sys, stats[i]));
        }
    }

    std::vector<EfficiencyRow> rows;
    for (int b = 0; b < 2; ++b) {
        for (std::size_t c = 2; c < cands.size(); ++c) {
            EfficiencyRow row;
            row.candidate = cands[c].label;
            row.baseline = baselines[b]->label;
            double ee = 0.0, pe = 0.0;
            const auto &base = reports[b];
            for (std::size_t l = 0; l < layers.size(); ++l) {
                ee += base[l].onchip_uj() / reports[c][l].onchip_uj();
                pe += base[l].onchip_power_mw() /
                      reports[c][l].onchip_power_mw();
            }
            row.energy_eff_x = ee / double(layers.size());
            row.power_eff_x = pe / double(layers.size());
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

Headline
headlineSummary()
{
    Headline h;
    const int bits = 8;

    // Array and on-chip area: rate-coded uSystolic (no SRAM) vs binary
    // parallel (with SRAM), edge configuration.
    const auto areas = fig11Area(true, bits);
    const AreaRow *bp = &areas[0];
    const AreaRow *ur = nullptr;
    for (const auto &row : areas)
        if (row.label.rfind("UR", 0) == 0)
            ur = &row;
    h.array_area_reduction_pct =
        100.0 * (1.0 - ur->array_mm2 / bp->array_mm2);
    h.onchip_area_reduction_pct =
        100.0 * (1.0 - ur->total_mm2 / bp->total_mm2);

    // Energy/power over 8-bit AlexNet, edge: unary candidates vs binary
    // parallel, per-layer.
    const auto cands = paperCandidates(bits);
    const auto rows = sweepAlexnet(true, cands);
    double sum_e = 0.0, sum_p = 0.0;
    int count = 0;
    for (const auto &row : rows) {
        if (row.candidate.rfind("Unary", 0) != 0)
            continue;
        // Find the matching Binary Parallel row for this layer.
        for (const auto &base : rows) {
            if (base.layer != row.layer ||
                base.candidate != "Binary Parallel") {
                continue;
            }
            const double ee =
                base.energy.onchip_uj() / row.energy.onchip_uj();
            const double pe = base.energy.onchip_power_mw() /
                              row.energy.onchip_power_mw();
            h.max_energy_eff_x = std::max(h.max_energy_eff_x, ee);
            h.max_power_eff_x = std::max(h.max_power_eff_x, pe);
            sum_e += 1.0 - 1.0 / ee;
            sum_p += 1.0 - 1.0 / pe;
            ++count;
        }
    }
    h.mean_onchip_energy_red_pct = 100.0 * sum_e / count;
    h.mean_onchip_power_red_pct = 100.0 * sum_p / count;
    return h;
}

void
recordInstrumentedSweep(bool edge, int bits)
{
    // One entry per computing scheme, Figure 11 style: binary designs
    // keep SRAM, unary designs crawl bytes straight from DRAM.
    const struct
    {
        const char *slug;
        Scheme scheme;
        bool sram;
    } entries[] = {
        {"bp", Scheme::BinaryParallel, true},
        {"bs", Scheme::BinarySerial, true},
        {"ug", Scheme::UgemmHybrid, false},
        {"ur", Scheme::USystolicRate, false},
        {"ut", Scheme::USystolicTemporal, false},
        {"tub", Scheme::TubGemm, false},
        {"tu", Scheme::TuGemm, false},
    };

    StatsRegistry &reg = statsRegistry();
    const auto layers = alexnetLayers();

    // Batch the whole scheme x layer grid into one simulateLayerBatch
    // call, so the executor fans out over all 7 * layers points at once
    // instead of joining at every scheme boundary.
    std::vector<LayerJob> jobs;
    for (const auto &e : entries) {
        const KernelConfig kern{e.scheme, bits, 0};
        const SystemConfig sys =
            edge ? edgeSystem(kern, e.sram) : cloudSystem(kern, e.sram);
        for (const auto &layer : layers)
            jobs.push_back({sys, layer});
    }
    std::vector<LayerStats> grid_stats;
    {
        ScopedTimer timer("sweep grid", "eval");
        grid_stats = simulateLayerBatch(jobs);
    }

    // Named stats are recorded serially in (scheme, layer) order, same
    // sequence as the old per-scheme loop.
    for (std::size_t s = 0; s < std::size(entries); ++s) {
        const auto &e = entries[s];
        ScopedTimer timer(std::string("record ") + e.slug, "eval");
        const SystemConfig &sys = jobs[s * layers.size()].sys;
        double runtime_s = 0.0;
        double energy_uj = 0.0;
        for (std::size_t i = 0; i < layers.size(); ++i) {
            const std::string prefix =
                std::string("sim.") + e.slug + ".layer" +
                std::to_string(i);
            const LayerStats &stats = grid_stats[s * layers.size() + i];
            recordLayerStats(reg, prefix, sys, stats);
            const EnergyReport energy = layerEnergy(sys, stats);
            reg.scalar(prefix + ".onchip_uj", "on-chip energy (uJ)")
                .set(energy.onchip_uj());
            reg.scalar(prefix + ".total_uj",
                       "on-chip + DRAM energy (uJ)")
                .set(energy.onchip_uj() + energy.dram_uj);
            runtime_s += stats.runtime_s;
            energy_uj += energy.onchip_uj() + energy.dram_uj;
        }
        const std::string base = std::string("sim.") + e.slug;
        reg.counter(base + ".layers", "AlexNet layers simulated")
            .set(layers.size());
        reg.scalar(base + ".runtime_s", "whole-network runtime (s)")
            .set(runtime_s);
        reg.scalar(base + ".energy_uj", "whole-network energy (uJ)")
            .set(energy_uj);
    }
}

double
meanUtilization(bool edge, int bits, const std::vector<GemmLayer> &layers)
{
    const KernelConfig kern{Scheme::BinaryParallel, bits, 0};
    const SystemConfig sys =
        edge ? edgeSystem(kern, true) : cloudSystem(kern, true);
    double sum = 0.0;
    for (const auto &layer : layers)
        sum += tileLayer(sys.array, layer).utilization;
    return sum / double(layers.size());
}

} // namespace usys
