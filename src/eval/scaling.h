/**
 * @file
 * Multi-instance scalability model (Section V-H): N identical array
 * instances share one DDR3 channel with fair arbitration; each instance
 * slows down by the ratio of aggregate demand to supply once the channel
 * saturates.
 */

#ifndef USYS_EVAL_SCALING_H
#define USYS_EVAL_SCALING_H

#include <vector>

#include "sched/simulator.h"

namespace usys {

/** Aggregate behavior of N instances on one layer. */
struct ScalingPoint
{
    int instances = 0;
    double per_instance_demand_gbps = 0.0;
    double slowdown = 1.0;          // >= 1 once the channel saturates
    double aggregate_gmacs = 0.0;   // total useful throughput
};

/**
 * Sweep the instance count for one system/layer pair.
 *
 * @param counts instance counts to evaluate
 */
std::vector<ScalingPoint>
scaleInstances(const SystemConfig &sys, const GemmLayer &layer,
               const std::vector<int> &counts);

/** Largest instance count whose slowdown stays below the threshold. */
int maxInstancesBeforeSaturation(const SystemConfig &sys,
                                 const GemmLayer &layer,
                                 double slowdown_limit = 1.05);

} // namespace usys

#endif // USYS_EVAL_SCALING_H
