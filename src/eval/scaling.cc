#include "eval/scaling.h"

#include <algorithm>

namespace usys {

std::vector<ScalingPoint>
scaleInstances(const SystemConfig &sys, const GemmLayer &layer,
               const std::vector<int> &counts)
{
    const LayerStats one = simulateLayer(sys, layer);
    // Demand at full speed: the instance's DRAM bytes over its
    // contention-free runtime.
    const double solo_time =
        double(one.compute_cycles) / (sys.freq_ghz * 1e9);
    const double demand =
        double(one.dram_total_bytes) / solo_time * 1e-9;
    const double supply = sys.dram.sustainedGbps();
    const double solo_gmacs = double(layer.macs()) / solo_time * 1e-9;

    std::vector<ScalingPoint> points;
    for (int n : counts) {
        ScalingPoint p;
        p.instances = n;
        p.per_instance_demand_gbps = demand;
        p.slowdown = std::max(1.0, double(n) * demand / supply);
        p.aggregate_gmacs = double(n) * solo_gmacs / p.slowdown;
        points.push_back(p);
    }
    return points;
}

int
maxInstancesBeforeSaturation(const SystemConfig &sys,
                             const GemmLayer &layer,
                             double slowdown_limit)
{
    for (int n = 1; n <= 1 << 16; n *= 2) {
        const auto points = scaleInstances(sys, layer, {n});
        if (points[0].slowdown > slowdown_limit) {
            // Binary search the last good count in (n/2, n).
            int lo = std::max(1, n / 2), hi = n;
            while (lo + 1 < hi) {
                const int mid = (lo + hi) / 2;
                if (scaleInstances(sys, layer, {mid})[0].slowdown >
                    slowdown_limit) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            return lo;
        }
    }
    return 1 << 16;
}

} // namespace usys
