/**
 * @file
 * Experiment drivers regenerating the paper's evaluation artifacts
 * (Figures 10-14 and the headline claims). Each driver returns structured
 * rows that the bench binaries print and the tests assert invariants on.
 *
 * The candidate set follows Section V-B: after the bandwidth study, the
 * hardware comparison fixes binary designs *with* SRAM against unary
 * designs *without* SRAM (crawling bytes).
 */

#ifndef USYS_EVAL_EXPERIMENTS_H
#define USYS_EVAL_EXPERIMENTS_H

#include <string>
#include <vector>

#include "hw/energy.h"
#include "hw/pe_cost.h"
#include "sched/simulator.h"
#include "workloads/mlperf.h"

namespace usys {

/** One evaluated design point. */
struct Candidate
{
    std::string label; // e.g. "Binary Parallel", "Unary-32c"
    KernelConfig kern;
    bool with_sram = true;
};

/**
 * The Figure 10-14 candidate list at a given bitwidth: Binary Parallel,
 * Binary Serial (both with SRAM), Unary-32c/64c/128c (rate-coded early
 * termination, no SRAM), uGEMM-H, tubGEMM, tuGEMM (no SRAM).
 */
std::vector<Candidate> paperCandidates(int bits);

/**
 * Per-GEMM-layer input zero fraction of the AlexNet workload, measured
 * from a forward pass of the scaled AlexLite model (src/dnn) on a
 * deterministic synthetic batch: real ReLU-induced activation sparsity,
 * layer-aligned with alexnetLayers() (5 conv + 3 fc).
 */
std::vector<double> measuredAlexnetSparsity();

/**
 * alexnetLayers() with GemmLayer::act_sparsity filled in from
 * measuredAlexnetSparsity() — the sparsity-aware workload the roofline
 * model (simulateLayerBatch) credits with zero-stream skipping.
 */
std::vector<GemmLayer> alexnetLayersMeasuredSparsity();

/** SRAM-ablation variants used by Figure 10 (binary without SRAM, etc.). */
std::vector<Candidate> bandwidthCandidates(int bits);

/** One (layer, candidate) simulation result. */
struct LayerRow
{
    std::string layer;
    std::string candidate;
    LayerStats stats;
    EnergyReport energy;
};

/** Simulate every layer x candidate on AlexNet. */
std::vector<LayerRow> sweepAlexnet(bool edge,
                                   const std::vector<Candidate> &cands);

/** Figure 11 row: per-scheme array area breakdown plus SRAM. */
struct AreaRow
{
    std::string label;
    BlockAreas blocks_mm2;  // IREG/WREG/MUL/ACC
    double array_mm2 = 0.0;
    double sram_mm2 = 0.0;  // 0 when SRAM eliminated
    double total_mm2 = 0.0;
};

/** Figure 11: area breakdown for one configuration. */
std::vector<AreaRow> fig11Area(bool edge, int bits);

/** Figure 14 row: mean per-layer energy/power efficiency improvements. */
struct EfficiencyRow
{
    std::string candidate;
    std::string baseline;   // "Binary Parallel" or "Binary Serial"
    double energy_eff_x = 0.0; // mean per-layer E_base / E_unary (on-chip)
    double power_eff_x = 0.0;  // mean per-layer P_base / P_unary (on-chip)
};

/**
 * Figure 14: on-chip efficiency improvements of the unary candidates
 * over the binary baselines for a layer set.
 */
std::vector<EfficiencyRow>
fig14Efficiency(bool edge, int bits, const std::vector<GemmLayer> &layers);

/** Headline numbers from the abstract (8-bit AlexNet, edge). */
struct Headline
{
    double array_area_reduction_pct = 0.0;  // paper: 59.0
    double onchip_area_reduction_pct = 0.0; // paper: 91.3
    double max_energy_eff_x = 0.0;          // paper: up to 112.2
    double max_power_eff_x = 0.0;           // paper: up to 44.8
    double mean_onchip_energy_red_pct = 0.0; // paper: 83.5
    double mean_onchip_power_red_pct = 0.0;  // paper: 98.4
};

Headline headlineSummary();

/**
 * Simulate AlexNet on all seven computing schemes (BP/BS/UG/UR/UT/TUB/TU,
 * unary designs without SRAM) and record per-layer compute/stall/DRAM/energy
 * statistics under `sim.<scheme>.layer<i>.*` in the global registry,
 * plus per-scheme `runtime_s`/`energy_uj` rollups. This is the
 * machine-readable backbone of `headline_summary --stats-json`.
 */
void recordInstrumentedSweep(bool edge, int bits);

/** Mean MAC-slot utilization of a layer set (Section V-G). */
double meanUtilization(bool edge, int bits,
                       const std::vector<GemmLayer> &layers);

} // namespace usys

#endif // USYS_EVAL_EXPERIMENTS_H
