#include "eval/error_stats.h"

#include <cmath>

#include "common/prng.h"
#include "common/stats.h"
#include "dnn/backend.h"

namespace usys {

std::vector<GemmErrorStats>
gemmErrorStats(int ebt, int k_dim, u64 seed)
{
    Prng prng(seed);
    const int m_rows = 12, n_cols = 12;
    MatF a(m_rows, k_dim), b(k_dim, n_cols);
    for (auto &v : a.data())
        v = float(prng.gaussian());
    for (auto &v : b.data())
        v = float(prng.gaussian());
    const MatF ref = gemmFp32(a, b);

    const struct
    {
        const char *name;
        NumericMode mode;
    } modes[] = {
        {"FXP-o-res", NumericMode::FxpOres},
        {"uSystolic-rate", NumericMode::UnaryRate},
        {"uSystolic-temporal", NumericMode::UnaryTemporal},
        {"uGEMM-H", NumericMode::UgemmH},
        {"FXP-i-res", NumericMode::FxpIres},
    };

    std::vector<GemmErrorStats> out;
    for (const auto &m : modes) {
        const MatF got = gemmWithMode(a, b, {m.mode, ebt});
        OnlineStats err, abs_err;
        RmseTracker rmse;
        for (int r = 0; r < m_rows; ++r) {
            for (int c = 0; c < n_cols; ++c) {
                const double e = double(got(r, c)) - ref(r, c);
                err.add(e);
                abs_err.add(std::abs(e));
                rmse.add(ref(r, c), got(r, c));
            }
        }
        out.push_back({m.name, abs_err.mean(), err.stddev(),
                       rmse.normalizedRmse()});
    }
    return out;
}

} // namespace usys
