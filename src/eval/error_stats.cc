#include "eval/error_stats.h"

#include <cmath>
#include <vector>

#include "common/cli.h"
#include "common/executor.h"
#include "common/prng.h"
#include "common/stats.h"
#include "dnn/backend.h"

namespace usys {

std::vector<GemmErrorStats>
gemmErrorStats(int ebt, int k_dim, u64 seed)
{
    Prng prng(seed);
    const int m_rows = 12, n_cols = 12;
    MatF a(m_rows, k_dim), b(k_dim, n_cols);
    for (auto &v : a.data())
        v = float(prng.gaussian());
    for (auto &v : b.data())
        v = float(prng.gaussian());
    const MatF ref = gemmFp32(a, b);

    const struct
    {
        const char *name;
        NumericMode mode;
    } modes[] = {
        {"FXP-o-res", NumericMode::FxpOres},
        {"uSystolic-rate", NumericMode::UnaryRate},
        {"uSystolic-temporal", NumericMode::UnaryTemporal},
        {"uGEMM-H", NumericMode::UgemmH},
        {"FXP-i-res", NumericMode::FxpIres},
    };
    constexpr std::size_t n_modes = sizeof(modes) / sizeof(modes[0]);

    // The five mode GEMMs are independent (the shared product-table
    // caches are mutex-guarded), so they fan out under the packed
    // engine; statistics shard by output row and merge in fixed row
    // order, keeping results identical regardless of worker count.
    std::vector<MatF> results(n_modes);
    auto run_mode = [&](u64 i) {
        results[i] = gemmWithMode(a, b, {modes[i].mode, ebt});
    };
    if (packedEngineEnabled())
        parallelFor(0, n_modes, run_mode);
    else
        for (u64 i = 0; i < n_modes; ++i)
            run_mode(i);

    std::vector<GemmErrorStats> out;
    for (std::size_t i = 0; i < n_modes; ++i) {
        const MatF &got = results[i];
        std::vector<OnlineStats> err_rows(m_rows), abs_rows(m_rows);
        std::vector<RmseTracker> rmse_rows(m_rows);
        for (int r = 0; r < m_rows; ++r) {
            for (int c = 0; c < n_cols; ++c) {
                const double e = double(got(r, c)) - ref(r, c);
                err_rows[r].add(e);
                abs_rows[r].add(std::abs(e));
                rmse_rows[r].add(ref(r, c), got(r, c));
            }
        }
        OnlineStats err, abs_err;
        RmseTracker rmse;
        for (int r = 0; r < m_rows; ++r) {
            err.merge(err_rows[r]);
            abs_err.merge(abs_rows[r]);
            rmse.merge(rmse_rows[r]);
        }
        out.push_back({modes[i].name, abs_err.mean(), err.stddev(),
                       rmse.normalizedRmse()});
    }
    return out;
}

} // namespace usys
