#include "eval/resilience.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/checkpoint.h"
#include "common/fixed_point.h"
#include "common/logging.h"
#include "common/matrix.h"
#include "common/prng.h"
#include "common/profiler.h"
#include "arch/array.h"

namespace usys {

namespace {

Matrix<i32>
randomOperand(Prng &prng, int rows, int cols, int bits)
{
    const i32 max_mag = maxMagnitude(bits);
    Matrix<i32> m(rows, cols, 0);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m(r, c) = i32(prng.below(u64(2 * max_mag + 1))) - max_mag;
    return m;
}

} // namespace

std::string
ResilienceResult::serialize() const
{
    return ShardCheckpoint::packU64(samples) + ' ' +
           ShardCheckpoint::packU64(fault_events) + ' ' +
           ShardCheckpoint::packDouble(sum_sq_err) + ' ' +
           ShardCheckpoint::packDouble(sum_sq_ref) + ' ' +
           ShardCheckpoint::packDouble(sum_abs_err);
}

ResilienceResult
ResilienceResult::deserialize(const std::string &payload)
{
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (pos <= payload.size()) {
        const std::size_t sp = payload.find(' ', pos);
        if (sp == std::string::npos) {
            fields.push_back(payload.substr(pos));
            break;
        }
        fields.push_back(payload.substr(pos, sp - pos));
        pos = sp + 1;
    }
    fatalIf(fields.size() != 5,
            "resilience checkpoint payload: expected 5 fields, got " +
                std::to_string(fields.size()));
    ResilienceResult r;
    r.samples = ShardCheckpoint::unpackU64(fields[0]);
    r.fault_events = ShardCheckpoint::unpackU64(fields[1]);
    r.sum_sq_err = ShardCheckpoint::unpackDouble(fields[2]);
    r.sum_sq_ref = ShardCheckpoint::unpackDouble(fields[3]);
    r.sum_abs_err = ShardCheckpoint::unpackDouble(fields[4]);
    return r;
}

ResilienceResult
runResilienceShard(const ResilienceSpec &spec)
{
    USYS_PROF_SCOPE("resilience.shard");
    ResilienceResult result;
    for (int t = 0; t < spec.trials; ++t) {
        // Operands are a function of (seed, trial) only, so every rate
        // point of a scheme compares faulted outputs against the same
        // clean GEMMs; the plan seed shifts per trial so trials sample
        // independent fault patterns.
        Prng prng(spec.seed * 0x9E3779B9ull + u64(t) * 1000003ull + 7);
        const Matrix<i32> a =
            randomOperand(prng, spec.m, spec.k, spec.kern.bits);
        const Matrix<i32> b =
            randomOperand(prng, spec.k, spec.n, spec.kern.bits);

        ArrayConfig clean_cfg;
        clean_cfg.rows = spec.rows;
        clean_cfg.cols = spec.cols;
        clean_cfg.kernel = spec.kern;

        ArrayConfig fault_cfg = clean_cfg;
        fault_cfg.faults.seed = spec.seed + u64(t);
        fault_cfg.faults.kind = spec.kind;
        fault_cfg.faults.burst_len = spec.burst_len;
        fault_cfg.faults.rates = spec.rates;

        // Local deltas keep the stats registry free of per-shard arch
        // stats (only the fault counters matter to the sweep, and they
        // are re-booked from the shard results) — which is what lets a
        // resumed sweep's registry dump match a straight run's exactly.
        FoldStatsDelta clean_delta, fault_delta;
        const auto clean =
            SystolicGemm(clean_cfg).run(a, b, &clean_delta);
        const auto faulted =
            SystolicGemm(fault_cfg).run(a, b, &fault_delta);
        result.fault_events += fault_delta.faultTotal();

        for (int m = 0; m < spec.m; ++m) {
            for (int n = 0; n < spec.n; ++n) {
                const double ref = double(clean.acc(m, n));
                const double err = double(faulted.acc(m, n)) - ref;
                result.sum_sq_err += err * err;
                result.sum_sq_ref += ref * ref;
                result.sum_abs_err += std::abs(err);
                ++result.samples;
            }
        }
    }
    return result;
}

} // namespace usys
