/**
 * @file
 * Fault-resilience sweep shards: accuracy degradation of each numeric
 * scheme under escalating fault rates.
 *
 * A shard runs one (kernel, fault-rate) point: `trials` random GEMMs
 * through SystolicGemm twice — fault-free and under a deterministic
 * FaultPlan — and accumulates the error of the faulted outputs against
 * the clean ones (both in the scheme's own accumulator units, so the
 * NRMSE is unit-free and comparable across schemes). This is the
 * quantitative form of the paper's resilience argument: a corrupted
 * rate-coded stream bit perturbs a product by at most 1/2^(N-1) of its
 * range, while a binary-parallel MSB flip moves it by half the range —
 * so unary NRMSE degrades gracefully with the fault rate where binary
 * collapses.
 *
 * Shards are the checkpointing granule of bench/fault_sweep: a
 * ResilienceResult serializes to a compact text payload (doubles as
 * exact bit patterns) so a killed-and-resumed sweep reproduces the
 * uninterrupted artifact byte for byte.
 */

#ifndef USYS_EVAL_RESILIENCE_H
#define USYS_EVAL_RESILIENCE_H

#include <cmath>
#include <string>

#include "common/types.h"
#include "arch/scheme.h"
#include "fault/fault.h"

namespace usys {

/** One (kernel, fault-rate) sweep point. */
struct ResilienceSpec
{
    KernelConfig kern;
    int rows = 8, cols = 8;     // array shape
    int m = 16, k = 48, n = 16; // GEMM shape (k spans multiple folds)
    int trials = 3;             // random GEMMs averaged per point
    u64 seed = 0x5EEDu;         // operand + fault-plan seed base
    FaultKind kind = FaultKind::BitFlip;
    u32 burst_len = 4;
    FaultRates rates; // all-zero = the fault-free baseline point
};

/** Accumulated faulted-vs-clean error of one shard. */
struct ResilienceResult
{
    u64 samples = 0;      // output elements compared
    u64 fault_events = 0; // injected fault events (all sites)
    double sum_sq_err = 0.0;
    double sum_sq_ref = 0.0; // clean-output energy (NRMSE denominator)
    double sum_abs_err = 0.0;

    double
    nrmse() const
    {
        if (sum_sq_ref <= 0.0)
            return 0.0;
        return std::sqrt(sum_sq_err / sum_sq_ref);
    }

    double
    meanAbsErr() const
    {
        return samples ? sum_abs_err / double(samples) : 0.0;
    }

    /** Checkpoint payload (exact bit-pattern round trip). */
    std::string serialize() const;
    static ResilienceResult deserialize(const std::string &payload);
};

/**
 * Run one sweep point. Deterministic for a given spec: operands come
 * from a Prng derived from (seed, trial), the fault plan from
 * (seed + trial), and both engines resolve the plan identically — so
 * the result is independent of the packed/scalar engine choice and of
 * the executor thread count.
 */
ResilienceResult runResilienceShard(const ResilienceSpec &spec);

} // namespace usys

#endif // USYS_EVAL_RESILIENCE_H
