/**
 * @file
 * Network-level simulation: run a whole layer list end to end,
 * accounting for inter-layer data movement — the OFM of layer i is the
 * IFM of layer i+1. With SRAM present and the OFM resident, the next
 * layer's cold IFM fetch is free; without SRAM every activation round
 * trips DRAM (the cost uSystolic pays for eliminating the buffer).
 */

#ifndef USYS_EVAL_NETWORK_H
#define USYS_EVAL_NETWORK_H

#include <vector>

#include "hw/energy.h"
#include "sched/simulator.h"

namespace usys {

/** Per-layer record within a network run. */
struct NetworkLayerResult
{
    std::string name;
    LayerStats stats;
    EnergyReport energy;
    bool ifm_from_sram = false; // cold fetch avoided (producer resident)
};

/** Whole-network roll-up. */
struct NetworkStats
{
    std::vector<NetworkLayerResult> layers;
    double runtime_s = 0.0;
    double onchip_uj = 0.0;
    double dram_uj = 0.0;
    u64 dram_bytes = 0;
    u64 interlayer_saved_bytes = 0; // activations kept on-chip

    double total_uj() const { return onchip_uj + dram_uj; }
};

/**
 * Simulate `layers` back to back on one system. Layers are assumed to be
 * a producer-consumer chain (each layer's input is the previous layer's
 * output, modulo non-GEMM ops like pooling that only shrink it).
 */
NetworkStats simulateNetwork(const SystemConfig &sys,
                             const std::vector<GemmLayer> &layers);

} // namespace usys

#endif // USYS_EVAL_NETWORK_H
