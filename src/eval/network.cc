#include "eval/network.h"

namespace usys {

NetworkStats
simulateNetwork(const SystemConfig &sys,
                const std::vector<GemmLayer> &layers)
{
    NetworkStats net;
    u64 resident_ofm_bytes = 0; // previous layer's output still buffered

    for (const auto &layer : layers) {
        NetworkLayerResult result;
        result.name = layer.name;
        result.stats = simulateLayer(sys, layer);

        // Producer-consumer chaining: if the previous layer's OFM is
        // still resident in the (double-buffered) IFM SRAM, this
        // layer's cold DRAM fetch of its unique IFM disappears.
        const u64 unique_ifm =
            u64(layer.ifmElems()) * u64(sys.elemBytes());
        if (sys.sram.present && resident_ofm_bytes > 0 &&
            unique_ifm <= sys.sram.bytes) {
            const u64 saved =
                std::min(result.stats.dram_bytes[VarIfm], unique_ifm);
            result.stats.dram_bytes[VarIfm] -= saved;
            result.stats.dram_total_bytes -= saved;
            result.ifm_from_sram = true;
            net.interlayer_saved_bytes += saved;
            // Recompute the achieved DRAM bandwidth for the report.
            result.stats.dram_bw_gbps =
                double(result.stats.dram_total_bytes) /
                result.stats.runtime_s * 1e-9;
        }

        const u64 ofm_bytes =
            u64(layer.ofmElems()) * u64(sys.outBytes());
        resident_ofm_bytes =
            (sys.sram.present && ofm_bytes <= sys.sram.bytes) ? ofm_bytes
                                                              : 0;

        result.energy = layerEnergy(sys, result.stats);
        net.runtime_s += result.stats.runtime_s;
        net.onchip_uj += result.energy.onchip_uj();
        net.dram_uj += result.energy.dram_uj;
        net.dram_bytes += result.stats.dram_total_bytes;
        net.layers.push_back(std::move(result));
    }
    return net;
}

} // namespace usys
