/**
 * @file
 * Unary bitstream generators (Figure 3 of the paper).
 *
 * A bitstream generator (BSG) compares a stationary source value against a
 * per-cycle number sequence: a random sequence (rate coding) or a counter
 * (temporal coding). Over a full period of 2^bits cycles both encode the
 * value exactly as the count of 1-bits.
 */

#ifndef USYS_UNARY_BITSTREAM_H
#define USYS_UNARY_BITSTREAM_H

#include <bit>
#include <vector>

#include "common/logging.h"
#include "common/simd.h"
#include "common/types.h"
#include "fault/fault.h"
#include "unary/sobol.h"

namespace usys {

/** Abstract one-bit-per-cycle stream source. */
class BitstreamGen
{
  public:
    virtual ~BitstreamGen() = default;

    /** Produce the next bit of the stream. */
    virtual bool nextBit() = 0;

    /**
     * Produce the next 64 bits of the stream packed little-endian (bit i
     * of the word is the (i+1)-th nextBit()). The base implementation is
     * the scalar reference path; concrete generators override it with a
     * batched advance that is state-identical, so word and bit stepping
     * can be mixed freely.
     */
    virtual u64
    nextWord()
    {
        u64 word = 0;
        for (int i = 0; i < 64; ++i)
            word |= u64(nextBit()) << i;
        return word;
    }

    /**
     * Produce the next nwords packed words at once. State-identical to
     * nwords nextWord() calls; generators whose word step is already
     * closed-form keep this default, the RNG-compared ones override it
     * with one batched threshold-pack over the whole block so the SIMD
     * kernels see long runs (see common/simd.h).
     */
    virtual void
    nextWords(u64 *out, u32 nwords)
    {
        for (u32 i = 0; i < nwords; ++i)
            out[i] = nextWord();
    }

    /** Restart the stream from cycle 0. */
    virtual void reset() = 0;
};

/**
 * Rate-coded unipolar BSG: bit_t = (rng_t < src).
 *
 * With a full-period Sobol RNG of the same width, exactly src of the
 * 2^bits bits are 1, in pseudo-random order.
 */
class RateBsg : public BitstreamGen
{
  public:
    /**
     * @param src source magnitude in [0, 2^bits]
     * @param rng_dimension Sobol dimension for the comparison sequence
     * @param bits magnitude bitwidth
     */
    RateBsg(u32 src, int rng_dimension, int bits)
        : src_(src), rng_(rng_dimension, bits)
    {
        fatalIf(src > (u32(1) << bits),
                "RateBsg: src " + std::to_string(src) +
                    " exceeds 2^bits = " + std::to_string(u32(1) << bits));
    }

    bool nextBit() override { return rng_.next() < src_; }
    u64 nextWord() override { return rng_.nextWord(src_); }
    void
    nextWords(u64 *out, u32 nwords) override
    {
        rng_.nextWords(src_, out, nwords);
    }
    void reset() override { rng_.reset(); }

  private:
    u32 src_;
    SobolSequence rng_;
};

/**
 * Temporal-coded unipolar BSG: deterministic bit order with the 1s packed
 * at the tail of the period (Figure 3b: 0000000011111111 for 0.5), i.e.
 * bit_t = (t >= period - src).
 *
 * The tail placement is why early termination destroys temporal accuracy:
 * truncating the stream drops 1s of small values first (Section II-B3).
 */
class TemporalBsg : public BitstreamGen
{
  public:
    TemporalBsg(u32 src, int bits)
        : src_(src), period_(u64(1) << bits)
    {}

    bool
    nextBit() override
    {
        const bool bit = t_ >= period_ - src_;
        ++t_;
        return bit;
    }

    /** Closed-form word: 1s start at cycle period - src and never stop. */
    u64
    nextWord() override
    {
        const u64 first_one = period_ - src_;
        const u64 start = t_;
        t_ += 64;
        if (start >= first_one)
            return ~u64(0);
        if (t_ <= first_one)
            return 0;
        return ~u64(0) << (first_one - start);
    }

    void reset() override { t_ = 0; }

  private:
    u32 src_;
    u64 period_;
    u64 t_ = 0;
};

/**
 * Rate-coded bipolar BSG for signed data (uGEMM-H): the signed value x in
 * [-2^(bits-1), 2^(bits-1)) is offset to [0, 2^bits) and rate-coded; the
 * stream's bipolar value is 2*P(1) - 1 = x / 2^(bits-1).
 */
class BipolarRateBsg : public BitstreamGen
{
  public:
    BipolarRateBsg(i32 src, int rng_dimension, int bits)
        : offset_(u32(src + (i32(1) << (bits - 1)))),
          rng_(rng_dimension, bits)
    {}

    bool nextBit() override { return rng_.next() < offset_; }
    u64 nextWord() override { return rng_.nextWord(offset_); }
    void
    nextWords(u64 *out, u32 nwords) override
    {
        rng_.nextWords(offset_, out, nwords);
    }
    void reset() override { rng_.reset(); }

  private:
    u32 offset_;
    SobolSequence rng_;
};

/**
 * 1s among the first `window` bits of a fresh stream, advanced one
 * packed word at a time (the SWAR form of counting nextBit() results).
 * A final partial word (early-termination boundary, or window < 64) is
 * masked so bits past the window never count. An optional fault event
 * corrupts the covered stream positions *before* counting — the packed
 * engines and the scalar reference both consume the corrupted stream,
 * which is what keeps them bit-exact under injection.
 */
inline u64
onesInWindow(BitstreamGen &gen, u32 window, const Fault *fault = nullptr)
{
    if (window == 0)
        return 0;
    // Batch the whole window: one nextWords() advance, the (rare)
    // fault pass, the boundary mask, then one bulk popcount through
    // the dispatched SIMD kernel. The scratch is per-thread so packed
    // folds running on the executor never share it.
    thread_local std::vector<u64> buf;
    const u32 nwords = (window + 63) / 64;
    buf.resize(nwords);
    gen.nextWords(buf.data(), nwords);
    if (fault)
        for (u32 w = 0; w < nwords; ++w)
            buf[w] = fault->applyToWord(buf[w], u64(w) * 64);
    if (window & 63)
        buf[nwords - 1] &= lowMask(window & 63);
    return simdKernels().popcountWords(buf.data(), nwords);
}

/** Materialize n bits of a stream as 0/1 bytes. */
inline std::vector<u8>
generateBits(BitstreamGen &gen, u64 n)
{
    std::vector<u8> bits;
    bits.reserve(n);
    for (u64 i = 0; i < n; ++i)
        bits.push_back(gen.nextBit() ? 1 : 0);
    return bits;
}

/** Count of 1-bits in a materialized stream. */
inline u64
onesCount(const std::vector<u8> &bits)
{
    u64 ones = 0;
    for (u8 b : bits)
        ones += b;
    return ones;
}

} // namespace usys

#endif // USYS_UNARY_BITSTREAM_H
