#include "unary/lfsr.h"

#include <vector>

#include "common/logging.h"
#include "common/simd.h"

namespace usys {

namespace {

/** Maximal-length tap masks, indexed by width (bit i set => tap at stage i+1). */
const u32 kTaps[17] = {
    0, 0, 0,
    0x6,      // 3: x^3 + x^2 + 1
    0xC,      // 4: x^4 + x^3 + 1
    0x14,     // 5: x^5 + x^3 + 1
    0x30,     // 6: x^6 + x^5 + 1
    0x60,     // 7: x^7 + x^6 + 1
    0xB8,     // 8: x^8 + x^6 + x^5 + x^4 + 1
    0x110,    // 9: x^9 + x^5 + 1
    0x240,    // 10: x^10 + x^7 + 1
    0x500,    // 11: x^11 + x^9 + 1
    0xE08,    // 12: x^12 + x^11 + x^10 + x^4 + 1
    0x1C80,   // 13: x^13 + x^12 + x^11 + x^8 + 1
    0x3802,   // 14: x^14 + x^13 + x^12 + x^2 + 1
    0x6000,   // 15: x^15 + x^14 + 1
    0xD008,   // 16: x^16 + x^15 + x^13 + x^4 + 1
};

} // namespace

Lfsr::Lfsr(int bits, u32 seed)
    : bits_(bits)
{
    fatalIf(bits < 3 || bits > 16, "Lfsr: width must be in [3, 16]");
    seed_ = seed & ((u32(1) << bits) - 1);
    if (seed_ == 0)
        seed_ = 1;
    state_ = seed_;
    tap_mask_ = kTaps[bits];
}

u32
Lfsr::next()
{
    const u32 out = state_;
    const u32 feedback = u32(__builtin_parity(state_ & tap_mask_));
    state_ = ((state_ << 1) | feedback) & ((u32(1) << bits_) - 1);
    return out;
}

u64
Lfsr::nextWord(u32 threshold)
{
    const u32 mask = (u32(1) << bits_) - 1;
    u32 state = state_;
    u64 word = 0;
    // Same shift-and-feedback recurrence as next(), kept in a local so
    // the compiler can hold the register state across all 64 steps.
    for (int i = 0; i < 64; ++i) {
        word |= u64(state < threshold) << i;
        const u32 feedback = u32(__builtin_parity(state & tap_mask_));
        state = ((state << 1) | feedback) & mask;
    }
    state_ = state;
    return word;
}

void
Lfsr::nextWords(u32 threshold, u64 *out, u32 nwords)
{
    // Same register recurrence as next()/nextWord(), swept once over a
    // scratch value buffer; the comparisons pack in one SIMD call.
    thread_local std::vector<u32> vals;
    const std::size_t count = std::size_t(nwords) * 64;
    vals.resize(count);
    const u32 mask = (u32(1) << bits_) - 1;
    u32 state = state_;
    for (std::size_t k = 0; k < count; ++k) {
        vals[k] = state;
        const u32 feedback = u32(__builtin_parity(state & tap_mask_));
        state = ((state << 1) | feedback) & mask;
    }
    state_ = state;
    simdKernels().thresholdPackWords(vals.data(), u32(count), threshold,
                                     out);
}

void
Lfsr::reset()
{
    state_ = seed_;
}

} // namespace usys
