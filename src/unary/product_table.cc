#include "unary/product_table.h"

#include "common/logging.h"
#include "unary/sobol.h"

namespace usys {

namespace {

/**
 * Build the 2-D prefix-count table for a sequence S of length L:
 * table[m * (L+1) + w] = #{ j < m : S[j] < w } for m, w in [0, L].
 */
std::vector<u16>
buildPrefixTable(const std::vector<u32> &seq)
{
    const std::size_t len = seq.size();
    const std::size_t stride = len + 1;
    std::vector<u16> table(stride * stride, 0);
    for (std::size_t m = 1; m <= len; ++m) {
        const u32 sample = seq[m - 1];
        const u16 *prev = &table[(m - 1) * stride];
        u16 *cur = &table[m * stride];
        for (std::size_t w = 0; w <= len; ++w)
            cur[w] = u16(prev[w] + (sample < w ? 1 : 0));
    }
    return table;
}

} // namespace

UnaryProductModel::UnaryProductModel(int signed_bits, int weight_rng_dim,
                                     int input_rng_dim)
    : mag_bits_(signed_bits - 1)
{
    fatalIf(signed_bits < 2 || signed_bits > 13,
            "UnaryProductModel: signed bitwidth must be in [2, 13]");
    period_ = u32(1) << mag_bits_;
    stride_ = std::size_t(period_) + 1;
    weight_prefix_ = buildPrefixTable(sobolPermutation(weight_rng_dim,
                                                       mag_bits_));
    input_prefix_ = buildPrefixTable(sobolPermutation(input_rng_dim,
                                                      mag_bits_));
}

BipolarProductModel::BipolarProductModel(int signed_bits, int rng_dim_one,
                                         int rng_dim_zero)
{
    fatalIf(signed_bits < 2 || signed_bits > 12,
            "BipolarProductModel: signed bitwidth must be in [2, 12]");
    period_ = u32(1) << signed_bits;
    stride_ = std::size_t(period_) + 1;
    prefix_one_ = buildPrefixTable(sobolPermutation(rng_dim_one,
                                                    signed_bits));
    prefix_zero_ = buildPrefixTable(sobolPermutation(rng_dim_zero,
                                                     signed_bits));
}

u32
BipolarProductModel::onesCount(i32 x, i32 w) const
{
    const u32 half = period_ / 2;
    const u32 x_off = u32(x + i32(half));
    const u32 w_off = u32(w + i32(half));
    // Input delivers x_off 1-bits and (period - x_off) 0-bits per period.
    const u32 ones_on_one = prefix_one_[std::size_t(x_off) * stride_ + w_off];
    const u32 zeros = period_ - x_off;
    const u32 w_hits_on_zero =
        prefix_zero_[std::size_t(zeros) * stride_ + w_off];
    // XNOR: output 1 when (x=1, w=1) or (x=0, w=0).
    return ones_on_one + (zeros - w_hits_on_zero);
}

} // namespace usys
