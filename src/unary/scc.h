/**
 * @file
 * Stochastic cross-correlation (SCC) metric of Alaghi & Hayes (ICCD'13).
 *
 * SCC measures the similarity of two bitstreams; zero SCC is necessary and
 * sufficient for accurate unary multiplication (Section II-B2). C-BSG is
 * designed to force SCC toward zero, which the tests verify.
 */

#ifndef USYS_UNARY_SCC_H
#define USYS_UNARY_SCC_H

#include <algorithm>
#include <vector>

#include "common/types.h"

namespace usys {

/**
 * Compute SCC of two equal-length bitstreams.
 *
 * SCC = (p11 - p1*p2) / (min(p1,p2) - p1*p2)        if p11 > p1*p2
 *     = (p11 - p1*p2) / (p1*p2 - max(p1+p2-1, 0))   otherwise
 *
 * Returns 0 when the normalizer degenerates (streams of constant value).
 */
inline double
stochasticCrossCorrelation(const std::vector<u8> &x, const std::vector<u8> &y)
{
    const std::size_t n = std::min(x.size(), y.size());
    if (n == 0)
        return 0.0;

    u64 c1 = 0, c2 = 0, c11 = 0;
    for (std::size_t i = 0; i < n; ++i) {
        c1 += x[i];
        c2 += y[i];
        c11 += u64(x[i] & y[i]);
    }
    const double p1 = double(c1) / double(n);
    const double p2 = double(c2) / double(n);
    const double p11 = double(c11) / double(n);
    const double prod = p1 * p2;
    const double delta = p11 - prod;

    double norm;
    if (delta > 0)
        norm = std::min(p1, p2) - prod;
    else
        norm = prod - std::max(p1 + p2 - 1.0, 0.0);

    if (norm <= 1e-12)
        return 0.0;
    return delta / norm;
}

} // namespace usys

#endif // USYS_UNARY_SCC_H
