#include "unary/uadd.h"

namespace usys {

double
unaryDomainSum(const std::vector<std::vector<u8>> &streams,
               int select_rng_dim)
{
    fatalIf(streams.empty(), "unaryDomainSum: no streams");
    const std::size_t period = streams[0].size();
    const int fan_in = int(streams.size());
    ScaledUnaryAdder adder(fan_in, select_rng_dim);

    u64 out_ones = 0;
    std::vector<u8> bits(streams.size());
    for (std::size_t t = 0; t < period; ++t) {
        for (std::size_t s = 0; s < streams.size(); ++s)
            bits[s] = streams[s][t];
        out_ones += adder.step(bits);
    }
    return double(out_ones) * fan_in;
}

u64
binaryDomainSum(const std::vector<std::vector<u8>> &streams)
{
    u64 sum = 0;
    for (const auto &stream : streams)
        for (u8 bit : stream)
            sum += bit;
    return sum;
}

u64
nonScaledUnarySum(const std::vector<std::vector<u8>> &streams)
{
    fatalIf(streams.empty(), "nonScaledUnarySum: no streams");
    const std::size_t period = streams[0].size();
    const int fan_in = int(streams.size());
    NonScaledUnaryAdder adder(fan_in);

    u64 out_ones = 0;
    std::vector<u8> bits(streams.size());
    for (std::size_t t = 0; t < period; ++t) {
        for (std::size_t s = 0; s < streams.size(); ++s)
            bits[s] = streams[s][t];
        out_ones += adder.step(bits);
    }
    return out_ones * u64(fan_in) + adder.residue();
}

} // namespace usys
