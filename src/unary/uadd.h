/**
 * @file
 * Unary-domain accumulation units.
 *
 * uGEMM-class FSU architectures aggregate product bitstreams *in the
 * unary domain* with scaled adders (a mux tree picks one input stream
 * per cycle, so the output represents the average of the inputs). This
 * is exactly what uSystolic replaces with binary accumulation: the mux
 * subsampling adds variance that grows with fan-in, and for
 * temporal-coded signed data it collapses entirely (Sections II-B4 and
 * III-A). These models exist so the claim is measurable — see
 * tests/test_uadd.cc and the accuracy benches.
 */

#ifndef USYS_UNARY_UADD_H
#define USYS_UNARY_UADD_H

#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "unary/sobol.h"

namespace usys {

/**
 * Mux-based scaled adder: each cycle outputs one uniformly-selected
 * input bit, so E[out] = mean(inputs). Hardware: a fan-in-wide mux and
 * a (shared) selection RNG.
 */
class ScaledUnaryAdder
{
  public:
    /**
     * @param fan_in number of input streams
     * @param select_rng_dim Sobol dimension driving the selector
     */
    ScaledUnaryAdder(int fan_in, int select_rng_dim = 3)
        : fan_in_(fan_in),
          select_(select_rng_dim, selectBits(fan_in))
    {
        fatalIf(fan_in < 1, "ScaledUnaryAdder: empty fan-in");
    }

    /**
     * One cycle: pick an input bit.
     *
     * @param bits one bit per input stream (size >= fan_in)
     * @return the selected output bit
     */
    bool
    step(const std::vector<u8> &bits)
    {
        // Modulo fold keeps non-power-of-two fan-ins uniform enough for
        // the accuracy study.
        const u32 pick = select_.next() % u32(fan_in_);
        return bits[pick] != 0;
    }

    void reset() { select_.reset(); }

    int fanIn() const { return fan_in_; }

  private:
    static int
    selectBits(int fan_in)
    {
        int bits = 1;
        while ((1 << bits) < fan_in)
            ++bits;
        return bits;
    }

    int fan_in_;
    SobolSequence select_;
};

/**
 * Accumulate K product streams of length `period` in the unary domain
 * (mux tree) and return the *scaled* sum estimate: ones(out) * K gives
 * the estimated total 1-count of all inputs.
 *
 * @param streams K equal-length 0/1 streams
 * @return estimated sum of all input 1-counts
 */
double unaryDomainSum(const std::vector<std::vector<u8>> &streams,
                      int select_rng_dim = 3);

/** Exact binary-domain accumulation of the same streams (uSystolic). */
u64 binaryDomainSum(const std::vector<std::vector<u8>> &streams);

/**
 * Non-scaled unary adder (uGEMM's uADD, the "High" end of Table I's FSU
 * accuracy range): a parallel counter sums the K input bits each cycle
 * into a binary residue, and a comparator emits floor-accumulated
 * output bits so the *output stream* carries sum/K with bounded (not
 * fan-in-growing) error. Costs a log2(K)-bit adder per cycle — unary in
 * interface, binary in substance, which is why uSystolic goes all the
 * way to binary accumulation.
 */
class NonScaledUnaryAdder
{
  public:
    explicit NonScaledUnaryAdder(int fan_in) : fan_in_(fan_in)
    {
        fatalIf(fan_in < 1, "NonScaledUnaryAdder: empty fan-in");
    }

    /**
     * One cycle: absorb all input bits, emit one output bit whenever
     * the residue crosses the fan-in (so ones(out) ~ sum(ones)/K with
     * error < 1 output bit at any point in the stream).
     */
    bool
    step(const std::vector<u8> &bits)
    {
        for (int i = 0; i < fan_in_; ++i)
            residue_ += bits[std::size_t(i)];
        if (residue_ >= u64(fan_in_)) {
            residue_ -= u64(fan_in_);
            return true;
        }
        return false;
    }

    void reset() { residue_ = 0; }

    u64 residue() const { return residue_; }
    int fanIn() const { return fan_in_; }

  private:
    int fan_in_;
    u64 residue_ = 0;
};

/**
 * Accumulate K streams with the non-scaled adder; returns the estimated
 * total 1-count (ones(out) * K + final residue).
 */
u64 nonScaledUnarySum(const std::vector<std::vector<u8>> &streams);

} // namespace usys

#endif // USYS_UNARY_UADD_H
