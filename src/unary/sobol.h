/**
 * @file
 * Sobol low-discrepancy sequence generator.
 *
 * uSystolic uses Sobol RNGs as the hardware random number source for rate
 * coding (Section III-B, following uGEMM). A k-bit Sobol sequence visits
 * every value in [0, 2^k) exactly once per 2^k-cycle period, which is what
 * makes full-period unary multiplication exact in expectation and gives
 * early termination its low variance.
 *
 * Hardware-wise a Sobol generator is a k-bit register XOR'd with one of k
 * direction numbers selected by the least-significant-zero position of a
 * cycle counter; the cost model in src/hw reflects that structure.
 */

#ifndef USYS_UNARY_SOBOL_H
#define USYS_UNARY_SOBOL_H

#include <vector>

#include "common/types.h"

namespace usys {

/** Number of distinct Sobol dimensions embedded in this build. */
int sobolMaxDimensions();

/**
 * One dimension of the Sobol sequence quantized to a fixed bitwidth.
 *
 * next() mimics the hardware recurrence (value ^= direction[lsz(counter)]),
 * while at() provides O(1) random access through the Gray-code construction
 * for functional models.
 */
class SobolSequence
{
  public:
    /**
     * @param dimension Sobol dimension index, 0-based; 0 is van der Corput
     * @param bits output resolution in bits (1..30)
     */
    SobolSequence(int dimension, int bits);

    /** Next value in [0, 2^bits); advances the generator. */
    u32 next();

    /**
     * Batched advance: pack the next 64 threshold comparisons into one
     * word — bit i is (v_i < threshold) for the i-th of the next 64
     * sequence values. State-identical to 64 next() calls (including
     * period wrap), so callers can mix word and scalar stepping.
     */
    u64 nextWord(u32 threshold);

    /**
     * Batched form of nextWord(): pack the next nwords * 64 threshold
     * comparisons into out[0..nwords). The recurrence advances in one
     * scalar sweep over a scratch buffer and the comparisons go
     * through the dispatched SIMD threshold-pack kernel, so word,
     * multi-word, and scalar stepping can still be mixed freely.
     */
    void nextWords(u32 threshold, u64 *out, u32 nwords);

    /** Restart the sequence from index 0. */
    void reset();

    /** Value at an arbitrary index without disturbing the stream state. */
    u32 at(u64 index) const;

    int bits() const { return bits_; }
    int dimension() const { return dimension_; }

    /** Number of values before the sequence repeats (2^bits). */
    u64 period() const { return u64(1) << bits_; }

  private:
    int dimension_;
    int bits_;
    std::vector<u32> direction_; // direction numbers, one per bit position
    u32 value_ = 0;
    u64 index_ = 0;
};

/**
 * Materialize one full period of a Sobol dimension.
 *
 * @return vector of length 2^bits holding a permutation of [0, 2^bits)
 */
std::vector<u32> sobolPermutation(int dimension, int bits);

} // namespace usys

#endif // USYS_UNARY_SOBOL_H
