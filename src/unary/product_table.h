/**
 * @file
 * Exact O(1) functional models of unary multiplication.
 *
 * For a row-shared Sobol sequence S, the C-BSG unipolar product count after
 * the input stream has delivered m 1-bits is
 *
 *     count(m, w) = #{ j < m : S[j] < w }
 *
 * independent of *where* those 1-bits fall in the stream (the weight RNG
 * advances exactly once per input 1-bit). Over a full 2^k-cycle period a
 * k-bit rate- or temporal-coded input delivers exactly |i| ones, so rate
 * and temporal coding yield identical products (Section V-A). Early
 * termination after L < 2^k cycles changes only the delivered ones-count,
 * which is itself a prefix count over the input-side sequence.
 *
 * These prefix counts are precomputed once per bitwidth, giving bit-exact
 * MACs in O(1) — the key to running full DNN inference through the unary
 * datapath on one core. The bit-level simulators in src/arch are tested to
 * agree with these tables cycle-for-cycle.
 */

#ifndef USYS_UNARY_PRODUCT_TABLE_H
#define USYS_UNARY_PRODUCT_TABLE_H

#include <vector>

#include "common/types.h"

namespace usys {

/** Exact functional model of the unipolar C-BSG uMUL (uSystolic PE). */
class UnaryProductModel
{
  public:
    /**
     * @param signed_bits total signed bitwidth N (magnitude N-1 bits,
     *        stream length 2^(N-1))
     * @param weight_rng_dim Sobol dimension of the shared weight RNG
     * @param input_rng_dim Sobol dimension of the input (rate) BSG
     */
    explicit UnaryProductModel(int signed_bits, int weight_rng_dim = 0,
                               int input_rng_dim = 1);

    /** Stream length 2^(N-1). */
    u32 period() const { return period_; }

    /** Magnitude bitwidth N-1. */
    int magBits() const { return mag_bits_; }

    /** Product 1-count after the input has delivered `ones` 1-bits. */
    u32
    countAfterOnes(u32 ones, u32 wabs) const
    {
        return weight_prefix_[std::size_t(ones) * stride_ + wabs];
    }

    /** Full-period product count (rate or temporal input coding). */
    u32
    fullProduct(u32 iabs, u32 wabs) const
    {
        return countAfterOnes(iabs, wabs);
    }

    /** Input 1-bits delivered within the first `cycles` of a rate stream. */
    u32
    rateOnes(u32 iabs, u32 cycles) const
    {
        return input_prefix_[std::size_t(cycles) * stride_ + iabs];
    }

    /** Rate-coded product count, early terminated after `cycles`. */
    u32
    rateProduct(u32 iabs, u32 wabs, u32 cycles) const
    {
        return countAfterOnes(rateOnes(iabs, cycles), wabs);
    }

    /**
     * Temporal-coded product count, early terminated after `cycles`.
     * Temporal 1s sit at the stream tail, so truncation drops the 1s of
     * small values first (the accuracy catastrophe of Section II-B3).
     */
    u32
    temporalProduct(u32 iabs, u32 wabs, u32 cycles) const
    {
        const u32 ones =
            iabs + cycles > period_ ? iabs + cycles - period_ : 0;
        return countAfterOnes(ones, wabs);
    }

  private:
    int mag_bits_;
    u32 period_;
    std::size_t stride_;
    // prefix_[m * stride + w] = #{ j < m : S[j] < w }
    std::vector<u16> weight_prefix_;
    std::vector<u16> input_prefix_;
};

/** Exact functional model of the bipolar uMUL (uGEMM-H baseline). */
class BipolarProductModel
{
  public:
    /**
     * @param signed_bits total signed bitwidth N (stream length 2^N)
     */
    explicit BipolarProductModel(int signed_bits, int rng_dim_one = 0,
                                 int rng_dim_zero = 1);

    /** Stream length 2^N. */
    u32 period() const { return period_; }

    /** Output 1-count over a full period for signed inputs x, w. */
    u32 onesCount(i32 x, i32 w) const;

    /**
     * Signed product estimate scaled to match the unipolar path, i.e.
     * an approximation of x*w / 2^(N-1).
     */
    i32
    scaledProduct(i32 x, i32 w) const
    {
        return i32(onesCount(x, w)) - i32(period_ / 2);
    }

  private:
    u32 period_;
    std::size_t stride_;
    std::vector<u16> prefix_one_;  // over the polarity-1 sequence
    std::vector<u16> prefix_zero_; // over the polarity-0 sequence
};

} // namespace usys

#endif // USYS_UNARY_PRODUCT_TABLE_H
