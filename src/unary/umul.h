/**
 * @file
 * Cycle-level unary multipliers.
 *
 * CbsgUmul is the unipolar uMUL of Figure 4 (conditional bitstream
 * generation): the input bit enables the stationary weight's RNG, so the
 * weight stream consumes one low-discrepancy sample per input 1-bit and
 * the product appears as the output 1-count.
 *
 * BipolarUmul is the signed multiplier used by the uGEMM-H baseline: both
 * operands are bipolar-coded, the output bit is the XNOR of the operand
 * bits, and C-BSG is applied on both input polarities (two RNGs), which is
 * why it costs twice the area and twice the cycles of the sign-magnitude
 * unipolar path (Section II-B2).
 */

#ifndef USYS_UNARY_UMUL_H
#define USYS_UNARY_UMUL_H

#include "common/types.h"
#include "unary/sobol.h"

namespace usys {

/** Unipolar uMUL with conditional bitstream generation. */
class CbsgUmul
{
  public:
    /**
     * @param wabs stationary weight magnitude in [0, 2^mag_bits)
     * @param mag_bits magnitude bitwidth (stream length 2^mag_bits)
     * @param rng_dimension Sobol dimension of the weight RNG
     */
    CbsgUmul(u32 wabs, int mag_bits, int rng_dimension = 0)
        : wabs_(wabs), rng_(rng_dimension, mag_bits)
    {}

    /**
     * Advance one cycle.
     *
     * @param input_bit this cycle's input stream bit (the RNG enable)
     * @return the product stream bit
     */
    bool
    step(bool input_bit)
    {
        if (!input_bit)
            return false;
        return rng_.next() < wabs_;
    }

    /** Restart the multiplier (weight stays stationary). */
    void reset() { rng_.reset(); }

    u32 weightMagnitude() const { return wabs_; }

  private:
    u32 wabs_;
    SobolSequence rng_;
};

/** Bipolar uMUL (uGEMM-H): XNOR with dual-polarity C-BSG. */
class BipolarUmul
{
  public:
    /**
     * @param w stationary signed weight in [-2^(bits-1), 2^(bits-1))
     * @param bits signed bitwidth (stream length 2^bits)
     * @param rng_dim_one Sobol dimension consumed on input bit 1
     * @param rng_dim_zero Sobol dimension consumed on input bit 0
     */
    BipolarUmul(i32 w, int bits, int rng_dim_one = 0, int rng_dim_zero = 1)
        : w_offset_(u32(w + (i32(1) << (bits - 1)))),
          rng_one_(rng_dim_one, bits),
          rng_zero_(rng_dim_zero, bits)
    {}

    /**
     * Advance one cycle.
     *
     * @param input_bit this cycle's bipolar input stream bit
     * @return the bipolar product stream bit (XNOR of input and weight bits)
     */
    bool
    step(bool input_bit)
    {
        if (input_bit)
            return rng_one_.next() < w_offset_;
        return !(rng_zero_.next() < w_offset_);
    }

    void
    reset()
    {
        rng_one_.reset();
        rng_zero_.reset();
    }

  private:
    u32 w_offset_;
    SobolSequence rng_one_;
    SobolSequence rng_zero_;
};

} // namespace usys

#endif // USYS_UNARY_UMUL_H
