/**
 * @file
 * Maximal-length Fibonacci LFSR random number generator.
 *
 * Alternative hardware RNG to Sobol, used for the RNG-quality ablation
 * (Sobol's full-period balance is what gives uSystolic its accuracy; an
 * LFSR of the same width has higher product variance).
 */

#ifndef USYS_UNARY_LFSR_H
#define USYS_UNARY_LFSR_H

#include "common/types.h"

namespace usys {

/**
 * Fibonacci LFSR of 3..16 bits with maximal-length taps.
 *
 * The all-zero state is unreachable; output values cover [1, 2^bits)
 * exactly once per period of 2^bits - 1 cycles.
 */
class Lfsr
{
  public:
    /**
     * @param bits register width (3..16)
     * @param seed initial state; 0 is coerced to 1
     */
    explicit Lfsr(int bits, u32 seed = 1);

    /** Current value; advances the register. */
    u32 next();

    /**
     * Batched advance: pack the next 64 threshold comparisons into one
     * word — bit i is (v_i < threshold) for the i-th of the next 64
     * register values. State-identical to 64 next() calls.
     */
    u64 nextWord(u32 threshold);

    /**
     * Batched form of nextWord(): pack the next nwords * 64 threshold
     * comparisons into out[0..nwords) through the dispatched SIMD
     * threshold-pack kernel. State-identical to nwords nextWord()
     * calls.
     */
    void nextWords(u32 threshold, u64 *out, u32 nwords);

    /** Restart from the construction seed. */
    void reset();

    int bits() const { return bits_; }
    u64 period() const { return (u64(1) << bits_) - 1; }

  private:
    int bits_;
    u32 seed_;
    u32 state_;
    u32 tap_mask_;
};

} // namespace usys

#endif // USYS_UNARY_LFSR_H
