#include "unary/sobol.h"

#include "common/logging.h"
#include "common/simd.h"

namespace usys {

namespace {

/**
 * Primitive polynomial + initial direction data per Sobol dimension
 * (Bratley-Fox / Joe-Kuo tables). Dimension 0 (van der Corput) is handled
 * separately.
 */
struct SobolDim
{
    int s;                 // polynomial degree
    u32 a;                 // interior coefficient bits a_1..a_{s-1}
    u32 m[6];              // initial odd direction integers m_1..m_s
};

const SobolDim kDims[] = {
    {1, 0, {1, 0, 0, 0, 0, 0}},
    {2, 1, {1, 3, 0, 0, 0, 0}},
    {3, 1, {1, 3, 1, 0, 0, 0}},
    {3, 2, {1, 1, 1, 0, 0, 0}},
    {4, 1, {1, 1, 3, 3, 0, 0}},
    {4, 4, {1, 3, 5, 13, 0, 0}},
    {5, 2, {1, 1, 5, 5, 17, 0}},
    {5, 4, {1, 1, 5, 5, 5, 0}},
    {5, 7, {1, 1, 7, 11, 19, 0}},
    {5, 11, {1, 1, 5, 1, 1, 0}},
    {5, 13, {1, 1, 1, 3, 11, 0}},
    {5, 14, {1, 3, 5, 5, 31, 0}},
    {6, 1, {1, 3, 3, 9, 7, 49}},
    {6, 13, {1, 1, 1, 15, 21, 21}},
    {6, 16, {1, 3, 1, 13, 27, 49}},
};

constexpr int kNumTabulated = int(sizeof(kDims) / sizeof(kDims[0]));

/** Index of the lowest zero bit of x. */
int
lowestZeroBit(u64 x)
{
    int pos = 0;
    while (x & 1) {
        x >>= 1;
        ++pos;
    }
    return pos;
}

} // namespace

int
sobolMaxDimensions()
{
    return kNumTabulated + 1;
}

SobolSequence::SobolSequence(int dimension, int bits)
    : dimension_(dimension), bits_(bits)
{
    fatalIf(bits < 1 || bits > 30, "SobolSequence: bits out of range");
    fatalIf(dimension < 0 || dimension > kNumTabulated,
            "SobolSequence: unsupported dimension");

    direction_.assign(bits_, 0);
    if (dimension_ == 0) {
        // van der Corput: m_k = 1 for all k.
        for (int k = 0; k < bits_; ++k)
            direction_[k] = u32(1) << (bits_ - 1 - k);
        return;
    }

    const SobolDim &dim = kDims[dimension_ - 1];
    std::vector<u32> m(bits_ + 1, 0);
    for (int k = 1; k <= dim.s && k <= bits_; ++k)
        m[k] = dim.m[k - 1];
    for (int k = dim.s + 1; k <= bits_; ++k) {
        u32 mk = m[k - dim.s] ^ (m[k - dim.s] << dim.s);
        for (int i = 1; i <= dim.s - 1; ++i) {
            if ((dim.a >> (dim.s - 1 - i)) & 1)
                mk ^= m[k - i] << i;
        }
        m[k] = mk;
    }
    for (int k = 1; k <= bits_; ++k) {
        panicIf((m[k] & 1) == 0, "Sobol direction integers must be odd");
        direction_[k - 1] = m[k] << (bits_ - k);
    }
}

u32
SobolSequence::next()
{
    const u32 out = value_;
    ++index_;
    if (index_ == period()) {
        // The hardware register wraps after one full period.
        index_ = 0;
        value_ = 0;
    } else {
        value_ ^= direction_[lowestZeroBit(index_ - 1)];
    }
    return out;
}

u64
SobolSequence::nextWord(u32 threshold)
{
    // The recurrence is inherently sequential (each value XORs a
    // direction number selected by the previous index), so the batched
    // form keeps the scalar advance but packs the threshold comparisons
    // — one word op per 64 stream bits for the consumer.
    u64 word = 0;
    for (int i = 0; i < 64; ++i)
        word |= u64(next() < threshold) << i;
    return word;
}

void
SobolSequence::nextWords(u32 threshold, u64 *out, u32 nwords)
{
    // Materialize the next nwords * 64 sequence values with the same
    // recurrence next() runs (including the period wrap), keeping the
    // register state in locals across the whole block, then pack all
    // the threshold comparisons in one SIMD call.
    thread_local std::vector<u32> vals;
    const std::size_t count = std::size_t(nwords) * 64;
    vals.resize(count);
    u32 value = value_;
    u64 index = index_;
    const u64 p = period();
    for (std::size_t k = 0; k < count; ++k) {
        vals[k] = value;
        ++index;
        if (index == p) {
            index = 0;
            value = 0;
        } else {
            value ^= direction_[lowestZeroBit(index - 1)];
        }
    }
    value_ = value;
    index_ = index;
    simdKernels().thresholdPackWords(vals.data(), u32(count), threshold,
                                     out);
}

void
SobolSequence::reset()
{
    value_ = 0;
    index_ = 0;
}

u32
SobolSequence::at(u64 index) const
{
    index &= period() - 1;
    const u64 gray = index ^ (index >> 1);
    u32 out = 0;
    for (int k = 0; k < bits_; ++k) {
        if ((gray >> k) & 1)
            out ^= direction_[k];
    }
    return out;
}

std::vector<u32>
sobolPermutation(int dimension, int bits)
{
    SobolSequence seq(dimension, bits);
    std::vector<u32> out;
    out.reserve(std::size_t(1) << bits);
    for (u64 i = 0; i < (u64(1) << bits); ++i)
        out.push_back(seq.next());
    return out;
}

} // namespace usys
