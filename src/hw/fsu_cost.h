/**
 * @file
 * Fully-streaming unary (FSU) baseline cost model — the uGEMM-class
 * architecture of Figure 5a / footnote 2.
 *
 * An FSU design dedicates one physical multiplier per (weight, output)
 * pair of a *fixed* GEMM configuration and stores every weight in flip
 * flops next to its multiplier: no data scheduling, but no reuse either.
 * The model quantifies why the paper excludes FSU from the evaluation —
 * AlexNet alone needs 61.1 M weights in DFFs, orders of magnitude beyond
 * the 24 MB cloud-TPU SRAM — and feeds the Table I comparison bench.
 */

#ifndef USYS_HW_FSU_COST_H
#define USYS_HW_FSU_COST_H

#include <vector>

#include "common/types.h"
#include "sched/layer.h"

namespace usys {

/** Cost summary of an FSU instance fitted to one set of layers. */
struct FsuCost
{
    i64 weights = 0;          // flip-flop-resident weight count
    double storage_mb = 0.0;  // weight storage in MB
    double storage_area_mm2 = 0.0; // DFF area for the weights alone
    double mul_area_mm2 = 0.0;     // one uMUL per weight
    double total_area_mm2 = 0.0;
    double leak_w = 0.0;
};

/**
 * Cost of one FSU instance dedicated to the given layers at the given
 * bitwidth. A multi-model deployment needs one instance per distinct
 * configuration (the generalizability failure of Table I).
 */
FsuCost fsuInstanceCost(const std::vector<GemmLayer> &layers, int bits);

} // namespace usys

#endif // USYS_HW_FSU_COST_H
