/**
 * @file
 * System energy/power roll-up (Figures 13-14).
 *
 * Combines the array cost model, the CACTI-lite SRAM model, and the DRAM
 * model with trace statistics from the performance simulator. Following
 * the paper: on-chip = systolic array + SRAM (dynamic + leakage); total
 * adds the DRAM *dynamic access* energy only.
 */

#ifndef USYS_HW_ENERGY_H
#define USYS_HW_ENERGY_H

#include "hw/pe_cost.h"
#include "sched/simulator.h"

namespace usys {

/** Energy/power summary of one layer execution. */
struct EnergyReport
{
    double runtime_s = 0.0;

    double array_dyn_uj = 0.0;
    double array_leak_uj = 0.0;
    double sram_dyn_uj = 0.0;
    double sram_leak_uj = 0.0;
    double dram_uj = 0.0;

    double array_uj() const { return array_dyn_uj + array_leak_uj; }
    double sram_uj() const { return sram_dyn_uj + sram_leak_uj; }
    double onchip_uj() const { return array_uj() + sram_uj(); }
    double total_uj() const { return onchip_uj() + dram_uj; }

    double onchip_power_mw() const
    {
        return onchip_uj() * 1e-3 / runtime_s;
    }
    double total_power_mw() const { return total_uj() * 1e-3 / runtime_s; }

    /** Energy-delay products (uJ * s). */
    double edp_onchip() const { return onchip_uj() * runtime_s; }
    double edp_total() const { return total_uj() * runtime_s; }
};

/** Energy/power of one simulated layer. */
EnergyReport layerEnergy(const SystemConfig &sys, const LayerStats &stats);

/** Total on-chip area: array + (3x) SRAM buffers, in mm^2. */
double onchipAreaMm2(const SystemConfig &sys);

} // namespace usys

#endif // USYS_HW_ENERGY_H
