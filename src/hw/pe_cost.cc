#include "hw/pe_cost.h"

#include "hw/tech32.h"

namespace usys {

namespace {

/** Headroom bits of the uSystolic reduced-resolution OREG. */
constexpr int kUnaryAccHeadroom = 4;

/** Average input-bit density (post-ReLU activations are mid-range). */
constexpr double kEnableDensity = 0.5;

/** Average OREG increment toggle width (low-order bits of a counter). */
constexpr double kOregToggleBits = 3.0;

/**
 * Unary datapaths toggle far fewer nodes per cycle than the 0.5-density
 * register model assumes: the C-W comparator output and the uMUL AND
 * change rarely, and the OREG increments by at most one. This factor
 * derates the unary per-cycle dynamic energy accordingly (calibrated to
 * Figure 13's energy reductions).
 */
constexpr double kUnaryActivityScale = 0.3;

/**
 * Placement/routing congestion inflates per-PE area as arrays grow — the
 * superquadratic scaling of Section I. Bit-parallel datapaths with wide
 * operand buses congest fastest; unary PEs with single-wire lanes
 * congest least (the paper's scalability argument). Normalized to 1 at
 * the 168-PE edge array.
 */
constexpr double kCongestionRefPes = 168.0;

double
congestionExponent(Scheme s)
{
    switch (s) {
      case Scheme::BinaryParallel: return 0.26;
      case Scheme::BinarySerial: return 0.24;
      case Scheme::UgemmHybrid: return 0.22;
      case Scheme::USystolicRate:
      case Scheme::USystolicTemporal: return 0.20;
      // tubGEMM routes a full binary weight bus into the adder, so it
      // congests slightly faster than the single-wire unary lanes;
      // tuGEMM is pure counters and single-wire streams — the least
      // congestion-prone datapath of the seven.
      case Scheme::TubGemm: return 0.21;
      case Scheme::TuGemm: return 0.19;
    }
    return 0.22;
}

double
congestionFactor(Scheme s, double n_pes)
{
    return std::max(
        1.0, std::pow(n_pes / kCongestionRefPes, congestionExponent(s)));
}

/** GE -> um^2, leakage. */
BlockAreas
toUm2(const BlockAreas &ge)
{
    return ge.scaled(kGateAreaUm2);
}

} // namespace

PeCost
peCost(const KernelConfig &kern, bool leftmost)
{
    kern.check();
    const int bits = kern.bits;
    const int mag = bits - 1;
    PeCost cost;
    BlockAreas ge;

    switch (kern.scheme) {
      case Scheme::BinaryParallel: {
        ge.ireg = regGe(bits);           // value pipeline to the right
        ge.wreg = regGe(bits);
        ge.mul = multiplierGe(bits);
        ge.acc = adderGe(2 * bits) + regGe(2 * bits); // full-res psum
        cost.e_mul_cycle_pj = multOpPj(bits) + regWritePj(bits);
        cost.e_mac_finish_pj =
            addOpPj(2 * bits) + 0.5 * regWritePj(2 * bits);
        break;
      }
      case Scheme::BinarySerial: {
        // Input serialized LSB-first (Stripes-style); shift-accumulate.
        // The wide shifted-partial accumulator and its sequencing control
        // are why BS has the largest ACC of all schemes (Section V-C).
        ge.ireg = regGe(bits) + bits * kMux2Ge; // value + serializer
        ge.wreg = regGe(bits);
        ge.mul = bits * kAnd2Ge + 6.0;          // gating + control
        const int acc_bits = 2 * bits + 8;
        ge.acc = adderGe(acc_bits) + regGe(acc_bits) +
                 acc_bits * kMux2Ge + 40.0;     // shifted psum + sequencer
        cost.e_mul_cycle_pj = kEnableDensity *
                                  (addOpPj(acc_bits) +
                                   regWritePj(acc_bits)) +
                              bits * kGateOpPj;
        cost.e_mac_finish_pj = addOpPj(acc_bits) + regWritePj(acc_bits);
        break;
      }
      case Scheme::USystolicRate:
      case Scheme::USystolicTemporal: {
        const bool temporal = kern.scheme == Scheme::USystolicTemporal;
        if (leftmost) {
            // IABS + ISIGN + IDFF.
            ge.ireg = regGe(mag) + regGe(1) + regGe(1);
            // Weight RNG + input BSG (RNG or CNT) + C-W + C-I + AND.
            ge.mul = sobolRngGe(mag) +
                     (temporal ? counterGe(mag) : sobolRngGe(mag)) +
                     2 * comparatorGe(mag) + kAnd2Ge;
            cost.e_mul_cycle_pj =
                // input BSG advance every cycle
                (temporal ? 0.3 * regWritePj(mag) : rngStepPj(mag)) +
                cmpOpPj(mag) + // C-I
                // weight RNG advances only on input 1-bits
                kEnableDensity * rngStepPj(mag) +
                kEnableDensity * cmpOpPj(mag) + // C-W
                regWritePj(1) +                 // IDFF
                kGateOpPj +
                0.25 * regWritePj(int(kOregToggleBits));
        } else {
            // IDFF + ISIGN pipeline only (spatial-temporal reuse).
            ge.ireg = regGe(2);
            // RREG + C-W + AND.
            ge.mul = regGe(mag) + comparatorGe(mag) + kAnd2Ge;
            cost.e_mul_cycle_pj =
                kEnableDensity * regWritePj(mag) + // RREG toggles on new
                regWritePj(1) +                    // IDFF
                kEnableDensity * cmpOpPj(mag) +
                kGateOpPj +
                0.25 * regWritePj(int(kOregToggleBits));
        }
        ge.wreg = regGe(mag) + regGe(1); // WABS + WSIGN
        const int acc_bits = bits + kUnaryAccHeadroom;
        ge.acc = adderGe(acc_bits) + regGe(acc_bits) + kXor2Ge +
                 2 * kMux2Ge;
        cost.e_mac_finish_pj = addOpPj(acc_bits) + regWritePj(acc_bits);
        break;
      }
      case Scheme::UgemmHybrid: {
        // Bipolar uMUL on signed data: full-width streams (2^N cycles)
        // and dual-polarity C-BSG, i.e. two RNG/RREG/comparator lanes.
        if (leftmost) {
            ge.ireg = regGe(bits) + regGe(1); // value + IDFF
            ge.mul = 2 * sobolRngGe(bits) + sobolRngGe(bits) +
                     3 * comparatorGe(bits) + kXor2Ge + kMux2Ge;
            cost.e_mul_cycle_pj =
                rngStepPj(bits) + cmpOpPj(bits) + // input BSG
                rngStepPj(bits) +                 // one polarity advances
                cmpOpPj(bits) + regWritePj(1) + 2 * kGateOpPj +
                0.25 * regWritePj(int(kOregToggleBits));
        } else {
            ge.ireg = regGe(2);
            ge.mul = 2 * regGe(bits) + 2 * comparatorGe(bits) +
                     kXor2Ge + kMux2Ge;
            cost.e_mul_cycle_pj =
                regWritePj(bits) + // one RREG lane updates per cycle
                regWritePj(1) + cmpOpPj(bits) + 2 * kGateOpPj +
                0.25 * regWritePj(int(kOregToggleBits));
        }
        ge.wreg = regGe(bits); // signed weight, no sign-magnitude split
        const int acc_bits = bits + kUnaryAccHeadroom;
        ge.acc = adderGe(acc_bits) + regGe(acc_bits) + 8.0; // offset sub
        cost.e_mac_finish_pj =
            addOpPj(acc_bits) + regWritePj(acc_bits) + addOpPj(acc_bits);
        break;
      }
      case Scheme::TubGemm: {
        // Temporal-unary activation x binary weight: a staircase
        // counter + magnitude comparator generate the input stream
        // (leftmost column only); every PE then adds its full signed
        // weight into a 2N-bit OREG on asserted bits. No RNGs anywhere.
        const int acc_bits = 2 * bits;
        if (leftmost) {
            ge.ireg = regGe(mag) + regGe(1) + regGe(1); // IABS+ISIGN+IDFF
            ge.mul = counterGe(mag) + comparatorGe(mag) + bits * kAnd2Ge;
            cost.e_mul_cycle_pj =
                0.3 * regWritePj(mag) + // staircase counter advance
                cmpOpPj(mag) +          // C-I threshold
                regWritePj(1) +         // IDFF
                bits * kGateOpPj +
                kEnableDensity *
                    (addOpPj(acc_bits) + regWritePj(acc_bits));
        } else {
            ge.ireg = regGe(2); // IDFF + ISIGN pipeline
            ge.mul = bits * kAnd2Ge;
            cost.e_mul_cycle_pj =
                regWritePj(1) + bits * kGateOpPj +
                kEnableDensity *
                    (addOpPj(acc_bits) + regWritePj(acc_bits));
        }
        ge.wreg = regGe(bits); // binary signed weight, no split
        ge.acc = adderGe(acc_bits) + regGe(acc_bits) + kXor2Ge;
        cost.e_mac_finish_pj = addOpPj(acc_bits) + regWritePj(acc_bits);
        break;
      }
      case Scheme::TuGemm: {
        // Fully temporal: deterministic staircase counters on both
        // operands, an AND, and a +/-1 OREG — the smallest PE of the
        // seven, paid for with 2^(2(N-1)) mul cycles.
        if (leftmost) {
            ge.ireg = regGe(mag) + regGe(1) + regGe(1);
            // Input staircase (held per weight sweep) + weight sweep
            // counter + both magnitude comparators + AND.
            ge.mul = 2 * counterGe(mag) + 2 * comparatorGe(mag) +
                     kAnd2Ge;
            cost.e_mul_cycle_pj =
                0.3 * regWritePj(mag) + // weight sweep counter
                cmpOpPj(mag) +          // C-W sweep threshold
                kEnableDensity * cmpOpPj(mag) + // C-I (held bit)
                regWritePj(1) + kGateOpPj +
                0.25 * regWritePj(int(kOregToggleBits));
        } else {
            ge.ireg = regGe(2);
            ge.mul = counterGe(mag) + comparatorGe(mag) + kAnd2Ge;
            cost.e_mul_cycle_pj =
                0.3 * regWritePj(mag) + regWritePj(1) +
                kEnableDensity * cmpOpPj(mag) + kGateOpPj +
                0.25 * regWritePj(int(kOregToggleBits));
        }
        ge.wreg = regGe(mag) + regGe(1); // WABS + WSIGN
        const int acc_bits = bits + kUnaryAccHeadroom;
        ge.acc = adderGe(acc_bits) + regGe(acc_bits) + kXor2Ge +
                 2 * kMux2Ge;
        cost.e_mac_finish_pj = addOpPj(acc_bits) + regWritePj(acc_bits);
        break;
      }
    }

    if (isUnary(kern.scheme))
        cost.e_mul_cycle_pj *= kUnaryActivityScale;

    cost.area_um2 = toUm2(ge);
    cost.leak_uw = ge.total() * kLeakUwPerGe;
    return cost;
}

ArrayCost
arrayCost(const ArrayConfig &cfg)
{
    cfg.check();
    const PeCost left = peCost(cfg.kernel, true);
    const PeCost rest = peCost(cfg.kernel, false);
    const double n_left = double(cfg.rows);
    const double n_rest = double(cfg.rows) * (cfg.cols - 1);

    ArrayCost out;
    const double congestion =
        congestionFactor(cfg.kernel.scheme, n_left + n_rest);
    BlockAreas um2 = left.area_um2.scaled(n_left);
    um2 += rest.area_um2.scaled(n_rest);
    out.area_mm2 = um2.scaled(1e-6 * congestion);
    out.leak_mw = (left.leak_uw * n_left + rest.leak_uw * n_rest) * 1e-3 *
                  congestion;
    out.e_per_mac_slot_pj =
        (left.ePerMacPj(cfg.kernel) * n_left +
         rest.ePerMacPj(cfg.kernel) * n_rest) /
        (n_left + n_rest);
    out.e_weight_load_pj = regWritePj(cfg.kernel.bits);
    return out;
}

} // namespace usys
