#include "hw/energy.h"

#include "common/stats_registry.h"

namespace usys {

EnergyReport
layerEnergy(const SystemConfig &sys, const LayerStats &stats)
{
    EnergyReport r;
    r.runtime_s = stats.runtime_s;

    const ArrayCost array = arrayCost(sys.array);

    // Array dynamic: active MAC slots plus weight-tile register loads.
    const double mac_pj =
        double(stats.active_mac_slots) * array.e_per_mac_slot_pj;
    const double wload_pj =
        double(stats.tiling.folds) * sys.array.rows * sys.array.cols *
        array.e_weight_load_pj;
    r.array_dyn_uj = (mac_pj + wload_pj) * 1e-6;
    r.array_leak_uj = array.leak_mw * 1e3 * stats.runtime_s; // mW*s -> uJ

    if (sys.sram.present) {
        const SramMacroCost macro = sys.sram.cost();
        r.sram_dyn_uj =
            double(stats.sram_total_bytes) * macro.pj_per_byte * 1e-6;
        // Three variable buffers leak for the whole runtime.
        r.sram_leak_uj = 3.0 * macro.leakage_mw * 1e3 * stats.runtime_s;
    }

    r.dram_uj =
        double(stats.dram_total_bytes) * sys.dram.pj_per_byte * 1e-6;

    // --- Observability: running energy breakdown across every report.
    StatsRegistry &reg = statsRegistry();
    ++reg.counter("hw.energy.reports", "layer energy reports");
    Scalar &array_dyn =
        reg.scalar("hw.energy.array_dyn_uj", "array dynamic, summed");
    Scalar &array_leak =
        reg.scalar("hw.energy.array_leak_uj", "array leakage, summed");
    Scalar &sram_dyn =
        reg.scalar("hw.energy.sram_dyn_uj", "SRAM dynamic, summed");
    Scalar &sram_leak =
        reg.scalar("hw.energy.sram_leak_uj", "SRAM leakage, summed");
    Scalar &dram =
        reg.scalar("hw.energy.dram_uj", "DRAM dynamic, summed");
    array_dyn.add(r.array_dyn_uj);
    array_leak.add(r.array_leak_uj);
    sram_dyn.add(r.sram_dyn_uj);
    sram_leak.add(r.sram_leak_uj);
    dram.add(r.dram_uj);
    // Roll-ups as dump-time formulas over the registered scalars (the
    // references stay valid for the registry's lifetime).
    reg.formula(
        "hw.energy.onchip_uj",
        [&array_dyn, &array_leak, &sram_dyn, &sram_leak] {
            return array_dyn.value() + array_leak.value() +
                   sram_dyn.value() + sram_leak.value();
        },
        "on-chip energy, summed");
    reg.formula(
        "hw.energy.total_uj",
        [&array_dyn, &array_leak, &sram_dyn, &sram_leak, &dram] {
            return array_dyn.value() + array_leak.value() +
                   sram_dyn.value() + sram_leak.value() + dram.value();
        },
        "on-chip + DRAM energy, summed");
    return r;
}

double
onchipAreaMm2(const SystemConfig &sys)
{
    double area = arrayCost(sys.array).area_mm2.total();
    if (sys.sram.present)
        area += 3.0 * sys.sram.cost().area_mm2;
    return area;
}

} // namespace usys
