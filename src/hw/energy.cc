#include "hw/energy.h"

namespace usys {

EnergyReport
layerEnergy(const SystemConfig &sys, const LayerStats &stats)
{
    EnergyReport r;
    r.runtime_s = stats.runtime_s;

    const ArrayCost array = arrayCost(sys.array);

    // Array dynamic: active MAC slots plus weight-tile register loads.
    const double mac_pj =
        double(stats.active_mac_slots) * array.e_per_mac_slot_pj;
    const double wload_pj =
        double(stats.tiling.folds) * sys.array.rows * sys.array.cols *
        array.e_weight_load_pj;
    r.array_dyn_uj = (mac_pj + wload_pj) * 1e-6;
    r.array_leak_uj = array.leak_mw * 1e3 * stats.runtime_s; // mW*s -> uJ

    if (sys.sram.present) {
        const SramMacroCost macro = sys.sram.cost();
        r.sram_dyn_uj =
            double(stats.sram_total_bytes) * macro.pj_per_byte * 1e-6;
        // Three variable buffers leak for the whole runtime.
        r.sram_leak_uj = 3.0 * macro.leakage_mw * 1e3 * stats.runtime_s;
    }

    r.dram_uj =
        double(stats.dram_total_bytes) * sys.dram.pj_per_byte * 1e-6;
    return r;
}

double
onchipAreaMm2(const SystemConfig &sys)
{
    double area = arrayCost(sys.array).area_mm2.total();
    if (sys.sram.present)
        area += 3.0 * sys.sram.cost().area_mm2;
    return area;
}

} // namespace usys
