/**
 * @file
 * 32 nm / 400 MHz technology constants (Design Compiler substitute).
 *
 * All logic costs are expressed in gate equivalents (GE, one NAND2) and
 * converted to um^2 / uW / pJ with the constants below. Values are chosen
 * to sit inside the range published for 32 nm standard-cell libraries and
 * are deliberately exposed as named constants: the paper's results are
 * about *relative* costs of PE structures, which gate counts determine,
 * and EXPERIMENTS.md records how close the relative numbers land.
 */

#ifndef USYS_HW_TECH32_H
#define USYS_HW_TECH32_H

#include <algorithm>
#include <cmath>

namespace usys {

/**
 * Placed area of one gate equivalent (NAND2) in um^2, including routing
 * tracks and placement utilization (i.e. what Design Compiler reports for
 * a placed-and-routed block, not raw cell area). Calibrated against the
 * paper's Figure 11 array areas.
 */
constexpr double kGateAreaUm2 = 4.0;

/** Logic leakage per gate equivalent in uW (32 nm HP cells). */
constexpr double kLeakUwPerGe = 0.006;

/** Gate-equivalent counts of standard primitives. */
constexpr double kDffGe = 5.0;
constexpr double kFaGe = 6.0;
constexpr double kAnd2Ge = 1.0;
constexpr double kXor2Ge = 2.0;
constexpr double kMux2Ge = 2.0;

/** n-bit register. */
inline double regGe(int n) { return n * kDffGe; }

/** n-bit ripple-carry adder. */
inline double adderGe(int n) { return n * kFaGe; }

/** n-bit magnitude comparator. */
inline double comparatorGe(int n) { return 4.0 * n; }

/**
 * Routing-congestion factor of bit-parallel multipliers: area and power
 * grow superquadratically with width (Section I), normalized to 1 at
 * 8 bits.
 */
inline double
multiplierRoutingFactor(int n)
{
    return std::pow(double(n) / 8.0, 0.35);
}

/** n x n array multiplier (partial products + carry-save reduction). */
inline double
multiplierGe(int n)
{
    const double core = 8.2 * n * n - 12.0 * n;
    return core * multiplierRoutingFactor(n);
}

/** n-bit Sobol RNG: register + LSZ detector + XOR bank + direction mux. */
inline double sobolRngGe(int n) { return 12.0 * n; }

/** n-bit binary counter. */
inline double counterGe(int n) { return 7.0 * n; }

// --- Dynamic energy per operation (pJ) ------------------------------------

/** One n x n multiply. */
inline double
multOpPj(int n)
{
    return 0.004 * n * n * multiplierRoutingFactor(n);
}

/** One n-bit add. */
inline double addOpPj(int n) { return 0.0035 * n; }

/** One n-bit register write. */
inline double regWritePj(int n) { return 0.0015 * n; }

/** One n-bit compare. */
inline double cmpOpPj(int n) { return 0.002 * n; }

/** One Sobol RNG advance (XOR network + register update). */
inline double rngStepPj(int n) { return 0.002 * n + regWritePj(n); }

/** One AND/XOR gate toggle. */
constexpr double kGateOpPj = 0.0002;

} // namespace usys

#endif // USYS_HW_TECH32_H
