#include "hw/fsu_cost.h"

#include "hw/tech32.h"

namespace usys {

FsuCost
fsuInstanceCost(const std::vector<GemmLayer> &layers, int bits)
{
    FsuCost cost;
    for (const auto &layer : layers)
        cost.weights += layer.weightElems();

    cost.storage_mb =
        double(cost.weights) * bits / 8.0 / (1024.0 * 1024.0);

    // Every weight sits in a bits-wide flip-flop bank...
    const double storage_ge = double(cost.weights) * regGe(bits);
    cost.storage_area_mm2 = storage_ge * kGateAreaUm2 * 1e-6;
    // ...next to one unipolar uMUL (comparator + AND; the RNG is shared
    // per dot-product via broadcast).
    const double mul_ge =
        double(cost.weights) * (comparatorGe(bits - 1) + kAnd2Ge);
    cost.mul_area_mm2 = mul_ge * kGateAreaUm2 * 1e-6;

    cost.total_area_mm2 = cost.storage_area_mm2 + cost.mul_area_mm2;
    cost.leak_w = (storage_ge + mul_ge) * kLeakUwPerGe * 1e-6;
    return cost;
}

} // namespace usys
