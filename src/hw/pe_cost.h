/**
 * @file
 * Per-scheme PE and array hardware cost models (Figure 11 breakdown).
 *
 * Blocks follow the paper's accounting: for binary PEs, IREG/WREG/MUL/ACC
 * map directly onto Figure 2; for uSystolic, IREG = IABS/IDFF/ISIGN,
 * WREG = WABS/WSIGN, MUL = RNG/CNT/RREG/C-W/C-I/AND, ACC = the rest.
 * Leftmost-column PEs carry the bitstream generators; the other C-1
 * columns reuse the streams through IDFF/RREG (spatial-temporal reuse),
 * which is where uSystolic's area advantage over uGEMM-H's broadcast
 * duplication comes from.
 */

#ifndef USYS_HW_PE_COST_H
#define USYS_HW_PE_COST_H

#include "common/types.h"
#include "arch/array.h"
#include "arch/scheme.h"

namespace usys {

/** Area split of one PE (or an array) into the Figure 11 blocks. */
struct BlockAreas
{
    double ireg = 0.0;
    double wreg = 0.0;
    double mul = 0.0;
    double acc = 0.0;

    double total() const { return ireg + wreg + mul + acc; }

    BlockAreas &
    operator+=(const BlockAreas &o)
    {
        ireg += o.ireg;
        wreg += o.wreg;
        mul += o.mul;
        acc += o.acc;
        return *this;
    }

    BlockAreas
    scaled(double f) const
    {
        return BlockAreas{ireg * f, wreg * f, mul * f, acc * f};
    }
};

/** Cost summary of one PE. */
struct PeCost
{
    BlockAreas area_um2;
    double leak_uw = 0.0;
    /** Dynamic energy of one multiplication cycle (pJ). */
    double e_mul_cycle_pj = 0.0;
    /** Dynamic energy of the M-end accumulate/merge (pJ). */
    double e_mac_finish_pj = 0.0;

    /** Dynamic energy of one full MAC (pJ). */
    double
    ePerMacPj(const KernelConfig &kern) const
    {
        return e_mul_cycle_pj * kern.mulCycles() + e_mac_finish_pj;
    }
};

/**
 * Cost of one PE.
 *
 * @param kern kernel configuration
 * @param leftmost true for column-0 PEs (carry the BSGs/RNGs)
 */
PeCost peCost(const KernelConfig &kern, bool leftmost);

/** Whole-array cost summary. */
struct ArrayCost
{
    BlockAreas area_mm2;   // summed over all PEs
    double leak_mw = 0.0;
    /** Average per-PE dynamic energy of one MAC slot (pJ). */
    double e_per_mac_slot_pj = 0.0;
    /** Dynamic energy of one full weight-preload (all folds' tiles, pJ/elem). */
    double e_weight_load_pj = 0.0;
};

/** Aggregate PE costs over an R x C array (leftmost column amortized). */
ArrayCost arrayCost(const ArrayConfig &cfg);

} // namespace usys

#endif // USYS_HW_PE_COST_H
