/**
 * @file
 * AlexNet GEMM layers (the paper's layerwise workload, Section IV-C1).
 */

#ifndef USYS_WORKLOADS_ALEXNET_H
#define USYS_WORKLOADS_ALEXNET_H

#include <vector>

#include "sched/layer.h"

namespace usys {

/**
 * The eight AlexNet GEMM layers (Conv1-5, FC6-8), ImageNet dims.
 * Padding is folded into the input size (e.g. Conv2's pad-2 27x27 input
 * appears as 31x31).
 */
std::vector<GemmLayer> alexnetLayers();

} // namespace usys

#endif // USYS_WORKLOADS_ALEXNET_H
