/**
 * @file
 * MLPerf-like GEMM layer suite (Section IV-C1).
 *
 * The paper sweeps the full MLPerf inference benchmark (1094 GEMM layers
 * across 8 models). We regenerate the same *diversity* — large and small
 * convolutions, 1x1 bottlenecks, tall/thin and single-row matmuls — from
 * the published architectures of the same 8 models (substitution #4 in
 * DESIGN.md): AlphaGoZero, AlexNet, GoogLeNet, ResNet50, neural
 * collaborative filtering, sentimental_seqCNN, sentimental_seqLSTM, and
 * Transformer.
 */

#ifndef USYS_WORKLOADS_MLPERF_H
#define USYS_WORKLOADS_MLPERF_H

#include <string>
#include <vector>

#include "sched/layer.h"

namespace usys {

/** One benchmark model: name + its GEMM layers. */
struct MlperfModel
{
    std::string name;
    std::vector<GemmLayer> layers;
};

/** The eight-model suite. */
std::vector<MlperfModel> mlperfSuite();

/** All layers of the suite flattened. */
std::vector<GemmLayer> mlperfLayers();

} // namespace usys

#endif // USYS_WORKLOADS_MLPERF_H
