#include "workloads/mlperf.h"

#include "workloads/alexnet.h"

namespace usys {

namespace {

/** Convolution with symmetric padding folded into the input size. */
GemmLayer
pconv(std::string name, int hw, int ic, int kk, int stride, int oc,
      int pad)
{
    const int in = hw + 2 * pad;
    return GemmLayer::conv(std::move(name), in, in, ic, kk, kk, stride,
                           oc);
}

MlperfModel
alphaGoZero()
{
    // 19x19 board, 17 input planes, 256-filter residual tower (19 blocks)
    // plus policy/value heads.
    MlperfModel m{"AlphaGoZero", {}};
    m.layers.push_back(pconv("stem", 19, 17, 3, 1, 256, 1));
    for (int b = 0; b < 19; ++b) {
        m.layers.push_back(
            pconv("res" + std::to_string(b) + "a", 19, 256, 3, 1, 256, 1));
        m.layers.push_back(
            pconv("res" + std::to_string(b) + "b", 19, 256, 3, 1, 256, 1));
    }
    m.layers.push_back(pconv("policy_conv", 19, 256, 1, 1, 2, 0));
    m.layers.push_back(GemmLayer::matmul("policy_fc", 1, 2 * 19 * 19, 362));
    m.layers.push_back(pconv("value_conv", 19, 256, 1, 1, 1, 0));
    m.layers.push_back(GemmLayer::matmul("value_fc1", 1, 19 * 19, 256));
    m.layers.push_back(GemmLayer::matmul("value_fc2", 1, 256, 1));
    return m;
}

MlperfModel
googlenet()
{
    // GoogLeNet (Inception v1): stem + 9 inception modules. Each module
    // contributes its 1x1 / 3x3-reduce+3x3 / 5x5-reduce+5x5 / pool-proj
    // convolutions.
    MlperfModel m{"GoogLeNet", {}};
    m.layers.push_back(pconv("conv1", 224, 3, 7, 2, 64, 3));
    m.layers.push_back(pconv("conv2_reduce", 56, 64, 1, 1, 64, 0));
    m.layers.push_back(pconv("conv2", 56, 64, 3, 1, 192, 1));

    struct Inception
    {
        const char *name;
        int hw, ic, c1, c3r, c3, c5r, c5, pp;
    };
    const Inception mods[] = {
        {"3a", 28, 192, 64, 96, 128, 16, 32, 32},
        {"3b", 28, 256, 128, 128, 192, 32, 96, 64},
        {"4a", 14, 480, 192, 96, 208, 16, 48, 64},
        {"4b", 14, 512, 160, 112, 224, 24, 64, 64},
        {"4c", 14, 512, 128, 128, 256, 24, 64, 64},
        {"4d", 14, 512, 112, 144, 288, 32, 64, 64},
        {"4e", 14, 528, 256, 160, 320, 32, 128, 128},
        {"5a", 7, 832, 256, 160, 320, 32, 128, 128},
        {"5b", 7, 832, 384, 192, 384, 48, 128, 128},
    };
    for (const auto &im : mods) {
        const std::string p = std::string("inc") + im.name + "_";
        m.layers.push_back(pconv(p + "1x1", im.hw, im.ic, 1, 1, im.c1, 0));
        m.layers.push_back(
            pconv(p + "3x3r", im.hw, im.ic, 1, 1, im.c3r, 0));
        m.layers.push_back(pconv(p + "3x3", im.hw, im.c3r, 3, 1, im.c3, 1));
        m.layers.push_back(
            pconv(p + "5x5r", im.hw, im.ic, 1, 1, im.c5r, 0));
        m.layers.push_back(pconv(p + "5x5", im.hw, im.c5r, 5, 1, im.c5, 2));
        m.layers.push_back(
            pconv(p + "pool", im.hw, im.ic, 1, 1, im.pp, 0));
    }
    m.layers.push_back(GemmLayer::matmul("fc", 1, 1024, 1000));
    return m;
}

MlperfModel
resnet50()
{
    MlperfModel m{"ResNet50", {}};
    m.layers.push_back(pconv("conv1", 224, 3, 7, 2, 64, 3));

    struct Stage
    {
        int hw, in_ch, mid, out_ch, blocks;
    };
    const Stage stages[] = {
        {56, 64, 64, 256, 3},
        {28, 256, 128, 512, 4},
        {14, 512, 256, 1024, 6},
        {7, 1024, 512, 2048, 3},
    };
    int stage_id = 2;
    for (const auto &st : stages) {
        int ic = st.in_ch;
        for (int b = 0; b < st.blocks; ++b) {
            const std::string p =
                "s" + std::to_string(stage_id) + "b" + std::to_string(b);
            const int stride = (b == 0 && stage_id > 2) ? 2 : 1;
            const int in_hw = stride == 2 ? st.hw * 2 : st.hw;
            m.layers.push_back(
                pconv(p + "_1x1a", in_hw, ic, 1, stride, st.mid, 0));
            m.layers.push_back(
                pconv(p + "_3x3", st.hw, st.mid, 3, 1, st.mid, 1));
            m.layers.push_back(
                pconv(p + "_1x1b", st.hw, st.mid, 1, 1, st.out_ch, 0));
            if (b == 0) {
                m.layers.push_back(pconv(p + "_proj", in_hw, ic, 1,
                                         stride, st.out_ch, 0));
            }
            ic = st.out_ch;
        }
        ++stage_id;
    }
    m.layers.push_back(GemmLayer::matmul("fc", 1, 2048, 1000));
    return m;
}

MlperfModel
ncf()
{
    // Neural collaborative filtering: embedding-fed MLP, batch 256.
    MlperfModel m{"NCF", {}};
    m.layers.push_back(GemmLayer::matmul("mlp1", 256, 256, 256));
    m.layers.push_back(GemmLayer::matmul("mlp2", 256, 256, 128));
    m.layers.push_back(GemmLayer::matmul("mlp3", 256, 128, 64));
    m.layers.push_back(GemmLayer::matmul("mlp4", 256, 64, 32));
    m.layers.push_back(GemmLayer::matmul("predict", 256, 32, 1));
    return m;
}

MlperfModel
seqCnn()
{
    // Text-sentiment CNN: 1-D convolutions over a length-400 sequence of
    // 128-d embeddings (windows 3/4/5), then dense layers.
    MlperfModel m{"seqCNN", {}};
    m.layers.push_back(GemmLayer::conv("conv_w3", 400, 1, 128, 3, 1, 1,
                                       128));
    m.layers.push_back(GemmLayer::conv("conv_w4", 400, 1, 128, 4, 1, 1,
                                       128));
    m.layers.push_back(GemmLayer::conv("conv_w5", 400, 1, 128, 5, 1, 1,
                                       128));
    m.layers.push_back(GemmLayer::matmul("fc1", 1, 384, 256));
    m.layers.push_back(GemmLayer::matmul("fc2", 1, 256, 2));
    return m;
}

MlperfModel
seqLstm()
{
    // Text-sentiment LSTM: per-step gate GEMM x_t/h_t -> 4H, hidden 512,
    // embedding 128, 25 unrolled steps.
    MlperfModel m{"seqLSTM", {}};
    for (int t = 0; t < 25; ++t) {
        m.layers.push_back(GemmLayer::matmul(
            "step" + std::to_string(t) + "_gates", 1, 128 + 512,
            4 * 512));
    }
    m.layers.push_back(GemmLayer::matmul("fc", 1, 512, 2));
    return m;
}

MlperfModel
transformer()
{
    // Base Transformer encoder: 6 layers, d_model 512, 8 heads, FFN 2048,
    // sequence length 256.
    MlperfModel m{"Transformer", {}};
    const int seq = 256, d = 512, heads = 8, dk = d / heads, ffn = 2048;
    for (int l = 0; l < 6; ++l) {
        const std::string p = "enc" + std::to_string(l) + "_";
        m.layers.push_back(GemmLayer::matmul(p + "q", seq, d, d));
        m.layers.push_back(GemmLayer::matmul(p + "k", seq, d, d));
        m.layers.push_back(GemmLayer::matmul(p + "v", seq, d, d));
        // Attention score and context GEMMs, one per head.
        for (int h = 0; h < heads; ++h) {
            m.layers.push_back(GemmLayer::matmul(
                p + "scores_h" + std::to_string(h), seq, dk, seq));
            m.layers.push_back(GemmLayer::matmul(
                p + "ctx_h" + std::to_string(h), seq, seq, dk));
        }
        m.layers.push_back(GemmLayer::matmul(p + "proj", seq, d, d));
        m.layers.push_back(GemmLayer::matmul(p + "ffn1", seq, d, ffn));
        m.layers.push_back(GemmLayer::matmul(p + "ffn2", seq, ffn, d));
    }
    return m;
}

} // namespace

std::vector<MlperfModel>
mlperfSuite()
{
    std::vector<MlperfModel> suite;
    suite.push_back(alphaGoZero());
    suite.push_back(MlperfModel{"AlexNet", alexnetLayers()});
    suite.push_back(googlenet());
    suite.push_back(resnet50());
    suite.push_back(ncf());
    suite.push_back(seqCnn());
    suite.push_back(seqLstm());
    suite.push_back(transformer());
    return suite;
}

std::vector<GemmLayer>
mlperfLayers()
{
    std::vector<GemmLayer> all;
    for (auto &model : mlperfSuite())
        for (auto &layer : model.layers)
            all.push_back(layer);
    return all;
}

} // namespace usys
