/**
 * @file
 * Edge and cloud system presets (Section IV-C2/C3).
 *
 * Edge: Eyeriss-derived 12x14 array with 3 x 64 KB buffers.
 * Cloud: TPU-derived 256x256 array with 3 x 8 MB buffers.
 * Both run at 400 MHz over the same DDR3 chip; SRAM can be removed to
 * model uSystolic's crawling-byte operating point.
 */

#ifndef USYS_WORKLOADS_SYSTEMS_H
#define USYS_WORKLOADS_SYSTEMS_H

#include "sched/simulator.h"

namespace usys {

/** Eyeriss-shaped edge system. */
inline SystemConfig
edgeSystem(const KernelConfig &kern, bool with_sram)
{
    SystemConfig sys;
    sys.array = ArrayConfig{12, 14, kern, {}};
    sys.freq_ghz = 0.4;
    sys.sram = with_sram ? edgeSram() : noSram();
    // 16-bit designs double the SRAM to hold the same element count
    // (Section V-C).
    sys.sram.bytes *= u64(sys.elemBytes());
    sys.dram = ddr3Chip();
    return sys;
}

/** TPU-shaped cloud system. */
inline SystemConfig
cloudSystem(const KernelConfig &kern, bool with_sram)
{
    SystemConfig sys;
    sys.array = ArrayConfig{256, 256, kern, {}};
    sys.freq_ghz = 0.4;
    sys.sram = with_sram ? cloudSram() : noSram();
    sys.sram.bytes *= u64(sys.elemBytes());
    sys.dram = ddr3Chip();
    return sys;
}

/**
 * The paper's headline comparison points: binary designs keep SRAM,
 * unary designs drop it (Section V-B).
 */
inline SystemConfig
defaultSystem(const KernelConfig &kern, bool edge)
{
    const bool with_sram = !isUnary(kern.scheme);
    return edge ? edgeSystem(kern, with_sram)
                : cloudSystem(kern, with_sram);
}

} // namespace usys

#endif // USYS_WORKLOADS_SYSTEMS_H
