#include "workloads/layer_parse.h"

#include <sstream>

#include "workloads/alexnet.h"
#include "workloads/mlperf.h"

namespace usys {

namespace {

/** Split on a delimiter, dropping empty pieces. */
std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string piece;
    while (std::getline(ss, piece, delim))
        if (!piece.empty())
            out.push_back(piece);
    return out;
}

std::optional<std::vector<i64>>
parseInts(const std::string &csv)
{
    std::vector<i64> values;
    for (const auto &field : split(csv, ',')) {
        try {
            std::size_t used = 0;
            const long long v = std::stoll(field, &used);
            if (used != field.size() || v <= 0)
                return std::nullopt;
            values.push_back(v);
        } catch (...) {
            return std::nullopt;
        }
    }
    return values;
}

} // namespace

std::optional<GemmLayer>
parseLayerSpec(const std::string &spec)
{
    const auto colon = spec.find(':');
    if (colon == std::string::npos)
        return std::nullopt;
    const std::string kind = spec.substr(0, colon);
    const auto ints = parseInts(spec.substr(colon + 1));
    if (!ints)
        return std::nullopt;

    if (kind == "conv" && ints->size() == 7) {
        const auto &v = *ints;
        if (v[0] < v[3] || v[1] < v[4])
            return std::nullopt;
        return GemmLayer::conv(spec, int(v[0]), int(v[1]), int(v[2]),
                               int(v[3]), int(v[4]), int(v[5]),
                               int(v[6]));
    }
    if (kind == "matmul" && ints->size() == 3) {
        const auto &v = *ints;
        return GemmLayer::matmul(spec, int(v[0]), int(v[1]), int(v[2]));
    }
    return std::nullopt;
}

std::vector<GemmLayer>
parseLayerList(const std::string &specs)
{
    std::vector<GemmLayer> layers;
    for (const auto &spec : split(specs, ';')) {
        if (spec == "alexnet") {
            for (auto &layer : alexnetLayers())
                layers.push_back(std::move(layer));
            continue;
        }
        if (spec == "mlperf") {
            for (auto &layer : mlperfLayers())
                layers.push_back(std::move(layer));
            continue;
        }
        auto layer = parseLayerSpec(spec);
        fatalIf(!layer, "unparseable layer spec: " + spec);
        layers.push_back(std::move(*layer));
    }
    return layers;
}

} // namespace usys
