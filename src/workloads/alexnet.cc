#include "workloads/alexnet.h"

namespace usys {

std::vector<GemmLayer>
alexnetLayers()
{
    std::vector<GemmLayer> layers;
    // 227x227x3 input; pooling between stages is not a GEMM and is
    // reflected only in the next layer's input size.
    layers.push_back(GemmLayer::conv("Conv1", 227, 227, 3, 11, 11, 4, 96));
    layers.push_back(GemmLayer::conv("Conv2", 31, 31, 96, 5, 5, 1, 256));
    layers.push_back(GemmLayer::conv("Conv3", 15, 15, 256, 3, 3, 1, 384));
    layers.push_back(GemmLayer::conv("Conv4", 15, 15, 384, 3, 3, 1, 384));
    layers.push_back(GemmLayer::conv("Conv5", 15, 15, 384, 3, 3, 1, 256));
    layers.push_back(GemmLayer::matmul("FC6", 1, 9216, 4096));
    layers.push_back(GemmLayer::matmul("FC7", 1, 4096, 4096));
    layers.push_back(GemmLayer::matmul("FC8", 1, 4096, 1000));
    return layers;
}

} // namespace usys
