/**
 * @file
 * Textual GEMM layer specifications for the CLI tool and config files.
 *
 * Grammar:
 *   conv:IH,IW,IC,WH,WW,S,OC     e.g. conv:31,31,96,5,5,1,256
 *   matmul:M,K,N                 e.g. matmul:1,9216,4096
 *   alexnet                      the 8 AlexNet layers
 *   mlperf                       the full MLPerf-like suite
 * Multiple specs separated by ';'.
 */

#ifndef USYS_WORKLOADS_LAYER_PARSE_H
#define USYS_WORKLOADS_LAYER_PARSE_H

#include <optional>
#include <string>
#include <vector>

#include "sched/layer.h"

namespace usys {

/** Parse one spec; std::nullopt on malformed input. */
std::optional<GemmLayer> parseLayerSpec(const std::string &spec);

/** Parse a ';'-separated list, expanding the named workloads. */
std::vector<GemmLayer> parseLayerList(const std::string &specs);

} // namespace usys

#endif // USYS_WORKLOADS_LAYER_PARSE_H
