#include "sched/simulator.h"

#include <algorithm>
#include <cmath>

#include "common/cli.h"
#include "common/event_trace.h"
#include "common/executor.h"
#include "common/profiler.h"
#include "common/stats_registry.h"

namespace usys {

LayerStats
computeLayerStats(const SystemConfig &sys, const GemmLayer &layer)
{
    layer.check();
    LayerStats s;
    s.tiling = tileLayer(sys.array, layer);
    s.compute_cycles = s.tiling.compute_cycles;

    const u64 in_b = u64(sys.elemBytes());
    const u64 out_b = u64(sys.outBytes());
    const i64 rows = sys.array.rows;
    const i64 cols = sys.array.cols;

    // ReLU-induced activation sparsity: the zero-stream-skipping
    // schemes neither energize MAC slots for zero activations nor
    // re-stream their bytes (zero-run compression on the im2col
    // stream). uGEMM-H is carved out — its bipolar bias makes zero
    // operands cost full streams. 0 leaves every number unchanged.
    const Scheme sch = sys.array.kernel.scheme;
    const double zskip_frac =
        (sparseEnabled() && zeroSkipEnabled() && isUnary(sch) &&
         sch != Scheme::UgemmHybrid)
            ? layer.act_sparsity
            : 0.0;
    s.sparsity_frac = zskip_frac;
    const auto derate = [&](u64 bytes) {
        return u64(std::llround(double(bytes) * (1.0 - zskip_frac)));
    };

    // --- Array-interface traffic -------------------------------------
    // Weights: one padded R x C tile per fold, streamed exactly once
    // (weight stationary).
    s.array_bytes[VarWeight] =
        u64(s.tiling.folds) * rows * cols * in_b;
    // IFM: every fold streams M rows of R elements from the left edge
    // (the im2col expansion; the same input element re-enters once per
    // N-fold and once per window position).
    s.array_bytes[VarIfm] =
        derate(u64(s.tiling.folds) * u64(s.tiling.m) * rows * in_b);
    // OFM: partial sums across K folds stay in the (unevaluated) edge
    // accumulators (Section IV); final outputs leave once.
    s.array_bytes[VarOfm] =
        u64(layer.ofmElems()) * out_b;

    // --- DRAM traffic -------------------------------------------------
    const u64 unique_w = u64(layer.weightElems()) * in_b;
    const u64 unique_i = u64(layer.ifmElems()) * in_b;
    const u64 unique_o = u64(layer.ofmElems()) * out_b;
    if (sys.sram.present) {
        // Weight stationarity reads every weight exactly once from DRAM.
        s.dram_bytes[VarWeight] = unique_w;
        // IFM: one cold pass if it fits the buffer, otherwise each
        // N-fold group re-streams it.
        s.dram_bytes[VarIfm] =
            derate(unique_i <= sys.sram.bytes
                       ? unique_i
                       : unique_i * u64(s.tiling.folds_n));
        s.dram_bytes[VarOfm] = unique_o;
    } else {
        // Crawling bytes: the array interfaces feed straight from DRAM.
        s.dram_bytes[VarWeight] = s.array_bytes[VarWeight];
        s.dram_bytes[VarIfm] = s.array_bytes[VarIfm];
        s.dram_bytes[VarOfm] = s.array_bytes[VarOfm];
    }

    for (int v = 0; v < NumVars; ++v)
        s.dram_total_bytes += s.dram_bytes[v];
    if (sys.sram.present) {
        // SRAM sees the array-side traffic plus the DRAM fill traffic.
        for (int v = 0; v < NumVars; ++v)
            s.sram_total_bytes += s.array_bytes[v] + s.dram_bytes[v];
    }

    // --- Contention (per-fold phase granularity) -----------------------
    // Each fold has a weight-preload phase and a streaming phase; the
    // array-side memory (SRAM if present, DRAM otherwise) must sustain
    // each phase's demand, and with SRAM present the DRAM must deliver
    // the fold's share of off-chip traffic within the fold (double
    // buffering overlaps the prefetch with compute).
    const double dram_bpc = sys.dram.bytesPerCycle(sys.freq_ghz);
    const double array_bpc =
        sys.sram.present ? sys.sram.bytesPerCycle() : dram_bpc;

    const double folds = double(s.tiling.folds);
    const double w_tile_bytes = double(rows) * cols * in_b;
    const double i_fold_bytes =
        double(s.tiling.m) * rows * in_b * (1.0 - zskip_frac);
    const double o_fold_bytes = double(s.array_bytes[VarOfm]) / folds;

    const double preload_ideal = double(rows);
    const double stream_ideal =
        double(s.tiling.fold_cycles) - preload_ideal;

    double preload = std::max(preload_ideal, w_tile_bytes / array_bpc);
    double stream = std::max(stream_ideal,
                             (i_fold_bytes + o_fold_bytes) / array_bpc);
    double fold_cycles = preload + stream;
    if (sys.sram.present) {
        // DRAM fill traffic for one fold must fit within the fold.
        const double dram_fold_bytes =
            double(s.dram_total_bytes) / folds;
        fold_cycles =
            std::max(fold_cycles, dram_fold_bytes / dram_bpc);
    }

    s.total_cycles = Cycles(std::llround(fold_cycles * folds));
    s.overhead_pct =
        100.0 * (double(s.total_cycles) / double(s.compute_cycles) - 1.0);
    s.runtime_s = double(s.total_cycles) / (sys.freq_ghz * 1e9);

    s.sram_bw_gbps = double(s.sram_total_bytes) / s.runtime_s * 1e-9;
    s.dram_bw_gbps = double(s.dram_total_bytes) / s.runtime_s * 1e-9;

    // A zero activation's whole stream window is gated: no BSG words,
    // no comparator toggles, no OREG increments in any column it feeds.
    s.active_mac_slots = derate(u64(s.tiling.folds) * rows * cols *
                                u64(s.tiling.m));
    s.throughput_gmacs = double(layer.macs()) / s.runtime_s * 1e-9;
    s.gemm_per_s = 1.0 / s.runtime_s;

    return s;
}

namespace {

/** The registry/trace side effects of one simulateLayer() call. */
void
recordLayerObservability(const SystemConfig &sys, const GemmLayer &layer,
                         const LayerStats &s)
{
    StatsRegistry &reg = statsRegistry();
    ++reg.counter("sim.roofline.layers",
                  "layer simulations (analytic roofline)");
    reg.counter("sim.roofline.compute_cycles",
                "contention-free cycles, summed") += s.compute_cycles;
    reg.counter("sim.roofline.stall_cycles",
                "memory stall cycles, summed") +=
        s.total_cycles - s.compute_cycles;
    reg.counter("sim.roofline.dram_bytes", "DRAM traffic, summed") +=
        s.dram_total_bytes;
    reg.counter("sim.roofline.sram_bytes", "SRAM traffic, summed") +=
        s.sram_total_bytes;

    EventTrace &trace = EventTrace::global();
    if (trace.enabled()) {
        // One event per layer on the candidate's own track; the track
        // cursor strings successive layers into a device timeline.
        const int tid =
            trace.track("sim " + sys.array.kernel.name() +
                        (sys.sram.present ? "+sram" : ""));
        const double dur_us = s.runtime_s * 1e6;
        const double start_us = trace.advance(tid, dur_us);
        trace.complete(tid, layer.name, "layer", start_us, dur_us,
                       {{"compute_cycles", double(s.compute_cycles)},
                        {"total_cycles", double(s.total_cycles)},
                        {"dram_bytes", double(s.dram_total_bytes)},
                        {"overhead_pct", s.overhead_pct}});
    }
}

} // namespace

LayerStats
simulateLayer(const SystemConfig &sys, const GemmLayer &layer)
{
    USYS_PROF_SCOPE("sim.layer");
    LayerStats s = computeLayerStats(sys, layer);
    recordLayerObservability(sys, layer, s);
    return s;
}

std::vector<LayerStats>
simulateLayerBatch(const std::vector<LayerJob> &jobs)
{
    USYS_PROF_SCOPE("sim.layer_batch");
    std::vector<LayerStats> out(jobs.size());
    if (packedEngineEnabled() && jobs.size() > 1) {
        // Pure math in parallel; observability committed serially in job
        // order so stats/trace dumps match the serial loop byte for byte.
        parallelFor(0, jobs.size(), [&](u64 i) {
            USYS_PROF_SCOPE("sim.layer");
            out[i] = computeLayerStats(jobs[i].sys, jobs[i].layer);
        });
        for (std::size_t i = 0; i < jobs.size(); ++i)
            recordLayerObservability(jobs[i].sys, jobs[i].layer, out[i]);
    } else {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            out[i] = simulateLayer(jobs[i].sys, jobs[i].layer);
    }
    return out;
}

void
recordLayerStats(StatsRegistry &reg, const std::string &prefix,
                 const SystemConfig &sys, const LayerStats &s)
{
    reg.counter(prefix + ".compute_cycles", "contention-free cycles")
        .set(s.compute_cycles);
    reg.counter(prefix + ".total_cycles", "cycles incl. memory stalls")
        .set(s.total_cycles);
    reg.counter(prefix + ".stall_cycles", "memory stall cycles")
        .set(s.total_cycles - s.compute_cycles);
    reg.counter(prefix + ".dram_bytes", "DRAM traffic").
        set(s.dram_total_bytes);
    reg.counter(prefix + ".sram_bytes", "SRAM traffic")
        .set(s.sram_total_bytes);
    reg.scalar(prefix + ".dram_energy_pj",
               "DRAM dynamic access energy")
        .set(double(s.dram_total_bytes) * sys.dram.pj_per_byte);
    reg.scalar(prefix + ".runtime_s", "layer runtime").set(s.runtime_s);
    reg.scalar(prefix + ".overhead_pct", "memory-contention overhead")
        .set(s.overhead_pct);
    reg.scalar(prefix + ".utilization", "MAC-slot utilization")
        .set(s.tiling.utilization);
    reg.scalar(prefix + ".throughput_gmacs", "real MACs per second, G")
        .set(s.throughput_gmacs);
    // Only on sparsity-modeled runs, so dense dumps stay unchanged.
    if (s.sparsity_frac > 0.0)
        reg.scalar(prefix + ".sparsity_frac",
                   "activation fraction gated off by zero skipping")
            .set(s.sparsity_frac);
}

} // namespace usys
