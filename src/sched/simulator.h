/**
 * @file
 * uSystolic-Sim: layer-level performance simulator (Figure 8 widget).
 *
 * Adapted from the SCALE-Sim methodology: weight-stationary tiling
 * produces exact contention-free cycle counts (validated against the
 * bit-level array simulator), per-interface traffic is derived from the
 * fold schedule, and memory contention is applied as a roofline over the
 * SRAM and DRAM sustained bandwidths — the analytic equivalent of
 * SCALE-Sim's trace-based stall accounting. Supports all five computing
 * schemes, both bitwidths, and SRAM-present/absent memory hierarchies.
 */

#ifndef USYS_SCHED_SIMULATOR_H
#define USYS_SCHED_SIMULATOR_H

#include <array>
#include <vector>

#include "common/types.h"
#include "arch/array.h"
#include "mem/dram.h"
#include "mem/sram.h"
#include "sched/layer.h"
#include "sched/tiling.h"

namespace usys {

/** The three GEMM variables (Table II). */
enum GemmVar
{
    VarWeight = 0,
    VarIfm = 1,
    VarOfm = 2,
    NumVars = 3,
};

/** Full system configuration: array + clock + memory hierarchy. */
struct SystemConfig
{
    ArrayConfig array;
    double freq_ghz = 0.4; // 400 MHz synthesis target
    SramConfig sram;       // per-variable buffer (3 instances)
    DramConfig dram = ddr3Chip();

    /** Bytes of one input/weight element. */
    int elemBytes() const { return (array.kernel.bits + 7) / 8; }

    /**
     * Bytes of one output element: binary schemes produce 2N-bit
     * outputs; uSystolic's reduced-resolution accumulation keeps N bits
     * (Section III-A).
     */
    int
    outBytes() const
    {
        // The rate-counting weight-BSG schemes use uSystolic's reduced
        // N-bit accumulation; the exact schemes (binary, tubGEMM,
        // tuGEMM) write full 2N-bit products.
        return hasWeightBsg(array.kernel.scheme) ? elemBytes()
                                                 : 2 * elemBytes();
    }
};

/** Per-layer simulation results. */
struct LayerStats
{
    Tiling tiling;
    Cycles compute_cycles = 0; // contention-free
    Cycles total_cycles = 0;   // with memory stalls
    double runtime_s = 0.0;
    double overhead_pct = 0.0; // memory-contention runtime overhead

    // Array-interface traffic per variable (bytes). Equals SRAM traffic
    // when SRAM is present; goes straight to DRAM otherwise.
    std::array<u64, NumVars> array_bytes{};
    // DRAM traffic per variable (bytes).
    std::array<u64, NumVars> dram_bytes{};

    u64 sram_total_bytes = 0;
    u64 dram_total_bytes = 0;
    double sram_bw_gbps = 0.0; // achieved, averaged over runtime
    double dram_bw_gbps = 0.0;

    u64 active_mac_slots = 0;  // energized MAC slots (sparsity-gated)
    double sparsity_frac = 0.0;    // activation fraction gated off
    double throughput_gmacs = 0.0; // real MACs / runtime
    double gemm_per_s = 0.0;       // layer executions per second
};

/**
 * Pure roofline computation behind simulateLayer(): no stats-registry or
 * event-trace side effects, so it is safe to call from worker threads.
 */
LayerStats computeLayerStats(const SystemConfig &sys,
                             const GemmLayer &layer);

/** Simulate one GEMM layer on the configured system (and record it). */
LayerStats simulateLayer(const SystemConfig &sys, const GemmLayer &layer);

/** One (system, layer) point of a batched sweep. */
struct LayerJob
{
    SystemConfig sys;
    GemmLayer layer;
};

/**
 * Simulate a batch of independent layer jobs — equivalent to calling
 * simulateLayer() in a loop over `jobs`, including the order of every
 * stats-registry update and trace event.
 *
 * With the packed engine enabled (see packedEngineEnabled()) the pure
 * roofline math fans out over parallelFor; observability is then
 * committed serially in job order, so dumps stay byte-identical to the
 * serial path (and across repeated parallel runs).
 */
std::vector<LayerStats> simulateLayerBatch(const std::vector<LayerJob> &jobs);

class StatsRegistry;

/**
 * Register one layer's roofline results as named stats under `prefix`
 * (e.g. "sim.ur.layer3"): compute/stall/total cycles, per-interface
 * traffic, DRAM energy, runtime, utilization.
 */
void recordLayerStats(StatsRegistry &reg, const std::string &prefix,
                      const SystemConfig &sys, const LayerStats &stats);

} // namespace usys

#endif // USYS_SCHED_SIMULATOR_H
