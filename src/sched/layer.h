/**
 * @file
 * GEMM layer description unifying matrix convolution and matrix
 * multiplication (Table II of the paper).
 *
 * Both operation types reduce to an output (M x N) = input (M x K) x
 * weight (K x N) GEMM under the im2col view:
 *   M = OH * OW, K = WH * WW * IC, N = OC.
 *
 * Matrix multiplication A (M x K) x B (K x N) is encoded as a 1x1
 * convolution with IH = M, IW = 1, IC = K, OC = N (the standard
 * SCALE-Sim/ARM encoding): every formula below then applies uniformly to
 * both types. A fully-connected layer on one sample is the M = 1 case.
 */

#ifndef USYS_SCHED_LAYER_H
#define USYS_SCHED_LAYER_H

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace usys {

/** GEMM operation type (Table II). */
enum class GemmType
{
    Convolution,
    MatMul,
};

/** One GEMM layer in the Table II parameterization. */
struct GemmLayer
{
    std::string name;
    GemmType type = GemmType::Convolution;
    int ih = 1, iw = 1, ic = 1; // input feature map height/width/channels
    int wh = 1, ww = 1;         // weight window
    int stride = 1;
    int oc = 1;                 // output channels

    /**
     * Fraction of this layer's input activations that are zero
     * (ReLU-induced; measured or assumed). Consumed by the roofline
     * model: the zero-stream-skipping schemes neither energize MAC
     * slots for zero activations nor re-stream their bytes. 0 models a
     * dense layer (the default — existing dumps are unchanged).
     */
    double act_sparsity = 0.0;

    /** Output feature-map height (OH = (IH - WH) / S + 1). */
    int oh() const { return (ih - wh) / stride + 1; }
    /** Output feature-map width. */
    int ow() const { return (iw - ww) / stride + 1; }

    /** GEMM output rows M = OH * OW. */
    i64 m() const { return i64(oh()) * ow(); }
    /** GEMM reduction dimension K = WH * WW * IC. */
    i64 k() const { return i64(wh) * ww * ic; }
    /** GEMM output columns N = OC. */
    i64 n() const { return oc; }
    /** Multiply-accumulate count M * K * N. */
    i64 macs() const { return m() * k() * n(); }

    /** Unique element counts of the three variables. */
    i64 ifmElems() const { return i64(ih) * iw * ic; }
    i64 weightElems() const { return k() * n(); }
    i64 ofmElems() const { return m() * n(); }

    void
    check() const
    {
        fatalIf(ih < wh || iw < ww, "GemmLayer: window exceeds input");
        fatalIf(stride < 1, "GemmLayer: bad stride");
        fatalIf(ic < 1 || oc < 1, "GemmLayer: bad channel counts");
        fatalIf(act_sparsity < 0.0 || act_sparsity > 1.0,
                "GemmLayer: act_sparsity outside [0, 1]");
        if (type == GemmType::MatMul) {
            fatalIf(wh != 1 || ww != 1 || iw != 1 || stride != 1,
                    "GemmLayer: matmul uses the 1x1-conv encoding");
        }
    }

    /** Convolution layer constructor. */
    static GemmLayer
    conv(std::string name, int ih, int iw, int ic, int wh, int ww,
         int stride, int oc)
    {
        GemmLayer l;
        l.name = std::move(name);
        l.type = GemmType::Convolution;
        l.ih = ih;
        l.iw = iw;
        l.ic = ic;
        l.wh = wh;
        l.ww = ww;
        l.stride = stride;
        l.oc = oc;
        l.check();
        return l;
    }

    /**
     * Matrix multiply: output (rows x cols) = input (rows x inner) x
     * weight (inner x cols). A single-sample FC layer is rows = 1.
     */
    static GemmLayer
    matmul(std::string name, int rows, int inner, int cols)
    {
        GemmLayer l;
        l.name = std::move(name);
        l.type = GemmType::MatMul;
        l.ih = rows;
        l.iw = 1;
        l.ic = inner;
        l.wh = 1;
        l.ww = 1;
        l.stride = 1;
        l.oc = cols;
        l.check();
        return l;
    }
};

} // namespace usys

#endif // USYS_SCHED_LAYER_H
