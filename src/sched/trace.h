/**
 * @file
 * Trace-driven memory simulation (uSystolic-Sim's trace profiling path).
 *
 * Where sched/simulator.cc applies an analytic roofline, the trace engine
 * replays the weight-stationary schedule request-by-request against the
 * cycle-level banked SRAM and DDR3 devices: weight-tile rows issue one
 * per preload beat, IFM rows one per MAC interval, OFM rows at the
 * drains, and (with SRAM present) the next fold's DRAM fill overlaps the
 * current fold's compute, exactly like the double-buffered hardware.
 * Tests validate the roofline against this engine.
 */

#ifndef USYS_SCHED_TRACE_H
#define USYS_SCHED_TRACE_H

#include "common/types.h"
#include "sched/simulator.h"

namespace usys {

/** Results of the trace-driven simulation of one layer. */
struct TraceStats
{
    Cycles compute_cycles = 0; // contention-free schedule
    Cycles total_cycles = 0;   // with per-request memory stalls
    Cycles stall_cycles = 0;
    double overhead_pct = 0.0;
    double runtime_s = 0.0;

    u64 dram_bytes = 0;
    u64 dram_activations = 0;  // DDR3 page opens
    double dram_energy_pj = 0.0;
    double dram_bw_gbps = 0.0;

    u64 sram_accesses = 0;
    u64 sram_conflict_cycles = 0;
};

/** Replay one layer's schedule through the cycle-level memory devices. */
TraceStats traceLayer(const SystemConfig &sys, const GemmLayer &layer);

/**
 * Register one layer's trace-engine results as named stats under
 * `prefix` (e.g. "sim.trace.ur.layer3").
 */
void recordTraceStats(StatsRegistry &reg, const std::string &prefix,
                      const TraceStats &stats);

} // namespace usys

#endif // USYS_SCHED_TRACE_H
