#include "sched/trace.h"

#include <algorithm>

#include "common/event_trace.h"
#include "common/stats_registry.h"
#include "mem/dram_timing.h"
#include "mem/sram_timing.h"
#include "sched/tiling.h"

namespace usys {

namespace {

/**
 * Flat address map: [weights | IFM (im2col space) | OFM]. Weights are
 * laid out fold-major (each R x C tile contiguous in its streaming
 * order) — the layout a systolic-array compiler emits so weight preload
 * is a sequential DRAM burst.
 */
struct AddressMap
{
    u64 w_base = 0;
    u64 i_base = 0;
    u64 o_base = 0;

    AddressMap(const GemmLayer &layer, u64 in_b)
    {
        w_base = 0;
        i_base = u64(layer.weightElems()) * in_b;
        o_base = i_base + u64(layer.m() * layer.k()) * in_b;
    }
};

/** Issue a contiguous run as page-bounded bursts. */
Cycles
issueRun(DramDevice &dram, u64 addr, u64 bytes, Cycles now)
{
    Cycles done = now;
    while (bytes > 0) {
        const u64 chunk =
            std::min<u64>(bytes, dram.pageBytes() -
                                     addr % dram.pageBytes());
        done = dram.access(addr, u32(chunk), now);
        addr += chunk;
        bytes -= chunk;
    }
    return done;
}

} // namespace

TraceStats
traceLayer(const SystemConfig &sys, const GemmLayer &layer)
{
    layer.check();
    const Tiling tiling = tileLayer(sys.array, layer);
    const u64 in_b = u64(sys.elemBytes());
    const u64 out_b = u64(sys.outBytes());
    const i64 rows = sys.array.rows;
    const i64 cols = sys.array.cols;
    const u32 mac = sys.array.kernel.macCycles();
    const i64 k_dim = tiling.k;
    const i64 n_dim = tiling.n;
    const i64 m_rows = tiling.m;

    const AddressMap map(layer, in_b);
    DramDevice dram(sys.dram, sys.freq_ghz);
    SramDevice sram_w(sys.sram), sram_i(sys.sram), sram_o(sys.sram);
    const bool has_sram = sys.sram.present;
    const bool ifm_fits =
        u64(layer.ifmElems()) * in_b <= sys.sram.bytes;

    TraceStats stats;
    stats.compute_cycles = tiling.compute_cycles;

    // Per-fold event emission: fold timestamps are layer-local cycles,
    // offset by the track cursor so successive layers line up
    // back-to-back on one timeline. Cycles map to trace microseconds
    // through the accelerator clock.
    EventTrace &evtrace = EventTrace::global();
    const bool tracing = evtrace.enabled();
    const double cyc_us = 1.0 / (sys.freq_ghz * 1e3);
    int trace_tid = -1;
    double trace_base_us = 0.0;
    if (tracing) {
        trace_tid = evtrace.track("trace " + sys.array.kernel.name() +
                                  (has_sram ? "+sram" : ""));
        trace_base_us = evtrace.cursor(trace_tid);
    }

    Cycles t = 0;
    Cycles prefetch_done = 0; // DRAM delivery of the upcoming fold
    bool ifm_resident = false;

    for (i64 fn = 0; fn < tiling.folds_n; ++fn) {
        for (i64 fk = 0; fk < tiling.folds_k; ++fk) {
            const Cycles fold_start = std::max(t, prefetch_done);
            const u64 k0 = u64(fk) * rows;
            const u64 n0 = u64(fn) * cols;

            // --- DRAM fill for this fold (issued here; with SRAM the
            // double buffer lets it overlap the *previous* fold, which
            // the prefetch_done handoff models). Weight tiles are always
            // cold; the IFM is refetched per N-fold group unless it fits.
            Cycles fill_done = fold_start;
            {
                // Fold-major weight layout: one sequential tile burst.
                const u64 fold_idx = u64(fn) * u64(tiling.folds_k) +
                                     u64(fk);
                const u64 tile_bytes = u64(rows) * u64(cols) * in_b;
                const u64 addr = map.w_base + fold_idx * tile_bytes;
                fill_done = std::max(
                    fill_done,
                    issueRun(dram, addr, tile_bytes, fold_start));
            }
            const bool need_ifm_fill = !has_sram ||
                                       !ifm_fits || !ifm_resident;
            if (has_sram && need_ifm_fill && fk == 0) {
                // Stream the (unique) IFM into the buffer once per
                // N-fold group.
                const u64 bytes = u64(layer.ifmElems()) * in_b;
                fill_done = std::max(
                    fill_done,
                    issueRun(dram, map.i_base, bytes, fold_start));
                ifm_resident = ifm_fits;
            }

            // --- Array-side schedule: weight preload then skewed
            // streaming, one request per row at its scheduled beat.
            Cycles data_done = fold_start;
            for (i64 k = 0; k < rows; ++k) {
                const Cycles beat = fold_start + Cycles(k);
                if (has_sram) {
                    data_done = std::max(
                        data_done,
                        sram_w.access((k0 + k) * u64(n_dim) * in_b,
                                      beat));
                }
            }
            const Cycles stream_start = fold_start + Cycles(rows);
            for (i64 m = 0; m < m_rows; ++m) {
                const Cycles beat = stream_start + Cycles(m) * mac;
                const u64 addr =
                    map.i_base + (u64(m) * u64(k_dim) + k0) * in_b;
                const u64 len = std::min<u64>(u64(rows),
                                              u64(k_dim) - k0) * in_b;
                if (has_sram) {
                    data_done = std::max(data_done,
                                         sram_i.access(addr, beat));
                } else {
                    data_done = std::max(
                        data_done, issueRun(dram, addr, len, beat));
                }
            }
            // OFM drains on the final K-fold.
            if (fk == tiling.folds_k - 1) {
                for (i64 m = 0; m < m_rows; ++m) {
                    const Cycles beat =
                        stream_start + Cycles(m + rows - 1) * mac;
                    const u64 addr =
                        map.o_base + (u64(m) * u64(n_dim) + n0) * out_b;
                    const u64 len =
                        std::min<u64>(u64(cols), u64(n_dim) - n0) *
                        out_b;
                    if (has_sram) {
                        data_done = std::max(data_done,
                                             sram_o.access(addr, beat));
                    } else {
                        data_done = std::max(
                            data_done, issueRun(dram, addr, len, beat));
                    }
                }
            }

            const Cycles compute_done =
                fold_start + tiling.fold_cycles;
            t = std::max(compute_done, data_done);
            // With SRAM, the fill for the next fold overlaps this one;
            // without it, the fill *was* the array-side traffic.
            prefetch_done = has_sram ? fill_done : t;

            if (tracing) {
                evtrace.complete(
                    trace_tid,
                    "fold k" + std::to_string(fk) + " n" +
                        std::to_string(fn),
                    "fold", trace_base_us + double(fold_start) * cyc_us,
                    double(t - fold_start) * cyc_us,
                    {{"stall_cycles", double(t - compute_done)},
                     {"fill_cycles", double(fill_done - fold_start)}});
            }
        }
    }

    stats.total_cycles = std::max<Cycles>(t, stats.compute_cycles);
    stats.stall_cycles = stats.total_cycles - stats.compute_cycles;
    stats.overhead_pct = 100.0 * double(stats.stall_cycles) /
                         double(stats.compute_cycles);
    stats.runtime_s = double(stats.total_cycles) / (sys.freq_ghz * 1e9);
    stats.dram_bytes = dram.bytesTransferred();
    stats.dram_activations = dram.activations();
    stats.dram_energy_pj = dram.energyPj();
    stats.dram_bw_gbps =
        double(stats.dram_bytes) / stats.runtime_s * 1e-9;
    stats.sram_accesses =
        sram_w.accesses() + sram_i.accesses() + sram_o.accesses();
    stats.sram_conflict_cycles = sram_w.conflictCycles() +
                                 sram_i.conflictCycles() +
                                 sram_o.conflictCycles();

    // --- Observability ------------------------------------------------
    StatsRegistry &reg = statsRegistry();
    ++reg.counter("sim.trace.layers",
                  "layer simulations (trace-driven engine)");
    reg.counter("sim.trace.compute_cycles",
                "contention-free cycles, summed") += stats.compute_cycles;
    reg.counter("sim.trace.stall_cycles",
                "per-request memory stall cycles, summed") +=
        stats.stall_cycles;
    dram.recordStats(reg, "mem.dram");
    reg.counter("mem.sram.accesses", "banked-SRAM accesses") +=
        stats.sram_accesses;
    reg.counter("mem.sram.conflict_cycles", "bank-conflict stalls") +=
        stats.sram_conflict_cycles;
    if (tracing)
        evtrace.advance(trace_tid, double(stats.total_cycles) * cyc_us);
    return stats;
}

void
recordTraceStats(StatsRegistry &reg, const std::string &prefix,
                 const TraceStats &stats)
{
    reg.counter(prefix + ".compute_cycles", "contention-free cycles")
        .set(stats.compute_cycles);
    reg.counter(prefix + ".total_cycles", "cycles incl. memory stalls")
        .set(stats.total_cycles);
    reg.counter(prefix + ".stall_cycles", "memory stall cycles")
        .set(stats.stall_cycles);
    reg.counter(prefix + ".dram_bytes", "DRAM traffic")
        .set(stats.dram_bytes);
    reg.counter(prefix + ".dram_activations", "DDR3 page opens")
        .set(stats.dram_activations);
    reg.scalar(prefix + ".dram_energy_pj", "DRAM dynamic energy")
        .set(stats.dram_energy_pj);
    reg.counter(prefix + ".sram_accesses", "banked-SRAM accesses")
        .set(stats.sram_accesses);
    reg.counter(prefix + ".sram_conflict_cycles", "bank-conflict stalls")
        .set(stats.sram_conflict_cycles);
    reg.scalar(prefix + ".runtime_s", "layer runtime")
        .set(stats.runtime_s);
}

} // namespace usys
