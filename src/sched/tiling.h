/**
 * @file
 * Weight-stationary tiling of a GEMM layer onto an R x C array.
 *
 * K folds over array rows, N folds over array columns; each fold streams
 * all M input rows. Fold latency matches the cycle-level SystolicArray
 * (tests assert this), so the performance simulator and the bit-level
 * simulator share one timing model.
 */

#ifndef USYS_SCHED_TILING_H
#define USYS_SCHED_TILING_H

#include "common/types.h"
#include "arch/array.h"
#include "sched/layer.h"

namespace usys {

/** Static tiling summary of one layer on one array. */
struct Tiling
{
    i64 m = 0;          // streamed input rows per fold
    i64 k = 0;          // reduction dimension
    i64 n = 0;          // output columns
    i64 folds_k = 0;    // ceil(K / R)
    i64 folds_n = 0;    // ceil(N / C)
    i64 folds = 0;
    Cycles fold_cycles = 0;    // latency of one fold
    Cycles compute_cycles = 0; // contention-free layer latency
    double utilization = 0.0;  // real MACs / provisioned PE-MAC slots

    /**
     * Optimistic latency if each fold's weight preload is overlapped
     * with the previous fold's streaming through a double-buffered
     * weight path (a TPU-style optimization neither the paper nor
     * SCALE-Sim applies; quantified in the ablation bench).
     */
    Cycles pipelined_compute_cycles = 0;
};

/** Compute the weight-stationary tiling of `layer` on `array`. */
inline Tiling
tileLayer(const ArrayConfig &array, const GemmLayer &layer)
{
    Tiling t;
    t.m = layer.m();
    t.k = layer.k();
    t.n = layer.n();
    t.folds_k = (t.k + array.rows - 1) / array.rows;
    t.folds_n = (t.n + array.cols - 1) / array.cols;
    t.folds = t.folds_k * t.folds_n;

    SystolicArray sim(array);
    t.fold_cycles = sim.foldLatency(int(std::min<i64>(t.m, 1 << 30)));
    t.compute_cycles = u64(t.folds) * t.fold_cycles;
    // Overlapped preload pays the R-cycle weight load only once; every
    // later fold hides it under the previous fold's streaming (the
    // streaming phase is always >= R cycles for M >= 1).
    t.pipelined_compute_cycles =
        t.compute_cycles - u64(t.folds - 1) * u64(array.rows);

    const double provisioned =
        double(t.folds) * array.rows * array.cols * double(t.m);
    t.utilization =
        provisioned > 0 ? double(layer.macs()) / provisioned : 0.0;
    return t;
}

} // namespace usys

#endif // USYS_SCHED_TILING_H
