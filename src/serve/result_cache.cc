#include "serve/result_cache.h"

#include "common/checkpoint.h"
#include "common/logging.h"

namespace usys {

ResultCache::ResultCache(u64 budget_bytes, std::string checkpoint_path)
    : budget_bytes_(budget_bytes),
      checkpoint_path_(std::move(checkpoint_path))
{}

void
ResultCache::load()
{
    if (!enabled() || checkpoint_path_.empty())
        return;
    ShardCheckpoint cp(checkpoint_path_);
    cp.load();
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &kv : cp.entries()) {
        // Only structurally valid payloads are restored; anything else
        // (a truncated hand edit, a future format) is just recomputed.
        LayerStats probe;
        if (!unpackLayerStats(kv.second, probe)) {
            warn("result cache: skipping malformed entry for key '" +
                 kv.first + "'");
            continue;
        }
        lru_.push_front(kv.first);
        Entry e;
        e.packed = kv.second;
        e.lru_it = lru_.begin();
        const auto [it, fresh] = map_.emplace(kv.first, std::move(e));
        if (!fresh) {
            lru_.pop_front();
            continue;
        }
        stats_.bytes += entryBytes(kv.first, it->second);
        ++stats_.restored;
    }
    stats_.entries = map_.size();
    evictToBudget();
}

bool
ResultCache::find(const ServeJob &job, std::string *rendered)
{
    if (!enabled())
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(job.key);
    if (it == map_.end()) {
        ++stats_.misses;
        return false;
    }
    Entry &e = it->second;
    if (e.rendered.empty()) {
        // Restored entry: materialize the response fragment from the
        // persisted bit patterns. Deterministic rendering makes the
        // result byte-identical to the pre-restart response.
        LayerStats stats;
        if (!unpackLayerStats(e.packed, stats)) {
            ++stats_.misses;
            return false; // unreachable after load()'s probe; belt+braces
        }
        e.rendered = renderJobResult(job, stats);
        stats_.bytes += e.rendered.size();
    }
    lru_.splice(lru_.begin(), lru_, e.lru_it);
    *rendered = e.rendered;
    ++stats_.hits;
    // Materializing a render can push the total over budget; trim, but
    // never the entry just served (it is at the LRU front).
    evictToBudget();
    return true;
}

void
ResultCache::insert(const ServeJob &job, const LayerStats &stats,
                    const std::string &rendered)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(job.key);
    if (it != map_.end()) {
        stats_.bytes -= entryBytes(job.key, it->second);
        lru_.erase(it->second.lru_it);
        map_.erase(it);
    }
    lru_.push_front(job.key);
    Entry e;
    e.packed = packLayerStats(stats);
    e.rendered = rendered;
    e.lru_it = lru_.begin();
    const auto [nit, fresh] = map_.emplace(job.key, std::move(e));
    (void)fresh;
    stats_.bytes += entryBytes(job.key, nit->second);
    stats_.entries = map_.size();
    ++stats_.insertions;
    evictToBudget();
}

void
ResultCache::flush()
{
    if (!enabled() || checkpoint_path_.empty())
        return;
    std::map<std::string, std::string> entries;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &kv : map_)
            entries[kv.first] = kv.second.packed;
    }
    ShardCheckpoint cp(checkpoint_path_);
    cp.replaceAll(std::move(entries));
}

ResultCacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

u64
ResultCache::entryBytes(const std::string &key, const Entry &e) const
{
    return u64(key.size()) + e.packed.size() + e.rendered.size();
}

void
ResultCache::evictToBudget()
{
    while (stats_.bytes > budget_bytes_ && !lru_.empty()) {
        const std::string &victim = lru_.back();
        auto it = map_.find(victim);
        stats_.bytes -= entryBytes(victim, it->second);
        map_.erase(it);
        lru_.pop_back();
        ++stats_.evictions;
    }
    stats_.entries = map_.size();
}

} // namespace usys
