/**
 * @file
 * Serve protocol: request decoding, canonicalization, and rendering.
 *
 * Every message on the wire is one length-prefixed JSON frame
 * (socket.h). Requests carry an `op`:
 *
 *   ping      liveness check
 *   layer     simulate a layer-spec list on one system
 *   gemm      simulate a single M x K x N matmul (shorthand)
 *   sweep     layer-spec list x scheme list (the fig08-style grid)
 *   stats     daemon counters (requests, cache, batching)
 *   shutdown  acknowledge, then stop the daemon
 *
 * The compute ops expand into ServeJobs — one (system, layer) point
 * each, the cacheable unit. A job's canonical key is a fixed-order
 * rendering of every *effective* config field (defaults applied, so
 * explicitly sending a default yields the same key as omitting it);
 * doubles travel in the key as their packed IEEE-754 bit pattern, so
 * key equality is exactly config equality. The splitmix64 chain of the
 * key (hash.h) indexes the result cache; the key itself is stored for
 * collision safety and doubles as the checkpoint key (it never
 * contains tabs or newlines — enforced by construction, since client
 * layer names are sanitized).
 *
 * Responses are rendered with the deterministic JsonWriter in compact
 * mode: same stats in → same bytes out, which is what lets the cache
 * serve stored renders, and the e2e harness byte-compare daemon
 * responses against direct engine calls. A response never says whether
 * it was served from cache; the bytes must be indistinguishable.
 */

#ifndef USYS_SERVE_REQUEST_H
#define USYS_SERVE_REQUEST_H

#include <string>
#include <vector>

#include "common/types.h"
#include "sched/simulator.h"

namespace usys {

class JsonValue;

/** Decoded "system" object with all defaults applied. */
struct ServeSystemSpec
{
    std::string preset = "edge"; // edge | cloud
    Scheme scheme = Scheme::USystolicRate;
    int bits = 8;
    int et_bits = 0;
    int sram = -1;       // -1 auto (paper rule), 0 off, 1 on
    int rows = 0;        // 0 = preset shape
    int cols = 0;
    double freq_ghz = 0; // 0 = preset clock

    // Fault plan (all-zero rates = disabled, the default).
    u64 fault_seed = 0;
    FaultKind fault_kind = FaultKind::BitFlip;
    u32 burst_len = 4;
    FaultRates rates;
};

/** One cacheable (system, layer) simulation point. */
struct ServeJob
{
    ServeSystemSpec spec;
    GemmLayer layer;
    std::string key; // canonical key (also the checkpoint key)
    u64 hash = 0;    // splitmix64 chain of `key`
};

/** A decoded request frame. */
struct ServeRequest
{
    std::string op;            // validated: one of the six ops
    u64 id = 0;                // echoed in the response
    u64 deadline_ms = 0;       // compute deadline; 0 = daemon default
    std::vector<ServeJob> jobs; // compute ops only
};

/** Materialize the SystemConfig a spec describes. */
SystemConfig buildSystem(const ServeSystemSpec &spec);

/** Canonical key of one job (fixed field order, defaults applied). */
std::string canonicalJobKey(const ServeSystemSpec &spec,
                            const GemmLayer &layer);

/** Finish a ServeJob: fill key + hash from spec/layer. */
void finalizeJob(ServeJob &job);

/**
 * Decode one request frame. On failure returns false with a message
 * suitable for an error response (parse position, unknown op, bad
 * spec); `out` is left unspecified.
 */
bool decodeRequest(const std::string &payload, ServeRequest &out,
                   std::string &error);

// --- Result packing (cache persistence) ------------------------------

/**
 * Pack a LayerStats into a checkpoint payload: 27 comma-joined fields,
 * each a 16-hex-digit bit pattern (ShardCheckpoint::packU64/packDouble),
 * so a persisted result restores bit-identically across restarts.
 */
std::string packLayerStats(const LayerStats &stats);

/** Reverse packLayerStats; false on malformed payload. */
bool unpackLayerStats(const std::string &payload, LayerStats &stats);

// --- Deterministic rendering -----------------------------------------

/** Compact JSON object for one job result (the cacheable fragment). */
std::string renderJobResult(const ServeJob &job, const LayerStats &stats);

/** {"id":N,"ok":true,"results":[...fragments...]} */
std::string renderResults(u64 id, const std::vector<std::string> &fragments);

/** {"id":N,"ok":true,"pong":true} */
std::string renderPong(u64 id);

/**
 * {"id":N,"ok":false,"error":"...","code":"bad_request","retriable":false}
 * Bad-request shorthand: the frame was understood but is invalid, and
 * resending it unchanged can never succeed.
 */
std::string renderError(u64 id, const std::string &message);

/**
 * The general structured error frame:
 * {"id":N,"ok":false,"error":msg,"code":code,"retriable":bool}.
 * `code` is a stable machine-readable tag (bad_request | overloaded |
 * deadline_exceeded); `retriable` tells clients whether backing off
 * and resending the identical request may succeed.
 */
std::string renderErrorCode(u64 id, const std::string &code,
                            const std::string &message, bool retriable);

} // namespace usys

#endif // USYS_SERVE_REQUEST_H
