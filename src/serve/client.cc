#include "serve/client.h"

#include "common/json.h"

namespace usys {

bool
ServeClient::connect(u16 port, std::string *error)
{
    sock_ = connectLoopback(port, error);
    return sock_.valid();
}

bool
ServeClient::call(const std::string &request, std::string *response)
{
    if (!sock_.valid())
        return false;
    if (!sock_.sendFrame(request))
        return false;
    return sock_.recvFrame(*response);
}

bool
ServeClient::ping(u64 id)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("op", "ping");
    w.field("id", id);
    w.endObject();
    std::string response;
    return call(w.str(), &response) &&
           response.find("\"pong\":true") != std::string::npos;
}

} // namespace usys
