#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/hash.h"
#include "common/json.h"

namespace usys {

namespace {

/** Delay before retry attempt `attempt` (1-based): equal-jitter over
 *  an exponentially growing, 10s-capped base. Deterministic in
 *  (seed, attempt) so tests replay identical schedules. */
u64
backoffDelayMs(const RetryPolicy &policy, u32 attempt)
{
    if (policy.backoff_ms == 0)
        return 0;
    const u32 shift = std::min(attempt - 1, 10u);
    const u64 d =
        std::min(policy.backoff_ms << shift, u64(10'000));
    const u64 jitter =
        hashMix(policy.jitter_seed ^ u64(attempt)) % (d / 2 + 1);
    return d / 2 + jitter;
}

} // namespace

bool
ServeClient::connect(u16 port, std::string *error)
{
    port_ = port;
    sock_ = connectLoopback(port, error);
    if (sock_.valid() && io_timeout_ms_ > 0)
        sock_.setIoTimeoutMs(io_timeout_ms_);
    return sock_.valid();
}

void
ServeClient::setIoTimeoutMs(u64 ms)
{
    io_timeout_ms_ = ms;
    if (sock_.valid() && ms > 0)
        sock_.setIoTimeoutMs(ms);
}

bool
ServeClient::call(const std::string &request, std::string *response)
{
    if (!sock_.valid())
        return false;
    if (!sock_.sendFrame(request))
        return false;
    return sock_.recvFrame(*response);
}

CallStatus
ServeClient::callRetry(const std::string &request, std::string *response,
                       const RetryPolicy &policy, std::string *error,
                       u32 *attempts_out)
{
    std::string last_error = "no attempt made";
    for (u32 attempt = 0; attempt <= policy.retries; ++attempt) {
        if (attempts_out)
            *attempts_out = attempt + 1;
        if (attempt > 0) {
            const u64 delay = backoffDelayMs(policy, attempt);
            if (delay > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
        }
        if (!sock_.valid()) {
            std::string conn_error;
            if (!connect(port_, &conn_error)) {
                // Daemon restarting or briefly out of fds: retriable.
                last_error = "connect: " + conn_error;
                continue;
            }
        }
        if (!call(request, response)) {
            // Transport failure mid-exchange; this connection is dead.
            // Requests are idempotent, so reconnect-and-resend is safe.
            last_error = "transport failure (connection lost)";
            sock_.close();
            continue;
        }
        if (response->find("\"ok\":true") != std::string::npos)
            return CallStatus::Ok;
        // Server said no. The daemon's compact rendering makes the
        // retriable flag a fixed byte pattern — no JSON parse needed.
        if (response->find("\"retriable\":true") != std::string::npos) {
            last_error = "server overloaded: " + *response;
            continue;
        }
        return CallStatus::ServerError;
    }
    if (error)
        *error = last_error;
    return CallStatus::Exhausted;
}

bool
ServeClient::ping(u64 id)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("op", "ping");
    w.field("id", id);
    w.endObject();
    std::string response;
    return call(w.str(), &response) &&
           response.find("\"pong\":true") != std::string::npos;
}

} // namespace usys
