#include "serve/request.h"

#include <algorithm>

#include "common/checkpoint.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/json_parse.h"
#include "workloads/layer_parse.h"
#include "workloads/systems.h"

namespace usys {

namespace {

/** Per-request expansion cap: a sweep grid larger than this is refused
 *  rather than simulated (a hostile frame must not pin the daemon). */
constexpr std::size_t kMaxJobsPerRequest = 4096;

bool
parseSchemeTag(const std::string &tag, Scheme &out)
{
    std::string t = tag;
    std::transform(t.begin(), t.end(), t.begin(), ::toupper);
    if (t == "BP") { out = Scheme::BinaryParallel; return true; }
    if (t == "BS") { out = Scheme::BinarySerial; return true; }
    if (t == "UR") { out = Scheme::USystolicRate; return true; }
    if (t == "UT") { out = Scheme::USystolicTemporal; return true; }
    if (t == "UG") { out = Scheme::UgemmHybrid; return true; }
    if (t == "TUB") { out = Scheme::TubGemm; return true; }
    if (t == "TU") { out = Scheme::TuGemm; return true; }
    return false;
}

bool
parseKindTag(const std::string &tag, FaultKind &out)
{
    if (tag == "flip") { out = FaultKind::BitFlip; return true; }
    if (tag == "sa0") { out = FaultKind::StuckAt0; return true; }
    if (tag == "sa1") { out = FaultKind::StuckAt1; return true; }
    if (tag == "burst") { out = FaultKind::Burst; return true; }
    return false;
}

/** Fault-plan check() mirror, as a non-fatal predicate. */
bool
validateSpec(const ServeSystemSpec &s, std::string &error)
{
    if (s.preset != "edge" && s.preset != "cloud") {
        error = "system.preset must be 'edge' or 'cloud'";
        return false;
    }
    if (s.bits < 2 || s.bits > 16) {
        error = "system.bits out of range [2, 16]";
        return false;
    }
    if (s.et_bits != 0 && (s.et_bits < 2 || s.et_bits > s.bits)) {
        error = "system.et_bits must be 0 or in [2, bits]";
        return false;
    }
    if (s.et_bits != 0 && s.scheme != Scheme::USystolicRate) {
        error = "system.et_bits requires scheme UR";
        return false;
    }
    if (s.rows < 0 || s.rows > 4096 || s.cols < 0 || s.cols > 4096) {
        error = "system.rows/cols out of range [0, 4096]";
        return false;
    }
    if (s.freq_ghz < 0.0 || s.freq_ghz > 100.0) {
        error = "system.freq_ghz out of range [0, 100]";
        return false;
    }
    const double rates[] = {s.rates.weight_reg, s.rates.activation_stream,
                            s.rates.weight_stream, s.rates.accumulator,
                            s.rates.dram_word};
    for (double r : rates) {
        if (!(r >= 0.0 && r <= 1.0)) {
            error = "fault rate outside [0, 1]";
            return false;
        }
    }
    if (s.burst_len < 1 || s.burst_len > 64) {
        error = "fault.burst_len out of range [1, 64]";
        return false;
    }
    return true;
}

/**
 * Decode the optional "system" object. Absent members keep defaults,
 * so a request spelling out the defaults decodes — and canonicalizes —
 * identically to one omitting them.
 */
bool
decodeSystemSpec(const JsonValue *obj, ServeSystemSpec &out,
                 std::string &error)
{
    if (obj) {
        if (!obj->isObject()) {
            error = "'system' must be an object";
            return false;
        }
        const std::string scheme = obj->getString("scheme", "UR");
        if (!parseSchemeTag(scheme, out.scheme)) {
            error = "unknown scheme '" + scheme +
                    "' (expected BP|BS|UR|UT|UG|TUB|TU)";
            return false;
        }
        out.preset = obj->getString("preset", out.preset);
        out.bits = int(obj->getInt("bits", out.bits));
        out.et_bits = int(obj->getInt("et_bits", out.et_bits));
        const std::string sram = obj->getString("sram", "auto");
        if (sram == "auto")
            out.sram = -1;
        else if (sram == "off")
            out.sram = 0;
        else if (sram == "on")
            out.sram = 1;
        else {
            error = "system.sram must be auto|on|off";
            return false;
        }
        out.rows = int(obj->getInt("rows", out.rows));
        out.cols = int(obj->getInt("cols", out.cols));
        out.freq_ghz = obj->getNumber("freq_ghz", out.freq_ghz);
        if (const JsonValue *flt = obj->find("fault")) {
            if (!flt->isObject()) {
                error = "'system.fault' must be an object";
                return false;
            }
            out.fault_seed = u64(flt->getInt("seed", 0));
            const std::string kind = flt->getString("kind", "flip");
            if (!parseKindTag(kind, out.fault_kind)) {
                error = "unknown fault kind '" + kind +
                        "' (expected flip|sa0|sa1|burst)";
                return false;
            }
            out.burst_len = u32(flt->getInt("burst_len", 4));
            out.rates.weight_reg = flt->getNumber("weight_reg", 0.0);
            out.rates.activation_stream =
                flt->getNumber("activation_stream", 0.0);
            out.rates.weight_stream = flt->getNumber("weight_stream", 0.0);
            out.rates.accumulator = flt->getNumber("accumulator", 0.0);
            out.rates.dram_word = flt->getNumber("dram_word", 0.0);
        }
    }
    return validateSpec(out, error);
}

/** Strip characters the canonical key / checkpoint format reserves. */
std::string
sanitizeName(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (c == '\t' || c == '\n' || c == '\r')
            c = '_';
    }
    return out;
}

/**
 * Non-fatal layer-spec expansion: the library parseLayerList() calls
 * fatal() on malformed specs and GemmLayer::check() is fatal too, so
 * numeric specs are validated here first. Named workloads expand via
 * the library (they cannot fail).
 */
bool
expandLayerSpecs(const std::string &specs, std::vector<GemmLayer> &out,
                 std::string &error)
{
    std::size_t start = 0;
    while (start <= specs.size()) {
        std::size_t end = specs.find(';', start);
        if (end == std::string::npos)
            end = specs.size();
        const std::string spec = specs.substr(start, end - start);
        start = end + 1;
        if (spec.empty())
            continue;
        if (spec == "alexnet" || spec == "mlperf") {
            for (auto &layer : parseLayerList(spec))
                out.push_back(std::move(layer));
            continue;
        }
        // Parse the numeric forms here rather than via parseLayerSpec:
        // that path runs GemmLayer::check(), which is fatal() on a
        // well-formed-but-invalid spec (e.g. window exceeding input),
        // and a bad request must never take the daemon down.
        const std::size_t colon = spec.find(':');
        const std::string kind =
            colon == std::string::npos ? spec : spec.substr(0, colon);
        std::vector<i64> ints;
        if (colon != std::string::npos) {
            std::size_t p = colon + 1;
            while (p <= spec.size()) {
                std::size_t q = spec.find(',', p);
                if (q == std::string::npos)
                    q = spec.size();
                const std::string tok = spec.substr(p, q - p);
                p = q + 1;
                if (tok.empty() || tok.size() > 7 ||
                    tok.find_first_not_of("0123456789") !=
                        std::string::npos)
                    break;
                ints.push_back(std::stoll(tok));
            }
        }
        if (kind == "conv" && ints.size() == 7) {
            const i64 ih = ints[0], iw = ints[1], ic = ints[2],
                      wh = ints[3], ww = ints[4], st = ints[5],
                      oc = ints[6];
            if (ih < wh || iw < ww || wh < 1 || ww < 1 || st < 1 ||
                ic < 1 || oc < 1) {
                error = "invalid conv dimensions in '" + spec + "'";
                return false;
            }
            out.push_back(GemmLayer::conv(spec, int(ih), int(iw),
                                          int(ic), int(wh), int(ww),
                                          int(st), int(oc)));
            continue;
        }
        if (kind == "matmul" && ints.size() == 3) {
            if (ints[0] < 1 || ints[1] < 1 || ints[2] < 1) {
                error = "invalid matmul dimensions in '" + spec + "'";
                return false;
            }
            out.push_back(GemmLayer::matmul(spec, int(ints[0]),
                                            int(ints[1]), int(ints[2])));
            continue;
        }
        error = "unparseable layer spec '" + spec + "'";
        return false;
    }
    if (out.empty()) {
        error = "empty layer list";
        return false;
    }
    return true;
}

/** Integer-field reader that distinguishes absent from non-positive. */
bool
requirePositiveInt(const JsonValue &obj, const char *key, i64 maxv,
                   i64 &out, std::string &error)
{
    const JsonValue *v = obj.find(key);
    if (!v || !v->isNumber()) {
        error = std::string("missing integer field '") + key + "'";
        return false;
    }
    out = i64(v->number());
    if (out < 1 || out > maxv) {
        error = std::string("field '") + key + "' out of range [1, " +
                std::to_string(maxv) + "]";
        return false;
    }
    return true;
}

} // namespace

SystemConfig
buildSystem(const ServeSystemSpec &spec)
{
    KernelConfig kern;
    kern.scheme = spec.scheme;
    kern.bits = spec.bits;
    kern.et_bits = spec.et_bits;

    const bool with_sram =
        spec.sram < 0 ? !isUnary(kern.scheme) : spec.sram != 0;
    SystemConfig sys = spec.preset == "cloud"
                           ? cloudSystem(kern, with_sram)
                           : edgeSystem(kern, with_sram);
    if (spec.rows > 0)
        sys.array.rows = spec.rows;
    if (spec.cols > 0)
        sys.array.cols = spec.cols;
    if (spec.freq_ghz > 0.0)
        sys.freq_ghz = spec.freq_ghz;

    FaultPlan plan;
    plan.seed = spec.fault_seed;
    plan.kind = spec.fault_kind;
    plan.burst_len = spec.burst_len;
    plan.rates = spec.rates;
    sys.array.faults = plan;
    return sys;
}

std::string
canonicalJobKey(const ServeSystemSpec &spec, const GemmLayer &layer)
{
    // Fixed field order, *effective* values only: auto-sram resolves to
    // the paper rule, rows/cols/freq resolve to the preset defaults, so
    // a request that spells a default out explicitly keys (and hashes)
    // identically to one that omits it. Doubles go through packDouble,
    // making key equality exactly bit equality.
    const bool with_sram =
        spec.sram < 0 ? !isUnary(spec.scheme) : spec.sram != 0;
    const bool edge = spec.preset != "cloud";
    const int rows = spec.rows > 0 ? spec.rows : (edge ? 12 : 256);
    const int cols = spec.cols > 0 ? spec.cols : (edge ? 14 : 256);
    const double freq = spec.freq_ghz > 0.0 ? spec.freq_ghz : 0.4;
    // et_bits == bits is the full unary period, i.e. no early
    // termination at all — canonicalize it to 0 (same simulation).
    const int et =
        (spec.scheme == Scheme::USystolicRate && spec.et_bits == spec.bits)
            ? 0
            : spec.et_bits;
    std::string key = "v1;sys=";
    key += spec.preset;
    key += ',';
    key += schemeTag(spec.scheme);
    key += ',';
    key += std::to_string(spec.bits);
    key += ',';
    key += std::to_string(et);
    key += ',';
    key += with_sram ? "1" : "0";
    key += ',';
    key += std::to_string(rows);
    key += ',';
    key += std::to_string(cols);
    key += ',';
    key += ShardCheckpoint::packDouble(freq);
    key += ";flt=";
    key += ShardCheckpoint::packU64(spec.fault_seed);
    key += ',';
    key += faultKindName(spec.fault_kind);
    key += ',';
    key += std::to_string(spec.burst_len);
    key += ',';
    key += ShardCheckpoint::packDouble(spec.rates.weight_reg);
    key += ',';
    key += ShardCheckpoint::packDouble(spec.rates.activation_stream);
    key += ',';
    key += ShardCheckpoint::packDouble(spec.rates.weight_stream);
    key += ',';
    key += ShardCheckpoint::packDouble(spec.rates.accumulator);
    key += ',';
    key += ShardCheckpoint::packDouble(spec.rates.dram_word);
    key += ";lyr=";
    key += layer.type == GemmType::MatMul ? "mm" : "cv";
    key += ',';
    key += std::to_string(layer.ih);
    key += ',';
    key += std::to_string(layer.iw);
    key += ',';
    key += std::to_string(layer.ic);
    key += ',';
    key += std::to_string(layer.wh);
    key += ',';
    key += std::to_string(layer.ww);
    key += ',';
    key += std::to_string(layer.stride);
    key += ',';
    key += std::to_string(layer.oc);
    key += ";nm=";
    key += sanitizeName(layer.name);
    return key;
}

void
finalizeJob(ServeJob &job)
{
    job.layer.name = sanitizeName(job.layer.name);
    job.key = canonicalJobKey(job.spec, job.layer);
    job.hash = hashBytes(job.key);
}

bool
decodeRequest(const std::string &payload, ServeRequest &out,
              std::string &error)
{
    JsonParseResult doc = parseJson(payload);
    if (!doc.ok) {
        error = "bad JSON: " + doc.error;
        return false;
    }
    if (!doc.root.isObject()) {
        error = "request must be a JSON object";
        return false;
    }
    const JsonValue &root = doc.root;
    out.op = root.getString("op", "");
    out.id = u64(root.getInt("id", 0));
    out.jobs.clear();
    const i64 deadline = root.getInt("deadline_ms", 0);
    if (deadline < 0 || deadline > 3600 * 1000) {
        error = "deadline_ms out of range [0, 3600000]";
        return false;
    }
    out.deadline_ms = u64(deadline);

    if (out.op == "ping" || out.op == "stats" || out.op == "shutdown")
        return true;
    if (out.op != "layer" && out.op != "gemm" && out.op != "sweep") {
        error = out.op.empty()
                    ? "missing 'op'"
                    : "unknown op '" + out.op + "'";
        return false;
    }

    ServeSystemSpec spec;
    if (!decodeSystemSpec(root.find("system"), spec, error))
        return false;

    std::vector<GemmLayer> layers;
    if (out.op == "gemm") {
        i64 m = 0, k = 0, n = 0;
        if (!requirePositiveInt(root, "m", i64(1) << 20, m, error) ||
            !requirePositiveInt(root, "k", i64(1) << 20, k, error) ||
            !requirePositiveInt(root, "n", i64(1) << 20, n, error))
            return false;
        const std::string name = root.getString("name", "gemm");
        layers.push_back(
            GemmLayer::matmul(sanitizeName(name), int(m), int(k), int(n)));
    } else {
        const JsonValue *specs = root.find("layers");
        if (!specs || !specs->isString()) {
            error = "missing string field 'layers'";
            return false;
        }
        if (!expandLayerSpecs(specs->string(), layers, error))
            return false;
    }

    std::vector<Scheme> schemes{spec.scheme};
    if (out.op == "sweep") {
        if (const JsonValue *list = root.find("schemes")) {
            if (!list->isArray() || list->array().empty()) {
                error = "'schemes' must be a non-empty array of tags";
                return false;
            }
            schemes.clear();
            for (const JsonValue &tag : list->array()) {
                Scheme s;
                if (!tag.isString() || !parseSchemeTag(tag.string(), s)) {
                    error = "bad scheme tag in 'schemes'";
                    return false;
                }
                schemes.push_back(s);
            }
        }
    }

    if (layers.size() * schemes.size() > kMaxJobsPerRequest) {
        error = "request expands to " +
                std::to_string(layers.size() * schemes.size()) +
                " jobs (limit " + std::to_string(kMaxJobsPerRequest) +
                ")";
        return false;
    }

    for (const Scheme scheme : schemes) {
        ServeSystemSpec s = spec;
        s.scheme = scheme;
        // Early termination only exists for rate coding; a sweep that
        // sets et_bits applies it to UR points and full period elsewhere.
        if (scheme != Scheme::USystolicRate)
            s.et_bits = 0;
        std::string verror;
        if (!validateSpec(s, verror)) {
            error = "scheme " + std::string(schemeTag(scheme)) + ": " +
                    verror;
            return false;
        }
        for (const GemmLayer &layer : layers) {
            ServeJob job;
            job.spec = s;
            job.layer = layer;
            finalizeJob(job);
            out.jobs.push_back(std::move(job));
        }
    }
    return true;
}

std::string
packLayerStats(const LayerStats &s)
{
    using CP = ShardCheckpoint;
    std::string p;
    p.reserve(27 * 17);
    const auto add = [&p](const std::string &field) {
        if (!p.empty())
            p += ',';
        p += field;
    };
    add(CP::packU64(u64(s.tiling.m)));
    add(CP::packU64(u64(s.tiling.k)));
    add(CP::packU64(u64(s.tiling.n)));
    add(CP::packU64(u64(s.tiling.folds_k)));
    add(CP::packU64(u64(s.tiling.folds_n)));
    add(CP::packU64(u64(s.tiling.folds)));
    add(CP::packU64(s.tiling.fold_cycles));
    add(CP::packU64(s.tiling.compute_cycles));
    add(CP::packU64(s.tiling.pipelined_compute_cycles));
    add(CP::packDouble(s.tiling.utilization));
    add(CP::packU64(s.compute_cycles));
    add(CP::packU64(s.total_cycles));
    add(CP::packDouble(s.runtime_s));
    add(CP::packDouble(s.overhead_pct));
    for (int v = 0; v < NumVars; ++v)
        add(CP::packU64(s.array_bytes[std::size_t(v)]));
    for (int v = 0; v < NumVars; ++v)
        add(CP::packU64(s.dram_bytes[std::size_t(v)]));
    add(CP::packU64(s.sram_total_bytes));
    add(CP::packU64(s.dram_total_bytes));
    add(CP::packDouble(s.sram_bw_gbps));
    add(CP::packDouble(s.dram_bw_gbps));
    add(CP::packU64(s.active_mac_slots));
    add(CP::packDouble(s.throughput_gmacs));
    add(CP::packDouble(s.gemm_per_s));
    return p;
}

bool
unpackLayerStats(const std::string &payload, LayerStats &s)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (start <= payload.size()) {
        std::size_t end = payload.find(',', start);
        if (end == std::string::npos)
            end = payload.size();
        fields.push_back(payload.substr(start, end - start));
        start = end + 1;
    }
    if (fields.size() != 27)
        return false;
    for (const std::string &f : fields) {
        if (f.size() != 16)
            return false;
        for (const char c : f) {
            if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
                return false;
        }
    }
    using CP = ShardCheckpoint;
    std::size_t i = 0;
    const auto u = [&]() { return CP::unpackU64(fields[i++]); };
    const auto d = [&]() { return CP::unpackDouble(fields[i++]); };
    s = LayerStats{};
    s.tiling.m = i64(u());
    s.tiling.k = i64(u());
    s.tiling.n = i64(u());
    s.tiling.folds_k = i64(u());
    s.tiling.folds_n = i64(u());
    s.tiling.folds = i64(u());
    s.tiling.fold_cycles = u();
    s.tiling.compute_cycles = u();
    s.tiling.pipelined_compute_cycles = u();
    s.tiling.utilization = d();
    s.compute_cycles = u();
    s.total_cycles = u();
    s.runtime_s = d();
    s.overhead_pct = d();
    for (int v = 0; v < NumVars; ++v)
        s.array_bytes[std::size_t(v)] = u();
    for (int v = 0; v < NumVars; ++v)
        s.dram_bytes[std::size_t(v)] = u();
    s.sram_total_bytes = u();
    s.dram_total_bytes = u();
    s.sram_bw_gbps = d();
    s.dram_bw_gbps = d();
    s.active_mac_slots = u();
    s.throughput_gmacs = d();
    s.gemm_per_s = d();
    return true;
}

std::string
renderJobResult(const ServeJob &job, const LayerStats &stats)
{
    KernelConfig kern;
    kern.scheme = job.spec.scheme;
    kern.bits = job.spec.bits;
    kern.et_bits = job.spec.et_bits;

    JsonWriter w(0);
    w.beginObject();
    w.field("layer", job.layer.name);
    w.field("kernel", kern.name());
    w.field("preset", job.spec.preset);
    w.field("m", i64(stats.tiling.m));
    w.field("k", i64(stats.tiling.k));
    w.field("n", i64(stats.tiling.n));
    w.field("folds", i64(stats.tiling.folds));
    w.field("utilization", stats.tiling.utilization);
    w.field("compute_cycles", u64(stats.compute_cycles));
    w.field("total_cycles", u64(stats.total_cycles));
    w.field("runtime_s", stats.runtime_s);
    w.field("overhead_pct", stats.overhead_pct);
    w.field("sram_total_bytes", stats.sram_total_bytes);
    w.field("dram_total_bytes", stats.dram_total_bytes);
    w.field("sram_bw_gbps", stats.sram_bw_gbps);
    w.field("dram_bw_gbps", stats.dram_bw_gbps);
    w.field("throughput_gmacs", stats.throughput_gmacs);
    w.field("gemm_per_s", stats.gemm_per_s);
    w.endObject();
    return w.str();
}

std::string
renderResults(u64 id, const std::vector<std::string> &fragments)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("id", id);
    w.field("ok", true);
    w.beginArray("results");
    for (const std::string &f : fragments)
        w.valueRaw(f);
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
renderPong(u64 id)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("id", id);
    w.field("ok", true);
    w.field("pong", true);
    w.endObject();
    return w.str();
}

std::string
renderError(u64 id, const std::string &message)
{
    return renderErrorCode(id, "bad_request", message, false);
}

std::string
renderErrorCode(u64 id, const std::string &code,
                const std::string &message, bool retriable)
{
    JsonWriter w(0);
    w.beginObject();
    w.field("id", id);
    w.field("ok", false);
    w.field("error", message);
    w.field("code", code);
    w.field("retriable", retriable);
    w.endObject();
    return w.str();
}

} // namespace usys
