#include "serve/daemon.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/socket.h>

#include "common/json.h"
#include "common/logging.h"
#include "common/stats_registry.h"

namespace usys {

Daemon::Daemon(const DaemonOptions &opts) : opts_(opts)
{
    const u64 budget =
        opts_.cache ? opts_.cache_mb * 1024 * 1024 : 0;
    cache_ = std::make_unique<ResultCache>(budget, opts_.cache_file);
    Batcher::Options bopts;
    bopts.enabled = opts_.batch;
    bopts.window_us = opts_.batch_window_us;
    bopts.max_batch = opts_.batch_max;
    bopts.max_queued_jobs = opts_.max_queued_jobs;
    batcher_ = std::make_unique<Batcher>(
        bopts, cache_->enabled() ? cache_.get() : nullptr);
}

Daemon::~Daemon()
{
    requestStop();
    batcher_->stop();
}

bool
Daemon::start(std::string *error)
{
    if (!listener_.open(opts_.port, error))
        return false;
    cache_->load();
    batcher_->start();
    return true;
}

void
Daemon::requestStop()
{
    // Called from signal handlers: only the atomic flip and the
    // shutdown(2)/close(2) inside Listener::close are performed, all
    // async-signal-safe.
    if (stopping_.exchange(true))
        return;
    listener_.close();
}

void
Daemon::run()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        reapFinishedHandlers();
        int accept_err = 0;
        Socket conn = listener_.accept(&accept_err);
        if (!conn.valid()) {
            if (stopping_.load(std::memory_order_acquire))
                break; // listener closed by requestStop()
            // Transient resource exhaustion or an aborted handshake
            // must not kill the listener: log, breathe, retry. Fd
            // exhaustion clears as handlers finish and get reaped.
            if (accept_err == EMFILE || accept_err == ENFILE ||
                accept_err == ECONNABORTED || accept_err == ENOMEM ||
                accept_err == ENOBUFS || accept_err == EPROTO) {
                {
                    std::lock_guard<std::mutex> lock(conn_mu_);
                    ++stats_.accept_retries;
                    publishCounters();
                }
                if (!opts_.quiet)
                    warn(std::string("accept: ") +
                         std::strerror(accept_err) + " — retrying");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
            break; // hard accept error
        }
        if (opts_.io_timeout_ms > 0)
            conn.setIoTimeoutMs(opts_.io_timeout_ms);
        std::lock_guard<std::mutex> lock(conn_mu_);
        if (opts_.max_conns > 0 && open_fds_.size() >= opts_.max_conns) {
            // Over the connection cap: tell the client to back off and
            // close. The io timeout (when armed) bounds this send too.
            ++stats_.shed_conns;
            publishCounters();
            conn.sendFrame(renderErrorCode(
                0, "overloaded", "connection limit reached", true));
            continue; // Socket destructor closes the fd
        }
        ++stats_.connections;
        open_fds_.push_back(conn.fd());
        threads_.emplace_back(
            [this](Socket sock) { handleConnection(std::move(sock)); },
            std::move(conn));
    }

    // Drain: unblock every handler parked in recv, then join.
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        for (const int fd : open_fds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        threads.swap(threads_);
        done_ids_.clear();
    }
    for (std::thread &t : threads)
        t.join();
    batcher_->stop();
    cache_->flush();
    std::lock_guard<std::mutex> lock(conn_mu_);
    publishCounters();
}

void
Daemon::reapFinishedHandlers()
{
    // Handlers announce completion by id; joining them here keeps the
    // thread list bounded by the number of LIVE connections instead of
    // growing one entry per connection ever accepted.
    std::vector<std::thread> finished;
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        for (const std::thread::id id : done_ids_) {
            const auto it = std::find_if(
                threads_.begin(), threads_.end(),
                [id](const std::thread &t) { return t.get_id() == id; });
            if (it != threads_.end()) {
                finished.push_back(std::move(*it));
                threads_.erase(it);
            }
        }
        done_ids_.clear();
    }
    for (std::thread &t : finished)
        t.join();
}

void
Daemon::handleConnection(Socket sock)
{
    bool timed_out = false;
    std::string payload;
    for (;;) {
        bool eof = false;
        if (!sock.recvFrame(payload, &eof)) {
            // Clean close, stop-shutdown, protocol error — or a peer
            // that went silent past the io timeout and gets reaped.
            timed_out = sock.timedOut();
            break;
        }
        bool stop_after = false;
        const std::string response = handleRequest(payload, &stop_after);
        const bool sent = sock.sendFrame(response);
        if (!sent)
            timed_out = sock.timedOut();
        if (stop_after) {
            // Shutdown op: ack FIRST, then stop — requestStop() leads
            // the drain to SHUT_RDWR this very connection, which must
            // not race the response still being written.
            requestStop();
            break;
        }
        if (!sent)
            break;
    }
    const int fd = sock.fd();
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (timed_out) {
        ++stats_.io_timeouts;
        if (!opts_.quiet)
            warn("connection reaped: io timeout after " +
                 std::to_string(opts_.io_timeout_ms) + " ms");
    }
    open_fds_.erase(
        std::remove(open_fds_.begin(), open_fds_.end(), fd),
        open_fds_.end());
    done_ids_.push_back(std::this_thread::get_id());
    publishCounters();
}

std::string
Daemon::handleRequest(const std::string &payload, bool *stop_after)
{
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        ++stats_.requests;
    }
    ServeRequest req;
    std::string error;
    if (!decodeRequest(payload, req, error)) {
        std::lock_guard<std::mutex> lock(conn_mu_);
        ++stats_.errors;
        return renderError(req.id, error);
    }
    if (req.op == "ping")
        return renderPong(req.id);
    if (req.op == "stats") {
        {
            std::lock_guard<std::mutex> lock(conn_mu_);
            publishCounters();
        }
        return renderStats();
    }
    if (req.op == "shutdown") {
        *stop_after = true; // stop AFTER the ack is on the wire
        return renderPong(req.id);
    }
    // Compute op: per-request deadline wins over the daemon default.
    // The jobs move into shared ownership so a deadline-abandoned
    // request stays valid while the batcher finishes with it.
    const u64 deadline_ms =
        req.deadline_ms ? req.deadline_ms : opts_.request_deadline_ms;
    const auto jobs = std::make_shared<const std::vector<ServeJob>>(
        std::move(req.jobs));
    std::vector<std::string> fragments;
    switch (batcher_->submit(jobs, deadline_ms, fragments)) {
      case SubmitStatus::Ok:
        return renderResults(req.id, fragments);
      case SubmitStatus::Overloaded: {
        std::lock_guard<std::mutex> lock(conn_mu_);
        publishCounters();
        return renderErrorCode(req.id, "overloaded",
                               "admission queue full — retry with backoff",
                               true);
      }
      case SubmitStatus::DeadlineExceeded:
      default: {
        std::lock_guard<std::mutex> lock(conn_mu_);
        publishCounters();
        return renderErrorCode(req.id, "deadline_exceeded",
                               "compute deadline of " +
                                   std::to_string(deadline_ms) +
                                   " ms exceeded",
                               false);
      }
    }
}

void
Daemon::publishCounters()
{
    // Caller holds conn_mu_, which serializes the set() stores below.
    // The metrics sampler may read concurrently — racy by design, same
    // as every other live-sampled counter (see metrics.h).
    const BatcherStats bs = batcher_->stats();
    StatsRegistry &reg = statsRegistry();
    reg.counter("serve.shed_total",
                "requests + connections shed under overload")
        .set(bs.shed + stats_.shed_conns);
    reg.counter("serve.deadline_total",
                "requests that missed their compute deadline")
        .set(bs.deadline_misses);
    reg.counter("serve.open_conns", "currently open client connections")
        .set(open_fds_.size());
    reg.counter("serve.io_timeout_total",
                "connections reaped by the io timeout")
        .set(stats_.io_timeouts);
    reg.counter("serve.accept_retry_total",
                "transient accept() failures survived")
        .set(stats_.accept_retries);
}

std::string
Daemon::renderStats() const
{
    DaemonStats ds;
    u64 open_conns = 0;
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        ds = stats_;
        open_conns = open_fds_.size();
    }
    const BatcherStats bs = batcher_->stats();
    const ResultCacheStats cs = cache_->stats();
    JsonWriter w(0);
    w.beginObject();
    w.field("ok", true);
    w.beginObject("daemon");
    w.field("connections", ds.connections);
    w.field("requests", ds.requests);
    w.field("errors", ds.errors);
    w.field("open_conns", open_conns);
    w.endObject();
    w.beginObject("robustness");
    w.field("shed_conns", ds.shed_conns);
    w.field("shed_requests", bs.shed);
    w.field("deadline_misses", bs.deadline_misses);
    w.field("io_timeouts", ds.io_timeouts);
    w.field("accept_retries", ds.accept_retries);
    w.endObject();
    w.beginObject("batch");
    w.field("enabled", opts_.batch);
    w.field("batches", bs.batches);
    w.field("jobs", bs.jobs);
    w.field("unique_jobs", bs.unique_jobs);
    w.field("coalesced", bs.coalesced);
    w.field("occupancy", bs.occupancy());
    w.endObject();
    w.beginObject("cache");
    w.field("enabled", cache_->enabled());
    w.field("hits", cs.hits);
    w.field("misses", cs.misses);
    w.field("insertions", cs.insertions);
    w.field("evictions", cs.evictions);
    w.field("entries", cs.entries);
    w.field("bytes", cs.bytes);
    w.field("restored", cs.restored);
    w.endObject();
    w.field("simulated", bs.simulated);
    w.endObject();
    return w.str();
}

} // namespace usys
