#include "serve/daemon.h"

#include <algorithm>

#include <sys/socket.h>

#include "common/json.h"
#include "common/logging.h"

namespace usys {

Daemon::Daemon(const DaemonOptions &opts) : opts_(opts)
{
    const u64 budget =
        opts_.cache ? opts_.cache_mb * 1024 * 1024 : 0;
    cache_ = std::make_unique<ResultCache>(budget, opts_.cache_file);
    Batcher::Options bopts;
    bopts.enabled = opts_.batch;
    bopts.window_us = opts_.batch_window_us;
    bopts.max_batch = opts_.batch_max;
    batcher_ = std::make_unique<Batcher>(
        bopts, cache_->enabled() ? cache_.get() : nullptr);
}

Daemon::~Daemon()
{
    requestStop();
    batcher_->stop();
}

bool
Daemon::start(std::string *error)
{
    if (!listener_.open(opts_.port, error))
        return false;
    cache_->load();
    batcher_->start();
    return true;
}

void
Daemon::requestStop()
{
    // Called from signal handlers: only the atomic flip and the
    // shutdown(2)/close(2) inside Listener::close are performed, all
    // async-signal-safe.
    if (stopping_.exchange(true))
        return;
    listener_.close();
}

void
Daemon::run()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        Socket conn = listener_.accept();
        if (!conn.valid())
            break; // listener closed (stop) or hard accept error
        std::lock_guard<std::mutex> lock(conn_mu_);
        ++stats_.connections;
        open_fds_.push_back(conn.fd());
        threads_.emplace_back(
            [this](Socket sock) { handleConnection(std::move(sock)); },
            std::move(conn));
    }

    // Drain: unblock every handler parked in recv, then join.
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        for (const int fd : open_fds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        threads.swap(threads_);
    }
    for (std::thread &t : threads)
        t.join();
    batcher_->stop();
    cache_->flush();
}

void
Daemon::handleConnection(Socket sock)
{
    std::string payload;
    for (;;) {
        bool eof = false;
        if (!sock.recvFrame(payload, &eof))
            break; // clean close, stop-shutdown, or protocol error
        bool stop_after = false;
        const std::string response = handleRequest(payload, &stop_after);
        const bool sent = sock.sendFrame(response);
        if (stop_after) {
            // Shutdown op: ack FIRST, then stop — requestStop() leads
            // the drain to SHUT_RDWR this very connection, which must
            // not race the response still being written.
            requestStop();
            break;
        }
        if (!sent)
            break;
    }
    const int fd = sock.fd();
    std::lock_guard<std::mutex> lock(conn_mu_);
    open_fds_.erase(
        std::remove(open_fds_.begin(), open_fds_.end(), fd),
        open_fds_.end());
}

std::string
Daemon::handleRequest(const std::string &payload, bool *stop_after)
{
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        ++stats_.requests;
    }
    ServeRequest req;
    std::string error;
    if (!decodeRequest(payload, req, error)) {
        std::lock_guard<std::mutex> lock(conn_mu_);
        ++stats_.errors;
        return renderError(req.id, error);
    }
    if (req.op == "ping")
        return renderPong(req.id);
    if (req.op == "stats")
        return renderStats();
    if (req.op == "shutdown") {
        *stop_after = true; // stop AFTER the ack is on the wire
        return renderPong(req.id);
    }
    const std::vector<std::string> fragments = batcher_->submit(req.jobs);
    return renderResults(req.id, fragments);
}

std::string
Daemon::renderStats() const
{
    DaemonStats ds;
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        ds = stats_;
    }
    const BatcherStats bs = batcher_->stats();
    const ResultCacheStats cs = cache_->stats();
    JsonWriter w(0);
    w.beginObject();
    w.field("ok", true);
    w.beginObject("daemon");
    w.field("connections", ds.connections);
    w.field("requests", ds.requests);
    w.field("errors", ds.errors);
    w.endObject();
    w.beginObject("batch");
    w.field("enabled", opts_.batch);
    w.field("batches", bs.batches);
    w.field("jobs", bs.jobs);
    w.field("unique_jobs", bs.unique_jobs);
    w.field("coalesced", bs.coalesced);
    w.field("occupancy", bs.occupancy());
    w.endObject();
    w.beginObject("cache");
    w.field("enabled", cache_->enabled());
    w.field("hits", cs.hits);
    w.field("misses", cs.misses);
    w.field("insertions", cs.insertions);
    w.field("evictions", cs.evictions);
    w.field("entries", cs.entries);
    w.field("bytes", cs.bytes);
    w.field("restored", cs.restored);
    w.endObject();
    w.field("simulated", bs.simulated);
    w.endObject();
    return w.str();
}

} // namespace usys
