/**
 * @file
 * Thin client for the usysd protocol: connect to a loopback port and
 * exchange length-prefixed JSON frames, one response per request.
 * Blocking; one in-flight request per client. The load bench opens
 * one ServeClient per simulated client thread.
 */

#ifndef USYS_SERVE_CLIENT_H
#define USYS_SERVE_CLIENT_H

#include <string>

#include "common/socket.h"

namespace usys {

class ServeClient
{
  public:
    /** Connect to 127.0.0.1:port. False (with message) on failure. */
    bool connect(u16 port, std::string *error = nullptr);

    bool connected() const { return sock_.valid(); }

    /**
     * Send one request frame and block for the response frame. False
     * on any transport failure (the connection is then unusable).
     */
    bool call(const std::string &request, std::string *response);

    /** Convenience: {"op":"ping","id":id} round-trip. */
    bool ping(u64 id = 0);

    void close() { sock_.close(); }

  private:
    Socket sock_;
};

} // namespace usys

#endif // USYS_SERVE_CLIENT_H
