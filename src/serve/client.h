/**
 * @file
 * Thin client for the usysd protocol: connect to a loopback port and
 * exchange length-prefixed JSON frames, one response per request.
 * Blocking; one in-flight request per client. The load bench opens
 * one ServeClient per simulated client thread.
 *
 * callRetry() layers capped jittered-exponential retry on top: a
 * transport failure (daemon restarting, connection reset) or a
 * response carrying `"retriable":true` (overloaded daemon shedding
 * load) reconnects and resends up to the policy's attempt budget.
 * Requests are idempotent simulations, so resending is always safe.
 * The jitter is deterministic — seeded per attempt from the policy
 * seed — so tests replay the exact same schedule.
 */

#ifndef USYS_SERVE_CLIENT_H
#define USYS_SERVE_CLIENT_H

#include <string>

#include "common/socket.h"

namespace usys {

/** Capped jittered-exponential retry schedule. */
struct RetryPolicy
{
    u32 retries = 0;    // extra attempts after the first (0 = no retry)
    u64 backoff_ms = 0; // base delay; attempt k waits in [d/2, d] for
                        // d = min(backoff_ms << k, 10s). 0 = no sleep.
    u64 jitter_seed = 1; // deterministic jitter stream
};

/** Outcome of a callRetry() exchange. */
enum class CallStatus
{
    Ok,          // response received with "ok":true
    ServerError, // response received: ok:false and not retriable
    Exhausted,   // retriable failures outlived the attempt budget
};

class ServeClient
{
  public:
    /** Connect to 127.0.0.1:port. False (with message) on failure. */
    bool connect(u16 port, std::string *error = nullptr);

    bool connected() const { return sock_.valid(); }

    /** Bound each send/recv on this connection (reapplied on
     *  reconnect). 0 = blocking forever (default). */
    void setIoTimeoutMs(u64 ms);

    /**
     * Send one request frame and block for the response frame. False
     * on any transport failure (the connection is then unusable).
     */
    bool call(const std::string &request, std::string *response);

    /**
     * call() with reconnect + capped jittered-exponential retry on
     * transport failures and `"retriable":true` responses. On Ok or
     * ServerError `*response` holds the final response; on Exhausted
     * `*error` describes the last failure. `*attempts_out` (optional)
     * reports how many attempts were made.
     */
    CallStatus callRetry(const std::string &request, std::string *response,
                         const RetryPolicy &policy,
                         std::string *error = nullptr,
                         u32 *attempts_out = nullptr);

    /** Convenience: {"op":"ping","id":id} round-trip. */
    bool ping(u64 id = 0);

    void close() { sock_.close(); }

  private:
    Socket sock_;
    u16 port_ = 0;       // remembered for callRetry() reconnects
    u64 io_timeout_ms_ = 0;
};

} // namespace usys

#endif // USYS_SERVE_CLIENT_H
