/**
 * @file
 * Admission queue that coalesces compatible layer jobs into batched
 * engine calls.
 *
 * Connection threads submit() their decoded jobs and block; a single
 * batcher thread drains the queue. When the first request of a batch
 * arrives the batcher waits up to the admission window (default 200us,
 * USYS_SERVE_BATCH_WINDOW_US) for more to land, closes the batch at
 * the window or once the queued jobs cover the size cap (default 64,
 * USYS_SERVE_BATCH_MAX; whole requests are admitted, never split),
 * then:
 *
 *   1. deduplicates by canonical key — concurrent identical requests
 *      collapse onto one simulation;
 *   2. consults the result cache for each unique key;
 *   3. runs the remaining misses through one simulateLayerBatch()
 *      call (the engine's parallelFor fan-out path);
 *   4. renders + caches the fresh results and wakes every waiter with
 *      its rendered fragment.
 *
 * Because exactly one thread calls the engine, the stats-registry and
 * event-trace side effects inside simulateLayerBatch() stay serialized
 * — the registry is not thread-safe — without a second lock. Disabled
 * batching (--no-batch) degrades submit() to a mutex-serialized inline
 * compute, preserving that invariant.
 *
 * Overload control (PR 9): the queue is bounded by max_queued_jobs
 * (0 = unbounded). A request that would push the backlog past the
 * bound is shed immediately with SubmitStatus::Overloaded — unless the
 * queue is empty, in which case it is always admitted so an oversized
 * single request still makes progress. Each submit may carry a compute
 * deadline; a waiter whose deadline passes abandons its queue slot (or,
 * if its batch is already running, abandons the future — the shared_ptr
 * job ownership makes the late set_value harmless) and gets
 * SubmitStatus::DeadlineExceeded.
 */

#ifndef USYS_SERVE_BATCHER_H
#define USYS_SERVE_BATCHER_H

#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/request.h"
#include "serve/result_cache.h"

namespace usys {

/** Batching counters (monotonic since daemon start). */
struct BatcherStats
{
    u64 batches = 0;
    u64 jobs = 0;          // jobs admitted through submit()
    u64 unique_jobs = 0;   // after in-batch dedup
    u64 coalesced = 0;     // jobs - unique_jobs
    u64 cache_hits = 0;
    u64 simulated = 0;     // jobs that reached the engine
    u64 shed = 0;          // requests refused: queue bound exceeded
    u64 deadline_misses = 0; // requests whose compute deadline passed

    /** Mean jobs per engine batch (the occupancy the bench reports). */
    double
    occupancy() const
    {
        return batches ? double(jobs) / double(batches) : 0.0;
    }
};

/** Outcome of one submit(): only Ok fills the fragment list. */
enum class SubmitStatus
{
    Ok,
    Overloaded,       // shed at admission; retriable after backoff
    DeadlineExceeded, // compute deadline passed before completion
};

class Batcher
{
  public:
    struct Options
    {
        bool enabled = true;
        u64 window_us = 200; // admission window after the first job
        u32 max_batch = 64;  // close the batch early at this many jobs
        u64 max_queued_jobs = 0; // shed above this backlog; 0 = unbounded
    };

    /** @param cache may be null (caching disabled). */
    Batcher(const Options &opts, ResultCache *cache);
    ~Batcher();

    void start();
    void stop();

    /**
     * Compute (or fetch) rendered result fragments for `*jobs`, in job
     * order, into `out`. Blocks until every fragment is available, the
     * request is shed, or `deadline_ms` (0 = none) elapses. The jobs
     * vector is shared-owned so an abandoned (deadline-exceeded) entry
     * stays valid while the batcher finishes with it. Thread-safe.
     */
    SubmitStatus submit(std::shared_ptr<const std::vector<ServeJob>> jobs,
                        u64 deadline_ms, std::vector<std::string> &out);

    /** Convenience overload: no deadline, result by value (tests). */
    std::vector<std::string> submit(const std::vector<ServeJob> &jobs);

    BatcherStats stats() const;

  private:
    // One queue entry per REQUEST (not per job): a 40-job sweep costs
    // one promise/future handoff, not 40 — the futex traffic of
    // per-job promises dominated the batch path under load.
    struct Pending
    {
        std::shared_ptr<const std::vector<ServeJob>> jobs;
        std::promise<std::vector<std::string>> result;
        u64 ticket = 0; // lets a timed-out waiter find + remove itself
    };

    void run();
    void processBatch(std::vector<Pending> batch);
    SubmitStatus
    computeInline(const std::vector<ServeJob> &jobs, bool has_deadline,
                  std::chrono::steady_clock::time_point deadline,
                  std::vector<std::string> &out);

    const Options opts_;
    ResultCache *const cache_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<Pending> queue_;
    std::size_t queued_jobs_ = 0; // sum of jobs across queue_
    u64 next_ticket_ = 1;
    bool stopping_ = false;
    std::thread worker_;
    BatcherStats stats_;

    // Serializes engine + registry access in no-batch mode (the batcher
    // thread plays that role when batching is on).
    std::mutex engine_mu_;
};

} // namespace usys

#endif // USYS_SERVE_BATCHER_H
