/**
 * @file
 * usys_client — CLI client for usysd.
 *
 *   usys_client --port P [--json '<raw request>']
 *               [--op ping|layer|gemm|sweep|stats|shutdown]
 *               [--layers SPECS] [--schemes BP,UR,...]
 *               [--scheme TAG] [--bits N] [--et-bits N]
 *               [--preset edge|cloud] [--sram auto|on|off]
 *               [--m M --k K --n N] [--id N] [--deadline-ms N]
 *               [--retries N] [--backoff-ms N]
 *
 * Builds one request (or sends --json verbatim), prints the response
 * JSON on stdout. --retries layers capped jittered-exponential retry
 * over connect failures and retriable (`overloaded`) responses.
 *
 * Exit codes: 0 response ok:true; 1 terminal transport/connect
 * failure; 2 terminal server error (ok:false, not retriable);
 * 3 retriable failures outlived the retry budget.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/cli.h"
#include "common/json.h"
#include "common/logging.h"
#include "serve/client.h"

int
main(int argc, char **argv)
{
    using namespace usys;

    int port = -1;
    std::string raw;
    std::string op = "ping";
    std::string layers;
    std::string schemes;
    std::string scheme;
    std::string preset;
    std::string sram;
    i64 bits = 0, et_bits = -1, m = 0, k = 0, n = 0, id = 0;
    i64 deadline_ms = 0, retries = 0, backoff_ms = 50;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto next = [&]() -> const char * {
            fatalIf(i + 1 >= argc,
                    std::string("missing value for ") + arg);
            return argv[++i];
        };
        if (std::strcmp(arg, "--port") == 0)
            port = int(parseIntFlag("--port", next(), 1, 65535));
        else if (std::strcmp(arg, "--json") == 0)
            raw = next();
        else if (std::strcmp(arg, "--op") == 0)
            op = next();
        else if (std::strcmp(arg, "--layers") == 0)
            layers = next();
        else if (std::strcmp(arg, "--schemes") == 0)
            schemes = next();
        else if (std::strcmp(arg, "--scheme") == 0)
            scheme = next();
        else if (std::strcmp(arg, "--preset") == 0)
            preset = next();
        else if (std::strcmp(arg, "--sram") == 0)
            sram = next();
        else if (std::strcmp(arg, "--bits") == 0)
            bits = parseIntFlag("--bits", next(), 2, 16);
        else if (std::strcmp(arg, "--et-bits") == 0)
            et_bits = parseIntFlag("--et-bits", next(), 0, 16);
        else if (std::strcmp(arg, "--m") == 0)
            m = parseIntFlag("--m", next(), 1, 1 << 20);
        else if (std::strcmp(arg, "--k") == 0)
            k = parseIntFlag("--k", next(), 1, 1 << 20);
        else if (std::strcmp(arg, "--n") == 0)
            n = parseIntFlag("--n", next(), 1, 1 << 20);
        else if (std::strcmp(arg, "--id") == 0)
            id = parseIntFlag("--id", next(), 0, i64(1) << 62);
        else if (std::strcmp(arg, "--deadline-ms") == 0)
            deadline_ms = parseIntFlag("--deadline-ms", next(), 0, 3600000);
        else if (std::strcmp(arg, "--retries") == 0)
            retries = parseIntFlag("--retries", next(), 0, 1000);
        else if (std::strcmp(arg, "--backoff-ms") == 0)
            backoff_ms = parseIntFlag("--backoff-ms", next(), 0, 60000);
        else
            fatal(std::string("usys_client: unknown argument ") + arg);
    }
    fatalIf(port < 0, "usys_client: --port is required");

    std::string request = raw;
    if (request.empty()) {
        JsonWriter w(0);
        w.beginObject();
        w.field("op", op);
        w.field("id", u64(id));
        if (deadline_ms > 0)
            w.field("deadline_ms", deadline_ms);
        if (op == "gemm") {
            w.field("m", m);
            w.field("k", k);
            w.field("n", n);
        } else if (op == "layer" || op == "sweep") {
            w.field("layers", layers);
        }
        if (op == "sweep" && !schemes.empty()) {
            w.beginArray("schemes");
            std::size_t start = 0;
            while (start <= schemes.size()) {
                std::size_t end = schemes.find(',', start);
                if (end == std::string::npos)
                    end = schemes.size();
                if (end > start)
                    w.value(schemes.substr(start, end - start));
                start = end + 1;
            }
            w.endArray();
        }
        if (!scheme.empty() || bits > 0 || et_bits >= 0 ||
            !preset.empty() || !sram.empty()) {
            w.beginObject("system");
            if (!scheme.empty())
                w.field("scheme", scheme);
            if (bits > 0)
                w.field("bits", bits);
            if (et_bits >= 0)
                w.field("et_bits", et_bits);
            if (!preset.empty())
                w.field("preset", preset);
            if (!sram.empty())
                w.field("sram", sram);
            w.endObject();
        }
        w.endObject();
        request = w.str();
    }

    ServeClient client;
    std::string error;
    if (retries == 0) {
        // No retry budget: fail fast on any transport problem.
        if (!client.connect(u16(port), &error)) {
            std::fprintf(stderr, "usys_client: %s\n", error.c_str());
            return 1;
        }
        std::string response;
        if (!client.call(request, &response)) {
            std::fprintf(stderr, "usys_client: transport error\n");
            return 1;
        }
        std::printf("%s\n", response.c_str());
        return response.find("\"ok\":true") != std::string::npos ? 0 : 2;
    }

    RetryPolicy policy;
    policy.retries = u32(retries);
    policy.backoff_ms = u64(backoff_ms);
    policy.jitter_seed = u64(id) + 1;
    // Prime port_ for callRetry()'s reconnects; a failed first connect
    // is just the first retriable failure.
    client.connect(u16(port));
    std::string response;
    switch (client.callRetry(request, &response, policy, &error)) {
      case CallStatus::Ok:
        std::printf("%s\n", response.c_str());
        return 0;
      case CallStatus::ServerError:
        std::printf("%s\n", response.c_str());
        return 2;
      case CallStatus::Exhausted:
      default:
        std::fprintf(stderr, "usys_client: retries exhausted: %s\n",
                     error.c_str());
        return 3;
    }
}
