/**
 * @file
 * Config-hash result cache for the serve daemon.
 *
 * Maps a job's canonical key (request.h) to its simulated LayerStats,
 * held in two forms per entry:
 *
 *   packed    the 27-field bit-pattern payload (packLayerStats) — the
 *             persistence format, written through ShardCheckpoint on
 *             flush so a restarted daemon restores results bit-exactly;
 *   rendered  the compact JSON fragment served in responses — derived
 *             deterministically from the unpacked stats, so a warm hit,
 *             a cold compute, and a post-restart hit all produce
 *             byte-identical response bytes.
 *
 * Entries restored from disk start with only the packed form; the
 * render is materialized lazily on first hit (the job context needed
 * to render travels with the lookup). Eviction is LRU over a byte
 * budget covering keys and both forms.
 *
 * Thread-safe: all public methods lock. The daemon calls find/insert
 * from the batcher thread and (no-batch mode) connection threads;
 * stats() is read from the stats op and the telemetry sampler.
 */

#ifndef USYS_SERVE_RESULT_CACHE_H
#define USYS_SERVE_RESULT_CACHE_H

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/types.h"
#include "serve/request.h"

namespace usys {

/** Monotonic cache counters (all since daemon start, plus gauges). */
struct ResultCacheStats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 insertions = 0;
    u64 evictions = 0;
    u64 entries = 0;  // gauge
    u64 bytes = 0;    // gauge
    u64 restored = 0; // entries loaded from the checkpoint file
};

class ResultCache
{
  public:
    /**
     * @param budget_bytes LRU capacity (keys + payloads + renders);
     *        0 disables caching entirely (find always misses).
     * @param checkpoint_path persistence file; empty = memory-only.
     */
    ResultCache(u64 budget_bytes, std::string checkpoint_path);

    /** Restore persisted entries (malformed payloads are skipped). */
    void load();

    /**
     * Look up `job`; on hit fills `rendered` (materializing it from
     * the packed form if this is the first hit since restore) and
     * refreshes LRU position. Counts a miss otherwise.
     */
    bool find(const ServeJob &job, std::string *rendered);

    /** Insert (or overwrite) the result for `job`; evicts LRU tail. */
    void insert(const ServeJob &job, const LayerStats &stats,
                const std::string &rendered);

    /** Persist all current entries through the checkpoint (if any). */
    void flush();

    ResultCacheStats stats() const;

    bool enabled() const { return budget_bytes_ > 0; }

  private:
    struct Entry
    {
        std::string packed;
        std::string rendered; // may be empty until first hit
        std::list<std::string>::iterator lru_it;
    };

    u64 entryBytes(const std::string &key, const Entry &e) const;
    void evictToBudget();

    const u64 budget_bytes_;
    const std::string checkpoint_path_;

    mutable std::mutex mu_;
    std::unordered_map<std::string, Entry> map_;
    std::list<std::string> lru_; // front = most recently used
    ResultCacheStats stats_;
};

} // namespace usys

#endif // USYS_SERVE_RESULT_CACHE_H
