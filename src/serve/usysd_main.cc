/**
 * @file
 * usysd — the uSystolic simulation daemon binary.
 *
 *   usysd [--port P] [--cache-mb N] [--cache-file PATH]
 *         [--batch-window-us N] [--batch-max N] [--no-batch] [--no-cache]
 *         [--io-timeout-ms N] [--max-conns N] [--max-queued-jobs N]
 *         [--request-deadline-ms N]
 *         [shared bench flags: --stats-json/--profile-json/--metrics-out/
 *          --threads/--simd/...]
 *
 * --port 0 (the default) binds an ephemeral port; the daemon prints
 * "usysd listening on port <P>" on stdout (and flushes) so wrappers
 * can scrape it — serve tests never hardcode ports. Environment
 * defaults (flags win): USYS_SERVE_BATCH_WINDOW_US,
 * USYS_SERVE_BATCH_MAX, USYS_SERVE_CACHE_MB, USYS_IO_TIMEOUT_MS.
 *
 * Overload hardening: per-socket io timeouts (default 30 s) reap
 * silent peers, --max-conns refuses connections past the cap with a
 * retriable `overloaded` frame, --max-queued-jobs bounds the batcher
 * backlog (shedding instead of queueing unboundedly), and
 * --request-deadline-ms bounds compute time per request unless the
 * request carries its own `deadline_ms`.
 *
 * SIGTERM/SIGINT stop the accept loop; the daemon drains in-flight
 * connections, flushes the result cache to --cache-file, and writes
 * the requested observability artifacts before exiting 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/cli.h"
#include "common/logging.h"
#include "serve/daemon.h"

namespace {

usys::Daemon *g_daemon = nullptr;

void
onSignal(int)
{
    if (g_daemon)
        g_daemon->requestStop();
}

usys::u64
envU64(const char *name, usys::u64 dflt)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return dflt;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') {
        usys::warn(std::string(name) + "='" + v +
                   "' is not an integer; using default");
        return dflt;
    }
    return usys::u64(parsed);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace usys;

    BenchOptions bench = parseBenchArgs(&argc, argv, "usysd");

    DaemonOptions opts;
    opts.batch_window_us = envU64("USYS_SERVE_BATCH_WINDOW_US", 200);
    opts.batch_max = u32(envU64("USYS_SERVE_BATCH_MAX", 64));
    opts.cache_mb = envU64("USYS_SERVE_CACHE_MB", 64);
    // The daemon BINARY defaults to a 30s io timeout — a production
    // daemon must never hold a thread hostage to a silent peer. The
    // DaemonOptions struct default stays 0 (off) so in-process unit
    // tests keep fully blocking semantics unless they opt in.
    opts.io_timeout_ms = envU64("USYS_IO_TIMEOUT_MS", 30000);

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto next = [&]() -> const char * {
            fatalIf(i + 1 >= argc,
                    std::string("missing value for ") + arg);
            return argv[++i];
        };
        if (std::strcmp(arg, "--port") == 0) {
            opts.port = u16(parseIntFlag("--port", next(), 0, 65535));
        } else if (std::strcmp(arg, "--cache-mb") == 0) {
            opts.cache_mb =
                u64(parseIntFlag("--cache-mb", next(), 1, 65536));
        } else if (std::strcmp(arg, "--cache-file") == 0) {
            opts.cache_file = next();
        } else if (std::strcmp(arg, "--batch-window-us") == 0) {
            opts.batch_window_us = u64(
                parseIntFlag("--batch-window-us", next(), 0, 10000000));
        } else if (std::strcmp(arg, "--batch-max") == 0) {
            opts.batch_max =
                u32(parseIntFlag("--batch-max", next(), 1, 100000));
        } else if (std::strcmp(arg, "--io-timeout-ms") == 0) {
            opts.io_timeout_ms = u64(
                parseIntFlag("--io-timeout-ms", next(), 0, 86400000));
        } else if (std::strcmp(arg, "--max-conns") == 0) {
            opts.max_conns =
                u32(parseIntFlag("--max-conns", next(), 0, 1000000));
        } else if (std::strcmp(arg, "--max-queued-jobs") == 0) {
            opts.max_queued_jobs = u64(
                parseIntFlag("--max-queued-jobs", next(), 0, 100000000));
        } else if (std::strcmp(arg, "--request-deadline-ms") == 0) {
            opts.request_deadline_ms = u64(parseIntFlag(
                "--request-deadline-ms", next(), 0, 3600000));
        } else if (std::strcmp(arg, "--no-batch") == 0) {
            opts.batch = false;
        } else if (std::strcmp(arg, "--no-cache") == 0) {
            opts.cache = false;
        } else if (std::strcmp(arg, "--quiet") == 0) {
            opts.quiet = true;
        } else {
            fatal(std::string("usysd: unknown argument ") + arg);
        }
    }

    Daemon daemon(opts);
    std::string error;
    if (!daemon.start(&error)) {
        std::fprintf(stderr, "usysd: %s\n", error.c_str());
        return 1;
    }
    g_daemon = &daemon;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    std::printf("usysd listening on port %u\n", unsigned(daemon.port()));
    std::fflush(stdout);

    daemon.run();

    // Final counters to stderr (stdout stays machine-scrapable).
    std::fprintf(stderr, "usysd: exiting; stats %s\n",
                 daemon.renderStats().c_str());
    finalizeBench(bench);
    return 0;
}
