/**
 * @file
 * usysd: the uSystolic simulation daemon.
 *
 * One listener thread accepts loopback TCP connections; each
 * connection gets a handler thread speaking the length-prefixed JSON
 * protocol (request.h) for as many request/response rounds as the
 * client wants. Compute ops route through the Batcher (admission
 * coalescing + result cache); ping/stats/shutdown are answered
 * directly.
 *
 * Lifecycle: start() binds (port 0 = ephemeral; the chosen port is in
 * port() and printed by the main), run() blocks in the accept loop
 * until requestStop() — called from a SIGTERM/SIGINT handler or a
 * shutdown op — closes the listener. run() then unblocks every
 * connection, joins all handler threads, and flushes the result cache
 * to its checkpoint file, so a SIGTERMed daemon restarts warm.
 */

#ifndef USYS_SERVE_DAEMON_H
#define USYS_SERVE_DAEMON_H

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "serve/batcher.h"
#include "serve/result_cache.h"

namespace usys {

struct DaemonOptions
{
    u16 port = 0;             // 0 = ephemeral
    bool batch = true;        // --no-batch disables coalescing
    bool cache = true;        // --no-cache disables the result cache
    u64 batch_window_us = 200;
    u32 batch_max = 64;
    u64 cache_mb = 64;
    std::string cache_file;   // empty = no persistence
    bool quiet = false;       // suppress per-connection logging

    // Overload hardening (all 0 = disabled, matching the PR 8 behavior
    // so unit tests that exercise only the happy path are unaffected).
    u64 io_timeout_ms = 0;       // SO_RCVTIMEO/SO_SNDTIMEO per socket
    u32 max_conns = 0;           // refuse connections beyond this count
    u64 max_queued_jobs = 0;     // batcher backlog bound (load shedding)
    u64 request_deadline_ms = 0; // default compute deadline
};

/** Daemon request counters (beyond batcher/cache stats). */
struct DaemonStats
{
    u64 connections = 0;
    u64 requests = 0;
    u64 errors = 0; // malformed frames / decode failures answered
    u64 shed_conns = 0;     // connections refused at --max-conns
    u64 io_timeouts = 0;    // connections reaped by the io timeout
    u64 accept_retries = 0; // transient accept() failures survived
};

class Daemon
{
  public:
    explicit Daemon(const DaemonOptions &opts);
    ~Daemon();

    /** Bind + load cache + start batcher. False (with message) on error. */
    bool start(std::string *error);

    /** Port actually bound (after start()). */
    u16 port() const { return listener_.port(); }

    /**
     * Ask the accept loop to exit. Safe from a signal handler: flips
     * an atomic and shuts down the listening socket.
     */
    void requestStop();

    /** Accept loop; returns after requestStop() + full drain + flush. */
    void run();

    /** Compact JSON of daemon/batcher/cache counters (the stats op). */
    std::string renderStats() const;

    ResultCacheStats cacheStats() const { return cache_->stats(); }
    BatcherStats batcherStats() const { return batcher_->stats(); }
    DaemonStats
    daemonStats() const
    {
        std::lock_guard<std::mutex> lock(conn_mu_);
        return stats_;
    }

  private:
    void handleConnection(Socket sock);
    std::string handleRequest(const std::string &payload,
                              bool *stop_after);
    void reapFinishedHandlers();
    void publishCounters();

    const DaemonOptions opts_;
    Listener listener_;
    std::unique_ptr<ResultCache> cache_;
    std::unique_ptr<Batcher> batcher_;

    std::atomic<bool> stopping_{false};

    mutable std::mutex conn_mu_;
    std::vector<std::thread> threads_;
    std::vector<std::thread::id> done_ids_; // handlers ready to join
    std::vector<int> open_fds_; // shutdown() targets on stop
    DaemonStats stats_;
};

} // namespace usys

#endif // USYS_SERVE_DAEMON_H
