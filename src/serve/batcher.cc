#include "serve/batcher.h"

#include <algorithm>
#include <map>

namespace usys {

namespace {

using clock = std::chrono::steady_clock;

} // namespace

Batcher::Batcher(const Options &opts, ResultCache *cache)
    : opts_(opts), cache_(cache)
{}

Batcher::~Batcher()
{
    stop();
}

void
Batcher::start()
{
    if (!opts_.enabled || worker_.joinable())
        return;
    stopping_ = false;
    worker_ = std::thread([this] { run(); });
}

void
Batcher::stop()
{
    if (!worker_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    worker_.join();
}

SubmitStatus
Batcher::submit(std::shared_ptr<const std::vector<ServeJob>> jobs,
                u64 deadline_ms, std::vector<std::string> &out)
{
    const bool has_deadline = deadline_ms != 0;
    const auto deadline =
        has_deadline ? clock::now() + std::chrono::milliseconds(deadline_ms)
                     : clock::time_point::max();
    if (!jobs || jobs->empty()) {
        out.clear();
        return SubmitStatus::Ok;
    }
    if (!opts_.enabled)
        return computeInline(*jobs, has_deadline, deadline, out);

    std::future<std::vector<std::string>> future;
    u64 ticket = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!stopping_) {
            // Shed at admission when the backlog bound would be
            // exceeded — but an empty queue always admits, so a single
            // request larger than the bound still makes progress.
            if (opts_.max_queued_jobs != 0 && !queue_.empty() &&
                queued_jobs_ + jobs->size() > opts_.max_queued_jobs) {
                ++stats_.shed;
                return SubmitStatus::Overloaded;
            }
            Pending p;
            p.jobs = jobs;
            p.ticket = ticket = next_ticket_++;
            future = p.result.get_future();
            queued_jobs_ += jobs->size();
            queue_.push_back(std::move(p));
        }
    }
    if (!future.valid()) {
        // Daemon shutting down: compute inline rather than hanging the
        // caller on a promise no worker will fulfill.
        return computeInline(*jobs, has_deadline, deadline, out);
    }
    cv_.notify_all();
    if (!has_deadline) {
        out = future.get();
        return SubmitStatus::Ok;
    }
    if (future.wait_until(deadline) == std::future_status::ready) {
        out = future.get();
        return SubmitStatus::Ok;
    }
    // Deadline passed. If the request is still queued, pull it out so
    // the engine never sees it; if its batch is already in flight,
    // abandon the future — the batcher's late set_value lands on a
    // promise nobody reads, and the shared_ptr keeps the jobs alive.
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = std::find_if(
            queue_.begin(), queue_.end(),
            [ticket](const Pending &p) { return p.ticket == ticket; });
        if (it != queue_.end()) {
            queued_jobs_ -= it->jobs->size();
            queue_.erase(it);
        }
        ++stats_.deadline_misses;
    }
    return SubmitStatus::DeadlineExceeded;
}

std::vector<std::string>
Batcher::submit(const std::vector<ServeJob> &jobs)
{
    std::vector<std::string> out;
    submit(std::make_shared<const std::vector<ServeJob>>(jobs), 0, out);
    return out;
}

void
Batcher::run()
{
    for (;;) {
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty() && stopping_)
                return;
            // First job seen: hold the batch open for the admission
            // window (or until the size cap) so concurrent requests
            // can join it.
            const auto deadline =
                clock::now() + std::chrono::microseconds(opts_.window_us);
            while (queued_jobs_ < opts_.max_batch && !stopping_) {
                if (cv_.wait_until(lock, deadline) ==
                    std::cv_status::timeout)
                    break;
            }
            // Admit whole requests until the job cap is covered (the
            // first request is always taken, even if alone it exceeds
            // the cap — requests are never split).
            std::size_t take = 0, taken_jobs = 0;
            while (take < queue_.size() &&
                   (take == 0 || taken_jobs + queue_[take].jobs->size() <=
                                     opts_.max_batch))
                taken_jobs += queue_[take++].jobs->size();
            batch.assign(std::make_move_iterator(queue_.begin()),
                         std::make_move_iterator(queue_.begin() +
                                                 long(take)));
            queue_.erase(queue_.begin(), queue_.begin() + long(take));
            queued_jobs_ -= taken_jobs;
        }
        if (!batch.empty())
            processBatch(std::move(batch));
    }
}

void
Batcher::processBatch(std::vector<Pending> batch)
{
    // Flatten the admitted requests into one job list, then dedup by
    // canonical key preserving first-seen order so the engine sees
    // jobs in admission order (stats/trace determinism for a fixed
    // arrival order). flat[i] = {request index, job index within it}.
    std::vector<std::pair<std::size_t, std::size_t>> flat;
    for (std::size_t r = 0; r < batch.size(); ++r)
        for (std::size_t j = 0; j < batch[r].jobs->size(); ++j)
            flat.emplace_back(r, j);
    const auto jobAt = [&](std::size_t i) -> const ServeJob & {
        return (*batch[flat[i].first].jobs)[flat[i].second];
    };

    std::map<std::string, std::vector<std::size_t>> by_key;
    std::vector<std::size_t> unique; // flat indices of first occurrences
    for (std::size_t i = 0; i < flat.size(); ++i) {
        auto [it, fresh] =
            by_key.try_emplace(jobAt(i).key, std::vector<std::size_t>{});
        if (fresh)
            unique.push_back(i);
        it->second.push_back(i);
    }

    std::vector<std::string> rendered(flat.size());
    std::vector<std::size_t> miss; // unique indices not in cache
    for (const std::size_t i : unique) {
        std::string hit;
        if (cache_ && cache_->find(jobAt(i), &hit))
            rendered[i] = std::move(hit);
        else
            miss.push_back(i);
    }

    u64 cache_hits = u64(unique.size() - miss.size());
    if (!miss.empty()) {
        std::vector<LayerJob> engine_jobs;
        engine_jobs.reserve(miss.size());
        for (const std::size_t i : miss) {
            LayerJob lj;
            lj.sys = buildSystem(jobAt(i).spec);
            lj.layer = jobAt(i).layer;
            engine_jobs.push_back(std::move(lj));
        }
        const std::vector<LayerStats> results =
            simulateLayerBatch(engine_jobs);
        for (std::size_t j = 0; j < miss.size(); ++j) {
            const std::size_t i = miss[j];
            rendered[i] = renderJobResult(jobAt(i), results[j]);
            if (cache_)
                cache_->insert(jobAt(i), results[j], rendered[i]);
        }
    }

    // Fan results out to duplicates, regroup per request, wake each
    // waiter once with its full fragment list. A waiter that abandoned
    // its future (deadline) simply never reads the value — set_value
    // on an unobserved promise is well-defined.
    for (const auto &kv : by_key) {
        const std::size_t first = kv.second.front();
        for (std::size_t idx = 1; idx < kv.second.size(); ++idx)
            rendered[kv.second[idx]] = rendered[first];
    }
    std::vector<std::vector<std::string>> per_request(batch.size());
    for (std::size_t r = 0; r < batch.size(); ++r)
        per_request[r].resize(batch[r].jobs->size());
    for (std::size_t i = 0; i < flat.size(); ++i)
        per_request[flat[i].first][flat[i].second] =
            std::move(rendered[i]);
    for (std::size_t r = 0; r < batch.size(); ++r)
        batch[r].result.set_value(std::move(per_request[r]));

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.jobs += flat.size();
    stats_.unique_jobs += unique.size();
    stats_.coalesced += flat.size() - unique.size();
    stats_.cache_hits += cache_hits;
    stats_.simulated += miss.size();
}

SubmitStatus
Batcher::computeInline(const std::vector<ServeJob> &jobs, bool has_deadline,
                       std::chrono::steady_clock::time_point deadline,
                       std::vector<std::string> &out)
{
    // No-batch path: connection threads race here, so the engine (and
    // its stats-registry commits) are serialized by engine_mu_.
    std::lock_guard<std::mutex> engine_lock(engine_mu_);
    out.assign(jobs.size(), std::string());
    u64 hits = 0, simulated = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        std::string hit;
        if (cache_ && cache_->find(jobs[i], &hit)) {
            out[i] = std::move(hit);
            ++hits;
            continue;
        }
        // The deadline gates each engine call (cache hits are ~free):
        // a request that cannot finish in time stops burning CPU at
        // the next job boundary.
        if (has_deadline && clock::now() >= deadline) {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.jobs += i;
            stats_.cache_hits += hits;
            stats_.simulated += simulated;
            ++stats_.deadline_misses;
            out.clear();
            return SubmitStatus::DeadlineExceeded;
        }
        const LayerStats stats =
            computeLayerStats(buildSystem(jobs[i].spec), jobs[i].layer);
        out[i] = renderJobResult(jobs[i], stats);
        if (cache_)
            cache_->insert(jobs[i], stats, out[i]);
        ++simulated;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.jobs += jobs.size();
    stats_.unique_jobs += jobs.size();
    stats_.cache_hits += hits;
    stats_.simulated += simulated;
    return SubmitStatus::Ok;
}

BatcherStats
Batcher::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace usys
