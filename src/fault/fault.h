/**
 * @file
 * Deterministic, seed-reproducible fault injection (soft errors,
 * voltage-scaling upsets) for the uSystolic datapath.
 *
 * The resilience story the paper leans on — a corrupted rate-coded
 * stream bit costs at most 1/2^(N-1) of the product, while a binary MSB
 * flip costs half the range — needs a fault model that every simulation
 * engine interprets *identically*, or cross-engine parity is lost the
 * moment injection is enabled. The model here is therefore counter-based
 * (stateless): a FaultPlan maps site coordinates straight to fault
 * events through a splitmix64-style hash chain of
 *
 *     (seed, site id, tile, m, r, c)
 *
 * so resolution is a pure function — independent of evaluation order,
 * engine (scalar PeCore vs 64-lane SWAR), thread count, and of whether
 * any other site was resolved at all. At most one fault event fires per
 * site instance; an event carries a position within the site's bit
 * window plus the fault kind (bit-flip, stuck-at-0/1, or a multi-bit
 * burst).
 *
 * Injection sites (see DESIGN.md §10 for the per-engine application
 * points and the packed-engine equivalence argument):
 *
 *   DramWord          an operand code as read from DRAM (per element,
 *                     once per GEMM — a bad read propagates everywhere)
 *   WeightReg         the stationary weight latched by a PE (per fold)
 *   ActivationStream  the input-side BSG output: a stream bit for the
 *                     unary schemes, a code/magnitude bit for BP/BS
 *   WeightStream      the C-BSG weight-comparison bit at comparison
 *                     index k (unary schemes; uGEMM-H polarity-1 lane)
 *   Accumulator       the OREG contribution merged at M-end (2N-bit
 *                     two's complement)
 *
 * The header includes arch/scheme.h (a header-only taxonomy) for the
 * scheme-aware window helpers; the library itself links only
 * usys_common.
 */

#ifndef USYS_FAULT_FAULT_H
#define USYS_FAULT_FAULT_H

#include <optional>
#include <string>

#include "common/fixed_point.h"
#include "common/logging.h"
#include "common/types.h"
#include "arch/scheme.h"

namespace usys {

/** Mask selecting the low n bits of a word (n in [0, 64]). */
inline u64
lowMask(u32 n)
{
    return n >= 64 ? ~u64(0) : (u64(1) << n) - 1;
}

/** What a fault event does to the bits it covers. */
enum class FaultKind
{
    BitFlip,  // invert one bit
    StuckAt0, // force one bit to 0
    StuckAt1, // force one bit to 1
    Burst,    // invert a run of burst_len consecutive bits
};

const char *faultKindName(FaultKind kind);

/** Parse "flip" / "sa0" / "sa1" / "burst"; fatal() on anything else. */
FaultKind parseFaultKind(const std::string &text);

/**
 * One resolved fault event: positions [first, first + len) of the
 * site's bit window are corrupted per `kind`. Application helpers are
 * shared by every engine so corruption semantics exist in one place.
 */
struct Fault
{
    FaultKind kind = FaultKind::BitFlip;
    u32 first = 0;
    u32 len = 1;

    bool
    covers(u32 k) const
    {
        return k >= first && k - first < len;
    }

    /** Corrupt a single covered bit (caller checked covers(k)). */
    bool
    corruptBit(bool bit, u32 /*k*/) const
    {
        switch (kind) {
          case FaultKind::BitFlip:
          case FaultKind::Burst:
            return !bit;
          case FaultKind::StuckAt0:
            return false;
          case FaultKind::StuckAt1:
            return true;
        }
        return bit;
    }

    /**
     * Corrupt the covered bits of a 64-bit stream word holding stream
     * positions [base, base + 64) — the SWAR form of corruptBit().
     */
    u64
    applyToWord(u64 word, u64 base) const
    {
        const u64 lo = std::max<u64>(first, base);
        const u64 hi = std::min<u64>(u64(first) + len, base + 64);
        if (lo >= hi)
            return word;
        const u64 mask = lowMask(u32(hi - lo)) << (lo - base);
        switch (kind) {
          case FaultKind::BitFlip:
          case FaultKind::Burst:
            return word ^ mask;
          case FaultKind::StuckAt0:
            return word & ~mask;
          case FaultKind::StuckAt1:
            return word | mask;
        }
        return word;
    }

    /**
     * Corrupt a `width`-bit two's-complement value (accumulator
     * contributions). Any width-bit pattern is a valid accumulator
     * state, so no clamping: the result is sign-extended back to i64.
     */
    i64
    applyToInt(i64 value, u32 width) const
    {
        u64 u = u64(value) & lowMask(width);
        u = applyToWord(u, 0) & lowMask(width);
        if (u & (u64(1) << (width - 1)))
            u |= ~lowMask(width);
        return i64(u);
    }
};

/**
 * Corrupt an N-bit two's-complement data code (weight registers, DRAM
 * words, bit-parallel activations). The sign-magnitude datapath cannot
 * represent -2^(N-1), so the result is clamped to the symmetric
 * quantizer range [-(2^(N-1)-1), 2^(N-1)-1] — exactly what a downstream
 * IABS/WABS latch would do with the out-of-range pattern.
 */
i32 corruptCode(const Fault &f, i32 code, int bits);

/**
 * Corrupt only the (N-1)-bit magnitude of a sign-magnitude code (the
 * bit-serial scheme streams magnitude bits; the sign travels on its own
 * wire). The magnitude stays in range by construction.
 */
i32 corruptMagnitude(const Fault &f, i32 code, int bits);

/** Per-site fault event probabilities (per site *instance*). */
struct FaultRates
{
    double weight_reg = 0.0;        // per (tile, r, c) weight latch
    double activation_stream = 0.0; // per (tile, m, r) input MAC stream
    double weight_stream = 0.0;     // per (tile, m, r, c) C-BSG lane
    double accumulator = 0.0;       // per (tile, m, r, c) OREG merge
    double dram_word = 0.0;         // per (operand, r, c) DRAM read

    bool
    any() const
    {
        return weight_reg > 0.0 || activation_stream > 0.0 ||
               weight_stream > 0.0 || accumulator > 0.0 ||
               dram_word > 0.0;
    }
};

/**
 * The deterministic fault plan threaded through ArrayConfig. A
 * default-constructed plan is disabled (all rates zero) and costs the
 * engines nothing but a null check.
 */
struct FaultPlan
{
    u64 seed = 0;
    FaultKind kind = FaultKind::BitFlip;
    u32 burst_len = 4; // bits per Burst event (clipped to the window)
    FaultRates rates;

    bool enabled() const { return rates.any(); }

    void
    check() const
    {
        const double rs[] = {rates.weight_reg, rates.activation_stream,
                             rates.weight_stream, rates.accumulator,
                             rates.dram_word};
        for (double r : rs)
            fatalIf(r < 0.0 || r > 1.0,
                    "FaultPlan: rate outside [0, 1]");
        fatalIf(kind == FaultKind::Burst && burst_len < 1,
                "FaultPlan: burst_len must be >= 1");
    }

    // --- Site resolution (pure; identical from every engine) ---------
    std::optional<Fault> dramWord(int operand, int r, int c,
                                  u32 window) const;
    std::optional<Fault> weightReg(u64 tile, int r, int c,
                                   u32 window) const;
    std::optional<Fault> activationStream(u64 tile, int m, int r,
                                          u32 window) const;
    std::optional<Fault> weightStream(u64 tile, int m, int r, int c,
                                      u32 window) const;
    std::optional<Fault> accumulator(u64 tile, int m, int r, int c,
                                     u32 window) const;
};

/**
 * Bit window of the ActivationStream site: the unary schemes corrupt a
 * stream bit inside the (possibly early-terminated) mul window; BP
 * corrupts a code bit, BS a magnitude bit.
 */
inline u32
activationWindow(const KernelConfig &kern)
{
    switch (kern.scheme) {
      case Scheme::BinaryParallel:
        return u32(kern.bits);
      case Scheme::BinarySerial:
        return u32(kern.bits - 1);
      case Scheme::TuGemm:
        // The activation stream has 2^(N-1) bits; each is merely *held*
        // for one weight-staircase sweep of the 2^(2(N-1))-cycle MAC.
        return u32(1) << (kern.bits - 1);
      default:
        return kern.mulCycles();
    }
}

/** Apply a resolved BP/BS activation fault to the input code. */
inline i32
corruptActivationCode(const Fault &f, i32 code, const KernelConfig &kern)
{
    if (kern.scheme == Scheme::BinaryParallel)
        return corruptCode(f, code, kern.bits);
    return corruptMagnitude(f, code, kern.bits);
}

/** Accumulator-contribution width: 2N-bit two's complement. */
inline u32
accumulatorWidth(const KernelConfig &kern)
{
    return u32(2 * kern.bits);
}

/**
 * Analytic per-fold fault-event census. Pure enumeration over the site
 * coordinate space — never derived from engine execution — so every
 * engine books identical counts by construction (weight-stream events
 * are *injected* counts; an event at comparison index k is masked when
 * fewer than k+1 input 1-bits arrive, but it is still booked).
 */
struct FoldFaultCounts
{
    u64 weight_reg = 0;
    u64 activation = 0;
    u64 weight_stream = 0;
    u64 accumulator = 0;

    u64
    total() const
    {
        return weight_reg + activation + weight_stream + accumulator;
    }
};

FoldFaultCounts countFoldFaults(const FaultPlan &plan,
                                const KernelConfig &kern, u64 tile,
                                int m_rows, int rows, int cols);

} // namespace usys

#endif // USYS_FAULT_FAULT_H
