#include "fault/fault.h"

#include <algorithm>

namespace usys {

namespace {

/** splitmix64 finalizer: the stateless mixing step of common/prng.h. */
inline u64
mix64(u64 x)
{
    x += 0x9E3779B97F4A7C15ull;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Hash-chain absorption of one site coordinate tuple. */
inline u64
siteHash(u64 seed, u32 site, u64 a, u64 b, u64 c, u64 d)
{
    u64 h = mix64(seed ^ (u64(site) << 56));
    h = mix64(h ^ a);
    h = mix64(h ^ b);
    h = mix64(h ^ c);
    h = mix64(h ^ d);
    return h;
}

/** Uniform double in [0, 1) from a hash (same scheme as Prng::uniform). */
inline double
hashU01(u64 h)
{
    return double(h >> 11) * 0x1.0p-53;
}

/** Site identifiers absorbed into the hash (stable across releases). */
enum SiteId : u32
{
    kSiteDramWord = 1,
    kSiteWeightReg = 2,
    kSiteActivation = 3,
    kSiteWeightStream = 4,
    kSiteAccumulator = 5,
};

std::optional<Fault>
resolve(const FaultPlan &plan, double rate, u32 window, u64 h)
{
    if (rate <= 0.0 || window == 0)
        return std::nullopt;
    if (!(hashU01(mix64(h ^ 0xE7E47ull)) < rate))
        return std::nullopt;
    Fault f;
    f.kind = plan.kind;
    f.first = u32(mix64(h ^ 0x9051710Aull) % window);
    f.len = plan.kind == FaultKind::Burst
                ? std::min(plan.burst_len, window - f.first)
                : 1;
    return f;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::BitFlip: return "flip";
      case FaultKind::StuckAt0: return "sa0";
      case FaultKind::StuckAt1: return "sa1";
      case FaultKind::Burst: return "burst";
    }
    return "?";
}

FaultKind
parseFaultKind(const std::string &text)
{
    if (text == "flip")
        return FaultKind::BitFlip;
    if (text == "sa0")
        return FaultKind::StuckAt0;
    if (text == "sa1")
        return FaultKind::StuckAt1;
    if (text == "burst")
        return FaultKind::Burst;
    fatal("unknown fault kind: " + text +
          " (expected flip, sa0, sa1, or burst)");
    return FaultKind::BitFlip;
}

i32
corruptCode(const Fault &f, i32 code, int bits)
{
    const u32 w = u32(bits);
    u64 u = u64(u32(code)) & lowMask(w);
    u = f.applyToWord(u, 0) & lowMask(w);
    i64 v = i64(u);
    if (u & (u64(1) << (w - 1)))
        v = i64(u | ~lowMask(w));
    const i64 max_mag = maxMagnitude(bits);
    return i32(std::clamp<i64>(v, -max_mag, max_mag));
}

i32
corruptMagnitude(const Fault &f, i32 code, int bits)
{
    const SignMag sm = toSignMag(code);
    const u32 w = u32(bits - 1);
    u64 mag = u64(sm.magnitude) & lowMask(w);
    mag = f.applyToWord(mag, 0) & lowMask(w);
    return sm.negative ? -i32(mag) : i32(mag);
}

std::optional<Fault>
FaultPlan::dramWord(int operand, int r, int c, u32 window) const
{
    return resolve(*this, rates.dram_word, window,
                   siteHash(seed, kSiteDramWord, u64(operand), u64(r),
                            u64(c), 0));
}

std::optional<Fault>
FaultPlan::weightReg(u64 tile, int r, int c, u32 window) const
{
    return resolve(*this, rates.weight_reg, window,
                   siteHash(seed, kSiteWeightReg, tile, u64(r), u64(c),
                            0));
}

std::optional<Fault>
FaultPlan::activationStream(u64 tile, int m, int r, u32 window) const
{
    return resolve(*this, rates.activation_stream, window,
                   siteHash(seed, kSiteActivation, tile, u64(m), u64(r),
                            0));
}

std::optional<Fault>
FaultPlan::weightStream(u64 tile, int m, int r, int c, u32 window) const
{
    return resolve(*this, rates.weight_stream, window,
                   siteHash(seed, kSiteWeightStream, tile, u64(m),
                            u64(r), u64(c)));
}

std::optional<Fault>
FaultPlan::accumulator(u64 tile, int m, int r, int c, u32 window) const
{
    return resolve(*this, rates.accumulator, window,
                   siteHash(seed, kSiteAccumulator, tile, u64(m), u64(r),
                            u64(c)));
}

FoldFaultCounts
countFoldFaults(const FaultPlan &plan, const KernelConfig &kern,
                u64 tile, int m_rows, int rows, int cols)
{
    FoldFaultCounts counts;
    if (!plan.enabled())
        return counts;

    if (plan.rates.weight_reg > 0.0) {
        for (int r = 0; r < rows; ++r)
            for (int c = 0; c < cols; ++c)
                if (plan.weightReg(tile, r, c, u32(kern.bits)))
                    ++counts.weight_reg;
    }
    if (plan.rates.activation_stream > 0.0) {
        const u32 window = activationWindow(kern);
        for (int m = 0; m < m_rows; ++m)
            for (int r = 0; r < rows; ++r)
                if (plan.activationStream(tile, m, r, window))
                    ++counts.activation;
    }
    // tubGEMM/tuGEMM have no C-BSG weight comparator, so the
    // WeightStream site does not exist for them.
    if (plan.rates.weight_stream > 0.0 && hasWeightBsg(kern.scheme)) {
        const u32 window = kern.mulCycles();
        for (int m = 0; m < m_rows; ++m)
            for (int r = 0; r < rows; ++r)
                for (int c = 0; c < cols; ++c)
                    if (plan.weightStream(tile, m, r, c, window))
                        ++counts.weight_stream;
    }
    if (plan.rates.accumulator > 0.0) {
        const u32 window = accumulatorWidth(kern);
        for (int m = 0; m < m_rows; ++m)
            for (int r = 0; r < rows; ++r)
                for (int c = 0; c < cols; ++c)
                    if (plan.accumulator(tile, m, r, c, window))
                        ++counts.accumulator;
    }
    return counts;
}

} // namespace usys
