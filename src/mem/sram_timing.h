/**
 * @file
 * Cycle-level banked SRAM buffer timing.
 *
 * Word-interleaved banks, one access per bank per cycle. Used by the
 * trace engine to account for bank conflicts that the roofline model
 * folds into a flat efficiency factor.
 */

#ifndef USYS_MEM_SRAM_TIMING_H
#define USYS_MEM_SRAM_TIMING_H

#include <algorithm>
#include <vector>

#include "common/types.h"
#include "mem/sram.h"

namespace usys {

/** Per-request timing state of one banked SRAM buffer. */
class SramDevice
{
  public:
    explicit SramDevice(const SramConfig &cfg)
        : cfg_(cfg), banks_(std::size_t(std::max(1, cfg.banks)), 0)
    {}

    /**
     * Issue one word access.
     *
     * @param addr byte address within the buffer
     * @param now earliest issue cycle
     * @return completion cycle (start + 1)
     */
    Cycles
    access(u64 addr, Cycles now)
    {
        if (!cfg_.present)
            return now; // absent buffer: the caller routes to DRAM
        const std::size_t bank =
            std::size_t(addr / u64(cfg_.bank_port_bytes)) % banks_.size();
        Cycles start = std::max(now, banks_[bank]);
        banks_[bank] = start + 1;
        ++accesses_;
        conflict_cycles_ += start - now;
        return start + 1;
    }

    u64 accesses() const { return accesses_; }
    u64 conflictCycles() const { return conflict_cycles_; }

    void
    reset()
    {
        std::fill(banks_.begin(), banks_.end(), 0);
        accesses_ = 0;
        conflict_cycles_ = 0;
    }

  private:
    SramConfig cfg_;
    std::vector<Cycles> banks_; // per-bank next-free cycle
    u64 accesses_ = 0;
    u64 conflict_cycles_ = 0;
};

} // namespace usys

#endif // USYS_MEM_SRAM_TIMING_H
