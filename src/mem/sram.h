/**
 * @file
 * On-chip SRAM buffer model (Section IV-C3).
 *
 * Eyeriss/TPU-style shared global buffer split evenly into three
 * double-buffered variable buffers (weight / IFM / OFM), each banked to
 * reduce conflicts. The model provides sustained bandwidth for the
 * contention calculation and CACTI-lite costs for area/energy.
 */

#ifndef USYS_MEM_SRAM_H
#define USYS_MEM_SRAM_H

#include "common/types.h"
#include "mem/cacti_lite.h"

namespace usys {

/** Per-variable SRAM buffer configuration. */
struct SramConfig
{
    bool present = true;
    u64 bytes = 64 * 1024; // capacity per variable buffer
    int banks = 16;
    int bank_port_bytes = 4; // bytes per bank per cycle

    /** Sustained bytes/cycle (all banks busy, conflict-derated). */
    double
    bytesPerCycle() const
    {
        if (!present)
            return 0.0;
        // Interleaved sequential streams keep ~90% of the banks busy.
        return 0.9 * double(banks) * bank_port_bytes;
    }

    /** CACTI-lite cost of this buffer. */
    SramMacroCost cost() const { return cactiLiteSram(present ? bytes : 0); }
};

/** Eyeriss-derived edge buffer: 192 KB total, 64 KB per variable. */
inline SramConfig
edgeSram()
{
    return SramConfig{true, 64 * 1024, 16, 4};
}

/** TPU-derived cloud buffer: 24 MB total, 8 MB per variable. */
inline SramConfig
cloudSram()
{
    return SramConfig{true, u64(8) * 1024 * 1024, 16, 32};
}

/** SRAM removed (uSystolic's crawling-byte operating point). */
inline SramConfig
noSram()
{
    SramConfig cfg;
    cfg.present = false;
    cfg.bytes = 0;
    return cfg;
}

} // namespace usys

#endif // USYS_MEM_SRAM_H
