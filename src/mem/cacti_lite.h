/**
 * @file
 * CACTI-lite: first-order analytical SRAM cost model (CACTI 7 substitute).
 *
 * Captures the terms the paper's evaluation actually depends on:
 *  - area grows slightly super-linearly with capacity (bank/H-tree
 *    overhead), so large cloud buffers are less dense than edge buffers;
 *  - leakage power is proportional to area (high-performance 32 nm cells
 *    leak heavily — the paper's "SRAM leakage dominates" observations);
 *  - dynamic energy per byte grows mildly with capacity (longer lines).
 *
 * Constants are calibrated to land in the range CACTI 7 reports for
 * 32 nm SRAM; see DESIGN.md (substitution #2).
 */

#ifndef USYS_MEM_CACTI_LITE_H
#define USYS_MEM_CACTI_LITE_H

#include <cmath>

#include "common/types.h"

namespace usys {

/** Cost summary of one SRAM macro. */
struct SramMacroCost
{
    double area_mm2 = 0.0;
    double leakage_mw = 0.0;
    double pj_per_byte = 0.0; // dynamic read/write energy
};

/** Reference design point: 64 KB macro at 32 nm. */
constexpr double kSramRefBytes = 64.0 * 1024.0;
constexpr double kSramRefAreaUm2PerByte = 7.4;
constexpr double kSramAreaCapacityExponent = 0.2;
constexpr double kSramLeakageMwPerMm2 = 120.0;
constexpr double kSramRefPjPerByte = 0.22;
constexpr double kSramEnergyCapacityExponent = 0.25;

/** Analytical SRAM macro cost at 32 nm. */
inline SramMacroCost
cactiLiteSram(u64 bytes)
{
    SramMacroCost cost;
    if (bytes == 0)
        return cost;
    const double ratio = double(bytes) / kSramRefBytes;
    const double area_per_byte =
        kSramRefAreaUm2PerByte * std::pow(ratio, kSramAreaCapacityExponent);
    cost.area_mm2 = area_per_byte * double(bytes) * 1e-6;
    cost.leakage_mw = cost.area_mm2 * kSramLeakageMwPerMm2;
    cost.pj_per_byte =
        kSramRefPjPerByte * std::pow(ratio, kSramEnergyCapacityExponent);
    return cost;
}

} // namespace usys

#endif // USYS_MEM_CACTI_LITE_H
