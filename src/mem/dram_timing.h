/**
 * @file
 * Cycle-level DDR3 device timing model.
 *
 * Models the structure the paper configures (Section IV-C3): 8 banks,
 * 8192-bit (1 KiB) pages, one 64-bit channel. Each bank tracks its open
 * row; a row miss pays precharge + activate before the column burst, and
 * all banks share the data bus. Timing is expressed in accelerator
 * cycles (400 MHz), energy in pJ split into activation and column/IO
 * components. The roofline model in sched/simulator is validated against
 * this device by the trace engine.
 */

#ifndef USYS_MEM_DRAM_TIMING_H
#define USYS_MEM_DRAM_TIMING_H

#include <string>
#include <vector>

#include "common/types.h"
#include "mem/dram.h"

namespace usys {

class StatsRegistry;

/** Per-request timing/energy state of a DDR3 device. */
class DramDevice
{
  public:
    /**
     * @param cfg static DRAM configuration
     * @param freq_ghz accelerator clock the timings are expressed in
     */
    explicit DramDevice(const DramConfig &cfg, double freq_ghz = 0.4);

    /**
     * Issue one read/write burst.
     *
     * @param addr byte address
     * @param bytes burst length (clamped to one page)
     * @param now earliest issue cycle
     * @return cycle at which the burst completes
     */
    Cycles access(u64 addr, u32 bytes, Cycles now);

    /** Cycle at which all issued traffic has drained. */
    Cycles drainCycle() const { return bus_free_at_; }

    /** Total page activations (row misses). */
    u64 activations() const { return activations_; }

    /** Total bursts issued. */
    u64 accesses() const { return accesses_; }

    /** Total bytes transferred. */
    u64 bytesTransferred() const { return bytes_; }

    /** Dynamic energy in pJ (activation + column/IO). */
    double energyPj() const;

    /**
     * Accumulate this device's access/activation/energy breakdown into
     * registry counters under `prefix` (e.g. "mem.dram").
     */
    void recordStats(StatsRegistry &reg,
                     const std::string &prefix) const;

    /** Reset all state (new simulation). */
    void reset();

    u64 pageBytes() const { return page_bytes_; }

  private:
    DramConfig cfg_;
    u64 page_bytes_;
    u32 bus_bytes_per_cycle_;
    u32 row_miss_penalty_; // tRP + tRCD in accelerator cycles

    struct Bank
    {
        i64 open_row = -1;
        Cycles ready_at = 0;
    };
    std::vector<Bank> banks_;
    Cycles bus_free_at_ = 0;
    u64 activations_ = 0;
    u64 accesses_ = 0;
    u64 bytes_ = 0;
};

} // namespace usys

#endif // USYS_MEM_DRAM_TIMING_H
