#include "mem/dram_timing.h"

#include <algorithm>

#include "common/stats_registry.h"

namespace usys {

namespace {

/** Activation energy per page open (pJ), DDR3 at 22 nm. */
constexpr double kActivationPj = 900.0;

/** Column access + IO energy per byte (pJ/B). */
constexpr double kColumnPjPerByte = 120.0;

/** tRP + tRCD in nanoseconds (DDR3-1600 typical). */
constexpr double kRowMissNs = 27.5;

} // namespace

DramDevice::DramDevice(const DramConfig &cfg, double freq_ghz)
    : cfg_(cfg), page_bytes_(cfg.page_bits / 8)
{
    // Peak bandwidth expressed per accelerator cycle.
    bus_bytes_per_cycle_ =
        u32(std::max(1.0, cfg.peak_gbps / freq_ghz));
    row_miss_penalty_ = u32(kRowMissNs * freq_ghz) + 1;
    banks_.resize(std::size_t(cfg.banks));
}

Cycles
DramDevice::access(u64 addr, u32 bytes, Cycles now)
{
    // Page-interleaved bank mapping: consecutive pages hit different
    // banks, rows stack above them.
    const u64 page = addr / page_bytes_;
    const std::size_t bank_idx = std::size_t(page % banks_.size());
    const i64 row = i64(page / banks_.size());
    Bank &bank = banks_[bank_idx];

    // Clamp the burst to the page boundary; callers split larger runs.
    const u64 page_off = addr % page_bytes_;
    bytes = u32(std::min<u64>(bytes, page_bytes_ - page_off));

    Cycles start = std::max(now, std::max(bank.ready_at, bus_free_at_));
    if (bank.open_row != row) {
        start += row_miss_penalty_;
        bank.open_row = row;
        ++activations_;
    }
    const Cycles burst =
        (bytes + bus_bytes_per_cycle_ - 1) / bus_bytes_per_cycle_;
    const Cycles done = start + std::max<Cycles>(burst, 1);

    bank.ready_at = done;
    bus_free_at_ = done;
    ++accesses_;
    bytes_ += bytes;
    return done;
}

double
DramDevice::energyPj() const
{
    return double(activations_) * kActivationPj +
           double(bytes_) * kColumnPjPerByte;
}

void
DramDevice::recordStats(StatsRegistry &reg,
                        const std::string &prefix) const
{
    reg.counter(prefix + ".accesses", "DRAM bursts issued") += accesses_;
    reg.counter(prefix + ".activations", "page opens (row misses)") +=
        activations_;
    reg.counter(prefix + ".bytes", "bytes transferred") += bytes_;
    reg.scalar(prefix + ".activation_energy_pj",
               "page-activation energy")
        .add(double(activations_) * kActivationPj);
    reg.scalar(prefix + ".column_energy_pj", "column access + IO energy")
        .add(double(bytes_) * kColumnPjPerByte);
    reg.scalar(prefix + ".energy_pj",
               "total dynamic energy (activation + column/IO)")
        .add(energyPj());
}

void
DramDevice::reset()
{
    for (auto &bank : banks_) {
        bank.open_row = -1;
        bank.ready_at = 0;
    }
    bus_free_at_ = 0;
    activations_ = 0;
    accesses_ = 0;
    bytes_ = 0;
}

} // namespace usys
