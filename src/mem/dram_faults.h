/**
 * @file
 * DRAM read-word fault application (header-only; included by the GEMM
 * engines and the functional executor).
 *
 * The DramWord site models a corrupted read of an operand code from
 * DRAM: every element of an operand matrix is one DRAM word, read once
 * per GEMM, so a fault on it propagates identically to every tile and
 * fold that consumes the element — which is exactly what applying the
 * corruption to the operand matrix up front gives, with no per-engine
 * code at all.
 */

#ifndef USYS_MEM_DRAM_FAULTS_H
#define USYS_MEM_DRAM_FAULTS_H

#include "common/matrix.h"
#include "fault/fault.h"

namespace usys {

/** Operand identifiers absorbed into the DramWord site hash. */
constexpr int kDramOperandA = 0;
constexpr int kDramOperandB = 1;

/**
 * Corrupt an operand matrix in place per the plan's dram_word rate;
 * returns the number of fault events applied. Deterministic in
 * (plan.seed, operand, element coordinates) only.
 */
inline u64
applyDramFaults(const FaultPlan &plan, Matrix<i32> &m, int operand,
                int bits)
{
    u64 events = 0;
    if (plan.rates.dram_word <= 0.0)
        return events;
    for (int r = 0; r < m.rows(); ++r) {
        for (int c = 0; c < m.cols(); ++c) {
            if (const auto f = plan.dramWord(operand, r, c, u32(bits))) {
                m(r, c) = corruptCode(*f, m(r, c), bits);
                ++events;
            }
        }
    }
    return events;
}

} // namespace usys

#endif // USYS_MEM_DRAM_FAULTS_H
