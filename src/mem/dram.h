/**
 * @file
 * Off-chip DRAM model: 22 nm 1 GB DDR3 chip, 8 banks, 8192-bit pages
 * (Section IV-C3).
 *
 * The model exposes a sustained bandwidth (peak derated by page locality
 * and bank-conflict efficiency) used by the contention calculation, and a
 * per-byte dynamic access energy. Following the paper, DRAM static power
 * is excluded — only dynamic access energy enters the totals.
 */

#ifndef USYS_MEM_DRAM_H
#define USYS_MEM_DRAM_H

#include "common/types.h"

namespace usys {

/** DDR3 device + channel configuration. */
struct DramConfig
{
    double peak_gbps = 12.8;    // DDR3-1600, 64-bit channel
    int banks = 8;
    u64 page_bits = 8192;
    double pj_per_byte = 160.0; // activation + IO dynamic energy

    /**
     * Row-locality efficiency: fraction of peak sustained by the mix of
     * streaming (page-hit) and tile-boundary (page-miss) accesses.
     */
    double efficiency = 0.85;

    double sustainedGbps() const { return peak_gbps * efficiency; }

    /** Sustained bytes per accelerator cycle at the given clock. */
    double
    bytesPerCycle(double freq_ghz) const
    {
        return sustainedGbps() / freq_ghz;
    }
};

/** The single DDR3 chip shared by all configurations in the paper. */
inline DramConfig
ddr3Chip()
{
    return DramConfig{};
}

} // namespace usys

#endif // USYS_MEM_DRAM_H
