#include "arch/sparsity.h"

namespace usys {

SparsityCensus
foldSparsityCensus(const KernelConfig &kern, const Matrix<i32> &input,
                   const Matrix<i32> &weights)
{
    SparsityCensus c;
    for (const i32 v : input.data())
        c.zero_acts += (v == 0);
    for (const i32 v : weights.data())
        c.zero_weights += (v == 0);
    // An all-zero activation stream elides one MAC slot per column it
    // would have fed. uGEMM-H is the carve-out: its bipolar offset makes
    // even a zero-valued operand contribute a bias term, so no slot is
    // skippable there.
    if (kern.scheme != Scheme::UgemmHybrid)
        c.skippable_macs = c.zero_acts * u64(weights.cols());
    return c;
}

void
SparsityPlan::build(const Matrix<i32> &tile)
{
    const int m_rows = tile.rows();
    const int r_cols = tile.cols();
    idx_.clear();
    off_.clear();
    off_.reserve(std::size_t(m_rows) + 1);
    off_.push_back(0);
    for (int m = 0; m < m_rows; ++m) {
        for (int r = 0; r < r_cols; ++r)
            if (tile(m, r) != 0)
                idx_.push_back(u32(r));
        off_.push_back(u32(idx_.size()));
    }
    any_zero_ = idx_.size() != std::size_t(m_rows) * std::size_t(r_cols);
}

} // namespace usys
