#include "arch/rtl_array.h"

#include <vector>

#include "common/stats_registry.h"
#include "arch/pe.h"

namespace usys {

namespace {

/** Registered lane wires between horizontally adjacent PEs. */
struct LaneWire
{
    bool ivalid = false; // multiplication cycle in flight
    bool mend = false;   // M-end pulse (accumulate/merge cycle)
    u32 phase = 0;       // multiplication phase (bit-serial weighting)
    LaneSignals sig;
};

} // namespace

RtlArray::RtlArray(const ArrayConfig &cfg)
    : cfg_(cfg)
{
    cfg_.check();
}

SystolicArray::FoldResult
RtlArray::runFold(const Matrix<i32> &input,
                  const Matrix<i32> &weights) const
{
    const int rows = cfg_.rows;
    const int cols = cfg_.cols;
    fatalIf(input.cols() != rows, "RtlArray: input width != rows");
    fatalIf(weights.rows() != rows || weights.cols() != cols,
            "RtlArray: weight tile shape mismatch");

    const int m_rows = input.rows();
    const KernelConfig &kern = cfg_.kernel;
    const u32 mul =
        kern.scheme == Scheme::BinaryParallel ? 1 : kern.mulCycles();
    const u32 mac = kern.macCycles();
    const int shift =
        (kern.scheme == Scheme::USystolicRate && kern.et_bits > 0)
            ? kern.bits - kern.et_bits
            : 0;

    // Fault plan, tile 0 (RtlArray folds are standalone; the referee is
    // compared against SystolicArray::runFold at the same tile id).
    // Fault *effects* are identical to the other engines; the referee
    // keeps its direct registry stats and books no fault counters.
    const FaultPlan *plan = cfg_.faults.enabled() ? &cfg_.faults : nullptr;
    const bool unary = isUnary(kern.scheme);

    // --- PE and wire state ----------------------------------------------
    std::vector<std::vector<PeCore>> cores(
        rows, std::vector<PeCore>(cols, PeCore(kern)));
    std::vector<RowFrontEnd> fes(rows, RowFrontEnd(kern));
    // Per-row ActivationStream event for the row's current MAC interval
    // (stable addresses: RowFrontEnd holds a pointer for the interval).
    std::vector<std::optional<Fault>> row_fault(rows);
    // Registered lane outputs of each PE (consumed by column c+1).
    std::vector<std::vector<LaneWire>> lane_q(
        rows, std::vector<LaneWire>(cols));
    // Registered upward partial sums (consumed by row r-1).
    std::vector<std::vector<i64>> psum_q(rows,
                                         std::vector<i64>(cols, 0));

    // --- Weight preload: shift one row per cycle down the columns. ------
    // Feeding rows bottom-up means after `rows` shifts PE row r holds
    // weight row r.
    // WeightReg faults corrupt the codes entering the preload pipe, so
    // the corrupted value is what shifts down and latches.
    const Matrix<i32> *wsrc = &weights;
    Matrix<i32> wfaulted;
    if (plan && plan->rates.weight_reg > 0.0) {
        wfaulted = weights;
        for (int r = 0; r < rows; ++r)
            for (int c = 0; c < cols; ++c)
                if (const auto f =
                        plan->weightReg(0, r, c, u32(kern.bits)))
                    wfaulted(r, c) =
                        corruptCode(*f, wfaulted(r, c), kern.bits);
        wsrc = &wfaulted;
    }

    std::vector<std::vector<i32>> wpipe(rows, std::vector<i32>(cols, 0));
    Cycles cycle = 0;
    for (int beat = 0; beat < rows; ++beat, ++cycle) {
        for (int r = rows - 1; r > 0; --r)
            wpipe[r] = wpipe[r - 1];
        for (int c = 0; c < cols; ++c)
            wpipe[0][c] = (*wsrc)(rows - 1 - beat, c);
    }
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c) {
            cores[r][c].loadWeight(wpipe[r][c]);
            if (plan)
                cores[r][c].attachFaults(plan, 0, r, c);
        }

    // --- Streaming -------------------------------------------------------
    // Row r starts its first MAC interval (rows-1-r) intervals after the
    // bottom row so partial sums climbing one row per interval stay
    // aligned. The rightmost column lags cols-1 additional cycles.
    const Cycles stream_base = cycle;
    auto row_start = [&](int r) {
        return stream_base + Cycles(rows - 1 - r) * mac;
    };
    const Cycles last_cycle =
        stream_base + (Cycles(m_rows) + rows - 1) * mac +
        Cycles(cols - 1);

    Matrix<i64> out(m_rows, cols, 0);
    std::vector<int> emitted(cols, 0); // outputs drained per column

    for (; cycle < last_cycle; ++cycle) {
        // Phase A: every PE computes its next state from the *current*
        // registered outputs of its neighbors.
        std::vector<std::vector<LaneWire>> lane_d = lane_q;
        std::vector<std::vector<i64>> psum_d = psum_q;

        // Front-end wires for the leftmost column, this cycle.
        std::vector<LaneWire> fe_wire(rows);
        for (int r = 0; r < rows; ++r) {
            const Cycles start = row_start(r);
            if (cycle < start)
                continue;
            const u64 local = cycle - start;
            const u64 interval = local / mac;
            const u32 phase = u32(local % mac);
            if (interval >= u64(m_rows))
                continue;
            if (phase == 0) {
                i32 value = input(int(interval), r);
                row_fault[r].reset();
                if (plan && plan->rates.activation_stream > 0.0)
                    row_fault[r] = plan->activationStream(
                        0, int(interval), r, activationWindow(kern));
                if (row_fault[r] && !unary)
                    value =
                        corruptActivationCode(*row_fault[r], value, kern);
                fes[r].loadInput(value);
                fes[r].setStreamFault(
                    unary && row_fault[r] ? &*row_fault[r] : nullptr);
            }
            if (phase < mul) {
                fe_wire[r].ivalid = true;
                fe_wire[r].phase = phase;
                fe_wire[r].sig = fes[r].step(phase);
            } else if (phase == mul) {
                fe_wire[r].mend = true;
                fe_wire[r].sig.isign = input(int(interval), r) < 0;
                fes[r].endMac();
            }
            // Binary parallel has no separate accumulate cycle: the
            // single valid cycle doubles as M-end.
            if (kern.scheme == Scheme::BinaryParallel && phase == 0)
                fe_wire[r].mend = true;
        }

        for (int c = 0; c < cols; ++c) {
            for (int r = 0; r < rows; ++r) {
                const LaneWire &in =
                    (c == 0) ? fe_wire[r] : lane_q[r][c - 1];
                PeCore &core = cores[r][c];
                if (in.ivalid)
                    core.stepMul(in.sig, in.phase);
                if (in.mend) {
                    const i64 below =
                        (r + 1 < rows) ? psum_q[r + 1][c] : 0;
                    const i64 up = core.finishMac(below, in.sig.isign);
                    psum_d[r][c] = up;
                    if (r == 0) {
                        // Top-row shifter + output drain.
                        out(emitted[c], c) = up * (i64(1) << shift);
                        ++emitted[c];
                    }
                }
                // Register the lane for the next column.
                lane_d[r][c] = in;
            }
        }

        // Phase B: commit.
        lane_q.swap(lane_d);
        psum_q.swap(psum_d);
    }

    for (int c = 0; c < cols; ++c)
        panicIf(emitted[c] != m_rows, "RtlArray: missing outputs");

    StatsRegistry &reg = statsRegistry();
    const std::string slug =
        "arch.rtl_" + sanitizeStatName(kern.name());
    ++reg.counter(slug + ".folds", "RTL-mode folds executed");
    reg.counter(slug + ".cycles", "RTL cycles simulated") += cycle;
    reg.counter(slug + ".mac_slots",
                "PE MAC slots evaluated (incl. padding)") +=
        u64(m_rows) * rows * cols;

    return SystolicArray::FoldResult{std::move(out), cycle};
}

} // namespace usys
