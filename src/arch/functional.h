/**
 * @file
 * Fast bit-exact functional GEMM engines.
 *
 * GemmExecutor computes the same accumulations as the cycle-level
 * SystolicArray (tests assert exact agreement) but in O(1) per MAC using
 * the precomputed unary product tables, making full DNN inference through
 * the unary datapath tractable. Results are returned in scheme-native
 * accumulator units; resultScale() converts them to exact-product units.
 */

#ifndef USYS_ARCH_FUNCTIONAL_H
#define USYS_ARCH_FUNCTIONAL_H

#include <memory>

#include "common/matrix.h"
#include "arch/scheme.h"
#include "fault/fault.h"
#include "unary/product_table.h"

namespace usys {

/** Shared, cached product tables keyed by bitwidth. */
const UnaryProductModel &unaryModelFor(int signed_bits);
const BipolarProductModel &bipolarModelFor(int signed_bits);

/** Functional GEMM under a kernel configuration. */
class GemmExecutor
{
  public:
    explicit GemmExecutor(const KernelConfig &cfg);

    /**
     * Compute the scheme's accumulations for C = A (MxK) x B (KxN).
     * Binary schemes are exact; unary schemes return binary-accumulated
     * product counts, shifted back by 2^(N-n) under early termination.
     */
    Matrix<i64> run(const Matrix<i32> &a, const Matrix<i32> &b) const;

    /**
     * Same GEMM under a fault plan. The functional model has no cycle
     * or stream state, so only the DramWord site is representable here;
     * the per-fold sites (weight registers, streams, accumulators)
     * require a cycle/stream engine and are ignored — callers wanting
     * the full model run SystolicGemm. With a dram-only plan this is
     * bit-exact against SystolicGemm::run under the same plan.
     */
    Matrix<i64> run(const Matrix<i32> &a, const Matrix<i32> &b,
                    const FaultPlan &plan) const;

    /**
     * Factor converting accumulator units to exact-product units:
     * value_exact ~= acc * resultScale(). 1 for the exact schemes
     * (binary, tubGEMM, tuGEMM), 2^(N-1) for the rate-counting
     * weight-BSG schemes.
     */
    double resultScale() const;

    /** Scheme-native product of a single MAC (used by tests). */
    i64 singleProduct(i32 a, i32 b) const;

    const KernelConfig &config() const { return cfg_; }

  private:
    KernelConfig cfg_;
    const UnaryProductModel *unary_ = nullptr;
    const BipolarProductModel *bipolar_ = nullptr;
};

} // namespace usys

#endif // USYS_ARCH_FUNCTIONAL_H
