/**
 * @file
 * Metric-based early-termination policy (Sections II-B3 / III-C).
 *
 * The paper terminates rate-coded bitstreams early to trade accuracy for
 * energy, choosing the termination point by offline characterization.
 * This module profiles the normalized GEMM error of every effective
 * bitwidth on representative random operands and picks the smallest EBT
 * meeting an error tolerance — the value programmed into the ISA's
 * MAC-cycle-count field.
 */

#ifndef USYS_ARCH_EARLY_TERMINATION_H
#define USYS_ARCH_EARLY_TERMINATION_H

#include <vector>

#include "common/types.h"

namespace usys {

/** Profiled error of one termination point. */
struct EtProfilePoint
{
    int ebt = 0;          // effective bitwidth n
    u32 mul_cycles = 0;   // 2^(n-1)
    double nrmse = 0.0;   // normalized GEMM RMSE vs exact products
};

/**
 * Profile rate-coded early termination for N-bit data on random GEMMs
 * with reduction dimension k_dim.
 */
std::vector<EtProfilePoint> profileEarlyTermination(int bits, int k_dim,
                                                    u64 seed = 0xE7);

/**
 * Smallest EBT whose profiled error meets the tolerance; falls back to
 * full precision when none does.
 */
int chooseEbt(int bits, int k_dim, double nrmse_tolerance,
              u64 seed = 0xE7);

} // namespace usys

#endif // USYS_ARCH_EARLY_TERMINATION_H
