/**
 * @file
 * Cycle-level weight-stationary systolic array simulator (Figure 7).
 *
 * The simulator is bit- and cycle-faithful to the uSystolic RTL semantics:
 * weights preload from the top (R cycles), inputs enter at the leftmost
 * column with a one-MAC-interval skew per row (bottom row first, so
 * partial sums can travel upward), lane signals (input bit / sign / RREG
 * random number) propagate rightward with a one-cycle lag per column, and
 * each PE's OREG merges the partial sum from below at M-end. The top-row
 * shifters scale early-terminated results back by 2^(N-n).
 *
 * Columns exchange no data except the left-to-right registered lane, so
 * the simulation evaluates rows/columns in a deterministic order that is
 * provably equivalent to the concurrent hardware schedule; cycle counts
 * are accumulated from the same schedule.
 */

#ifndef USYS_ARCH_ARRAY_H
#define USYS_ARCH_ARRAY_H

#include "common/matrix.h"
#include "common/types.h"
#include "arch/scheme.h"

namespace usys {

/** Physical array shape plus the PE kernel configuration. */
struct ArrayConfig
{
    int rows = 8;
    int cols = 8;
    KernelConfig kernel;

    void
    check() const
    {
        kernel.check();
        fatalIf(rows < 1 || cols < 1, "ArrayConfig: degenerate shape");
    }
};

/** One weight-stationary fold on an R x C array. */
class SystolicArray
{
  public:
    explicit SystolicArray(const ArrayConfig &cfg);

    struct FoldResult
    {
        Matrix<i64> output; // M x C accumulations (scheme-scaled)
        Cycles cycles = 0;  // exact fold latency including preload
    };

    /**
     * Run one fold: output (M x C) = input (M x R) x weights (R x C).
     *
     * @param input M x R matrix of signed codes streamed from the left
     * @param weights R x C stationary weight tile
     */
    FoldResult runFold(const Matrix<i32> &input,
                       const Matrix<i32> &weights) const;

    /**
     * Closed-form fold latency; runFold() is asserted against this.
     * R preload + (M + R - 1) MAC intervals + (C - 1) column-skew drain.
     */
    Cycles
    foldLatency(int m_rows) const
    {
        const u64 mac = cfg_.kernel.macCycles();
        return u64(cfg_.rows) +
               (u64(m_rows) + cfg_.rows - 1) * mac +
               u64(cfg_.cols - 1);
    }

    const ArrayConfig &config() const { return cfg_; }

  private:
    ArrayConfig cfg_;
};

/** Full GEMM on the array with weight-stationary K/N tiling. */
class SystolicGemm
{
  public:
    explicit SystolicGemm(const ArrayConfig &cfg);

    struct RunResult
    {
        Matrix<i64> acc;     // M x N accumulations (scheme-scaled)
        Cycles cycles = 0;   // sum of fold latencies (unpipelined)
        u64 folds = 0;
    };

    /**
     * Compute C = A (M x K) x B (K x N), tiling K over array rows and N
     * over array columns, accumulating partial sums across K folds.
     */
    RunResult run(const Matrix<i32> &a, const Matrix<i32> &b) const;

  private:
    ArrayConfig cfg_;
};

} // namespace usys

#endif // USYS_ARCH_ARRAY_H
