/**
 * @file
 * Cycle-level weight-stationary systolic array simulator (Figure 7).
 *
 * The simulator is bit- and cycle-faithful to the uSystolic RTL semantics:
 * weights preload from the top (R cycles), inputs enter at the leftmost
 * column with a one-MAC-interval skew per row (bottom row first, so
 * partial sums can travel upward), lane signals (input bit / sign / RREG
 * random number) propagate rightward with a one-cycle lag per column, and
 * each PE's OREG merges the partial sum from below at M-end. The top-row
 * shifters scale early-terminated results back by 2^(N-n).
 *
 * Columns exchange no data except the left-to-right registered lane, so
 * the simulation evaluates rows/columns in a deterministic order that is
 * provably equivalent to the concurrent hardware schedule; cycle counts
 * are accumulated from the same schedule.
 */

#ifndef USYS_ARCH_ARRAY_H
#define USYS_ARCH_ARRAY_H

#include <vector>

#include "common/matrix.h"
#include "common/types.h"
#include "arch/scheme.h"
#include "arch/sparsity.h"
#include "fault/fault.h"

namespace usys {

/** Physical array shape plus the PE kernel configuration. */
struct ArrayConfig
{
    int rows = 8;
    int cols = 8;
    KernelConfig kernel;

    /**
     * Deterministic fault-injection plan (default: disabled). Every
     * engine driven by this config — scalar, RTL referee, packed —
     * resolves the same plan to the same fault events, so they remain
     * bit-exact against each other with injection enabled.
     */
    FaultPlan faults;

    void
    check() const
    {
        kernel.check();
        faults.check();
        fatalIf(rows < 1 || cols < 1, "ArrayConfig: degenerate shape");
    }
};

/**
 * Locally accumulated stats-registry deltas of runFold() calls.
 *
 * The global StatsRegistry is not safe for concurrent updates, so
 * parallel tile workers pass one of these per shard to runFold() and
 * the caller flush()es the shards serially in a fixed (index) order —
 * keeping text/JSON dumps byte-identical to a serial run.
 */
struct FoldStatsDelta
{
    u64 folds = 0;
    u64 mac_slots = 0;
    u64 fold_cycles = 0;
    u64 bitstream_cycles = 0;
    std::vector<double> m_rows_samples; // arch.fold_m_rows histogram adds

    // Fault events injected, per site (all zero on fault-free runs;
    // flush() emits the arch.<kern>.faults_* counters only when any
    // fired, so fault-free stats dumps are unchanged).
    u64 faults_weight_reg = 0;
    u64 faults_activation = 0;
    u64 faults_weight_stream = 0;
    u64 faults_accumulator = 0;
    u64 faults_dram = 0;

    // Value-sparsity census of the operand tiles (pure data properties,
    // booked by every engine whether or not the skips execute; flush()
    // emits arch.<kern>.sparsity_* only when any zero operand was seen,
    // so fully-dense stats dumps are unchanged).
    u64 sparsity_zero_acts = 0;
    u64 sparsity_zero_weights = 0;
    u64 sparsity_skippable_macs = 0;

    /** Record one fold's contribution. */
    void add(int m_rows, int rows, int cols, Cycles cycles, u32 trace_len);

    /** Record one fold's analytic fault census. */
    void addFaults(const FoldFaultCounts &counts);

    /** Record one fold's operand-sparsity census. */
    void addSparsity(const SparsityCensus &census);

    /** Total fault events across all sites. */
    u64
    faultTotal() const
    {
        return faults_weight_reg + faults_activation +
               faults_weight_stream + faults_accumulator + faults_dram;
    }

    /** Fold another shard's deltas into this one (append in call
     *  order, so merging shards by index keeps histogram adds in the
     *  same sequence a serial run would produce). */
    void merge(const FoldStatsDelta &other);

    /** Commit to the global registry under arch.<kernel-name>.*. */
    void flush(const KernelConfig &kern) const;
};

/** One weight-stationary fold on an R x C array. */
class SystolicArray
{
  public:
    explicit SystolicArray(const ArrayConfig &cfg);

    struct FoldResult
    {
        Matrix<i64> output; // M x C accumulations (scheme-scaled)
        Cycles cycles = 0;  // exact fold latency including preload
    };

    /**
     * Run one fold: output (M x C) = input (M x R) x weights (R x C).
     *
     * @param input M x R matrix of signed codes streamed from the left
     * @param weights R x C stationary weight tile
     * @param stats if non-null, accumulate registry deltas here instead
     *        of committing to the global registry (for parallel shards;
     *        the caller must flush() in deterministic order)
     * @param tile fold index for fault-site resolution (SystolicGemm
     *        numbers folds ti * k_tiles + kt; standalone folds use 0)
     */
    FoldResult runFold(const Matrix<i32> &input,
                       const Matrix<i32> &weights,
                       FoldStatsDelta *stats = nullptr,
                       u64 tile = 0) const;

    /**
     * Closed-form fold latency; runFold() is asserted against this.
     * R preload + (M + R - 1) MAC intervals + (C - 1) column-skew drain.
     */
    Cycles
    foldLatency(int m_rows) const
    {
        const u64 mac = cfg_.kernel.macCycles();
        return u64(cfg_.rows) +
               (u64(m_rows) + cfg_.rows - 1) * mac +
               u64(cfg_.cols - 1);
    }

    const ArrayConfig &config() const { return cfg_; }

  private:
    ArrayConfig cfg_;
};

/** Full GEMM on the array with weight-stationary K/N tiling. */
class SystolicGemm
{
  public:
    explicit SystolicGemm(const ArrayConfig &cfg);

    struct RunResult
    {
        Matrix<i64> acc;     // M x N accumulations (scheme-scaled)
        Cycles cycles = 0;   // sum of fold latencies (unpipelined)
        u64 folds = 0;
    };

    /**
     * Compute C = A (M x K) x B (K x N), tiling K over array rows and N
     * over array columns, accumulating partial sums across K folds.
     *
     * With the packed engine enabled (see packedEngineEnabled()) the
     * folds run on PackedArray and the column-tile shards — which own
     * disjoint output columns — run under parallelFor; stats deltas are
     * flushed serially in tile order, so results, cycle counts, and
     * stats dumps are identical to the scalar serial path.
     *
     * @param stats if non-null, merge this GEMM's registry deltas there
     *        (in tile order) instead of flushing them to the global
     *        registry — the flush-free form callers running many GEMMs
     *        in an outer parallel region need, since the registry is
     *        not safe for concurrent updates. The caller must flush()
     *        the merged delta serially.
     */
    RunResult run(const Matrix<i32> &a, const Matrix<i32> &b,
                  FoldStatsDelta *stats = nullptr) const;

  private:
    ArrayConfig cfg_;
};

} // namespace usys

#endif // USYS_ARCH_ARRAY_H
