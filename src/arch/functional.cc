#include "arch/functional.h"

#include <map>
#include <mutex>

#include "common/executor.h"
#include "common/fixed_point.h"
#include "arch/pe.h"
#include "mem/dram_faults.h"

namespace usys {

namespace {

// Bitwidths the per-thread memos below cover (a signed bitwidth beyond
// this falls back to the locked cache lookup, which stays correct).
constexpr int kModelMemoSlots = 32;

} // namespace

const UnaryProductModel &
unaryModelFor(int signed_bits)
{
    // Per-thread memo in front of the shared cache: executor workers are
    // persistent, so after one warm lookup per bitwidth a sweep never
    // touches the mutex again. The cached models are immutable prefix
    // tables, so sharing one instance across threads is safe.
    thread_local const UnaryProductModel *memo[kModelMemoSlots] = {};
    const bool memoable = signed_bits >= 0 && signed_bits < kModelMemoSlots;
    if (memoable && memo[signed_bits])
        return *memo[signed_bits];

    static std::mutex mutex;
    static std::map<int, std::unique_ptr<UnaryProductModel>> cache;
    const UnaryProductModel *model = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto &slot = cache[signed_bits];
        if (!slot) {
            slot = std::make_unique<UnaryProductModel>(
                signed_bits, kWeightRngDim, kInputRngDim);
        }
        model = slot.get();
    }
    if (memoable)
        memo[signed_bits] = model;
    return *model;
}

const BipolarProductModel &
bipolarModelFor(int signed_bits)
{
    thread_local const BipolarProductModel *memo[kModelMemoSlots] = {};
    const bool memoable = signed_bits >= 0 && signed_bits < kModelMemoSlots;
    if (memoable && memo[signed_bits])
        return *memo[signed_bits];

    static std::mutex mutex;
    static std::map<int, std::unique_ptr<BipolarProductModel>> cache;
    const BipolarProductModel *model = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto &slot = cache[signed_bits];
        if (!slot) {
            slot = std::make_unique<BipolarProductModel>(
                signed_bits, kWeightRngDim,
                kWeightRngDim + kWeightAltRngOffset);
        }
        model = slot.get();
    }
    if (memoable)
        memo[signed_bits] = model;
    return *model;
}

namespace {

/** Chunk size for row-parallel GEMMs: keep ~4k MACs per chunk so small
 *  problems stay serial and large ones amortize the hand-off. */
u64
rowGrain(int k_dim, int n_dim)
{
    const u64 macs_per_row = u64(std::max(1, k_dim)) * std::max(1, n_dim);
    return std::max<u64>(1, 4096 / macs_per_row);
}

} // namespace

GemmExecutor::GemmExecutor(const KernelConfig &cfg)
    : cfg_(cfg)
{
    cfg_.check();
    switch (cfg_.scheme) {
      case Scheme::USystolicRate:
      case Scheme::USystolicTemporal:
        unary_ = &unaryModelFor(cfg_.bits);
        break;
      case Scheme::UgemmHybrid:
        bipolar_ = &bipolarModelFor(cfg_.bits);
        break;
      default:
        break;
    }
}

i64
GemmExecutor::singleProduct(i32 a, i32 b) const
{
    switch (cfg_.scheme) {
      case Scheme::BinaryParallel:
      case Scheme::BinarySerial:
      case Scheme::TubGemm:
      case Scheme::TuGemm:
        // The temporal-unary schemes are exact: the staircase stream
        // asserts exactly |a| bits and each contributes the full signed
        // weight (tubGEMM) or |w| of the held cycles (tuGEMM).
        return i64(a) * b;
      case Scheme::USystolicRate: {
        const SignMag sa = toSignMag(a);
        const SignMag sb = toSignMag(b);
        const u32 cycles = cfg_.mulCycles();
        const int shift = cfg_.et_bits > 0 ? cfg_.bits - cfg_.et_bits : 0;
        const i64 count =
            unary_->rateProduct(sa.magnitude, sb.magnitude, cycles);
        const i64 mag = count << shift;
        return (sa.negative != sb.negative) ? -mag : mag;
      }
      case Scheme::USystolicTemporal: {
        const SignMag sa = toSignMag(a);
        const SignMag sb = toSignMag(b);
        const i64 count = unary_->fullProduct(sa.magnitude, sb.magnitude);
        return (sa.negative != sb.negative) ? -count : count;
      }
      case Scheme::UgemmHybrid:
        return bipolar_->scaledProduct(a, b);
    }
    return 0;
}

Matrix<i64>
GemmExecutor::run(const Matrix<i32> &a, const Matrix<i32> &b) const
{
    fatalIf(a.cols() != b.rows(), "GemmExecutor: shape mismatch");
    const int m_rows = a.rows();
    const int k_dim = a.cols();
    const int n_dim = b.cols();
    Matrix<i64> out(m_rows, n_dim, 0);

    if (cfg_.scheme == Scheme::BinaryParallel ||
        cfg_.scheme == Scheme::BinarySerial ||
        cfg_.scheme == Scheme::TubGemm ||
        cfg_.scheme == Scheme::TuGemm) {
        // Exact-product schemes: a plain integer GEMM (referenceGemm
        // already zero-skips per element and runs row-parallel).
        return referenceGemm(a, b);
    }

    if (cfg_.scheme == Scheme::UgemmHybrid) {
        // Rows are independent (each writes only its own output row), so
        // the batch loop of dnn inference parallelizes here for free.
        parallelFor(
            0, u64(m_rows),
            [&](u64 mi) {
                const int m = int(mi);
                for (int k = 0; k < k_dim; ++k)
                    for (int n = 0; n < n_dim; ++n)
                        out(m, n) +=
                            bipolar_->scaledProduct(a(m, k), b(k, n));
            },
            rowGrain(k_dim, n_dim));
        return out;
    }

    // uSystolic rate/temporal: sign-magnitude unipolar products,
    // binary-accumulated; early termination shifts the count back.
    const bool rate = cfg_.scheme == Scheme::USystolicRate;
    const u32 cycles = cfg_.mulCycles();
    const u32 period = unary_->period();
    const int shift =
        (rate && cfg_.et_bits > 0) ? cfg_.bits - cfg_.et_bits : 0;
    parallelFor(
        0, u64(m_rows),
        [&](u64 mi) {
            const int m = int(mi);
            for (int k = 0; k < k_dim; ++k) {
                const SignMag sa = toSignMag(a(m, k));
                // The delivered ones-count depends only on the input
                // value and the termination point, so hoist it out of
                // the n loop.
                const u32 ones =
                    (rate && cycles < period)
                        ? unary_->rateOnes(sa.magnitude, cycles)
                        : sa.magnitude;
                for (int n = 0; n < n_dim; ++n) {
                    const SignMag sb = toSignMag(b(k, n));
                    const i64 count =
                        i64(unary_->countAfterOnes(ones, sb.magnitude))
                        << shift;
                    out(m, n) +=
                        (sa.negative != sb.negative) ? -count : count;
                }
            }
        },
        rowGrain(k_dim, n_dim));
    return out;
}

Matrix<i64>
GemmExecutor::run(const Matrix<i32> &a, const Matrix<i32> &b,
                  const FaultPlan &plan) const
{
    if (!plan.enabled() || plan.rates.dram_word <= 0.0)
        return run(a, b);
    // Corrupt operand copies exactly as SystolicGemm does at entry.
    Matrix<i32> af = a;
    Matrix<i32> bf = b;
    applyDramFaults(plan, af, kDramOperandA, cfg_.bits);
    applyDramFaults(plan, bf, kDramOperandB, cfg_.bits);
    return run(af, bf);
}

double
GemmExecutor::resultScale() const
{
    // Only the comparator/RNG weight schemes accumulate rate counts
    // that need the 2^(N-1) rescale; tubGEMM/tuGEMM are exact.
    return hasWeightBsg(cfg_.scheme) ? double(u64(1) << (cfg_.bits - 1))
                                     : 1.0;
}

} // namespace usys
