#include "arch/early_termination.h"

#include "common/fixed_point.h"
#include "common/matrix.h"
#include "common/prng.h"
#include "common/stats.h"
#include "arch/functional.h"

namespace usys {

std::vector<EtProfilePoint>
profileEarlyTermination(int bits, int k_dim, u64 seed)
{
    Prng prng(seed);
    const int m_rows = 16, n_cols = 16;
    const i32 max_mag = maxMagnitude(bits);

    Matrix<i32> a(m_rows, k_dim), b(k_dim, n_cols);
    for (int m = 0; m < m_rows; ++m)
        for (int k = 0; k < k_dim; ++k)
            a(m, k) = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    for (int k = 0; k < k_dim; ++k)
        for (int n = 0; n < n_cols; ++n)
            b(k, n) = i32(prng.below(2 * u64(max_mag) + 1)) - max_mag;
    const auto exact = referenceGemm(a, b);

    std::vector<EtProfilePoint> points;
    for (int ebt = 2; ebt <= bits; ++ebt) {
        GemmExecutor exec({Scheme::USystolicRate, bits, ebt});
        const auto acc = exec.run(a, b);
        RmseTracker rmse;
        for (int m = 0; m < m_rows; ++m)
            for (int n = 0; n < n_cols; ++n)
                rmse.add(double(exact(m, n)),
                         double(acc(m, n)) * exec.resultScale());
        points.push_back(
            {ebt, u32(1) << (ebt - 1), rmse.normalizedRmse()});
    }
    return points;
}

int
chooseEbt(int bits, int k_dim, double nrmse_tolerance, u64 seed)
{
    for (const auto &point : profileEarlyTermination(bits, k_dim, seed))
        if (point.nrmse <= nrmse_tolerance)
            return point.ebt;
    return bits;
}

} // namespace usys
