/**
 * @file
 * Signal-level referee simulator of the systolic array.
 *
 * SystolicArray (array.h) exploits the fact that inter-column traffic is
 * a one-cycle-delayed left-to-right lane to evaluate columns
 * independently. RtlArray makes no such argument: it steps *every* PE
 * every cycle with explicitly registered wires — weight shift chains
 * down the columns, {valid, bit, sign, random-number, M-end} lanes to
 * the right, partial-sum registers upward — using standard two-phase
 * (compute/commit) clocking. Row skew emerges from when each row's
 * front end is started, not from scheduling arithmetic.
 *
 * Its outputs and cycle counts must match SystolicArray exactly
 * (tests/test_rtl_array.cc), which independently validates the
 * decomposition and the closed-form fold latency.
 */

#ifndef USYS_ARCH_RTL_ARRAY_H
#define USYS_ARCH_RTL_ARRAY_H

#include "common/matrix.h"
#include "common/types.h"
#include "arch/array.h"

namespace usys {

/** Two-phase clocked whole-array simulator. */
class RtlArray
{
  public:
    explicit RtlArray(const ArrayConfig &cfg);

    /** Same contract as SystolicArray::runFold. */
    SystolicArray::FoldResult runFold(const Matrix<i32> &input,
                                      const Matrix<i32> &weights) const;

  private:
    ArrayConfig cfg_;
};

} // namespace usys

#endif // USYS_ARCH_RTL_ARRAY_H
