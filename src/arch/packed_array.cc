#include "arch/packed_array.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <tuple>
#include <vector>

#include "common/cli.h"
#include "common/fixed_point.h"
#include "common/profiler.h"
#include "common/simd.h"
#include "arch/pe.h"
#include "arch/sparsity.h"
#include "unary/bitstream.h"
#include "unary/sobol.h"

// Under the memory-checking sanitizers, poison every reused arena
// buffer with 0xA5 between resize and the staging writes. Any read of a
// slot the current fold did not stage then returns a loud, deterministic
// garbage value instead of silently reusing a previous fold's data —
// the instrumentation that settled the tsan_test_packed_array flake
// investigation (DESIGN.md §16). Release builds compile this out.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define USYS_POISON_ARENAS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define USYS_POISON_ARENAS 1
#endif
#endif

namespace usys {

namespace {

template <typename T>
inline void
poisonArena(std::vector<T> &v)
{
#ifdef USYS_POISON_ARENAS
    if (!v.empty())
        std::memset(static_cast<void *>(v.data()), 0xA5,
                    v.size() * sizeof(T));
#else
    (void)v;
#endif
}

/**
 * Packed threshold-comparison stream with per-word prefix popcounts:
 * stream bit k is (values[k] < threshold), and prefixOnes(n) counts the
 * 1s among the first n bits with one masked popcount — the SWAR form of
 * stepping a C-W comparator + AND + counter n times.
 */
struct PackedStream
{
    std::vector<u64> words;
    std::vector<u32> prefix; // prefix[w] = ones in words[0..w)

    PackedStream() = default;

    /** (Re)build in place, reusing the word/prefix capacity — pooled
     *  instances make a fold allocation-free once warmed up. */
    void
    fill(const std::vector<u32> &values, u32 threshold)
    {
        const u32 n = u32(values.size());
        const u32 nwords = (n + 63) / 64;
        const SimdKernels &simd = simdKernels();
        words.resize(nwords);
        poisonArena(words);
        if (n)
            simd.thresholdPackWords(values.data(), n, threshold,
                                    words.data());
        prefix.resize(nwords + 1);
        poisonArena(prefix);
        simd.prefixPopcount(words.data(), nwords, prefix.data());
    }

    /** 1s among stream bits [0, n). */
    u32
    prefixOnes(u32 n) const
    {
        const u32 w = n >> 6;
        const u32 rem = n & 63;
        u32 ones = prefix[w];
        if (rem)
            ones += u32(std::popcount(words[w] & lowMask(rem)));
        return ones;
    }
};

/**
 * Arena key for one prefix-count table: the first `mul` outputs of the
 * (dimension, bits) shared weight RNG thresholded at `threshold`.
 */
struct CountTableKey
{
    int dim;
    int bits;
    u32 mul;
    u32 threshold;

    bool
    operator<(const CountTableKey &o) const
    {
        return std::tie(dim, bits, mul, threshold) <
               std::tie(o.dim, o.bits, o.mul, o.threshold);
    }
};

/**
 * Per-worker arena of prefix-count tables, the panel fast path's form
 * of a staged weight bitstream: tbl[o] = ones among the first o bits
 * of the packed comparison stream b_k = (rng.at(k) < threshold) — by
 * construction identical to PackedStream::prefixOnes(o) for every o,
 * so a table lookup is bit-exact with a stream query. Tables persist
 * across folds/GEMMs/sweeps (weights recur) under a byte budget sized
 * to the configured L2 share: building evicts the oldest unpinned
 * tables first, and tables pinned by the panel being staged are never
 * evicted (their pointers are live in the panel's pointer grid).
 */
class CountTableArena
{
  public:
    /** Start staging a new panel: unpin everything. */
    void
    beginPanel()
    {
        pinned_.clear();
        pinned_bytes_ = 0;
    }

    /** Bytes pinned by the panel currently being staged. */
    std::size_t pinnedBytes() const { return pinned_bytes_; }

    /**
     * Fetch (building and pinning if needed) the table for `key` over
     * `values`. The returned pointer has mul + 1 entries and stays
     * valid until the next beginPanel().
     */
    const u32 *
    get(const CountTableKey &key, const std::vector<u32> &values,
        std::size_t budget_bytes)
    {
        const std::size_t need =
            (std::size_t(key.mul) + 1) * sizeof(u32);
        auto it = tables_.find(key);
        if (it == tables_.end()) {
            while (bytes_ + need > budget_bytes && evictOneUnpinned())
                ;
            auto &tbl = tables_[key];
            tbl.resize(std::size_t(key.mul) + 1);
            tbl[0] = 0;
            for (u32 k = 0; k < key.mul; ++k)
                tbl[k + 1] = tbl[k] + u32(values[k] < key.threshold);
            bytes_ += need;
            order_.push_back(key);
            it = tables_.find(key);
        }
        if (pinned_.insert(key).second)
            pinned_bytes_ += need;
        return it->second.data();
    }

  private:
    /** Evict the oldest table not pinned by the current panel. */
    bool
    evictOneUnpinned()
    {
        for (std::size_t i = 0; i < order_.size(); ++i) {
            if (pinned_.count(order_[i]))
                continue;
            auto it = tables_.find(order_[i]);
            bytes_ -= it->second.size() * sizeof(u32);
            tables_.erase(it);
            order_.erase(order_.begin() + i);
            return true;
        }
        return false; // everything live is pinned: allow over-budget
    }

    std::map<CountTableKey, std::vector<u32>> tables_;
    std::vector<CountTableKey> order_; // build order (eviction queue)
    std::set<CountTableKey> pinned_;
    std::size_t bytes_ = 0;
    std::size_t pinned_bytes_ = 0;
};

/** Key for one persistent input-ones memo (scheme kind x RNG shape). */
struct OnesMemoKey
{
    int kind; // 0 = rate, 1 = temporal, 2 = bipolar
    int bits;
    u32 mul;

    bool
    operator<(const OnesMemoKey &o) const
    {
        return std::tie(kind, bits, mul) <
               std::tie(o.kind, o.bits, o.mul);
    }
};

/**
 * Per-worker fold scratch. The executor's workers are persistent, so
 * this arena survives across folds, GEMMs, and whole sweeps: the
 * stream pool hands back PackedStream instances with their word/prefix
 * capacity intact, the count-table arena keeps staged weight panels
 * warm, and the ones-memos keep every input magnitude's delivered-ones
 * count (a pure function of (scheme, bits, mul, magnitude), so reuse
 * across folds is bit-exact). Entirely thread-local — parallel tile
 * shards never share scratch.
 */
struct FoldScratch
{
    std::map<OnesMemoKey, std::vector<i64>> ones_memos;
    std::vector<std::unique_ptr<PackedStream>> stream_pool;
    CountTableArena tables;
    SparsityPlan plan; // standalone folds' own nonzero-index plan

    // Panel staging buffers (capacity reused across folds).
    std::vector<u32> in_ones;          // per (m, r) delivered ones
    std::vector<i64> in_neg;           // per (m, r) sign, 0 or -1
    std::vector<const u32 *> stage_a;  // column-major staging
    std::vector<const u32 *> stage_b;
    std::vector<i64> stage_neg;
    std::vector<const u32 *> grid_a;   // row-major panel grids
    std::vector<const u32 *> grid_b;
    std::vector<i64> grid_neg;

    /** Persistent memo for one (kind, bits, mul), grown to `size`. */
    std::vector<i64> &
    onesMemo(int kind, int bits, u32 mul, std::size_t size)
    {
        std::vector<i64> &memo = ones_memos[OnesMemoKey{kind, bits, mul}];
        if (memo.size() < size)
            memo.resize(size, -1);
        return memo;
    }
};

FoldScratch &
foldScratch()
{
    thread_local FoldScratch scratch;
    return scratch;
}

/**
 * Lazily built per-threshold packed streams over one shared RNG value
 * sequence. Weights are stationary and every PE row sees the same RNG
 * values, so a fold needs at most one stream per distinct magnitude.
 * Stream objects are borrowed from the per-worker pool and returned on
 * destruction, so steady-state folds allocate nothing.
 */
class StreamCache
{
  public:
    StreamCache(const std::vector<u32> &values, u32 max_threshold,
                std::vector<std::unique_ptr<PackedStream>> &pool)
        : values_(values), pool_(pool),
          slots_(std::size_t(max_threshold) + 1, nullptr)
    {}

    ~StreamCache()
    {
        for (auto &s : owned_)
            pool_.push_back(std::move(s));
    }

    const PackedStream &
    forThreshold(u32 t)
    {
        PackedStream *&slot = slots_[t];
        if (!slot) {
            std::unique_ptr<PackedStream> s;
            if (!pool_.empty()) {
                s = std::move(pool_.back());
                pool_.pop_back();
            } else {
                s = std::make_unique<PackedStream>();
            }
            s->fill(values_, t);
            slot = s.get();
            owned_.push_back(std::move(s));
        }
        return *slot;
    }

  private:
    const std::vector<u32> &values_;
    std::vector<std::unique_ptr<PackedStream>> &pool_;
    std::vector<PackedStream *> slots_;
    std::vector<std::unique_ptr<PackedStream>> owned_;
};

/**
 * First `count` outputs of a Sobol dimension (the shared lane RNG),
 * computed once per (dimension, bits, count) and shared by reference:
 * every fold of a sweep uses the same few sequences, so regenerating
 * them per fold was pure churn. Entries are immutable once built and
 * never evicted, so the returned reference stays valid for the process
 * lifetime and is safe to read from any thread.
 */
const std::vector<u32> &
sharedSobolValues(int dimension, int bits, u32 count)
{
    using Key = std::tuple<int, int, u32>;
    static std::mutex mu;
    static std::map<Key, std::unique_ptr<const std::vector<u32>>> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = cache[Key(dimension, bits, count)];
    if (!slot) {
        SobolSequence seq(dimension, bits);
        auto v = std::make_unique<std::vector<u32>>(count);
        for (u32 k = 0; k < count; ++k)
            (*v)[k] = seq.next();
        slot = std::move(v);
    }
    return *slot;
}

/** Largest sign-magnitude |value| in a tile (for cache sizing). */
u32
maxAbs(const Matrix<i32> &m)
{
    u32 best = 0;
    for (int r = 0; r < m.rows(); ++r)
        for (int c = 0; c < m.cols(); ++c)
            best = std::max(best, toSignMag(m(r, c)).magnitude);
    return best;
}

} // namespace

PackedArray::PackedArray(const ArrayConfig &cfg)
    : cfg_(cfg)
{
    cfg_.check();
}

SystolicArray::FoldResult
PackedArray::runFold(const Matrix<i32> &input, const Matrix<i32> &weights,
                     FoldStatsDelta *stats, u64 tile,
                     const SparsityPlan *sparsity) const
{
    USYS_PROF_SCOPE("fold.packed");
    const int rows = cfg_.rows;
    const int cols = cfg_.cols;
    fatalIf(input.cols() != rows, "runFold: input width != array rows");
    fatalIf(weights.rows() != rows || weights.cols() != cols,
            "runFold: weight tile does not match array shape");

    const int m_rows = input.rows();
    const KernelConfig &kern = cfg_.kernel;
    const u32 mul = kern.mulCycles();
    const u32 mac = kern.macCycles();

    // Identical closed-form schedule to SystolicArray: the packed model
    // changes how fast the host evaluates a MAC interval, never how many
    // simulated cycles it takes.
    Cycles cycles = Cycles(rows);
    cycles += (u64(m_rows) + rows - 1) * mac + u64(cols - 1);
    const u32 trace_len = (kern.scheme == Scheme::BinaryParallel) ? 1 : mul;

    FoldStatsDelta local;
    FoldStatsDelta &delta = stats ? *stats : local;
    delta.add(m_rows, rows, cols, cycles, trace_len);
    delta.addSparsity(foldSparsityCensus(kern, input, weights));

    // Fault plan: the census is analytic (coordinate enumeration), so
    // it matches SystolicArray's by construction; the event *effects*
    // are applied below at the packed formulation's equivalent points.
    const FaultPlan *plan = cfg_.faults.enabled() ? &cfg_.faults : nullptr;
    if (plan)
        delta.addFaults(countFoldFaults(*plan, kern, tile, m_rows, rows,
                                        cols));
    const bool fw = plan && plan->rates.weight_reg > 0.0;
    const bool fa = plan && plan->rates.activation_stream > 0.0;
    const bool fs = plan && plan->rates.weight_stream > 0.0;
    const bool fo = plan && plan->rates.accumulator > 0.0;
    const u32 acc_width = accumulatorWidth(kern);

    // WeightReg site: stationary weights corrupt once at preload, so a
    // corrupted copy up front is exactly the scalar engine's behavior.
    const Matrix<i32> *wp = &weights;
    Matrix<i32> wfaulted;
    if (fw) {
        wfaulted = weights;
        for (int r = 0; r < rows; ++r)
            for (int c = 0; c < cols; ++c)
                if (const auto f = plan->weightReg(tile, r, c,
                                                   u32(kern.bits)))
                    wfaulted(r, c) =
                        corruptCode(*f, wfaulted(r, c), kern.bits);
        wp = &wfaulted;
    }

    // ActivationStream site, binary schemes: the stream *is* the code
    // bits, so corruption lands on the input codes themselves.
    const bool unary = isUnary(kern.scheme);
    const Matrix<i32> *ip = &input;
    Matrix<i32> ifaulted;
    if (fa && !unary) {
        ifaulted = input;
        for (int m = 0; m < m_rows; ++m)
            for (int r = 0; r < rows; ++r)
                if (const auto f = plan->activationStream(
                        tile, m, r, activationWindow(kern)))
                    ifaulted(m, r) =
                        corruptActivationCode(*f, ifaulted(m, r), kern);
        ip = &ifaulted;
    }

    // Nonzero-index plan for the activation side: the sparse paths below
    // iterate only compacted nonzero columns per input row. An active
    // ActivationStream fault plan can turn a zero operand into a nonzero
    // contribution, so the plan is consumed only when that site is idle;
    // uGEMM-H never consumes one (its bipolar bias makes zero operands
    // contribute — the carve-out in foldSparsityCensus).
    const bool sparse = sparseEnabled() && zeroSkipEnabled() &&
                        kern.scheme != Scheme::UgemmHybrid;
    const SparsityPlan *sp = nullptr;
    if (sparse && !fa) {
        if (sparsity) {
            sp = sparsity;
        } else {
            SparsityPlan &own = foldScratch().plan;
            own.build(input);
            sp = &own;
        }
        if (!sp->anyZero())
            sp = nullptr; // fully dense tile: compaction is pure cost
    }

    const int shift =
        (kern.scheme == Scheme::USystolicRate && kern.et_bits > 0)
            ? kern.bits - kern.et_bits
            : 0;

    Matrix<i64> out(m_rows, cols, 0);

    switch (kern.scheme) {
      case Scheme::BinaryParallel:
      case Scheme::BinarySerial: {
        // Both binary kernels compute the exact product per MAC: parallel
        // multiplies in one cycle; serial accumulates wabs << phase over
        // the input magnitude bits (= wabs * iabs) and sign-corrects at
        // M-end. Either way the fold is a plain integer GEMM. The
        // Accumulator site hits each PE's signed per-interval product
        // before the partial-sum merge, same as PeCore::finishMac.
        if (panelGemmEnabled() && !fo) {
            // No per-MAC fault hook active: the fold is a dense integer
            // GEMM over rows of the (pre-corrupted) staging tiles, so
            // run it on the dispatched SIMD row kernel. Zero inputs
            // contribute exactly zero to every column — skip them.
            USYS_PROF_SCOPE("fold.packed.mac");
            const bool zskip = zeroSkipEnabled();
            const SimdKernels &simd = simdKernels();
            if (sp) {
                // Compacted iteration: only the plan's nonzero columns
                // are touched, so row skipping costs no branch per
                // element (sp is null when activation faults corrupt
                // the staged codes the plan was built from).
                for (int m = 0; m < m_rows; ++m) {
                    const u32 *idx = sp->rowIdx(m);
                    const u32 cnt = sp->rowCount(m);
                    for (u32 i = 0; i < cnt; ++i) {
                        const int r = int(idx[i]);
                        simd.gemmRowI32(&out(m, 0), &(*wp)(r, 0),
                                        (*ip)(m, r), cols);
                    }
                }
                break;
            }
            for (int m = 0; m < m_rows; ++m)
                for (int r = 0; r < rows; ++r) {
                    const i32 a = (*ip)(m, r);
                    if (zskip && a == 0)
                        continue;
                    simd.gemmRowI32(&out(m, 0), &(*wp)(r, 0), a, cols);
                }
            break;
        }
        for (int m = 0; m < m_rows; ++m) {
            for (int c = 0; c < cols; ++c) {
                i64 acc = 0;
                for (int r = 0; r < rows; ++r) {
                    i64 contrib = i64((*ip)(m, r)) * i64((*wp)(r, c));
                    if (fo)
                        if (const auto f = plan->accumulator(tile, m, r, c,
                                                             acc_width))
                            contrib = f->applyToInt(contrib, acc_width);
                    acc += contrib;
                }
                out(m, c) = acc;
            }
        }
        break;
      }

      case Scheme::TubGemm:
      case Scheme::TuGemm: {
        // Both temporal-unary schemes reduce to an exact integer GEMM
        // once the activation's delivered ones-count is staged: the
        // staircase stream of |a| asserts exactly |a| of its 2^(N-1)
        // window bits, so fault-free staging is the identity and no
        // stream words are ever materialized (the stream-generation
        // level of zero skipping). tubGEMM adds the binary weight value
        // per asserted bit; tuGEMM ANDs in the weight staircase, which
        // matches |w| of the held cycles per asserted bit — either way
        // the MAC is (+/- ones) * w, exactly.
        const u32 awin = activationWindow(kern);
        const int rng_bits = kern.bits - 1;
        auto staged_ones = [&](int m, int r) -> i64 {
            const SignMag in = toSignMag(input(m, r));
            u32 ones = in.magnitude;
            if (fa)
                if (const auto af =
                        plan->activationStream(tile, m, r, awin)) {
                    TemporalBsg gen(in.magnitude, rng_bits);
                    ones = u32(onesInWindow(gen, awin, &*af));
                }
            return in.negative ? -i64(ones) : i64(ones);
        };

        if (panelGemmEnabled() && !fo) {
            // Fast path gate is wider than UR/UT's: activation faults
            // fold into the staged ones-count and no weight stream
            // exists to fault, so only a live accumulator site forces
            // the per-MAC loop below.
            USYS_PROF_SCOPE("fold.packed.mac");
            const bool zskip = zeroSkipEnabled();
            const SimdKernels &simd = simdKernels();
            if (sp) {
                for (int m = 0; m < m_rows; ++m) {
                    const u32 *idx = sp->rowIdx(m);
                    const u32 cnt = sp->rowCount(m);
                    for (u32 i = 0; i < cnt; ++i) {
                        const int r = int(idx[i]);
                        simd.gemmRowI32(&out(m, 0), &(*wp)(r, 0),
                                        i32(staged_ones(m, r)), cols);
                    }
                }
                break;
            }
            for (int m = 0; m < m_rows; ++m)
                for (int r = 0; r < rows; ++r) {
                    const i64 a = staged_ones(m, r);
                    if (zskip && a == 0)
                        continue;
                    simd.gemmRowI32(&out(m, 0), &(*wp)(r, 0), i32(a),
                                    cols);
                }
            break;
        }

        for (int m = 0; m < m_rows; ++m) {
            for (int r = 0; r < rows; ++r) {
                const i64 a = staged_ones(m, r);
                for (int c = 0; c < cols; ++c) {
                    i64 contrib = a * i64((*wp)(r, c));
                    // Accumulator site: per-MAC signed OREG
                    // contribution, pre-merge — same point as finishMac.
                    if (fo)
                        if (const auto f = plan->accumulator(
                                tile, m, r, c, acc_width))
                            contrib = f->applyToInt(contrib, acc_width);
                    out(m, c) += contrib;
                }
            }
        }
        break;
      }

      case Scheme::USystolicRate:
      case Scheme::USystolicTemporal: {
        const bool rate = kern.scheme == Scheme::USystolicRate;
        const int rng_bits = kern.bits - 1;
        FoldScratch &scratch = foldScratch();
        // One packed weight-comparison stream per distinct |w|, over the
        // row-shared weight RNG values (C-BSG index k = k-th input 1).
        const std::vector<u32> &wvals =
            sharedSobolValues(kWeightRngDim, rng_bits, mul);
        // Input 1s delivered inside the (possibly early-terminated)
        // window depend only on |i| (a pure function of the RNG shape),
        // so the memo persists across folds in the worker arena.
        std::vector<i64> &ones_memo = scratch.onesMemo(
            rate ? 0 : 1, rng_bits, mul, std::size_t(maxAbs(input)) + 1);
        auto ones_of = [&](u32 iabs) -> u32 {
            // Zero-magnitude streams are all-zero by construction (the
            // comparator threshold is 0), so never materialize their
            // RNG words — the stream-generation level of zero skipping.
            if (iabs == 0)
                return 0;
            i64 &slot = ones_memo[iabs];
            if (slot < 0) {
                if (rate) {
                    RateBsg gen(iabs, kInputRngDim, rng_bits);
                    slot = i64(onesInWindow(gen, mul));
                } else {
                    TemporalBsg gen(iabs, rng_bits);
                    slot = i64(onesInWindow(gen, mul));
                }
            }
            return u32(slot);
        };

        if (panelGemmEnabled() && !fa && !fs && !fo) {
            // --- Cache-blocked panel fast path (DESIGN.md §13) ------
            // No per-MAC fault hook is active (weight-reg and DRAM
            // faults already corrupted the codes above), so each MAC
            // is a pure count-table lookup: count = tbl(|w|)[ones],
            // where tbl(|w|)[o] == PackedStream::prefixOnes(o) by
            // construction. Columns are processed in panels whose
            // staged tables fit the L2 budget; the sign is applied
            // branchless so the inner loop has no data-dependent
            // branches.
            USYS_PROF_SCOPE("fold.packed.panel");
            const bool zskip = zeroSkipEnabled();
            const std::size_t budget = std::max<std::size_t>(
                std::size_t(panelBudgetKb()) * 1024,
                (std::size_t(mul) + 1) * sizeof(u32));

            // Stage the input side once per fold — delivered ones and
            // sign per (m, r) — and reuse it for every column panel.
            std::vector<u32> &in_ones = scratch.in_ones;
            std::vector<i64> &in_neg = scratch.in_neg;
            in_ones.resize(std::size_t(m_rows) * rows);
            in_neg.resize(std::size_t(m_rows) * rows);
            poisonArena(in_ones);
            poisonArena(in_neg);
            {
                USYS_PROF_SCOPE("fold.packed.stage");
                if (sp) {
                    // Compacted staging: zero operands never reach the
                    // ones memo (their slots stay unstaged; the MAC
                    // loop below walks the same plan, so they are
                    // never read either).
                    for (int m = 0; m < m_rows; ++m) {
                        const u32 *idx = sp->rowIdx(m);
                        const u32 cnt = sp->rowCount(m);
                        for (u32 i = 0; i < cnt; ++i) {
                            const int r = int(idx[i]);
                            const SignMag in = toSignMag(input(m, r));
                            in_ones[std::size_t(m) * rows + r] =
                                ones_of(in.magnitude);
                            in_neg[std::size_t(m) * rows + r] =
                                in.negative ? -1 : 0;
                        }
                    }
                } else {
                    for (int m = 0; m < m_rows; ++m)
                        for (int r = 0; r < rows; ++r) {
                            const SignMag in = toSignMag(input(m, r));
                            in_ones[std::size_t(m) * rows + r] =
                                ones_of(in.magnitude);
                            in_neg[std::size_t(m) * rows + r] =
                                in.negative ? -1 : 0;
                        }
                }
            }

            CountTableArena &arena = scratch.tables;
            for (int c0 = 0; c0 < cols;) {
                // Grow the panel column by column until its pinned
                // tables reach the budget (always >= 1 column).
                std::vector<const u32 *> &ctbl = scratch.stage_a;
                std::vector<i64> &cneg = scratch.stage_neg;
                ctbl.clear();
                cneg.clear();
                arena.beginPanel();
                int c1 = c0;
                {
                    USYS_PROF_SCOPE("fold.packed.stage");
                    while (c1 < cols &&
                           (c1 == c0 || arena.pinnedBytes() < budget)) {
                        for (int r = 0; r < rows; ++r) {
                            const SignMag w = toSignMag((*wp)(r, c1));
                            ctbl.push_back(arena.get(
                                {kWeightRngDim, rng_bits, mul,
                                 w.magnitude},
                                wvals, budget));
                            cneg.push_back(w.negative ? i64(-1)
                                                      : i64(0));
                        }
                        ++c1;
                    }
                }
                const int pcols = c1 - c0;
                // Transpose the staging to row-major grids so the MAC
                // inner loop walks contiguous pointers per array row.
                std::vector<const u32 *> &wtbl = scratch.grid_a;
                std::vector<i64> &wneg = scratch.grid_neg;
                wtbl.resize(std::size_t(rows) * pcols);
                wneg.resize(std::size_t(rows) * pcols);
                poisonArena(wtbl);
                poisonArena(wneg);
                for (int cl = 0; cl < pcols; ++cl)
                    for (int r = 0; r < rows; ++r) {
                        wtbl[std::size_t(r) * pcols + cl] =
                            ctbl[std::size_t(cl) * rows + r];
                        wneg[std::size_t(r) * pcols + cl] =
                            cneg[std::size_t(cl) * rows + r];
                    }

                USYS_PROF_SCOPE("fold.packed.mac");
                for (int m = 0; m < m_rows; ++m) {
                    i64 *out_row = &out(m, c0);
                    // Compacted iteration when a plan is live; the
                    // ones == 0 check stays either way — an early-
                    // terminated window can deliver zero 1s even for a
                    // nonzero magnitude.
                    const u32 *idx = sp ? sp->rowIdx(m) : nullptr;
                    const u32 cnt = sp ? sp->rowCount(m) : u32(rows);
                    for (u32 i = 0; i < cnt; ++i) {
                        const int r = sp ? int(idx[i]) : int(i);
                        const u32 ones =
                            in_ones[std::size_t(m) * rows + r];
                        // All-zero input stream: every count is 0.
                        if (zskip && ones == 0)
                            continue;
                        const i64 nin =
                            in_neg[std::size_t(m) * rows + r];
                        const u32 *const *trow =
                            &wtbl[std::size_t(r) * pcols];
                        const i64 *nrow =
                            &wneg[std::size_t(r) * pcols];
                        for (int cl = 0; cl < pcols; ++cl) {
                            const i64 v = i64(trow[cl][ones]);
                            const i64 ng = nrow[cl] ^ nin; // 0 or -1
                            out_row[cl] += (v ^ ng) - ng;
                        }
                    }
                }
                c0 = c1;
            }
            break;
        }

        StreamCache wstreams(wvals, maxAbs(*wp), scratch.stream_pool);
        for (int m = 0; m < m_rows; ++m) {
            for (int r = 0; r < rows; ++r) {
                const SignMag in = toSignMag(input(m, r));
                // ActivationStream site: corrupt the packed input stream
                // before counting — the corrupted ones-count is all the
                // weight side ever sees (the C-BSG advances on observed
                // 1-bits), matching the scalar engine's corrupted
                // consumption counters. Faulted MACs bypass the memo.
                u32 ones;
                std::optional<Fault> af;
                if (fa)
                    af = plan->activationStream(tile, m, r, mul);
                if (af) {
                    if (rate) {
                        RateBsg gen(in.magnitude, kInputRngDim, rng_bits);
                        ones = u32(onesInWindow(gen, mul, &*af));
                    } else {
                        TemporalBsg gen(in.magnitude, rng_bits);
                        ones = u32(onesInWindow(gen, mul, &*af));
                    }
                } else {
                    ones = ones_of(in.magnitude);
                }
                // Zero delivered ones: every count is 0 and weight-
                // stream faults only cover indices below the ones-count,
                // so the whole column sweep contributes exactly nothing
                // — unless an accumulator fault could still fire on it.
                if (sparse && !fo && ones == 0)
                    continue;
                for (int c = 0; c < cols; ++c) {
                    const SignMag w = toSignMag((*wp)(r, c));
                    i64 count =
                        wstreams.forThreshold(w.magnitude).prefixOnes(ones);
                    // WeightStream site: re-derive the covered
                    // comparison bits b_k = (wrng.at(k) < |w|) and swap
                    // each for its corrupted value — only indices below
                    // the delivered ones-count ever reach a comparator.
                    if (fs)
                        if (const auto f = plan->weightStream(tile, m, r,
                                                              c, mul)) {
                            const u64 hi =
                                std::min<u64>(u64(f->first) + f->len,
                                              ones);
                            for (u64 k = f->first; k < hi; ++k) {
                                const bool b =
                                    wvals[std::size_t(k)] < w.magnitude;
                                count += i64(f->corruptBit(b, u32(k))) -
                                         i64(b);
                            }
                        }
                    i64 contrib =
                        (in.negative != w.negative) ? -count : count;
                    // Accumulator site: per-MAC signed OREG contribution,
                    // pre-merge, pre-shift — same point as finishMac.
                    if (fo)
                        if (const auto f = plan->accumulator(tile, m, r, c,
                                                             acc_width))
                            contrib = f->applyToInt(contrib, acc_width);
                    out(m, c) += contrib;
                }
            }
        }
        break;
      }

      case Scheme::UgemmHybrid: {
        const int rng_bits = kern.bits;
        const i64 bias = i64(1) << (kern.bits - 1);
        // Bipolar uMUL: input 1-cycles consume the polarity-1 weight RNG
        // (product bit = rnum < woffset), input 0-cycles the polarity-0
        // RNG (product bit = !(rnum_alt < woffset)).
        const u32 max_woff = u32(maxAbs(*wp) + bias);
        FoldScratch &scratch = foldScratch();
        const std::vector<u32> &s1vals =
            sharedSobolValues(kWeightRngDim, rng_bits, mul);
        const std::vector<u32> &s0vals = sharedSobolValues(
            kWeightRngDim + kWeightAltRngOffset, rng_bits, mul);
        std::vector<i64> &ones_memo = scratch.onesMemo(
            2, rng_bits, mul, std::size_t(maxAbs(input) + bias) + 1);
        auto ones_of = [&](i32 value) -> u32 {
            i64 &slot = ones_memo[std::size_t(value + bias)];
            if (slot < 0) {
                BipolarRateBsg gen(value, kInputRngDim, kern.bits);
                slot = i64(onesInWindow(gen, mul));
            }
            return u32(slot);
        };

        if (panelGemmEnabled() && !fa && !fs && !fo) {
            // --- Cache-blocked panel fast path (DESIGN.md §13) ------
            // Bipolar MAC as two table lookups per column:
            //   contrib = t1(woff)[ones] + (zeros - t0(woff)[zeros])
            //           - bias
            // No zero-skip here: the bias makes even zero-valued
            // operands contribute nonzero bipolar counts.
            USYS_PROF_SCOPE("fold.packed.panel");
            const std::size_t budget = std::max<std::size_t>(
                std::size_t(panelBudgetKb()) * 1024,
                2 * (std::size_t(mul) + 1) * sizeof(u32));

            std::vector<u32> &in_ones = scratch.in_ones;
            in_ones.resize(std::size_t(m_rows) * rows);
            poisonArena(in_ones);
            {
                USYS_PROF_SCOPE("fold.packed.stage");
                for (int m = 0; m < m_rows; ++m)
                    for (int r = 0; r < rows; ++r)
                        in_ones[std::size_t(m) * rows + r] =
                            ones_of(input(m, r));
            }

            CountTableArena &arena = scratch.tables;
            for (int c0 = 0; c0 < cols;) {
                std::vector<const u32 *> &ctbl1 = scratch.stage_a;
                std::vector<const u32 *> &ctbl0 = scratch.stage_b;
                ctbl1.clear();
                ctbl0.clear();
                arena.beginPanel();
                int c1 = c0;
                {
                    USYS_PROF_SCOPE("fold.packed.stage");
                    while (c1 < cols &&
                           (c1 == c0 || arena.pinnedBytes() < budget)) {
                        for (int r = 0; r < rows; ++r) {
                            const u32 woff =
                                u32((*wp)(r, c1) + bias);
                            ctbl1.push_back(arena.get(
                                {kWeightRngDim, rng_bits, mul, woff},
                                s1vals, budget));
                            ctbl0.push_back(arena.get(
                                {kWeightRngDim + kWeightAltRngOffset,
                                 rng_bits, mul, woff},
                                s0vals, budget));
                        }
                        ++c1;
                    }
                }
                const int pcols = c1 - c0;
                std::vector<const u32 *> &wtbl1 = scratch.grid_a;
                std::vector<const u32 *> &wtbl0 = scratch.grid_b;
                wtbl1.resize(std::size_t(rows) * pcols);
                wtbl0.resize(std::size_t(rows) * pcols);
                poisonArena(wtbl1);
                poisonArena(wtbl0);
                for (int cl = 0; cl < pcols; ++cl)
                    for (int r = 0; r < rows; ++r) {
                        wtbl1[std::size_t(r) * pcols + cl] =
                            ctbl1[std::size_t(cl) * rows + r];
                        wtbl0[std::size_t(r) * pcols + cl] =
                            ctbl0[std::size_t(cl) * rows + r];
                    }

                USYS_PROF_SCOPE("fold.packed.mac");
                for (int m = 0; m < m_rows; ++m) {
                    i64 *out_row = &out(m, c0);
                    for (int r = 0; r < rows; ++r) {
                        const u32 ones =
                            in_ones[std::size_t(m) * rows + r];
                        const u32 zeros = mul - ones;
                        const i64 zb = i64(zeros) - bias;
                        const u32 *const *t1row =
                            &wtbl1[std::size_t(r) * pcols];
                        const u32 *const *t0row =
                            &wtbl0[std::size_t(r) * pcols];
                        for (int cl = 0; cl < pcols; ++cl)
                            out_row[cl] += i64(t1row[cl][ones]) -
                                           i64(t0row[cl][zeros]) + zb;
                    }
                }
                c0 = c1;
            }
            break;
        }

        StreamCache s1(s1vals, max_woff, scratch.stream_pool);
        StreamCache s0(s0vals, max_woff, scratch.stream_pool);
        for (int m = 0; m < m_rows; ++m) {
            for (int r = 0; r < rows; ++r) {
                // ActivationStream site: corrupt the packed bipolar
                // stream before counting (memo bypassed); the corrupted
                // split between 1-cycles and 0-cycles drives both
                // polarity lanes exactly as the scalar front end's
                // corrupted consumption counters do.
                u32 ones;
                std::optional<Fault> af;
                if (fa)
                    af = plan->activationStream(tile, m, r, mul);
                if (af) {
                    BipolarRateBsg gen(input(m, r), kInputRngDim,
                                       kern.bits);
                    ones = u32(onesInWindow(gen, mul, &*af));
                } else {
                    ones = ones_of(input(m, r));
                }
                const u32 zeros = mul - ones;
                for (int c = 0; c < cols; ++c) {
                    const u32 woff = u32((*wp)(r, c) + bias);
                    i64 count =
                        i64(s1.forThreshold(woff).prefixOnes(ones)) +
                        (i64(zeros) - s0.forThreshold(woff).prefixOnes(zeros));
                    // WeightStream site: the polarity-1 lane is the same
                    // C-BSG structure the unipolar schemes fault, so
                    // corrupt its covered comparison bits only.
                    if (fs)
                        if (const auto f = plan->weightStream(tile, m, r,
                                                              c, mul)) {
                            const u64 hi =
                                std::min<u64>(u64(f->first) + f->len,
                                              ones);
                            for (u64 k = f->first; k < hi; ++k) {
                                const bool b =
                                    s1vals[std::size_t(k)] < woff;
                                count += i64(f->corruptBit(b, u32(k))) -
                                         i64(b);
                            }
                        }
                    // finishMac's bipolar count -> signed product offset.
                    i64 contrib = count - bias;
                    if (fo)
                        if (const auto f = plan->accumulator(tile, m, r, c,
                                                             acc_width))
                            contrib = f->applyToInt(contrib, acc_width);
                    out(m, c) += contrib;
                }
            }
        }
        break;
      }
    }

    if (shift) {
        for (int m = 0; m < m_rows; ++m)
            for (int c = 0; c < cols; ++c)
                out(m, c) *= i64(1) << shift;
    }

    if (!stats)
        local.flush(kern);
    return SystolicArray::FoldResult{std::move(out), cycles};
}

} // namespace usys
