#include "arch/packed_array.h"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/fixed_point.h"
#include "common/profiler.h"
#include "common/simd.h"
#include "arch/pe.h"
#include "unary/bitstream.h"
#include "unary/sobol.h"

namespace usys {

namespace {

/**
 * Packed threshold-comparison stream with per-word prefix popcounts:
 * stream bit k is (values[k] < threshold), and prefixOnes(n) counts the
 * 1s among the first n bits with one masked popcount — the SWAR form of
 * stepping a C-W comparator + AND + counter n times.
 */
struct PackedStream
{
    std::vector<u64> words;
    std::vector<u32> prefix; // prefix[w] = ones in words[0..w)

    PackedStream() = default;

    /** (Re)build in place, reusing the word/prefix capacity — pooled
     *  instances make a fold allocation-free once warmed up. */
    void
    fill(const std::vector<u32> &values, u32 threshold)
    {
        const u32 n = u32(values.size());
        const u32 nwords = (n + 63) / 64;
        const SimdKernels &simd = simdKernels();
        words.resize(nwords);
        if (n)
            simd.thresholdPackWords(values.data(), n, threshold,
                                    words.data());
        prefix.resize(nwords + 1);
        simd.prefixPopcount(words.data(), nwords, prefix.data());
    }

    /** 1s among stream bits [0, n). */
    u32
    prefixOnes(u32 n) const
    {
        const u32 w = n >> 6;
        const u32 rem = n & 63;
        u32 ones = prefix[w];
        if (rem)
            ones += u32(std::popcount(words[w] & lowMask(rem)));
        return ones;
    }
};

/**
 * Per-worker fold scratch. The executor's workers are persistent, so
 * this arena survives across folds, GEMMs, and whole sweeps: the
 * stream pool hands back PackedStream instances with their word/prefix
 * capacity intact and the ones-memo keeps its backing store. Entirely
 * thread-local — parallel tile shards never share scratch.
 */
struct FoldScratch
{
    std::vector<i64> ones_memo;
    std::vector<std::unique_ptr<PackedStream>> stream_pool;
};

FoldScratch &
foldScratch()
{
    thread_local FoldScratch scratch;
    return scratch;
}

/**
 * Lazily built per-threshold packed streams over one shared RNG value
 * sequence. Weights are stationary and every PE row sees the same RNG
 * values, so a fold needs at most one stream per distinct magnitude.
 * Stream objects are borrowed from the per-worker pool and returned on
 * destruction, so steady-state folds allocate nothing.
 */
class StreamCache
{
  public:
    StreamCache(const std::vector<u32> &values, u32 max_threshold,
                std::vector<std::unique_ptr<PackedStream>> &pool)
        : values_(values), pool_(pool),
          slots_(std::size_t(max_threshold) + 1, nullptr)
    {}

    ~StreamCache()
    {
        for (auto &s : owned_)
            pool_.push_back(std::move(s));
    }

    const PackedStream &
    forThreshold(u32 t)
    {
        PackedStream *&slot = slots_[t];
        if (!slot) {
            std::unique_ptr<PackedStream> s;
            if (!pool_.empty()) {
                s = std::move(pool_.back());
                pool_.pop_back();
            } else {
                s = std::make_unique<PackedStream>();
            }
            s->fill(values_, t);
            slot = s.get();
            owned_.push_back(std::move(s));
        }
        return *slot;
    }

  private:
    const std::vector<u32> &values_;
    std::vector<std::unique_ptr<PackedStream>> &pool_;
    std::vector<PackedStream *> slots_;
    std::vector<std::unique_ptr<PackedStream>> owned_;
};

/**
 * First `count` outputs of a Sobol dimension (the shared lane RNG),
 * computed once per (dimension, bits, count) and shared by reference:
 * every fold of a sweep uses the same few sequences, so regenerating
 * them per fold was pure churn. Entries are immutable once built and
 * never evicted, so the returned reference stays valid for the process
 * lifetime and is safe to read from any thread.
 */
const std::vector<u32> &
sharedSobolValues(int dimension, int bits, u32 count)
{
    using Key = std::tuple<int, int, u32>;
    static std::mutex mu;
    static std::map<Key, std::unique_ptr<const std::vector<u32>>> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = cache[Key(dimension, bits, count)];
    if (!slot) {
        SobolSequence seq(dimension, bits);
        auto v = std::make_unique<std::vector<u32>>(count);
        for (u32 k = 0; k < count; ++k)
            (*v)[k] = seq.next();
        slot = std::move(v);
    }
    return *slot;
}

/** Largest sign-magnitude |value| in a tile (for cache sizing). */
u32
maxAbs(const Matrix<i32> &m)
{
    u32 best = 0;
    for (int r = 0; r < m.rows(); ++r)
        for (int c = 0; c < m.cols(); ++c)
            best = std::max(best, toSignMag(m(r, c)).magnitude);
    return best;
}

} // namespace

PackedArray::PackedArray(const ArrayConfig &cfg)
    : cfg_(cfg)
{
    cfg_.check();
}

SystolicArray::FoldResult
PackedArray::runFold(const Matrix<i32> &input, const Matrix<i32> &weights,
                     FoldStatsDelta *stats, u64 tile) const
{
    USYS_PROF_SCOPE("fold.packed");
    const int rows = cfg_.rows;
    const int cols = cfg_.cols;
    fatalIf(input.cols() != rows, "runFold: input width != array rows");
    fatalIf(weights.rows() != rows || weights.cols() != cols,
            "runFold: weight tile does not match array shape");

    const int m_rows = input.rows();
    const KernelConfig &kern = cfg_.kernel;
    const u32 mul = kern.mulCycles();
    const u32 mac = kern.macCycles();

    // Identical closed-form schedule to SystolicArray: the packed model
    // changes how fast the host evaluates a MAC interval, never how many
    // simulated cycles it takes.
    Cycles cycles = Cycles(rows);
    cycles += (u64(m_rows) + rows - 1) * mac + u64(cols - 1);
    const u32 trace_len = (kern.scheme == Scheme::BinaryParallel) ? 1 : mul;

    FoldStatsDelta local;
    FoldStatsDelta &delta = stats ? *stats : local;
    delta.add(m_rows, rows, cols, cycles, trace_len);

    // Fault plan: the census is analytic (coordinate enumeration), so
    // it matches SystolicArray's by construction; the event *effects*
    // are applied below at the packed formulation's equivalent points.
    const FaultPlan *plan = cfg_.faults.enabled() ? &cfg_.faults : nullptr;
    if (plan)
        delta.addFaults(countFoldFaults(*plan, kern, tile, m_rows, rows,
                                        cols));
    const bool fw = plan && plan->rates.weight_reg > 0.0;
    const bool fa = plan && plan->rates.activation_stream > 0.0;
    const bool fs = plan && plan->rates.weight_stream > 0.0;
    const bool fo = plan && plan->rates.accumulator > 0.0;
    const u32 acc_width = accumulatorWidth(kern);

    // WeightReg site: stationary weights corrupt once at preload, so a
    // corrupted copy up front is exactly the scalar engine's behavior.
    const Matrix<i32> *wp = &weights;
    Matrix<i32> wfaulted;
    if (fw) {
        wfaulted = weights;
        for (int r = 0; r < rows; ++r)
            for (int c = 0; c < cols; ++c)
                if (const auto f = plan->weightReg(tile, r, c,
                                                   u32(kern.bits)))
                    wfaulted(r, c) =
                        corruptCode(*f, wfaulted(r, c), kern.bits);
        wp = &wfaulted;
    }

    // ActivationStream site, binary schemes: the stream *is* the code
    // bits, so corruption lands on the input codes themselves.
    const bool unary = isUnary(kern.scheme);
    const Matrix<i32> *ip = &input;
    Matrix<i32> ifaulted;
    if (fa && !unary) {
        ifaulted = input;
        for (int m = 0; m < m_rows; ++m)
            for (int r = 0; r < rows; ++r)
                if (const auto f = plan->activationStream(
                        tile, m, r, activationWindow(kern)))
                    ifaulted(m, r) =
                        corruptActivationCode(*f, ifaulted(m, r), kern);
        ip = &ifaulted;
    }

    const int shift =
        (kern.scheme == Scheme::USystolicRate && kern.et_bits > 0)
            ? kern.bits - kern.et_bits
            : 0;

    Matrix<i64> out(m_rows, cols, 0);

    switch (kern.scheme) {
      case Scheme::BinaryParallel:
      case Scheme::BinarySerial: {
        // Both binary kernels compute the exact product per MAC: parallel
        // multiplies in one cycle; serial accumulates wabs << phase over
        // the input magnitude bits (= wabs * iabs) and sign-corrects at
        // M-end. Either way the fold is a plain integer GEMM. The
        // Accumulator site hits each PE's signed per-interval product
        // before the partial-sum merge, same as PeCore::finishMac.
        for (int m = 0; m < m_rows; ++m) {
            for (int c = 0; c < cols; ++c) {
                i64 acc = 0;
                for (int r = 0; r < rows; ++r) {
                    i64 contrib = i64((*ip)(m, r)) * i64((*wp)(r, c));
                    if (fo)
                        if (const auto f = plan->accumulator(tile, m, r, c,
                                                             acc_width))
                            contrib = f->applyToInt(contrib, acc_width);
                    acc += contrib;
                }
                out(m, c) = acc;
            }
        }
        break;
      }

      case Scheme::USystolicRate:
      case Scheme::USystolicTemporal: {
        const bool rate = kern.scheme == Scheme::USystolicRate;
        const int rng_bits = kern.bits - 1;
        FoldScratch &scratch = foldScratch();
        // One packed weight-comparison stream per distinct |w|, over the
        // row-shared weight RNG values (C-BSG index k = k-th input 1).
        const std::vector<u32> &wvals =
            sharedSobolValues(kWeightRngDim, rng_bits, mul);
        StreamCache wstreams(wvals, maxAbs(*wp), scratch.stream_pool);
        // Input 1s delivered inside the (possibly early-terminated)
        // window depend only on |i|, so memoize per magnitude.
        std::vector<i64> &ones_memo = scratch.ones_memo;
        ones_memo.assign(std::size_t(maxAbs(input)) + 1, -1);
        auto ones_of = [&](u32 iabs) -> u32 {
            i64 &slot = ones_memo[iabs];
            if (slot < 0) {
                if (rate) {
                    RateBsg gen(iabs, kInputRngDim, rng_bits);
                    slot = i64(onesInWindow(gen, mul));
                } else {
                    TemporalBsg gen(iabs, rng_bits);
                    slot = i64(onesInWindow(gen, mul));
                }
            }
            return u32(slot);
        };
        for (int m = 0; m < m_rows; ++m) {
            for (int r = 0; r < rows; ++r) {
                const SignMag in = toSignMag(input(m, r));
                // ActivationStream site: corrupt the packed input stream
                // before counting — the corrupted ones-count is all the
                // weight side ever sees (the C-BSG advances on observed
                // 1-bits), matching the scalar engine's corrupted
                // consumption counters. Faulted MACs bypass the memo.
                u32 ones;
                std::optional<Fault> af;
                if (fa)
                    af = plan->activationStream(tile, m, r, mul);
                if (af) {
                    if (rate) {
                        RateBsg gen(in.magnitude, kInputRngDim, rng_bits);
                        ones = u32(onesInWindow(gen, mul, &*af));
                    } else {
                        TemporalBsg gen(in.magnitude, rng_bits);
                        ones = u32(onesInWindow(gen, mul, &*af));
                    }
                } else {
                    ones = ones_of(in.magnitude);
                }
                for (int c = 0; c < cols; ++c) {
                    const SignMag w = toSignMag((*wp)(r, c));
                    i64 count =
                        wstreams.forThreshold(w.magnitude).prefixOnes(ones);
                    // WeightStream site: re-derive the covered
                    // comparison bits b_k = (wrng.at(k) < |w|) and swap
                    // each for its corrupted value — only indices below
                    // the delivered ones-count ever reach a comparator.
                    if (fs)
                        if (const auto f = plan->weightStream(tile, m, r,
                                                              c, mul)) {
                            const u64 hi =
                                std::min<u64>(u64(f->first) + f->len,
                                              ones);
                            for (u64 k = f->first; k < hi; ++k) {
                                const bool b =
                                    wvals[std::size_t(k)] < w.magnitude;
                                count += i64(f->corruptBit(b, u32(k))) -
                                         i64(b);
                            }
                        }
                    i64 contrib =
                        (in.negative != w.negative) ? -count : count;
                    // Accumulator site: per-MAC signed OREG contribution,
                    // pre-merge, pre-shift — same point as finishMac.
                    if (fo)
                        if (const auto f = plan->accumulator(tile, m, r, c,
                                                             acc_width))
                            contrib = f->applyToInt(contrib, acc_width);
                    out(m, c) += contrib;
                }
            }
        }
        break;
      }

      case Scheme::UgemmHybrid: {
        const int rng_bits = kern.bits;
        const i64 bias = i64(1) << (kern.bits - 1);
        // Bipolar uMUL: input 1-cycles consume the polarity-1 weight RNG
        // (product bit = rnum < woffset), input 0-cycles the polarity-0
        // RNG (product bit = !(rnum_alt < woffset)).
        const u32 max_woff = u32(maxAbs(*wp) + bias);
        FoldScratch &scratch = foldScratch();
        const std::vector<u32> &s1vals =
            sharedSobolValues(kWeightRngDim, rng_bits, mul);
        StreamCache s1(s1vals, max_woff, scratch.stream_pool);
        StreamCache s0(sharedSobolValues(kWeightRngDim + kWeightAltRngOffset,
                                         rng_bits, mul),
                       max_woff, scratch.stream_pool);
        std::vector<i64> &ones_memo = scratch.ones_memo;
        ones_memo.assign(std::size_t(maxAbs(input) + bias) + 1, -1);
        auto ones_of = [&](i32 value) -> u32 {
            i64 &slot = ones_memo[std::size_t(value + bias)];
            if (slot < 0) {
                BipolarRateBsg gen(value, kInputRngDim, kern.bits);
                slot = i64(onesInWindow(gen, mul));
            }
            return u32(slot);
        };
        for (int m = 0; m < m_rows; ++m) {
            for (int r = 0; r < rows; ++r) {
                // ActivationStream site: corrupt the packed bipolar
                // stream before counting (memo bypassed); the corrupted
                // split between 1-cycles and 0-cycles drives both
                // polarity lanes exactly as the scalar front end's
                // corrupted consumption counters do.
                u32 ones;
                std::optional<Fault> af;
                if (fa)
                    af = plan->activationStream(tile, m, r, mul);
                if (af) {
                    BipolarRateBsg gen(input(m, r), kInputRngDim,
                                       kern.bits);
                    ones = u32(onesInWindow(gen, mul, &*af));
                } else {
                    ones = ones_of(input(m, r));
                }
                const u32 zeros = mul - ones;
                for (int c = 0; c < cols; ++c) {
                    const u32 woff = u32((*wp)(r, c) + bias);
                    i64 count =
                        i64(s1.forThreshold(woff).prefixOnes(ones)) +
                        (i64(zeros) - s0.forThreshold(woff).prefixOnes(zeros));
                    // WeightStream site: the polarity-1 lane is the same
                    // C-BSG structure the unipolar schemes fault, so
                    // corrupt its covered comparison bits only.
                    if (fs)
                        if (const auto f = plan->weightStream(tile, m, r,
                                                              c, mul)) {
                            const u64 hi =
                                std::min<u64>(u64(f->first) + f->len,
                                              ones);
                            for (u64 k = f->first; k < hi; ++k) {
                                const bool b =
                                    s1vals[std::size_t(k)] < woff;
                                count += i64(f->corruptBit(b, u32(k))) -
                                         i64(b);
                            }
                        }
                    // finishMac's bipolar count -> signed product offset.
                    i64 contrib = count - bias;
                    if (fo)
                        if (const auto f = plan->accumulator(tile, m, r, c,
                                                             acc_width))
                            contrib = f->applyToInt(contrib, acc_width);
                    out(m, c) += contrib;
                }
            }
        }
        break;
      }
    }

    if (shift) {
        for (int m = 0; m < m_rows; ++m)
            for (int c = 0; c < cols; ++c)
                out(m, c) *= i64(1) << shift;
    }

    if (!stats)
        local.flush(kern);
    return SystolicArray::FoldResult{std::move(out), cycles};
}

} // namespace usys
