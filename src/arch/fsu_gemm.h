/**
 * @file
 * Functional model of a fully-streaming unary (FSU) GEMM — the
 * uGEMM-class datapath of Figure 5a/6: bipolar rate-coded operand
 * streams, bipolar uMULs, and *unary-domain* accumulation through a
 * mux-based scaled adder tree (no intermediate binary conversion).
 *
 * This is the architecture whose accuracy column Table I rates
 * "Low-High": the scaled adder divides by the fan-in K, so each output
 * LSB stands for K product units and the accumulation noise grows with
 * K — exactly what uSystolic's binary accumulation eliminates. The
 * Table I bench measures the gap.
 */

#ifndef USYS_ARCH_FSU_GEMM_H
#define USYS_ARCH_FSU_GEMM_H

#include "common/matrix.h"
#include "arch/scheme.h"

namespace usys {

/** Stream-level FSU GEMM executor. */
class FsuGemmExecutor
{
  public:
    /**
     * @param bits signed data bitwidth (streams span 2^bits cycles)
     */
    explicit FsuGemmExecutor(int bits);

    /**
     * Estimate C = A (MxK) x B (KxN) through the fully streaming
     * pipeline. Returns scaled-product estimates comparable to
     * GemmExecutor's unary accumulations (multiply by 2^(bits-1) for
     * exact-product units).
     */
    Matrix<double> run(const Matrix<i32> &a, const Matrix<i32> &b) const;

    double resultScale() const { return double(u64(1) << (bits_ - 1)); }

  private:
    int bits_;
};

} // namespace usys

#endif // USYS_ARCH_FSU_GEMM_H
