/**
 * @file
 * Processing-element building blocks (Figure 7).
 *
 * A uSystolic row is split into two reusable pieces:
 *
 *  - RowFrontEnd: the leftmost-column machinery of one row — the input
 *    bitstream generator (IABS/ISIGN + C-I comparator with RNG or CNT) and
 *    the row's weight-side Sobol RNG. It emits per-cycle lane signals
 *    (input bit, input sign, random number) that propagate rightward
 *    through IDFF/RREG with a one-cycle lag per column.
 *
 *  - PeCore: the per-PE arithmetic — C-W comparator + AND (uMUL), the
 *    sign XOR, and the OREG accumulator with M-end partial-sum merge.
 *
 * Because the lane signals are identical in every column (just delayed),
 * a leftmost PE is RowFrontEnd + PeCore and every other PE is the delayed
 * lane + PeCore. The binary parallel/serial schemes reuse the same
 * interface so the systolic array simulator is scheme-agnostic.
 */

#ifndef USYS_ARCH_PE_H
#define USYS_ARCH_PE_H

#include <optional>

#include "common/fixed_point.h"
#include "common/types.h"
#include "arch/scheme.h"
#include "unary/sobol.h"

namespace usys {

/** Default Sobol dimension of the (row-shared) weight RNG. */
constexpr int kWeightRngDim = 0;
/** Default Sobol dimension of the input-side rate BSG. */
constexpr int kInputRngDim = 1;
/** Sobol dimension offset of the second (polarity-0) uGEMM-H weight RNG. */
constexpr int kWeightAltRngOffset = 2;

/** Signals a row lane carries rightward each multiplication cycle. */
struct LaneSignals
{
    bool ibit = false;   // input stream bit (or serial magnitude bit)
    bool isign = false;  // input sign
    u32 rnum = 0;        // weight-side random number (RREG chain)
    u32 rnum_alt = 0;    // second RNG lane, used only by bipolar uGEMM-H
    i32 ivalue = 0;      // full input value, used only by binary parallel
};

/** Leftmost-column lane generator for one row. */
class RowFrontEnd
{
  public:
    /**
     * @param cfg kernel configuration
     * @param weight_rng_dim Sobol dimension of the weight-side RNG
     * @param input_rng_dim Sobol dimension of the input-side RNG
     */
    RowFrontEnd(const KernelConfig &cfg, int weight_rng_dim = kWeightRngDim,
                int input_rng_dim = kInputRngDim)
        : cfg_(cfg),
          wrng_(weight_rng_dim, rngBits(cfg)),
          irng_(input_rng_dim, rngBits(cfg)),
          wrng_alt_(weight_rng_dim + kWeightAltRngOffset, rngBits(cfg))
    {}

    /** Latch a new input value (IABS/ISIGN) at a MAC-interval start. */
    void
    loadInput(i32 value)
    {
        const SignMag sm = toSignMag(value);
        iabs_ = sm.magnitude;
        isign_ = sm.negative;
        ivalue_ = value;
        // Bipolar offset coding for uGEMM-H.
        ioffset_ = u32(value + (i32(1) << (cfg_.bits - 1)));
        // Bitstreams restart every MAC interval.
        wrng_.reset();
        irng_.reset();
        wrng_alt_.reset();
        cnt_ = 0;
        consumed_ = 0;
        consumed_alt_ = 0;
    }

    /**
     * Produce this cycle's lane signals.
     *
     * @param phase multiplication-cycle index within the MAC interval
     */
    LaneSignals
    step(u32 phase)
    {
        LaneSignals lane;
        lane.isign = isign_;
        lane.ivalue = ivalue_;
        switch (cfg_.scheme) {
          case Scheme::BinaryParallel:
            lane.ibit = true;
            break;
          case Scheme::BinarySerial:
            lane.ibit = (iabs_ >> phase) & 1;
            break;
          case Scheme::USystolicRate:
          case Scheme::USystolicTemporal: {
            bool ibit;
            if (cfg_.scheme == Scheme::USystolicRate) {
                ibit = irng_.next() < iabs_;
            } else {
                // Temporal: 1s at the tail of the full period.
                const u32 period = u32(1) << (cfg_.bits - 1);
                ibit = cnt_ >= period - iabs_;
                ++cnt_;
            }
            lane.ibit = ibit;
            lane.rnum = wrng_.at(consumed_);
            if (ibit)
                ++consumed_;
            break;
          }
          case Scheme::UgemmHybrid: {
            const bool ibit = irng_.next() < ioffset_;
            lane.ibit = ibit;
            lane.rnum = wrng_.at(consumed_);
            lane.rnum_alt = wrng_alt_.at(consumed_alt_);
            if (ibit)
                ++consumed_;
            else
                ++consumed_alt_;
            break;
          }
        }
        return lane;
    }

    /** Reset bitstream state at M-end (next interval restarts streams). */
    void
    endMac()
    {
        consumed_ = 0;
        consumed_alt_ = 0;
    }

  private:
    static int
    rngBits(const KernelConfig &cfg)
    {
        // Bipolar streams span 2^N cycles; unipolar 2^(N-1).
        return cfg.scheme == Scheme::UgemmHybrid ? cfg.bits : cfg.bits - 1;
    }

    KernelConfig cfg_;
    SobolSequence wrng_;
    SobolSequence irng_;
    SobolSequence wrng_alt_;
    u32 iabs_ = 0;
    bool isign_ = false;
    i32 ivalue_ = 0;
    u32 ioffset_ = 0;
    u32 cnt_ = 0;
    u64 consumed_ = 0;
    u64 consumed_alt_ = 0;
};

/** Per-PE arithmetic core: uMUL + sign XOR + OREG accumulate. */
class PeCore
{
  public:
    explicit PeCore(const KernelConfig &cfg) : cfg_(cfg) {}

    /** Latch a stationary weight (WABS/WSIGN). */
    void
    loadWeight(i32 value)
    {
        const SignMag sm = toSignMag(value);
        wabs_ = sm.magnitude;
        wsign_ = sm.negative;
        wvalue_ = value;
        woffset_ = u32(value + (i32(1) << (cfg_.bits - 1)));
        oreg_ = 0;
    }

    /** One multiplication cycle. */
    void
    stepMul(const LaneSignals &lane, u32 phase)
    {
        switch (cfg_.scheme) {
          case Scheme::BinaryParallel:
            oreg_ = i64(lane.ivalue) * wvalue_;
            break;
          case Scheme::BinarySerial:
            if (lane.ibit)
                oreg_ += i64(wabs_) << phase;
            break;
          case Scheme::USystolicRate:
          case Scheme::USystolicTemporal: {
            const bool pbit = lane.ibit && (lane.rnum < wabs_);
            if (pbit)
                oreg_ += (lane.isign != wsign_) ? -1 : 1;
            break;
          }
          case Scheme::UgemmHybrid: {
            const bool pbit = lane.ibit ? (lane.rnum < woffset_)
                                        : !(lane.rnum_alt < woffset_);
            if (pbit)
                ++oreg_;
            break;
          }
        }
    }

    /**
     * M-end: merge the partial sum from the PE below, reset the OREG, and
     * return the value passed upward.
     *
     * @param psum_below partial sum arriving from the PE below
     * @param input_sign sign bit of the finished input (binary serial)
     */
    i64
    finishMac(i64 psum_below, bool input_sign)
    {
        i64 value = oreg_;
        if (cfg_.scheme == Scheme::BinarySerial && (input_sign != wsign_))
            value = -value;
        if (cfg_.scheme == Scheme::UgemmHybrid) {
            // Bipolar count -> signed scaled product (x*w / 2^(N-1)).
            value -= i64(1) << (cfg_.bits - 1);
        }
        oreg_ = 0;
        return value + psum_below;
    }

    i64 oreg() const { return oreg_; }
    i32 weight() const { return wvalue_; }

  private:
    KernelConfig cfg_;
    u32 wabs_ = 0;
    bool wsign_ = false;
    i32 wvalue_ = 0;
    u32 woffset_ = 0;
    i64 oreg_ = 0;
};

} // namespace usys

#endif // USYS_ARCH_PE_H
