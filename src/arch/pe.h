/**
 * @file
 * Processing-element building blocks (Figure 7).
 *
 * A uSystolic row is split into two reusable pieces:
 *
 *  - RowFrontEnd: the leftmost-column machinery of one row — the input
 *    bitstream generator (IABS/ISIGN + C-I comparator with RNG or CNT) and
 *    the row's weight-side Sobol RNG. It emits per-cycle lane signals
 *    (input bit, input sign, random number) that propagate rightward
 *    through IDFF/RREG with a one-cycle lag per column.
 *
 *  - PeCore: the per-PE arithmetic — C-W comparator + AND (uMUL), the
 *    sign XOR, and the OREG accumulator with M-end partial-sum merge.
 *
 * Because the lane signals are identical in every column (just delayed),
 * a leftmost PE is RowFrontEnd + PeCore and every other PE is the delayed
 * lane + PeCore. The binary parallel/serial schemes reuse the same
 * interface so the systolic array simulator is scheme-agnostic.
 */

#ifndef USYS_ARCH_PE_H
#define USYS_ARCH_PE_H

#include <optional>

#include "common/fixed_point.h"
#include "common/types.h"
#include "arch/scheme.h"
#include "fault/fault.h"
#include "unary/sobol.h"

namespace usys {

/** Default Sobol dimension of the (row-shared) weight RNG. */
constexpr int kWeightRngDim = 0;
/** Default Sobol dimension of the input-side rate BSG. */
constexpr int kInputRngDim = 1;
/** Sobol dimension offset of the second (polarity-0) uGEMM-H weight RNG. */
constexpr int kWeightAltRngOffset = 2;

/** Signals a row lane carries rightward each multiplication cycle. */
struct LaneSignals
{
    bool ibit = false;   // input stream bit (or serial magnitude bit)
    bool isign = false;  // input sign
    u32 rnum = 0;        // weight-side random number (RREG chain)
    u32 rnum_alt = 0;    // second RNG lane, used only by bipolar uGEMM-H
    i32 ivalue = 0;      // full input value, used only by binary parallel
};

/** Leftmost-column lane generator for one row. */
class RowFrontEnd
{
  public:
    /**
     * @param cfg kernel configuration
     * @param weight_rng_dim Sobol dimension of the weight-side RNG
     * @param input_rng_dim Sobol dimension of the input-side RNG
     */
    RowFrontEnd(const KernelConfig &cfg, int weight_rng_dim = kWeightRngDim,
                int input_rng_dim = kInputRngDim)
        : cfg_(cfg),
          wrng_(weight_rng_dim, rngBits(cfg)),
          irng_(input_rng_dim, rngBits(cfg)),
          wrng_alt_(weight_rng_dim + kWeightAltRngOffset, rngBits(cfg))
    {}

    /** Latch a new input value (IABS/ISIGN) at a MAC-interval start. */
    void
    loadInput(i32 value)
    {
        const SignMag sm = toSignMag(value);
        iabs_ = sm.magnitude;
        isign_ = sm.negative;
        ivalue_ = value;
        // Bipolar offset coding for uGEMM-H.
        ioffset_ = u32(value + (i32(1) << (cfg_.bits - 1)));
        // Bitstreams restart every MAC interval.
        wrng_.reset();
        irng_.reset();
        wrng_alt_.reset();
        cnt_ = 0;
        consumed_ = 0;
        consumed_alt_ = 0;
    }

    /**
     * Produce this cycle's lane signals.
     *
     * @param phase multiplication-cycle index within the MAC interval
     */
    LaneSignals
    step(u32 phase)
    {
        LaneSignals lane;
        lane.isign = isign_;
        lane.ivalue = ivalue_;
        switch (cfg_.scheme) {
          case Scheme::BinaryParallel:
            lane.ibit = true;
            break;
          case Scheme::BinarySerial:
            lane.ibit = (iabs_ >> phase) & 1;
            break;
          case Scheme::USystolicRate:
          case Scheme::USystolicTemporal: {
            bool ibit;
            if (cfg_.scheme == Scheme::USystolicRate) {
                ibit = irng_.next() < iabs_;
            } else {
                // Temporal: 1s at the tail of the full period.
                const u32 period = u32(1) << (cfg_.bits - 1);
                ibit = cnt_ >= period - iabs_;
                ++cnt_;
            }
            if (sfault_ && sfault_->covers(phase))
                ibit = sfault_->corruptBit(ibit, phase);
            lane.ibit = ibit;
            lane.rnum = wrng_.at(consumed_);
            if (ibit)
                ++consumed_;
            break;
          }
          case Scheme::TubGemm: {
            // Temporal activation stream against a binary weight: same
            // staircase as UT, no weight-side RNG at all.
            const u32 period = u32(1) << (cfg_.bits - 1);
            bool ibit = cnt_ >= period - iabs_;
            ++cnt_;
            if (sfault_ && sfault_->covers(phase))
                ibit = sfault_->corruptBit(ibit, phase);
            lane.ibit = ibit;
            break;
          }
          case Scheme::TuGemm: {
            // Both operands temporal: each of the P activation-stream
            // bits is held for the P cycles of one weight-staircase
            // sweep, so the activation stream index is phase / P (and
            // that index is the fault coordinate — activationWindow()
            // returns P for tuGEMM).
            const u32 period = u32(1) << (cfg_.bits - 1);
            const u32 idx = phase >> (cfg_.bits - 1);
            bool ibit = idx >= period - iabs_;
            if (sfault_ && sfault_->covers(idx))
                ibit = sfault_->corruptBit(ibit, idx);
            lane.ibit = ibit;
            break;
          }
          case Scheme::UgemmHybrid: {
            bool ibit = irng_.next() < ioffset_;
            if (sfault_ && sfault_->covers(phase))
                ibit = sfault_->corruptBit(ibit, phase);
            lane.ibit = ibit;
            lane.rnum = wrng_.at(consumed_);
            lane.rnum_alt = wrng_alt_.at(consumed_alt_);
            if (ibit)
                ++consumed_;
            else
                ++consumed_alt_;
            break;
          }
        }
        return lane;
    }

    /** Reset bitstream state at M-end (next interval restarts streams). */
    void
    endMac()
    {
        consumed_ = 0;
        consumed_alt_ = 0;
    }

    /**
     * Attach the current MAC interval's ActivationStream fault (null =
     * none); the engine resolves it per (tile, m, r) alongside
     * loadInput(). The corrupted bit is what the consumption counters
     * see, so the weight-side RNG advances exactly as it would in
     * faulty hardware — and exactly as the packed engine's corrupted
     * ones-count implies.
     */
    void setStreamFault(const Fault *fault) { sfault_ = fault; }

  private:
    static int
    rngBits(const KernelConfig &cfg)
    {
        // Bipolar streams span 2^N cycles; unipolar 2^(N-1).
        return cfg.scheme == Scheme::UgemmHybrid ? cfg.bits : cfg.bits - 1;
    }

    KernelConfig cfg_;
    SobolSequence wrng_;
    SobolSequence irng_;
    SobolSequence wrng_alt_;
    u32 iabs_ = 0;
    bool isign_ = false;
    i32 ivalue_ = 0;
    u32 ioffset_ = 0;
    u32 cnt_ = 0;
    u64 consumed_ = 0;
    u64 consumed_alt_ = 0;
    const Fault *sfault_ = nullptr;
};

/** Per-PE arithmetic core: uMUL + sign XOR + OREG accumulate. */
class PeCore
{
  public:
    explicit PeCore(const KernelConfig &cfg) : cfg_(cfg) {}

    /**
     * Enable fault injection for this PE at array position (r, c) of
     * fold `tile`. The core tracks its own MAC-interval index (engines
     * evaluate intervals in order per PE) and resolves the
     * WeightStream / Accumulator sites from the plan on demand, so the
     * scalar reference and the RTL referee corrupt exactly the
     * coordinates the packed engine does.
     */
    void
    attachFaults(const FaultPlan *plan, u64 tile, int r, int c)
    {
        faults_ = plan;
        ftile_ = tile;
        fr_ = r;
        fc_ = c;
        finterval_ = 0;
        cmp_ = 0;
        wsf_resolved_ = false;
        wsf_.reset();
        wsf_window_ = cfg_.mulCycles();
        acc_width_ = accumulatorWidth(cfg_);
    }

    /** Latch a stationary weight (WABS/WSIGN). */
    void
    loadWeight(i32 value)
    {
        const SignMag sm = toSignMag(value);
        wabs_ = sm.magnitude;
        wsign_ = sm.negative;
        wvalue_ = value;
        woffset_ = u32(value + (i32(1) << (cfg_.bits - 1)));
        oreg_ = 0;
    }

    /** One multiplication cycle. */
    void
    stepMul(const LaneSignals &lane, u32 phase)
    {
        switch (cfg_.scheme) {
          case Scheme::BinaryParallel:
            oreg_ = i64(lane.ivalue) * wvalue_;
            break;
          case Scheme::BinarySerial:
            if (lane.ibit)
                oreg_ += i64(wabs_) << phase;
            break;
          case Scheme::USystolicRate:
          case Scheme::USystolicTemporal: {
            bool pbit = false;
            if (lane.ibit)
                pbit = corruptedCompare(lane.rnum < wabs_);
            if (pbit)
                oreg_ += (lane.isign != wsign_) ? -1 : 1;
            break;
          }
          case Scheme::UgemmHybrid: {
            // WeightStream faults hit the polarity-1 lane only (the
            // same C-BSG structure the unipolar schemes fault).
            const bool pbit =
                lane.ibit ? corruptedCompare(lane.rnum < woffset_)
                          : !(lane.rnum_alt < woffset_);
            if (pbit)
                ++oreg_;
            break;
          }
          case Scheme::TubGemm:
            // The binary weight value enters the accumulator whole on
            // every asserted activation bit: oreg = ones(a) * w exactly,
            // in 2^(N-1) cycles. No comparator, no weight stream.
            if (lane.ibit)
                oreg_ += wvalue_;
            break;
          case Scheme::TuGemm: {
            // Deterministic weight staircase: bit j of the weight
            // stream is set for the last |w| positions of the period,
            // ANDed with the held activation bit. Sign is resolved per
            // asserted product bit (both operand signs are known).
            const u32 period = u32(1) << (cfg_.bits - 1);
            const u32 j = phase & (period - 1);
            if (lane.ibit && j >= period - wabs_)
                oreg_ += (lane.isign != wsign_) ? -1 : 1;
            break;
          }
        }
    }

    /**
     * M-end: merge the partial sum from the PE below, reset the OREG, and
     * return the value passed upward.
     *
     * @param psum_below partial sum arriving from the PE below
     * @param input_sign sign bit of the finished input (binary serial)
     */
    i64
    finishMac(i64 psum_below, bool input_sign)
    {
        i64 value = oreg_;
        if (cfg_.scheme == Scheme::BinarySerial && (input_sign != wsign_))
            value = -value;
        // tubGEMM accumulates ones(a) * w (weight sign already in), so
        // only the activation sign flips the finished product.
        if (cfg_.scheme == Scheme::TubGemm && input_sign)
            value = -value;
        if (cfg_.scheme == Scheme::UgemmHybrid) {
            // Bipolar count -> signed scaled product (x*w / 2^(N-1)).
            value -= i64(1) << (cfg_.bits - 1);
        }
        if (faults_) {
            // Accumulator site: corrupt this interval's signed OREG
            // contribution before the partial-sum merge.
            if (const auto f = faults_->accumulator(ftile_, finterval_,
                                                    fr_, fc_, acc_width_))
                value = f->applyToInt(value, acc_width_);
            ++finterval_;
            cmp_ = 0;
            wsf_resolved_ = false;
            wsf_.reset();
        }
        oreg_ = 0;
        return value + psum_below;
    }

    i64 oreg() const { return oreg_; }
    i32 weight() const { return wvalue_; }

  private:
    /**
     * Run one weight-side comparison bit through this interval's
     * WeightStream fault (resolved lazily on the first comparison; the
     * fault position is the *comparison index* — the count of input
     * 1-bits so far — which is the coordinate the packed engine's
     * prefix-popcount formulation can also address).
     */
    bool
    corruptedCompare(bool bit)
    {
        if (!faults_)
            return bit;
        if (!wsf_resolved_) {
            wsf_ = faults_->weightStream(ftile_, finterval_, fr_, fc_,
                                         wsf_window_);
            wsf_resolved_ = true;
        }
        if (wsf_ && wsf_->covers(cmp_))
            bit = wsf_->corruptBit(bit, cmp_);
        ++cmp_;
        return bit;
    }

    KernelConfig cfg_;
    u32 wabs_ = 0;
    bool wsign_ = false;
    i32 wvalue_ = 0;
    u32 woffset_ = 0;
    i64 oreg_ = 0;

    // Fault-injection state (inactive unless attachFaults() was called).
    const FaultPlan *faults_ = nullptr;
    u64 ftile_ = 0;
    int fr_ = 0, fc_ = 0;
    u32 finterval_ = 0;        // MAC-interval index m within the fold
    u32 cmp_ = 0;              // comparison index k within the interval
    bool wsf_resolved_ = false;
    std::optional<Fault> wsf_; // this interval's WeightStream event
    u32 wsf_window_ = 0;
    u32 acc_width_ = 0;
};

} // namespace usys

#endif // USYS_ARCH_PE_H
