#include "arch/fifo.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/prng.h"

namespace usys {

namespace {

/**
 * One trial: deliveries nominally one per interval with Gaussian
 * latency jitter (in-order), consumer pops every interval after a
 * depth-element warmup. Returns the number of missed pops.
 */
int
runTrial(u32 mac_cycles, double jitter_std, int items, int depth,
         Prng &prng)
{
    std::vector<Cycles> ready(items);
    double prev = 0.0;
    for (int i = 0; i < items; ++i) {
        const double nominal = double(i) * mac_cycles;
        double t = nominal + std::max(0.0, prng.gaussian() * jitter_std);
        t = std::max(t, prev); // in-order delivery
        prev = t;
        ready[i] = Cycles(std::llround(t));
    }

    SyncFifo fifo(depth);
    int next_delivery = 0;
    int misses = 0;
    // Consumer starts after buffering `depth` intervals.
    for (int i = 0; i < items; ++i) {
        const Cycles pop_time = Cycles(depth + i) * mac_cycles;
        while (next_delivery < items && fifo.canPush() &&
               ready[next_delivery] <= pop_time) {
            fifo.push(ready[next_delivery]);
            ++next_delivery;
        }
        if (!fifo.pop(pop_time))
            ++misses;
    }
    return misses;
}

} // namespace

JitterTolerance
analyzeJitterTolerance(u32 mac_cycles, double jitter_std, int items,
                       u64 seed)
{
    JitterTolerance result;
    result.mac_cycles = mac_cycles;
    result.jitter_std_cycles = jitter_std;

    Prng prng(seed);
    int misses1 = 0;
    const int trials = 8;
    for (int t = 0; t < trials; ++t)
        misses1 += runTrial(mac_cycles, jitter_std, items, 1, prng);
    result.stall_rate_depth1 =
        double(misses1) / double(trials) / double(items);

    for (int depth = 1; depth <= 64; ++depth) {
        Prng probe(seed + 1);
        int misses = 0;
        for (int t = 0; t < trials; ++t)
            misses += runTrial(mac_cycles, jitter_std, items, depth,
                               probe);
        if (misses == 0) {
            result.required_depth = depth;
            return result;
        }
    }
    result.required_depth = 64;
    return result;
}

} // namespace usys
