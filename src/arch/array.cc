#include "arch/array.h"

#include <vector>

#include "common/stats_registry.h"
#include "arch/pe.h"

namespace usys {

SystolicArray::SystolicArray(const ArrayConfig &cfg)
    : cfg_(cfg)
{
    cfg_.check();
}

SystolicArray::FoldResult
SystolicArray::runFold(const Matrix<i32> &input,
                       const Matrix<i32> &weights) const
{
    const int rows = cfg_.rows;
    const int cols = cfg_.cols;
    fatalIf(input.cols() != rows, "runFold: input width != array rows");
    fatalIf(weights.rows() != rows || weights.cols() != cols,
            "runFold: weight tile does not match array shape");

    const int m_rows = input.rows();
    const KernelConfig &kern = cfg_.kernel;
    const u32 mul = kern.mulCycles();
    const u32 mac = kern.macCycles();

    // --- Cycle accounting -------------------------------------------------
    // Weight preload pipelines one array row per cycle from the top.
    Cycles cycles = Cycles(rows);
    // Streaming: rows are skewed by one MAC interval each (bottom row
    // first); the final top-row M-end lands at the end of interval
    // (m_rows + rows - 2). The rightmost column lags cols-1 cycles.
    const u64 intervals = u64(m_rows) + rows - 1;
    cycles += intervals * mac + u64(cols - 1);
    panicIf(cycles != foldLatency(m_rows),
            "runFold: schedule disagrees with closed form");

    // --- Lane traces ------------------------------------------------------
    // Each row's front end emits identical lane signals to every column
    // (columns only add delay), so generate the per-(row, input-row)
    // multiplication-cycle traces once.
    const u32 trace_len = (kern.scheme == Scheme::BinaryParallel) ? 1 : mul;

    // Per-scheme bit-level work counters (one lookup per fold, not per
    // MAC, so the accounting stays off the inner loops).
    StatsRegistry &reg = statsRegistry();
    const std::string slug = "arch." + sanitizeStatName(kern.name());
    ++reg.counter(slug + ".folds", "bit-level array folds executed");
    reg.counter(slug + ".mac_slots",
                "PE MAC slots evaluated (incl. padding)") +=
        u64(m_rows) * rows * cols;
    reg.counter(slug + ".fold_cycles", "fold latencies, summed") +=
        cycles;
    reg.counter(slug + ".bitstream_cycles",
                "lane bitstream cycles generated") +=
        u64(trace_len) * u64(m_rows) * rows;
    reg.histogram("arch.fold_m_rows", 0.0, 4096.0, 16,
                  "input rows streamed per fold")
        .add(double(m_rows));
    std::vector<std::vector<std::vector<LaneSignals>>> traces(rows);
    for (int r = 0; r < rows; ++r) {
        RowFrontEnd fe(kern);
        traces[r].resize(m_rows);
        for (int m = 0; m < m_rows; ++m) {
            fe.loadInput(input(m, r));
            auto &t = traces[r][m];
            t.resize(trace_len);
            for (u32 p = 0; p < trace_len; ++p)
                t[p] = fe.step(p);
            fe.endMac();
        }
    }

    // --- Numerics ---------------------------------------------------------
    // Evaluate PE cores in schedule order: for each output row m, the
    // partial sum climbs from the bottom row to the top, each level one
    // MAC interval later than the level below (exactly the skewed
    // hardware schedule).
    std::vector<std::vector<PeCore>> cores(
        rows, std::vector<PeCore>(cols, PeCore(kern)));
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            cores[r][c].loadWeight(weights(r, c));

    const int shift =
        (kern.scheme == Scheme::USystolicRate && kern.et_bits > 0)
            ? kern.bits - kern.et_bits
            : 0;

    Matrix<i64> out(m_rows, cols, 0);
    for (int c = 0; c < cols; ++c) {
        for (int m = 0; m < m_rows; ++m) {
            i64 psum = 0;
            for (int r = rows - 1; r >= 0; --r) {
                PeCore &core = cores[r][c];
                const auto &t = traces[r][m];
                for (u32 p = 0; p < trace_len; ++p)
                    core.stepMul(t[p], p);
                psum = core.finishMac(psum, t.empty() ? false
                                                      : t[0].isign);
            }
            // Top-row shifter restores early-terminated magnitude.
            out(m, c) = psum * (i64(1) << shift);
        }
    }

    return FoldResult{std::move(out), cycles};
}

SystolicGemm::SystolicGemm(const ArrayConfig &cfg)
    : cfg_(cfg)
{
    cfg_.check();
}

SystolicGemm::RunResult
SystolicGemm::run(const Matrix<i32> &a, const Matrix<i32> &b) const
{
    fatalIf(a.cols() != b.rows(), "SystolicGemm: shape mismatch");
    const int m_rows = a.rows();
    const int k_dim = a.cols();
    const int n_dim = b.cols();
    const int rows = cfg_.rows;
    const int cols = cfg_.cols;

    SystolicArray array(cfg_);
    RunResult result;
    result.acc = Matrix<i64>(m_rows, n_dim, 0);

    for (int n0 = 0; n0 < n_dim; n0 += cols) {
        for (int k0 = 0; k0 < k_dim; k0 += rows) {
            // Zero-padded tiles model idle PEs on ragged edges.
            Matrix<i32> in_tile(m_rows, rows, 0);
            for (int m = 0; m < m_rows; ++m)
                for (int r = 0; r < rows && k0 + r < k_dim; ++r)
                    in_tile(m, r) = a(m, k0 + r);
            Matrix<i32> w_tile(rows, cols, 0);
            for (int r = 0; r < rows && k0 + r < k_dim; ++r)
                for (int c = 0; c < cols && n0 + c < n_dim; ++c)
                    w_tile(r, c) = b(k0 + r, n0 + c);

            auto fold = array.runFold(in_tile, w_tile);
            result.cycles += fold.cycles;
            ++result.folds;
            for (int m = 0; m < m_rows; ++m)
                for (int c = 0; c < cols && n0 + c < n_dim; ++c)
                    result.acc(m, n0 + c) += fold.output(m, c);
        }
    }
    return result;
}

} // namespace usys
