#include "arch/array.h"

#include <algorithm>
#include <vector>

#include "common/cli.h"
#include "common/executor.h"
#include "common/stats_registry.h"
#include "arch/packed_array.h"
#include "arch/pe.h"

namespace usys {

void
FoldStatsDelta::add(int m_rows, int rows, int cols, Cycles cycles,
                    u32 trace_len)
{
    ++folds;
    mac_slots += u64(m_rows) * rows * cols;
    fold_cycles += cycles;
    bitstream_cycles += u64(trace_len) * u64(m_rows) * rows;
    m_rows_samples.push_back(double(m_rows));
}

void
FoldStatsDelta::merge(const FoldStatsDelta &other)
{
    folds += other.folds;
    mac_slots += other.mac_slots;
    fold_cycles += other.fold_cycles;
    bitstream_cycles += other.bitstream_cycles;
    m_rows_samples.insert(m_rows_samples.end(),
                          other.m_rows_samples.begin(),
                          other.m_rows_samples.end());
}

void
FoldStatsDelta::flush(const KernelConfig &kern) const
{
    StatsRegistry &reg = statsRegistry();
    const std::string slug = "arch." + sanitizeStatName(kern.name());
    reg.counter(slug + ".folds", "bit-level array folds executed") +=
        folds;
    reg.counter(slug + ".mac_slots",
                "PE MAC slots evaluated (incl. padding)") += mac_slots;
    reg.counter(slug + ".fold_cycles", "fold latencies, summed") +=
        fold_cycles;
    reg.counter(slug + ".bitstream_cycles",
                "lane bitstream cycles generated") += bitstream_cycles;
    auto &hist = reg.histogram("arch.fold_m_rows", 0.0, 4096.0, 16,
                               "input rows streamed per fold");
    for (double m : m_rows_samples)
        hist.add(m);
}

SystolicArray::SystolicArray(const ArrayConfig &cfg)
    : cfg_(cfg)
{
    cfg_.check();
}

SystolicArray::FoldResult
SystolicArray::runFold(const Matrix<i32> &input,
                       const Matrix<i32> &weights,
                       FoldStatsDelta *stats) const
{
    const int rows = cfg_.rows;
    const int cols = cfg_.cols;
    fatalIf(input.cols() != rows, "runFold: input width != array rows");
    fatalIf(weights.rows() != rows || weights.cols() != cols,
            "runFold: weight tile does not match array shape");

    const int m_rows = input.rows();
    const KernelConfig &kern = cfg_.kernel;
    const u32 mul = kern.mulCycles();
    const u32 mac = kern.macCycles();

    // --- Cycle accounting -------------------------------------------------
    // Weight preload pipelines one array row per cycle from the top.
    Cycles cycles = Cycles(rows);
    // Streaming: rows are skewed by one MAC interval each (bottom row
    // first); the final top-row M-end lands at the end of interval
    // (m_rows + rows - 2). The rightmost column lags cols-1 cycles.
    const u64 intervals = u64(m_rows) + rows - 1;
    cycles += intervals * mac + u64(cols - 1);
    panicIf(cycles != foldLatency(m_rows),
            "runFold: schedule disagrees with closed form");

    // --- Lane traces ------------------------------------------------------
    // Each row's front end emits identical lane signals to every column
    // (columns only add delay), so generate the per-(row, input-row)
    // multiplication-cycle traces once.
    const u32 trace_len = (kern.scheme == Scheme::BinaryParallel) ? 1 : mul;

    // Per-scheme bit-level work counters (one delta per fold, not per
    // MAC, so the accounting stays off the inner loops). Parallel
    // callers pass their shard's delta; the serial path commits now.
    FoldStatsDelta local;
    FoldStatsDelta &delta = stats ? *stats : local;
    delta.add(m_rows, rows, cols, cycles, trace_len);
    std::vector<std::vector<std::vector<LaneSignals>>> traces(rows);
    for (int r = 0; r < rows; ++r) {
        RowFrontEnd fe(kern);
        traces[r].resize(m_rows);
        for (int m = 0; m < m_rows; ++m) {
            fe.loadInput(input(m, r));
            auto &t = traces[r][m];
            t.resize(trace_len);
            for (u32 p = 0; p < trace_len; ++p)
                t[p] = fe.step(p);
            fe.endMac();
        }
    }

    // --- Numerics ---------------------------------------------------------
    // Evaluate PE cores in schedule order: for each output row m, the
    // partial sum climbs from the bottom row to the top, each level one
    // MAC interval later than the level below (exactly the skewed
    // hardware schedule).
    std::vector<std::vector<PeCore>> cores(
        rows, std::vector<PeCore>(cols, PeCore(kern)));
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            cores[r][c].loadWeight(weights(r, c));

    const int shift =
        (kern.scheme == Scheme::USystolicRate && kern.et_bits > 0)
            ? kern.bits - kern.et_bits
            : 0;

    Matrix<i64> out(m_rows, cols, 0);
    for (int c = 0; c < cols; ++c) {
        for (int m = 0; m < m_rows; ++m) {
            i64 psum = 0;
            for (int r = rows - 1; r >= 0; --r) {
                PeCore &core = cores[r][c];
                const auto &t = traces[r][m];
                for (u32 p = 0; p < trace_len; ++p)
                    core.stepMul(t[p], p);
                psum = core.finishMac(psum, t.empty() ? false
                                                      : t[0].isign);
            }
            // Top-row shifter restores early-terminated magnitude.
            out(m, c) = psum * (i64(1) << shift);
        }
    }

    if (!stats)
        local.flush(kern);
    return FoldResult{std::move(out), cycles};
}

SystolicGemm::SystolicGemm(const ArrayConfig &cfg)
    : cfg_(cfg)
{
    cfg_.check();
}

SystolicGemm::RunResult
SystolicGemm::run(const Matrix<i32> &a, const Matrix<i32> &b,
                  FoldStatsDelta *stats) const
{
    fatalIf(a.cols() != b.rows(), "SystolicGemm: shape mismatch");
    const int m_rows = a.rows();
    const int k_dim = a.cols();
    const int n_dim = b.cols();
    const int rows = cfg_.rows;
    const int cols = cfg_.cols;

    const bool packed = packedEngineEnabled();
    const SystolicArray scalar_array(cfg_);
    const PackedArray packed_array(cfg_);

    const u64 n_tiles = u64((n_dim + cols - 1) / cols);
    const u64 k_tiles = u64((k_dim + rows - 1) / rows);

    RunResult result;
    result.acc = Matrix<i64>(m_rows, n_dim, 0);

    // Each column-tile shard owns a disjoint slice of the output matrix,
    // so the shards can run concurrently; per-shard cycle counts and
    // stats deltas are reduced serially in tile order below, keeping
    // totals and dumps identical to the serial loop.
    std::vector<FoldStatsDelta> deltas(n_tiles);
    std::vector<Cycles> tile_cycles(n_tiles, 0);
    auto run_tile = [&](u64 ti) {
        const int n0 = int(ti) * cols;
        // Staging tiles are hoisted out of the K loop and re-zeroed in
        // place, so a shard allocates twice per GEMM instead of twice
        // per fold. Zero padding models idle PEs on ragged edges.
        Matrix<i32> in_tile(m_rows, rows, 0);
        Matrix<i32> w_tile(rows, cols, 0);
        for (int k0 = 0; k0 < k_dim; k0 += rows) {
            std::fill(in_tile.data().begin(), in_tile.data().end(), 0);
            std::fill(w_tile.data().begin(), w_tile.data().end(), 0);
            for (int m = 0; m < m_rows; ++m)
                for (int r = 0; r < rows && k0 + r < k_dim; ++r)
                    in_tile(m, r) = a(m, k0 + r);
            for (int r = 0; r < rows && k0 + r < k_dim; ++r)
                for (int c = 0; c < cols && n0 + c < n_dim; ++c)
                    w_tile(r, c) = b(k0 + r, n0 + c);

            const auto fold =
                packed ? packed_array.runFold(in_tile, w_tile, &deltas[ti])
                       : scalar_array.runFold(in_tile, w_tile, &deltas[ti]);
            tile_cycles[ti] += fold.cycles;
            for (int m = 0; m < m_rows; ++m)
                for (int c = 0; c < cols && n0 + c < n_dim; ++c)
                    result.acc(m, n0 + c) += fold.output(m, c);
        }
    };
    if (packed)
        parallelFor(0, n_tiles, run_tile);
    else
        for (u64 ti = 0; ti < n_tiles; ++ti)
            run_tile(ti);

    for (u64 ti = 0; ti < n_tiles; ++ti) {
        result.cycles += tile_cycles[ti];
        if (stats)
            stats->merge(deltas[ti]);
        else
            deltas[ti].flush(cfg_.kernel);
    }
    result.folds = n_tiles * k_tiles;
    return result;
}

} // namespace usys
