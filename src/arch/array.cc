#include "arch/array.h"

#include <algorithm>
#include <vector>

#include "common/cli.h"
#include "common/executor.h"
#include "common/profiler.h"
#include "common/stats_registry.h"
#include "arch/packed_array.h"
#include "arch/pe.h"
#include "mem/dram_faults.h"

namespace usys {

void
FoldStatsDelta::add(int m_rows, int rows, int cols, Cycles cycles,
                    u32 trace_len)
{
    ++folds;
    mac_slots += u64(m_rows) * rows * cols;
    fold_cycles += cycles;
    bitstream_cycles += u64(trace_len) * u64(m_rows) * rows;
    m_rows_samples.push_back(double(m_rows));
}

void
FoldStatsDelta::addFaults(const FoldFaultCounts &counts)
{
    faults_weight_reg += counts.weight_reg;
    faults_activation += counts.activation;
    faults_weight_stream += counts.weight_stream;
    faults_accumulator += counts.accumulator;
}

void
FoldStatsDelta::addSparsity(const SparsityCensus &census)
{
    sparsity_zero_acts += census.zero_acts;
    sparsity_zero_weights += census.zero_weights;
    sparsity_skippable_macs += census.skippable_macs;
}

void
FoldStatsDelta::merge(const FoldStatsDelta &other)
{
    folds += other.folds;
    mac_slots += other.mac_slots;
    fold_cycles += other.fold_cycles;
    bitstream_cycles += other.bitstream_cycles;
    m_rows_samples.insert(m_rows_samples.end(),
                          other.m_rows_samples.begin(),
                          other.m_rows_samples.end());
    faults_weight_reg += other.faults_weight_reg;
    faults_activation += other.faults_activation;
    faults_weight_stream += other.faults_weight_stream;
    faults_accumulator += other.faults_accumulator;
    faults_dram += other.faults_dram;
    sparsity_zero_acts += other.sparsity_zero_acts;
    sparsity_zero_weights += other.sparsity_zero_weights;
    sparsity_skippable_macs += other.sparsity_skippable_macs;
}

void
FoldStatsDelta::flush(const KernelConfig &kern) const
{
    StatsRegistry &reg = statsRegistry();
    const std::string slug = "arch." + sanitizeStatName(kern.name());
    reg.counter(slug + ".folds", "bit-level array folds executed") +=
        folds;
    reg.counter(slug + ".mac_slots",
                "PE MAC slots evaluated (incl. padding)") += mac_slots;
    reg.counter(slug + ".fold_cycles", "fold latencies, summed") +=
        fold_cycles;
    reg.counter(slug + ".bitstream_cycles",
                "lane bitstream cycles generated") += bitstream_cycles;
    auto &hist = reg.histogram("arch.fold_m_rows", 0.0, 4096.0, 16,
                               "input rows streamed per fold");
    for (double m : m_rows_samples)
        hist.add(m);
    if (faultTotal()) {
        reg.counter(slug + ".faults_injected",
                    "fault events injected (all sites)") += faultTotal();
        reg.counter(slug + ".faults_weight_reg",
                    "weight-register fault events") += faults_weight_reg;
        reg.counter(slug + ".faults_activation",
                    "activation-stream fault events") += faults_activation;
        reg.counter(slug + ".faults_weight_stream",
                    "weight-stream (C-BSG) fault events") +=
            faults_weight_stream;
        reg.counter(slug + ".faults_accumulator",
                    "accumulator fault events") += faults_accumulator;
        reg.counter(slug + ".faults_dram",
                    "DRAM read-word fault events") += faults_dram;
    }
    // Pure data properties of the operand tiles: identical whether the
    // sparse paths executed or not, and omitted entirely on fully-dense
    // runs so pre-existing dumps are unchanged.
    if (sparsity_zero_acts || sparsity_zero_weights) {
        reg.counter(slug + ".sparsity_zero_acts",
                    "zero-valued activation elements streamed") +=
            sparsity_zero_acts;
        reg.counter(slug + ".sparsity_zero_weights",
                    "zero-valued stationary weight elements") +=
            sparsity_zero_weights;
        reg.counter(slug + ".sparsity_skippable_macs",
                    "MAC slots elidable by zero-stream skipping") +=
            sparsity_skippable_macs;
    }
}

SystolicArray::SystolicArray(const ArrayConfig &cfg)
    : cfg_(cfg)
{
    cfg_.check();
}

SystolicArray::FoldResult
SystolicArray::runFold(const Matrix<i32> &input,
                       const Matrix<i32> &weights,
                       FoldStatsDelta *stats, u64 tile) const
{
    USYS_PROF_SCOPE("fold.scalar");
    const int rows = cfg_.rows;
    const int cols = cfg_.cols;
    fatalIf(input.cols() != rows, "runFold: input width != array rows");
    fatalIf(weights.rows() != rows || weights.cols() != cols,
            "runFold: weight tile does not match array shape");

    const int m_rows = input.rows();
    const KernelConfig &kern = cfg_.kernel;
    const u32 mul = kern.mulCycles();
    const u32 mac = kern.macCycles();

    // --- Cycle accounting -------------------------------------------------
    // Weight preload pipelines one array row per cycle from the top.
    Cycles cycles = Cycles(rows);
    // Streaming: rows are skewed by one MAC interval each (bottom row
    // first); the final top-row M-end lands at the end of interval
    // (m_rows + rows - 2). The rightmost column lags cols-1 cycles.
    const u64 intervals = u64(m_rows) + rows - 1;
    cycles += intervals * mac + u64(cols - 1);
    panicIf(cycles != foldLatency(m_rows),
            "runFold: schedule disagrees with closed form");

    // --- Lane traces ------------------------------------------------------
    // Each row's front end emits identical lane signals to every column
    // (columns only add delay), so generate the per-(row, input-row)
    // multiplication-cycle traces once.
    const u32 trace_len = (kern.scheme == Scheme::BinaryParallel) ? 1 : mul;

    // Per-scheme bit-level work counters (one delta per fold, not per
    // MAC, so the accounting stays off the inner loops). Parallel
    // callers pass their shard's delta; the serial path commits now.
    FoldStatsDelta local;
    FoldStatsDelta &delta = stats ? *stats : local;
    delta.add(m_rows, rows, cols, cycles, trace_len);
    delta.addSparsity(foldSparsityCensus(kern, input, weights));

    const FaultPlan *plan = cfg_.faults.enabled() ? &cfg_.faults : nullptr;
    if (plan)
        delta.addFaults(
            countFoldFaults(*plan, kern, tile, m_rows, rows, cols));

    // WeightReg site: corrupt the stationary weight codes before the
    // preload latches them (identical pre-corruption in every engine).
    const Matrix<i32> *wp = &weights;
    Matrix<i32> wfaulted;
    if (plan && plan->rates.weight_reg > 0.0) {
        wfaulted = weights;
        for (int r = 0; r < rows; ++r)
            for (int c = 0; c < cols; ++c)
                if (const auto f =
                        plan->weightReg(tile, r, c, u32(kern.bits)))
                    wfaulted(r, c) =
                        corruptCode(*f, wfaulted(r, c), kern.bits);
        wp = &wfaulted;
    }

    const bool unary = isUnary(kern.scheme);
    std::vector<std::vector<std::vector<LaneSignals>>> traces(rows);
    for (int r = 0; r < rows; ++r) {
        RowFrontEnd fe(kern);
        traces[r].resize(m_rows);
        for (int m = 0; m < m_rows; ++m) {
            i32 value = input(m, r);
            std::optional<Fault> af;
            if (plan)
                af = plan->activationStream(tile, m, r,
                                            activationWindow(kern));
            // BP/BS activation faults corrupt the latched code; the
            // unary schemes corrupt the BSG output stream bit-by-bit.
            if (af && !unary)
                value = corruptActivationCode(*af, value, kern);
            fe.loadInput(value);
            fe.setStreamFault(unary && af ? &*af : nullptr);
            auto &t = traces[r][m];
            t.resize(trace_len);
            for (u32 p = 0; p < trace_len; ++p)
                t[p] = fe.step(p);
            fe.endMac();
        }
    }

    // --- Numerics ---------------------------------------------------------
    // Evaluate PE cores in schedule order: for each output row m, the
    // partial sum climbs from the bottom row to the top, each level one
    // MAC interval later than the level below (exactly the skewed
    // hardware schedule).
    std::vector<std::vector<PeCore>> cores(
        rows, std::vector<PeCore>(cols, PeCore(kern)));
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            cores[r][c].loadWeight((*wp)(r, c));
            if (plan)
                cores[r][c].attachFaults(plan, tile, r, c);
        }
    }

    const int shift =
        (kern.scheme == Scheme::USystolicRate && kern.et_bits > 0)
            ? kern.bits - kern.et_bits
            : 0;

    Matrix<i64> out(m_rows, cols, 0);
    for (int c = 0; c < cols; ++c) {
        for (int m = 0; m < m_rows; ++m) {
            i64 psum = 0;
            for (int r = rows - 1; r >= 0; --r) {
                PeCore &core = cores[r][c];
                const auto &t = traces[r][m];
                for (u32 p = 0; p < trace_len; ++p)
                    core.stepMul(t[p], p);
                psum = core.finishMac(psum, t.empty() ? false
                                                      : t[0].isign);
            }
            // Top-row shifter restores early-terminated magnitude.
            out(m, c) = psum * (i64(1) << shift);
        }
    }

    if (!stats)
        local.flush(kern);
    return FoldResult{std::move(out), cycles};
}

SystolicGemm::SystolicGemm(const ArrayConfig &cfg)
    : cfg_(cfg)
{
    cfg_.check();
}

SystolicGemm::RunResult
SystolicGemm::run(const Matrix<i32> &a, const Matrix<i32> &b,
                  FoldStatsDelta *stats) const
{
    USYS_PROF_SCOPE("gemm.run");
    fatalIf(a.cols() != b.rows(), "SystolicGemm: shape mismatch");
    const int m_rows = a.rows();
    const int k_dim = a.cols();
    const int n_dim = b.cols();
    const int rows = cfg_.rows;
    const int cols = cfg_.cols;

    const bool packed = packedEngineEnabled();
    const SystolicArray scalar_array(cfg_);
    const PackedArray packed_array(cfg_);

    const u64 n_tiles = u64((n_dim + cols - 1) / cols);
    const u64 k_tiles = u64((k_dim + rows - 1) / rows);

    RunResult result;
    result.acc = Matrix<i64>(m_rows, n_dim, 0);

    // DramWord site: operand codes corrupt once per GEMM, as they leave
    // memory — before tiling, so every fold (and either engine)
    // consumes identical corrupted reads.
    const FaultPlan &fp = cfg_.faults;
    const Matrix<i32> *pa = &a, *pb = &b;
    Matrix<i32> a_faulted, b_faulted;
    u64 dram_events = 0;
    if (fp.enabled() && fp.rates.dram_word > 0.0) {
        USYS_PROF_SCOPE("gemm.dram_faults");
        a_faulted = a;
        b_faulted = b;
        dram_events += applyDramFaults(fp, a_faulted, kDramOperandA,
                                       cfg_.kernel.bits);
        dram_events += applyDramFaults(fp, b_faulted, kDramOperandB,
                                       cfg_.kernel.bits);
        pa = &a_faulted;
        pb = &b_faulted;
    }

    // Panel mode: stage every K-tile of A once, up front, shared
    // read-only across the column-tile shards — instead of every shard
    // re-staging the same input slice per fold. For an N-dim of n_tiles
    // panels this cuts input staging by n_tiles x (and the packed
    // engine's per-worker ones-memos then serve the staged codes from
    // cache). Gated on panelGemmEnabled() so --no-panel measures the
    // legacy unblocked behavior end to end.
    const bool panel = panelGemmEnabled();
    std::vector<Matrix<i32>> a_tiles;
    std::vector<SparsityPlan> a_plans;
    // Sparsity plans compact each staged A-tile's nonzero indices once,
    // shared read-only across every column shard that reuses the tile.
    // They encode skips the engine may take, never stats it must book,
    // so building them only when consumed keeps dumps unchanged.
    const bool want_plans =
        panel && packed && sparseEnabled() && zeroSkipEnabled();
    if (panel) {
        USYS_PROF_SCOPE("gemm.stage_a");
        a_tiles.reserve(k_tiles);
        if (want_plans)
            a_plans.resize(k_tiles);
        for (u64 kt = 0; kt < k_tiles; ++kt) {
            const int k0 = int(kt) * rows;
            Matrix<i32> t(m_rows, rows, 0);
            for (int m = 0; m < m_rows; ++m)
                for (int r = 0; r < rows && k0 + r < k_dim; ++r)
                    t(m, r) = (*pa)(m, k0 + r);
            if (want_plans)
                a_plans[kt].build(t);
            a_tiles.push_back(std::move(t));
        }
    }

    // Each column-tile shard owns a disjoint slice of the output matrix,
    // so the shards can run concurrently; per-shard cycle counts and
    // stats deltas are reduced serially in tile order below, keeping
    // totals and dumps identical to the serial loop.
    std::vector<FoldStatsDelta> deltas(n_tiles);
    deltas[0].faults_dram = dram_events;
    std::vector<Cycles> tile_cycles(n_tiles, 0);
    auto run_tile = [&](u64 ti) {
        USYS_PROF_SCOPE("gemm.tile");
        const int n0 = int(ti) * cols;
        // Staging tiles are hoisted out of the K loop and re-zeroed in
        // place, so a shard allocates twice per GEMM instead of twice
        // per fold. Zero padding models idle PEs on ragged edges.
        Matrix<i32> in_tile;
        if (!panel)
            in_tile = Matrix<i32>(m_rows, rows, 0);
        Matrix<i32> w_tile(rows, cols, 0);
        for (int k0 = 0; k0 < k_dim; k0 += rows) {
            const u64 kt = u64(k0 / rows);
            if (!panel) {
                std::fill(in_tile.data().begin(), in_tile.data().end(),
                          0);
                for (int m = 0; m < m_rows; ++m)
                    for (int r = 0; r < rows && k0 + r < k_dim; ++r)
                        in_tile(m, r) = (*pa)(m, k0 + r);
            }
            const Matrix<i32> &in = panel ? a_tiles[kt] : in_tile;
            std::fill(w_tile.data().begin(), w_tile.data().end(), 0);
            for (int r = 0; r < rows && k0 + r < k_dim; ++r)
                for (int c = 0; c < cols && n0 + c < n_dim; ++c)
                    w_tile(r, c) = (*pb)(k0 + r, n0 + c);

            // Global fold index: the coordinate every per-fold fault
            // site hashes, identical under any tile schedule.
            const u64 tile = ti * k_tiles + kt;
            const SparsityPlan *sparsity =
                want_plans ? &a_plans[kt] : nullptr;
            const auto fold =
                packed ? packed_array.runFold(in, w_tile,
                                              &deltas[ti], tile,
                                              sparsity)
                       : scalar_array.runFold(in, w_tile,
                                              &deltas[ti], tile);
            tile_cycles[ti] += fold.cycles;
            for (int m = 0; m < m_rows; ++m)
                for (int c = 0; c < cols && n0 + c < n_dim; ++c)
                    result.acc(m, n0 + c) += fold.output(m, c);
        }
    };
    if (packed)
        parallelFor(0, n_tiles, run_tile);
    else
        for (u64 ti = 0; ti < n_tiles; ++ti)
            run_tile(ti);

    for (u64 ti = 0; ti < n_tiles; ++ti) {
        result.cycles += tile_cycles[ti];
        if (stats)
            stats->merge(deltas[ti]);
        else
            deltas[ti].flush(cfg_.kernel);
    }
    result.folds = n_tiles * k_tiles;
    return result;
}

} // namespace usys
